// Package experiments implements the per-experiment harness of the
// reproduction: every theorem, corollary and load-bearing lemma of
// the paper has a runner that regenerates its content as a table.
// The runners are shared by cmd/stbench (streaming report in text,
// JSON or CSV), bench_test.go (testing.B entry points) and the test
// suite's end-to-end PASS check.
//
// The experiment-to-claim map:
//
//	E1   Corollary 7      deterministic O(log N)-scan deciders (sort-based)
//	E2   Theorem 8(a)     randomized fingerprinting, 2 scans, one-sided error
//	E3   Theorem 8(b)     nondeterministic certificate verification, 3 scans
//	E4   Corollary 9      ST ⊊ RST ⊊ NST separation as measured scan counts
//	E5   Corollary 10     Las Vegas sorting succeeds exactly at Θ(log N) scans
//	E6   Theorem 11       relational algebra on streams; Q' decides SET-EQUALITY
//	E7   Theorem 12       XQuery reduction on the Section 4 XML encoding
//	E8   Theorem 13       XPath filtering and the booster machine T̃
//	E9   Remark 20        sortedness(ϕ_m) ≤ 2√m − 1 for bit-reversal ϕ
//	E10  Lemma 16         TM → list-machine simulation, exact probabilities
//	E11  Lemmas 21/22/32  skeleton counting and the Ω(log N) frontier
//	E12  Lemmas 37/38     merge lemma: compared-positions census
//	E13  Lemma 3          run-length envelope N·2^{O(r(t+s))}
//	E14  Claim 1          random-prime collision probability O(1/m)
//	E15  Corollary 7/App E  reduction to the SHORT problem versions
//	E16  Theorem 6        pigeonhole adversary vs bounded-memory streaming
//	E17  Definition 1     sort-engine r-vs-(s, t) trade-off frontier
//	E18  (systems)        sharded execution: byte-identical outputs, per-shard (r, s, t)
//	E19  (systems)        sharded relational query evaluation: shards × fan-in frontier
//	E20  (systems)        fault-tolerant execution: chaos determinism matrix
//	E21  (systems)        cost-based query planning: planner vs fixed shapes, pipelined handoff
//
// Monte-Carlo experiments (E2, E5, E6, E7, E8, E14, E16, E18) run
// their trial fleets on the sharded execution layer (internal/shard
// over internal/trials): per-trial randomness is derived from
// Config.Seed and the global trial index alone, so Config.Parallel
// workers and Config.Shards shards accelerate the sweeps without
// changing a single output byte — the tables are identical at any
// (Shards, Parallel) combination, which parallel_test.go and the
// cmd/stbench matrix test enforce. The query experiments additionally
// honor Config.Shards on the sort side: E6 re-evaluates every
// instance through the sharded relalg.Evaluator at the configured
// shard count, and E19 sweeps the sharded query frontier (its table,
// like E18's, sweeps execution shapes internally and is byte-
// identical at any configuration).
//
// Fault injection is one more execution shape: Config.Faults (an
// internal/faults.Plan) wraps every fleet's launcher and the sharded
// evaluators' chaos hooks, and Config.Retry sets the per-shard retry
// budget. Recoverable plans — flaky panics under a sufficient budget,
// delays — cannot move a byte of any table; E20 sweeps fault plans
// against retry policies and verifies exactly that, alongside the
// degraded-fallback semantics of permanent failures.
//
// Planning is the last execution shape: Config.Budget (an
// internal/plan.Budget, the -budget flag) hands the query evaluators
// a cost-based planner that picks each operator stage's
// {Shards, FanIn, RunMemoryBits} by minimizing the analytic sorter
// model's predicted critical path, with the merge-free pipelined
// stage handoff always on. E21 tables the planner against the fixed
// shapes of the E19 grid (sweeping envelopes internally — the table
// never renders a Budget-derived number, so stdout is byte-identical
// at any configured budget) and verifies the prediction error bound,
// the pipelining cut, and that the configured envelope's evaluation
// reproduces the single-machine bytes.
package experiments
