package experiments

import (
	"math"
	"math/rand"
	"reflect"
	"strings"

	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/relalg"
	"extmem/internal/trials"
	"extmem/internal/xmlstream"
	"extmem/internal/xpath"
	"extmem/internal/xquery"
)

// E6RelAlg reproduces Theorem 11: (a) streaming evaluation of the
// symmetric-difference query within O(log N) scans; (b) its result
// decides SET-EQUALITY (the lower-bound reduction). The experiment
// honors Config.Shards twice over without a table byte depending on
// it: every instance is re-evaluated through the sharded
// relalg.Evaluator at the configured shard count (the shard≡ column
// asserts tuple-for-tuple equality with the single-machine engine),
// and a fleet of random instances decided by the sharded evaluator
// runs on the cfg.launch() trial fleet.
func E6RelAlg(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%8s %10s %8s %12s %10s %10s %8s", "m", "N", "scans", "scans/log2N", "Q' empty", "X = Y?", "shard≡")
	notes := "PASS: O(log N) scans; Q' emptiness ≡ set equality on every instance;\n" +
		"sharded evaluation byte-identical on every instance and every fleet trial."
	q := relalg.SymmetricDifference("R1", "R2")
	for i, mSize := range []int{8, 32, 128, 512} {
		var in problems.Instance
		if i%2 == 0 {
			in = problems.GenSetYes(mSize, 12, rng)
		} else {
			in = problems.GenSetNo(mSize, 12, rng)
		}
		db := relalg.InstanceDB(in)
		m := cfg.machine(relalg.NumQueryTapes, cfg.Seed)
		r, err := relalg.EvalST(q, db, m)
		if err != nil {
			return failure("E6", "T11-RELALG", err, core.Reject)
		}
		sharded, err := relalg.Evaluator{
			Shards: cfg.ShardCount(), Seed: cfg.Seed,
			Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
			Exec: cfg.exec(), TapeOpts: cfg.Storage,
		}.EvalST(cfg.ctx(), q, db, cfg.machine(relalg.NumQueryTapes, cfg.Seed))
		if err != nil {
			return failure("E6", "T11-RELALG", err, core.Reject)
		}
		same := reflect.DeepEqual(sharded.Tuples, r.Tuples)
		res := m.Resources()
		n := db.Size()
		empty := len(r.Tuples) == 0
		want := problems.SetEquality(in)
		row(&b, "%8d %10d %8d %12.2f %10v %10v %8v",
			mSize, n, res.Scans(), float64(res.Scans())/math.Log2(float64(n)), empty, want, same)
		if empty != want {
			notes = "FAIL: Q' result disagrees with set equality."
		}
		if !same {
			notes = "FAIL: sharded evaluation differs from the single-machine engine."
		}
		if float64(res.Scans()) > 40*math.Log2(float64(n)) {
			notes = "FAIL: scans not O(log N)."
		}
	}
	// Sharded-query fleet: random instances decided by Q' emptiness on
	// the sharded evaluator, run as a cfg.launch() trial fleet — every
	// trial derives from (seed, global index) alone, so the row is
	// byte-identical at any Shards × Parallel.
	nTrials := cfg.fleet(24)
	shards := cfg.ShardCount()
	_, sum, err := cfg.launch()(nTrials, trials.Seed(cfg.Seed, 600), nil).Run(cfg.ctx(),
		func(i int, trng *rand.Rand) trials.Result {
			var fin problems.Instance
			if i%2 == 0 {
				fin = problems.GenSetYes(8, 10, trng)
			} else {
				fin = problems.GenSetNo(8, 10, trng)
			}
			fdb := relalg.InstanceDB(fin)
			fr, err := relalg.Evaluator{Shards: shards, Seed: trng.Int63(), TapeOpts: cfg.Storage}.
				EvalST(nil, q, fdb, cfg.machine(relalg.NumQueryTapes, trng.Int63()))
			if err != nil {
				return trials.Result{Err: err.Error()}
			}
			return trials.Result{Accept: (len(fr.Tuples) == 0) == problems.SetEquality(fin)}
		})
	if err != nil {
		return failure("E6", "T11-RELALG", err, core.Reject)
	}
	row(&b, "sharded-query fleet: %d/%d random instances decided correctly", sum.Accepts, sum.Trials)
	if sum.Accepts != sum.Trials {
		notes = "FAIL: a sharded fleet trial disagreed with set equality."
	}
	return Result{
		ID:    "E6",
		Title: "relational algebra on streams",
		Claim: "Theorem 11: every query ∈ ST(O(log N),O(1),O(1)); Q' = (R1−R2) ∪ (R2−R1) is Ω(log N)-hard",
		Table: b.String(),
		Notes: notes,
	}
}

// E7XQuery reproduces Theorem 12: the every/some query decides
// SET-EQUALITY on the Section 4 XML encoding. Beyond the fixed-size
// sweep, a fleet of random instances runs on the cfg.launch() trial
// fleet (Config.Shards shards × Config.Parallel workers), each trial
// checking the query verdict against the reference decider — the
// query workload on the sharded execution layer, with rows derived
// from (seed, global trial index) alone.
func E7XQuery(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	q := xquery.TheoremQuery()
	var b strings.Builder
	row(&b, "%8s %12s %14s %12s %8s", "m", "doc bytes", "query <true/>", "set equal", "agree")
	notes := "PASS: Q returns <true/> exactly on set-equal instances (reduction of Theorem 12)."
	for i, mSize := range []int{4, 16, 64, 256} {
		var in problems.Instance
		if i%2 == 0 {
			in = problems.GenSetYes(mSize, 10, rng)
		} else {
			in = problems.GenSetNo(mSize, 10, rng)
		}
		enc := xmlstream.EncodeInstance(in)
		doc, err := xmlstream.Parse(enc)
		if err != nil {
			return failure("E7", "T12-XQUERY", err, core.Reject)
		}
		result, err := q.Eval(doc)
		if err != nil {
			return failure("E7", "T12-XQUERY", err, core.Reject)
		}
		got := xquery.ResultIsTrue(result)
		want := problems.SetEquality(in)
		row(&b, "%8d %12d %14v %12v %8v", mSize, len(enc), got, want, got == want)
		if got != want {
			notes = "FAIL: query disagrees with set equality."
		}
	}
	// Random-instance agreement fleet on the sharded execution layer.
	nTrials := cfg.fleet(32)
	_, sum, err := cfg.launch()(nTrials, trials.Seed(cfg.Seed, 700), nil).Run(cfg.ctx(),
		func(i int, trng *rand.Rand) trials.Result {
			var fin problems.Instance
			if i%2 == 0 {
				fin = problems.GenSetYes(8, 10, trng)
			} else {
				fin = problems.GenSetNo(8, 10, trng)
			}
			doc, err := xmlstream.Parse(xmlstream.EncodeInstance(fin))
			if err != nil {
				return trials.Result{Err: err.Error()}
			}
			result, err := q.Eval(doc)
			if err != nil {
				return trials.Result{Err: err.Error()}
			}
			return trials.Result{Accept: xquery.ResultIsTrue(result) == problems.SetEquality(fin)}
		})
	if err != nil {
		return failure("E7", "T12-XQUERY", err, core.Reject)
	}
	row(&b, "query fleet: %d/%d random instances decided correctly", sum.Accepts, sum.Trials)
	if sum.Accepts != sum.Trials {
		notes = "FAIL: a fleet trial disagreed with set equality."
	}
	return Result{
		ID:    "E7",
		Title: "XQuery on XML document streams",
		Claim: "Theorem 12: an XQuery query whose evaluation ∉ LasVegas-RST(o(log N), O(N^¼/log N), O(1))",
		Table: b.String(),
		Notes: notes,
	}
}

// E8XPath reproduces Theorem 13: the Figure 1 query selects X − Y,
// and the two-run booster T̃ turns any profile-(1)/(2) filter into a
// one-sided-error SET-EQUALITY decider.
// The noisy-filter probability check runs two trial fleets (yes- and
// no-instances) on the sharded fleet layer, so the acceptance counts
// are reproducible at any cfg.Parallel and cfg.Shards.
func E8XPath(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%8s %12s %10s %12s", "m", "|X − Y|", "filter", "boosted=eq")
	notes := "PASS: Figure 1 query computes X − Y; boosted T̃ decides set equality with zero false accepts."
	for i, mSize := range []int{4, 16, 64} {
		var in problems.Instance
		if i%2 == 0 {
			in = problems.GenSetYes(mSize, 10, rng)
		} else {
			in = problems.GenSetNo(mSize, 10, rng)
		}
		doc, err := xmlstream.Parse(xmlstream.EncodeInstance(in))
		if err != nil {
			return failure("E8", "T13-XPATH", err, core.Reject)
		}
		sel := xpath.Figure1Query().Select(doc)
		boosted := xpath.SetEqualityViaFilter(xpath.ExactFilter, in, rng)
		want := problems.SetEquality(in)
		row(&b, "%8d %12d %10v %12v", mSize, len(sel), len(sel) > 0, boosted == want)
		if boosted != want {
			notes = "FAIL: boosted decider disagrees with set equality."
		}
	}
	// Noisy-filter probability check (profile (2) with p = 1/2), as
	// two independent trial fleets.
	noisy := xpath.NoisyFilter(xpath.ExactFilter, 0.5)
	yes := problems.GenSetYes(8, 10, rng)
	nTrials := cfg.fleet(400)
	launch := cfg.launch()
	_, yesSum, err := launch(nTrials, trials.Seed(cfg.Seed, 800), nil).Run(cfg.ctx(),
		func(_ int, trng *rand.Rand) trials.Result {
			return trials.Result{Accept: xpath.SetEqualityViaFilter(noisy, yes, trng)}
		})
	if err != nil {
		return failure("E8", "T13-XPATH", err, core.Reject)
	}
	_, noSum, err := launch(nTrials, trials.Seed(cfg.Seed, 801), nil).Run(cfg.ctx(),
		func(_ int, trng *rand.Rand) trials.Result {
			no := problems.GenSetNo(8, 10, trng)
			return trials.Result{Accept: xpath.SetEqualityViaFilter(noisy, no, trng)}
		})
	if err != nil {
		return failure("E8", "T13-XPATH", err, core.Reject)
	}
	row(&b, "noisy filter: yes accepted %d/%d (want ≥ 1/2), no accepted %d/%d (want 0)",
		yesSum.Accepts, yesSum.Trials, noSum.Accepts, noSum.Trials)
	if yesSum.Accepts < yesSum.Trials/2 || noSum.Accepts > 0 {
		notes = "FAIL: booster probability profile violated."
	}
	notes += "\nNote: the paper's proof boosts with 2 rounds of T̃, giving only 1−(3/4)² = 7/16;" +
		"\nwe use 3 rounds for the stated ≥ 1/2 (see internal/xpath/booster.go)."
	return Result{
		ID:    "E8",
		Title: "XPath filtering and the booster machine T̃",
		Claim: "Theorem 13: filtering with the Figure 1 query ∉ co-RST(o(log N), O(N^¼/log N), O(1))",
		Table: b.String(),
		Notes: notes,
	}
}
