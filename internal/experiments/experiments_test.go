package experiments

import (
	"strings"
	"testing"
)

// Every experiment must run and report PASS with the default seed —
// this is the repository's end-to-end reproduction check.
func TestAllExperimentsPass(t *testing.T) {
	results := All(1)
	if len(results) != 21 {
		t.Fatalf("got %d experiments, want 21", len(results))
	}
	ids := map[string]bool{}
	for _, r := range results {
		if ids[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		ids[r.ID] = true
		if !strings.HasPrefix(r.Notes, "PASS") {
			t.Errorf("%s (%s) did not pass:\n%s\n%s", r.ID, r.Title, r.Table, r.Notes)
		}
		if r.Table == "" {
			t.Errorf("%s produced no table", r.ID)
		}
		if r.Claim == "" {
			t.Errorf("%s has no claim", r.ID)
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "EX", Title: "title", Claim: "claim", Table: "table\n", Notes: "PASS"}
	s := r.String()
	for _, frag := range []string{"EX", "title", "claim", "table", "PASS"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String misses %q: %s", frag, s)
		}
	}
}

// Different seeds must not change any verdict (robustness of the
// reproduction, not just one lucky seed).
func TestExperimentsSeedRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for seed := int64(2); seed <= 4; seed++ {
		for _, r := range All(seed) {
			if !strings.HasPrefix(r.Notes, "PASS") {
				t.Errorf("seed %d: %s failed:\n%s", seed, r.ID, r.Notes)
			}
		}
	}
}
