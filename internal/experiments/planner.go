package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"

	"extmem/internal/core"
	"extmem/internal/plan"
	"extmem/internal/problems"
	"extmem/internal/relalg"
)

// E21CostPlanner tables the cost-based planner against the fixed
// execution shapes of the E19 grid, on the same Theorem 11 workload:
// the planner (internal/plan) predicts each operator stage's critical
// path from the measured sorter's analytic model and picks the shape
// minimizing it under a resource envelope, with the merge-free
// pipelined handoff always on. Three claims are measured:
//
//   - the planned evaluation's end-to-end step count (coordinator plus
//     every stage's critical path) beats or matches the best fixed
//     shape of the grid inside the same envelope, on every row;
//   - the pipelined handoff alone cuts the end-to-end steps of a
//     multi-stage plan (the union of two scans) by at least 15% at an
//     identical fixed shape — one full write+read of every
//     intermediate relation is gone;
//   - the model's predicted critical path stays within 25% of the
//     meter across every operator sort of the grid.
//
// The envelopes are swept internally and never rendered as numbers
// derived from the -budget flag, so the table is byte-identical at
// any configured budget; one extra verification runs under the
// configured envelope so the knob is genuinely exercised.
func E21CostPlanner(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := problems.GenSetNo(512, 16, rng)
	db := relalg.InstanceDB(in)
	q := relalg.SymmetricDifference("R1", "R2")
	const runMem = 256

	base := cfg.machine(relalg.NumQueryTapes, cfg.Seed)
	baseRel, err := relalg.Evaluator{RunMemoryBits: runMem, TapeOpts: cfg.Storage}.EvalST(cfg.ctx(), q, db, base)
	if err != nil {
		return failure("E21", "COST-PLAN", err, core.Reject)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Cost-based planning: Q' = (R1−R2) ∪ (R2−R1), m=%d (N=%d); fixed shapes at run memory %d bits\n",
		512, db.Size(), runMem)
	notes := "PASS: the planned shape beats or matches every fixed shape of its envelope, the pipelined\n" +
		"handoff cuts ≥15% of the end-to-end steps at an equal shape, predictions stay within 25%\n" +
		"of the meter, and not one output byte moves under any of it."

	// The fixed-shape grid: the E19 shapes, end-to-end steps.
	row(&b, "%6s %7s %12s %11s %9s", "fan-in", "shards", "total steps", "crit steps", "output≡")
	bestFixed := int64(-1)
	var worstPredErr float64
	for _, fanIn := range []int{2, 4} {
		for _, shards := range []int{1, 2, 4} {
			rep := &relalg.QueryReport{}
			ev := relalg.Evaluator{
				Shards: shards, FanIn: fanIn, RunMemoryBits: runMem,
				Seed: cfg.Seed, Report: rep,
				Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
				TapeOpts: cfg.Storage,
			}
			m := cfg.machine(relalg.NumQueryTapes, cfg.Seed)
			r, err := ev.EvalST(cfg.ctx(), q, db, m)
			if err != nil {
				return failure("E21", "COST-PLAN", err, core.Reject)
			}
			equal := reflect.DeepEqual(r.Tuples, baseRel.Tuples)
			total := rep.TotalSteps()
			row(&b, "%6d %7d %12d %11d %9v", fanIn, shards, total, rep.CriticalPathSteps(), equal)
			if !equal {
				notes = "FAIL: a fixed-shape evaluation differs from the single-machine engine."
			}
			if bestFixed < 0 || total < bestFixed {
				bestFixed = total
			}
			for _, sr := range rep.Sorts {
				measured := sr.CriticalPathSteps()
				if measured == 0 {
					continue
				}
				shape := plan.Shape{Shards: shards, FanIn: fanIn, RunMemoryBits: runMem}
				predicted := plan.PredictSort(sr.Items, sr.Bytes, shape).CriticalPath()
				e := float64(predicted-measured) / float64(measured)
				if e < 0 {
					e = -e
				}
				if e > worstPredErr {
					worstPredErr = e
				}
			}
		}
	}

	// The planner inside the grid's envelope (the fixed shapes' memory,
	// tapes for fan-in ≤ 4, fleets up to 4): its end-to-end steps must
	// beat or match the best fixed shape — it may pick any of those
	// shapes, and it also pipelines.
	envelope := plan.Budget{MemoryBits: runMem, Tapes: 6, MaxShards: 4}
	prep := &relalg.QueryReport{}
	planned, err := relalg.Evaluator{
		Plan: plan.Auto(envelope), Seed: cfg.Seed, Report: prep,
		Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
		TapeOpts: cfg.Storage,
	}.EvalST(cfg.ctx(), q, db, cfg.machine(relalg.NumQueryTapes, cfg.Seed))
	if err != nil {
		return failure("E21", "COST-PLAN", err, core.Reject)
	}
	plannedEq := reflect.DeepEqual(planned.Tuples, baseRel.Tuples)
	fmt.Fprintf(&b, "\nplanned (grid envelope): total steps %d vs best fixed %d (%.1f%% of best), output≡ %v\n",
		prep.TotalSteps(), bestFixed, 100*float64(prep.TotalSteps())/float64(bestFixed), plannedEq)
	if !plannedEq {
		notes = "FAIL: the planned evaluation differs from the single-machine engine."
	}
	if prep.TotalSteps() > bestFixed {
		notes = "FAIL: the planned shape lost to a fixed shape inside its own envelope."
	}

	// Wider envelopes: more memory and tapes buy fewer steps; every
	// envelope's answer is still byte-identical.
	row(&b, "\n%28s %12s %9s", "envelope", "total steps", "output≡")
	prevTotal := int64(-1)
	widening := []struct {
		name string
		bud  plan.Budget
	}{
		{"starved (1 shard, 4 tapes)", plan.Budget{MemoryBits: 128, Tapes: 4, MaxShards: 1}},
		{"grid (4 shards, 6 tapes)", envelope},
		{"generous (8 shards, 12 t)", plan.Budget{MemoryBits: 1 << 14, Tapes: 12, MaxShards: 8}},
	}
	for _, w := range widening {
		rep := &relalg.QueryReport{}
		r, err := relalg.Evaluator{
			Plan: plan.Auto(w.bud), Seed: cfg.Seed, Report: rep,
			Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
			TapeOpts: cfg.Storage,
		}.EvalST(cfg.ctx(), q, db, cfg.machine(relalg.NumQueryTapes, cfg.Seed))
		if err != nil {
			return failure("E21", "COST-PLAN", err, core.Reject)
		}
		equal := reflect.DeepEqual(r.Tuples, baseRel.Tuples)
		row(&b, "%28s %12d %9v", w.name, rep.TotalSteps(), equal)
		if !equal {
			notes = "FAIL: a planned evaluation differs from the single-machine engine."
		}
		if prevTotal >= 0 && rep.TotalSteps() > prevTotal {
			notes = "FAIL: a wider envelope cost more end-to-end steps than a narrower one."
		}
		prevTotal = rep.TotalSteps()
	}

	// The pipelined handoff in isolation: the union of two scans at one
	// fixed shape, staged vs merge-free. The handoff deletes the
	// producers' combines, the coordinator's concatenation and the
	// consumer's distribution scan — at least 15% of the end-to-end
	// steps on this two-stage plan.
	union := relalg.Union{L: relalg.Scan{Rel: "R1"}, R: relalg.Scan{Rel: "R2"}}
	pipeTotals := make([]int64, 2)
	for i, pipeline := range []bool{false, true} {
		rep := &relalg.QueryReport{}
		r, err := relalg.Evaluator{
			Shards: 2, RunMemoryBits: runMem, Pipeline: pipeline,
			Seed: cfg.Seed, Report: rep,
			Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
			TapeOpts: cfg.Storage,
		}.EvalST(cfg.ctx(), union, db, cfg.machine(relalg.NumQueryTapes, cfg.Seed))
		if err != nil {
			return failure("E21", "COST-PLAN", err, core.Reject)
		}
		pipeTotals[i] = rep.TotalSteps()
		if i == 1 {
			staged, err := relalg.Evaluator{Shards: 2, RunMemoryBits: runMem, Seed: cfg.Seed, TapeOpts: cfg.Storage}.
				EvalST(cfg.ctx(), union, db, cfg.machine(relalg.NumQueryTapes, cfg.Seed))
			if err != nil {
				return failure("E21", "COST-PLAN", err, core.Reject)
			}
			if !reflect.DeepEqual(r.Tuples, staged.Tuples) {
				notes = "FAIL: the pipelined union differs from the staged one."
			}
		}
	}
	cut := 100 * float64(pipeTotals[0]-pipeTotals[1]) / float64(pipeTotals[0])
	fmt.Fprintf(&b, "\npipelined handoff on R1 ∪ R2 (2 shards): staged %d steps → pipelined %d steps (−%.1f%%)\n",
		pipeTotals[0], pipeTotals[1], cut)
	if cut < 15 {
		notes = "FAIL: the pipelined handoff cut less than 15% of the end-to-end steps."
	}

	fmt.Fprintf(&b, "worst sort prediction error across the grid: %.1f%% (bound 25%%)\n", 100*worstPredErr)
	if worstPredErr > 0.25 {
		notes = "FAIL: a sort prediction missed the meter by more than 25%."
	}

	// The configured envelope, exercised for real: one more planned
	// evaluation under -budget (or the grid envelope when unset) must
	// reproduce the same bytes. Only the equality is rendered, so the
	// table cannot depend on the configured values.
	cfgBudget := envelope
	if cfg.Budget != nil {
		cfgBudget = *cfg.Budget
	}
	cfgRel, err := relalg.Evaluator{
		Plan: plan.Auto(cfgBudget), Seed: cfg.Seed,
		Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
		Exec: cfg.exec(), TapeOpts: cfg.Storage,
	}.EvalST(cfg.ctx(), q, db, cfg.machine(relalg.NumQueryTapes, cfg.Seed))
	if err != nil {
		return failure("E21", "COST-PLAN", err, core.Reject)
	}
	cfgEqual := reflect.DeepEqual(cfgRel.Tuples, baseRel.Tuples)
	fmt.Fprintf(&b, "\nconfigured-budget run: output ≡ single machine: %v\n", cfgEqual)
	if !cfgEqual {
		notes = "FAIL: the configured-budget evaluation differs from the single-machine engine."
	}

	return Result{
		ID:    "E21",
		Title: "cost-based query planning on the measured frontier",
		Claim: "the analytic sorter model predicts the meter; minimizing predicted critical path per stage beats every fixed shape in-envelope without moving a byte",
		Table: b.String(),
		Notes: notes,
	}
}
