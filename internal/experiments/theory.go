package experiments

import (
	"math/big"
	"math/rand"
	"strings"

	"extmem/internal/core"
	"extmem/internal/listmachine"
	"extmem/internal/lowerbound"
	"extmem/internal/numeric"
	"extmem/internal/perm"
	"extmem/internal/problems"
	"extmem/internal/simulate"
	"extmem/internal/trials"
	"extmem/internal/turing"
)

// E9Sortedness reproduces Remark 20: sortedness(ϕ_m) ≤ 2√m − 1 for
// the bit-reversal permutation, against the Erdős–Szekeres floor √m
// that every permutation obeys.
func E9Sortedness(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%10s %16s %12s %12s %14s", "m", "sortedness(ϕ)", "2√m−1", "ES floor", "random perm")
	notes := "PASS: the bit-reversal permutation meets its O(√m) bound; random permutations stay above √m."
	for _, e := range []int{2, 4, 6, 8, 10, 12, 14, 16} {
		m := 1 << uint(e)
		phi := perm.BitReversal(m)
		s := perm.Sortedness(phi)
		bound := perm.BitReversalBound(m)
		floor := perm.ErdosSzekeresFloor(m)
		rnd := perm.Sortedness(perm.Random(m, rng))
		row(&b, "%10d %16d %12d %12d %14d", m, s, bound, floor, rnd)
		if s > bound || s < floor || rnd < floor {
			notes = "FAIL: sortedness bound violated."
		}
	}
	return Result{
		ID:    "E9",
		Title: "sortedness of the bit-reversal permutation",
		Claim: "Remark 20: sortedness(ϕ_m) ≤ 2√m − 1; every permutation has sortedness Ω(√m)",
		Table: b.String(),
		Notes: notes,
	}
}

// E10Simulation reproduces Lemma 16: each sample Turing machine and
// its wrapped list machine have EXACTLY equal acceptance
// probabilities (compared as rationals, not samples).
func E10Simulation(Config) Result {
	var b strings.Builder
	row(&b, "%14s %10s %14s %14s %8s", "machine", "input", "Pr[TM]", "Pr[NLM]", "equal")
	notes := "PASS: acceptance probabilities agree exactly on every machine and input."
	cases := []struct {
		tm     *turing.Machine
		values []string
		n      int
		sep    bool
	}{
		{turing.CoinMachine(2), []string{""}, 0, false},
		{turing.ThreeWayMachine(), []string{""}, 0, false},
		{turing.GuessBitMachine(), []string{"1"}, 1, false},
		{turing.RandomScanMachine(), []string{"1101"}, 4, false},
		{turing.ParityMachine(), []string{"1010"}, 4, false},
	}
	for _, c := range cases {
		s, err := simulate.New(c.tm, 1, c.n, c.sep, 100000)
		if err != nil {
			return failure("E10", "L16-SIM", err, core.Reject)
		}
		pTM, err := c.tm.AcceptProbability(s.TMInput(c.values), 100000)
		if err != nil {
			return failure("E10", "L16-SIM", err, core.Reject)
		}
		pLM, err := s.NLM.AcceptProbability(c.values)
		if err != nil {
			return failure("E10", "L16-SIM", err, core.Reject)
		}
		eq := pTM.Cmp(pLM) == 0
		row(&b, "%14s %10q %14s %14s %8v", c.tm.Name, c.values[0], pTM.RatString(), pLM.RatString(), eq)
		if !eq {
			notes = "FAIL: probabilities differ."
		}
	}
	return Result{
		ID:    "E10",
		Title: "Turing machine → list machine simulation",
		Claim: "Lemma 16: Pr[M accepts v] = Pr[T accepts v₁#…v_m#], with matching reversal budgets",
		Table: b.String(),
		Notes: notes,
	}
}

// E11Counting reproduces the quantitative core of Lemmas 21/22/32:
// the skeleton-count bound collapses against the structured-input
// count exactly when n crosses the 1+(m²+1)log(2k) threshold, and the
// induced scan frontier grows as Θ(log N).
func E11Counting(Config) Result {
	var b strings.Builder
	b.WriteString("Pigeonhole gap (Lemma 21, Claim 2): values of v₁ per (choices, skeleton) class\n")
	row(&b, "%6s %8s %10s %24s %10s", "m", "k", "n", "gap = 2^n/(2m(2k)^{m²})", "≥ 2 ?")
	notes := "PASS: the gap crosses 2 exactly at the lemma's n threshold; the frontier is Θ(log N)."
	for _, m := range []int{4, 8, 16} {
		k := big.NewInt(int64(2*m + 3))
		nMin := 1 + (m*m+1)*new(big.Int).Lsh(k, 1).BitLen()
		for _, n := range []int{nMin / 2, nMin} {
			gap := lowerbound.PigeonholeGap(m, n, k)
			ok := gap.Cmp(big.NewRat(2, 1)) >= 0
			row(&b, "%6d %8v %10d %24s %10v", m, k, n, approxRat(gap), ok)
			if (n >= nMin) != ok {
				notes = "FAIL: gap does not match the threshold."
			}
		}
	}
	b.WriteString("\nTightness frontier (Lemma 22, t = 2, d = 1): max scans r where the lower bound applies\n")
	b.WriteString(lowerbound.FrontierTable(lowerbound.Frontier(2, 1, 11, 22)))
	return Result{
		ID:    "E11",
		Title: "skeleton counting and the Ω(log N) frontier",
		Claim: "Lemmas 21/22/32: #skeletons ≤ (2k)^{m²} beats #inputs ⇒ no machine below Θ(log N) scans",
		Table: b.String(),
		Notes: notes,
	}
}

func approxRat(r *big.Rat) string {
	f, _ := r.Float64()
	if f > 1e18 {
		return "≫ 2 (astronomical)"
	}
	return r.FloatString(2)
}

// E12MergeLemma reproduces Lemmas 37/38 on real list-machine runs:
// the number of matched pairs (i, m+ϕ(i)) a run compares stays below
// t^{2r}·sortedness(ϕ), so for the bit-reversal ϕ most pairs are
// never compared — the information bottleneck behind Theorem 6.
func E12MergeLemma(Config) Result {
	var b strings.Builder
	row(&b, "%6s %4s %4s %16s %22s %14s", "m", "t", "r", "pairs compared", "bound t^2r·srt(ϕ)", "uncompared")
	notes := "PASS: compared matched pairs ≤ merge-lemma bound; a positive fraction stays uncompared."
	for _, mHalf := range []int{4, 8, 16, 32} {
		mc := listmachine.CopyReverseCompareNLM(mHalf)
		input := make([]string, 2*mHalf)
		for i := range input {
			input[i] = string(rune('a' + i%26))
		}
		run, err := mc.RunDeterministic(input)
		if err != nil {
			return failure("E12", "L38-MERGE", err, core.Reject)
		}
		phi := perm.BitReversal(mHalf)
		r := run.Scans()
		compared := 0
		for i := 0; i < mHalf; i++ {
			lo, hi := i, mHalf+phi[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			if run.Skeleton.Compared(lo, hi) {
				compared++
			}
		}
		bound := 1
		for i := 0; i < 2*r; i++ {
			bound *= mc.T
		}
		bound *= perm.Sortedness(phi)
		row(&b, "%6d %4d %4d %16d %22d %14d", mHalf, mc.T, r, compared, bound, mHalf-compared)
		if compared > bound {
			notes = "FAIL: merge lemma bound violated."
		}
	}
	return Result{
		ID:    "E12",
		Title: "merge lemma: compared-positions census",
		Claim: "Lemma 38: at most t^{2r}·sortedness(ϕ) matched pairs (i, m+ϕ(i)) are ever compared",
		Table: b.String(),
		Notes: notes,
	}
}

// E13RunLength reproduces Lemma 3: measured TM run lengths stay below
// N·2^{c·r·(t+s)}.
func E13RunLength(Config) Result {
	var b strings.Builder
	row(&b, "%12s %6s %8s %8s %8s %14s", "machine", "N", "steps", "scans", "space", "bound N·2^{r(t+s)}")
	notes := "PASS: run lengths within the Lemma 3 envelope (constant c = 1 suffices here)."
	cases := []struct {
		tm    *turing.Machine
		input string
	}{
		{turing.ParityMachine(), "101101"},
		{turing.ZigZagMachine(3), "^10110"},
		{turing.CopyMachine(), "10110"},
	}
	for _, c := range cases {
		res, err := c.tm.RunDeterministic([]byte(c.input), 1_000_000)
		if err != nil {
			return failure("E13", "L3-RUNLEN", err, core.Reject)
		}
		n := len(c.input)
		r := res.Stats.ExternalScans(c.tm.T)
		s := res.Stats.InternalSpace(c.tm.T)
		bound := new(big.Int).Lsh(big.NewInt(int64(n)), uint(r*(c.tm.T+s)))
		row(&b, "%12s %6d %8d %8d %8d %14v", c.tm.Name, n, res.Stats.Steps, r, s, bound)
		if big.NewInt(int64(res.Stats.Steps)).Cmp(bound) > 0 {
			notes = "FAIL: run length exceeds the Lemma 3 bound."
		}
	}
	return Result{
		ID:    "E13",
		Title: "run-length envelope",
		Claim: "Lemma 3: every run has length ≤ N·2^{O(r(N)·(t+s(N)))}",
		Table: b.String(),
		Notes: notes,
	}
}

// E14PrimeCollision reproduces Claim 1: the probability that a random
// prime p ≤ k identifies two distinct values decays as O(1/m). Each
// row is a parallel trial fleet; the Wilson 95% interval on the
// collision rate is reported next to the point estimate.
func E14PrimeCollision(cfg Config) Result {
	var b strings.Builder
	row(&b, "%6s %6s %12s %14s %14s %20s", "m", "n", "trials", "collision rate", "1/m", "95% CI")
	notes := "PASS: empirical collision rate at or below the O(1/m) envelope."
	for i, m := range []int{4, 8, 16, 32} {
		n := 12
		k, err := numeric.FingerprintModulus(uint64(m), uint64(n))
		if err != nil {
			return failure("E14", "CLAIM1", err, core.Reject)
		}
		_, sum, err := cfg.launch()(cfg.fleet(300), trials.Seed(cfg.Seed, 1400+i), nil).Run(cfg.ctx(),
			func(_ int, rng *rand.Rand) trials.Result {
				in := problems.GenMultisetNo(m, n, rng)
				p, err := numeric.RandomPrimeUpTo(k, rng)
				if err != nil {
					return trials.Result{Err: err.Error()}
				}
				return trials.Result{Accept: residuesCollide(in, p)}
			})
		if err != nil {
			return failure("E14", "CLAIM1", err, core.Reject)
		}
		rate := sum.AcceptRate()
		lo, hi := sum.AcceptCI(1.96)
		row(&b, "%6d %6d %12d %14.4f %14.4f    [%.4f, %.4f]", m, n, sum.Trials, rate, 1.0/float64(m), lo, hi)
		if rate > 8.0/float64(m)+0.05 {
			notes = "FAIL: collision rate above the O(1/m) envelope."
		}
	}
	return Result{
		ID:    "E14",
		Title: "random-prime fingerprint collisions",
		Claim: "Claim 1: Pr[∃ i,j: v_i ≠ v'_j but v_i ≡ v'_j mod p] ≤ O(1/m) for random prime p ≤ k",
		Table: b.String(),
		Notes: notes,
	}
}

// residuesCollide reports whether reducing mod p makes the two halves
// equal as multisets of residues while the values differ.
func residuesCollide(in problems.Instance, p uint64) bool {
	count := map[uint64]int{}
	for _, v := range in.V {
		count[residue(v, p)]++
	}
	for _, w := range in.W {
		count[residue(w, p)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func residue(v string, p uint64) uint64 {
	var e uint64
	for i := 0; i < len(v); i++ {
		bit := uint64(0)
		if v[i] == '1' {
			bit = 1
		}
		e = numeric.AddMod(numeric.AddMod(e, e, p), bit, p)
	}
	return e
}

// E15ShortReduction reproduces the Corollary 7 reduction f: yes/no
// preservation into the SHORT problem versions with linear blowup.
func E15ShortReduction(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%6s %8s %10s %12s %12s %10s", "m", "N in", "N out", "value len", "yes↦yes", "no↦no")
	notes := "PASS: f preserves membership both ways; output values have length 5·log₂ m."
	for _, m := range []int{4, 8, 16} {
		g, err := problems.NewCheckPhiGen(m, 3*m) // n divisible-ish, any n works
		if err != nil {
			return failure("E15", "SHORT-RED", err, core.Reject)
		}
		yes := g.Yes(rng)
		no := g.No(rng)
		outYes, err := problems.ShortReduction(yes, g.Phi)
		if err != nil {
			return failure("E15", "SHORT-RED", err, core.Reject)
		}
		outNo, err := problems.ShortReduction(no, g.Phi)
		if err != nil {
			return failure("E15", "SHORT-RED", err, core.Reject)
		}
		yesOK := problems.MultisetEquality(outYes) && problems.CheckSort(outYes)
		noOK := !problems.MultisetEquality(outNo) && !problems.CheckSort(outNo)
		row(&b, "%6d %8d %10d %12d %12v %10v",
			m, yes.Size(), outYes.Size(), len(outYes.V[0]), yesOK, noOK)
		if !yesOK || !noOK {
			notes = "FAIL: reduction broke membership."
		}
	}
	return Result{
		ID:    "E15",
		Title: "reduction to the SHORT problem versions",
		Claim: "Corollary 7 (Appendix E): f maps CHECK-ϕ to SHORT-(MULTI)SET-EQUALITY/CHECK-SORT in ST(O(1), O(log N), 2)",
		Table: b.String(),
		Notes: notes,
	}
}

// E16Adversary demonstrates Theorem 6's mechanism constructively: the
// pigeonhole adversary defeats every deterministic bounded-state
// one-scan machine. Probing the candidate halves — the expensive part
// of the attack — fans out over the sharded fleet layer (cfg.Shards
// shards of cfg.Parallel workers), each probe feeding a fresh machine
// from the factory; the collision found is identical to the
// sequential scan's.
func E16Adversary(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%24s %8s %10s %10s %8s", "machine", "states", "probes", "collision", "fooled")
	notes := "PASS: every bounded-state sketch collides within ~state-count probes and is fooled."
	machines := []struct {
		name string
		mk   lowerbound.StreamFactory
		pro  int
	}{
		{"hash (10-bit)", func() lowerbound.StreamMachine { return lowerbound.NewHashStream(10, 4) }, 1200},
		{"commutative (8-bit)", func() lowerbound.StreamMachine { return lowerbound.NewCommutativeHashStream(8, 4) }, 400},
		{"commutative (12-bit)", func() lowerbound.StreamMachine { return lowerbound.NewCommutativeHashStream(12, 4) }, 5000},
	}
	for _, mc := range machines {
		halves := lowerbound.RandomHalves(mc.pro, 4, 8, rng)
		col, found := lowerbound.FindCollisionParallel(cfg.ctx(), mc.mk, halves, cfg.probeLaunch())
		fooled := false
		if found {
			var err error
			fooled, err = col.Verify(mc.mk())
			if err != nil {
				found = false
			}
		}
		row(&b, "%24s %8s %10d %10v %8v", mc.name, "2^bits", mc.pro, found, fooled)
		if !found || !fooled {
			notes = "FAIL: adversary did not defeat the machine."
		}
	}
	return Result{
		ID:    "E16",
		Title: "pigeonhole adversary vs bounded-memory streaming",
		Claim: "Theorem 6 mechanism: too little retained information ⇒ indistinguishable inputs ⇒ forced error",
		Table: b.String(),
		Notes: notes,
	}
}
