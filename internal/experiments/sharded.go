package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/shard"
	"extmem/internal/transport"
	"extmem/internal/trials"
)

// E18ShardedExecution measures the sharded execution layer against the
// single-machine baselines it must not disturb. The sort half sweeps
// the shard count over one fixed instance: every row reports the
// per-shard (r, s, t) reports next to their max/sum rollup and the
// critical-path step count (distribute → slowest shard → merge), and
// verifies the output is byte-identical to the unsharded engine — the
// run-level partitioning at work. The fleet half runs the same
// fingerprint fleet at 1, 2 and 4 shards and verifies the per-trial
// result sequences are identical, the disjoint trial-index-range
// derivation at work. The table itself sweeps shard counts
// internally, so it is byte-identical at any cfg.Shards — sharding is
// an execution choice, never an observable one.
func E18ShardedExecution(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := problems.GenMultisetYes(512, 16, rng) // 1024 items of 16 bits
	enc := in.Encode()
	const (
		fanIn   = 4
		runMem  = 1024 // 64 initial runs of 16 items
		baseFan = fanIn + 2
	)

	// Single-machine baseline: the plain PR 3 engine on one machine.
	base := cfg.machine(baseFan, cfg.Seed)
	base.SetInput(enc)
	bs := algorithms.Sorter{FanIn: fanIn, RunMemoryBits: runMem}
	if err := bs.SortToTape(base, 1, algorithms.WorkTapes(base, 1)); err != nil {
		return failure("E18", "SHARD-EXEC", err, core.Reject)
	}
	baseRes := base.Resources()
	baseOut := base.Tape(1).Contents()

	var b strings.Builder
	fmt.Fprintf(&b, "Sharded sort: %d items × 16 bits, fan-in %d, run memory %d bits; single machine: %d scans, %d bits, %d steps\n",
		1024, fanIn, runMem, baseRes.Scans(), baseRes.PeakMemoryBits, baseRes.Steps)
	row(&b, "%7s %6s %18s %6s %6s %11s %11s %9s %8s %10s %6s %6s", "shards", "runs",
		"per-shard scans", "max r", "sum r", "max s bits", "crit steps", "speedup", "output≡", "merge r", "proc≡", "tcp≡")
	notes := "PASS: outputs byte-identical at every shard count and across the process and TCP\n" +
		"transports; fleets identical at every shard count; sum(scans) ≥ single-machine scans and\n" +
		"max(shard memory) ≤ single-machine memory — sharding buys critical-path time\n" +
		"with total work, never with the answer."
	pr := cfg.proc()
	// The TCP rows self-host loopback workers (the same serve loop a
	// remote stworker runs), so the table exists — byte-identical — in
	// every run, configured `-transport tcp` or not.
	tcpT, tcpStop, err := transport.LocalWorkers(2)
	if err != nil {
		return failure("E18", "SHARD-EXEC", err, core.Reject)
	}
	defer tcpStop()
	for _, shards := range []int{1, 2, 4} {
		out, rep, err := shard.Sort{
			Shards: shards, FanIn: fanIn, RunMemoryBits: runMem,
			Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
			TapeOpts: cfg.Storage,
		}.Run(cfg.ctx(), enc, cfg.Seed)
		if err != nil {
			return failure("E18", "SHARD-EXEC", err, core.Reject)
		}
		// The same execution with every shard-local sort in a worker
		// process, then on loopback TCP workers: the sorted bytes and
		// the whole report — per-shard (r, s, t) census included — must
		// cross the pipes and the network intact.
		pout, prep, err := shard.Sort{
			Shards: shards, FanIn: fanIn, RunMemoryBits: runMem,
			Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(), Exec: pr.Exec(),
			TapeOpts: cfg.Storage,
		}.Run(cfg.ctx(), enc, cfg.Seed)
		if err != nil {
			return failure("E18", "SHARD-EXEC", err, core.Reject)
		}
		tout, trep, err := shard.Sort{
			Shards: shards, FanIn: fanIn, RunMemoryBits: runMem,
			Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(), Exec: tcpT.Exec(),
			TapeOpts: cfg.Storage,
		}.Run(cfg.ctx(), enc, cfg.Seed)
		if err != nil {
			return failure("E18", "SHARD-EXEC", err, core.Reject)
		}
		agg := rep.Rollup()
		perShard := make([]int, len(rep.Shards))
		for i, r := range rep.Shards {
			perShard[i] = r.Scans()
		}
		equal := bytes.Equal(out, baseOut)
		procEq := bytes.Equal(pout, out) && reflect.DeepEqual(prep, rep)
		tcpEq := bytes.Equal(tout, out) && reflect.DeepEqual(trep, rep)
		speedup := float64(baseRes.Steps) / float64(rep.CriticalPathSteps())
		row(&b, "%7d %6d %18s %6d %6d %11d %11d %8.2fx %8v %10d %6v %6v",
			shards, rep.Runs, fmt.Sprint(perShard), agg.MaxScans, agg.SumScans, agg.MaxMemoryBits,
			rep.CriticalPathSteps(), speedup, equal, rep.Merge.Scans(), procEq, tcpEq)
		if !equal {
			notes = "FAIL: sharded sort output differs from the single-machine engine."
		}
		if !procEq {
			notes = "FAIL: the process-transport sort differs from the in-process run."
		}
		if !tcpEq {
			notes = "FAIL: the TCP-transport sort differs from the in-process run."
		}
		if agg.SumScans < baseRes.Scans() {
			notes = "FAIL: rollup lost scans relative to the single machine."
		}
		if agg.MaxMemoryBits > baseRes.PeakMemoryBits {
			notes = "FAIL: a shard exceeded the single-machine memory peak."
		}
	}

	// Fleet half: the same fingerprint fleet at three shard counts must
	// produce identical per-trial result sequences — in-process and
	// with every shard range shipped to a worker process.
	fleetN := cfg.fleet(48)
	fleetSeed := trials.Seed(cfg.Seed, 1800)
	// The trial body is the registered fingerprint-value workload (each
	// row records the trial's random reduction prime p1, so the equality
	// check compares genuinely per-trial random content, not just a
	// column of identical verdicts) — registered so it has a wire form
	// the process transport can ship.
	w, trial := algorithms.FingerprintValueWorkload(4, 12)
	var ref []trials.Result
	fmt.Fprintf(&b, "\nSharded fingerprint fleet: %d trials, no-instances m=4 n=12\n", fleetN)
	row(&b, "%7s %8s %9s %14s %12s %6s %6s", "shards", "trials", "accepts", "Σ p1 (rng)", "rows ≡ 1?", "proc≡", "tcp≡")
	for _, shards := range []int{1, 2, 4} {
		rs, sum, err := shard.Fleet{
			Plan:     shard.Plan{Shards: shards, Trials: fleetN},
			Parallel: cfg.Parallel,
			Seed:     fleetSeed,
			Retry:    cfg.Retry,
		}.Run(cfg.ctx(), trial)
		if err != nil {
			return failure("E18", "SHARD-EXEC", err, core.Reject)
		}
		// The same fleet with every shard attempt in a worker process:
		// the workload ships by name and spec, the rows come back in
		// trial order, and nothing above the launcher seam can tell.
		prs, psum, err := shard.Fleet{
			Plan:     shard.Plan{Shards: shards, Trials: fleetN},
			Parallel: cfg.Parallel,
			Seed:     fleetSeed,
			Retry:    cfg.Retry,
			Attempt:  pr.Attempt(),
		}.Run(trials.WithWorkload(cfg.ctx(), w), trial)
		if err != nil {
			return failure("E18", "SHARD-EXEC", err, core.Reject)
		}
		trs, tsum, err := shard.Fleet{
			Plan:     shard.Plan{Shards: shards, Trials: fleetN},
			Parallel: cfg.Parallel,
			Seed:     fleetSeed,
			Retry:    cfg.Retry,
			Attempt:  tcpT.Attempt(),
		}.Run(trials.WithWorkload(cfg.ctx(), w), trial)
		if err != nil {
			return failure("E18", "SHARD-EXEC", err, core.Reject)
		}
		if ref == nil {
			ref = rs
		}
		var sumP1 float64
		for _, r := range rs {
			sumP1 += r.Value
		}
		same := reflect.DeepEqual(rs, ref)
		procEq := reflect.DeepEqual(prs, rs) && reflect.DeepEqual(psum, sum)
		tcpEq := reflect.DeepEqual(trs, rs) && reflect.DeepEqual(tsum, sum)
		row(&b, "%7d %8d %9d %14.0f %12v %6v %6v", shards, sum.Trials, sum.Accepts, sumP1, same, procEq, tcpEq)
		if !same {
			notes = "FAIL: sharded fleet results differ from the single-shard run."
		}
		if !procEq {
			notes = "FAIL: the process-transport fleet differs from the in-process run."
		}
		if !tcpEq {
			notes = "FAIL: the TCP-transport fleet differs from the in-process run."
		}
	}

	return Result{
		ID:    "E18",
		Title: "sharded deterministic execution (runs + trial ranges)",
		Claim: "k-machine partitioning of the ST workloads: shard runs and trial-index ranges, byte-identical outputs, per-shard (r, s, t) auditable",
		Table: b.String(),
		Notes: notes,
	}
}
