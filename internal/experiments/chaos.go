package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/faults"
	"extmem/internal/problems"
	"extmem/internal/shard"
	"extmem/internal/transport"
	"extmem/internal/trials"
)

// E20FaultTolerance tables the chaos determinism matrix: seed-derived
// fault plans (internal/faults) injected into the trial fleet and the
// sharded sort, swept over shard counts and retry policies, with the
// output bytes compared against the fault-free run throughout. The
// claim under test is the execution-layer converse of the repo's
// standing invariant: because every trial row and every sorted range
// is a pure function of (seed, index), recovery — panic capture,
// shard retry, coordinator fallback — can only change the attempt
// census, never a byte of output. Recoverable plans (flaky panics,
// delays) reproduce the fault-free bytes exactly; a permanent panic
// plan degrades to a deterministic per-trial error row at exactly the
// struck site. Attempt/retry tallies that depend on scheduling (how
// many strikes one engine attempt consumes varies with the worker
// interleaving) are deliberately kept out of the table, which must be
// byte-identical at any cfg.Shards × cfg.Parallel.
func E20FaultTolerance(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	notes := "PASS: recoverable chaos (flaky panics, delays) never moved a byte at any shard count;\n" +
		"a permanent panic degraded to a deterministic error row at exactly the struck site;\n" +
		"sort-side faults recovered with byte-identical output and fault-free resource census;\n" +
		"real worker deaths (exit, SIGKILL, garbage frames) recovered identically across the process\n" +
		"boundary, and connection deaths (drops, stalls past the deadline) across the TCP boundary."

	// ---- Fleet half: fault plans over the fingerprint trial fleet.
	// The trial body is the registered fingerprint-value workload, so
	// the transport half below can ship the very same fleet to worker
	// processes and compare rows against the same baseline.
	n := cfg.fleet(32)
	fleetSeed := trials.Seed(cfg.Seed, 2000)
	w, trial := algorithms.FingerprintValueWorkload(4, 12)

	flaky := faults.Plan{Seed: cfg.Seed, Mode: faults.Panic, Rate: 0.1, Flaky: 1}
	delayed := faults.Plan{Seed: cfg.Seed, Mode: faults.Delay, Rate: 0.25, Delay: 100 * time.Microsecond}
	perm := faults.Plan{Mode: faults.Panic, Sites: []int{3}}
	// Every retry of a flaky shard consumes at least one of its sites'
	// single strikes, so a budget beyond the struck-site count can
	// never exhaust — the no-fallback guarantee the row asserts.
	flakyBudget := shard.RetryPolicy{MaxAttempts: len(flaky.StruckSites(n)) + 2}
	permBudget := shard.RetryPolicy{MaxAttempts: 2}

	baseline, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: cfg.Parallel, Seed: fleetSeed,
	}.Run(cfg.ctx(), trial)
	if err != nil {
		return failure("E20", "CHAOS-DET", err, core.Reject)
	}

	fmt.Fprintf(&b, "Chaos fleet: %d fingerprint trials, plan seed %d\n", n, cfg.Seed)
	row(&b, "%14s %7s %8s %7s %6s %6s %5s %10s", "plan", "shards",
		"struck", "rec>0", "retry?", "falls", "errs", "rows")
	fleetPlans := []struct {
		name   string
		plan   faults.Plan
		retry  shard.RetryPolicy
		degIdx int // site expected to degrade to an error row; -1 = none
	}{
		{"none", faults.Plan{}, shard.RetryPolicy{}, -1},
		{"flaky-panic", flaky, flakyBudget, -1},
		{"delay", delayed, shard.RetryPolicy{}, -1},
		{"perm-panic@3", perm, permBudget, 3},
	}
	for _, fp := range fleetPlans {
		struck := fp.plan.StruckSites(n)
		for _, shards := range []int{1, 2, 4} {
			launch := fp.plan.Trials(shard.LaunchRetry(shards, cfg.Parallel, fp.retry))
			rs, sum, err := launch(n, fleetSeed, nil).Run(cfg.ctx(), trial)
			// A nil result slice is a hard failure (unrecovered panic,
			// cancellation); a non-nil err alongside rows is the standing
			// FirstErr contract — exactly what the degraded perm-panic
			// plan is expected to produce.
			if rs == nil {
				return failure("E20", "CHAOS-DET", err, core.Reject)
			}
			// What the rows should be: the fault-free baseline, except a
			// permanently struck site degrades to its deterministic
			// recovered-panic error row.
			rowsOK := true
			for i, r := range rs {
				if i == fp.degIdx {
					rowsOK = rowsOK && strings.HasPrefix(r.Err, "recovered panic:")
				} else {
					rowsOK = rowsOK && reflect.DeepEqual(r, baseline[i])
				}
			}
			rowsCol := "≡"
			if fp.degIdx >= 0 {
				rowsCol = fmt.Sprintf("deg@%d", fp.degIdx)
			}
			if !rowsOK {
				rowsCol = "DIFF"
				notes = fmt.Sprintf("FAIL: plan %s at %d shards changed rows beyond its strike schedule.", fp.name, shards)
			}
			// Scheduling-independent recovery facts only: whether any
			// panic was recovered, whether any retry happened, fallback
			// and error-row counts. (Exact retry tallies depend on how
			// many strikes one engine attempt consumed — bounded, but
			// not schedule-free.)
			wantRec := fp.plan.Mode == faults.Panic && len(struck) > 0
			if (sum.Recovered > 0) != wantRec {
				notes = fmt.Sprintf("FAIL: plan %s at %d shards: recovered>0 = %v, want %v.",
					fp.name, shards, sum.Recovered > 0, wantRec)
			}
			wantFalls := 0
			if fp.degIdx >= 0 {
				wantFalls = 1
			}
			if sum.Fallbacks != wantFalls {
				notes = fmt.Sprintf("FAIL: plan %s at %d shards: %d fallbacks, want %d.",
					fp.name, shards, sum.Fallbacks, wantFalls)
			}
			row(&b, "%14s %7d %8d %7v %6v %6d %5d %10s", fp.name, shards,
				len(struck), sum.Recovered > 0, sum.Retries > 0 || sum.Recovered > sum.Fallbacks,
				sum.Fallbacks, sum.Errors, rowsCol)
		}
	}

	// ---- Sort half: shard-targeted fault plans over the sharded sort.
	in := problems.GenMultisetYes(256, 16, rng) // 512 items of 16 bits
	enc := in.Encode()
	const (
		fanIn  = 4
		runMem = 1024
	)
	cleanOut, cleanRep, err := shard.Sort{Shards: 2, FanIn: fanIn, RunMemoryBits: runMem, TapeOpts: cfg.Storage}.
		Run(cfg.ctx(), enc, cfg.Seed)
	if err != nil {
		return failure("E20", "CHAOS-DET", err, core.Reject)
	}

	fmt.Fprintf(&b, "\nChaos sort: %d items × 16 bits, fan-in %d, run memory %d bits; faults target shard 0\n",
		512, fanIn, runMem)
	row(&b, "%14s %7s %7s %9s %5s %6s %8s %8s", "plan", "shards", "budget",
		"attempts", "rec", "falls", "output≡", "census≡")
	sortPlans := []struct {
		name             string
		plan             faults.Plan
		budget           int
		extra, rec, fall int // expected deltas over the fault-free run
	}{
		{"none", faults.Plan{}, 1, 0, 0, 0},
		{"flaky-panic@0", faults.Plan{Mode: faults.Panic, Sites: []int{0}, Flaky: 1}, 2, 1, 1, 0},
		{"perm-panic@0", faults.Plan{Mode: faults.Panic, Sites: []int{0}}, 2, 2, 2, 1},
		{"perm-error@0", faults.Plan{Mode: faults.Error, Sites: []int{0}}, 1, 1, 0, 1},
	}
	for _, sp := range sortPlans {
		for _, shards := range []int{2, 4} {
			clean, cleanR, err := shard.Sort{Shards: shards, FanIn: fanIn, RunMemoryBits: runMem, TapeOpts: cfg.Storage}.
				Run(cfg.ctx(), enc, cfg.Seed)
			if err != nil {
				return failure("E20", "CHAOS-DET", err, core.Reject)
			}
			out, rep, err := shard.Sort{
				Shards: shards, FanIn: fanIn, RunMemoryBits: runMem,
				Retry:    shard.RetryPolicy{MaxAttempts: sp.budget},
				Inject:   sp.plan.ShardInject(),
				TapeOpts: cfg.Storage,
			}.Run(cfg.ctx(), enc, cfg.Seed)
			if err != nil {
				return failure("E20", "CHAOS-DET", err, core.Reject)
			}
			outEq := bytes.Equal(out, cleanOut) && bytes.Equal(out, clean)
			censusEq := reflect.DeepEqual(rep.Shards, cleanR.Shards) &&
				reflect.DeepEqual(rep.Merge, cleanR.Merge)
			row(&b, "%14s %7d %7d %9d %5d %6d %8v %8v", sp.name, shards, sp.budget,
				rep.Attempts, rep.Recovered, rep.Fallbacks, outEq, censusEq)
			if !outEq {
				notes = fmt.Sprintf("FAIL: sort plan %s at %d shards changed the output bytes.", sp.name, shards)
			}
			if !censusEq {
				notes = fmt.Sprintf("FAIL: sort plan %s at %d shards changed the successful-attempt census.", sp.name, shards)
			}
			if rep.Attempts != shards+sp.extra || rep.Recovered != sp.rec || rep.Fallbacks != sp.fall {
				notes = fmt.Sprintf("FAIL: sort plan %s at %d shards: census (a=%d r=%d f=%d), want (a=%d r=%d f=%d).",
					sp.name, shards, rep.Attempts, rep.Recovered, rep.Fallbacks,
					shards+sp.extra, sp.rec, sp.fall)
			}
		}
	}

	// ---- Transport half: real worker faults across the process
	// boundary. The same fingerprint fleet runs with every shard range
	// shipped to a worker process, and the WorkerFault orders make the
	// worker actually die — exit(1) mid-stream, self-SIGKILL, a garbage
	// frame — not simulate it. Faults key on (shard, attempt), so the
	// census is exact and deterministic, and the recovered rows must be
	// the baseline bytes: process death is just another recoverable
	// shard fault.
	fmt.Fprintf(&b, "\nChaos transport: real worker faults, %d-trial fleet on 2 shards, retry budget 2\n", n)
	row(&b, "%14s %8s %6s %5s %5s %6s", "fault", "retries", "falls", "rec", "errs", "rows")
	procPlans := []struct {
		name                string
		fault               func(sh, attempt int) *transport.WorkerFault
		retries, falls, rec int
	}{
		{"none", nil, 0, 0, 0},
		// Shard 0's first worker exits(1) after streaming one row; the
		// retry's worker completes the range.
		{"exit@s0a1", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Exit: true, ExitAfter: 1}
			}
			return nil
		}, 1, 0, 1},
		// Shard 1's first worker streams a garbage length prefix: a
		// malformed frame is worker death too.
		{"corrupt@s1a1", func(sh, attempt int) *transport.WorkerFault {
			if sh == 1 && attempt == 1 {
				return &transport.WorkerFault{Corrupt: true}
			}
			return nil
		}, 1, 0, 1},
		// Every worker shard 0 ever gets is SIGKILLed mid-stream: the
		// budget exhausts and the coordinator absorbs the range itself.
		{"kill@s0", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 {
				return &transport.WorkerFault{Exit: true, ExitAfter: 1, Kill: true}
			}
			return nil
		}, 1, 1, 2},
	}
	for _, pp := range procPlans {
		tp := &transport.Proc{Fault: pp.fault}
		rs, sum, err := shard.Fleet{
			Plan:     shard.Plan{Shards: 2, Trials: n},
			Parallel: cfg.Parallel,
			Seed:     fleetSeed,
			Retry:    shard.RetryPolicy{MaxAttempts: 2},
			Attempt:  tp.Attempt(),
		}.Run(trials.WithWorkload(cfg.ctx(), w), trial)
		if rs == nil {
			return failure("E20", "CHAOS-DET", err, core.Reject)
		}
		rowsCol := "≡"
		if !reflect.DeepEqual(rs, baseline) {
			rowsCol = "DIFF"
			notes = fmt.Sprintf("FAIL: transport fault %s changed the recovered rows.", pp.name)
		}
		if sum.Retries != pp.retries || sum.Fallbacks != pp.falls ||
			sum.Recovered != pp.rec || sum.Errors != 0 {
			notes = fmt.Sprintf("FAIL: transport fault %s: census (retry=%d fall=%d rec=%d err=%d), want (%d %d %d 0).",
				pp.name, sum.Retries, sum.Fallbacks, sum.Recovered, sum.Errors,
				pp.retries, pp.falls, pp.rec)
		}
		row(&b, "%14s %8d %6d %5d %5d %6s", pp.name,
			sum.Retries, sum.Fallbacks, sum.Recovered, sum.Errors, rowsCol)
	}

	// The sort side of the same story: worker-process shard sorts under
	// real faults. A dead worker is an error, never a panic, so the
	// Recovered column of the census stays zero while Attempts and
	// Fallbacks move — and the output bytes and the successful attempts'
	// (r, s, t) reports match the fault-free 2-shard run exactly.
	fmt.Fprintf(&b, "\nChaos transport sort: worker-process shard sorts at 2 shards, retry budget 2\n")
	row(&b, "%14s %9s %5s %6s %8s %8s", "fault", "attempts", "rec", "falls", "output≡", "census≡")
	sortProcPlans := []struct {
		name        string
		fault       func(sh, attempt int) *transport.WorkerFault
		extra, fall int // expected deltas over the fault-free run
	}{
		{"none", nil, 0, 0},
		{"exit@s0a1", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Exit: true}
			}
			return nil
		}, 1, 0},
		{"kill@s0", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 {
				return &transport.WorkerFault{Exit: true, Kill: true}
			}
			return nil
		}, 2, 1},
	}
	for _, sp := range sortProcPlans {
		tp := &transport.Proc{Fault: sp.fault}
		out, rep, err := shard.Sort{
			Shards: 2, FanIn: fanIn, RunMemoryBits: runMem,
			Retry: shard.RetryPolicy{MaxAttempts: 2},
			Exec:  tp.Exec(), TapeOpts: cfg.Storage,
		}.Run(cfg.ctx(), enc, cfg.Seed)
		if err != nil {
			return failure("E20", "CHAOS-DET", err, core.Reject)
		}
		outEq := bytes.Equal(out, cleanOut)
		censusEq := reflect.DeepEqual(rep.Shards, cleanRep.Shards) &&
			reflect.DeepEqual(rep.Merge, cleanRep.Merge)
		row(&b, "%14s %9d %5d %6d %8v %8v", sp.name,
			rep.Attempts, rep.Recovered, rep.Fallbacks, outEq, censusEq)
		if !outEq {
			notes = fmt.Sprintf("FAIL: transport sort fault %s changed the output bytes.", sp.name)
		}
		if !censusEq {
			notes = fmt.Sprintf("FAIL: transport sort fault %s changed the successful-attempt census.", sp.name)
		}
		if rep.Attempts != 2+sp.extra || rep.Recovered != 0 || rep.Fallbacks != sp.fall {
			notes = fmt.Sprintf("FAIL: transport sort fault %s: census (a=%d r=%d f=%d), want (a=%d r=0 f=%d).",
				sp.name, rep.Attempts, rep.Recovered, rep.Fallbacks, 2+sp.extra, sp.fall)
		}
	}

	// ---- TCP transport half: the same fleet and sort with loopback TCP
	// workers, under connection-level chaos — a worker that closes the
	// connection mid-stream (Drop) and one that stalls past the attempt
	// deadline. Network death is process death: the same retry →
	// fallback ladder, the same exact census, the same bytes. Faults
	// key on (shard, attempt), so every count below is asserted
	// exactly, not merely bounded.
	tcpBase, tcpStop, err := transport.LocalWorkers(2)
	if err != nil {
		return failure("E20", "CHAOS-DET", err, core.Reject)
	}
	defer tcpStop()
	fmt.Fprintf(&b, "\nChaos TCP transport: connection faults, %d-trial fleet on 2 shards, retry budget 2\n", n)
	row(&b, "%14s %9s %8s %6s %5s %5s %6s", "fault", "deadline", "retries", "falls", "rec", "errs", "rows")
	tcpPlans := []struct {
		name                string
		fault               func(sh, attempt int) *transport.WorkerFault
		deadline            time.Duration
		retries, falls, rec int
	}{
		{"none", nil, 0, 0, 0, 0},
		// Shard 0's first connection is closed by the worker after one
		// row; the retry dials the next worker around the ring and
		// completes the range.
		{"drop@s0a1", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Drop: true, DropAfter: 1}
			}
			return nil
		}, 0, 1, 0, 1},
		// Shard 1's first worker stalls a full second; the 200ms
		// attempt deadline expires the coordinator's reads, the
		// connection dies, the retry completes well inside its own
		// deadline.
		{"stall@s1a1", func(sh, attempt int) *transport.WorkerFault {
			if sh == 1 && attempt == 1 {
				return &transport.WorkerFault{Stall: time.Second}
			}
			return nil
		}, 200 * time.Millisecond, 1, 0, 1},
		// Every connection shard 0 ever gets is dropped mid-stream: the
		// budget exhausts and the coordinator absorbs the range itself,
		// chaos-free.
		{"drop@s0", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 {
				return &transport.WorkerFault{Drop: true, DropAfter: 1}
			}
			return nil
		}, 0, 1, 1, 2},
	}
	for _, pp := range tcpPlans {
		tp := *tcpBase
		tp.Fault = pp.fault
		tp.Deadline = pp.deadline
		rs, sum, err := shard.Fleet{
			Plan:     shard.Plan{Shards: 2, Trials: n},
			Parallel: cfg.Parallel,
			Seed:     fleetSeed,
			Retry:    shard.RetryPolicy{MaxAttempts: 2},
			Attempt:  tp.Attempt(),
		}.Run(trials.WithWorkload(cfg.ctx(), w), trial)
		if rs == nil {
			return failure("E20", "CHAOS-DET", err, core.Reject)
		}
		rowsCol := "≡"
		if !reflect.DeepEqual(rs, baseline) {
			rowsCol = "DIFF"
			notes = fmt.Sprintf("FAIL: TCP fault %s changed the recovered rows.", pp.name)
		}
		if sum.Retries != pp.retries || sum.Fallbacks != pp.falls ||
			sum.Recovered != pp.rec || sum.Errors != 0 {
			notes = fmt.Sprintf("FAIL: TCP fault %s: census (retry=%d fall=%d rec=%d err=%d), want (%d %d %d 0).",
				pp.name, sum.Retries, sum.Fallbacks, sum.Recovered, sum.Errors,
				pp.retries, pp.falls, pp.rec)
		}
		dl := "none"
		if pp.deadline > 0 {
			dl = pp.deadline.String()
		}
		row(&b, "%14s %9s %8d %6d %5d %5d %6s", pp.name, dl,
			sum.Retries, sum.Fallbacks, sum.Recovered, sum.Errors, rowsCol)
	}

	// And the TCP sort: a dead connection is an error, never a panic,
	// so Recovered stays zero while Attempts and Fallbacks move — and
	// the bytes and the successful attempts' census match the
	// fault-free 2-shard run exactly, same as over pipes.
	fmt.Fprintf(&b, "\nChaos TCP transport sort: loopback-TCP shard sorts at 2 shards, retry budget 2\n")
	row(&b, "%14s %9s %5s %6s %8s %8s", "fault", "attempts", "rec", "falls", "output≡", "census≡")
	sortTCPPlans := []struct {
		name        string
		fault       func(sh, attempt int) *transport.WorkerFault
		extra, fall int // expected deltas over the fault-free run
	}{
		{"none", nil, 0, 0},
		{"drop@s0a1", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Drop: true}
			}
			return nil
		}, 1, 0},
		{"drop@s0", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 {
				return &transport.WorkerFault{Drop: true}
			}
			return nil
		}, 2, 1},
	}
	for _, sp := range sortTCPPlans {
		tp := *tcpBase
		tp.Fault = sp.fault
		out, rep, err := shard.Sort{
			Shards: 2, FanIn: fanIn, RunMemoryBits: runMem,
			Retry: shard.RetryPolicy{MaxAttempts: 2},
			Exec:  tp.Exec(), TapeOpts: cfg.Storage,
		}.Run(cfg.ctx(), enc, cfg.Seed)
		if err != nil {
			return failure("E20", "CHAOS-DET", err, core.Reject)
		}
		outEq := bytes.Equal(out, cleanOut)
		censusEq := reflect.DeepEqual(rep.Shards, cleanRep.Shards) &&
			reflect.DeepEqual(rep.Merge, cleanRep.Merge)
		row(&b, "%14s %9d %5d %6d %8v %8v", sp.name,
			rep.Attempts, rep.Recovered, rep.Fallbacks, outEq, censusEq)
		if !outEq {
			notes = fmt.Sprintf("FAIL: TCP sort fault %s changed the output bytes.", sp.name)
		}
		if !censusEq {
			notes = fmt.Sprintf("FAIL: TCP sort fault %s changed the successful-attempt census.", sp.name)
		}
		if rep.Attempts != 2+sp.extra || rep.Recovered != 0 || rep.Fallbacks != sp.fall {
			notes = fmt.Sprintf("FAIL: TCP sort fault %s: census (a=%d r=%d f=%d), want (a=%d r=0 f=%d).",
				sp.name, rep.Attempts, rep.Recovered, rep.Fallbacks, 2+sp.extra, sp.fall)
		}
	}

	return Result{
		ID:    "E20",
		Title: "fault-tolerant execution (chaos determinism matrix)",
		Claim: "index-pure randomness makes recovery semantics-free: injected faults under retry/fallback move the attempt census, never the output bytes",
		Table: b.String(),
		Notes: notes,
	}
}
