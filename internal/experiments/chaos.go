package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/faults"
	"extmem/internal/problems"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// E20FaultTolerance tables the chaos determinism matrix: seed-derived
// fault plans (internal/faults) injected into the trial fleet and the
// sharded sort, swept over shard counts and retry policies, with the
// output bytes compared against the fault-free run throughout. The
// claim under test is the execution-layer converse of the repo's
// standing invariant: because every trial row and every sorted range
// is a pure function of (seed, index), recovery — panic capture,
// shard retry, coordinator fallback — can only change the attempt
// census, never a byte of output. Recoverable plans (flaky panics,
// delays) reproduce the fault-free bytes exactly; a permanent panic
// plan degrades to a deterministic per-trial error row at exactly the
// struck site. Attempt/retry tallies that depend on scheduling (how
// many strikes one engine attempt consumes varies with the worker
// interleaving) are deliberately kept out of the table, which must be
// byte-identical at any cfg.Shards × cfg.Parallel.
func E20FaultTolerance(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	notes := "PASS: recoverable chaos (flaky panics, delays) never moved a byte at any shard count;\n" +
		"a permanent panic degraded to a deterministic error row at exactly the struck site;\n" +
		"sort-side faults recovered with byte-identical output and fault-free resource census."

	// ---- Fleet half: fault plans over the fingerprint trial fleet.
	n := cfg.fleet(32)
	fleetSeed := trials.Seed(cfg.Seed, 2000)
	trial := func(_ int, trng *rand.Rand) trials.Result {
		fin := problems.GenMultisetNo(4, 12, trng)
		m := core.NewMachine(1, trng.Int63())
		m.SetInput(fin.Encode())
		v, params, err := algorithms.FingerprintMultisetEquality(m)
		if err != nil {
			return trials.Result{Err: err.Error()}
		}
		return trials.Result{Accept: v == core.Accept, Value: float64(params.P1)}
	}

	flaky := faults.Plan{Seed: cfg.Seed, Mode: faults.Panic, Rate: 0.1, Flaky: 1}
	delayed := faults.Plan{Seed: cfg.Seed, Mode: faults.Delay, Rate: 0.25, Delay: 100 * time.Microsecond}
	perm := faults.Plan{Mode: faults.Panic, Sites: []int{3}}
	// Every retry of a flaky shard consumes at least one of its sites'
	// single strikes, so a budget beyond the struck-site count can
	// never exhaust — the no-fallback guarantee the row asserts.
	flakyBudget := shard.RetryPolicy{MaxAttempts: len(flaky.StruckSites(n)) + 2}
	permBudget := shard.RetryPolicy{MaxAttempts: 2}

	baseline, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: cfg.Parallel, Seed: fleetSeed,
	}.Run(cfg.ctx(), trial)
	if err != nil {
		return failure("E20", "CHAOS-DET", err, core.Reject)
	}

	fmt.Fprintf(&b, "Chaos fleet: %d fingerprint trials, plan seed %d\n", n, cfg.Seed)
	row(&b, "%14s %7s %8s %7s %6s %6s %5s %10s", "plan", "shards",
		"struck", "rec>0", "retry?", "falls", "errs", "rows")
	fleetPlans := []struct {
		name   string
		plan   faults.Plan
		retry  shard.RetryPolicy
		degIdx int // site expected to degrade to an error row; -1 = none
	}{
		{"none", faults.Plan{}, shard.RetryPolicy{}, -1},
		{"flaky-panic", flaky, flakyBudget, -1},
		{"delay", delayed, shard.RetryPolicy{}, -1},
		{"perm-panic@3", perm, permBudget, 3},
	}
	for _, fp := range fleetPlans {
		struck := fp.plan.StruckSites(n)
		for _, shards := range []int{1, 2, 4} {
			launch := fp.plan.Trials(shard.LaunchRetry(shards, cfg.Parallel, fp.retry))
			rs, sum, err := launch(n, fleetSeed, nil).Run(cfg.ctx(), trial)
			// A nil result slice is a hard failure (unrecovered panic,
			// cancellation); a non-nil err alongside rows is the standing
			// FirstErr contract — exactly what the degraded perm-panic
			// plan is expected to produce.
			if rs == nil {
				return failure("E20", "CHAOS-DET", err, core.Reject)
			}
			// What the rows should be: the fault-free baseline, except a
			// permanently struck site degrades to its deterministic
			// recovered-panic error row.
			rowsOK := true
			for i, r := range rs {
				if i == fp.degIdx {
					rowsOK = rowsOK && strings.HasPrefix(r.Err, "recovered panic:")
				} else {
					rowsOK = rowsOK && reflect.DeepEqual(r, baseline[i])
				}
			}
			rowsCol := "≡"
			if fp.degIdx >= 0 {
				rowsCol = fmt.Sprintf("deg@%d", fp.degIdx)
			}
			if !rowsOK {
				rowsCol = "DIFF"
				notes = fmt.Sprintf("FAIL: plan %s at %d shards changed rows beyond its strike schedule.", fp.name, shards)
			}
			// Scheduling-independent recovery facts only: whether any
			// panic was recovered, whether any retry happened, fallback
			// and error-row counts. (Exact retry tallies depend on how
			// many strikes one engine attempt consumed — bounded, but
			// not schedule-free.)
			wantRec := fp.plan.Mode == faults.Panic && len(struck) > 0
			if (sum.Recovered > 0) != wantRec {
				notes = fmt.Sprintf("FAIL: plan %s at %d shards: recovered>0 = %v, want %v.",
					fp.name, shards, sum.Recovered > 0, wantRec)
			}
			wantFalls := 0
			if fp.degIdx >= 0 {
				wantFalls = 1
			}
			if sum.Fallbacks != wantFalls {
				notes = fmt.Sprintf("FAIL: plan %s at %d shards: %d fallbacks, want %d.",
					fp.name, shards, sum.Fallbacks, wantFalls)
			}
			row(&b, "%14s %7d %8d %7v %6v %6d %5d %10s", fp.name, shards,
				len(struck), sum.Recovered > 0, sum.Retries > 0 || sum.Recovered > sum.Fallbacks,
				sum.Fallbacks, sum.Errors, rowsCol)
		}
	}

	// ---- Sort half: shard-targeted fault plans over the sharded sort.
	in := problems.GenMultisetYes(256, 16, rng) // 512 items of 16 bits
	enc := in.Encode()
	const (
		fanIn  = 4
		runMem = 1024
	)
	cleanOut, cleanRep, err := shard.Sort{Shards: 2, FanIn: fanIn, RunMemoryBits: runMem}.
		Run(cfg.ctx(), enc, cfg.Seed)
	if err != nil {
		return failure("E20", "CHAOS-DET", err, core.Reject)
	}
	_ = cleanRep

	fmt.Fprintf(&b, "\nChaos sort: %d items × 16 bits, fan-in %d, run memory %d bits; faults target shard 0\n",
		512, fanIn, runMem)
	row(&b, "%14s %7s %7s %9s %5s %6s %8s %8s", "plan", "shards", "budget",
		"attempts", "rec", "falls", "output≡", "census≡")
	sortPlans := []struct {
		name             string
		plan             faults.Plan
		budget           int
		extra, rec, fall int // expected deltas over the fault-free run
	}{
		{"none", faults.Plan{}, 1, 0, 0, 0},
		{"flaky-panic@0", faults.Plan{Mode: faults.Panic, Sites: []int{0}, Flaky: 1}, 2, 1, 1, 0},
		{"perm-panic@0", faults.Plan{Mode: faults.Panic, Sites: []int{0}}, 2, 2, 2, 1},
		{"perm-error@0", faults.Plan{Mode: faults.Error, Sites: []int{0}}, 1, 1, 0, 1},
	}
	for _, sp := range sortPlans {
		for _, shards := range []int{2, 4} {
			clean, cleanR, err := shard.Sort{Shards: shards, FanIn: fanIn, RunMemoryBits: runMem}.
				Run(cfg.ctx(), enc, cfg.Seed)
			if err != nil {
				return failure("E20", "CHAOS-DET", err, core.Reject)
			}
			out, rep, err := shard.Sort{
				Shards: shards, FanIn: fanIn, RunMemoryBits: runMem,
				Retry:  shard.RetryPolicy{MaxAttempts: sp.budget},
				Inject: sp.plan.ShardInject(),
			}.Run(cfg.ctx(), enc, cfg.Seed)
			if err != nil {
				return failure("E20", "CHAOS-DET", err, core.Reject)
			}
			outEq := bytes.Equal(out, cleanOut) && bytes.Equal(out, clean)
			censusEq := reflect.DeepEqual(rep.Shards, cleanR.Shards) &&
				reflect.DeepEqual(rep.Merge, cleanR.Merge)
			row(&b, "%14s %7d %7d %9d %5d %6d %8v %8v", sp.name, shards, sp.budget,
				rep.Attempts, rep.Recovered, rep.Fallbacks, outEq, censusEq)
			if !outEq {
				notes = fmt.Sprintf("FAIL: sort plan %s at %d shards changed the output bytes.", sp.name, shards)
			}
			if !censusEq {
				notes = fmt.Sprintf("FAIL: sort plan %s at %d shards changed the successful-attempt census.", sp.name, shards)
			}
			if rep.Attempts != shards+sp.extra || rep.Recovered != sp.rec || rep.Fallbacks != sp.fall {
				notes = fmt.Sprintf("FAIL: sort plan %s at %d shards: census (a=%d r=%d f=%d), want (a=%d r=%d f=%d).",
					sp.name, shards, rep.Attempts, rep.Recovered, rep.Fallbacks,
					shards+sp.extra, sp.rec, sp.fall)
			}
		}
	}

	return Result{
		ID:    "E20",
		Title: "fault-tolerant execution (chaos determinism matrix)",
		Claim: "index-pure randomness makes recovery semantics-free: injected faults under retry/fallback move the attempt census, never the output bytes",
		Table: b.String(),
		Notes: notes,
	}
}
