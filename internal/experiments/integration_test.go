package experiments

// Integration tests across modules: the paper gives SIX independent
// ways to decide (variants of) equality of two collections — the
// reference decider, the deterministic ST algorithm (Cor. 7), the NST
// verifier (Thm 8b), the relational query Q' (Thm 11), the XQuery
// query (Thm 12), and the boosted XPath filter (Thm 13) — plus the
// randomized fingerprint for multisets (Thm 8a). On any instance they
// must all agree; disagreement anywhere would mean one of the
// reproduced constructions is wrong.

import (
	"math/rand"
	"testing"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/relalg"
	"extmem/internal/xmlstream"
	"extmem/internal/xpath"
	"extmem/internal/xquery"
)

func TestAllSetEqualityRoutesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	xq := xquery.TheoremQuery()
	for trial := 0; trial < 25; trial++ {
		m := 1 + rng.Intn(8)
		var in problems.Instance
		switch trial % 3 {
		case 0:
			in = problems.GenSetYes(m, 8, rng)
		case 1:
			in = problems.GenSetNo(max(2, m), 8, rng)
		default: // random unstructured
			in = problems.Instance{V: make([]string, m), W: make([]string, m)}
			for i := 0; i < m; i++ {
				in.V[i] = randomBitString(3, rng)
				in.W[i] = randomBitString(3, rng)
			}
		}
		want := problems.SetEquality(in)

		// Route 1: deterministic ST decider.
		mach := core.NewMachine(algorithms.NumDeciderTapes, 1)
		mach.SetInput(in.Encode())
		v1, err := algorithms.SetEqualityST(mach)
		if err != nil {
			t.Fatal(err)
		}
		if (v1 == core.Accept) != want {
			t.Fatalf("ST decider disagrees on %+v", in)
		}

		// Route 2: NST certificate verifier.
		m2 := core.NewMachine(2, 1)
		m2.SetInput(in.Encode())
		v2, err := algorithms.DecideNST(algorithms.NSTSetEquality, m2, in)
		if err != nil {
			t.Fatal(err)
		}
		if (v2 == core.Accept) != want {
			t.Fatalf("NST verifier disagrees on %+v", in)
		}

		// Route 3: relational algebra Q' (streaming).
		m3 := core.NewMachine(relalg.NumQueryTapes, 1)
		r, err := relalg.EvalST(relalg.SymmetricDifference("R1", "R2"), relalg.InstanceDB(in), m3)
		if err != nil {
			t.Fatal(err)
		}
		if (len(r.Tuples) == 0) != want {
			t.Fatalf("relational Q' disagrees on %+v", in)
		}

		// Route 4: XQuery.
		doc, err := xmlstream.Parse(xmlstream.EncodeInstance(in))
		if err != nil {
			t.Fatal(err)
		}
		res, err := xq.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		if xquery.ResultIsTrue(res) != want {
			t.Fatalf("XQuery disagrees on %+v", in)
		}

		// Route 5: boosted XPath filter.
		if xpath.SetEqualityViaFilter(xpath.ExactFilter, in, rng) != want {
			t.Fatalf("XPath booster disagrees on %+v", in)
		}
	}
}

func TestMultisetRoutesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 25; trial++ {
		m := 1 + rng.Intn(8)
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenMultisetYes(m, 5, rng)
		} else {
			in = problems.GenMultisetNo(m, 5, rng)
		}
		want := problems.MultisetEquality(in)

		mach := core.NewMachine(algorithms.NumDeciderTapes, 1)
		mach.SetInput(in.Encode())
		v1, err := algorithms.MultisetEqualityST(mach)
		if err != nil {
			t.Fatal(err)
		}
		if (v1 == core.Accept) != want {
			t.Fatalf("ST decider disagrees on %+v", in)
		}

		m2 := core.NewMachine(2, 1)
		m2.SetInput(in.Encode())
		v2, err := algorithms.DecideNST(algorithms.NSTMultisetEquality, m2, in)
		if err != nil {
			t.Fatal(err)
		}
		if (v2 == core.Accept) != want {
			t.Fatalf("NST verifier disagrees on %+v", in)
		}

		// The fingerprint has one-sided error: it must accept all
		// yes-instances; a no-instance may rarely be accepted, so only
		// the completeness direction is an invariant.
		m3 := core.NewMachine(1, rng.Int63())
		m3.SetInput(in.Encode())
		v3, _, err := algorithms.FingerprintMultisetEquality(m3)
		if err != nil {
			t.Fatal(err)
		}
		if want && v3 != core.Accept {
			t.Fatalf("fingerprint rejected a yes-instance %+v", in)
		}
	}
}

// CHECK-ϕ structured inputs tie the whole story together: all three
// problems, the SHORT reduction, and the deterministic decider agree.
func TestCheckPhiPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	g, err := problems.NewCheckPhiGen(8, 9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = g.Yes(rng)
		} else {
			in = g.No(rng)
		}
		want := g.Decide(in)

		// The three problems coincide here (the Theorem 6 observation).
		for _, p := range []problems.Problem{
			problems.SetEqualityProblem,
			problems.MultisetEqualityProblem,
			problems.CheckSortProblem,
		} {
			mach := core.NewMachine(algorithms.NumDeciderTapes, 1)
			mach.SetInput(in.Encode())
			v, err := algorithms.DecideST(int(p), mach)
			if err != nil {
				t.Fatal(err)
			}
			if (v == core.Accept) != want {
				t.Fatalf("%v disagrees with CHECK-ϕ on structured input", p)
			}
		}

		// The SHORT reduction preserves the answer, checked by the
		// machine decider on the reduced instance.
		short, err := problems.ShortReduction(in, g.Phi)
		if err != nil {
			t.Fatal(err)
		}
		mach := core.NewMachine(algorithms.NumDeciderTapes, 1)
		mach.SetInput(short.Encode())
		v, err := algorithms.CheckSortST(mach)
		if err != nil {
			t.Fatal(err)
		}
		if (v == core.Accept) != want {
			t.Fatalf("SHORT reduction + decider disagree with CHECK-ϕ")
		}
	}
}

func randomBitString(n int, rng *rand.Rand) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0' + byte(rng.Intn(2))
	}
	return string(b)
}
