// Package experiments implements the per-experiment harness of
// DESIGN.md §4: every theorem, corollary and load-bearing lemma of
// the paper has a runner that regenerates its content as a table.
// The runners are shared by cmd/stbench (human-readable report),
// bench_test.go (testing.B entry points) and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
)

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	Claim string // the paper claim being reproduced
	Table string // formatted rows
	Notes string // observations / pass-fail summary
}

// String renders the result as a report section.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "claim: %s\n\n", r.Claim)
	b.WriteString(r.Table)
	if r.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", r.Notes)
	}
	return b.String()
}

// row formats one table line.
func row(b *strings.Builder, format string, args ...any) {
	fmt.Fprintf(b, format+"\n", args...)
}

// E1DeterministicUpperBound reproduces Corollary 7's upper bound:
// the sort-based deciders run in O(log N) scans with item-sized
// internal memory. The table sweeps N and reports scans / log₂N.
func E1DeterministicUpperBound(seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	row(&b, "%10s %10s %8s %10s %14s %12s", "m", "N", "scans", "log2(N)", "scans/log2N", "mem bits")
	ok := true
	for _, mSize := range []int{8, 32, 128, 512, 2048, 8192} {
		in := problems.GenMultisetYes(mSize, 16, rng)
		n := in.Size()
		m := core.NewMachine(algorithms.NumDeciderTapes, seed)
		m.SetInput(in.Encode())
		v, err := algorithms.MultisetEqualityST(m)
		if err != nil || v != core.Accept {
			return failure("E1", "C7-UPPER", err, v)
		}
		res := m.Resources()
		ratio := float64(res.Scans()) / math.Log2(float64(n))
		row(&b, "%10d %10d %8d %10.1f %14.2f %12d",
			mSize, n, res.Scans(), math.Log2(float64(n)), ratio, res.PeakMemoryBits)
		if ratio > 30 {
			ok = false
		}
	}
	notes := "PASS: scans grow as O(log N) — about 24·log₂(m) (12 reversals per merge pass, two sorts);\n" +
		"memory stays at a few item buffers plus counters."
	if !ok {
		notes = "FAIL: scans exceed 30·log2(N)."
	}
	return Result{
		ID:    "E1",
		Title: "deterministic upper bound (tape merge sort)",
		Claim: "Corollary 7: (MULTI)SET-EQUALITY, CHECK-SORT ∈ ST(O(log N), O(1), O(1))",
		Table: b.String(),
		Notes: notes,
	}
}

// E2Fingerprint reproduces Theorem 8(a): the fingerprint decider uses
// exactly 2 scans and O(log N) memory, never rejects equal multisets,
// and accepts distinct ones with small probability.
func E2Fingerprint(seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	row(&b, "%8s %10s %7s %10s %12s %16s", "m", "N", "scans", "mem bits", "yes-errors", "false-accepts")
	notes := "PASS: 2 scans, O(log N) bits, perfect completeness, false-accept rate ≪ 1/2."
	for _, mSize := range []int{8, 64, 512} {
		const trials = 60
		yesErr, falseAcc := 0, 0
		var scans int
		var mem int64
		var n int
		for i := 0; i < trials; i++ {
			yes := problems.GenMultisetYes(mSize, 12, rng)
			m := core.NewMachine(1, rng.Int63())
			m.SetInput(yes.Encode())
			v, _, err := algorithms.FingerprintMultisetEquality(m)
			if err != nil {
				return failure("E2", "T8A-FP", err, v)
			}
			if v != core.Accept {
				yesErr++
			}
			res := m.Resources()
			scans, mem, n = res.Scans(), res.PeakMemoryBits, yes.Size()

			no := problems.GenMultisetNo(mSize, 12, rng)
			m2 := core.NewMachine(1, rng.Int63())
			m2.SetInput(no.Encode())
			v2, _, err := algorithms.FingerprintMultisetEquality(m2)
			if err != nil {
				return failure("E2", "T8A-FP", err, v2)
			}
			if v2 == core.Accept {
				falseAcc++
			}
		}
		row(&b, "%8d %10d %7d %10d %10d/%d %14d/%d", mSize, n, scans, mem, yesErr, trials, falseAcc, trials)
		if yesErr > 0 || scans != 2 || falseAcc > trials/2 {
			notes = "FAIL: error profile violated."
		}
	}
	return Result{
		ID:    "E2",
		Title: "randomized fingerprinting (one-sided error)",
		Claim: "Theorem 8(a): MULTISET-EQUALITY ∈ co-RST(2, O(log N), 1)",
		Table: b.String(),
		Notes: notes,
	}
}

// E3NSTVerifier reproduces Theorem 8(b): certificate verification in
// 3 scans on 2 tapes with O(log N) memory, for all three problems.
func E3NSTVerifier(seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	row(&b, "%22s %6s %7s %7s %10s %8s", "problem", "m", "scans", "tapes", "mem bits", "verdict")
	notes := "PASS: ≤ 3 scans, 2 tapes, O(log N) memory; yes accepted, no rejected."
	cases := []struct {
		p   algorithms.NSTProblem
		gen func() problems.Instance
	}{
		{algorithms.NSTMultisetEquality, func() problems.Instance { return problems.GenMultisetYes(6, 4, rng) }},
		{algorithms.NSTSetEquality, func() problems.Instance { return problems.GenSetYes(6, 6, rng) }},
		{algorithms.NSTCheckSort, func() problems.Instance { return problems.GenCheckSortYes(5, 4, rng) }},
	}
	for _, c := range cases {
		in := c.gen()
		m := core.NewMachine(2, seed)
		m.SetInput(in.Encode())
		v, err := algorithms.DecideNST(c.p, m, in)
		if err != nil {
			return failure("E3", "T8B-NST", err, v)
		}
		res := m.Resources()
		row(&b, "%22s %6d %7d %7d %10d %8s", c.p, in.M(), res.Scans(), res.Tapes, res.PeakMemoryBits, v)
		if v != core.Accept || res.Scans() > 3 || res.Tapes != 2 {
			notes = "FAIL: NST resource bound violated."
		}
	}
	return Result{
		ID:    "E3",
		Title: "nondeterministic certificate verification",
		Claim: "Theorem 8(b): all three problems ∈ NST(3, O(log N), 2)",
		Table: b.String(),
		Notes: notes,
	}
}

// E4Separation reproduces Corollary 9's separation as a series: the
// deterministic decider needs Θ(log N) scans while the co-randomized
// fingerprint needs exactly 2, at every input size.
func E4Separation(seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	row(&b, "%8s %10s %18s %14s %12s", "m", "N", "ST scans (det)", "co-RST scans", "separation")
	notes := "PASS: constant-scan randomized vs Θ(log N) deterministic — the Corollary 9 gap."
	for _, mSize := range []int{8, 64, 512, 4096} {
		in := problems.GenMultisetYes(mSize, 12, rng)
		det := core.NewMachine(algorithms.NumDeciderTapes, seed)
		det.SetInput(in.Encode())
		if _, err := algorithms.MultisetEqualityST(det); err != nil {
			return failure("E4", "C9-SEP", err, core.Reject)
		}
		fp := core.NewMachine(1, seed)
		fp.SetInput(in.Encode())
		if _, _, err := algorithms.FingerprintMultisetEquality(fp); err != nil {
			return failure("E4", "C9-SEP", err, core.Reject)
		}
		d, f := det.Resources().Scans(), fp.Resources().Scans()
		row(&b, "%8d %10d %18d %14d %11.1fx", mSize, in.Size(), d, f, float64(d)/float64(f))
		if f != 2 {
			notes = "FAIL: fingerprint used more than 2 scans."
		}
	}
	return Result{
		ID:    "E4",
		Title: "deterministic vs randomized scan counts",
		Claim: "Corollary 9: ST ⊊ RST ⊊ NST and RST ≠ co-RST in the o(log N) regime",
		Table: b.String(),
		Notes: notes,
	}
}

// E5Sort reproduces Corollary 10's sorting side: the Las Vegas sorter
// succeeds exactly when its scan budget reaches Θ(log N).
func E5Sort(seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	row(&b, "%8s %10s %14s %16s", "m", "N", "scans needed", "budget log2(N)?")
	notes := "PASS: the success threshold tracks Θ(log N) — below it the sorter answers \"don't know\"."
	for _, mSize := range []int{8, 64, 512, 4096} {
		in := problems.GenMultisetYes(mSize, 12, rng)
		m := core.NewMachine(4, seed)
		m.SetInput(in.Encode())
		res, err := algorithms.SortLasVegas(m, 1, 2, 3, 1<<30)
		if err != nil {
			return failure("E5", "C10-SORT", err, res.Verdict)
		}
		needed := res.Resources.Scans()
		logN := int(math.Log2(float64(in.Size())))
		within := needed <= 10*logN
		row(&b, "%8d %10d %14d %16v", mSize, in.Size(), needed, within)
		if !within {
			notes = "FAIL: sorting needed more than 10·log2(N) scans."
		}
	}
	return Result{
		ID:    "E5",
		Title: "Las Vegas external sorting",
		Claim: "Corollary 10: sorting ∉ LasVegas-RST(o(log N), O(N^¼/log N), O(1)); Θ(log N) scans suffice",
		Table: b.String(),
		Notes: notes,
	}
}

func failure(id, title string, err error, v core.Verdict) Result {
	return Result{
		ID:    id,
		Title: title,
		Notes: fmt.Sprintf("FAIL: error %v (verdict %v)", err, v),
	}
}
