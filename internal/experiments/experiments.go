package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/faults"
	"extmem/internal/plan"
	"extmem/internal/problems"
	"extmem/internal/relalg"
	"extmem/internal/shard"
	"extmem/internal/tape"
	"extmem/internal/transport"
	"extmem/internal/trials"
)

// Config parameterizes one run of the experiment suite.
type Config struct {
	Seed     int64 // root seed; all randomness (instances and machine coins) derives from it
	Trials   int   // Monte-Carlo fleet size per experiment side; 0 = per-experiment default
	Parallel int   // trial workers per shard; <= 0 = GOMAXPROCS. Never affects output bytes.
	Shards   int   // trial-fleet shards (internal/shard); <= 0 = 1. Never affects output bytes.

	// Ctx bounds every trial fleet and sharded sort of the run; nil
	// means no bound.
	Ctx context.Context

	// Faults is the chaos plan injected into every trial fleet (trial
	// indices as fault sites) and every sharded operator sort (shard
	// indices as fault sites) of the run. The zero plan is fault-free;
	// a recoverable plan (flaky panics, delays) under a sufficient
	// Retry budget never changes an output byte.
	Faults faults.Plan

	// Retry is the per-shard retry budget trial fleets and sharded
	// sorts run under; the zero policy attempts each shard once.
	Retry shard.RetryPolicy

	// Budget, when non-nil, is the resource envelope the cost-based
	// planner (internal/plan) runs the configured-budget verification
	// rows of E21 under: every operator stage's execution shape is
	// chosen per stage by predicted critical path. Like Shards and
	// Parallel it never affects output bytes — the planner may move the
	// shape, never a byte — and the tables never render its values, so
	// reports stay byte-identical at any -budget.
	Budget *plan.Budget

	// Storage selects the tape storage backend of every machine the run
	// constructs — experiment machines, shard-local machines, combine
	// machines. The zero value keeps the tapes in memory. Like Shards
	// and Parallel it is pure execution shape: the backend may move the
	// bytes' home, never a count, so reports stay byte-identical at any
	// -storage.
	Storage tape.Options

	// Proc, when non-nil, is the process-boundary transport
	// (internal/transport): trial fleets whose workloads carry a wire
	// form and every sharded operator sort and scan run their shard
	// attempts in worker processes. Fleets with no wire form — closures
	// over live state, chaos-wrapped fleets — keep running in-process.
	// Like Shards and Parallel, it never affects output bytes.
	Proc *transport.Proc

	// TCP, when non-nil, is the multi-host transport: the same seams as
	// Proc, but shard attempts dial the configured workers over TCP
	// (`-transport tcp -workers host:port,...`). At most one of Proc
	// and TCP is set; TCP wins if both are. Like every other execution
	// shape, it never affects output bytes.
	TCP *transport.TCP
}

// machine builds an experiment machine on the configured tape storage.
func (c Config) machine(t int, seed int64) *core.Machine {
	return core.NewMachineOpts(t, seed, c.Storage)
}

// ctx is the run's bounding context (Background when unset).
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// fleet resolves the fleet size against an experiment's default.
func (c Config) fleet(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

// ShardCount is the effective trial-fleet shard count.
func (c Config) ShardCount() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 1
}

// launch builds the sharded fleet launcher every Monte-Carlo
// experiment runs on: per-trial results are pure functions of (seed,
// global trial index), so neither Shards nor Parallel — nor a
// recoverable fault plan under the retry budget — can change a table
// byte.
func (c Config) launch() trials.Launcher {
	inner := shard.LaunchRetry(c.ShardCount(), c.Parallel, c.Retry)
	if tr := c.transport(); tr != nil {
		inner = tr.Launch(c.ShardCount(), c.Parallel, c.Retry)
	}
	return c.Faults.Trials(inner)
}

// transport resolves the configured shard transport, nil for in-process.
func (c Config) transport() transport.Transport {
	if c.TCP != nil {
		return c.TCP
	}
	if c.Proc != nil {
		return c.Proc
	}
	return nil
}

// exec resolves how sharded operator sorts execute their shard-local
// attempts: through the configured transport's workers, in-process
// otherwise (nil selects shard.SortJob.Execute on the coordinator).
func (c Config) exec() shard.ExecFunc {
	if tr := c.transport(); tr != nil {
		return tr.Exec()
	}
	return nil
}

// execScan is exec's twin for sharded operator scans (anti-merge,
// product): nil keeps them on the coordinator's shard machines.
func (c Config) execScan() relalg.ScanExecFunc {
	if tr := c.transport(); tr != nil {
		return tr.ExecScan()
	}
	return nil
}

// proc is the transport the E18/E19/E20 internal sweeps run their
// process-boundary rows on: the configured one when set, a default
// self-exec transport otherwise — the rows exist in every run, so the
// tables stay byte-identical whether or not -transport proc is on.
func (c Config) proc() *transport.Proc {
	if c.Proc != nil {
		return c.Proc
	}
	return &transport.Proc{}
}

// probeLaunch is the launcher for the E16 collision probes: nil —
// selecting FindCollisionParallel's early-exiting sequential scan —
// when the configured shape is a single worker on a single shard,
// the sharded fleet otherwise. The collision found is identical
// either way; only the amount of probing work differs.
func (c Config) probeLaunch() trials.Launcher {
	workers := c.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if c.ShardCount() == 1 && workers == 1 {
		return nil
	}
	return c.launch()
}

// Result is the outcome of one experiment.
type Result struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Claim string `json:"claim"` // the paper claim being reproduced
	Table string `json:"table"` // formatted rows
	Notes string `json:"notes"` // observations / pass-fail summary

	// Shards records how many trial-fleet shards executed the run —
	// execution provenance only. It is reported in machine-readable
	// encodings (stbench JSON/CSV) but never rendered into Table,
	// Notes or String(), which stay byte-identical at every shard
	// count.
	Shards int `json:"shards"`
}

// Passed reports whether the experiment reproduced its claim.
func (r Result) Passed() bool { return strings.HasPrefix(r.Notes, "PASS") }

// String renders the result as a report section.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "claim: %s\n\n", r.Claim)
	b.WriteString(r.Table)
	if r.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", r.Notes)
	}
	return b.String()
}

// row formats one table line.
func row(b *strings.Builder, format string, args ...any) {
	fmt.Fprintf(b, format+"\n", args...)
}

// A Runner is one named experiment of the suite; cmd/stbench iterates
// them so it can stream each report as it completes.
type Runner struct {
	ID  string
	Run func(Config) Result
}

// Runners lists the full E1–E21 suite in order.
func Runners() []Runner {
	return []Runner{
		{"E1", E1DeterministicUpperBound},
		{"E2", E2Fingerprint},
		{"E3", E3NSTVerifier},
		{"E4", E4Separation},
		{"E5", E5Sort},
		{"E6", E6RelAlg},
		{"E7", E7XQuery},
		{"E8", E8XPath},
		{"E9", E9Sortedness},
		{"E10", E10Simulation},
		{"E11", E11Counting},
		{"E12", E12MergeLemma},
		{"E13", E13RunLength},
		{"E14", E14PrimeCollision},
		{"E15", E15ShortReduction},
		{"E16", E16Adversary},
		{"E17", E17SortTradeoff},
		{"E18", E18ShardedExecution},
		{"E19", E19ShardedQueries},
		{"E20", E20FaultTolerance},
		{"E21", E21CostPlanner},
	}
}

// All runs every experiment with the given seed and default fleet
// sizes and parallelism.
func All(seed int64) []Result { return AllConfig(Config{Seed: seed}) }

// AllConfig runs every experiment under cfg.
func AllConfig(cfg Config) []Result {
	var out []Result
	for _, r := range Runners() {
		res := r.Run(cfg)
		res.Shards = cfg.ShardCount()
		out = append(out, res)
	}
	return out
}

// E1DeterministicUpperBound reproduces Corollary 7's upper bound:
// the sort-based deciders run in O(log N) scans with item-sized
// internal memory. The table sweeps N and reports scans / log₂N.
func E1DeterministicUpperBound(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%10s %10s %8s %10s %14s %12s", "m", "N", "scans", "log2(N)", "scans/log2N", "mem bits")
	ok := true
	for _, mSize := range []int{8, 32, 128, 512, 2048, 8192} {
		in := problems.GenMultisetYes(mSize, 16, rng)
		n := in.Size()
		m := cfg.machine(algorithms.NumDeciderTapes, cfg.Seed)
		m.SetInput(in.Encode())
		v, err := algorithms.MultisetEqualityST(m)
		if err != nil || v != core.Accept {
			return failure("E1", "C7-UPPER", err, v)
		}
		res := m.Resources()
		ratio := float64(res.Scans()) / math.Log2(float64(n))
		row(&b, "%10d %10d %8d %10.1f %14.2f %12d",
			mSize, n, res.Scans(), math.Log2(float64(n)), ratio, res.PeakMemoryBits)
		if ratio > 30 {
			ok = false
		}
	}
	notes := "PASS: scans grow as O(log N): run formation absorbs the first ~log₂(runLen) merge passes,\n" +
		"then each sort pays ⌈log₄⌉ four-way passes; memory is the constant run buffer plus counters."
	if !ok {
		notes = "FAIL: scans exceed 30·log2(N)."
	}
	return Result{
		ID:    "E1",
		Title: "deterministic upper bound (tape merge sort)",
		Claim: "Corollary 7: (MULTI)SET-EQUALITY, CHECK-SORT ∈ ST(O(log N), O(1), O(1))",
		Table: b.String(),
		Notes: notes,
	}
}

// E2Fingerprint reproduces Theorem 8(a): the fingerprint decider uses
// exactly 2 scans and O(log N) memory, never rejects equal multisets,
// and accepts distinct ones with small probability. The per-size
// error profile is measured by a parallel trial fleet
// (algorithms.EstimateFingerprintErrors) and reported with the Wilson
// 95% interval on the false-accept rate.
func E2Fingerprint(cfg Config) Result {
	var b strings.Builder
	row(&b, "%8s %10s %7s %10s %12s %16s %20s", "m", "N", "scans", "mem bits", "yes-errors", "false-accepts", "false-acc 95% CI")
	notes := "PASS: 2 scans, O(log N) bits, perfect completeness, false-accept rate ≪ 1/2."
	for i, mSize := range []int{8, 64, 512} {
		est, err := algorithms.EstimateFingerprintErrors(cfg.ctx(),
			mSize, 12, cfg.fleet(60), cfg.launch(), trials.Seed(cfg.Seed, 200+i))
		if err != nil {
			return failure("E2", "T8A-FP", err, core.Reject)
		}
		row(&b, "%8d %10d %7d %10d %10d/%d %14d/%d    [%.3f, %.3f]",
			mSize, est.Size, est.Scans, est.MemBits,
			est.YesErrors, est.Trials, est.FalseAccepts, est.Trials,
			est.FalseAcceptLo, est.FalseAcceptHi)
		if est.YesErrors > 0 || est.Scans != 2 || est.FalseAccepts > est.Trials/2 {
			notes = "FAIL: error profile violated."
		}
	}
	return Result{
		ID:    "E2",
		Title: "randomized fingerprinting (one-sided error)",
		Claim: "Theorem 8(a): MULTISET-EQUALITY ∈ co-RST(2, O(log N), 1)",
		Table: b.String(),
		Notes: notes,
	}
}

// E3NSTVerifier reproduces Theorem 8(b): certificate verification in
// 3 scans on 2 tapes with O(log N) memory, for all three problems.
func E3NSTVerifier(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%22s %6s %7s %7s %10s %8s", "problem", "m", "scans", "tapes", "mem bits", "verdict")
	notes := "PASS: ≤ 3 scans, 2 tapes, O(log N) memory; yes accepted, no rejected."
	cases := []struct {
		p   algorithms.NSTProblem
		gen func() problems.Instance
	}{
		{algorithms.NSTMultisetEquality, func() problems.Instance { return problems.GenMultisetYes(6, 4, rng) }},
		{algorithms.NSTSetEquality, func() problems.Instance { return problems.GenSetYes(6, 6, rng) }},
		{algorithms.NSTCheckSort, func() problems.Instance { return problems.GenCheckSortYes(5, 4, rng) }},
	}
	for _, c := range cases {
		in := c.gen()
		m := cfg.machine(2, cfg.Seed)
		m.SetInput(in.Encode())
		v, err := algorithms.DecideNST(c.p, m, in)
		if err != nil {
			return failure("E3", "T8B-NST", err, v)
		}
		res := m.Resources()
		row(&b, "%22s %6d %7d %7d %10d %8s", c.p, in.M(), res.Scans(), res.Tapes, res.PeakMemoryBits, v)
		if v != core.Accept || res.Scans() > 3 || res.Tapes != 2 {
			notes = "FAIL: NST resource bound violated."
		}
	}
	return Result{
		ID:    "E3",
		Title: "nondeterministic certificate verification",
		Claim: "Theorem 8(b): all three problems ∈ NST(3, O(log N), 2)",
		Table: b.String(),
		Notes: notes,
	}
}

// E4Separation reproduces Corollary 9's separation as a series: the
// deterministic decider needs Θ(log N) scans while the co-randomized
// fingerprint needs exactly 2, at every input size.
func E4Separation(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%8s %10s %18s %14s %12s", "m", "N", "ST scans (det)", "co-RST scans", "separation")
	notes := "PASS: constant-scan randomized vs Θ(log N) deterministic — the Corollary 9 gap."
	for _, mSize := range []int{8, 64, 512, 4096} {
		in := problems.GenMultisetYes(mSize, 12, rng)
		det := cfg.machine(algorithms.NumDeciderTapes, cfg.Seed)
		det.SetInput(in.Encode())
		if _, err := algorithms.MultisetEqualityST(det); err != nil {
			return failure("E4", "C9-SEP", err, core.Reject)
		}
		fp := cfg.machine(1, cfg.Seed)
		fp.SetInput(in.Encode())
		if _, _, err := algorithms.FingerprintMultisetEquality(fp); err != nil {
			return failure("E4", "C9-SEP", err, core.Reject)
		}
		d, f := det.Resources().Scans(), fp.Resources().Scans()
		row(&b, "%8d %10d %18d %14d %11.1fx", mSize, in.Size(), d, f, float64(d)/float64(f))
		if f != 2 {
			notes = "FAIL: fingerprint used more than 2 scans."
		}
	}
	return Result{
		ID:    "E4",
		Title: "deterministic vs randomized scan counts",
		Claim: "Corollary 9: ST ⊊ RST ⊊ NST and RST ≠ co-RST in the o(log N) regime",
		Table: b.String(),
		Notes: notes,
	}
}

// E5Sort reproduces Corollary 10's sorting side: the Las Vegas sorter
// succeeds exactly when its scan budget reaches Θ(log N). Each size
// runs a small fleet of independent attempts (Las Vegas repetition on
// the trials engine); the table reports accepts/attempts.
func E5Sort(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	row(&b, "%8s %10s %14s %16s %10s", "m", "N", "scans needed", "budget log2(N)?", "attempts")
	notes := "PASS: the success threshold tracks Θ(log N) — below it the sorter answers \"don't know\"."
	for i, mSize := range []int{8, 64, 512, 4096} {
		in := problems.GenMultisetYes(mSize, 12, rng)
		res, sum, err := algorithms.SortLasVegasRepeated(cfg.ctx(),
			in.Encode(), 6, 1, 1<<30,
			cfg.fleet(2), cfg.launch(), trials.Seed(cfg.Seed, 500+i))
		if err != nil {
			return failure("E5", "C10-SORT", err, res.Verdict)
		}
		needed := res.Resources.Scans()
		logN := int(math.Log2(float64(in.Size())))
		within := needed <= 10*logN
		row(&b, "%8d %10d %14d %16v %7d/%d", mSize, in.Size(), needed, within, sum.Accepts, sum.Trials)
		if !within {
			notes = "FAIL: sorting needed more than 10·log2(N) scans."
		} else if res.Verdict != core.Accept {
			notes = "FAIL: every Las Vegas attempt answered \"I don't know\"."
		}
	}
	return Result{
		ID:    "E5",
		Title: "Las Vegas external sorting",
		Claim: "Corollary 10: sorting ∉ LasVegas-RST(o(log N), O(N^¼/log N), O(1)); Θ(log N) scans suffice",
		Table: b.String(),
		Notes: notes,
	}
}

// E17SortTradeoff measures the r-vs-(s, t) trade-off of the k-way
// sort engine on one fixed input: the same 512-item instance is
// sorted at every (fan-in, run-formation memory) point of a small
// grid, and the measured scan count falls as either resource grows —
// the two axes the ST(r, s, t) model trades against each other
// (Definition 1; Corollary 7's merge sort generalized). Run-formation
// memory s shortens the pass chain by starting from ⌊s/itemBits⌋-item
// runs; fan-in k = t−2 turns ⌈log₂⌉ passes into ⌈log_k⌉.
func E17SortTradeoff(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := problems.GenMultisetYes(256, 16, rng) // 512 items of 16 bits
	enc := in.Encode()
	var b strings.Builder
	fanIns := []int{2, 4, 8}
	mems := []int64{0, 1024, 8192}
	row(&b, "%6s %6s | %28s | %28s", "fan-in", "tapes", "scans @ run mem 0/1024/8192", "peak bits @ run mem 0/1024/8192")
	scans := make(map[[2]int]int)
	notes := "PASS: scans fall along both axes — monotone per row (s), strictly down the s=1024 column (t).\n" +
		"At s=0 the Θ(k) lane rewinds per pass erase the fan-in gain: the trade-off needs both levers,\n" +
		"exactly the r·(s+t) coupling of the paper's lower-bound frontier."
	for _, k := range fanIns {
		var sc [3]int
		var pk [3]int64
		for j, mem := range mems {
			m := cfg.machine(k+2, cfg.Seed)
			m.SetInput(enc)
			s := algorithms.Sorter{FanIn: k, RunMemoryBits: mem}
			if err := s.SortToTape(m, 1, algorithms.WorkTapes(m, 1)); err != nil {
				return failure("E17", "ST-TRADEOFF", err, core.Reject)
			}
			res := m.Resources()
			sc[j], pk[j] = res.Scans(), res.PeakMemoryBits
			scans[[2]int{k, int(mem)}] = res.Scans()
		}
		row(&b, "%6d %6d | %8d %8d %8d    | %8d %8d %8d", k, k+2, sc[0], sc[1], sc[2], pk[0], pk[1], pk[2])
		if !(sc[0] >= sc[1] && sc[1] >= sc[2]) {
			notes = "FAIL: scans did not fall as run-formation memory grew."
		}
	}
	// The t axis: at s = 1024 (8-item runs ⇒ 64 initial runs), raising
	// the fan-in 2→4→8 must strictly cut the measured scans.
	if !(scans[[2]int{2, 1024}] > scans[[2]int{4, 1024}] && scans[[2]int{4, 1024}] > scans[[2]int{8, 1024}]) {
		notes = "FAIL: scans did not strictly fall as fan-in grew at fixed run memory."
	}
	return Result{
		ID:    "E17",
		Title: "sort engine r-vs-(s,t) trade-off",
		Claim: "ST(r, s, t) model: reversals trade against internal memory and tape count — k-way merge with memory-budgeted runs realizes the frontier",
		Table: b.String(),
		Notes: notes,
	}
}

func failure(id, title string, err error, v core.Verdict) Result {
	return Result{
		ID:    id,
		Title: title,
		Notes: fmt.Sprintf("FAIL: error %v (verdict %v)", err, v),
	}
}
