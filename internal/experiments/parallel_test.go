package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The acceptance-criterion invariant of the trials engine, end to
// end: for a fixed root seed, the full experiment suite produces
// byte-identical tables at 1 worker and at 8.
func TestExperimentTablesParallelInvariant(t *testing.T) {
	seq := AllConfig(Config{Seed: 3, Parallel: 1})
	par := AllConfig(Config{Seed: 3, Parallel: 8})
	if len(seq) != len(par) {
		t.Fatalf("suite lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("%s differs across worker counts:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
				seq[i].ID, seq[i].String(), par[i].String())
		}
	}
}

// Shrinking the fleet via Config.Trials must keep the Monte-Carlo
// experiments deterministic and within their fleet budget (a smoke
// check that the Trials knob is actually plumbed through).
func TestConfigTrialsKnob(t *testing.T) {
	small := Config{Seed: 1, Trials: 8, Parallel: 4}
	a := E2Fingerprint(small)
	b := E2Fingerprint(small)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("E2 not deterministic under a custom fleet size")
	}
	if !strings.Contains(a.Table, "/8") {
		t.Fatalf("E2 table does not reflect Trials=8:\n%s", a.Table)
	}
}
