package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The acceptance-criterion invariant of the trials engine, end to
// end: for a fixed root seed, the full experiment suite produces
// byte-identical tables at 1 worker and at 8.
func TestExperimentTablesParallelInvariant(t *testing.T) {
	seq := AllConfig(Config{Seed: 3, Parallel: 1})
	par := AllConfig(Config{Seed: 3, Parallel: 8})
	if len(seq) != len(par) {
		t.Fatalf("suite lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("%s differs across worker counts:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
				seq[i].ID, seq[i].String(), par[i].String())
		}
	}
}

// The sharded-query acceptance criterion at the experiments layer:
// the query experiments (E6 relational, E7 XQuery, E8 XPath, E19
// sharded-query frontier) produce identical Results across shards
// {1, 2, 4} × parallel {1, 8} — the sharded relalg.Evaluator and the
// sharded trial fleets are execution choices, never observable ones.
func TestQueryExperimentsShardParallelInvariant(t *testing.T) {
	runners := map[string]func(Config) Result{
		"E6": E6RelAlg, "E7": E7XQuery, "E8": E8XPath, "E19": E19ShardedQueries,
	}
	for id, run := range runners {
		ref := run(Config{Seed: 5, Shards: 1, Parallel: 1})
		if !ref.Passed() {
			t.Fatalf("%s failed at the reference shape:\n%s", id, ref.Notes)
		}
		for _, shards := range []int{1, 2, 4} {
			for _, parallel := range []int{1, 8} {
				if shards == 1 && parallel == 1 {
					continue
				}
				got := run(Config{Seed: 5, Shards: shards, Parallel: parallel})
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%s differs at shards=%d parallel=%d:\n--- ref ---\n%s\n--- got ---\n%s",
						id, shards, parallel, ref.String(), got.String())
				}
			}
		}
	}
}

// Shrinking the fleet via Config.Trials must keep the Monte-Carlo
// experiments deterministic and within their fleet budget (a smoke
// check that the Trials knob is actually plumbed through).
func TestConfigTrialsKnob(t *testing.T) {
	small := Config{Seed: 1, Trials: 8, Parallel: 4}
	a := E2Fingerprint(small)
	b := E2Fingerprint(small)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("E2 not deterministic under a custom fleet size")
	}
	if !strings.Contains(a.Table, "/8") {
		t.Fatalf("E2 table does not reflect Trials=8:\n%s", a.Table)
	}
}
