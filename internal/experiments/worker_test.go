package experiments

import (
	"os"
	"testing"

	"extmem/internal/transport"
)

// TestMain routes worker-mode re-executions of this test binary into
// the shard worker loop: E18–E20 sweep the process transport, which
// self-execs os.Executable() — under `go test`, this binary.
func TestMain(m *testing.M) {
	transport.MaybeWorker()
	os.Exit(m.Run())
}
