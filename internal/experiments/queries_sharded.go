package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"

	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/relalg"
	"extmem/internal/transport"
)

// E19ShardedQueries tables the sharded query-evaluation frontier: the
// Theorem 11 symmetric-difference query with every operator sort run
// on the shard.Sort run-partitioned path (relalg.Evaluator), swept
// over shards × merge fan-in. Each row reports the query's rollup —
// max and sum of the per-shard (r, s) reports across all operator
// sorts — and the critical-path step count (distribute → slowest
// shard → merge, summed over the operator sequence), next to a
// byte-equality check against the single-machine engine: partitioning
// initial runs across shard machines cuts the slowest machine's scan
// count while the query answer cannot move by a byte (a sorted,
// deduplicated stream is canonical). Like E18, the table sweeps the
// execution shapes internally, so it is byte-identical at any
// cfg.Shards — one extra verification runs at the configured shard
// count so the knob is genuinely exercised.
func E19ShardedQueries(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := problems.GenSetNo(512, 16, rng)
	db := relalg.InstanceDB(in)
	q := relalg.SymmetricDifference("R1", "R2")
	// 16-item initial runs over the 16-symbol tuples: the union's
	// 1024-item sort forms 64 runs, enough frontier for 4 shards.
	const runMem = 256

	// Single-machine baseline: the same engine configuration on the
	// query machine alone (the Theorem 11 evaluator).
	base := cfg.machine(relalg.NumQueryTapes, cfg.Seed)
	baseRel, err := relalg.Evaluator{RunMemoryBits: runMem, TapeOpts: cfg.Storage}.EvalST(cfg.ctx(), q, db, base)
	if err != nil {
		return failure("E19", "SHARD-QUERY", err, core.Reject)
	}
	baseRes := base.Resources()

	var b strings.Builder
	fmt.Fprintf(&b, "Sharded query evaluation: Q' = (R1−R2) ∪ (R2−R1), m=%d (N=%d), run memory %d bits;\n",
		512, db.Size(), runMem)
	fmt.Fprintf(&b, "single machine: %d scans, %d bits, %d steps, |Q'| = %d\n",
		baseRes.Scans(), baseRes.PeakMemoryBits, baseRes.Steps, len(baseRel.Tuples))
	row(&b, "%6s %7s %6s %6s %6s %11s %11s %9s", "fan-in", "shards", "sorts",
		"max r", "sum r", "max s bits", "crit steps", "output≡")
	notes := "PASS: outputs byte-identical at every (shards, fan-in); max per-shard scans strictly fall\n" +
		"with the shard count while sum(scans) never drops below the 1-shard fleet and no shard\n" +
		"exceeds the single-machine memory peak — the rounds-vs-local-work split, on queries."
	reports := map[[2]int]*relalg.QueryReport{}
	for _, fanIn := range []int{2, 4} {
		for _, shards := range []int{1, 2, 4} {
			rep := &relalg.QueryReport{}
			ev := relalg.Evaluator{
				Shards: shards, FanIn: fanIn, RunMemoryBits: runMem,
				Seed: cfg.Seed, Report: rep,
				Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
				TapeOpts: cfg.Storage,
			}
			m := cfg.machine(relalg.NumQueryTapes, cfg.Seed)
			r, err := ev.EvalST(cfg.ctx(), q, db, m)
			if err != nil {
				return failure("E19", "SHARD-QUERY", err, core.Reject)
			}
			reports[[2]int{fanIn, shards}] = rep
			agg := rep.Rollup()
			equal := reflect.DeepEqual(r.Tuples, baseRel.Tuples)
			row(&b, "%6d %7d %6d %6d %6d %11d %11d %9v", fanIn, shards, len(rep.Sorts),
				agg.MaxScans, agg.SumScans, agg.MaxMemoryBits, rep.CriticalPathSteps(), equal)
			if !equal {
				notes = "FAIL: sharded query result differs from the single-machine engine."
			}
		}
	}
	for _, fanIn := range []int{2, 4} {
		single := reports[[2]int{fanIn, 1}].Rollup()
		prevMax := single.MaxScans + 1
		for _, shards := range []int{1, 2, 4} {
			agg := reports[[2]int{fanIn, shards}].Rollup()
			if agg.MaxScans >= prevMax {
				notes = fmt.Sprintf("FAIL: max(scans) did not strictly fall at fan-in %d, shards %d.", fanIn, shards)
			}
			prevMax = agg.MaxScans
			if agg.SumScans < single.SumScans {
				notes = fmt.Sprintf("FAIL: sum(scans) fell below the 1-shard fleet at fan-in %d, shards %d.", fanIn, shards)
			}
			if agg.MaxMemoryBits > baseRes.PeakMemoryBits {
				notes = fmt.Sprintf("FAIL: a shard exceeded the single-machine memory peak at fan-in %d, shards %d.", fanIn, shards)
			}
		}
	}

	// Per-shard (r, s, t) of the dominant operator sort (the union of
	// both relations, the sort with the most input items) at fan-in 4.
	fmt.Fprintf(&b, "\nper-shard (r, s, t) of the dominant sort (fan-in 4):\n")
	for _, shards := range []int{1, 2, 4} {
		rep := reports[[2]int{4, shards}]
		dom := rep.Sorts[0]
		for _, s := range rep.Sorts {
			if s.Items > dom.Items {
				dom = s
			}
		}
		parts := make([]string, len(dom.Shards))
		for i, res := range dom.Shards {
			parts[i] = fmt.Sprintf("(r=%d s=%d t=%d)", res.Scans(), res.PeakMemoryBits, res.Tapes)
		}
		row(&b, "%7d shards: %d items in %d runs → %s; merge r=%d",
			shards, dom.Items, dom.Runs, strings.Join(parts, " "), dom.Merge.Scans())
	}

	// Transport rows: the fan-in 4 evaluations again, with every
	// operator sort's AND operator scan's shard-local attempts behind a
	// transport — worker processes over pipes, then loopback TCP
	// workers. The result tuples must match the single machine and the
	// whole QueryReport — per-shard (r, s, t) of every operator sort
	// and scan — must match the in-process sharded run: the census
	// crosses the boundary intact, not merely the answer.
	transports := []struct {
		name string
		tr   transport.Transport
	}{{"proc", cfg.proc()}}
	tcpT, tcpStop, err := transport.LocalWorkers(2)
	if err != nil {
		return failure("E19", "SHARD-QUERY", err, core.Reject)
	}
	defer tcpStop()
	transports = append(transports, struct {
		name string
		tr   transport.Transport
	}{"tcp", tcpT})
	for _, tc := range transports {
		fmt.Fprintf(&b, "\n%s transport (fan-in 4): shard-local operator sorts and scans behind the transport\n", tc.name)
		row(&b, "%7s %9s %9s", "shards", "output≡", "census≡")
		for _, shards := range []int{1, 2, 4} {
			prep := &relalg.QueryReport{}
			r, err := relalg.Evaluator{
				Shards: shards, FanIn: 4, RunMemoryBits: runMem,
				Seed: cfg.Seed, Report: prep,
				Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
				Exec: tc.tr.Exec(), ExecScan: tc.tr.ExecScan(), TapeOpts: cfg.Storage,
			}.EvalST(cfg.ctx(), q, db, cfg.machine(relalg.NumQueryTapes, cfg.Seed))
			if err != nil {
				return failure("E19", "SHARD-QUERY", err, core.Reject)
			}
			outEq := reflect.DeepEqual(r.Tuples, baseRel.Tuples)
			cenEq := reflect.DeepEqual(prep, reports[[2]int{4, shards}])
			row(&b, "%7d %9v %9v", shards, outEq, cenEq)
			if !outEq {
				notes = fmt.Sprintf("FAIL: the %s-transport query at %d shards differs from the single machine.", tc.name, shards)
			}
			if !cenEq {
				notes = fmt.Sprintf("FAIL: the %s-transport census at %d shards differs from the in-process run.", tc.name, shards)
			}
		}
	}

	// The configured execution shape, exercised for real: one more
	// evaluation at cfg.Shards shards (and, under -transport proc/tcp,
	// with transport-backed sort and scan attempts) must reproduce the
	// same bytes.
	cfgRel, err := relalg.Evaluator{
		Shards: cfg.ShardCount(), RunMemoryBits: runMem, Seed: cfg.Seed,
		Retry: cfg.Retry, Inject: cfg.Faults.ShardInject(),
		Exec: cfg.exec(), ExecScan: cfg.execScan(), TapeOpts: cfg.Storage,
	}.EvalST(cfg.ctx(), q, db, cfg.machine(relalg.NumQueryTapes, cfg.Seed))
	if err != nil {
		return failure("E19", "SHARD-QUERY", err, core.Reject)
	}
	cfgEqual := reflect.DeepEqual(cfgRel.Tuples, baseRel.Tuples)
	fmt.Fprintf(&b, "\nconfigured-shard run: output ≡ single machine: %v\n", cfgEqual)
	if !cfgEqual {
		notes = "FAIL: the configured-shard evaluation differs from the single-machine engine."
	}

	return Result{
		ID:    "E19",
		Title: "sharded relational query evaluation",
		Claim: "Theorem 11 workloads on the k-machine split: operator sorts shard by initial runs, byte-identical answers, per-shard (r, s, t) auditable",
		Table: b.String(),
		Notes: notes,
	}
}
