// Package lowerbound implements the counting machinery behind the
// paper's main theorem — Theorem 6, the Ω(log N) lower bound for
// (MULTI)SET-EQUALITY and CHECK-SORT against randomized machines with
// o(log N) scans and O(N^¼/log N) internal memory — together with an
// executable adversary demonstrating its mechanism.
//
// The counting side follows the proof's list-machine route
// (internal/listmachine holds the machines themselves, this package
// the bounds):
//
//   - TotalListLengthBound, CellSizeBound, RunLengthBound — the
//     Lemma 30/31 envelopes on what an (r, t)-bounded nondeterministic
//     list machine can materialize.
//   - SkeletonCountBound, SimplifiedSkeletonBound — the Lemma 32
//     census: at most (2k)^{m²} skeletons, the information bottleneck.
//   - EqualInputCount, Lemma21Check, PigeonholeGap — Lemma 21's
//     pigeonhole: once n ≥ 1 + (m²+1)·log(2k), there are more
//     structured inputs than skeletons, forcing a collision (the gap
//     E11 tables).
//   - Frontier, FrontierTable, StateCountBound, MemoryBound — the
//     Lemma 22 tightness frontier: the largest scan count r at which
//     the argument applies, growing as Θ(log N) (also tabled by E11).
//
// The adversary side (FindCollision, FindCollisionParallel,
// ProbeStateKeys) is the mechanism made constructive, used by E16:
// probe candidate first halves into any deterministic bounded-state
// one-scan StreamMachine, find two halves driving it into the same
// state (pigeonhole guarantees one within ~state-count probes), and
// compose the fooling instance the machine must mis-decide. Probing
// fans out over a trials.Launcher — a worker pool or a sharded fleet
// (internal/shard) — and returns exactly the collision the sequential
// scan would find, because the pigeonhole search over the probed keys
// stays in half order.
package lowerbound
