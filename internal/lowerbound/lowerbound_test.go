package lowerbound

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"extmem/internal/listmachine"
	"extmem/internal/problems"
	"extmem/internal/trials"
)

func TestTotalListLengthBoundFormula(t *testing.T) {
	// (2+1)^3 · 4 = 108.
	if got := TotalListLengthBound(2, 3, 4); got.Cmp(big.NewInt(108)) != 0 {
		t.Fatalf("got %v, want 108", got)
	}
}

func TestCellSizeBoundFormula(t *testing.T) {
	// 11 · 2^3 = 88 for t = 1 (max(t,2) = 2).
	if got := CellSizeBound(1, 3); got.Cmp(big.NewInt(88)) != 0 {
		t.Fatalf("got %v, want 88", got)
	}
	// 11 · 3^2 = 99 for t = 3, r = 2.
	if got := CellSizeBound(3, 2); got.Cmp(big.NewInt(99)) != 0 {
		t.Fatalf("got %v, want 99", got)
	}
}

func TestRunLengthBoundFormula(t *testing.T) {
	// k + k·(t+1)^{r+1}·m with k=2, t=1, r=1, m=3: 2 + 2·4·3 = 26.
	if got := RunLengthBound(big.NewInt(2), 1, 1, 3); got.Cmp(big.NewInt(26)) != 0 {
		t.Fatalf("got %v, want 26", got)
	}
}

// The formulas must dominate actual measured runs of real list
// machines.
func TestBoundsDominateRealRuns(t *testing.T) {
	mc := listmachine.CopyReverseCompareNLM(4)
	run, err := mc.RunDeterministic([]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	if err != nil {
		t.Fatal(err)
	}
	r := run.Scans()
	if got := big.NewInt(int64(run.Final.TotalListLength())); got.Cmp(TotalListLengthBound(mc.T, r, mc.M)) > 0 {
		t.Fatalf("measured list length %v exceeds Lemma 30(a) bound", got)
	}
	if got := big.NewInt(int64(run.Final.CellSize())); got.Cmp(CellSizeBound(mc.T, r)) > 0 {
		t.Fatalf("measured cell size %v exceeds Lemma 30(b) bound", got)
	}
	// Run length: with a generous state count (states are dynamic
	// strings here; use the number of steps as a trivial lower bound
	// witness that the formula is not vacuous).
	k := big.NewInt(int64(run.Steps + 1))
	if got := big.NewInt(int64(run.Steps)); got.Cmp(RunLengthBound(k, mc.T, r, mc.M)) > 0 {
		t.Fatalf("measured run length exceeds Lemma 31 bound")
	}
}

func TestSkeletonCountBoundGrowth(t *testing.T) {
	k := big.NewInt(100)
	small := SkeletonCountBound(2, 1, 4, k)
	large := SkeletonCountBound(2, 2, 4, k)
	if small.Cmp(large) >= 0 {
		t.Fatal("skeleton bound not increasing in r")
	}
	if small.Sign() <= 0 {
		t.Fatal("skeleton bound not positive")
	}
}

func TestSimplifiedSkeletonBound(t *testing.T) {
	// (2·5)^{3²} = 10^9.
	got := SimplifiedSkeletonBound(3, big.NewInt(5))
	want := new(big.Int).Exp(big.NewInt(10), big.NewInt(9), nil)
	if got.Cmp(want) != 0 {
		t.Fatalf("got %v, want 10^9", got)
	}
}

func TestEqualInputCount(t *testing.T) {
	// m=4, n=4: (16/4)^4 = 256.
	if got := EqualInputCount(4, 4); got.Cmp(big.NewInt(256)) != 0 {
		t.Fatalf("got %v, want 256", got)
	}
}

func TestLemma21Check(t *testing.T) {
	// t=2, r=1: m ≥ 16·81+1 = 1297 → m = 2048 works.
	m := 2048
	k := big.NewInt(int64(2*m + 3))
	nMin := 1 + (m*m+1)*new(big.Int).Lsh(k, 1).BitLen()
	if err := Lemma21Check(2, 1, m, nMin, k); err != nil {
		t.Fatalf("valid parameters rejected: %v", err)
	}
	if err := Lemma21Check(1, 1, m, nMin, k); err == nil {
		t.Fatal("t=1 accepted")
	}
	if err := Lemma21Check(2, 1, 1024, nMin, k); err == nil {
		t.Fatal("too-small m accepted")
	}
	if err := Lemma21Check(2, 1, 2047, nMin, k); err == nil {
		t.Fatal("non-power-of-two m accepted")
	}
	if err := Lemma21Check(2, 1, m, 10, k); err == nil {
		t.Fatal("too-small n accepted")
	}
	if err := Lemma21Check(2, 1, m, nMin, big.NewInt(5)); err == nil {
		t.Fatal("too-small k accepted")
	}
}

// The pigeonhole gap must be ≥ 2 exactly in the Lemma 21 parameter
// regime (that is what forces two inputs into one class).
func TestPigeonholeGapInRegime(t *testing.T) {
	m := 64
	k := big.NewInt(int64(2*m + 3))
	n := 1 + (m*m+1)*new(big.Int).Lsh(k, 1).BitLen()
	gap := PigeonholeGap(m, n, k)
	if gap.Cmp(big.NewRat(2, 1)) < 0 {
		t.Fatalf("gap %v < 2 in the valid regime", gap.FloatString(3))
	}
	// Below the n threshold the gap collapses.
	gapSmall := PigeonholeGap(m, n/4, k)
	if gapSmall.Cmp(big.NewRat(2, 1)) >= 0 {
		t.Fatalf("gap %v >= 2 despite too-small n", gapSmall.FloatString(3))
	}
}

func TestStateCountBound(t *testing.T) {
	b := StateCountBound(1, 2, 3, 4, 8, 8)
	if b.Sign() <= 0 {
		t.Fatal("state bound not positive")
	}
	// Monotone in s.
	if StateCountBound(1, 2, 3, 8, 8, 8).Cmp(b) <= 0 {
		t.Fatal("state bound not increasing in s")
	}
}

// The frontier must grow as Θ(log N): ratios r/log2(N) settle into a
// narrow positive band.
func TestFrontierLogarithmic(t *testing.T) {
	// Condition (3) of Lemma 22 needs m ≥ 16·(t+1)^4+1 = 1297 before
	// even one scan is forbidden; start at m = 2^11.
	points := Frontier(2, 1, 11, 22)
	for _, p := range points {
		if p.MaxScans <= 0 {
			t.Fatalf("m=%d: MaxScans = %d, want positive", p.M, p.MaxScans)
		}
	}
	// Ratios of the last few points should be within a factor 3 of
	// each other (they converge slowly).
	last := points[len(points)-1].Ratio
	prev := points[len(points)-4].Ratio
	if last <= 0 || prev <= 0 || last/prev > 3 || prev/last > 3 {
		t.Fatalf("ratios not stabilizing: %v vs %v", prev, last)
	}
	// And the frontier must stay below the Corollary 7 upper bound
	// times a constant: tightness.
	for _, p := range points {
		upper := UpperBoundScans(p.N, 8)
		if p.MaxScans > 40*upper {
			t.Fatalf("m=%d: lower-bound frontier %d far exceeds upper bound %d — not tight", p.M, p.MaxScans, upper)
		}
	}
}

func TestFrontierTable(t *testing.T) {
	table := FrontierTable(Frontier(2, 1, 6, 8))
	if !strings.Contains(table, "max r") || len(strings.Split(table, "\n")) < 4 {
		t.Fatalf("bad table:\n%s", table)
	}
}

func TestUpperBoundScans(t *testing.T) {
	if got := UpperBoundScans(1024, 1); got != 10 {
		t.Fatalf("got %d, want 10", got)
	}
	if got := UpperBoundScans(1, 1); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

// The adversary must defeat the plain hash sketch.
func TestAdversaryDefeatsHashStream(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const m, n = 4, 8
	sm := NewHashStream(10, m) // 1024 states
	halves := RandomHalves(1200, m, n, rng)
	col, found := FindCollision(sm, halves)
	if !found {
		t.Fatal("no collision among 1200 halves against 1024 states (pigeonhole violated?)")
	}
	fooled, err := col.Verify(sm)
	if err != nil {
		// Rare: collided halves could be multiset-equal; regenerate
		// is overkill — fail loudly so the seed gets fixed.
		t.Fatalf("verify: %v", err)
	}
	if !fooled {
		t.Fatal("machine distinguished the composed instances despite the state collision")
	}
	// Sanity: the fooling instance really is a no-instance.
	if problems.MultisetEquality(col.FoolingInstance()) {
		t.Fatal("fooling instance is multiset-equal")
	}
	if !problems.MultisetEquality(col.YesInstance()) {
		t.Fatal("yes instance is not multiset-equal")
	}
}

// The order-independent sketch falls the same way.
func TestAdversaryDefeatsCommutativeStream(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	const m, n = 4, 8
	sm := NewCommutativeHashStream(8, m) // 256 states
	halves := RandomHalves(300, m, n, rng)
	col, found := FindCollision(sm, halves)
	if !found {
		t.Fatal("no collision among 300 halves against 256 states")
	}
	fooled, err := col.Verify(sm)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !fooled {
		t.Fatal("commutative sketch distinguished the composed instances")
	}
}

// With plenty of state (more states than probes), a collision need
// not exist — the adversary's power is exactly the pigeonhole.
func TestAdversaryBoundedByStateCount(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	sm := NewCommutativeHashStream(62, 4)
	halves := RandomHalves(200, 4, 16, rng)
	if _, found := FindCollision(sm, halves); found {
		t.Skip("collision found against 2^62 states — astronomically unlikely; seed artifact")
	}
}

func TestRandomHalvesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	halves := RandomHalves(50, 3, 6, rng)
	seen := map[string]bool{}
	for _, h := range halves {
		key := strings.Join(h.V, ",")
		if seen[key] {
			t.Fatal("duplicate half generated")
		}
		seen[key] = true
	}
}

func TestMemoryBound(t *testing.T) {
	if MemoryBound(1) != 1 {
		t.Fatal("MemoryBound(1) != 1")
	}
	// N = 2^16: N^(1/4) = 16, log2 N = 16 → 1 (up to float rounding).
	if got := MemoryBound(65536); got < 0.999 || got > 1.001 {
		t.Fatalf("MemoryBound(2^16) = %v, want ~1", got)
	}
}

// The parallel probe must find exactly the collision the sequential
// scan finds — same indices, same census — at any worker count.
func TestFindCollisionParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	const m, n = 4, 8
	halves := RandomHalves(1200, m, n, rng)
	seq, foundSeq := FindCollision(NewHashStream(10, m), halves)
	launchers := map[string]trials.Launcher{
		"nil-sequential": nil,
		"pool-1":         trials.Pool(1),
		"pool-8":         trials.Pool(8),
	}
	for name, launch := range launchers {
		got, found := FindCollisionParallel(nil, func() StreamMachine { return NewHashStream(10, m) }, halves, launch)
		if found != foundSeq {
			t.Fatalf("%s: found=%v, sequential found=%v", name, found, foundSeq)
		}
		if got.I != seq.I || got.J != seq.J || got.States != seq.States {
			t.Fatalf("%s: collision (%d,%d,%d) != sequential (%d,%d,%d)",
				name, got.I, got.J, got.States, seq.I, seq.J, seq.States)
		}
	}
}

// ProbeStateKeys must agree with feeding the halves one by one.
func TestProbeStateKeysOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	halves := RandomHalves(64, 3, 6, rng)
	keys := ProbeStateKeys(nil, func() StreamMachine { return NewCommutativeHashStream(12, 3) }, halves, trials.Pool(8))
	sm := NewCommutativeHashStream(12, 3)
	for i, h := range halves {
		if got := feedHalf(sm, h); got != keys[i] {
			t.Fatalf("half %d: parallel key %q != sequential key %q", i, keys[i], got)
		}
	}
}
