package lowerbound

import (
	"context"
	"fmt"
	"math/rand"

	"extmem/internal/problems"
	"extmem/internal/trials"
)

// StreamMachine is any deterministic machine that reads an input in a
// single forward scan with bounded internal state. The adversary only
// observes the serialized state, never the machine's internals.
type StreamMachine interface {
	// Reset returns the machine to its initial state.
	Reset()
	// Feed consumes one input symbol.
	Feed(b byte)
	// StateKey serializes the current internal state. Two runs with
	// equal keys are indistinguishable to the machine from here on.
	StateKey() string
	// Accepts reports the machine's verdict for the input consumed
	// so far (interpreted as a complete instance).
	Accepts() bool
}

// Collision is a fooling pair found by the adversary: two distinct
// first halves driving the machine into the same internal state.
type Collision struct {
	I, J   int // indices into the probed half inputs
	HalfI  problems.Instance
	HalfJ  problems.Instance
	States int // distinct states observed
}

// FindCollision feeds each candidate first half (encoded instance
// prefix v_1#…v_m#) to a fresh run of the machine and searches for
// two halves reaching the same state — guaranteed to exist by
// pigeonhole as soon as the number of candidates exceeds the
// machine's state count. This is the executable core of Theorem 6's
// mechanism: a machine that cannot distinguish two first halves must
// err on one of the composed instances.
func FindCollision(sm StreamMachine, halves []problems.Instance) (*Collision, bool) {
	seen := map[string]int{}
	for idx, h := range halves {
		key := feedHalf(sm, h)
		if prev, ok := seen[key]; ok {
			return &Collision{
				I: prev, J: idx,
				HalfI:  halves[prev],
				HalfJ:  halves[idx],
				States: len(seen),
			}, true
		}
		seen[key] = idx
	}
	return nil, false
}

// FoolingInstance composes a collision into a no-instance that the
// collided machine MUST misclassify relative to the yes-instance:
// the machine accepts HalfI·HalfI (it must, if it is correct on
// yes-instances) and, being in the same state after HalfJ, also
// accepts HalfJ·HalfI — a false positive when the halves differ as
// multisets.
func (c *Collision) FoolingInstance() problems.Instance {
	return problems.Instance{V: c.HalfJ.V, W: c.HalfI.V}
}

// YesInstance returns the honest instance HalfI·HalfI the fooling
// instance is indistinguishable from.
func (c *Collision) YesInstance() problems.Instance {
	return problems.Instance{V: c.HalfI.V, W: c.HalfI.V}
}

// Verify runs the machine on both composed instances and reports
// whether the adversary succeeded: the machine gives the same verdict
// on the yes-instance and the fooling no-instance (so it errs on one
// of them).
func (c *Collision) Verify(sm StreamMachine) (fooled bool, err error) {
	run := func(in problems.Instance) bool {
		sm.Reset()
		enc := in.Encode()
		for _, b := range enc {
			sm.Feed(b)
		}
		return sm.Accepts()
	}
	yes := c.YesInstance()
	no := c.FoolingInstance()
	if problems.MultisetEquality(no) {
		return false, fmt.Errorf("lowerbound: collision halves are multiset-equal; adversary needs distinct halves")
	}
	vYes := run(yes)
	vNo := run(no)
	return vYes == vNo, nil
}

// A StreamFactory builds a fresh, independent instance of the machine
// under attack. Parallel probing feeds each candidate half into its
// own machine, so the factory must not share mutable state between
// the machines it returns.
type StreamFactory func() StreamMachine

// feedHalf runs one candidate first half (encoded prefix v_1#…v_m#)
// through a fresh machine and returns the state key it lands in.
func feedHalf(sm StreamMachine, h problems.Instance) string {
	sm.Reset()
	for _, v := range h.V {
		for i := 0; i < len(v); i++ {
			sm.Feed(v[i])
		}
		sm.Feed(problems.Separator)
	}
	return sm.StateKey()
}

// ProbeStateKeys computes, on a probe fleet built by launch (a worker
// pool via trials.Pool, or a sharded fleet via internal/shard.Launch;
// nil means a default pool), the state key each candidate half drives
// a fresh machine into. The probes draw no randomness; the keys come
// back in half order, so the result is independent of the worker and
// shard counts. ctx bounds the probe fleet (nil means no bound).
func ProbeStateKeys(ctx context.Context, mk StreamFactory, halves []problems.Instance, launch trials.Launcher) []string {
	if launch == nil {
		launch = trials.Pool(0)
	}
	keys := make([]string, len(halves))
	launch(len(halves), 0, nil).Run(ctx,
		func(i int, _ *rand.Rand) trials.Result {
			keys[i] = feedHalf(mk(), halves[i])
			return trials.Result{}
		})
	return keys
}

// FindCollisionParallel is FindCollision with the probing fanned out
// over the fleet built by launch: it returns exactly the collision the
// sequential scan would find (the first duplicate state key in half
// order, with the same States census), because the pigeonhole search
// over the probed keys is still performed in order. Fanned-out probing
// visits every half even when an early collision exists — the price of
// parallelism — so a nil launch selects the early-exiting sequential
// scan instead of a default pool. ctx bounds the probe fleet.
func FindCollisionParallel(ctx context.Context, mk StreamFactory, halves []problems.Instance, launch trials.Launcher) (*Collision, bool) {
	if launch == nil {
		return FindCollision(mk(), halves)
	}
	keys := ProbeStateKeys(ctx, mk, halves, launch)
	seen := map[string]int{}
	for idx, key := range keys {
		if prev, ok := seen[key]; ok {
			return &Collision{
				I: prev, J: idx,
				HalfI:  halves[prev],
				HalfJ:  halves[idx],
				States: len(seen),
			}, true
		}
		seen[key] = idx
	}
	return nil, false
}

// RandomHalves generates count distinct first halves with m values of
// length n each.
func RandomHalves(count, m, n int, rng *rand.Rand) []problems.Instance {
	seen := map[string]bool{}
	var out []problems.Instance
	for len(out) < count {
		in := problems.GenMultisetYes(m, n, rng)
		half := problems.Instance{V: in.V}
		key := fmt.Sprint(half.V)
		if !seen[key] {
			seen[key] = true
			out = append(out, half)
		}
	}
	return out
}

// HashStream is a deterministic one-scan machine summarizing the
// stream into `bits` bits of state — the honest strawman every
// sketching algorithm reduces to. With more than 2^bits distinct
// halves it is guaranteed to collide.
type HashStream struct {
	Bits  uint
	state uint64
	// The accept predicate compares the halves' hashes: it remembers
	// the hash at the midpoint (position tracking costs it nothing
	// here; we let it know the instance shape out of band, which only
	// STRENGTHENS the machine the adversary defeats).
	halfState uint64
	items     int
	HalfItems int // items per half, set by the experiment
}

// NewHashStream returns a HashStream with the given state width.
func NewHashStream(bits uint, halfItems int) *HashStream {
	return &HashStream{Bits: bits, HalfItems: halfItems}
}

// Reset implements StreamMachine.
func (h *HashStream) Reset() { h.state, h.halfState, h.items = 0, 0, 0 }

// Feed implements StreamMachine: a multiplicative byte hash truncated
// to Bits bits.
func (h *HashStream) Feed(b byte) {
	h.state = (h.state*131 + uint64(b) + 1) & ((1 << h.Bits) - 1)
	if b == problems.Separator {
		h.items++
		if h.items == h.HalfItems {
			h.halfState = h.state
			h.state = 0
		}
	}
}

// StateKey implements StreamMachine: the FULL internal state
// (running hash, midpoint snapshot, item counter).
func (h *HashStream) StateKey() string {
	return fmt.Sprintf("%d|%d|%d", h.state, h.halfState, h.items)
}

// Accepts implements StreamMachine: equal half hashes.
func (h *HashStream) Accepts() bool { return h.state == h.halfState }

// CommutativeHashStream hashes each item order-independently (sum of
// item hashes): a sketch that genuinely attempts multiset equality.
// It too collides once the adversary probes more halves than it has
// states.
type CommutativeHashStream struct {
	Bits      uint
	HalfItems int
	state     uint64
	halfState uint64
	cur       uint64
	items     int
}

// NewCommutativeHashStream returns the order-independent variant.
func NewCommutativeHashStream(bits uint, halfItems int) *CommutativeHashStream {
	return &CommutativeHashStream{Bits: bits, HalfItems: halfItems}
}

// Reset implements StreamMachine.
func (c *CommutativeHashStream) Reset() { c.state, c.halfState, c.cur, c.items = 0, 0, 0, 0 }

// Feed implements StreamMachine.
func (c *CommutativeHashStream) Feed(b byte) {
	if b == problems.Separator {
		c.state = (c.state + c.cur*2654435761 + 1) & ((1 << c.Bits) - 1)
		c.cur = 0
		c.items++
		if c.items == c.HalfItems {
			c.halfState = c.state
			c.state = 0
		}
		return
	}
	c.cur = c.cur*31 + uint64(b)
}

// StateKey implements StreamMachine: the full internal state.
func (c *CommutativeHashStream) StateKey() string {
	return fmt.Sprintf("%d|%d|%d|%d", c.state, c.halfState, c.cur, c.items)
}

// Accepts implements StreamMachine.
func (c *CommutativeHashStream) Accepts() bool { return c.state == c.halfState }
