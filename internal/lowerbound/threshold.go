package lowerbound

import (
	"fmt"
	"math"
)

// FrontierPoint is one row of the Ω(log N) tightness frontier of
// Lemma 22 / Theorem 6: for input parameter m (a power of two,
// n = m³, N = 2m(n+1)), MaxScans is the largest scan count r for
// which the lower-bound argument still applies — every randomized
// one-sided-error machine with ≤ MaxScans sequential scans and
// internal memory ≤ s(N) = N^{1/4}/log N fails on CHECK-ϕ (hence on
// (multi)set equality and checksort).
type FrontierPoint struct {
	M        int     // values per half
	N        float64 // input size 2m(m³+1)
	Log2N    float64
	MaxScans int     // largest r where the contradiction holds
	Ratio    float64 // MaxScans / log₂ N — converges to a constant
}

// Frontier computes the tightness frontier for t external tapes and
// simulation constant d, for m = 2^lo .. 2^hi. Condition (3) of
// Lemma 22 requires m ≥ 2^4·(t+1)^{4r}+1; condition (4) requires
// m³ ≥ 1 + d·t²·r·s(N) + 3t·log(N). MaxScans is the largest r
// satisfying both.
//
// The arithmetic is in float64: the quantities compared are smooth
// (powers and logarithms), and the frontier's SHAPE — MaxScans =
// Θ(log N) — is the reproduction target, not exact integer
// thresholds.
func Frontier(t, d, lo, hi int) []FrontierPoint {
	var out []FrontierPoint
	for e := lo; e <= hi; e++ {
		m := math.Pow(2, float64(e))
		n := m * m * m
		bigN := 2 * m * (n + 1)
		logN := math.Log2(bigN)
		s := MemoryBound(bigN)

		// Condition (3): 16·(t+1)^{4r} + 1 ≤ m.
		r3 := math.Floor(math.Log2((m-1)/16) / (4 * math.Log2(float64(t+1))))
		// Condition (4): d·t²·r·s(N) + 3t·log N + 1 ≤ m³.
		r4 := math.Floor((n - 1 - 3*float64(t)*logN) / (float64(d) * float64(t*t) * s))
		r := math.Min(r3, r4)
		if r < 0 {
			r = 0
		}
		out = append(out, FrontierPoint{
			M:        1 << uint(e),
			N:        bigN,
			Log2N:    logN,
			MaxScans: int(r),
			Ratio:    r / logN,
		})
	}
	return out
}

// FrontierTable renders the frontier as aligned text rows.
func FrontierTable(points []FrontierPoint) string {
	s := fmt.Sprintf("%10s %14s %10s %10s %12s\n", "m", "N", "log2(N)", "max r", "r/log2(N)")
	for _, p := range points {
		s += fmt.Sprintf("%10d %14.4g %10.1f %10d %12.4f\n", p.M, p.N, p.Log2N, p.MaxScans, p.Ratio)
	}
	return s
}

// UpperBoundScans returns the number of scans the Corollary 7
// deterministic algorithm needs (a small constant times log₂ N),
// closing the gap from above: together with Frontier this exhibits
// the TIGHTNESS of Theorem 6 — hard below c₁·log N scans, solvable
// at c₂·log N scans.
func UpperBoundScans(n float64, passConstant float64) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(passConstant * math.Log2(n)))
}
