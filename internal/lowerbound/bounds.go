package lowerbound

import (
	"fmt"
	"math"
	"math/big"
)

// TotalListLengthBound returns the Lemma 30(a) bound (t+1)^r · m on
// the total list length of an (r, t)-bounded NLM on m inputs.
func TotalListLengthBound(t, r, m int) *big.Int {
	b := new(big.Int).Exp(big.NewInt(int64(t+1)), big.NewInt(int64(r)), nil)
	return b.Mul(b, big.NewInt(int64(m)))
}

// CellSizeBound returns the Lemma 30(b) bound 11 · max(t,2)^r on the
// cell size of an (r, t)-bounded NLM.
func CellSizeBound(t, r int) *big.Int {
	base := t
	if base < 2 {
		base = 2
	}
	b := new(big.Int).Exp(big.NewInt(int64(base)), big.NewInt(int64(r)), nil)
	return b.Mul(b, big.NewInt(11))
}

// RunLengthBound returns the Lemma 31(a) bound k + k·(t+1)^{r+1}·m on
// the length of runs of an (r, t)-bounded NLM with k states.
func RunLengthBound(k *big.Int, t, r, m int) *big.Int {
	moves := new(big.Int).Exp(big.NewInt(int64(t+1)), big.NewInt(int64(r+1)), nil)
	moves.Mul(moves, big.NewInt(int64(m)))
	moves.Mul(moves, k)
	return moves.Add(moves, k)
}

// SkeletonCountBound returns the Lemma 32 bound
//
//	(m + k + 3)^(12·m·(t+1)^{2r+2} + 24·(t+1)^r)
//
// on the number of skeletons of runs of an (r, t)-bounded NLM with k
// states and m inputs.
func SkeletonCountBound(t, r, m int, k *big.Int) *big.Int {
	base := new(big.Int).Add(k, big.NewInt(int64(m+3)))
	e1 := new(big.Int).Exp(big.NewInt(int64(t+1)), big.NewInt(int64(2*r+2)), nil)
	e1.Mul(e1, big.NewInt(int64(12*m)))
	e2 := new(big.Int).Exp(big.NewInt(int64(t+1)), big.NewInt(int64(r)), nil)
	e2.Mul(e2, big.NewInt(24))
	exp := e1.Add(e1, e2)
	return new(big.Int).Exp(base, exp, nil)
}

// SimplifiedSkeletonBound returns the (2k)^{m²} bound used in
// Claim 2 of the proof of Lemma 21, valid under that lemma's
// parameter requirements.
func SimplifiedSkeletonBound(m int, k *big.Int) *big.Int {
	base := new(big.Int).Lsh(k, 1) // 2k
	exp := new(big.Int).Mul(big.NewInt(int64(m)), big.NewInt(int64(m)))
	return new(big.Int).Exp(base, exp, nil)
}

// EqualInputCount returns |I_eq| = (2^n / m)^m, the number of
// structured yes-inputs of Lemma 21 (m must divide 2^n, i.e. m a
// power of two and n ≥ log₂ m).
func EqualInputCount(m, n int) *big.Int {
	interval := new(big.Int).Lsh(big.NewInt(1), uint(n))
	interval.Div(interval, big.NewInt(int64(m)))
	return new(big.Int).Exp(interval, big.NewInt(int64(m)), nil)
}

// StateCountBound returns the Lemma 16 bound (equation (2)) on the
// number of list-machine states needed to simulate an (r, s, t)-
// bounded Turing machine on inputs of m values of length n:
//
//	2^(d·t²·r·s + 3·t·log(m·(n+1)))
//
// with the machine-dependent constant d.
func StateCountBound(d, t, r, s, m, n int) *big.Int {
	logTerm := bits64(uint64(m) * uint64(n+1))
	exp := int64(d)*int64(t)*int64(t)*int64(r)*int64(s) + 3*int64(t)*int64(logTerm)
	return new(big.Int).Lsh(big.NewInt(1), uint(exp))
}

func bits64(x uint64) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// Lemma21Check verifies the parameter requirements of Lemma 21:
// t ≥ 2, m a power of two with m ≥ 2^4·(t+1)^{4r} + 1, k ≥ 2m+3 and
// n ≥ 1 + (m²+1)·log₂(2k). If all hold, NO (r, t)-bounded NLM with
// ≤ k states can solve CHECK-ϕ on the structured inputs — the lower
// bound applies.
func Lemma21Check(t, r, m, n int, k *big.Int) error {
	if t < 2 {
		return fmt.Errorf("lowerbound: t = %d < 2", t)
	}
	if m <= 0 || m&(m-1) != 0 {
		return fmt.Errorf("lowerbound: m = %d not a power of two", m)
	}
	mMin := new(big.Int).Exp(big.NewInt(int64(t+1)), big.NewInt(int64(4*r)), nil)
	mMin.Mul(mMin, big.NewInt(16))
	mMin.Add(mMin, big.NewInt(1))
	if big.NewInt(int64(m)).Cmp(mMin) < 0 {
		return fmt.Errorf("lowerbound: m = %d < 2^4·(t+1)^{4r}+1 = %v", m, mMin)
	}
	if k.Cmp(big.NewInt(int64(2*m+3))) < 0 {
		return fmt.Errorf("lowerbound: k = %v < 2m+3 = %d", k, 2*m+3)
	}
	two2k := new(big.Int).Lsh(k, 1)
	log2k := two2k.BitLen() // ⌈log₂(2k)⌉ up to off-by-one on powers of two; conservative
	nMin := 1 + (m*m+1)*log2k
	if n < nMin {
		return fmt.Errorf("lowerbound: n = %d < 1+(m²+1)·log(2k) = %d", n, nMin)
	}
	return nil
}

// PigeonholeGap quantifies the heart of Lemma 21's proof for given
// parameters: the number of structured yes-inputs per (choice
// sequence, skeleton) class. The proof needs this to be ≥ 2 so two
// inputs can be cross-composed (Lemma 34) into an accepted
// no-instance. It returns inputs/(2·(2k)^{m²}·(2^n/m)^{m−1}) — the
// count of v_1 values sharing a class after fixing v_2…v_m — matching
// the final computation in the proof of Lemma 21.
func PigeonholeGap(m, n int, k *big.Int) *big.Rat {
	// 2^n / (2m · (2k)^{m²})
	num := new(big.Int).Lsh(big.NewInt(1), uint(n))
	den := SimplifiedSkeletonBound(m, k)
	den.Mul(den, big.NewInt(int64(2*m)))
	return new(big.Rat).SetFrac(num, den)
}

// MemoryBound returns the paper's internal-memory regime
// s(N) = ⌊N^{1/4} / log₂ N⌋ of Theorem 6 (in cells/bits).
func MemoryBound(n float64) float64 {
	if n < 2 {
		return 1
	}
	return math.Pow(n, 0.25) / math.Log2(n)
}
