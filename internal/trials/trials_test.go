package trials

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Property: trial seeds are deterministic and collision-free over a
// realistic fleet (splitmix64 mixing of root and index).
func TestSeedDerivation(t *testing.T) {
	f := func(root int64) bool {
		seen := map[int64]bool{}
		for i := 0; i < 2000; i++ {
			s := Seed(root, i)
			if s != Seed(root, i) || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedDiffersAcrossRoots(t *testing.T) {
	if Seed(1, 0) == Seed(2, 0) {
		t.Fatal("distinct roots gave equal trial-0 seeds")
	}
}

// noisyTrial is a trial whose result AND rng consumption vary by
// trial, so schedule bugs (wrong rng handed to a worker, results
// landing at the wrong index) cannot cancel out.
func noisyTrial(i int, rng *rand.Rand) Result {
	burn := rng.Intn(40)
	for j := 0; j < burn; j++ {
		rng.Int63()
	}
	v := rng.Float64()
	return Result{
		Accept: v < 0.5,
		Class:  []string{"a", "b", "c"}[rng.Intn(3)],
		Value:  v,
	}
}

// Property (the tentpole invariant): the same root seed produces
// identical per-trial verdict sequences, identical streamed order and
// identical summaries at Parallel=1 and Parallel=8.
func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	f := func(root int64) bool {
		run := func(par int) ([]Result, Summary, []int) {
			var order []int
			rs, sum, err := Engine{
				Trials:   64,
				Parallel: par,
				Seed:     root,
				OnResult: func(r Result) { order = append(order, r.Trial) },
			}.Run(nil, noisyTrial)
			if err != nil {
				t.Fatal(err)
			}
			return rs, sum, order
		}
		r1, s1, o1 := run(1)
		r8, s8, o8 := run(8)
		return reflect.DeepEqual(r1, r8) && reflect.DeepEqual(s1, s8) && reflect.DeepEqual(o1, o8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The streaming callback must observe trials strictly in order even
// when workers finish out of order.
func TestEngineStreamsInTrialOrder(t *testing.T) {
	var order []int
	_, _, err := Engine{
		Trials:   200,
		Parallel: 16,
		Seed:     7,
		OnResult: func(r Result) { order = append(order, r.Trial) },
	}.Run(nil, func(i int, rng *rand.Rand) Result {
		// Skew work so late trials tend to finish first.
		for j := 0; j < (200-i)*50; j++ {
			rng.Int63()
		}
		return Result{Accept: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 200 {
		t.Fatalf("streamed %d results, want 200", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("stream position %d saw trial %d", i, got)
		}
	}
}

// Errors: all trials still run, the summary counts them, and Run
// returns the first error in trial order (not completion order).
func TestEngineErrorPropagation(t *testing.T) {
	rs, sum, err := Engine{Trials: 20, Parallel: 4, Seed: 1}.Run(nil, func(i int, rng *rand.Rand) Result {
		if i == 7 || i == 13 {
			return Result{Err: "boom"}
		}
		return Result{Accept: true}
	})
	if err == nil || !strings.Contains(err.Error(), "trial 7") {
		t.Fatalf("want first-by-index error mentioning trial 7, got %v", err)
	}
	if len(rs) != 20 || sum.Errors != 2 || sum.Accepts != 18 {
		t.Fatalf("bad summary %+v", sum)
	}
}

func TestEngineEmptyFleet(t *testing.T) {
	rs, sum, err := Engine{Trials: 0}.Run(nil, func(int, *rand.Rand) Result { return Result{} })
	if rs != nil || sum.Trials != 0 || err != nil {
		t.Fatalf("empty fleet: %v %+v %v", rs, sum, err)
	}
}

func TestSummarizeByClass(t *testing.T) {
	sum := Summarize([]Result{
		{Accept: true, Class: "yes"},
		{Accept: false, Class: "yes"},
		{Accept: true, Class: "no"},
		{Err: "x", Class: "no"},
	})
	if sum.Trials != 4 || sum.Accepts != 2 || sum.Errors != 1 {
		t.Fatalf("bad summary %+v", sum)
	}
	if c := sum.ByClass["yes"]; c.Trials != 2 || c.Accepts != 1 {
		t.Fatalf("bad yes class %+v", c)
	}
	if c := sum.ByClass["no"]; c.Trials != 1 || c.Accepts != 1 {
		t.Fatalf("bad no class %+v (errored trials are not classified)", c)
	}
}

func TestWilson(t *testing.T) {
	// Hand-checked: 8/10 at z=1.96 → [0.490, 0.943].
	lo, hi := Wilson(8, 10, 1.96)
	if math.Abs(lo-0.4902) > 0.01 || math.Abs(hi-0.9433) > 0.01 {
		t.Fatalf("Wilson(8,10) = [%f, %f]", lo, hi)
	}
	// One-sided extremes stay inside [0,1] and are non-degenerate.
	lo, hi = Wilson(0, 60, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.1 {
		t.Fatalf("Wilson(0,60) = [%f, %f]", lo, hi)
	}
	lo, hi = Wilson(60, 60, 1.96)
	if hi < 0.999 || hi > 1 || lo < 0.9 {
		t.Fatalf("Wilson(60,60) = [%f, %f]", lo, hi)
	}
	// The point estimate always lies inside the interval.
	for n := 1; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			lo, hi := Wilson(k, n, 1.96)
			p := float64(k) / float64(n)
			if p < lo-1e-12 || p > hi+1e-12 || lo < 0 || hi > 1 {
				t.Fatalf("Wilson(%d,%d) = [%f, %f] excludes p̂=%f", k, n, lo, hi, p)
			}
		}
	}
	if lo, hi := Wilson(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0,0) = [%f, %f], want vacuous [0,1]", lo, hi)
	}
}

func TestEncoders(t *testing.T) {
	rows := []Result{
		{Trial: 0, Accept: true, Class: "yes", Value: 0.25},
		{Trial: 1, Accept: false, Err: "bad"},
	}
	for _, format := range []string{"text", "json", "csv"} {
		var b strings.Builder
		enc, err := NewEncoder(format, &b)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := enc.Row(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		wantLines := 2
		if format == "csv" {
			wantLines = 3 // header
		}
		if got := strings.Count(out, "\n"); got != wantLines {
			t.Fatalf("%s: %d lines, want %d:\n%s", format, got, wantLines, out)
		}
		for _, frag := range []string{"yes", "bad"} {
			if !strings.Contains(out, frag) {
				t.Fatalf("%s output misses %q:\n%s", format, frag, out)
			}
		}
	}
	if _, err := NewEncoder("xml", nil); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestFormatSummary(t *testing.T) {
	s := Summarize([]Result{{Accept: true}, {}, {Err: "x"}})
	out := FormatSummary(s)
	for _, frag := range []string{"1/3", "CI", "1 errors"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("summary %q misses %q", out, frag)
		}
	}
}

// An engine running a contiguous sub-range via Offset must produce
// exactly the corresponding slice of the full fleet — trial indices,
// seeds and all. This is the primitive the sharded fleet layer
// (internal/shard) is built on.
func TestEngineOffsetMatchesFullFleet(t *testing.T) {
	fn := func(i int, rng *rand.Rand) Result {
		return Result{Accept: rng.Intn(2) == 0, Value: rng.Float64()}
	}
	full, _, err := Engine{Trials: 20, Parallel: 1, Seed: 13}.Run(nil, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 20}, {0, 7}, {7, 15}, {15, 20}} {
		lo, hi := r[0], r[1]
		for _, parallel := range []int{1, 4} {
			var streamed []Result
			part, _, err := Engine{
				Trials:   hi - lo,
				Offset:   lo,
				Parallel: parallel,
				Seed:     13,
				OnResult: func(res Result) { streamed = append(streamed, res) },
			}.Run(nil, fn)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(part, full[lo:hi]) {
				t.Fatalf("[%d,%d) parallel=%d: range results differ from full fleet", lo, hi, parallel)
			}
			if !reflect.DeepEqual(streamed, part) {
				t.Fatalf("[%d,%d) parallel=%d: streamed rows differ", lo, hi, parallel)
			}
		}
	}
}
