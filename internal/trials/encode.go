package trials

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// An Encoder streams trial Result rows to an output. Rows arrive in
// trial order (wire an encoder to Engine.OnResult); Close flushes any
// buffered output. Encoders are not safe for concurrent use — the
// engine's in-order delivery already serializes calls.
type Encoder interface {
	Row(Result) error
	Close() error
}

// NewEncoder returns the encoder for format: "text", "json" (one JSON
// object per line) or "csv" (header + one record per row).
func NewEncoder(format string, w io.Writer) (Encoder, error) {
	switch format {
	case "text":
		return &textEncoder{w: w}, nil
	case "json":
		return &jsonEncoder{enc: json.NewEncoder(w)}, nil
	case "csv":
		return &csvEncoder{w: csv.NewWriter(w)}, nil
	default:
		return nil, fmt.Errorf("trials: unknown format %q (want text, json or csv)", format)
	}
}

type textEncoder struct {
	w   io.Writer
	err error
}

func (t *textEncoder) Row(r Result) error {
	if t.err != nil {
		return t.err
	}
	_, t.err = fmt.Fprintf(t.w, "trial %6d  accept=%-5v class=%-6s value=%-12s err=%s\n",
		r.Trial, r.Accept, orDash(r.Class), floatField(r.Value), orDash(r.Err))
	return t.err
}

func (t *textEncoder) Close() error { return t.err }

type jsonEncoder struct{ enc *json.Encoder }

func (j *jsonEncoder) Row(r Result) error { return j.enc.Encode(r) }
func (j *jsonEncoder) Close() error       { return nil }

type csvEncoder struct {
	w      *csv.Writer
	header bool
}

func (c *csvEncoder) Row(r Result) error {
	if !c.header {
		c.header = true
		if err := c.w.Write([]string{"trial", "accept", "class", "value", "err"}); err != nil {
			return err
		}
	}
	return c.w.Write([]string{
		strconv.Itoa(r.Trial),
		strconv.FormatBool(r.Accept),
		r.Class,
		floatField(r.Value),
		r.Err,
	})
}

func (c *csvEncoder) Close() error {
	c.w.Flush()
	return c.w.Error()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func floatField(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FormatSummary renders a fleet summary with the 95% Wilson interval
// on the acceptance rate — the shared footer of text reports.
func FormatSummary(s Summary) string {
	lo, hi := s.AcceptCI(1.96)
	out := fmt.Sprintf("fleet: %d/%d accepts (rate %.4f, 95%% CI [%.4f, %.4f])",
		s.Accepts, s.Trials, s.AcceptRate(), lo, hi)
	if s.Errors > 0 {
		out += fmt.Sprintf(", %d errors", s.Errors)
	}
	// The recovery census appears only when the fleet actually had to
	// recover, so fault-free output never moves.
	if s.Retries > 0 || s.Fallbacks > 0 || s.Recovered > 0 {
		out += fmt.Sprintf(" — recovery: %d panics recovered, %d retries, %d fallbacks",
			s.Recovered, s.Retries, s.Fallbacks)
	}
	return out
}
