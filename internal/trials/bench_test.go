package trials_test

import (
	"math/rand"
	"runtime"
	"testing"

	"extmem/internal/algorithms"
	"extmem/internal/trials"
)

// The benchmark workload is the E2 fingerprint error-rate estimation
// (Theorem 8a): 2×32 trials per estimate, each generating an m=64,
// n=12 instance and running the two-scan decider. Sequential vs
// parallel measures the engine's wall-clock win at equal work — the
// results are identical by construction (the determinism tests
// enforce it).
func benchFingerprintFleet(b *testing.B, parallel int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est, err := algorithms.EstimateFingerprintErrors(nil, 64, 12, 32, trials.Pool(parallel), 1)
		if err != nil {
			b.Fatal(err)
		}
		if est.YesErrors != 0 {
			b.Fatal("completeness violated in benchmark workload")
		}
	}
}

func BenchmarkTrialsSequential(b *testing.B) { benchFingerprintFleet(b, 1) }

func BenchmarkTrialsParallel(b *testing.B) { benchFingerprintFleet(b, runtime.GOMAXPROCS(0)) }

// Engine overhead floor: a fleet of no-op trials, to keep the
// scheduling cost visible separately from any workload.
func BenchmarkTrialsEngineOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sum, err := trials.Engine{Trials: 1024, Parallel: runtime.GOMAXPROCS(0), Seed: 1}.Run(nil,
			func(int, *rand.Rand) trials.Result { return trials.Result{Accept: true} })
		if err != nil || sum.Accepts != 1024 {
			b.Fatal(err, sum)
		}
	}
}
