package trials

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A panicking trial surfaces as a typed *TrialPanicError carrying the
// trial index and a stack, never as a crashed test binary — on both
// the sequential and the parallel path.
func TestEngineRecoversPanic(t *testing.T) {
	boom := func(i int, _ *rand.Rand) Result {
		if i == 3 {
			panic("boom at three")
		}
		return Result{Trial: i}
	}
	for _, parallel := range []int{1, 4} {
		rs, sum, err := Engine{Trials: 8, Parallel: parallel, Seed: 1}.Run(nil, boom)
		if rs != nil || sum.Trials != 0 || sum.Recovered != 0 {
			t.Fatalf("parallel=%d: hard failure must void results, got %v / %+v", parallel, rs, sum)
		}
		var pe *TrialPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallel=%d: err = %v, want *TrialPanicError", parallel, err)
		}
		if pe.Trial != 3 || pe.Value != "boom at three" {
			t.Fatalf("parallel=%d: recovered %+v, want trial 3 / boom", parallel, pe)
		}
		if !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("parallel=%d: no stack captured", parallel)
		}
	}
}

// A panic value that is itself an error stays reachable through
// errors.Unwrap, so fault injectors can type-match what they threw.
func TestTrialPanicErrorUnwrap(t *testing.T) {
	cause := errors.New("the cause")
	_, _, err := Engine{Trials: 2, Parallel: 1}.Run(nil, func(i int, _ *rand.Rand) Result {
		panic(cause)
	})
	if !errors.Is(err, cause) {
		t.Fatalf("panic cause not reachable via Unwrap: %v", err)
	}
}

// A cancelled context is a hard failure: no results, the context's
// error, on both paths — and cancellation mid-run stops the fleet
// long before the trial budget.
func TestEngineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []int{1, 4} {
		rs, _, err := Engine{Trials: 100, Parallel: parallel}.Run(ctx, func(i int, _ *rand.Rand) Result {
			return Result{Trial: i}
		})
		if rs != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%d: got (%v, %v), want canceled and nil rows", parallel, rs, err)
		}
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	executed := 0
	_, _, err := Engine{Trials: 1 << 20, Parallel: 1}.Run(ctx2, func(i int, _ *rand.Rand) Result {
		executed++
		if i == 10 {
			cancel2()
		}
		return Result{Trial: i}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v", err)
	}
	if executed > 100 {
		t.Fatalf("cancellation ignored: %d trials executed", executed)
	}
}

// A panic in one worker stops its siblings: the fleet abandons the
// remaining trial budget instead of grinding through it.
func TestEnginePanicStopsSiblings(t *testing.T) {
	var claimed atomic.Int64
	_, _, err := Engine{Trials: 1 << 20, Parallel: 4}.Run(nil, func(i int, _ *rand.Rand) Result {
		claimed.Add(1)
		if i == 0 {
			panic("first trial dies")
		}
		return Result{Trial: i}
	})
	var pe *TrialPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *TrialPanicError", err)
	}
	if n := claimed.Load(); n > 1<<16 {
		t.Fatalf("siblings kept running: %d trials claimed after a panic", n)
	}
}

// Hard failures leave no goroutines behind: the worker pool drains
// before Run returns, every time.
func TestEngineNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for k := 0; k < 20; k++ {
		Engine{Trials: 64, Parallel: 8, Seed: int64(k)}.Run(nil, func(i int, _ *rand.Rand) Result {
			if i%7 == 0 {
				panic("recurring panic")
			}
			return Result{Trial: i}
		})
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines asserts the goroutine count settles back to (at
// most) the baseline plus slack for runtime helpers.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
