// Package trials is the Monte-Carlo trial engine of the reproduction:
// it runs fleets of independent randomized trials — the bounded-error
// computations of Theorem 8(a), the Las Vegas repetitions of
// Corollary 10, the adversary probes of Theorem 6's mechanism, and
// the experiment sweeps built on them — across a worker pool of
// goroutines while keeping every run bit-for-bit reproducible.
//
// # The determinism invariant
//
// Reproducibility across worker counts rests on one invariant: the
// randomness of trial i is a pure function of (root seed, i), derived
// with a splitmix64 mixing step (Seed), never of which goroutine ran
// the trial or in which order trials finished. The per-trial source
// itself (RNG) is a splitmix64 rand.Source64 — O(1) to construct and
// seed, unlike the default Go source's 607-word warm-up, which
// matters when every trial of a large fleet gets a private stream.
// Results are reported back in trial order regardless of completion
// order, so a fleet run at Parallel=1 and at Parallel=NumCPU produces
// identical Result sequences, identical streaming callbacks and
// identical summaries.
//
// Because trial identity is the global index, the invariant extends
// to distribution: Engine.Offset runs a contiguous sub-range
// [Offset, Offset+Trials) of a larger fleet and produces exactly the
// corresponding result slice. The sharded execution layer
// (internal/shard.Fleet) builds on this — one engine per shard over
// disjoint index ranges, re-interleaved in order — without this
// package knowing anything about shards.
//
// # Execution shapes
//
// Fleet entry points elsewhere in the repo (fingerprint error
// estimation, Las Vegas repetition, collision probing) accept a
// Launcher: a factory for the Runner that will execute a fleet of n
// trials. Pool returns the single-machine launcher; internal/shard
// provides the sharded one. Since results are index-derived, the
// choice of launcher can never change an output byte — only where and
// how concurrently the work happens.
//
// A Summary aggregates acceptance counts into error-rate estimates;
// Wilson computes the Wilson score confidence interval that the
// experiment tables report next to raw counts (well-behaved at 0 and
// n successes — exactly the regime of the one-sided-error algorithms
// of Theorem 8(a)). Encoder streams Result rows as text, JSON or CSV
// for cmd/stbench and cmd/strun.
package trials
