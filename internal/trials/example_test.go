package trials_test

import (
	"fmt"
	"math/rand"

	"extmem/internal/trials"
)

// ExampleEngine runs a small Monte-Carlo fleet on a worker pool. The
// per-trial randomness is a pure function of (Seed, trial index), so
// the output is identical at Parallel=1 and Parallel=8 — which is why
// this example can assert exact output while running 8 goroutines.
func ExampleEngine() {
	eng := trials.Engine{Trials: 4, Parallel: 8, Seed: 7}
	results, sum, err := eng.Run(nil, func(i int, rng *rand.Rand) trials.Result {
		v := rng.Intn(100)
		return trials.Result{Accept: v < 50, Value: float64(v)}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range results {
		fmt.Printf("trial %d: accept=%v value=%.0f\n", r.Trial, r.Accept, r.Value)
	}
	fmt.Printf("accepts: %d/%d\n", sum.Accepts, sum.Trials)
	// Output:
	// trial 0: accept=true value=19
	// trial 1: accept=false value=81
	// trial 2: accept=true value=13
	// trial 3: accept=true value=49
	// accepts: 3/4
}
