package trials

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// golden is the splitmix64 state increment (2^64 / φ, odd).
const golden = 0x9E3779B97F4A7C15

// mix is the splitmix64 output permutation.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seed derives the RNG seed of trial i from the fleet's root seed with
// a splitmix64 mixing step. The derivation is stateless: trial seeds
// can be computed in any order by any worker, which is what makes the
// fleet schedule-independent. It is also used to derive independent
// sub-fleet roots from an experiment seed (distinct streams for the
// yes-fleet and the no-fleet, say).
func Seed(root int64, trial int) int64 {
	return int64(mix(uint64(root) + golden*(uint64(trial)+1)))
}

// splitmix is a rand.Source64 running the splitmix64 generator.
// Unlike the default Go source it costs O(1) to construct and seed
// (no 607-word warm-up), which matters when every trial of a large
// fleet gets a private source.
type splitmix struct{ state uint64 }

func (s *splitmix) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

// RNG returns the deterministic random source of trial i under root:
// a splitmix64 stream whose start state is Seed(root, i).
func RNG(root int64, trial int) *rand.Rand {
	return rand.New(&splitmix{state: uint64(Seed(root, trial))})
}

// Result is the outcome of one trial: a verdict bit plus optional
// classification label, metric value and error text. The zero value
// is a clean rejecting trial.
type Result struct {
	Trial  int     `json:"trial"`
	Accept bool    `json:"accept"`
	Class  string  `json:"class,omitempty"` // optional label, e.g. "yes"/"no"
	Value  float64 `json:"value,omitempty"` // optional per-trial metric
	Err    string  `json:"err,omitempty"`   // non-empty if the trial failed
}

// Func is one Monte-Carlo trial. It must draw all randomness from rng
// (which is private to the trial) and must not touch shared mutable
// state; the engine may call it from any goroutine.
type Func func(trial int, rng *rand.Rand) Result

// Engine runs a fleet of Trials independent trials across Parallel
// workers, with per-trial randomness derived from Seed.
type Engine struct {
	Trials   int   // fleet size
	Parallel int   // worker goroutines; <= 0 means runtime.GOMAXPROCS(0)
	Seed     int64 // root seed; trial i uses Seed(Seed, i)

	// Offset shifts the engine's trial indices: the fleet runs the
	// global trials Offset, …, Offset+Trials−1, and both the seed
	// derivation and Result.Trial use the global index. Because a
	// trial's randomness is a pure function of (Seed, global index), an
	// engine running [Offset, Offset+Trials) produces exactly the slice
	// the full fleet would — this is how a sharded fleet
	// (internal/shard) gives each shard a disjoint contiguous range of
	// one larger fleet. 0 is the whole-fleet default.
	Offset int

	// OnResult, if non-nil, streams results strictly in trial order
	// (Offset, Offset+1, …) as the completed prefix grows — independent
	// of the order in which workers finish. It is invoked while the
	// engine holds an internal lock, so it must not call back into the
	// engine.
	OnResult func(Result)
}

// Runner is anything that can run a trial fleet: the Engine itself, or
// a sharded composition of engines (internal/shard.Fleet). Results
// come back in trial order with their Summary and the first trial
// error in trial order, exactly as Engine.Run documents. The context
// bounds the whole fleet: cancellation or a deadline stops workers
// promptly and Run returns the context's error with nil results.
type Runner interface {
	Run(ctx context.Context, fn Func) ([]Result, Summary, error)
}

// TrialPanicError is a panic recovered from a trial function: the
// worker converts the panic into this typed error instead of killing
// the process, records the trial index and the goroutine stack at the
// panic site, and the engine cancels its sibling workers. Because
// trial randomness is a pure function of (seed, index), a fleet that
// sees this error can re-execute the failed range with provably
// identical results — internal/shard.Fleet's retry path does exactly
// that.
type TrialPanicError struct {
	Trial int    // global index of the panicking trial
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack
}

func (e *TrialPanicError) Error() string {
	return fmt.Sprintf("trials: trial %d panicked: %v", e.Trial, e.Value)
}

// Unwrap exposes a panic value that was itself an error (errors.As
// reaches an injected faults.Injected through here).
func (e *TrialPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ShardFault marks a recovered trial panic as a failed-shard-attempt
// error: internal/shard.Fleet retries any attempt whose error carries
// this marker (see shard.Fault). A dead worker process on the
// transport layer wears the same marker, which is how process death
// maps onto the same retry → fallback path as an in-process panic.
func (e *TrialPanicError) ShardFault() {}

// protect runs one trial, converting a panic into a *TrialPanicError.
func protect(fn Func, g int, rng *rand.Rand) (r Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &TrialPanicError{Trial: g, Value: p, Stack: debug.Stack()}
		}
	}()
	return fn(g, rng), nil
}

// Launcher constructs the Runner for a fleet of n trials rooted at
// seed; onResult, if non-nil, must receive the rows strictly in trial
// order. Fleet entry points (error estimation, Las Vegas repetition,
// adversary probing) take a Launcher so the caller chooses the
// execution shape — a single worker pool (Pool) or a sharded fleet
// (internal/shard.Launch) — without the results changing by a byte.
type Launcher func(n int, seed int64, onResult func(Result)) Runner

// Pool returns the single-machine Launcher: each fleet is one Engine
// with the given worker count (<= 0 means runtime.GOMAXPROCS(0)).
func Pool(parallel int) Launcher {
	return func(n int, seed int64, onResult func(Result)) Runner {
		return Engine{Trials: n, Parallel: parallel, Seed: seed, OnResult: onResult}
	}
}

var _ Runner = Engine{}

// Run executes the fleet and returns the per-trial results in trial
// order together with their Summary. The returned error is the first
// trial error in trial order (all trials still run to completion);
// engine misuse aside, a nil error means every trial was clean.
//
// Hard failures — a recovered trial panic (*TrialPanicError) or a
// cancelled context — are different: the first one stops the sibling
// workers from claiming further trials, every worker drains (no
// goroutine outlives Run), and Run returns nil results with that
// error. OnResult may already have streamed a prefix of the range by
// then; because rows are pure functions of (Seed, index), a caller
// that re-runs the range re-emits exactly the same prefix, which is
// how the sharded fleet's retry keeps the merged stream intact.
func (e Engine) Run(ctx context.Context, fn Func) ([]Result, Summary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := e.Trials
	if n <= 0 {
		return nil, Summary{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, Summary{}, err
	}
	workers := e.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]Result, n)
	runOne := func(i int) error {
		g := e.Offset + i
		r, err := protect(fn, g, RNG(e.Seed, g))
		if err != nil {
			return err
		}
		r.Trial = g
		results[i] = r
		return nil
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, Summary{}, err
			}
			if err := runOne(i); err != nil {
				return nil, Summary{}, err
			}
			if e.OnResult != nil {
				e.OnResult(results[i])
			}
		}
	} else {
		var (
			next    int64
			stop    atomic.Bool
			wg      sync.WaitGroup
			mu      sync.Mutex
			hardErr error
			done    = make([]bool, n)
			emitted int
		)
		fail := func(err error) {
			mu.Lock()
			if hardErr == nil {
				hardErr = err
			}
			mu.Unlock()
			stop.Store(true)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if stop.Load() {
						return
					}
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= n {
						return
					}
					if err := runOne(i); err != nil {
						fail(err)
						return
					}
					mu.Lock()
					done[i] = true
					for emitted < n && done[emitted] {
						if e.OnResult != nil {
							e.OnResult(results[emitted])
						}
						emitted++
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if hardErr != nil {
			return nil, Summary{}, hardErr
		}
	}
	sum := Summarize(results)
	return results, sum, FirstErr(results)
}

// FirstErr returns the first trial error in trial order (wrapped with
// its trial index), or nil if every result is clean. Sharded fleets
// use it to reconstruct the Engine.Run error contract after merging
// per-shard result ranges.
func FirstErr(rs []Result) error {
	for _, r := range rs {
		if r.Err != "" {
			return fmt.Errorf("trials: trial %d: %s", r.Trial, r.Err)
		}
	}
	return nil
}

// Count is the accept tally of one class of trials.
type Count struct {
	Trials  int `json:"trials"`
	Accepts int `json:"accepts"`
}

// Summary aggregates a fleet's results. The recovery census fields
// are filled by fault-tolerant runners (internal/shard.Fleet), not by
// Summarize: they record execution provenance — how hard the fleet
// had to work to produce the rows — and are all zero on a fault-free
// run, so encodings stay byte-identical when nothing went wrong.
type Summary struct {
	Trials  int              `json:"trials"`
	Accepts int              `json:"accepts"`
	Errors  int              `json:"errors,omitempty"`
	ByClass map[string]Count `json:"by_class,omitempty"` // only when classes were labeled

	Retries   int `json:"retries,omitempty"`   // shard ranges re-executed after a hard failure
	Fallbacks int `json:"fallbacks,omitempty"` // shards that exhausted retries and ran degraded
	Recovered int `json:"recovered,omitempty"` // worker panics recovered across all attempts
}

// Summarize tallies a result slice.
func Summarize(rs []Result) Summary {
	s := Summary{Trials: len(rs)}
	for _, r := range rs {
		if r.Err != "" {
			s.Errors++
			continue
		}
		if r.Accept {
			s.Accepts++
		}
		if r.Class != "" {
			if s.ByClass == nil {
				s.ByClass = make(map[string]Count)
			}
			c := s.ByClass[r.Class]
			c.Trials++
			if r.Accept {
				c.Accepts++
			}
			s.ByClass[r.Class] = c
		}
	}
	return s
}

// AcceptRate is the empirical acceptance probability of the fleet.
func (s Summary) AcceptRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Accepts) / float64(s.Trials)
}

// AcceptCI returns the Wilson score interval for the acceptance
// probability at confidence parameter z (1.96 for 95%).
func (s Summary) AcceptCI(z float64) (lo, hi float64) {
	return Wilson(s.Accepts, s.Trials, z)
}

// Wilson returns the Wilson score confidence interval for a Bernoulli
// proportion after observing successes out of trials, at normal
// quantile z (z = 1.96 gives the standard 95% interval). Unlike the
// Wald interval it behaves sensibly at 0 and trials successes, which
// is exactly the regime of one-sided-error algorithms. trials == 0
// yields the vacuous interval [0, 1].
func Wilson(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	den := 1 + z2/n
	center := (p + z2/(2*n)) / den
	half := (z / den) * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
