package trials

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// A Workload is the wire form of a trial function: a registered
// builder name plus an opaque, self-contained spec (the few bytes of
// data — an instance shape, an encoded input — the builder needs to
// reconstruct the exact Func). Closures cannot cross a process
// boundary; a Workload can, which is what lets a shard worker process
// (internal/transport) re-create the coordinator's trial function and
// produce byte-identical rows. Trial randomness never travels: it is
// re-derived worker-side from (Seed, global index) exactly as
// in-process, so a shipped fleet and a local fleet are the same fleet.
type Workload struct {
	Name string // registered builder name
	Spec []byte // builder input, typically a small gob blob
}

// Builder reconstructs a trial function from a workload spec. It must
// be deterministic: the same spec must always yield a Func that maps
// (trial index, rng) to the same Result, or process-boundary execution
// would break the byte-identity contract.
type Builder func(spec []byte) (Func, error)

var (
	workloadMu sync.RWMutex
	workloads  = map[string]Builder{}
)

// RegisterWorkload installs the builder for a workload name, typically
// from an init function of the package that owns the trial function
// (internal/algorithms). Registering the same name twice panics: both
// coordinator and worker run the same binary, so a collision is a
// programming error, never a runtime condition.
func RegisterWorkload(name string, build Builder) {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if _, dup := workloads[name]; dup {
		panic(fmt.Sprintf("trials: workload %q registered twice", name))
	}
	workloads[name] = build
}

// Build reconstructs the workload's trial function through its
// registered builder.
func (w Workload) Build() (Func, error) {
	workloadMu.RLock()
	build, ok := workloads[w.Name]
	workloadMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("trials: no workload builder registered for %q", w.Name)
	}
	return build(w.Spec)
}

// RegistryFingerprint is a deterministic digest of the registered
// workload names — the build-identity half of the TCP transport's
// handshake (internal/transport). Two binaries that register the same
// workload set agree on it; a coordinator and a worker that disagree
// would fail jobs with "no workload builder registered" (or worse,
// run a different builder under the same name), so the transport
// rejects the connection up front instead. Names only: builders are
// code, and within one registered set the binary is accountable for
// them the same way both halves of one process are.
func RegistryFingerprint() uint64 {
	workloadMu.RLock()
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	workloadMu.RUnlock()
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

type workloadKey struct{}

// WithWorkload annotates the context with the fleet's wire form.
// Fleet entry points whose trial functions have a registered builder
// annotate the context they pass to Runner.Run; execution shapes that
// can use the annotation (the process transport's shard attempt) ship
// the workload instead of calling the in-process Func, and shapes that
// cannot simply ignore it — the annotation never changes a row.
func WithWorkload(ctx context.Context, w Workload) context.Context {
	return context.WithValue(ctx, workloadKey{}, w)
}

// WithoutWorkload strips any workload annotation, pinning downstream
// execution to the in-process Func. The chaos wrapper of
// internal/faults uses it: injected trial faults live inside the
// wrapped function and its coordinator-side attempt counters, so a
// chaos-wrapped fleet must never ship its trials to a worker process.
func WithoutWorkload(ctx context.Context) context.Context {
	return context.WithValue(ctx, workloadKey{}, Workload{})
}

// WorkloadFrom returns the context's workload annotation, if any.
func WorkloadFrom(ctx context.Context) (Workload, bool) {
	w, ok := ctx.Value(workloadKey{}).(Workload)
	if !ok || w.Name == "" {
		return Workload{}, false
	}
	return w, true
}
