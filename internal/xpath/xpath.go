// Package xpath evaluates the XPath fragment used by Theorem 13:
// location paths over the axes child, descendant, ancestor and self,
// with predicates built from node-set comparisons (the W3C
// "existential" semantics), not(...), and conjunction. The package
// provides the exact query of Figure 1 and the two-run booster
// machine T̃ from the theorem's proof.
package xpath

import (
	"strings"

	"extmem/internal/xmlstream"
)

// Axis selects the navigation direction of a step.
type Axis int

// Supported axes.
const (
	Child Axis = iota
	Descendant
	Ancestor
	Self
)

func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case Descendant:
		return "descendant"
	case Ancestor:
		return "ancestor"
	default:
		return "self"
	}
}

// Step is one location step axis::name[predicate?].
type Step struct {
	Axis Axis
	Name string // element name test; "*" matches all
	Pred Pred   // optional
}

// Path is a sequence of steps, evaluated relative to a context node.
type Path []Step

// Pred is a predicate over a context node.
type Pred interface {
	Holds(ctx *xmlstream.Node) bool
	String() string
}

// Compare is the existential node-set equality L = R: it holds iff
// some node selected by L and some node selected by R have equal
// string values.
type Compare struct{ L, R Path }

// Holds implements Pred.
func (c Compare) Holds(ctx *xmlstream.Node) bool {
	left := c.L.Select(ctx)
	right := c.R.Select(ctx)
	seen := map[string]bool{}
	for _, n := range left {
		seen[n.StringValue()] = true
	}
	for _, n := range right {
		if seen[n.StringValue()] {
			return true
		}
	}
	return false
}

func (c Compare) String() string { return c.L.String() + " = " + c.R.String() }

// NotPred negates a predicate (the XPath not() function).
type NotPred struct{ P Pred }

// Holds implements Pred.
func (n NotPred) Holds(ctx *xmlstream.Node) bool { return !n.P.Holds(ctx) }

func (n NotPred) String() string { return "not(" + n.P.String() + ")" }

// AndPred conjoins predicates.
type AndPred struct{ Ps []Pred }

// Holds implements Pred.
func (a AndPred) Holds(ctx *xmlstream.Node) bool {
	for _, p := range a.Ps {
		if !p.Holds(ctx) {
			return false
		}
	}
	return true
}

func (a AndPred) String() string {
	parts := make([]string, len(a.Ps))
	for i, p := range a.Ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " and ")
}

// ExistsPred holds iff the path selects at least one node.
type ExistsPred struct{ P Path }

// Holds implements Pred.
func (e ExistsPred) Holds(ctx *xmlstream.Node) bool { return len(e.P.Select(ctx)) > 0 }

func (e ExistsPred) String() string { return e.P.String() }

// Select evaluates the path relative to ctx, returning the selected
// nodes in document-order-ish traversal order (duplicates removed).
func (p Path) Select(ctx *xmlstream.Node) []*xmlstream.Node {
	current := []*xmlstream.Node{ctx}
	for _, step := range p {
		var next []*xmlstream.Node
		seen := map[*xmlstream.Node]bool{}
		for _, n := range current {
			for _, cand := range step.candidates(n) {
				if step.Pred != nil && !step.Pred.Holds(cand) {
					continue
				}
				if !seen[cand] {
					seen[cand] = true
					next = append(next, cand)
				}
			}
		}
		current = next
	}
	return current
}

func (s Step) candidates(n *xmlstream.Node) []*xmlstream.Node {
	switch s.Axis {
	case Child:
		return n.ChildElements(s.Name)
	case Descendant:
		return n.Descendants(s.Name)
	case Ancestor:
		return n.Ancestors(s.Name)
	default: // Self
		if !n.IsText() && (s.Name == "*" || n.Name == s.Name) {
			return []*xmlstream.Node{n}
		}
		return nil
	}
}

// String renders the path in XPath syntax.
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		str := s.Axis.String() + "::" + s.Name
		if s.Pred != nil {
			str += "[" + s.Pred.String() + "]"
		}
		parts[i] = str
	}
	return strings.Join(parts, "/")
}

// Figure1Query returns the query of Figure 1 of the paper:
//
//	descendant::set1 / child::item [ not( child::string =
//	    ancestor::instance / child::set2 / child::item / child::string ) ]
//
// Evaluated from the document root, it selects the item nodes below
// set1 whose string does NOT occur below set2 — the elements of
// X − Y.
func Figure1Query() Path {
	return Path{
		{Axis: Descendant, Name: "set1"},
		{Axis: Child, Name: "item", Pred: NotPred{P: Compare{
			L: Path{{Axis: Child, Name: "string"}},
			R: Path{
				{Axis: Ancestor, Name: "instance"},
				{Axis: Child, Name: "set2"},
				{Axis: Child, Name: "item"},
				{Axis: Child, Name: "string"},
			},
		}}},
	}
}

// Filter reports whether the query selects at least one node of the
// document — the filtering problem of Theorem 13.
func Filter(doc *xmlstream.Node, q Path) bool {
	return len(q.Select(doc)) > 0
}
