package xpath

import (
	"math/rand"
	"testing"

	"extmem/internal/problems"
	"extmem/internal/xmlstream"
)

func mustDoc(t *testing.T, in problems.Instance) *xmlstream.Node {
	t.Helper()
	doc, err := xmlstream.Parse(xmlstream.EncodeInstance(in))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// Figure 1: the query selects exactly the set1 items whose string is
// missing from set2 — X − Y.
func TestFigure1SelectsSetDifference(t *testing.T) {
	in := problems.Instance{
		V: []string{"00", "01", "10"},
		W: []string{"01", "11", "11"},
	}
	doc := mustDoc(t, in)
	sel := Figure1Query().Select(doc)
	got := map[string]bool{}
	for _, n := range sel {
		got[n.StringValue()] = true
	}
	want := map[string]bool{"00": true, "10": true} // X − Y
	if len(got) != len(want) {
		t.Fatalf("selected %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing %q in %v", k, got)
		}
	}
}

func TestFilterEmptyDifference(t *testing.T) {
	in := problems.Instance{V: []string{"0", "1"}, W: []string{"1", "0"}}
	if Filter(mustDoc(t, in), Figure1Query()) {
		t.Fatal("X ⊆ Y but the filter matched")
	}
}

// Filtering is one-directional: X ⊆ Y, not set equality.
func TestFilterIsSubsetCheckOnly(t *testing.T) {
	in := problems.Instance{V: []string{"0"}, W: []string{"0", "1"}}
	if Filter(mustDoc(t, in), Figure1Query()) {
		t.Fatal("X ⊆ Y but filter matched")
	}
	rev := problems.Instance{V: in.W, W: in.V}
	if !Filter(mustDoc(t, rev), Figure1Query()) {
		t.Fatal("Y ⊄ X but filter did not match")
	}
}

func TestFilterAgainstReferenceSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(6)
		n := 1 + rng.Intn(3)
		in := problems.Instance{V: make([]string, m), W: make([]string, m)}
		for i := 0; i < m; i++ {
			in.V[i] = randomBits(n, rng)
			in.W[i] = randomBits(n, rng)
		}
		// Reference: X − Y nonempty?
		y := map[string]bool{}
		for _, w := range in.W {
			y[w] = true
		}
		want := false
		for _, v := range in.V {
			if !y[v] {
				want = true
			}
		}
		if got := Filter(mustDoc(t, in), Figure1Query()); got != want {
			t.Fatalf("filter = %v, want %v on %+v", got, want, in)
		}
	}
}

func randomBits(n int, rng *rand.Rand) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0' + byte(rng.Intn(2))
	}
	return string(b)
}

func TestPathString(t *testing.T) {
	q := Figure1Query()
	s := q.String()
	want := "descendant::set1/child::item[not(child::string = ancestor::instance/child::set2/child::item/child::string)]"
	if s != want {
		t.Fatalf("String = %q, want %q", s, want)
	}
}

func TestAxes(t *testing.T) {
	doc, err := xmlstream.Parse([]byte("<a><b><c>x</c></b><c>y</c></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if got := (Path{{Axis: Descendant, Name: "c"}}).Select(doc); len(got) != 2 {
		t.Fatalf("descendant::c = %d nodes", len(got))
	}
	if got := (Path{{Axis: Child, Name: "a"}, {Axis: Child, Name: "c"}}).Select(doc); len(got) != 1 {
		t.Fatalf("child::a/child::c = %d nodes", len(got))
	}
	c := doc.Descendants("b")[0].ChildElements("c")[0]
	if got := (Path{{Axis: Ancestor, Name: "a"}}).Select(c); len(got) != 1 {
		t.Fatalf("ancestor::a = %d nodes", len(got))
	}
	if got := (Path{{Axis: Self, Name: "c"}}).Select(c); len(got) != 1 {
		t.Fatalf("self::c = %d nodes", len(got))
	}
	if got := (Path{{Axis: Self, Name: "z"}}).Select(c); len(got) != 0 {
		t.Fatalf("self::z = %d nodes", len(got))
	}
}

func TestPredicates(t *testing.T) {
	doc, err := xmlstream.Parse([]byte("<a><b><c>x</c></b><b><c>y</c></b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	// child::a/child::b[child::c = child::c] — trivially true.
	p := Path{
		{Axis: Child, Name: "a"},
		{Axis: Child, Name: "b", Pred: Compare{
			L: Path{{Axis: Child, Name: "c"}},
			R: Path{{Axis: Child, Name: "c"}},
		}},
	}
	if got := p.Select(doc); len(got) != 2 {
		t.Fatalf("selected %d, want 2", len(got))
	}
	// ExistsPred and AndPred.
	p2 := Path{
		{Axis: Child, Name: "a"},
		{Axis: Child, Name: "b", Pred: AndPred{Ps: []Pred{
			ExistsPred{P: Path{{Axis: Child, Name: "c"}}},
			NotPred{P: ExistsPred{P: Path{{Axis: Child, Name: "z"}}}},
		}}},
	}
	if got := p2.Select(doc); len(got) != 2 {
		t.Fatalf("selected %d, want 2", len(got))
	}
	if (AndPred{Ps: []Pred{ExistsPred{P: Path{{Axis: Child, Name: "z"}}}}}).String() == "" {
		t.Fatal("empty AndPred string")
	}
}

// The booster with the exact filter decides SET-EQUALITY exactly.
func TestBoosterExact(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 40; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(5, 6, rng)
		} else {
			in = problems.GenSetNo(5, 6, rng)
		}
		got := SetEqualityViaFilter(ExactFilter, in, rng)
		if got != problems.SetEquality(in) {
			t.Fatalf("booster = %v, want %v on %+v", got, problems.SetEquality(in), in)
		}
	}
}

// With a noisy filter (false accepts at rate ≤ 1/2 on the no-node
// side), the booster keeps one-sided error: no-instances NEVER
// accepted, yes-instances accepted with probability ≥ 1/2 empirically.
func TestBoosterNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	noisy := NoisyFilter(ExactFilter, 0.5)

	// No-instances: zero accepts.
	for trial := 0; trial < 50; trial++ {
		in := problems.GenSetNo(4, 6, rng)
		if SetEqualityViaFilter(noisy, in, rng) {
			t.Fatalf("boosted decider accepted a no-instance: %+v", in)
		}
	}
	// Yes-instances: acceptance rate ≥ 1/2 over many coins.
	yes := problems.GenSetYes(4, 6, rng)
	accepts := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if SetEqualityViaFilter(noisy, yes, rng) {
			accepts++
		}
	}
	if accepts < trials/2 {
		t.Fatalf("yes-instance accepted only %d/%d times, want >= 1/2", accepts, trials)
	}
}

func TestAxisString(t *testing.T) {
	if Child.String() != "child" || Descendant.String() != "descendant" ||
		Ancestor.String() != "ancestor" || Self.String() != "self" {
		t.Fatal("Axis.String mismatch")
	}
}
