package xpath

import (
	"math/rand"

	"extmem/internal/problems"
	"extmem/internal/xmlstream"
)

// This file implements the booster machine T̃ from the proof of
// Theorem 13: given any filtering procedure T with the co-RST error
// profile —
//
//	(1) if X ⊄ Y (the query selects a node), T accepts with
//	    probability 1;
//	(2) if X ⊆ Y (no node selected), T rejects with probability
//	    ≥ 1/2
//
// — the combinator runs T on (X, Y) and on (Y, X), accepts iff both
// runs reject, and repeats the whole procedure twice, yielding an
// RST-style decider for SET-EQUALITY: accept probability ≥ 1/2 on
// yes-instances and exactly 0 on no-instances. Since SET-EQUALITY has
// no such decider below Ω(log N) scans (Theorem 6), neither has the
// filtering problem.

// FilterProc is a (possibly randomized) filtering procedure: it
// reports whether the Figure 1 query selects at least one node of the
// document encoding the instance, drawing any coins from rng.
type FilterProc func(in problems.Instance, rng *rand.Rand) bool

// ExactFilter is the deterministic reference procedure backed by the
// package evaluator.
func ExactFilter(in problems.Instance, _ *rand.Rand) bool {
	doc, err := xmlstream.Parse(xmlstream.EncodeInstance(in))
	if err != nil {
		// Instances over {0,1} always encode to well-formed documents.
		panic(err)
	}
	return Filter(doc, Figure1Query())
}

// NoisyFilter wraps a filter with one-sided noise matching profile
// (2): when the exact answer is "no node selected", it flips to a
// false accept with probability p ≤ 1/2. Used by experiments to
// verify the booster's probability accounting.
func NoisyFilter(f FilterProc, p float64) FilterProc {
	return func(in problems.Instance, rng *rand.Rand) bool {
		if f(in, rng) {
			return true
		}
		return rng.Float64() < p
	}
}

// tildeT is one round of the proof's machine T̃: run the filter on
// (X, Y) and on (Y, X); accept iff both reject.
func tildeT(f FilterProc, in problems.Instance, rng *rand.Rand) bool {
	fwd := f(in, rng)
	bwd := f(problems.Instance{V: in.W, W: in.V}, rng)
	return !fwd && !bwd
}

// BoostRounds is the number of independent T̃ rounds. Each round
// accepts a yes-instance with probability ≥ 1/4, so k rounds accept
// with probability ≥ 1 − (3/4)^k. The paper's proof says "two
// independent runs" suffice for ≥ 1/2, but 1 − (3/4)² = 7/16 < 1/2 in
// the worst case; three rounds give 1 − (3/4)³ = 37/64 ≥ 1/2
// (recorded as a reproduction note here — the slack
// changes nothing downstream, boosting is free in the model).
const BoostRounds = 3

// SetEqualityViaFilter is the full boosted decider: BoostRounds
// independent rounds of T̃, accepting if any accepts. For any filter
// with profile (1)/(2):
//
//   - X = Y ⇒ each round accepts with probability ≥ 1/4, so the
//     boosted decider accepts with probability ≥ 1 − (3/4)^k ≥ 1/2;
//     with the exact filter it accepts always;
//   - X ≠ Y ⇒ some direction selects a node, that run accepts with
//     probability 1, so every round rejects: acceptance probability 0.
func SetEqualityViaFilter(f FilterProc, in problems.Instance, rng *rand.Rand) bool {
	for i := 0; i < BoostRounds; i++ {
		if tildeT(f, in, rng) {
			return true
		}
	}
	return false
}
