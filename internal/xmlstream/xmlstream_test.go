package xmlstream

import (
	"math/rand"
	"strings"
	"testing"

	"extmem/internal/problems"
)

func TestEncodeInstanceShape(t *testing.T) {
	in := problems.Instance{V: []string{"01"}, W: []string{"10"}}
	got := string(EncodeInstance(in))
	want := "<instance><set1><item><string>01</string></item></set1>" +
		"<set2><item><string>10</string></item></set2></instance>"
	if got != want {
		t.Fatalf("encoded = %q", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		in := problems.GenMultisetYes(1+rng.Intn(8), 1+rng.Intn(6), rng)
		doc, err := Parse(EncodeInstance(in))
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeInstance(doc)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(dec.V, ",") != strings.Join(in.V, ",") ||
			strings.Join(dec.W, ",") != strings.Join(in.W, ",") {
			t.Fatalf("round trip: %+v -> %+v", in, dec)
		}
	}
}

func TestParseWhitespaceAndText(t *testing.T) {
	doc, err := Parse([]byte("<a>\n  <b>hello</b>\n  <b>world</b>\n</a>"))
	if err != nil {
		t.Fatal(err)
	}
	a := doc.ChildElements("a")[0]
	bs := a.ChildElements("b")
	if len(bs) != 2 || bs[0].StringValue() != "hello" || bs[1].StringValue() != "world" {
		t.Fatalf("parsed: %+v", a)
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc, err := Parse([]byte("<r><true/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	r := doc.ChildElements("r")[0]
	if len(r.ChildElements("true")) != 1 {
		t.Fatal("self-closing element lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"<a><b></a>",     // mismatched close
		"<a>",            // unclosed
		"<a></a><b></b>", // two roots
		"</a>",           // close without open
		"<a",             // unterminated tag
		"<a><></a>",      // empty tag
	}
	for _, s := range bad {
		if _, err := Parse([]byte(s)); err == nil {
			t.Fatalf("Parse(%q) succeeded", s)
		}
	}
}

func TestStringValueConcatenates(t *testing.T) {
	doc, err := Parse([]byte("<a><b>x</b><c>y</c></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.ChildElements("a")[0].StringValue(); got != "xy" {
		t.Fatalf("StringValue = %q", got)
	}
}

func TestDescendantsOrder(t *testing.T) {
	doc, err := Parse([]byte("<a><b><c>1</c></b><c>2</c></a>"))
	if err != nil {
		t.Fatal(err)
	}
	cs := doc.Descendants("c")
	if len(cs) != 2 || cs[0].StringValue() != "1" || cs[1].StringValue() != "2" {
		t.Fatalf("Descendants = %v", cs)
	}
	all := doc.Descendants("*")
	if len(all) != 4 { // a, b, c, c
		t.Fatalf("Descendants(*) = %d nodes, want 4", len(all))
	}
}

func TestAncestors(t *testing.T) {
	doc, err := Parse([]byte("<a><b><c>1</c></b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	c := doc.Descendants("c")[0]
	if got := c.Ancestors("a"); len(got) != 1 {
		t.Fatalf("Ancestors(a) = %d", len(got))
	}
	if got := c.Ancestors("*"); len(got) != 3 { // b, a, #root
		t.Fatalf("Ancestors(*) = %d, want 3", len(got))
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := "<a><b>x</b><c><d></d></c></a>"
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := Render(doc); got != src {
		t.Fatalf("Render = %q, want %q", got, src)
	}
}

func TestDecodeInstanceErrors(t *testing.T) {
	for _, s := range []string{
		"<other></other>",
		"<instance><set1></set1></instance>",
		"<instance><set1><item></item></set1><set2></set2></instance>",
	} {
		doc, err := Parse([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeInstance(doc); err == nil {
			t.Fatalf("DecodeInstance(%q) succeeded", s)
		}
	}
}

func TestEmptyStringValues(t *testing.T) {
	// Values of length zero produce <string></string>.
	in := problems.Instance{V: []string{""}, W: []string{""}}
	doc, err := Parse(EncodeInstance(in))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeInstance(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.V) != 1 || dec.V[0] != "" {
		t.Fatalf("decoded: %+v", dec)
	}
}
