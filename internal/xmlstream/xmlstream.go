// Package xmlstream provides the XML document encoding of Section 4
// of the paper: a SET-EQUALITY instance x1#…xm#y1#…ym# becomes
//
//	<instance>
//	  <set1> <item><string>x1</string></item> … </set1>
//	  <set2> <item><string>y1</string></item> … </set2>
//	</instance>
//
// together with a minimal tokenizer and tree parser for the tag-only
// XML fragment the reductions need (no attributes, no entities).
package xmlstream

import (
	"errors"
	"fmt"
	"strings"

	"extmem/internal/problems"
)

// A Node is an element or text node of the document tree.
type Node struct {
	Name     string // element name; empty for text nodes
	Text     string // text content for text nodes
	Children []*Node
	Parent   *Node
}

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// StringValue returns the concatenated text content of the subtree
// (the XPath string-value).
func (n *Node) StringValue() string {
	if n.IsText() {
		return n.Text
	}
	var b strings.Builder
	for _, c := range n.Children {
		b.WriteString(c.StringValue())
	}
	return b.String()
}

// ChildElements returns the element children with the given name
// ("*" matches every element).
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if !c.IsText() && (name == "*" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// Descendants appends all element descendants (not self) with the
// given name, in document order.
func (n *Node) Descendants(name string) []*Node {
	var out []*Node
	var rec func(x *Node)
	rec = func(x *Node) {
		for _, c := range x.Children {
			if !c.IsText() {
				if name == "*" || c.Name == name {
					out = append(out, c)
				}
				rec(c)
			}
		}
	}
	rec(n)
	return out
}

// Ancestors returns the element ancestors with the given name, from
// the parent upward.
func (n *Node) Ancestors(name string) []*Node {
	var out []*Node
	for a := n.Parent; a != nil; a = a.Parent {
		if !a.IsText() && (name == "*" || a.Name == name) {
			out = append(out, a)
		}
	}
	return out
}

// EncodeInstance renders the Section 4 document for the instance.
func EncodeInstance(in problems.Instance) []byte {
	var b strings.Builder
	b.WriteString("<instance>")
	writeSet := func(tag string, values []string) {
		b.WriteString("<" + tag + ">")
		for _, v := range values {
			b.WriteString("<item><string>")
			b.WriteString(v)
			b.WriteString("</string></item>")
		}
		b.WriteString("</" + tag + ">")
	}
	writeSet("set1", in.V)
	writeSet("set2", in.W)
	b.WriteString("</instance>")
	return []byte(b.String())
}

// ErrParse is returned for ill-formed documents.
var ErrParse = errors.New("xmlstream: parse error")

// Parse builds the document tree of a tag-only XML document. The
// returned node is a synthetic root whose single element child is the
// document element.
func Parse(data []byte) (*Node, error) {
	root := &Node{Name: "#root"}
	cur := root
	i := 0
	for i < len(data) {
		if data[i] == '<' {
			j := i + 1
			for j < len(data) && data[j] != '>' {
				j++
			}
			if j >= len(data) {
				return nil, fmt.Errorf("%w: unterminated tag at %d", ErrParse, i)
			}
			tag := string(data[i+1 : j])
			switch {
			case strings.HasPrefix(tag, "/"):
				name := tag[1:]
				if cur == root || cur.Name != name {
					return nil, fmt.Errorf("%w: unexpected </%s>", ErrParse, name)
				}
				cur = cur.Parent
			case strings.HasSuffix(tag, "/"):
				name := strings.TrimSuffix(tag, "/")
				if name == "" {
					return nil, fmt.Errorf("%w: empty self-closing tag", ErrParse)
				}
				child := &Node{Name: name, Parent: cur}
				cur.Children = append(cur.Children, child)
			default:
				if tag == "" {
					return nil, fmt.Errorf("%w: empty tag", ErrParse)
				}
				child := &Node{Name: tag, Parent: cur}
				cur.Children = append(cur.Children, child)
				cur = child
			}
			i = j + 1
			continue
		}
		j := i
		for j < len(data) && data[j] != '<' {
			j++
		}
		text := strings.TrimSpace(string(data[i:j]))
		if text != "" {
			cur.Children = append(cur.Children, &Node{Text: text, Parent: cur})
		}
		i = j
	}
	if cur != root {
		return nil, fmt.Errorf("%w: unclosed element <%s>", ErrParse, cur.Name)
	}
	if len(root.ChildElements("*")) != 1 {
		return nil, fmt.Errorf("%w: document needs exactly one root element", ErrParse)
	}
	return root, nil
}

// DecodeInstance inverts EncodeInstance: it extracts the two halves
// from a parsed Section 4 document.
func DecodeInstance(root *Node) (problems.Instance, error) {
	doc := root.ChildElements("instance")
	if len(doc) != 1 {
		return problems.Instance{}, fmt.Errorf("%w: missing <instance>", ErrParse)
	}
	var in problems.Instance
	for tag, dst := range map[string]*[]string{"set1": &in.V, "set2": &in.W} {
		sets := doc[0].ChildElements(tag)
		if len(sets) != 1 {
			return problems.Instance{}, fmt.Errorf("%w: missing <%s>", ErrParse, tag)
		}
		for _, item := range sets[0].ChildElements("item") {
			strs := item.ChildElements("string")
			if len(strs) != 1 {
				return problems.Instance{}, fmt.Errorf("%w: item without string", ErrParse)
			}
			*dst = append(*dst, strs[0].StringValue())
		}
	}
	return in, nil
}

// Render serializes the tree back to markup (element children only at
// the synthetic root).
func Render(n *Node) string {
	if n.Name == "#root" {
		var b strings.Builder
		for _, c := range n.Children {
			b.WriteString(Render(c))
		}
		return b.String()
	}
	if n.IsText() {
		return n.Text
	}
	var b strings.Builder
	b.WriteString("<" + n.Name + ">")
	for _, c := range n.Children {
		b.WriteString(Render(c))
	}
	b.WriteString("</" + n.Name + ">")
	return b.String()
}
