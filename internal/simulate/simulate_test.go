package simulate

import (
	"testing"

	"extmem/internal/turing"
)

// probEqual asserts Pr[TM accepts] == Pr[NLM accepts] exactly.
func probEqual(t *testing.T, s *Sim, values []string) {
	t.Helper()
	pTM, err := s.TM.AcceptProbability(s.TMInput(values), 10000)
	if err != nil {
		t.Fatalf("TM probability: %v", err)
	}
	pLM, err := s.NLM.AcceptProbability(values)
	if err != nil {
		t.Fatalf("NLM probability: %v", err)
	}
	if pTM.Cmp(pLM) != 0 {
		t.Fatalf("Pr[TM] = %v but Pr[NLM] = %v on %v", pTM, pLM, values)
	}
}

func TestSimulationParityAllInputs(t *testing.T) {
	// Exhaustive over all inputs up to length 5: the deterministic
	// NLM must decide exactly like the TM.
	for n := 1; n <= 5; n++ {
		for bits := 0; bits < 1<<uint(n); bits++ {
			val := make([]byte, n)
			ones := 0
			for i := 0; i < n; i++ {
				if bits&(1<<uint(i)) != 0 {
					val[i] = '1'
					ones++
				} else {
					val[i] = '0'
				}
			}
			s, err := New(turing.ParityMachine(), 1, n, false, 10000)
			if err != nil {
				t.Fatal(err)
			}
			run, err := s.NLM.RunDeterministic([]string{string(val)})
			if err != nil {
				t.Fatalf("%s: %v", val, err)
			}
			if want := ones%2 == 0; run.Accepted != want {
				t.Fatalf("NLM parity(%s) = %v, want %v", val, run.Accepted, want)
			}
			probEqual(t, s, []string{string(val)})
		}
	}
}

func TestSimulationZigZagReversals(t *testing.T) {
	for k := 1; k <= 4; k++ {
		tm := turing.ZigZagMachine(k)
		input := "^0110"
		s, err := New(tm, 1, len(input), false, 100000)
		if err != nil {
			t.Fatal(err)
		}
		tmRes, err := tm.RunDeterministic([]byte(input), 100000)
		if err != nil {
			t.Fatal(err)
		}
		lmRun, err := s.NLM.RunDeterministic([]string{input})
		if err != nil {
			t.Fatal(err)
		}
		if !lmRun.Accepted {
			t.Fatalf("k=%d: NLM rejected", k)
		}
		// Lemma 16: the NLM is (r(N), t)-bounded when the TM is
		// (r, s, t)-bounded — our wrapper gives reversal EQUALITY.
		if lmRun.Rev[0] != tmRes.Stats.Rev[0] {
			t.Fatalf("k=%d: NLM rev = %d, TM rev = %d", k, lmRun.Rev[0], tmRes.Stats.Rev[0])
		}
	}
}

func TestSimulationRandomizedProbabilities(t *testing.T) {
	cases := []struct {
		tm     *turing.Machine
		values []string
		n      int
	}{
		{turing.CoinMachine(1), []string{""}, 0},
		{turing.CoinMachine(3), []string{""}, 0},
		{turing.ThreeWayMachine(), []string{""}, 0},
		{turing.RandomScanMachine(), []string{"101"}, 3},
		{turing.RandomScanMachine(), []string{"11011"}, 5},
		{turing.RandomScanMachine(), []string{"000"}, 3},
	}
	for _, c := range cases {
		s, err := New(c.tm, 1, c.n, false, 10000)
		if err != nil {
			t.Fatalf("%s: %v", c.tm.Name, err)
		}
		probEqual(t, s, c.values)
	}
}

func TestSimulationGuessBitWithInternalTape(t *testing.T) {
	s, err := New(turing.GuessBitMachine(), 1, 1, false, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"0", "1"} {
		probEqual(t, s, []string{v})
	}
}

func TestSimulationCopyMachineTwoTapes(t *testing.T) {
	s, err := New(turing.CopyMachine(), 1, 5, false, 10000)
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.NLM.RunDeterministic([]string{"10110"})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Accepted {
		t.Fatal("copy simulation rejected")
	}
	probEqual(t, s, []string{"10110"})
}

// firstBitsEqualMachine accepts inputs v1#v2# iff the first bits of
// v1 and v2 agree, remembering v1's first bit in internal memory. It
// crosses the block boundary, exercising list-head movement.
func firstBitsEqualMachine() *turing.Machine {
	mc := &turing.Machine{
		Name: "firstbits", T: 1, U: 1,
		Start:    "rd1",
		Accept:   map[turing.State]bool{"acc": true},
		Final:    map[turing.State]bool{"acc": true, "rej": true},
		Alphabet: []byte{'0', '1', '#', turing.Blank},
	}
	for _, b := range []byte{'0', '1'} {
		// Remember the first bit on the internal tape, then scan to '#'.
		mc.Rules = append(mc.Rules, turing.Rule{
			From: "rd1", Read: []byte{b, turing.Blank},
			To: "scan", Write: []byte{b, b}, Dir: []turing.Move{turing.R, turing.N},
		})
	}
	for _, b := range []byte{'0', '1'} {
		for _, g := range []byte{'0', '1'} {
			mc.Rules = append(mc.Rules, turing.Rule{
				From: "scan", Read: []byte{b, g},
				To: "scan", Write: []byte{b, g}, Dir: []turing.Move{turing.R, turing.N},
			})
		}
	}
	for _, g := range []byte{'0', '1'} {
		mc.Rules = append(mc.Rules, turing.Rule{
			From: "scan", Read: []byte{'#', g},
			To: "rd2", Write: []byte{'#', g}, Dir: []turing.Move{turing.R, turing.N},
		})
		for _, b := range []byte{'0', '1'} {
			to := turing.State("rej")
			if b == g {
				to = "acc"
			}
			mc.Rules = append(mc.Rules, turing.Rule{
				From: "rd2", Read: []byte{b, g},
				To: to, Write: []byte{b, g}, Dir: []turing.Move{turing.N, turing.N},
			})
		}
	}
	return mc
}

func TestSimulationBlockCrossing(t *testing.T) {
	tm := firstBitsEqualMachine()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	const n = 3
	cases := []struct {
		values []string
		want   bool
	}{
		{[]string{"101", "110"}, true},
		{[]string{"101", "010"}, false},
		{[]string{"000", "011"}, true},
	}
	for _, c := range cases {
		s, err := New(tm, 2, n, true, 10000)
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.NLM.RunDeterministic(c.values)
		if err != nil {
			t.Fatalf("%v: %v", c.values, err)
		}
		if run.Accepted != c.want {
			t.Fatalf("NLM firstbits(%v) = %v, want %v", c.values, run.Accepted, c.want)
		}
		probEqual(t, s, c.values)
		// The head crossed into block 1: the skeleton must show the
		// list head on input position 1's cell at some point.
		crossed := false
		for _, v := range run.Skeleton.Views {
			if v == nil {
				continue
			}
			for _, p := range v.Positions {
				if p == 1 {
					crossed = true
				}
			}
		}
		if !crossed {
			t.Fatal("list head never reached the second block's cell")
		}
	}
}

// copyTurnBackMachine copies v1#v2# (n = 1) to tape 1, turns the
// tape-1 head around (inserting a record cell into list 0), then
// walks the input head back across the block boundary — exercising
// the TRANSIT over inserted record cells.
func copyTurnBackMachine() *turing.Machine {
	mc := &turing.Machine{
		Name: "copyturnback", T: 2, U: 0,
		Start:    "cpA",
		Accept:   map[turing.State]bool{"acc": true},
		Final:    map[turing.State]bool{"acc": true, "rej": true},
		Alphabet: []byte{'0', '1', '#', turing.Blank},
	}
	syms := []byte{'0', '1', '#'}
	all := []byte{'0', '1', '#', turing.Blank}
	for _, x := range syms {
		mc.Rules = append(mc.Rules,
			turing.Rule{From: "cpA", Read: []byte{x, turing.Blank}, To: "cpB", Write: []byte{x, x}, Dir: []turing.Move{turing.N, turing.R}},
			turing.Rule{From: "cpB", Read: []byte{x, turing.Blank}, To: "cpA", Write: []byte{x, turing.Blank}, Dir: []turing.Move{turing.R, turing.N}},
		)
	}
	// Input exhausted at position 4 (blocks 0..1 copied): turn tape 1
	// around and walk it home (4 left moves: bk3..bk0).
	mc.Rules = append(mc.Rules, turing.Rule{
		From: "cpA", Read: []byte{turing.Blank, turing.Blank},
		To: "bk3", Write: []byte{turing.Blank, turing.Blank}, Dir: []turing.Move{turing.N, turing.L}})
	for i := 3; i >= 1; i-- {
		from := turing.State([]string{"bk1", "bk2", "bk3"}[i-1])
		to := turing.State("l4")
		if i > 1 {
			to = turing.State([]string{"bk1", "bk2"}[i-2])
		}
		for _, y := range all {
			mc.Rules = append(mc.Rules, turing.Rule{
				From: from, Read: []byte{turing.Blank, y},
				To: to, Write: []byte{turing.Blank, y}, Dir: []turing.Move{turing.N, turing.L}})
		}
	}
	// Walk the input head left from position 4 to position 1 (three
	// moves), then accept iff it reads '#' there (it always does).
	for step, pair := range map[turing.State]turing.State{"l4": "l3", "l3": "l2", "l2": "l1"} {
		for _, x := range all {
			for _, y := range all {
				mc.Rules = append(mc.Rules, turing.Rule{
					From: step, Read: []byte{x, y},
					To: pair, Write: []byte{x, y}, Dir: []turing.Move{turing.L, turing.N}})
			}
		}
	}
	for _, y := range all {
		mc.Rules = append(mc.Rules, turing.Rule{
			From: "l1", Read: []byte{'#', y},
			To: "acc", Write: []byte{'#', y}, Dir: []turing.Move{turing.N, turing.N}})
		for _, x := range []byte{'0', '1', turing.Blank} {
			mc.Rules = append(mc.Rules, turing.Rule{
				From: "l1", Read: []byte{x, y},
				To: "rej", Write: []byte{x, y}, Dir: []turing.Move{turing.N, turing.N}})
		}
	}
	return mc
}

func TestSimulationTransitOverInsertedRecords(t *testing.T) {
	tm := copyTurnBackMachine()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, values := range [][]string{{"0", "1"}, {"1", "0"}, {"1", "1"}} {
		s, err := New(tm, 2, 1, true, 10000)
		if err != nil {
			t.Fatal(err)
		}
		tmRes, err := tm.RunDeterministic(s.TMInput(values), 10000)
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.NLM.RunDeterministic(values)
		if err != nil {
			t.Fatalf("%v: %v", values, err)
		}
		if run.Accepted != tmRes.Accepted {
			t.Fatalf("NLM = %v, TM = %v on %v", run.Accepted, tmRes.Accepted, values)
		}
		if !run.Accepted {
			t.Fatalf("copyturnback should accept %v", values)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(turing.ParityMachine(), 2, 3, false, 100); err == nil {
		t.Fatal("unseparated m=2 accepted")
	}
	if _, err := New(turing.ParityMachine(), 0, 3, true, 100); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	st := &simState{
		Q:             "q7",
		ExtPos:        []int{3, 0},
		ExtDir:        []int8{-1, 1},
		Internal:      []string{"01_1"},
		IntPos:        []int{2},
		Writes:        []map[int]byte{{}, {5: 'x'}},
		W0:            map[int]byte{0: '^'},
		TransitTarget: 2,
		TransitDir:    -1,
	}
	dec, err := decodeState(encodeState(st))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Q != st.Q || dec.ExtPos[0] != 3 || dec.ExtDir[0] != -1 ||
		dec.Internal[0] != "01_1" || dec.IntPos[0] != 2 ||
		dec.Writes[1][5] != 'x' || dec.W0[0] != '^' ||
		dec.TransitTarget != 2 || dec.TransitDir != -1 {
		t.Fatalf("round trip mismatch: %+v", dec)
	}
}

func TestTMInput(t *testing.T) {
	s := &Sim{M: 2, N: 2, Sep: true}
	if got := string(s.TMInput([]string{"01", "10"})); got != "01#10#" {
		t.Fatalf("TMInput = %q", got)
	}
	s2 := &Sim{M: 1, N: 3, Sep: false}
	if got := string(s2.TMInput([]string{"011"})); got != "011" {
		t.Fatalf("TMInput = %q", got)
	}
}
