// Package simulate realizes the Simulation Lemma (Lemma 16 of the
// paper) operationally: it wraps a multi-tape nondeterministic Turing
// machine as a nondeterministic list machine whose
//
//   - acceptance probability equals the Turing machine's EXACTLY,
//   - list-head reversals equal the Turing machine's external-tape
//     head reversals (so (r,s,t)-bounded TMs yield (r,t)-bounded
//     NLMs), and
//   - input list cells correspond to the input blocks v_1#, …, v_m#
//     of the construction, with head movements mirroring block
//     crossings.
//
// Deviations from the paper's construction:
// the paper bundles an entire block traversal into one list-machine
// step with choice space C = (C_T)^ℓ and reconstructs tape blocks
// from cell contents alone, which optimizes the STATE COUNT (needed
// for the counting argument of Lemma 21 — provided there by formula
// in internal/lowerbound). This executable wrapper instead advances
// one TM step per NLM step with choice space C = C_T and carries the
// TM's internal configuration (state, internal tapes, head positions
// and work-tape writes — but never the input word) in the NLM state.
// All measured quantities of experiment E10 are unaffected.
package simulate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"extmem/internal/listmachine"
	"extmem/internal/turing"
)

// Sim wraps a Turing machine as a list machine for inputs of shape
// m values of length n.
type Sim struct {
	TM *turing.Machine
	M  int // number of input values
	N  int // length of each value
	// Sep states whether the TM input is v_1#…v_m# ('#'-separated
	// blocks, the paper's format) or the single unseparated word v_1
	// (for machines whose alphabet has no separator; requires M = 1).
	Sep bool

	NLM *listmachine.NLM
}

// stride returns the width of one input block on the TM tape (at
// least 1, so empty-value inputs still partition the tape).
func (s *Sim) stride() int {
	if s.Sep {
		return s.N + 1
	}
	if s.N < 1 {
		return 1
	}
	return s.N
}

// New builds the simulation wrapper. maxSteps bounds the run length
// of both machines.
func New(tm *turing.Machine, m, n int, sep bool, maxSteps int) (*Sim, error) {
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	if !sep && m != 1 {
		return nil, fmt.Errorf("simulate: unseparated input requires m = 1, got %d", m)
	}
	if m < 1 {
		return nil, fmt.Errorf("simulate: need m >= 1, got %d", m)
	}
	s := &Sim{TM: tm, M: m, N: n, Sep: sep}
	s.NLM = &listmachine.NLM{
		Name:     "sim:" + tm.Name,
		T:        tm.T,
		M:        m,
		Choices:  tm.ChoiceModulus(),
		Start:    s.encodeInitial(),
		Final:    map[string]bool{"acc": true, "rej": true, "stuck": true},
		Accept:   map[string]bool{"acc": true},
		MaxSteps: maxSteps,
		Alpha:    s.alpha,
	}
	return s, nil
}

// TMInput renders the TM input word for the given values.
func (s *Sim) TMInput(values []string) []byte {
	var b strings.Builder
	for _, v := range values {
		b.WriteString(v)
		if s.Sep {
			b.WriteByte('#')
		}
	}
	return []byte(b.String())
}

// simState is the decoded NLM state: the simulated TM's configuration
// except for the input word (which lives in the list cells).
type simState struct {
	Q        turing.State
	ExtPos   []int          // external head positions
	ExtDir   []int8         // external head directions (+1 start)
	Internal []string       // internal tape contents
	IntPos   []int          // internal head positions
	Writes   []map[int]byte // per external tape >0: position -> symbol
	W0       map[int]byte   // writes on the input tape

	// Transit: when the TM head crosses an input-block boundary, the
	// list head must reach the cell of the adjacent block, skipping
	// any record cells inserted in between (insertions split blocks;
	// a record cell's origin block is identified by the position
	// index of its first input token). TransitTarget is the block
	// being sought, −1 when not in transit.
	TransitTarget int
	TransitDir    int8
}

func (s *Sim) encodeInitial() string {
	st := &simState{
		Q:             s.TM.Start,
		ExtPos:        make([]int, s.TM.T),
		ExtDir:        make([]int8, s.TM.T),
		Internal:      make([]string, s.TM.U),
		IntPos:        make([]int, s.TM.U),
		Writes:        make([]map[int]byte, s.TM.T),
		W0:            map[int]byte{},
		TransitTarget: -1,
		TransitDir:    +1,
	}
	for i := range st.ExtDir {
		st.ExtDir[i] = +1
	}
	for i := range st.Writes {
		st.Writes[i] = map[int]byte{}
	}
	return encodeState(st)
}

func encodeState(st *simState) string {
	var b strings.Builder
	fmt.Fprintf(&b, "q=%s", st.Q)
	fmt.Fprintf(&b, "|ep=%v|ed=%v|ip=%v", st.ExtPos, st.ExtDir, st.IntPos)
	for _, tape := range st.Internal {
		fmt.Fprintf(&b, "|it=%q", tape)
	}
	for i := 1; i < len(st.Writes); i++ {
		fmt.Fprintf(&b, "|x%d=%s", i, encodeWrites(st.Writes[i]))
	}
	fmt.Fprintf(&b, "|w0=%s", encodeWrites(st.W0))
	fmt.Fprintf(&b, "|tt=%d|td=%d", st.TransitTarget, st.TransitDir)
	return b.String()
}

func encodeWrites(w map[int]byte) string {
	keys := make([]int, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d:%c,", k, w[k])
	}
	return b.String()
}

func decodeState(enc string) (*simState, error) {
	st := &simState{W0: map[int]byte{}, TransitTarget: -1, TransitDir: +1}
	parts := strings.Split(enc, "|")
	if len(parts) < 4 || !strings.HasPrefix(parts[0], "q=") {
		return nil, fmt.Errorf("simulate: cannot decode state %q", enc)
	}
	st.Q = turing.State(strings.TrimPrefix(parts[0], "q="))
	var err error
	if st.ExtPos, err = parseInts(strings.TrimPrefix(parts[1], "ep=")); err != nil {
		return nil, err
	}
	dirs, err := parseInts(strings.TrimPrefix(parts[2], "ed="))
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		st.ExtDir = append(st.ExtDir, int8(d))
	}
	if st.IntPos, err = parseInts(strings.TrimPrefix(parts[3], "ip=")); err != nil {
		return nil, err
	}
	for _, p := range parts[4:] {
		switch {
		case strings.HasPrefix(p, "tt="):
			if _, err := fmt.Sscanf(p, "tt=%d", &st.TransitTarget); err != nil {
				return nil, fmt.Errorf("simulate: bad transit %q", p)
			}
		case strings.HasPrefix(p, "td="):
			var d int
			if _, err := fmt.Sscanf(p, "td=%d", &d); err != nil {
				return nil, fmt.Errorf("simulate: bad transit dir %q", p)
			}
			st.TransitDir = int8(d)
		case strings.HasPrefix(p, "it="):
			var tape string
			if _, err := fmt.Sscanf(strings.TrimPrefix(p, "it="), "%q", &tape); err != nil {
				return nil, fmt.Errorf("simulate: bad internal tape %q: %v", p, err)
			}
			st.Internal = append(st.Internal, tape)
		case strings.HasPrefix(p, "w0="):
			st.W0 = decodeWrites(strings.TrimPrefix(p, "w0="))
		case strings.HasPrefix(p, "x"):
			st.Writes = append(st.Writes, decodeWrites(p[strings.Index(p, "=")+1:]))
		}
	}
	// Writes[0] is a placeholder: input-tape writes live in W0.
	st.Writes = append([]map[int]byte{{}}, st.Writes...)
	return st, nil
}

func parseInts(s string) ([]int, error) {
	s = strings.Trim(s, "[]")
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("simulate: bad int %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func decodeWrites(s string) map[int]byte {
	out := map[int]byte{}
	for _, entry := range strings.Split(s, ",") {
		i := strings.IndexByte(entry, ':')
		if i <= 0 || i+1 >= len(entry) {
			continue
		}
		k, err := strconv.Atoi(entry[:i])
		if err != nil {
			continue
		}
		out[k] = entry[i+1]
	}
	return out
}

// inputSymbol reconstructs the symbol at input-tape position pos. The
// current value string is read from the list cell under head 0; other
// blocks' values are unreadable here, but by the block invariant the
// head is always inside the block its list cell represents.
func (s *Sim) inputSymbol(st *simState, heads []listmachine.Cell, pos int) (byte, error) {
	if b, ok := st.W0[pos]; ok {
		return b, nil
	}
	block := pos / s.stride()
	off := pos % s.stride()
	if block >= s.M {
		return turing.Blank, nil
	}
	if s.Sep && off == s.N {
		return '#', nil
	}
	val := firstInputValue(heads[0])
	if val == "" && s.N > 0 {
		return 0, fmt.Errorf("simulate: head cell of list 0 carries no input value")
	}
	if off >= len(val) {
		return turing.Blank, nil
	}
	return val[off], nil
}

// firstInputValue extracts the input value of the block this cell
// represents: list-0 cells are only ever overwritten by records whose
// first bracket group descends from the original ⟨v_j⟩, so the first
// input token is v_j.
func firstInputValue(c listmachine.Cell) string {
	for _, t := range c {
		if t.Kind == listmachine.KInput {
			return t.Val
		}
	}
	return ""
}
