package simulate

import (
	"extmem/internal/listmachine"
	"extmem/internal/turing"
)

// alpha is the wrapped NLM's transition function: it advances the
// simulated Turing machine by one step, resolving nondeterminism with
// the list machine's choice (rule number choice mod |rules|, uniform
// because |C| = lcm(1..b) is divisible by every branching degree —
// Definition 17). List-head movements mirror input-block crossings
// and external head turns, so the NLM's reversal count equals the
// TM's external reversal count.
func (s *Sim) alpha(state string, heads []listmachine.Cell, choice int) (string, []listmachine.Movement) {
	st, err := decodeState(state)
	if err != nil {
		return "stuck", s.stays(nil)
	}
	if st.TransitTarget >= 0 {
		// In transit: keep moving over record cells until the head
		// reaches the cell of the target block, then resume.
		if firstInputIndex(heads[0]) != st.TransitTarget {
			mov := s.stays(st)
			mov[0] = listmachine.Movement{Dir: st.TransitDir, Move: true}
			return state, mov
		}
		st.TransitTarget = -1
	}
	if s.TM.Final[st.Q] {
		if s.TM.Accept[st.Q] {
			return "acc", s.stays(st)
		}
		return "rej", s.stays(st)
	}

	// Read the symbols under all TM heads.
	reads := make([]byte, s.TM.Tapes())
	for i := 0; i < s.TM.T; i++ {
		var sym byte
		if i == 0 {
			sym, err = s.inputSymbol(st, heads, st.ExtPos[0])
			if err != nil {
				return "stuck", s.stays(st)
			}
		} else {
			var ok bool
			if sym, ok = st.Writes[i][st.ExtPos[i]]; !ok {
				sym = turing.Blank
			}
		}
		reads[i] = sym
	}
	for j := 0; j < s.TM.U; j++ {
		tape := st.Internal[j]
		if st.IntPos[j] < len(tape) {
			reads[s.TM.T+j] = tape[st.IntPos[j]]
		} else {
			reads[s.TM.T+j] = turing.Blank
		}
	}

	rules := s.TM.MatchRules(st.Q, reads)
	if len(rules) == 0 {
		return "stuck", s.stays(st)
	}
	rule := rules[choice%len(rules)]

	// Apply writes and head movements to a fresh state.
	next := cloneState(st)
	for i := 0; i < s.TM.T; i++ {
		if rule.Write[i] != reads[i] || i > 0 {
			if i == 0 {
				next.W0[st.ExtPos[0]] = rule.Write[0]
			} else {
				next.Writes[i][st.ExtPos[i]] = rule.Write[i]
			}
		}
	}
	for j := 0; j < s.TM.U; j++ {
		next.Internal[j] = writeAt(next.Internal[j], st.IntPos[j], rule.Write[s.TM.T+j])
	}
	for i := 0; i < s.TM.T; i++ {
		p := st.ExtPos[i] + int(rule.Dir[i])
		if p < 0 {
			p = 0
		}
		next.ExtPos[i] = p
		if rule.Dir[i] == turing.R {
			next.ExtDir[i] = +1
		} else if rule.Dir[i] == turing.L {
			next.ExtDir[i] = -1
		}
	}
	for j := 0; j < s.TM.U; j++ {
		p := st.IntPos[j] + int(rule.Dir[s.TM.T+j])
		if p < 0 {
			p = 0
		}
		next.IntPos[j] = p
	}

	// Translate to list-head movements. A block crossing on the input
	// tape starts a transit toward the target block's cell (record
	// cells inserted by Definition 24(c) may lie in between).
	mov := make([]listmachine.Movement, s.TM.T)
	for i := 0; i < s.TM.T; i++ {
		if i == 0 {
			oldBlock := capBlock(st.ExtPos[0]/s.stride(), s.M)
			newBlock := capBlock(next.ExtPos[0]/s.stride(), s.M)
			if newBlock != oldBlock {
				next.TransitTarget = newBlock
				next.TransitDir = int8(sign(newBlock - oldBlock))
				mov[0] = listmachine.Movement{Dir: next.TransitDir, Move: true}
				continue
			}
		}
		mov[i] = listmachine.Movement{Dir: next.ExtDir[i], Move: false}
	}

	if s.TM.Final[rule.To] {
		if s.TM.Accept[rule.To] {
			return "acc", mov
		}
		return "rej", mov
	}
	next.Q = rule.To
	return encodeState(next), mov
}

// stays returns no-op movements preserving the current directions.
func (s *Sim) stays(st *simState) []listmachine.Movement {
	mov := make([]listmachine.Movement, s.TM.T)
	for i := range mov {
		d := int8(+1)
		if st != nil {
			d = st.ExtDir[i]
		}
		mov[i] = listmachine.Movement{Dir: d, Move: false}
	}
	return mov
}

// firstInputIndex returns the input position of the first input token
// in the cell, or −1 if there is none. For list-0 cells this is the
// original block the cell descends from (records embed the cell they
// replaced or split as their first bracket group).
func firstInputIndex(c listmachine.Cell) int {
	for _, t := range c {
		if t.Kind == listmachine.KInput {
			return t.Input
		}
	}
	return -1
}

func cloneState(st *simState) *simState {
	n := &simState{
		Q:             st.Q,
		ExtPos:        append([]int(nil), st.ExtPos...),
		ExtDir:        append([]int8(nil), st.ExtDir...),
		Internal:      append([]string(nil), st.Internal...),
		IntPos:        append([]int(nil), st.IntPos...),
		Writes:        make([]map[int]byte, len(st.Writes)),
		W0:            map[int]byte{},
		TransitTarget: st.TransitTarget,
		TransitDir:    st.TransitDir,
	}
	for i, w := range st.Writes {
		n.Writes[i] = map[int]byte{}
		for k, v := range w {
			n.Writes[i][k] = v
		}
	}
	for k, v := range st.W0 {
		n.W0[k] = v
	}
	return n
}

// writeAt sets position p of tape to b, extending with blanks in one
// sized allocation.
func writeAt(tape string, p int, b byte) string {
	n := len(tape)
	if p < n {
		return tape[:p] + string(b) + tape[p+1:]
	}
	buf := make([]byte, p+1)
	copy(buf, tape)
	for i := n; i < p; i++ {
		buf[i] = turing.Blank
	}
	buf[p] = b
	return string(buf)
}

func capBlock(b, m int) int {
	if b >= m {
		return m - 1
	}
	return b
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
