package turing

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrStuck is returned when a run reaches a non-final configuration
// with no applicable transition.
var ErrStuck = errors.New("turing: stuck in non-final configuration")

// ErrNondeterministic is returned by RunDeterministic when a
// configuration has more than one successor.
var ErrNondeterministic = errors.New("turing: machine is not deterministic here")

// ErrStepLimit is returned when a run exceeds the step limit.
var ErrStepLimit = errors.New("turing: step limit exceeded")

// Tracker accumulates the resource measures of Definition 1 along a
// run: head reversals per tape and space per tape.
type Tracker struct {
	lastDir []int8 // +1 / -1; heads start in forward direction
	Rev     []int  // direction changes per tape
	Space   []int  // cells used per tape (max of content length and head reach)
	Steps   int
}

// NewTracker returns a tracker for a machine with the given total
// tape count.
func NewTracker(tapes int) *Tracker {
	tk := &Tracker{
		lastDir: make([]int8, tapes),
		Rev:     make([]int, tapes),
		Space:   make([]int, tapes),
	}
	for i := range tk.lastDir {
		tk.lastDir[i] = +1
	}
	return tk
}

// Observe folds one configuration transition into the counters.
func (tk *Tracker) Observe(prev, next *Config) {
	tk.Steps++
	for i := range prev.Pos {
		d := next.Pos[i] - prev.Pos[i]
		if d > 0 && tk.lastDir[i] == -1 {
			tk.Rev[i]++
			tk.lastDir[i] = +1
		} else if d < 0 && tk.lastDir[i] == +1 {
			tk.Rev[i]++
			tk.lastDir[i] = -1
		}
		if used := len(next.Tape[i]); used > tk.Space[i] {
			tk.Space[i] = used
		}
		if reach := next.Pos[i] + 1; reach > tk.Space[i] {
			tk.Space[i] = reach
		}
	}
}

// Init records the space of the initial configuration.
func (tk *Tracker) Init(c *Config) {
	for i := range c.Tape {
		if used := len(c.Tape[i]); used > tk.Space[i] {
			tk.Space[i] = used
		}
	}
}

// ExternalScans returns 1 + Σ reversals over the first t tapes
// (Definition 1's bound r).
func (tk *Tracker) ExternalScans(t int) int {
	s := 1
	for i := 0; i < t && i < len(tk.Rev); i++ {
		s += tk.Rev[i]
	}
	return s
}

// InternalSpace returns Σ space over the internal tapes (tapes
// t .. t+u-1), Definition 1's bound s.
func (tk *Tracker) InternalSpace(t int) int {
	s := 0
	for i := t; i < len(tk.Space); i++ {
		s += tk.Space[i]
	}
	return s
}

// RunResult reports a completed run.
type RunResult struct {
	Accepted bool
	Final    *Config
	Stats    *Tracker
}

// RunDeterministic executes a deterministic machine on the input,
// failing if any configuration has several successors or the step
// limit is exceeded.
func (mc *Machine) RunDeterministic(input []byte, maxSteps int) (*RunResult, error) {
	c := mc.NewConfig(input)
	tk := NewTracker(mc.Tapes())
	tk.Init(c)
	for steps := 0; ; steps++ {
		if mc.IsFinal(c) {
			return &RunResult{Accepted: mc.IsAccepting(c), Final: c, Stats: tk}, nil
		}
		if steps >= maxSteps {
			return nil, fmt.Errorf("%w after %d steps", ErrStepLimit, steps)
		}
		succ := mc.Next(c)
		switch len(succ) {
		case 0:
			return nil, fmt.Errorf("%w: state %q reading %q", ErrStuck, c.State, c.ReadAll())
		case 1:
			tk.Observe(c, succ[0])
			c = succ[0]
		default:
			return nil, fmt.Errorf("%w: state %q has %d successors", ErrNondeterministic, c.State, len(succ))
		}
	}
}

// RunWithChoices executes the machine resolving nondeterminism by the
// choice sequence (Definition 17): in step i, successor number
// choices[i] mod |Next| is taken. If the run is longer than the
// choice sequence, remaining choices default to 0.
func (mc *Machine) RunWithChoices(input []byte, choices []int, maxSteps int) (*RunResult, error) {
	c := mc.NewConfig(input)
	tk := NewTracker(mc.Tapes())
	tk.Init(c)
	for steps := 0; ; steps++ {
		if mc.IsFinal(c) {
			return &RunResult{Accepted: mc.IsAccepting(c), Final: c, Stats: tk}, nil
		}
		if steps >= maxSteps {
			return nil, fmt.Errorf("%w after %d steps", ErrStepLimit, steps)
		}
		succ := mc.Next(c)
		if len(succ) == 0 {
			return nil, fmt.Errorf("%w: state %q reading %q", ErrStuck, c.State, c.ReadAll())
		}
		pick := 0
		if steps < len(choices) {
			pick = choices[steps] % len(succ)
			if pick < 0 {
				pick += len(succ)
			}
		}
		tk.Observe(c, succ[pick])
		c = succ[pick]
	}
}

// AcceptProbability computes Pr[T accepts input] exactly by memoized
// exploration of the run tree, with each successor chosen uniformly
// (the randomized semantics of Section 2). It fails on infinite runs
// (cycle on the exploration path) and on stuck configurations.
func (mc *Machine) AcceptProbability(input []byte, maxDepth int) (Prob, error) {
	memo := map[string]Prob{}
	onPath := map[string]bool{}
	var visit func(c *Config, depth int) (Prob, error)
	visit = func(c *Config, depth int) (Prob, error) {
		if mc.IsFinal(c) {
			if mc.IsAccepting(c) {
				return probOne(), nil
			}
			return probZero(), nil
		}
		if depth > maxDepth {
			return nil, fmt.Errorf("%w at depth %d", ErrStepLimit, depth)
		}
		key := c.Key()
		if p, ok := memo[key]; ok {
			return p, nil
		}
		if onPath[key] {
			return nil, fmt.Errorf("turing: infinite run detected at state %q", c.State)
		}
		onPath[key] = true
		defer delete(onPath, key)
		succ := mc.Next(c)
		if len(succ) == 0 {
			return nil, fmt.Errorf("%w: state %q reading %q", ErrStuck, c.State, c.ReadAll())
		}
		total := probZero()
		for _, s := range succ {
			p, err := visit(s, depth+1)
			if err != nil {
				return nil, err
			}
			total.Add(total, p)
		}
		total.Quo(total, new(big.Rat).SetInt64(int64(len(succ))))
		memo[key] = total
		return total, nil
	}
	return visit(mc.NewConfig(input), 0)
}

// RunVisitor is called once per complete run with its outcome and
// resource statistics.
type RunVisitor func(accepted bool, stats *Tracker) error

// ExploreRuns enumerates every run of the machine on the input (depth
// first), invoking the visitor at each final configuration. The
// tracker passed to the visitor is a snapshot; runCap bounds the
// number of runs and maxDepth each run's length.
func (mc *Machine) ExploreRuns(input []byte, maxDepth, runCap int, visit RunVisitor) error {
	runs := 0
	var rec func(c *Config, tk *Tracker, depth int) error
	rec = func(c *Config, tk *Tracker, depth int) error {
		if mc.IsFinal(c) {
			runs++
			if runs > runCap {
				return fmt.Errorf("turing: more than %d runs", runCap)
			}
			return visit(mc.IsAccepting(c), tk)
		}
		if depth > maxDepth {
			return fmt.Errorf("%w at depth %d", ErrStepLimit, depth)
		}
		succ := mc.Next(c)
		if len(succ) == 0 {
			return fmt.Errorf("%w: state %q reading %q", ErrStuck, c.State, c.ReadAll())
		}
		for _, s := range succ {
			snap := &Tracker{
				lastDir: append([]int8(nil), tk.lastDir...),
				Rev:     append([]int(nil), tk.Rev...),
				Space:   append([]int(nil), tk.Space...),
				Steps:   tk.Steps,
			}
			snap.Observe(c, s)
			if err := rec(s, snap, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	c := mc.NewConfig(input)
	tk := NewTracker(mc.Tapes())
	tk.Init(c)
	return rec(c, tk, 0)
}

// VerifyBounded checks that every run of the machine on the input
// satisfies the (r, s, t)-bound of Definition 1: finiteness,
// 1 + Σ external reversals ≤ r, and Σ internal space ≤ s.
func (mc *Machine) VerifyBounded(input []byte, r, s, maxDepth, runCap int) error {
	return mc.ExploreRuns(input, maxDepth, runCap, func(accepted bool, tk *Tracker) error {
		if got := tk.ExternalScans(mc.T); got > r {
			return fmt.Errorf("turing: run uses %d scans > r = %d", got, r)
		}
		if got := tk.InternalSpace(mc.T); got > s {
			return fmt.Errorf("turing: run uses %d internal cells > s = %d", got, s)
		}
		return nil
	})
}

// MaxBranch returns the maximum branching degree b of the machine: an
// upper bound on |Next(γ)| over all configurations, computed from the
// transition index.
func (mc *Machine) MaxBranch() int {
	if mc.index == nil {
		mc.buildIndex()
	}
	b := 1
	for _, ids := range mc.index {
		if len(ids) > b {
			b = len(ids)
		}
	}
	return b
}

// ChoiceModulus returns b' = lcm(1, …, b) for b = MaxBranch()
// (Definition 17): drawing c uniformly from {0, …, b'−1} and taking
// successor c mod |Next(γ)| is uniform for every branching degree
// ≤ b.
func (mc *Machine) ChoiceModulus() int {
	b := mc.MaxBranch()
	l := 1
	for i := 2; i <= b; i++ {
		l = lcm(l, i)
	}
	return l
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
