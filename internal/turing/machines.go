package turing

import "fmt"

// Sample machines used by tests and by the simulation experiments
// (E10, E13). They are small by design: acceptance probabilities are
// computed exactly over their full run trees.

// Marker is the left-end marker symbol used by machines that need to
// detect the start of the tape (one-sided tapes cannot be sensed).
const Marker byte = '^'

// ParityMachine returns a deterministic 1-tape machine accepting the
// 0-1-words with an even number of 1s. It performs a single forward
// scan (r = 1) with no internal tapes.
func ParityMachine() *Machine {
	mc := &Machine{
		Name:     "parity",
		T:        1,
		U:        0,
		Start:    "even",
		Accept:   map[State]bool{"acc": true},
		Final:    map[State]bool{"acc": true, "rej": true},
		Alphabet: []byte{'0', '1', Blank},
	}
	mc.Rules = []Rule{
		{From: "even", Read: []byte{'0'}, To: "even", Write: []byte{'0'}, Dir: []Move{R}},
		{From: "even", Read: []byte{'1'}, To: "odd", Write: []byte{'1'}, Dir: []Move{R}},
		{From: "even", Read: []byte{Blank}, To: "acc", Write: []byte{Blank}, Dir: []Move{N}},
		{From: "odd", Read: []byte{'0'}, To: "odd", Write: []byte{'0'}, Dir: []Move{R}},
		{From: "odd", Read: []byte{'1'}, To: "even", Write: []byte{'1'}, Dir: []Move{R}},
		{From: "odd", Read: []byte{Blank}, To: "rej", Write: []byte{Blank}, Dir: []Move{N}},
	}
	return mc
}

// ZigZagMachine returns a deterministic 1-tape machine that scans its
// input forward and backward k times and accepts. Inputs must start
// with the Marker symbol. It performs exactly 2(k−1) head reversals,
// i.e. 2k−1 sequential scans, making it the canonical fixture for
// reversal accounting.
func ZigZagMachine(k int) *Machine {
	if k < 1 {
		panic("turing: ZigZagMachine needs k >= 1")
	}
	mc := &Machine{
		Name:     fmt.Sprintf("zigzag-%d", k),
		T:        1,
		U:        0,
		Start:    State("fwd1"),
		Accept:   map[State]bool{"acc": true},
		Final:    map[State]bool{"acc": true},
		Alphabet: []byte{Marker, '0', '1', Blank},
	}
	for i := 1; i <= k; i++ {
		fwd := State(fmt.Sprintf("fwd%d", i))
		back := State(fmt.Sprintf("back%d", i))
		for _, b := range []byte{Marker, '0', '1'} {
			mc.Rules = append(mc.Rules, Rule{From: fwd, Read: []byte{b}, To: fwd, Write: []byte{b}, Dir: []Move{R}})
		}
		if i == k {
			mc.Rules = append(mc.Rules, Rule{From: fwd, Read: []byte{Blank}, To: "acc", Write: []byte{Blank}, Dir: []Move{N}})
			continue
		}
		mc.Rules = append(mc.Rules, Rule{From: fwd, Read: []byte{Blank}, To: back, Write: []byte{Blank}, Dir: []Move{L}})
		for _, b := range []byte{'0', '1'} {
			mc.Rules = append(mc.Rules, Rule{From: back, Read: []byte{b}, To: back, Write: []byte{b}, Dir: []Move{L}})
		}
		next := State(fmt.Sprintf("fwd%d", i+1))
		mc.Rules = append(mc.Rules, Rule{From: back, Read: []byte{Marker}, To: next, Write: []byte{Marker}, Dir: []Move{R}})
	}
	return mc
}

// CopyMachine returns a deterministic 2-external-tape machine that
// copies its input onto tape 1 and accepts. Because machines are
// normalized to move one head per step, each symbol takes two steps.
func CopyMachine() *Machine {
	mc := &Machine{
		Name:     "copy",
		T:        2,
		U:        0,
		Start:    "cpA",
		Accept:   map[State]bool{"acc": true},
		Final:    map[State]bool{"acc": true},
		Alphabet: []byte{'0', '1', Blank},
	}
	for _, x := range []byte{'0', '1'} {
		mc.Rules = append(mc.Rules,
			Rule{From: "cpA", Read: []byte{x, Blank}, To: "cpB", Write: []byte{x, x}, Dir: []Move{N, R}},
			Rule{From: "cpB", Read: []byte{x, Blank}, To: "cpA", Write: []byte{x, Blank}, Dir: []Move{R, N}},
		)
	}
	mc.Rules = append(mc.Rules,
		Rule{From: "cpA", Read: []byte{Blank, Blank}, To: "acc", Write: []byte{Blank, Blank}, Dir: []Move{N, N}})
	return mc
}

// CoinMachine returns a randomized machine (on empty input) that
// accepts with probability exactly 2^{−k}: it must flip heads k times
// in a row.
func CoinMachine(k int) *Machine {
	if k < 1 {
		panic("turing: CoinMachine needs k >= 1")
	}
	mc := &Machine{
		Name:     fmt.Sprintf("coin-%d", k),
		T:        1,
		U:        0,
		Start:    "f1",
		Accept:   map[State]bool{"acc": true},
		Final:    map[State]bool{"acc": true, "rej": true},
		Alphabet: []byte{Blank},
	}
	for i := 1; i <= k; i++ {
		from := State(fmt.Sprintf("f%d", i))
		to := State(fmt.Sprintf("f%d", i+1))
		if i == k {
			to = "acc"
		}
		mc.Rules = append(mc.Rules,
			Rule{From: from, Read: []byte{Blank}, To: to, Write: []byte{Blank}, Dir: []Move{N}},
			Rule{From: from, Read: []byte{Blank}, To: "rej", Write: []byte{Blank}, Dir: []Move{N}},
		)
	}
	return mc
}

// ThreeWayMachine returns a randomized machine (on empty input) with a
// three-way branch, accepting with probability exactly 2/3. Its
// maximum branching degree 3 exercises the lcm-based choice modulus of
// Definition 17.
func ThreeWayMachine() *Machine {
	return &Machine{
		Name:     "threeway",
		T:        1,
		U:        0,
		Start:    "s",
		Accept:   map[State]bool{"acc": true},
		Final:    map[State]bool{"acc": true, "rej": true},
		Alphabet: []byte{Blank},
		Rules: []Rule{
			{From: "s", Read: []byte{Blank}, To: "acc", Write: []byte{Blank}, Dir: []Move{N}},
			{From: "s", Read: []byte{Blank}, To: "acc", Write: []byte{Blank}, Dir: []Move{R}},
			{From: "s", Read: []byte{Blank}, To: "rej", Write: []byte{Blank}, Dir: []Move{N}},
		},
	}
}

// GuessBitMachine returns a nondeterministic machine with one external
// and one internal tape: it guesses a bit, stores it in internal
// memory, and accepts iff the guess equals the single input bit. As a
// randomized machine it accepts every 1-bit input with probability
// exactly 1/2; as a nondeterministic machine it accepts every 1-bit
// input.
func GuessBitMachine() *Machine {
	mc := &Machine{
		Name:     "guessbit",
		T:        1,
		U:        1,
		Start:    "guess",
		Accept:   map[State]bool{"acc": true},
		Final:    map[State]bool{"acc": true, "rej": true},
		Alphabet: []byte{'0', '1', Blank},
	}
	for _, b := range []byte{'0', '1'} {
		for _, g := range []byte{'0', '1'} {
			mc.Rules = append(mc.Rules, Rule{
				From: "guess", Read: []byte{b, Blank},
				To: "check", Write: []byte{b, g}, Dir: []Move{N, N},
			})
		}
	}
	for _, b := range []byte{'0', '1'} {
		for _, g := range []byte{'0', '1'} {
			to := State("rej")
			if b == g {
				to = "acc"
			}
			mc.Rules = append(mc.Rules, Rule{
				From: "check", Read: []byte{b, g},
				To: to, Write: []byte{b, g}, Dir: []Move{N, N},
			})
		}
	}
	return mc
}

// RandomScanMachine returns a randomized 1-tape machine that scans its
// 0-1 input once and accepts iff every coin flip taken at a '1' comes
// up heads: Pr[accept] = 2^{−(#1s)}. It combines data flow with
// randomness, which makes it a good fixture for exact-probability
// tests on nontrivial inputs.
func RandomScanMachine() *Machine {
	mc := &Machine{
		Name:     "randomscan",
		T:        1,
		U:        0,
		Start:    "scan",
		Accept:   map[State]bool{"acc": true},
		Final:    map[State]bool{"acc": true, "rej": true},
		Alphabet: []byte{'0', '1', Blank},
	}
	mc.Rules = []Rule{
		{From: "scan", Read: []byte{'0'}, To: "scan", Write: []byte{'0'}, Dir: []Move{R}},
		// On '1': coin flip — continue or reject.
		{From: "scan", Read: []byte{'1'}, To: "scan", Write: []byte{'1'}, Dir: []Move{R}},
		{From: "scan", Read: []byte{'1'}, To: "rej", Write: []byte{'1'}, Dir: []Move{N}},
		{From: "scan", Read: []byte{Blank}, To: "acc", Write: []byte{Blank}, Dir: []Move{N}},
	}
	return mc
}
