// Package turing implements the multi-tape nondeterministic Turing
// machines underlying the ST model (Definition 1 and Appendix A of
// the paper): t external-memory tapes (tape 0 is the input tape) and
// u internal-memory tapes, with exact accounting of head reversals on
// the external tapes and of space on the internal tapes.
//
// The package supports deterministic, nondeterministic and randomized
// execution. Randomized acceptance probabilities are computed EXACTLY
// by exploring the run tree (Definition 17/Lemma 18 of the paper),
// not by sampling, so the simulation experiments can verify equalities
// like Pr[TM accepts] = Pr[list machine accepts] literally.
package turing

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// Blank is the blank tape symbol ✷.
const Blank byte = '_'

// Move directions for transition rules.
type Move int8

// Head movements: left, none, right.
const (
	L Move = -1
	N Move = 0
	R Move = +1
)

func (m Move) String() string {
	switch m {
	case L:
		return "L"
	case N:
		return "N"
	case R:
		return "R"
	default:
		return fmt.Sprintf("Move(%d)", int8(m))
	}
}

// State is a machine state identified by name.
type State string

// Rule is one transition: in state From reading Read[i] on tape i,
// switch to state To, write Write[i] and move head i by Dir[i].
// Following the paper's normalization, at most one head may move per
// step (enforced by Machine.Validate).
type Rule struct {
	From  State
	Read  []byte
	To    State
	Write []byte
	Dir   []Move
}

// Machine is a nondeterministic multi-tape Turing machine
// T = (Q, Σ, Δ, q0, F, Facc) with T external tapes and U internal
// tapes (total T+U tapes; tape 0 is the input tape).
type Machine struct {
	Name     string
	T        int // number of external-memory tapes
	U        int // number of internal-memory tapes
	Start    State
	Accept   map[State]bool // accepting final states Facc
	Final    map[State]bool // all final states F (includes Facc)
	Rules    []Rule
	Alphabet []byte // tape alphabet; must include Blank

	index map[string][]int // transition lookup: state+symbols -> rule indices
}

// ErrInvalid is returned by Validate for ill-formed machines.
var ErrInvalid = errors.New("turing: invalid machine")

// Tapes returns the total number of tapes T+U.
func (mc *Machine) Tapes() int { return mc.T + mc.U }

// Validate checks structural well-formedness: rule arities, the
// one-moving-head normalization, final states having no outgoing
// rules, and alphabet closure.
func (mc *Machine) Validate() error {
	if mc.T < 1 {
		return fmt.Errorf("%w: need at least one external tape", ErrInvalid)
	}
	if mc.U < 0 {
		return fmt.Errorf("%w: negative internal tape count", ErrInvalid)
	}
	alpha := map[byte]bool{}
	for _, a := range mc.Alphabet {
		alpha[a] = true
	}
	if !alpha[Blank] {
		return fmt.Errorf("%w: alphabet misses the blank symbol", ErrInvalid)
	}
	for a := range mc.Accept {
		if !mc.Final[a] {
			return fmt.Errorf("%w: accepting state %q not final", ErrInvalid, a)
		}
	}
	k := mc.Tapes()
	for i, r := range mc.Rules {
		if len(r.Read) != k || len(r.Write) != k || len(r.Dir) != k {
			return fmt.Errorf("%w: rule %d arity %d/%d/%d, want %d",
				ErrInvalid, i, len(r.Read), len(r.Write), len(r.Dir), k)
		}
		if mc.Final[r.From] {
			return fmt.Errorf("%w: rule %d leaves final state %q", ErrInvalid, i, r.From)
		}
		moving := 0
		for _, d := range r.Dir {
			if d != N {
				moving++
			}
		}
		if moving > 1 {
			return fmt.Errorf("%w: rule %d moves %d heads; machines are normalized to move at most one",
				ErrInvalid, i, moving)
		}
		for _, b := range r.Read {
			if !alpha[b] {
				return fmt.Errorf("%w: rule %d reads %q outside alphabet", ErrInvalid, i, b)
			}
		}
		for _, b := range r.Write {
			if !alpha[b] {
				return fmt.Errorf("%w: rule %d writes %q outside alphabet", ErrInvalid, i, b)
			}
		}
	}
	return nil
}

// buildIndex prepares the transition lookup table.
func (mc *Machine) buildIndex() {
	mc.index = map[string][]int{}
	for i, r := range mc.Rules {
		mc.index[ruleKey(r.From, r.Read)] = append(mc.index[ruleKey(r.From, r.Read)], i)
	}
}

func ruleKey(s State, read []byte) string {
	return string(s) + "\x00" + string(read)
}

// Config is a configuration: state, head positions and tape contents.
// Tapes are one-sided infinite with cells indexed from 0; content
// slices hold the touched prefix.
type Config struct {
	State State
	Pos   []int
	Tape  [][]byte
}

// NewConfig returns the initial configuration for the given input word
// on tape 0.
func (mc *Machine) NewConfig(input []byte) *Config {
	c := &Config{
		State: mc.Start,
		Pos:   make([]int, mc.Tapes()),
		Tape:  make([][]byte, mc.Tapes()),
	}
	c.Tape[0] = append([]byte(nil), input...)
	return c
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	n := &Config{
		State: c.State,
		Pos:   append([]int(nil), c.Pos...),
		Tape:  make([][]byte, len(c.Tape)),
	}
	for i, t := range c.Tape {
		n.Tape[i] = append([]byte(nil), t...)
	}
	return n
}

// Read returns the symbol under head i.
func (c *Config) Read(i int) byte {
	if c.Pos[i] < len(c.Tape[i]) {
		return c.Tape[i][c.Pos[i]]
	}
	return Blank
}

// ReadAll returns the symbols under all heads.
func (c *Config) ReadAll() []byte {
	out := make([]byte, len(c.Tape))
	for i := range c.Tape {
		out[i] = c.Read(i)
	}
	return out
}

// write stores b under head i, materializing blanks as needed.
// Writing a blank past the materialized region is a no-op (the cell
// already holds a blank).
func (c *Config) write(i int, b byte) {
	if b == Blank && c.Pos[i] >= len(c.Tape[i]) {
		return
	}
	for c.Pos[i] >= len(c.Tape[i]) {
		c.Tape[i] = append(c.Tape[i], Blank)
	}
	c.Tape[i][c.Pos[i]] = b
}

// Key returns a canonical string identifying the configuration (for
// memoized run-tree exploration).
func (c *Config) Key() string {
	var b strings.Builder
	b.WriteString(string(c.State))
	for i := range c.Tape {
		fmt.Fprintf(&b, "|%d:", c.Pos[i])
		b.Write(c.Tape[i])
	}
	return b.String()
}

// Next returns all successor configurations of c (the set Next_T(γ)
// of the paper). A configuration in a final state has no successors.
func (mc *Machine) Next(c *Config) []*Config {
	if mc.index == nil {
		mc.buildIndex()
	}
	if mc.Final[c.State] {
		return nil
	}
	ids := mc.index[ruleKey(c.State, c.ReadAll())]
	out := make([]*Config, 0, len(ids))
	for _, id := range ids {
		r := mc.Rules[id]
		n := c.Clone()
		n.State = r.To
		for i := range r.Write {
			n.write(i, r.Write[i])
		}
		for i, d := range r.Dir {
			p := n.Pos[i] + int(d)
			if p < 0 {
				p = 0 // falling off the left end: stay (one-sided tapes)
			}
			n.Pos[i] = p
		}
		out = append(out, n)
	}
	return out
}

// MatchRules returns the transition rules applicable in state q when
// reading the given symbols, in declaration order.
func (mc *Machine) MatchRules(q State, reads []byte) []Rule {
	if mc.index == nil {
		mc.buildIndex()
	}
	ids := mc.index[ruleKey(q, reads)]
	out := make([]Rule, len(ids))
	for i, id := range ids {
		out[i] = mc.Rules[id]
	}
	return out
}

// IsFinal reports whether c is in a final state.
func (mc *Machine) IsFinal(c *Config) bool { return mc.Final[c.State] }

// IsAccepting reports whether c is in an accepting state.
func (mc *Machine) IsAccepting(c *Config) bool { return mc.Accept[c.State] }

// Prob is an exact rational probability.
type Prob = *big.Rat

// zero and one probabilities.
func probZero() Prob { return new(big.Rat) }
func probOne() Prob  { return big.NewRat(1, 1) }
