package turing

import (
	"errors"
	"math/big"
	"strings"
	"testing"
)

func TestValidateSampleMachines(t *testing.T) {
	machines := []*Machine{
		ParityMachine(), ZigZagMachine(3), CopyMachine(),
		CoinMachine(2), ThreeWayMachine(), GuessBitMachine(), RandomScanMachine(),
	}
	for _, mc := range machines {
		if err := mc.Validate(); err != nil {
			t.Fatalf("%s: %v", mc.Name, err)
		}
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	// Two moving heads.
	mc := &Machine{
		T: 2, U: 0, Start: "s",
		Final:    map[State]bool{"f": true},
		Accept:   map[State]bool{},
		Alphabet: []byte{Blank},
		Rules: []Rule{
			{From: "s", Read: []byte{Blank, Blank}, To: "f", Write: []byte{Blank, Blank}, Dir: []Move{R, R}},
		},
	}
	if err := mc.Validate(); err == nil {
		t.Fatal("two moving heads accepted")
	}
	// Rule leaving a final state.
	mc2 := &Machine{
		T: 1, U: 0, Start: "s",
		Final:    map[State]bool{"s": true},
		Accept:   map[State]bool{},
		Alphabet: []byte{Blank},
		Rules: []Rule{
			{From: "s", Read: []byte{Blank}, To: "s", Write: []byte{Blank}, Dir: []Move{N}},
		},
	}
	if err := mc2.Validate(); err == nil {
		t.Fatal("rule from final state accepted")
	}
	// Accepting state not final.
	mc3 := &Machine{
		T: 1, U: 0, Start: "s",
		Final:    map[State]bool{},
		Accept:   map[State]bool{"a": true},
		Alphabet: []byte{Blank},
	}
	if err := mc3.Validate(); err == nil {
		t.Fatal("accepting non-final state accepted")
	}
	// Missing blank.
	mc4 := &Machine{T: 1, U: 0, Start: "s", Final: map[State]bool{}, Accept: map[State]bool{}, Alphabet: []byte{'0'}}
	if err := mc4.Validate(); err == nil {
		t.Fatal("alphabet without blank accepted")
	}
}

func TestParityMachine(t *testing.T) {
	mc := ParityMachine()
	cases := map[string]bool{
		"":       true,
		"0":      true,
		"1":      false,
		"11":     true,
		"10110":  false,
		"101101": true,
	}
	for in, want := range cases {
		res, err := mc.RunDeterministic([]byte(in), 1000)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if res.Accepted != want {
			t.Fatalf("parity(%q) = %v, want %v", in, res.Accepted, want)
		}
		if res.Stats.ExternalScans(1) != 1 {
			t.Fatalf("parity used %d scans, want 1", res.Stats.ExternalScans(1))
		}
	}
}

func TestZigZagReversals(t *testing.T) {
	for k := 1; k <= 4; k++ {
		mc := ZigZagMachine(k)
		res, err := mc.RunDeterministic([]byte("^0110"), 10000)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Accepted {
			t.Fatalf("k=%d: rejected", k)
		}
		wantRev := 2 * (k - 1)
		if res.Stats.Rev[0] != wantRev {
			t.Fatalf("k=%d: %d reversals, want %d", k, res.Stats.Rev[0], wantRev)
		}
		if res.Stats.ExternalScans(1) != 2*k-1 {
			t.Fatalf("k=%d: %d scans, want %d", k, res.Stats.ExternalScans(1), 2*k-1)
		}
	}
}

func TestCopyMachine(t *testing.T) {
	mc := CopyMachine()
	res, err := mc.RunDeterministic([]byte("10110"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("copy rejected")
	}
	if got := string(res.Final.Tape[1]); got != "10110" {
		t.Fatalf("tape 1 = %q, want %q", got, "10110")
	}
	if res.Stats.Rev[0] != 0 || res.Stats.Rev[1] != 0 {
		t.Fatalf("copy reversed heads: %v", res.Stats.Rev)
	}
}

func TestCoinMachineProbability(t *testing.T) {
	for k := 1; k <= 5; k++ {
		mc := CoinMachine(k)
		p, err := mc.AcceptProbability(nil, 100)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := new(big.Rat).SetFrac64(1, 1<<uint(k))
		if p.Cmp(want) != 0 {
			t.Fatalf("k=%d: Pr = %v, want %v", k, p, want)
		}
	}
}

func TestThreeWayProbability(t *testing.T) {
	mc := ThreeWayMachine()
	p, err := mc.AcceptProbability(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(big.NewRat(2, 3)) != 0 {
		t.Fatalf("Pr = %v, want 2/3", p)
	}
	if mc.MaxBranch() != 3 {
		t.Fatalf("MaxBranch = %d, want 3", mc.MaxBranch())
	}
	if mc.ChoiceModulus() != 6 {
		t.Fatalf("ChoiceModulus = %d, want lcm(1,2,3) = 6", mc.ChoiceModulus())
	}
}

func TestGuessBitProbability(t *testing.T) {
	mc := GuessBitMachine()
	for _, in := range []string{"0", "1"} {
		p, err := mc.AcceptProbability([]byte(in), 100)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cmp(big.NewRat(1, 2)) != 0 {
			t.Fatalf("Pr[accept %q] = %v, want 1/2", in, p)
		}
	}
}

func TestRandomScanProbability(t *testing.T) {
	mc := RandomScanMachine()
	cases := map[string]*big.Rat{
		"":      big.NewRat(1, 1),
		"000":   big.NewRat(1, 1),
		"1":     big.NewRat(1, 2),
		"101":   big.NewRat(1, 4),
		"11011": big.NewRat(1, 16),
	}
	for in, want := range cases {
		p, err := mc.AcceptProbability([]byte(in), 1000)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cmp(want) != 0 {
			t.Fatalf("Pr[accept %q] = %v, want %v", in, p, want)
		}
	}
}

// Lemma 18 / Definition 17: averaging runs over uniform choice
// sequences reproduces the acceptance probability.
func TestChoiceSequencesReproduceProbability(t *testing.T) {
	mc := ThreeWayMachine()
	b := mc.ChoiceModulus() // 6
	accepts := 0
	total := 0
	// The machine halts in one step; one choice suffices.
	for c := 0; c < b; c++ {
		res, err := mc.RunWithChoices(nil, []int{c}, 10)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Accepted {
			accepts++
		}
	}
	if accepts*3 != total*2 {
		t.Fatalf("choice enumeration: %d/%d accepts, want ratio 2/3", accepts, total)
	}
}

func TestRunWithChoicesMultiStep(t *testing.T) {
	mc := CoinMachine(3)
	accepts := 0
	for c0 := 0; c0 < 2; c0++ {
		for c1 := 0; c1 < 2; c1++ {
			for c2 := 0; c2 < 2; c2++ {
				res, err := mc.RunWithChoices(nil, []int{c0, c1, c2}, 10)
				if err != nil {
					t.Fatal(err)
				}
				if res.Accepted {
					accepts++
				}
			}
		}
	}
	if accepts != 1 {
		t.Fatalf("%d accepting choice triples, want 1", accepts)
	}
}

func TestRunDeterministicErrors(t *testing.T) {
	mc := CoinMachine(1)
	if _, err := mc.RunDeterministic(nil, 10); !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", err)
	}
	stuck := &Machine{
		T: 1, U: 0, Start: "s",
		Final:    map[State]bool{"f": true},
		Accept:   map[State]bool{"f": true},
		Alphabet: []byte{Blank},
	}
	if _, err := stuck.RunDeterministic(nil, 10); !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
	loop := &Machine{
		T: 1, U: 0, Start: "s",
		Final:    map[State]bool{},
		Accept:   map[State]bool{},
		Alphabet: []byte{Blank},
		Rules: []Rule{
			{From: "s", Read: []byte{Blank}, To: "s", Write: []byte{Blank}, Dir: []Move{N}},
		},
	}
	if _, err := loop.RunDeterministic(nil, 10); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if _, err := loop.AcceptProbability(nil, 10); err == nil {
		t.Fatal("infinite run not detected by AcceptProbability")
	}
}

func TestExploreRunsCountsAllRuns(t *testing.T) {
	mc := CoinMachine(2)
	runs := 0
	accepts := 0
	err := mc.ExploreRuns(nil, 100, 100, func(acc bool, tk *Tracker) error {
		runs++
		if acc {
			accepts++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Runs: rej (1st flip), rej (2nd flip), acc — three leaves.
	if runs != 3 || accepts != 1 {
		t.Fatalf("runs = %d accepts = %d, want 3/1", runs, accepts)
	}
}

func TestVerifyBounded(t *testing.T) {
	mc := ZigZagMachine(2)
	// 3 scans needed; r = 3 passes, r = 2 fails.
	if err := mc.VerifyBounded([]byte("^01"), 3, 10, 1000, 10); err != nil {
		t.Fatalf("r=3 rejected: %v", err)
	}
	if err := mc.VerifyBounded([]byte("^01"), 2, 10, 1000, 10); err == nil {
		t.Fatal("r=2 accepted")
	}
	// Internal space of GuessBit: 1 cell; s = 1 passes, s = 0 fails.
	gb := GuessBitMachine()
	if err := gb.VerifyBounded([]byte("1"), 1, 1, 100, 10); err != nil {
		t.Fatalf("s=1 rejected: %v", err)
	}
	if err := gb.VerifyBounded([]byte("1"), 1, 0, 100, 10); err == nil {
		t.Fatal("s=0 accepted")
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	mc := ParityMachine()
	a := mc.NewConfig([]byte("01"))
	b := mc.NewConfig([]byte("10"))
	if a.Key() == b.Key() {
		t.Fatal("distinct configs share a key")
	}
	c := a.Clone()
	if a.Key() != c.Key() {
		t.Fatal("clone changed the key")
	}
	c.Pos[0] = 1
	if a.Key() == c.Key() {
		t.Fatal("position not in key")
	}
}

func TestMoveString(t *testing.T) {
	if L.String() != "L" || N.String() != "N" || R.String() != "R" {
		t.Fatal("Move.String mismatch")
	}
	if !strings.Contains(Move(5).String(), "5") {
		t.Fatal("unknown move formatting")
	}
}

func TestTrackerSpaceIncludesReach(t *testing.T) {
	// A head that only moves right over blanks uses cells without
	// writing; Space must count them.
	mc := &Machine{
		T: 1, U: 0, Start: "s",
		Final:    map[State]bool{"f": true},
		Accept:   map[State]bool{"f": true},
		Alphabet: []byte{Blank},
		Rules: []Rule{
			{From: "s", Read: []byte{Blank}, To: "t", Write: []byte{Blank}, Dir: []Move{R}},
			{From: "t", Read: []byte{Blank}, To: "f", Write: []byte{Blank}, Dir: []Move{R}},
		},
	}
	res, err := mc.RunDeterministic(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Space[0] != 3 {
		t.Fatalf("Space = %d, want 3 (cells 0,1,2 reached)", res.Stats.Space[0])
	}
}
