package relalg

// sharded_scan.go distributes the two operator scans that are not
// sorts — the difference's anti-merge and the product's paired scan —
// across shard-local machines, closing the "only sorts distribute"
// gap. The sorted left input is partitioned into contiguous run ranges
// by the same fixed-count rule the sort's distribution uses
// (algorithms.RunPlanner under the evaluator's run-formation budget)
// and the ranges are assigned by the same shard.Split rule; each shard
// streams its left range against a broadcast copy of the right side on
// its own machine, running exactly the coordinator's scan body
// (antiMergeTapes / productTapes). Both scans emit output in left-input
// order, so the per-shard outputs are disjoint and concatenate to the
// unsharded bytes: the anti-merge combine is a degenerate k-way merge
// over already-disjoint ordered tapes, the product combine a plain
// concatenation sweep. Shard attempts sit on the same retry →
// coordinator-fallback path as sort attempts: recovery may move the
// attempt census, never a byte.

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// sleepCtx waits for d or until ctx is cancelled, whichever comes
// first (shard's backoff sleep, for scan attempt retries).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Scan op identifiers as recorded in ScanReport.Op.
const (
	ScanOpDiff    = "diff"
	ScanOpProduct = "product"
)

// ScanReport is the resource census of one sharded operator scan, the
// scan-side twin of shard.SortReport: the coordinator's partition scan
// (left input plus the broadcast read of the right side), one report
// per shard-local machine, and the combining machine.
type ScanReport struct {
	Op    string // ScanOpDiff or ScanOpProduct
	Items int    // left-side items partitioned across the shards
	Bytes int64  // left payload bytes ('#' separators included)
	Runs  int    // left-side runs under the partition rule

	Distribute core.Resources   // the coordinator's partition + broadcast scan
	Shards     []core.Resources // one report per shard-local scan, in shard order
	Merge      core.Resources   // the combining machine (merge or concat sweep)

	// The recovery census, exactly as in shard.SortReport.
	Attempts  int
	Fallbacks int
	Recovered int
}

// Rollup aggregates the per-shard reports, shard.SortReport style.
func (r ScanReport) Rollup() shard.Agg {
	a := shard.Agg{Shards: len(r.Shards)}
	for _, res := range r.Shards {
		a.SumScans += res.Scans()
		a.SumMemoryBits += res.PeakMemoryBits
		a.SumSteps += res.Steps
		if res.Scans() > a.MaxScans {
			a.MaxScans = res.Scans()
		}
		if res.PeakMemoryBits > a.MaxMemoryBits {
			a.MaxMemoryBits = res.PeakMemoryBits
		}
		if res.Steps > a.MaxSteps {
			a.MaxSteps = res.Steps
		}
	}
	return a
}

// CriticalPathSteps is distribute → slowest shard → combine, the same
// wall-clock stand-in as shard.SortReport.CriticalPathSteps.
func (r ScanReport) CriticalPathSteps() int64 {
	return r.Distribute.Steps + r.Rollup().MaxSteps + r.Merge.Steps
}

// ScanPanicError is a panic recovered from a shard-local scan attempt,
// the scan-side twin of shard.SortPanicError: the attempt counts as
// failed and the retry/fallback machinery takes over.
type ScanPanicError struct {
	Shard int
	Value any
	Stack []byte
}

func (e *ScanPanicError) Error() string {
	return fmt.Sprintf("relalg: shard %d scan panicked: %v", e.Shard, e.Value)
}

// Unwrap exposes a panic value that was itself an error.
func (e *ScanPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ShardFault marks the recovered scan panic as a failed shard attempt.
func (e *ScanPanicError) ShardFault() {}

// scanShards resolves how many shard machines operator scans use: the
// built-in sharded path's count, or the planner's fleet ceiling in
// plan mode. A custom Launch only overrides sorts, so scans stay on
// the coordinator there, and the zero evaluator keeps the historical
// single-machine scans bit for bit.
func (ev Evaluator) scanShards() int {
	if ev.Launch != nil {
		return 0
	}
	if ev.Plan != nil {
		if n := ev.Plan.Budget.MaxShards; n >= 1 {
			return n
		}
		return 1
	}
	if ev.Shards >= 1 {
		return ev.Shards
	}
	return 0
}

// scanShardCount is the shard count of one operator scan: the
// planner's per-input choice in plan mode (clamped to the left
// input's runs), the evaluator's fixed count otherwise.
func (c *evalCtx) scanShardCount(l int) int {
	n := c.ev.scanShards()
	if n >= 1 && c.ev.Plan != nil {
		data := c.m.Tape(l).Contents()
		n = c.ev.Plan.ChooseScan(countItems(data), int64(len(data))).Shards
	}
	return n
}

// antiMergeOp routes the difference's anti-merge: shard machines on
// the sharded path, the coordinator's own scan otherwise.
func (c *evalCtx) antiMergeOp(l, r, dst int) error {
	if n := c.scanShardCount(l); n >= 1 {
		return c.shardedScan(ScanOpDiff, l, r, dst, n)
	}
	return c.antiMerge(l, r, dst)
}

// productOp routes the product's paired scan, like antiMergeOp.
func (c *evalCtx) productOp(l, r, dst int) error {
	if n := c.scanShardCount(l); n >= 1 {
		return c.shardedScan(ScanOpProduct, l, r, dst, n)
	}
	return c.product(l, r, dst)
}

// shardedScan runs one operator scan (op = ScanOpDiff or ScanOpProduct)
// across shards shard-local machines and installs the combined output
// on dst of the query machine via SwapTape — the scan-side analogue of
// shard.Sort.SortTape.
func (c *evalCtx) shardedScan(op string, l, r, dst, shards int) error {
	outs, rep, err := c.scanShardsRun(op, l, r, shards)
	if err != nil {
		return err
	}

	// Phase 3 — combine. Anti-merge outputs are sorted and disjoint
	// (contiguous ranges of a sorted, deduplicated left input), so the
	// k-way merge degenerates to their concatenation; product outputs
	// are in left order but not item-sorted, so they concatenate on a
	// plain sweep machine instead.
	mm := core.NewMachineOpts(shards+1, c.ev.Seed, c.ev.TapeOpts)
	defer mm.Close()
	for i, out := range outs {
		mm.SetTape(i+1, out)
	}
	if op == ScanOpDiff {
		srcs := make([]int, shards)
		for i := range outs {
			srcs[i] = i + 1
		}
		if err := algorithms.MergeTapes(mm, 0, srcs, false); err != nil {
			return err
		}
	} else {
		out := mm.Tape(0)
		for i := range outs {
			data, err := mm.Tape(i + 1).ScanBytes()
			if err != nil {
				return err
			}
			if err := out.WriteBlock(data); err != nil {
				return err
			}
		}
	}
	rep.Merge = mm.Resources()
	c.m.SwapTape(dst, mm.Tape(0).Contents())
	if c.ev.Report != nil {
		c.ev.Report.recordScan(rep)
	}
	return nil
}

// shardedScanRuns is the merge-free variant for pipelined consumers:
// the per-shard outputs are returned as-is (for ScanOpDiff they are
// sorted, disjoint runs) and the combine machine never runs — the
// report's Merge stays zero.
func (c *evalCtx) shardedScanRuns(op string, l, r, shards int) ([][]byte, error) {
	outs, rep, err := c.scanShardsRun(op, l, r, shards)
	if err != nil {
		return nil, err
	}
	if c.ev.Report != nil {
		c.ev.Report.recordScan(rep)
	}
	return outs, nil
}

// scanShardsRun is phases 1+2 of a sharded operator scan: the
// coordinator's partition + broadcast scan, then the concurrent
// shard-local scans.
func (c *evalCtx) scanShardsRun(op string, l, r, shards int) ([][]byte, ScanReport, error) {
	left := c.m.Tape(l).Contents()
	right := c.m.Tape(r).Contents()
	rep := ScanReport{Op: op, Bytes: int64(len(left))}

	// Phase 1 — partition: the coordinator scans the left input once,
	// cutting it at the run boundaries the sort engine would form, and
	// sweeps the right side once to model broadcasting it to the fleet.
	dist := core.NewMachineOpts(2, c.ev.Seed, c.ev.TapeOpts)
	defer dist.Close()
	dist.SetInput(left)
	dist.SetTape(1, right)
	in := dist.Tape(0)
	if err := in.Rewind(); err != nil {
		return nil, rep, err
	}
	var (
		runStarts []int
		pos       int
		planner   = algorithms.RunPlanner{Budget: c.ev.scanRunBits()}
	)
	for {
		item, ok, err := algorithms.ReadItem(in, dist.Mem(), "item.relalg.partition")
		if err != nil {
			return nil, rep, err
		}
		if !ok {
			break
		}
		if planner.Next(int64(len(item))) {
			runStarts = append(runStarts, pos)
		}
		pos += len(item) + 1
		rep.Items++
	}
	if _, err := dist.Tape(1).ScanBytes(); err != nil {
		return nil, rep, err
	}
	rep.Runs = len(runStarts)
	rep.Distribute = dist.Resources()

	// Phase 2 — shard-local scans: contiguous run ranges of the left
	// input, each streamed against the broadcast right side on its own
	// machine, concurrently, with retry and coordinator fallback.
	ranges := shard.Split(rep.Runs, shards)
	bound := func(runIdx int) int {
		if runIdx >= rep.Runs {
			return len(left)
		}
		return runStarts[runIdx]
	}
	outs := make([][]byte, shards)
	reps := make([]core.Resources, shards)
	errs := make([]error, shards)
	var (
		attempts  atomic.Int64
		fallbacks atomic.Int64
		recovered atomic.Int64
	)
	runCtx, cancel := context.WithCancel(c.ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(rg shard.Range) {
			defer wg.Done()
			out, res, err := c.scanShard(runCtx, op, rg, left[bound(rg.Lo):bound(rg.Hi)], right,
				&attempts, &fallbacks, &recovered)
			outs[rg.Shard], reps[rg.Shard], errs[rg.Shard] = out, res, err
			if err != nil {
				cancel()
			}
		}(rg)
	}
	wg.Wait()
	rep.Shards = reps
	rep.Attempts = int(attempts.Load())
	rep.Fallbacks = int(fallbacks.Load())
	rep.Recovered = int(recovered.Load())
	for _, err := range errs {
		if err != nil {
			return nil, rep, err
		}
	}
	return outs, rep, nil
}

// scanShard runs one shard's scan attempt loop: inject → recover →
// retry → coordinator fallback, mirroring shard.Sort's sortShard. The
// shard output is a pure function of (op, left range, right side), so
// recovery cannot move a byte.
func (c *evalCtx) scanShard(ctx context.Context, op string, rg shard.Range, left, right []byte,
	attempts, fallbacks, recovered *atomic.Int64) ([]byte, core.Resources, error) {
	job := ScanJob{
		Op:    op,
		Left:  left,
		Right: right,
		Seed:  trials.Seed(c.ev.Seed, rg.Shard+1),
		Tape:  c.ev.TapeOpts,
	}
	// attemptOnce mirrors shard.Sort's sortShard: chaos (Inject) and
	// the transport seam (ExecScan) are consulted on budgeted attempts
	// only — the coordinator's fallback always runs the job itself,
	// chaos-free and in-process.
	attemptOnce := func(attempt int, inject bool) (out []byte, res core.Resources, err error) {
		defer func() {
			if p := recover(); p != nil {
				recovered.Add(1)
				err = &ScanPanicError{Shard: rg.Shard, Value: p, Stack: debug.Stack()}
			}
		}()
		if inject && c.ev.Inject != nil {
			if ierr := c.ev.Inject(rg.Shard, attempt); ierr != nil {
				return nil, core.Resources{}, ierr
			}
		}
		if inject && c.ev.ExecScan != nil {
			return c.ev.ExecScan(ctx, rg.Shard, attempt, job)
		}
		return job.Execute()
	}
	budget := c.ev.Retry.MaxAttempts
	if budget < 1 {
		budget = 1
	}
	for attempt := 1; attempt <= budget; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, core.Resources{}, err
		}
		attempts.Add(1)
		out, res, err := attemptOnce(attempt, true)
		if err == nil {
			return out, res, nil
		}
		if attempt < budget {
			if serr := sleepCtx(ctx, c.ev.Retry.Backoff(attempt)); serr != nil {
				return nil, core.Resources{}, serr
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, core.Resources{}, err
	}
	fallbacks.Add(1)
	attempts.Add(1)
	return attemptOnce(budget+1, false)
}
