package relalg

import (
	"math/rand"
	"testing"

	"extmem/internal/core"
	"extmem/internal/problems"
)

// Every streaming operator must release its internal-memory regions
// when it finishes: a region that stays charged after one operator
// inflates the peak-memory report of every later operator in the
// query (the meter-leak class of bug fixed in this package). After
// EvalST the meter must be back to zero.
func TestEvalSTReleasesAllMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []Expr{
		Scan{Rel: "R1"},
		Project{Cols: []string{"x"}, In: Scan{Rel: "R1"}},
		Select{Pred: ConstEq{Col: "x", Const: "01"}, In: Scan{Rel: "R1"}},
		Union{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}},
		Diff{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}},
		Product{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}},
		SymmetricDifference("R1", "R2"),
	}
	for trial := 0; trial < 6; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(6, 6, rng)
		} else {
			in = problems.GenSetNo(6, 6, rng)
		}
		db := InstanceDB(in)
		for _, q := range queries {
			m := core.NewMachine(NumQueryTapes, 1)
			if _, err := EvalST(q, db, m); err != nil {
				t.Fatalf("%v: %v", q, err)
			}
			if cur := m.Mem().Current(); cur != 0 {
				t.Errorf("%v left %d bits charged after EvalST (regions %v)",
					q, cur, m.Mem().Regions())
			}
		}
	}
}

// The engine-backed sortDedup must keep every streaming result
// deduplicated and sorted — the invariant the rest of the evaluator
// (antiMerge, equality of encoded tapes) depends on.
func TestSortDedupInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		in := problems.Instance{
			V: make([]string, 1+rng.Intn(40)),
			W: make([]string, 1+rng.Intn(40)),
		}
		for i := range in.V {
			in.V[i] = string([]byte{'0' + byte(rng.Intn(2)), '0' + byte(rng.Intn(2))})
		}
		for i := range in.W {
			in.W[i] = string([]byte{'0' + byte(rng.Intn(2)), '0' + byte(rng.Intn(2))})
		}
		db := InstanceDB(in)
		m := core.NewMachine(NumQueryTapes, 1)
		r, err := EvalST(Union{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}}, db, m)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		prev := ""
		for i, tp := range r.Tuples {
			k := tp.key()
			if seen[k] {
				t.Fatalf("duplicate tuple %q in result", k)
			}
			seen[k] = true
			if i > 0 && k < prev {
				t.Fatalf("result not sorted: %q after %q", k, prev)
			}
			prev = k
		}
		want, err := Eval(Union{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}}, db)
		if err != nil {
			t.Fatal(err)
		}
		if !r.EqualSet(want) {
			t.Fatalf("streaming union = %v, reference %v", r.Tuples, want.Tuples)
		}
	}
}

// Tuple encode/decode must round-trip, including empty fields and
// empty tuples (decodeTuple replaces strings.Split on the hot path).
func TestTupleCodecRoundTrip(t *testing.T) {
	cases := []Tuple{
		{""},
		{"01"},
		{"01", "10"},
		{"", "10", ""},
		{"a", "", "b", "c"},
	}
	for _, tp := range cases {
		enc := encodeTuple(tp)
		got := decodeTuple(enc)
		if got.key() != tp.key() || len(got) != len(tp) {
			t.Fatalf("round trip %v -> %q -> %v", tp, enc, got)
		}
	}
	if got := decodeTuple(nil); len(got) != 1 || got[0] != "" {
		t.Fatalf("decodeTuple(nil) = %v, want [\"\"]", got)
	}
}

func TestTupleEncodedLen(t *testing.T) {
	for _, tp := range []Tuple{{}, {""}, {"01"}, {"01", "1"}, {"", ""}} {
		if got, want := tp.encodedLen(), len(encodeTuple(tp)); got != want {
			t.Fatalf("encodedLen(%v) = %d, want %d", tp, got, want)
		}
	}
}
