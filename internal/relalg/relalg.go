package relalg

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"extmem/internal/problems"
)

// A Schema names the attributes of a relation.
type Schema []string

// Col returns the index of the named attribute, or −1.
func (s Schema) Col(name string) int {
	for i, a := range s {
		if a == name {
			return i
		}
	}
	return -1
}

// Equal reports whether two schemas are identical.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// A Tuple is a row; fields are strings and must not contain the tape
// encoding separators '|' and '#'.
type Tuple []string

// appendKey appends the tuple's canonical set-semantics key (its tape
// encoding) to dst, allocation-free when dst has capacity; hot paths
// reuse one buffer across tuples instead of strings.Join per call.
func (t Tuple) appendKey(dst []byte) []byte {
	for i, f := range t {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = append(dst, f...)
	}
	return dst
}

// encodedLen is the length of the tuple's tape encoding.
func (t Tuple) encodedLen() int {
	n := 0
	for _, f := range t {
		n += len(f) + 1
	}
	if n > 0 {
		n--
	}
	return n
}

// key canonicalizes a tuple for set semantics.
func (t Tuple) key() string { return string(t.appendKey(nil)) }

// A Relation is a named set of tuples over a schema.
type Relation struct {
	Name   string
	Schema Schema
	Tuples []Tuple
}

// Sorted returns the tuples sorted by their encoded form (for
// deterministic comparison). Keys are materialized once per tuple
// instead of twice per comparison.
func (r *Relation) Sorted() []Tuple {
	out := append([]Tuple(nil), r.Tuples...)
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].key()
	}
	sort.Sort(&tuplesByKey{out, keys})
	return out
}

type tuplesByKey struct {
	tuples []Tuple
	keys   []string
}

func (s *tuplesByKey) Len() int           { return len(s.tuples) }
func (s *tuplesByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *tuplesByKey) Swap(i, j int) {
	s.tuples[i], s.tuples[j] = s.tuples[j], s.tuples[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// EqualSet reports whether two relations hold the same set of tuples.
// Key lookups reuse one buffer (Go's map-from-[]byte optimization
// keeps them allocation-free); only insertions allocate.
func (r *Relation) EqualSet(o *Relation) bool {
	var buf []byte
	matched := make(map[string]bool, len(r.Tuples)) // key of r → seen in o yet?
	for _, t := range r.Tuples {
		buf = t.appendKey(buf[:0])
		if _, ok := matched[string(buf)]; !ok {
			matched[string(buf)] = false
		}
	}
	seen := 0
	for _, t := range o.Tuples {
		buf = t.appendKey(buf[:0])
		m, ok := matched[string(buf)]
		if !ok {
			return false
		}
		if !m {
			matched[string(buf)] = true
			seen++
		}
	}
	return seen == len(matched)
}

// DB maps relation names to relations.
type DB map[string]*Relation

// Size returns the total input size: the number of encoded symbols of
// all relations (the N of Theorem 11).
func (db DB) Size() int {
	n := 0
	for _, r := range db {
		for _, t := range r.Tuples {
			n += t.encodedLen() + 1
		}
	}
	return n
}

// Predicate is a selection predicate evaluated per tuple.
type Predicate interface {
	Eval(s Schema, t Tuple) (bool, error)
	String() string
}

// ColEq compares two columns for equality.
type ColEq struct{ A, B string }

// Eval implements Predicate.
func (p ColEq) Eval(s Schema, t Tuple) (bool, error) {
	i, j := s.Col(p.A), s.Col(p.B)
	if i < 0 || j < 0 {
		return false, fmt.Errorf("relalg: unknown column in %s", p)
	}
	return t[i] == t[j], nil
}

func (p ColEq) String() string { return p.A + " = " + p.B }

// ConstEq compares a column against a constant.
type ConstEq struct {
	Col   string
	Const string
}

// Eval implements Predicate.
func (p ConstEq) Eval(s Schema, t Tuple) (bool, error) {
	i := s.Col(p.Col)
	if i < 0 {
		return false, fmt.Errorf("relalg: unknown column %q", p.Col)
	}
	return t[i] == p.Const, nil
}

func (p ConstEq) String() string { return p.Col + " = " + quote(p.Const) }

// Not negates a predicate.
type Not struct{ P Predicate }

// Eval implements Predicate.
func (p Not) Eval(s Schema, t Tuple) (bool, error) {
	v, err := p.P.Eval(s, t)
	return !v, err
}

func (p Not) String() string { return "not(" + p.P.String() + ")" }

// And conjoins predicates.
type And struct{ Ps []Predicate }

// Eval implements Predicate.
func (p And) Eval(s Schema, t Tuple) (bool, error) {
	for _, q := range p.Ps {
		v, err := q.Eval(s, t)
		if err != nil || !v {
			return false, err
		}
	}
	return true, nil
}

func (p And) String() string {
	parts := make([]string, len(p.Ps))
	for i, q := range p.Ps {
		parts[i] = q.String()
	}
	return strings.Join(parts, " and ")
}

func quote(s string) string { return "'" + s + "'" }

// Expr is a relational algebra expression.
type Expr interface {
	String() string
}

// Scan reads a base relation.
type Scan struct{ Rel string }

func (e Scan) String() string { return e.Rel }

// Select filters by a predicate (σ).
type Select struct {
	Pred Predicate
	In   Expr
}

func (e Select) String() string { return "σ[" + e.Pred.String() + "](" + e.In.String() + ")" }

// Project keeps the named columns (π), with set-semantics
// deduplication.
type Project struct {
	Cols []string
	In   Expr
}

func (e Project) String() string {
	return "π[" + strings.Join(e.Cols, ",") + "](" + e.In.String() + ")"
}

// Union is set union (schemas must match).
type Union struct{ L, R Expr }

func (e Union) String() string { return "(" + e.L.String() + " ∪ " + e.R.String() + ")" }

// Diff is set difference (schemas must match).
type Diff struct{ L, R Expr }

func (e Diff) String() string { return "(" + e.L.String() + " − " + e.R.String() + ")" }

// Product is the cartesian product; attribute names are prefixed with
// the side tags to stay unique.
type Product struct {
	L, R             Expr
	LPrefix, RPrefix string // optional prefixes; default "l." / "r."
}

func (e Product) String() string { return "(" + e.L.String() + " × " + e.R.String() + ")" }

// Rename renames the columns of its input.
type Rename struct {
	Cols []string
	In   Expr
}

func (e Rename) String() string {
	return "ρ[" + strings.Join(e.Cols, ",") + "](" + e.In.String() + ")"
}

// SymmetricDifference returns Theorem 11(b)'s hard query
// Q' = (R1 − R2) ∪ (R2 − R1).
func SymmetricDifference(r1, r2 string) Expr {
	return Union{L: Diff{L: Scan{Rel: r1}, R: Scan{Rel: r2}}, R: Diff{L: Scan{Rel: r2}, R: Scan{Rel: r1}}}
}

// InstanceDB encodes a SET-EQUALITY instance as a database of two
// unary relations R1 = {v_1,…,v_m} and R2 = {v'_1,…,v'_m} — the
// reduction of Theorem 11(b): the instance is a yes-instance iff
// SymmetricDifference("R1","R2") evaluates to the empty relation.
func InstanceDB(in problems.Instance) DB {
	r1 := &Relation{Name: "R1", Schema: Schema{"x"}}
	for _, v := range in.V {
		r1.Tuples = append(r1.Tuples, Tuple{v})
	}
	r2 := &Relation{Name: "R2", Schema: Schema{"x"}}
	for _, v := range in.W {
		r2.Tuples = append(r2.Tuples, Tuple{v})
	}
	return DB{"R1": r1, "R2": r2}
}

// ErrSchema is returned on schema mismatches.
var ErrSchema = errors.New("relalg: schema mismatch")

// Eval is the reference in-memory evaluator with set semantics.
func Eval(e Expr, db DB) (*Relation, error) {
	switch e := e.(type) {
	case Scan:
		r, ok := db[e.Rel]
		if !ok {
			return nil, fmt.Errorf("relalg: unknown relation %q", e.Rel)
		}
		return dedup(&Relation{Name: e.Rel, Schema: r.Schema, Tuples: r.Tuples}), nil
	case Select:
		in, err := Eval(e.In, db)
		if err != nil {
			return nil, err
		}
		out := &Relation{Schema: in.Schema}
		for _, t := range in.Tuples {
			ok, err := e.Pred.Eval(in.Schema, t)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Tuples = append(out.Tuples, t)
			}
		}
		return out, nil
	case Project:
		in, err := Eval(e.In, db)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(e.Cols))
		for i, c := range e.Cols {
			if idx[i] = in.Schema.Col(c); idx[i] < 0 {
				return nil, fmt.Errorf("relalg: unknown column %q", c)
			}
		}
		out := &Relation{Schema: Schema(e.Cols)}
		for _, t := range in.Tuples {
			nt := make(Tuple, len(idx))
			for i, j := range idx {
				nt[i] = t[j]
			}
			out.Tuples = append(out.Tuples, nt)
		}
		return dedup(out), nil
	case Union:
		l, r, err := evalPair(e.L, e.R, db)
		if err != nil {
			return nil, err
		}
		if !l.Schema.Equal(r.Schema) {
			return nil, fmt.Errorf("%w: %v vs %v", ErrSchema, l.Schema, r.Schema)
		}
		out := &Relation{Schema: l.Schema, Tuples: append(append([]Tuple{}, l.Tuples...), r.Tuples...)}
		return dedup(out), nil
	case Diff:
		l, r, err := evalPair(e.L, e.R, db)
		if err != nil {
			return nil, err
		}
		if !l.Schema.Equal(r.Schema) {
			return nil, fmt.Errorf("%w: %v vs %v", ErrSchema, l.Schema, r.Schema)
		}
		drop := map[string]bool{}
		for _, t := range r.Tuples {
			drop[t.key()] = true
		}
		out := &Relation{Schema: l.Schema}
		for _, t := range l.Tuples {
			if !drop[t.key()] {
				out.Tuples = append(out.Tuples, t)
			}
		}
		return dedup(out), nil
	case Product:
		l, r, err := evalPair(e.L, e.R, db)
		if err != nil {
			return nil, err
		}
		out := &Relation{Schema: productSchema(e, l.Schema, r.Schema)}
		for _, lt := range l.Tuples {
			for _, rt := range r.Tuples {
				out.Tuples = append(out.Tuples, append(append(Tuple{}, lt...), rt...))
			}
		}
		return dedup(out), nil
	case Rename:
		in, err := Eval(e.In, db)
		if err != nil {
			return nil, err
		}
		if len(e.Cols) != len(in.Schema) {
			return nil, fmt.Errorf("%w: rename arity %d vs %d", ErrSchema, len(e.Cols), len(in.Schema))
		}
		return &Relation{Schema: Schema(e.Cols), Tuples: in.Tuples}, nil
	case EquiJoin:
		return Eval(e.expand(), db)
	case SemiJoin:
		ex, err := e.expand(db)
		if err != nil {
			return nil, err
		}
		return Eval(ex, db)
	default:
		return nil, fmt.Errorf("relalg: unknown expression %T", e)
	}
}

func evalPair(l, r Expr, db DB) (*Relation, *Relation, error) {
	lr, err := Eval(l, db)
	if err != nil {
		return nil, nil, err
	}
	rr, err := Eval(r, db)
	if err != nil {
		return nil, nil, err
	}
	return lr, rr, nil
}

func productSchema(e Product, l, r Schema) Schema {
	lp, rp := e.LPrefix, e.RPrefix
	if lp == "" {
		lp = "l."
	}
	if rp == "" {
		rp = "r."
	}
	out := make(Schema, 0, len(l)+len(r))
	for _, a := range l {
		out = append(out, lp+a)
	}
	for _, a := range r {
		out = append(out, rp+a)
	}
	return out
}

func dedup(r *Relation) *Relation {
	seen := make(map[string]bool, len(r.Tuples))
	out := &Relation{Name: r.Name, Schema: r.Schema}
	var buf []byte
	for _, t := range r.Tuples {
		buf = t.appendKey(buf[:0])
		if !seen[string(buf)] {
			seen[string(buf)] = true
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}
