// Package relalg implements the relational algebra of Theorem 11: a
// query AST (selection, projection, union, difference, product,
// equi-join, rename), a reference in-memory evaluator with set
// semantics, and a streaming evaluator (EvalST) that runs every
// operator as scan/sort passes on the instrumented ST machine of
// internal/core.
//
// Theorem 11(a) states that every relational-algebra query can be
// evaluated in ST(O(log N), O(1), O(1)) data complexity — O(log N)
// sequential scans with a constant number of tuples in internal
// memory. The streaming evaluator realizes the bound operator by
// operator: inputs are kept as sorted '#'-item streams on tapes, and
// the set-semantics sort-with-dedup steps run on the k-way engine of
// internal/algorithms.Sorter (dedup folded into the final merge
// pass), over the evaluator's scratch tapes plus up to two free pool
// tapes. Experiment E6 measures the scans/log₂N ratio across input
// sizes.
//
// The hard query of Theorem 11(b), the symmetric difference
// Q' = (R1 − R2) ∪ (R2 − R1), is provided by SymmetricDifference: its
// emptiness decides SET-EQUALITY, which transfers the Theorem 6
// Ω(log N) lower bound to relational query evaluation — no evaluator
// in the o(log N)-scan, O(N^¼/log N)-memory regime can exist, even
// with Las Vegas randomization.
//
// Internal-memory discipline: every buffered tuple and counter is
// charged to the machine's meter, and every operator frees its
// regions on exit (the test suite asserts meter == 0 after each one),
// so the reported peak is the true O(1)-tuples bound of the theorem.
package relalg
