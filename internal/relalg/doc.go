// Package relalg implements the relational algebra of Theorem 11: a
// query AST (selection, projection, union, difference, product,
// equi-join, rename), a reference in-memory evaluator with set
// semantics, and a streaming evaluator (EvalST) that runs every
// operator as scan/sort passes on the instrumented ST machine of
// internal/core.
//
// Theorem 11(a) states that every relational-algebra query can be
// evaluated in ST(O(log N), O(1), O(1)) data complexity — O(log N)
// sequential scans with a constant number of tuples in internal
// memory. The streaming evaluator realizes the bound operator by
// operator: inputs are kept as sorted '#'-item streams on tapes, and
// the set-semantics sort-with-dedup steps run on the k-way engine of
// internal/algorithms.Sorter (dedup folded into the final merge
// pass), over the evaluator's scratch tapes plus up to two free pool
// tapes. Experiment E6 measures the scans/log₂N ratio across input
// sizes.
//
// The hard query of Theorem 11(b), the symmetric difference
// Q' = (R1 − R2) ∪ (R2 − R1), is provided by SymmetricDifference: its
// emptiness decides SET-EQUALITY, which transfers the Theorem 6
// Ω(log N) lower bound to relational query evaluation — no evaluator
// in the o(log N)-scan, O(N^¼/log N)-memory regime can exist, even
// with Las Vegas randomization.
//
// Internal-memory discipline: every buffered tuple and counter is
// charged to the machine's meter, and every operator frees its
// regions on exit (the test suite asserts meter == 0 after each one),
// so the reported peak is the true O(1)-tuples bound of the theorem.
//
// # Sharded query evaluation
//
// Evaluator puts the same pipeline on the sharded execution layer:
// with Shards >= 1 every operator sort runs on the run-partitioned
// path of internal/shard — the coordinator cuts the tape's item
// stream at the engine's own fixed-count run boundaries, contiguous
// run ranges go to shard-local machines (each with its own tape set
// and meter), and algorithms.MergeTapes k-way merges the shard
// outputs back onto the query machine's tape, folding the
// set-semantics dedup into that final write. A sorted, deduplicated
// stream is canonical, so the relation each operator leaves behind —
// and therefore the query answer — is byte-identical at every shard
// count; the per-shard (r, s, t) census of every operator sort is
// collected in QueryReport with max/sum rollups and a critical-path
// view. The execution shape is injected in the trials.Launcher style
// (algorithms.SortLauncher; the Launch field accepts any
// implementation, nil plus Shards == 0 is the historical
// single-machine engine, bit for bit), and Evaluator.Sorted and
// Evaluator.EqualSet expose the machine-backed counterparts of
// Relation.Sorted and Relation.EqualSet on the same path. Experiment
// E19 tables the resulting shards × fan-in frontier; native fuzz
// targets (fuzz_test.go) drive arbitrary tuple sets and execution
// shapes against a stdlib-sort reference.
package relalg
