package relalg

import (
	"math/rand"
	"reflect"
	"testing"

	"extmem/internal/core"
	"extmem/internal/plan"
	"extmem/internal/problems"
)

// plannerBudgets spans the envelope corners the differential suite
// drives the planner through: starved, mid-size and generous.
func plannerBudgets() []plan.Budget {
	return []plan.Budget{
		{MemoryBits: 128, Tapes: 4, MaxShards: 1},
		{MemoryBits: 256, Tapes: 6, MaxShards: 2},
		{MemoryBits: 1024, Tapes: 6, MaxShards: 4},
		{MemoryBits: 1 << 16, Tapes: 12, MaxShards: 8},
	}
}

// The planner's standing invariant: whatever shape it chooses, the
// query result is bit-for-bit the unsharded legacy engine's, for every
// operator plan under every budget, with the meter back at zero.
func TestPlannedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 3; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(8+trial*12, 8, rng)
		} else {
			in = problems.GenSetNo(8+trial*12, 8, rng)
		}
		db := InstanceDB(in)
		for _, q := range queryPlans() {
			ref, err := EvalST(q, db, core.NewMachine(NumQueryTapes, 1))
			if err != nil {
				t.Fatalf("%v: %v", q, err)
			}
			legacy, err := Eval(q, db)
			if err != nil {
				t.Fatalf("%v: %v", q, err)
			}
			for _, budget := range plannerBudgets() {
				if err := budget.Validate(); err != nil {
					t.Fatal(err)
				}
				rep := &QueryReport{}
				m := core.NewMachine(NumQueryTapes, 1)
				got, err := Evaluator{Plan: plan.Auto(budget), Report: rep}.EvalST(nil, q, db, m)
				if err != nil {
					t.Fatalf("%v budget=%+v: %v", q, budget, err)
				}
				if !reflect.DeepEqual(got.Tuples, ref.Tuples) {
					t.Fatalf("%v budget=%+v: planned result differs from the engine", q, budget)
				}
				if !got.EqualSet(legacy) {
					t.Fatalf("%v budget=%+v: planned result differs from the legacy evaluator", q, budget)
				}
				if cur := m.Mem().Current(); cur != 0 {
					t.Errorf("%v budget=%+v: %d bits still charged (regions %v)",
						q, budget, cur, m.Mem().Regions())
				}
				if len(rep.Sorts) == 0 {
					t.Errorf("%v budget=%+v: no sort report from the planned path", q, budget)
				}
				for _, sr := range rep.Sorts {
					if len(sr.Shards) > budget.MaxShards {
						t.Errorf("%v: a planned sort ran %d shards over the ceiling %d",
							q, len(sr.Shards), budget.MaxShards)
					}
				}
				for _, sr := range rep.Scans {
					if len(sr.Shards) > budget.MaxShards {
						t.Errorf("%v: a planned scan ran %d shards over the ceiling %d",
							q, len(sr.Shards), budget.MaxShards)
					}
				}
			}
		}
	}
}

// The cost model against the measured query: across the E19 grid of
// fixed shapes, every operator sort's predicted critical path stays
// within 25% of its measured shard.SortReport — the calibration bound
// the planner's decisions rest on, asserted on the same workload E19
// tables.
func TestPlannerPredictionOnQueryGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	in := problems.GenSetNo(512, 16, rng)
	db := InstanceDB(in)
	q := SymmetricDifference("R1", "R2")
	const runMem = 256

	for _, fanIn := range []int{2, 4} {
		for _, shards := range []int{1, 2, 4} {
			rep := &QueryReport{}
			ev := Evaluator{Shards: shards, FanIn: fanIn, RunMemoryBits: runMem, Report: rep}
			if _, err := ev.EvalST(nil, q, db, core.NewMachine(NumQueryTapes, 1)); err != nil {
				t.Fatal(err)
			}
			for i, sr := range rep.Sorts {
				shape := plan.Shape{Shards: shards, FanIn: fanIn, RunMemoryBits: runMem}
				predicted := plan.PredictSort(sr.Items, sr.Bytes, shape).CriticalPath()
				measured := sr.CriticalPathSteps()
				if measured == 0 {
					continue
				}
				err := float64(predicted-measured) / float64(measured)
				if err < 0 {
					err = -err
				}
				if err > 0.25 {
					t.Errorf("fanIn=%d shards=%d sort %d (%d items): predicted %d, measured %d (error %.1f%%)",
						fanIn, shards, i, sr.Items, predicted, measured, err*100)
				}
			}
		}
	}
}

// FuzzPlannedQuery drives the planner end to end: arbitrary relations
// through the Theorem 11 query under an arbitrary budget, against the
// single-machine engine, with the meter back at zero — the planner may
// move the shape, never a byte.
func FuzzPlannedQuery(f *testing.F) {
	f.Add([]byte(nil), []byte(nil), uint16(0), uint8(0), uint8(0))
	f.Add([]byte{1}, []byte(nil), uint16(64), uint8(1), uint8(2))
	f.Add([]byte{1, 0, 1, 0, 1}, []byte{1, 0, 1}, uint16(256), uint8(3), uint8(4))
	f.Add([]byte{1, 2, 3, 0, 2, 4}, []byte{4, 2, 0, 3, 2, 1}, uint16(1024), uint8(6), uint8(8))
	f.Fuzz(func(t *testing.T, d1, d2 []byte, mem uint16, tapes, maxShards uint8) {
		if len(d1)+len(d2) > 1<<12 {
			t.Skip("cap the relation sizes so the shard fleet stays fast")
		}
		budget := plan.Budget{
			MemoryBits: int64(mem),
			Tapes:      4 + int(tapes%9),
			MaxShards:  1 + int(maxShards%6),
		}
		db := DB{
			"R1": {Name: "R1", Schema: Schema{"x"}, Tuples: fuzzValues(d1)},
			"R2": {Name: "R2", Schema: Schema{"x"}, Tuples: fuzzValues(d2)},
		}
		q := SymmetricDifference("R1", "R2")
		ref, err := EvalST(q, db, core.NewMachine(NumQueryTapes, 1))
		if err != nil {
			t.Fatal(err)
		}
		m := core.NewMachine(NumQueryTapes, 1)
		got, err := Evaluator{Plan: plan.Auto(budget)}.EvalST(nil, q, db, m)
		if err != nil {
			t.Fatalf("budget=%+v: %v", budget, err)
		}
		if !reflect.DeepEqual(tupleKeys(got.Tuples), tupleKeys(ref.Tuples)) {
			t.Fatalf("budget=%+v: planned Q' differs from the single-machine engine", budget)
		}
		if cur := m.Mem().Current(); cur != 0 {
			t.Fatalf("%d bits still charged after the planned EvalST (regions %v)", cur, m.Mem().Regions())
		}
	})
}
