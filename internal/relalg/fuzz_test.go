package relalg

// Native Go fuzz targets for the sharded relalg sort path: arbitrary
// tuple sets and (shards, fan-in, run memory, dedup) execution shapes
// are checked against a plain stdlib-sort reference, and every run
// must leave the query machine's meter at zero — the two contracts
// (byte-identical output, leak-free operators) the streaming
// evaluator is built on. The CI fuzz-smoke step runs each target for
// 10 seconds; under plain `go test` the seed corpus below runs as
// regression cases.

import (
	"reflect"
	"sort"
	"testing"

	"extmem/internal/core"
)

// fuzzTuples decodes raw fuzz bytes into a tuple set: bytes map to a
// 16-letter field alphabet (never the '|'/'#' separators), with two
// reserved values cutting fields and tuples. The decoder is total, so
// every fuzz input is a valid relation.
func fuzzTuples(data []byte) []Tuple {
	var (
		tuples []Tuple
		cur    Tuple
		field  []byte
	)
	flushField := func() {
		cur = append(cur, string(field))
		field = field[:0]
	}
	flushTuple := func() {
		flushField()
		tuples = append(tuples, cur)
		cur = nil
	}
	for _, b := range data {
		switch {
		case b%19 == 0:
			flushTuple()
		case b%19 == 1:
			flushField()
		default:
			field = append(field, 'a'+b%16)
		}
	}
	if len(field) > 0 || len(cur) > 0 {
		flushTuple()
	}
	return tuples
}

// fuzzValues decodes raw fuzz bytes into single-field tuples over a
// 4-letter alphabet — small enough that duplicates and collisions
// between two independently decoded halves are common.
func fuzzValues(data []byte) []Tuple {
	var (
		tuples []Tuple
		field  []byte
	)
	for _, b := range data {
		if b%9 == 0 {
			tuples = append(tuples, Tuple{string(field)})
			field = field[:0]
			continue
		}
		field = append(field, 'a'+b%4)
	}
	if len(field) > 0 {
		tuples = append(tuples, Tuple{string(field)})
	}
	return tuples
}

// fuzzEvaluator maps the raw fuzz config onto a sharded evaluator:
// 1–5 shards, fan-in target 2–8, run-formation memory 0–65535 bits
// (0 selects the package default).
func fuzzEvaluator(shards, fanIn uint8, mem uint16) Evaluator {
	return Evaluator{
		Shards:        1 + int(shards%5),
		FanIn:         2 + int(fanIn%7),
		RunMemoryBits: int64(mem),
		Report:        &QueryReport{},
	}
}

// refKeys is the stdlib reference: the tuples' canonical keys sorted,
// with adjacent duplicates dropped under dedup.
func refKeys(tuples []Tuple, dedup bool) []string {
	keys := make([]string, len(tuples))
	for i, tp := range tuples {
		keys[i] = tp.key()
	}
	sort.Strings(keys)
	if !dedup {
		return keys
	}
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}

func tupleKeys(tuples []Tuple) []string {
	keys := make([]string, len(tuples))
	for i, tp := range tuples {
		keys[i] = tp.key()
	}
	return keys
}

// FuzzShardedSortDedup drives the operator sort itself: a Scan query
// (the sortDedup path, dedup on) or Evaluator.Sorted (dedup off) on
// an arbitrary tuple set under an arbitrary sharded execution shape,
// against the stdlib-sort reference.
func FuzzShardedSortDedup(f *testing.F) {
	f.Add([]byte(nil), uint8(0), uint8(0), uint16(0), true)                                        // empty input
	f.Add([]byte{5}, uint8(1), uint8(2), uint16(64), false)                                        // tiny: one 1-letter tuple
	f.Add([]byte{5, 0, 5, 0, 5, 0, 7, 0, 7, 0, 5}, uint8(3), uint8(1), uint16(32), true)           // duplicate-heavy
	f.Add([]byte{5, 6, 7, 8, 1, 5, 0, 9, 1, 1, 4, 0, 2, 3}, uint8(2), uint8(4), uint16(96), false) // variable-length tuples
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(4), uint8(6), uint16(512), true)
	f.Fuzz(func(t *testing.T, data []byte, shards, fanIn uint8, mem uint16, dedup bool) {
		if len(data) > 1<<12 {
			t.Skip("cap the sorted set so the shard fleet stays fast")
		}
		tuples := fuzzTuples(data)
		rel := &Relation{Name: "R", Schema: Schema{"x"}, Tuples: tuples}
		ev := fuzzEvaluator(shards, fanIn, mem)
		m := core.NewMachine(NumQueryTapes, 1)
		var got []Tuple
		var err error
		if dedup {
			var r *Relation
			r, err = ev.EvalST(nil, Scan{Rel: "R"}, DB{"R": rel}, m)
			if r != nil {
				got = r.Tuples
			}
		} else {
			got, err = ev.Sorted(nil, m, rel)
		}
		if err != nil {
			t.Fatalf("shards=%d fanIn=%d mem=%d dedup=%v: %v",
				ev.Shards, ev.FanIn, ev.RunMemoryBits, dedup, err)
		}
		want := refKeys(tuples, dedup)
		if gotKeys := tupleKeys(got); !reflect.DeepEqual(gotKeys, want) {
			t.Fatalf("shards=%d fanIn=%d mem=%d dedup=%v: sorted keys differ\n got %q\nwant %q",
				ev.Shards, ev.FanIn, ev.RunMemoryBits, dedup, gotKeys, want)
		}
		if cur := m.Mem().Current(); cur != 0 {
			t.Fatalf("%d bits still charged after the operator (regions %v)", cur, m.Mem().Regions())
		}
		if len(tuples) > 0 && len(ev.Report.Sorts) == 0 {
			t.Fatal("no sort report recorded on the sharded path")
		}
	})
}

// FuzzShardedSymmetricDifference drives the whole Theorem 11 query
// pipeline: two arbitrary relations through Q' = (R1 − R2) ∪
// (R2 − R1) under an arbitrary sharded shape, checked against the
// single-machine engine, the legacy in-memory evaluator and the
// machine-backed EqualSet — with the meter back at zero after every
// evaluation.
func FuzzShardedSymmetricDifference(f *testing.F) {
	f.Add([]byte(nil), []byte(nil), uint8(0), uint8(0), uint16(0))                // both empty
	f.Add([]byte{1}, []byte(nil), uint8(1), uint8(1), uint16(16))                 // one tiny side
	f.Add([]byte{1, 0, 1, 0, 1}, []byte{1, 0, 1}, uint8(3), uint8(2), uint16(64)) // duplicate-heavy equal sets
	f.Add([]byte{1, 2, 3, 0, 2, 4}, []byte{4, 2, 0, 3, 2, 1}, uint8(2), uint8(5), uint16(128))
	f.Fuzz(func(t *testing.T, d1, d2 []byte, shards, fanIn uint8, mem uint16) {
		if len(d1)+len(d2) > 1<<12 {
			t.Skip("cap the relation sizes so the shard fleet stays fast")
		}
		db := DB{
			"R1": {Name: "R1", Schema: Schema{"x"}, Tuples: fuzzValues(d1)},
			"R2": {Name: "R2", Schema: Schema{"x"}, Tuples: fuzzValues(d2)},
		}
		q := SymmetricDifference("R1", "R2")
		ref, err := EvalST(q, db, core.NewMachine(NumQueryTapes, 1))
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}
		ev := fuzzEvaluator(shards, fanIn, mem)
		m := core.NewMachine(NumQueryTapes, 1)
		got, err := ev.EvalST(nil, q, db, m)
		if err != nil {
			t.Fatalf("shards=%d fanIn=%d mem=%d: %v", ev.Shards, ev.FanIn, ev.RunMemoryBits, err)
		}
		if !reflect.DeepEqual(tupleKeys(got.Tuples), tupleKeys(ref.Tuples)) {
			t.Fatalf("shards=%d: sharded Q' differs from the single-machine engine", ev.Shards)
		}
		if !got.EqualSet(legacy) {
			t.Fatalf("shards=%d: sharded Q' differs from the legacy evaluator", ev.Shards)
		}
		if cur := m.Mem().Current(); cur != 0 {
			t.Fatalf("%d bits still charged after EvalST (regions %v)", cur, m.Mem().Regions())
		}
		// The machine-backed set-equality decision must agree with the
		// in-memory one — and with Q' emptiness.
		me := core.NewMachine(NumQueryTapes, 1)
		eq, err := ev.EqualSet(nil, me, db["R1"], db["R2"])
		if err != nil {
			t.Fatal(err)
		}
		if want := db["R1"].EqualSet(db["R2"]); eq != want {
			t.Fatalf("shards=%d: EqualSet=%v, want %v", ev.Shards, eq, want)
		}
		if eq != (len(got.Tuples) == 0) {
			t.Fatalf("shards=%d: EqualSet=%v but |Q'|=%d", ev.Shards, eq, len(got.Tuples))
		}
		if cur := me.Mem().Current(); cur != 0 {
			t.Fatalf("%d bits still charged after EqualSet", cur)
		}
	})
}
