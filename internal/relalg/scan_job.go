package relalg

// scan_job.go is the wire form of one shard-local operator scan — the
// scan-side twin of shard.SortJob. A ScanJob is self-contained and
// gob-encodable: the shard's contiguous left run-range payload, the
// broadcast right side, the shard machine's seed and tape options.
// Execute runs exactly the body scanShard's in-process attempt runs,
// so a worker process (internal/transport) executing the job produces
// the same bytes and the same (r, s, t) census the coordinator's own
// shard machine would — which is what lets planned queries honor
// `-transport` end to end instead of silently dropping their
// anti-merge and product scans back in-process.

import (
	"context"
	"fmt"

	"extmem/internal/core"
	"extmem/internal/tape"
)

// ScanJob is one shard's operator-scan assignment, self-contained
// enough to cross a process or network boundary: Op selects the scan
// body (ScanOpDiff or ScanOpProduct), Left is the shard's contiguous
// left run-range payload, Right the broadcast right side, Seed the
// shard machine's coin seed (already shard-derived by the
// coordinator), and Tape the storage options of the shard machine.
// Note tape.Options.Wrap is a function and does not travel; scan
// shards never set it.
type ScanJob struct {
	Op    string
	Left  []byte
	Right []byte
	Seed  int64
	Tape  tape.Options
}

// Execute runs the scan job on a fresh shard-local machine and returns
// the shard's output bytes and the machine's exact resource report.
// The output is a pure function of the job — recovery and transport
// cannot move a byte.
func (j ScanJob) Execute() ([]byte, core.Resources, error) {
	switch j.Op {
	case ScanOpDiff:
		m := core.NewMachineOpts(3, j.Seed, j.Tape)
		defer m.Close()
		m.SetInput(j.Left)
		m.SetTape(1, j.Right)
		if err := antiMergeTapes(m, 0, 1, 2); err != nil {
			return nil, core.Resources{}, err
		}
		return m.Tape(2).Contents(), m.Resources(), nil
	case ScanOpProduct:
		m := core.NewMachineOpts(5, j.Seed, j.Tape)
		defer m.Close()
		m.SetInput(j.Left)
		m.SetTape(1, j.Right)
		if err := productTapes(m, 0, 1, 2, 3, 4); err != nil {
			return nil, core.Resources{}, err
		}
		return m.Tape(2).Contents(), m.Resources(), nil
	}
	return nil, core.Resources{}, fmt.Errorf("relalg: scan job has unknown op %q", j.Op)
}

// ScanExecFunc executes one shard-local scan attempt — the scan-side
// twin of shard.ExecFunc, and the seam internal/transport implements
// to run scan shards in worker processes or on remote machines. shard
// and attempt identify the attempt for deterministic fault injection;
// implementations must return either job.Execute()'s exact results or
// an error (a *transport.WorkerError carrying the shard.Fault marker
// puts the failure on the retry → fallback path).
type ScanExecFunc func(ctx context.Context, shard, attempt int, job ScanJob) ([]byte, core.Resources, error)
