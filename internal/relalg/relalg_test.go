package relalg

import (
	"fmt"
	"math/rand"
	"testing"

	"extmem/internal/core"
	"extmem/internal/problems"
)

func testDB() DB {
	return DB{
		"R1": {Name: "R1", Schema: Schema{"x"}, Tuples: []Tuple{{"a"}, {"b"}, {"c"}}},
		"R2": {Name: "R2", Schema: Schema{"x"}, Tuples: []Tuple{{"b"}, {"c"}, {"d"}}},
		"S":  {Name: "S", Schema: Schema{"x", "y"}, Tuples: []Tuple{{"a", "1"}, {"b", "2"}, {"a", "2"}}},
	}
}

func tuplesOf(r *Relation) []string {
	var out []string
	for _, t := range r.Sorted() {
		out = append(out, t.key())
	}
	return out
}

func wantTuples(t *testing.T, r *Relation, want ...string) {
	t.Helper()
	got := tuplesOf(r)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tuples = %v, want %v", got, want)
	}
}

func TestEvalScanSelectProject(t *testing.T) {
	db := testDB()
	r, err := Eval(Select{Pred: ConstEq{Col: "x", Const: "a"}, In: Scan{Rel: "S"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, r, "a|1", "a|2")

	p, err := Eval(Project{Cols: []string{"x"}, In: Scan{Rel: "S"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, p, "a", "b") // dedup: two 'a' rows collapse
}

func TestEvalUnionDiff(t *testing.T) {
	db := testDB()
	u, err := Eval(Union{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, u, "a", "b", "c", "d")

	d, err := Eval(Diff{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, d, "a")
}

func TestEvalProduct(t *testing.T) {
	db := DB{
		"A": {Schema: Schema{"x"}, Tuples: []Tuple{{"1"}, {"2"}}},
		"B": {Schema: Schema{"y"}, Tuples: []Tuple{{"p"}, {"q"}}},
	}
	r, err := Eval(Product{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, r, "1|p", "1|q", "2|p", "2|q")
	if !r.Schema.Equal(Schema{"l.x", "r.y"}) {
		t.Fatalf("schema = %v", r.Schema)
	}
}

func TestEvalRename(t *testing.T) {
	db := testDB()
	r, err := Eval(Rename{Cols: []string{"z"}, In: Scan{Rel: "R1"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema.Equal(Schema{"z"}) {
		t.Fatalf("schema = %v", r.Schema)
	}
}

func TestEvalErrors(t *testing.T) {
	db := testDB()
	if _, err := Eval(Scan{Rel: "nope"}, db); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := Eval(Union{L: Scan{Rel: "R1"}, R: Scan{Rel: "S"}}, db); err == nil {
		t.Fatal("union schema mismatch accepted")
	}
	if _, err := Eval(Project{Cols: []string{"nope"}, In: Scan{Rel: "S"}}, db); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := Eval(Rename{Cols: []string{"a", "b"}, In: Scan{Rel: "R1"}}, db); err == nil {
		t.Fatal("rename arity mismatch accepted")
	}
}

func TestSymmetricDifferenceDecidesSetEquality(t *testing.T) {
	// Theorem 11(b): Q' evaluates empty iff R1 = R2 as sets.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(6, 8, rng)
		} else {
			in = problems.GenSetNo(6, 8, rng)
		}
		db := InstanceDB(in)
		r, err := Eval(SymmetricDifference("R1", "R2"), db)
		if err != nil {
			t.Fatal(err)
		}
		empty := len(r.Tuples) == 0
		if empty != problems.SetEquality(in) {
			t.Fatalf("Q' empty = %v but set equality = %v on %+v", empty, problems.SetEquality(in), in)
		}
	}
}

// randomExpr builds a random small query over the test DB.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 {
		return Scan{Rel: []string{"R1", "R2"}[rng.Intn(2)]}
	}
	switch rng.Intn(4) {
	case 0:
		return Select{Pred: ConstEq{Col: "x", Const: string(rune('a' + rng.Intn(4)))}, In: randomExpr(rng, depth-1)}
	case 1:
		return Union{L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 2:
		return Diff{L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	default:
		return Project{Cols: []string{"x"}, In: randomExpr(rng, depth-1)}
	}
}

// The streaming evaluator must agree with the reference evaluator on
// random queries.
func TestStreamingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	db := testDB()
	for trial := 0; trial < 60; trial++ {
		e := randomExpr(rng, 1+rng.Intn(3))
		want, err := Eval(e, db)
		if err != nil {
			t.Fatal(err)
		}
		m := core.NewMachine(NumQueryTapes, 1)
		got, err := EvalST(e, db, m)
		if err != nil {
			t.Fatalf("EvalST(%s): %v", e, err)
		}
		if !got.EqualSet(want) {
			t.Fatalf("query %s:\nstream  = %v\nreference = %v", e, tuplesOf(got), tuplesOf(want))
		}
	}
}

func TestStreamingProductMatchesReference(t *testing.T) {
	db := DB{
		"A": {Schema: Schema{"x"}, Tuples: []Tuple{{"1"}, {"2"}, {"3"}}},
		"B": {Schema: Schema{"y"}, Tuples: []Tuple{{"p"}, {"q"}}},
	}
	e := Product{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}}
	want, err := Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(NumQueryTapes, 1)
	got, err := EvalST(e, db, m)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(want) {
		t.Fatalf("stream = %v, want %v", tuplesOf(got), tuplesOf(want))
	}
}

// Theorem 11(a): evaluation stays within O(log N) scans.
func TestStreamingScanBound(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	q := SymmetricDifference("R1", "R2")
	for _, size := range []int{8, 64, 512} {
		in := problems.GenSetYes(size, 10, rng)
		db := InstanceDB(in)
		m := core.NewMachine(NumQueryTapes, 1)
		if _, err := EvalST(q, db, m); err != nil {
			t.Fatal(err)
		}
		res := m.Resources()
		n := db.Size()
		bound := core.Bound{Name: "ST(60 log N, ., 12)", R: core.LogR(60), S: func(int) int64 { return 1 << 40 }, T: NumQueryTapes}
		if err := bound.Admits(res, n); err != nil {
			t.Fatalf("size=%d: %v (%v)", size, err, res)
		}
	}
}

func TestStreamingSymmetricDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 10; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(5, 6, rng)
		} else {
			in = problems.GenSetNo(5, 6, rng)
		}
		db := InstanceDB(in)
		m := core.NewMachine(NumQueryTapes, 1)
		r, err := EvalST(SymmetricDifference("R1", "R2"), db, m)
		if err != nil {
			t.Fatal(err)
		}
		if (len(r.Tuples) == 0) != problems.SetEquality(in) {
			t.Fatalf("streaming Q' wrong on %+v", in)
		}
	}
}

func TestPredicates(t *testing.T) {
	s := Schema{"x", "y"}
	tup := Tuple{"a", "a"}
	ok, err := (ColEq{A: "x", B: "y"}).Eval(s, tup)
	if err != nil || !ok {
		t.Fatalf("ColEq: %v %v", ok, err)
	}
	ok, err = (Not{P: ColEq{A: "x", B: "y"}}).Eval(s, tup)
	if err != nil || ok {
		t.Fatalf("Not: %v %v", ok, err)
	}
	ok, err = (And{Ps: []Predicate{ConstEq{Col: "x", Const: "a"}, ConstEq{Col: "y", Const: "a"}}}).Eval(s, tup)
	if err != nil || !ok {
		t.Fatalf("And: %v %v", ok, err)
	}
	if _, err := (ColEq{A: "z", B: "y"}).Eval(s, tup); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := (ConstEq{Col: "z"}).Eval(s, tup); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestExprStrings(t *testing.T) {
	q := SymmetricDifference("R1", "R2")
	if q.String() != "((R1 − R2) ∪ (R2 − R1))" {
		t.Fatalf("String = %q", q.String())
	}
	exprs := []Expr{
		Select{Pred: ConstEq{Col: "x", Const: "v"}, In: Scan{Rel: "R"}},
		Project{Cols: []string{"x"}, In: Scan{Rel: "R"}},
		Product{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}},
		Rename{Cols: []string{"z"}, In: Scan{Rel: "R"}},
	}
	for _, e := range exprs {
		if e.String() == "" {
			t.Fatalf("%T renders empty", e)
		}
	}
}

func TestDBSize(t *testing.T) {
	db := DB{"R": {Schema: Schema{"x"}, Tuples: []Tuple{{"ab"}, {"c"}}}}
	if db.Size() != 5 { // "ab"+1 + "c"+1
		t.Fatalf("Size = %d, want 5", db.Size())
	}
}

func TestEqualSet(t *testing.T) {
	a := &Relation{Tuples: []Tuple{{"x"}, {"y"}}}
	b := &Relation{Tuples: []Tuple{{"y"}, {"x"}, {"x"}}}
	if !a.EqualSet(b) {
		t.Fatal("set-equal relations reported unequal")
	}
	c := &Relation{Tuples: []Tuple{{"x"}}}
	if a.EqualSet(c) {
		t.Fatal("unequal relations reported equal")
	}
}
