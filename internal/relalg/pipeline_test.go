package relalg

import (
	"math/rand"
	"reflect"
	"testing"

	"extmem/internal/core"
	"extmem/internal/problems"
)

// The pipelined evaluator is byte-identical to the staged sharded
// evaluator on every query plan and shard count: the merge-free
// handoff may move the census, never a byte.
func TestPipelinedMatchesStaged(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 3; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(8+trial*10, 8, rng)
		} else {
			in = problems.GenSetNo(8+trial*10, 8, rng)
		}
		db := InstanceDB(in)
		for _, q := range queryPlans() {
			for _, shards := range []int{1, 2, 4} {
				ref := core.NewMachine(NumQueryTapes, 1)
				want, err := Evaluator{Shards: shards}.EvalST(nil, q, db, ref)
				if err != nil {
					t.Fatalf("%v shards=%d: %v", q, shards, err)
				}
				pm := core.NewMachine(NumQueryTapes, 1)
				rep := &QueryReport{}
				got, err := Evaluator{Shards: shards, Pipeline: true, Report: rep}.EvalST(nil, q, db, pm)
				if err != nil {
					t.Fatalf("%v shards=%d pipelined: %v", q, shards, err)
				}
				if !reflect.DeepEqual(got.Tuples, want.Tuples) {
					t.Fatalf("%v shards=%d: pipelined result differs from staged", q, shards)
				}
				if cur := pm.Mem().Current(); cur != 0 {
					t.Errorf("%v shards=%d: %d bits still charged after pipelined eval", q, shards, cur)
				}
				if rep.Coordinator.Steps == 0 {
					t.Errorf("%v shards=%d: coordinator census missing from report", q, shards)
				}
			}
		}
	}
}

// On a multi-stage plan (a Union of two scans — each child sort feeds
// straight into the union's merge) the handoff deletes one full
// write+read of every intermediate relation: the producers' combines,
// the coordinator's concatenation and the consumer's distribution scan.
// The end-to-end step count must drop by a sizeable margin at the
// identical execution shape.
func TestPipelinedCutsTotalSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	in := problems.GenSetNo(256, 16, rng)
	db := InstanceDB(in)
	q := Union{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}}
	const runMem = 256

	run := func(pipeline bool) (*QueryReport, *Relation) {
		rep := &QueryReport{}
		m := core.NewMachine(NumQueryTapes, 1)
		ev := Evaluator{Shards: 2, RunMemoryBits: runMem, Pipeline: pipeline, Report: rep}
		out, err := ev.EvalST(nil, q, db, m)
		if err != nil {
			t.Fatal(err)
		}
		return rep, out
	}
	staged, sOut := run(false)
	piped, pOut := run(true)
	if !reflect.DeepEqual(sOut.Tuples, pOut.Tuples) {
		t.Fatal("pipelined union differs from staged")
	}
	st, pt := staged.TotalSteps(), piped.TotalSteps()
	if pt >= st {
		t.Fatalf("pipelined total steps %d did not drop below staged %d", pt, st)
	}
	if cut := float64(st-pt) / float64(st); cut < 0.15 {
		t.Errorf("pipelined handoff cut total steps by %.1f%%, want >= 15%%", cut*100)
	}
}

// Pipelining is inert off the sharded path: the zero evaluator with
// Pipeline set keeps the historical single-machine accounting bit for
// bit (pipelined() requires Shards >= 1).
func TestPipelineFlagInertOnZeroEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	in := problems.GenSetNo(20, 8, rng)
	db := InstanceDB(in)
	for _, q := range queryPlans() {
		m1 := core.NewMachine(NumQueryTapes, 1)
		r1, err := EvalST(q, db, m1)
		if err != nil {
			t.Fatal(err)
		}
		m2 := core.NewMachine(NumQueryTapes, 1)
		r2, err := Evaluator{Pipeline: true}.EvalST(nil, q, db, m2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Tuples, r2.Tuples) {
			t.Fatalf("%v: Pipeline flag moved the zero evaluator's result", q)
		}
		if !reflect.DeepEqual(m1.Resources(), m2.Resources()) {
			t.Fatalf("%v: Pipeline flag moved the zero evaluator's resources", q)
		}
	}
}
