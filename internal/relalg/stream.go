package relalg

import (
	"bytes"
	"context"
	"fmt"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/tape"
)

// The streaming evaluator compiles every operator to scan and sort
// passes over machine tapes, the Theorem 11(a) strategy:
//
//   - selection: one scan;
//   - projection: one scan, then a k-way sort whose final merge pass
//     drops adjacent duplicates as it writes (set semantics);
//   - union: two scans to concatenate, then the same fused sort+dedup;
//   - difference: sort both sides, one parallel anti-merge scan;
//   - product: replicate the right side by doubling (O(log) scans),
//     then one paired scan with a single buffered outer tuple;
//   - rename: free.
//
// Each operator costs O(log N) head reversals (from its sorts), and a
// query tree has constantly many operators, so total reversals are
// O(log N) with O(1) tuples of internal memory — the data complexity
// of Theorem 11(a).

// NumQueryTapes is the number of external tapes the streaming
// evaluator expects on its machine: two merge-sort scratch tapes plus
// a pool for operand and result tapes.
const NumQueryTapes = 12

const (
	sortScratchA = 0
	sortScratchB = 1
	firstPool    = 2
)

// evalCtx carries the machine, the tape free-list and the execution
// shape (the Evaluator that built it).
type evalCtx struct {
	ctx    context.Context // bounds the evaluation; cancellation stops sharded sorts
	m      *core.Machine
	db     DB
	free   []int
	ev     Evaluator
	launch algorithms.SortLauncher // resolved sort launcher; nil = single-machine engine
}

func (c *evalCtx) acquire() (int, error) {
	if len(c.free) == 0 {
		return 0, fmt.Errorf("relalg: out of tapes (query too deep for %d tapes)", NumQueryTapes)
	}
	idx := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return idx, nil
}

func (c *evalCtx) release(idx int) { c.free = append(c.free, idx) }

// EvalST evaluates the expression over the database on the given
// machine (which must have NumQueryTapes tapes), returning the result
// relation; all tape traffic is charged to the machine's counters. It
// is the zero Evaluator: the single-machine engine. Use an Evaluator
// with Shards >= 1 (or an injected Launch) to run the operator sorts
// on the sharded execution layer instead.
func EvalST(e Expr, db DB, m *core.Machine) (*Relation, error) {
	return Evaluator{}.EvalST(context.Background(), e, db, m)
}

// eval returns the tape index holding the (deduplicated) result and
// its schema.
func (c *evalCtx) eval(e Expr) (int, Schema, error) {
	switch e := e.(type) {
	case Scan:
		r, ok := c.db[e.Rel]
		if !ok {
			return 0, nil, fmt.Errorf("relalg: unknown relation %q", e.Rel)
		}
		idx, err := c.acquire()
		if err != nil {
			return 0, nil, err
		}
		if err := writeRelationTape(c.m, idx, r); err != nil {
			return 0, nil, err
		}
		if err := c.sortDedup(idx); err != nil {
			return 0, nil, err
		}
		return idx, r.Schema, nil

	case Select:
		in, schema, err := c.eval(e.In)
		if err != nil {
			return 0, nil, err
		}
		dst, err := c.acquire()
		if err != nil {
			return 0, nil, err
		}
		if err := c.filterScan(in, dst, schema, e.Pred); err != nil {
			return 0, nil, err
		}
		c.release(in)
		return dst, schema, nil

	case Project:
		in, schema, err := c.eval(e.In)
		if err != nil {
			return 0, nil, err
		}
		idx := make([]int, len(e.Cols))
		for i, col := range e.Cols {
			if idx[i] = schema.Col(col); idx[i] < 0 {
				return 0, nil, fmt.Errorf("relalg: unknown column %q", col)
			}
		}
		dst, err := c.acquire()
		if err != nil {
			return 0, nil, err
		}
		if err := c.rewriteScan(in, dst, func(t Tuple) (Tuple, bool) {
			nt := make(Tuple, len(idx))
			for i, j := range idx {
				nt[i] = t[j]
			}
			return nt, true
		}); err != nil {
			return 0, nil, err
		}
		c.release(in)
		if err := c.sortDedup(dst); err != nil {
			return 0, nil, err
		}
		return dst, Schema(e.Cols), nil

	case Union:
		if c.pipelined() {
			runs, schema, err := c.evalRuns(e)
			if err != nil {
				return 0, nil, err
			}
			dst, err := c.acquire()
			if err != nil {
				return 0, nil, err
			}
			if err := c.mergeRuns(runs, dst); err != nil {
				return 0, nil, err
			}
			return dst, schema, nil
		}
		l, ls, r, rs, err := c.evalPair(e.L, e.R)
		if err != nil {
			return 0, nil, err
		}
		if !ls.Equal(rs) {
			return 0, nil, fmt.Errorf("%w: %v vs %v", ErrSchema, ls, rs)
		}
		dst, err := c.acquire()
		if err != nil {
			return 0, nil, err
		}
		if err := c.concat(l, r, dst); err != nil {
			return 0, nil, err
		}
		c.release(l)
		c.release(r)
		if err := c.sortDedup(dst); err != nil {
			return 0, nil, err
		}
		return dst, ls, nil

	case Diff:
		l, ls, r, rs, err := c.evalPair(e.L, e.R)
		if err != nil {
			return 0, nil, err
		}
		if !ls.Equal(rs) {
			return 0, nil, fmt.Errorf("%w: %v vs %v", ErrSchema, ls, rs)
		}
		dst, err := c.acquire()
		if err != nil {
			return 0, nil, err
		}
		if err := c.antiMergeOp(l, r, dst); err != nil {
			return 0, nil, err
		}
		c.release(l)
		c.release(r)
		return dst, ls, nil

	case Product:
		l, ls, r, rs, err := c.evalPair(e.L, e.R)
		if err != nil {
			return 0, nil, err
		}
		dst, err := c.acquire()
		if err != nil {
			return 0, nil, err
		}
		if err := c.productOp(l, r, dst); err != nil {
			return 0, nil, err
		}
		c.release(l)
		c.release(r)
		// Concatenated variable-length fields need not be in item
		// order; restore the sorted-and-deduplicated invariant.
		if err := c.sortDedup(dst); err != nil {
			return 0, nil, err
		}
		return dst, productSchema(e, ls, rs), nil

	case Rename:
		in, schema, err := c.eval(e.In)
		if err != nil {
			return 0, nil, err
		}
		if len(e.Cols) != len(schema) {
			return 0, nil, fmt.Errorf("%w: rename arity %d vs %d", ErrSchema, len(e.Cols), len(schema))
		}
		return in, Schema(e.Cols), nil

	case EquiJoin:
		return c.eval(e.expand())

	case SemiJoin:
		ex, err := e.expand(c.db)
		if err != nil {
			return 0, nil, err
		}
		return c.eval(ex)

	default:
		return 0, nil, fmt.Errorf("relalg: unknown expression %T", e)
	}
}

func (c *evalCtx) evalPair(l, r Expr) (int, Schema, int, Schema, error) {
	li, ls, err := c.eval(l)
	if err != nil {
		return 0, nil, 0, nil, err
	}
	ri, rs, err := c.eval(r)
	if err != nil {
		return 0, nil, 0, nil, err
	}
	return li, ls, ri, rs, nil
}

// sortDedupFanIn is the merge fan-in sortDedup aims for: the two
// dedicated scratch tapes plus up to two pool tapes when the query
// leaves them free.
const sortDedupFanIn = 4

// sortDedup sorts the tape's items and removes adjacent duplicates in
// place — the set-semantics step of every operator that rebuilds an
// item stream.
func (c *evalCtx) sortDedup(idx int) error { return c.engineSort(idx, true) }

// engineSort sorts the tape's items in place on the evaluator's
// execution shape. On the single-machine shape (nil launcher) it runs
// the k-way engine with its dedup-on-output hook, so deduplication
// happens while the final merge pass is written — the separate dedup
// scan + copy-back of the legacy evaluator is gone. The fan-in is the
// two dedicated scratch tapes plus pool tapes up to the evaluator's
// target when available (the pool state is a deterministic function
// of the query, so resource reports stay reproducible). An injected
// launcher receives the same resolved Sorter — fan-in fixes the run
// partitioning — and must leave identical bytes on the tape; the
// sharded path does its sorting on shard-local machines and hands the
// merged tape back.
func (c *evalCtx) engineSort(idx int, dedup bool) error {
	work := []int{sortScratchA, sortScratchB}
	var extras []int
	for len(work) < c.ev.fanInTarget() && len(c.free) > 0 {
		t, err := c.acquire()
		if err != nil {
			break
		}
		work = append(work, t)
		extras = append(extras, t)
	}
	defer func() {
		for i := len(extras) - 1; i >= 0; i-- {
			c.release(extras[i])
		}
	}()
	s := algorithms.Sorter{
		FanIn:         len(work),
		RunMemoryBits: c.ev.runMemoryBits(),
		Dedup:         dedup,
	}
	if c.launch != nil {
		return c.launch(c.ctx, s, c.m, idx, work)
	}
	return s.Sort(c.m, idx, work)
}

// filterScan copies tuples satisfying the predicate.
func (c *evalCtx) filterScan(src, dst int, schema Schema, pred Predicate) error {
	var perr error
	err := c.rewriteScan(src, dst, func(t Tuple) (Tuple, bool) {
		ok, err := pred.Eval(schema, t)
		if err != nil {
			perr = err
			return nil, false
		}
		return t, ok
	})
	if perr != nil {
		return perr
	}
	return err
}

// rewriteScan streams src through fn into dst (one buffered tuple).
// The tuple's tape encoding is rebuilt in a buffer reused across
// items, so the per-tuple cost is the field-string allocations of the
// decode alone.
func (c *evalCtx) rewriteScan(src, dst int, fn func(Tuple) (Tuple, bool)) error {
	ts, td := c.m.Tape(src), c.m.Tape(dst)
	if err := rewindTruncate(td); err != nil {
		return err
	}
	if err := ts.Rewind(); err != nil {
		return err
	}
	mem := c.m.Mem()
	defer mem.Free("item.relalg.rw")
	var enc []byte
	for {
		item, ok, err := algorithms.ReadItem(ts, mem, "item.relalg.rw")
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if out, keep := fn(decodeTuple(item)); keep {
			enc = out.appendKey(enc[:0])
			if err := algorithms.WriteItem(td, enc); err != nil {
				return err
			}
		}
	}
}

// concat writes src1's then src2's items to dst. Every tape holds
// '#'-terminated items only, so each side is one whole-tape sweep:
// a bulk read of src and a bulk write to dst, with the same counter
// totals as an item-by-item copy.
func (c *evalCtx) concat(src1, src2, dst int) error { return concatTapes(c.m, src1, src2, dst) }

func concatTapes(m *core.Machine, src1, src2, dst int) error {
	td := m.Tape(dst)
	if err := rewindTruncate(td); err != nil {
		return err
	}
	for _, src := range []int{src1, src2} {
		if err := sweepItems(m, src, td); err != nil {
			return err
		}
	}
	return nil
}

// copyAll replaces dst's content with src's in one bulk sweep.
func copyAll(m *core.Machine, src, dst int) error {
	td := m.Tape(dst)
	if err := rewindTruncate(td); err != nil {
		return err
	}
	return sweepItems(m, src, td)
}

// sweepItems appends the whole item sequence of tape src to td,
// rejecting a trailing unterminated fragment (so a corrupted tape
// cannot fuse with the next item written to td).
func sweepItems(m *core.Machine, src int, td *tape.Tape) error {
	ts := m.Tape(src)
	if err := ts.Rewind(); err != nil {
		return err
	}
	data, err := ts.ScanBytes()
	if err != nil {
		return err
	}
	if len(data) > 0 && data[len(data)-1] != problems.Separator {
		return fmt.Errorf("relalg: unterminated item on tape %q", ts.Name())
	}
	return td.WriteBlock(data)
}

// antiMerge emits items of l absent from r; both inputs are sorted
// and deduplicated.
func (c *evalCtx) antiMerge(l, r, dst int) error { return antiMergeTapes(c.m, l, r, dst) }

// antiMergeTapes runs the anti-merge on any machine — the coordinator's
// query machine or a shard-local machine streaming one contiguous left
// range against the broadcast right side. Both item streams go through
// buffers reused across iterations, so the steady-state loop allocates
// nothing.
func antiMergeTapes(m *core.Machine, l, r, dst int) error {
	tl, tr, td := m.Tape(l), m.Tape(r), m.Tape(dst)
	if err := rewindTruncate(td); err != nil {
		return err
	}
	if err := tl.Rewind(); err != nil {
		return err
	}
	if err := tr.Rewind(); err != nil {
		return err
	}
	mem := m.Mem()
	// l usually exhausts while r still holds a buffered item (and both
	// stay buffered on error paths); free the regions explicitly so
	// later operators' peak-memory reports are not inflated.
	defer mem.Free("item.relalg.l")
	defer mem.Free("item.relalg.r")
	var lBuf, rItem []byte
	rOK := false
	advanceR := func() error {
		item, ok, err := algorithms.ReadItemInto(tr, mem, "item.relalg.r", rItem[:0])
		if err != nil {
			return err
		}
		rItem, rOK = item, ok
		return nil
	}
	if err := advanceR(); err != nil {
		return err
	}
	for {
		lItem, ok, err := algorithms.ReadItemInto(tl, mem, "item.relalg.l", lBuf[:0])
		if err != nil {
			return err
		}
		lBuf = lItem
		if !ok {
			return nil
		}
		for rOK && string(rItem) < string(lItem) {
			if err := advanceR(); err != nil {
				return err
			}
		}
		if rOK && string(rItem) == string(lItem) {
			continue
		}
		if err := algorithms.WriteItem(td, lItem); err != nil {
			return err
		}
	}
}

// product pairs every l tuple with every r tuple: the right side is
// replicated by doubling (O(log |l|) scans), then one paired scan with
// a single buffered outer tuple emits the pairs.
func (c *evalCtx) product(l, r, dst int) error {
	// The replication scratch tapes come from the pool; acquiring both
	// up front pins the same indices the per-doubling acquire/release
	// cycle of the legacy evaluator used, so tape traffic is unchanged.
	rep, err := c.acquire()
	if err != nil {
		return err
	}
	defer c.release(rep)
	tmp, err := c.acquire()
	if err != nil {
		return err
	}
	defer c.release(tmp)
	return productTapes(c.m, l, r, dst, rep, tmp)
}

// productTapes runs the product on any machine, given two scratch tapes
// for the replication doubling. Outer, inner and pair buffers are all
// reused across iterations, so the N·M-pair loop allocates nothing in
// steady state.
func productTapes(m *core.Machine, l, r, dst, rep, tmp int) error {
	mem := m.Mem()
	// Count both sides.
	tl := m.Tape(l)
	if err := tl.Rewind(); err != nil {
		return err
	}
	lCount, err := algorithms.CountItems(tl, mem, "counter.relalg.lcount")
	if err != nil {
		return err
	}
	tr := m.Tape(r)
	if err := tr.Rewind(); err != nil {
		return err
	}
	rCount, err := algorithms.CountItems(tr, mem, "counter.relalg.rcount")
	if err != nil {
		return err
	}
	td := m.Tape(dst)
	if err := rewindTruncate(td); err != nil {
		return err
	}
	if lCount == 0 || rCount == 0 {
		return nil
	}

	// Replicate r onto the rep tape ≥ lCount times by doubling.
	if err := copyAll(m, r, rep); err != nil {
		return err
	}
	copies := 1
	for copies < lCount {
		// rep ← rep + rep via the scratch tape; concat reads rep twice,
		// two scans of the same tape.
		if err := concatTapes(m, rep, rep, tmp); err != nil {
			return err
		}
		if err := copyAll(m, tmp, rep); err != nil {
			return err
		}
		copies *= 2
	}

	// Paired scan: outer tuple i buffered while streaming its block
	// of rCount replicated inner tuples.
	if err := tl.Rewind(); err != nil {
		return err
	}
	trep := m.Tape(rep)
	if err := trep.Rewind(); err != nil {
		return err
	}
	// The last inner read never reaches the replicated tape's end, so
	// its region would stay charged after the product without this.
	defer mem.Free("item.relalg.outer")
	defer mem.Free("item.relalg.inner")
	var outerBuf, innerBuf, pair []byte
	for {
		outer, ok, err := algorithms.ReadItemInto(tl, mem, "item.relalg.outer", outerBuf[:0])
		if err != nil {
			return err
		}
		outerBuf = outer
		if !ok {
			return nil
		}
		for j := 0; j < rCount; j++ {
			inner, ok, err := algorithms.ReadItemInto(trep, mem, "item.relalg.inner", innerBuf[:0])
			if err != nil {
				return err
			}
			innerBuf = inner
			if !ok {
				return fmt.Errorf("relalg: replicated tape exhausted early")
			}
			pair = append(pair[:0], outer...)
			pair = append(pair, '|')
			pair = append(pair, inner...)
			if err := algorithms.WriteItem(td, pair); err != nil {
				return err
			}
		}
	}
}

func rewindTruncate(t *tape.Tape) error {
	if err := t.Rewind(); err != nil {
		return err
	}
	t.Truncate()
	return nil
}

// encodeTuple renders a tuple as a fresh tape item (its appendKey
// encoding).
func encodeTuple(t Tuple) []byte { return t.appendKey(nil) }

// decodeTuple parses a tape item, splitting on '|' directly on the
// byte slice: one slice allocation plus one string per field, without
// materializing the whole item as an intermediate string the way
// strings.Split would.
func decodeTuple(item []byte) Tuple {
	t := make(Tuple, 0, bytes.Count(item, tupleSep)+1)
	start := 0
	for i := 0; i <= len(item); i++ {
		if i == len(item) || item[i] == '|' {
			t = append(t, string(item[start:i]))
			start = i + 1
		}
	}
	return t
}

var tupleSep = []byte{'|'}

// writeRelationTape writes the relation's tuples as items, reusing
// one encode buffer across tuples.
func writeRelationTape(m *core.Machine, idx int, r *Relation) error {
	t := m.Tape(idx)
	if err := rewindTruncate(t); err != nil {
		return err
	}
	var enc []byte
	for _, tp := range r.Tuples {
		enc = tp.appendKey(enc[:0])
		if err := algorithms.WriteItem(t, enc); err != nil {
			return err
		}
	}
	return nil
}

// readRelationTape decodes a tape back into a relation.
func readRelationTape(m *core.Machine, idx int, schema Schema) (*Relation, error) {
	t := m.Tape(idx)
	if err := t.Rewind(); err != nil {
		return nil, err
	}
	out := &Relation{Schema: schema}
	for {
		item, ok, err := algorithms.ReadItem(t, m.Mem(), "item.relalg.read")
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Tuples = append(out.Tuples, decodeTuple(item))
	}
}
