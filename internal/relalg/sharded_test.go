package relalg

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/shard"
)

// queryPlans are the relational plans the query experiments exercise:
// the Theorem 11 symmetric difference (E6, and the relational face of
// the E7/E8 set-equality reductions) plus one plan per operator kind
// that reaches sortDedup.
func queryPlans() []Expr {
	return []Expr{
		SymmetricDifference("R1", "R2"),
		Scan{Rel: "R1"},
		Project{Cols: []string{"x"}, In: Scan{Rel: "R1"}},
		Select{Pred: ConstEq{Col: "x", Const: "01"}, In: Scan{Rel: "R2"}},
		Union{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}},
		Diff{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}},
		Product{L: Scan{Rel: "R1"}, R: Scan{Rel: "R2"}},
	}
}

// The tentpole invariant: for every query plan, the sharded evaluator
// produces tuple-for-tuple the result of the single-machine engine
// and of the legacy in-memory evaluator, at every shard count, and
// releases all internal memory.
func TestShardedEvalSTMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(6+trial*9, 8, rng)
		} else {
			in = problems.GenSetNo(6+trial*9, 8, rng)
		}
		db := InstanceDB(in)
		for _, q := range queryPlans() {
			m := core.NewMachine(NumQueryTapes, 1)
			ref, err := EvalST(q, db, m)
			if err != nil {
				t.Fatalf("%v: %v", q, err)
			}
			legacy, err := Eval(q, db)
			if err != nil {
				t.Fatalf("%v: %v", q, err)
			}
			for _, shards := range []int{1, 2, 4} {
				rep := &QueryReport{}
				ev := Evaluator{Shards: shards, Report: rep}
				sm := core.NewMachine(NumQueryTapes, 1)
				got, err := ev.EvalST(nil, q, db, sm)
				if err != nil {
					t.Fatalf("%v shards=%d: %v", q, shards, err)
				}
				if !reflect.DeepEqual(got.Tuples, ref.Tuples) {
					t.Fatalf("%v shards=%d: sharded result differs from the engine", q, shards)
				}
				if !got.EqualSet(legacy) {
					t.Fatalf("%v shards=%d: sharded result differs from the legacy evaluator", q, shards)
				}
				if cur := sm.Mem().Current(); cur != 0 {
					t.Errorf("%v shards=%d: %d bits still charged (regions %v)",
						q, shards, cur, sm.Mem().Regions())
				}
				if len(rep.Sorts) == 0 {
					t.Errorf("%v shards=%d: no operator sort reported", q, shards)
				}
				for _, sr := range rep.Sorts {
					if len(sr.Shards) != shards {
						t.Errorf("%v: sort report has %d shards, want %d", q, len(sr.Shards), shards)
					}
				}
			}
		}
	}
}

// The rollup invariants of the sharded query path, mirroring the
// internal/shard sort suite: across shard counts the number of
// operator sorts is fixed, sum(scans) never drops below the 1-shard
// fleet, no shard exceeds the single-machine memory peak, and the
// widest shard's scan count strictly falls.
func TestShardedQueryRollupInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	in := problems.GenSetNo(256, 16, rng)
	db := InstanceDB(in)
	q := SymmetricDifference("R1", "R2")
	const runMem = 256 // 16-item runs: the scan sorts form 16 runs each

	single := core.NewMachine(NumQueryTapes, 1)
	if _, err := (Evaluator{RunMemoryBits: runMem}).EvalST(nil, q, db, single); err != nil {
		t.Fatal(err)
	}
	singlePeak := single.Resources().PeakMemoryBits

	var oneShard *QueryReport
	prevMax := int(^uint(0) >> 1)
	for _, shards := range []int{1, 2, 4} {
		rep := &QueryReport{}
		m := core.NewMachine(NumQueryTapes, 1)
		if _, err := (Evaluator{Shards: shards, RunMemoryBits: runMem, Report: rep}).EvalST(nil, q, db, m); err != nil {
			t.Fatal(err)
		}
		if oneShard == nil {
			oneShard = rep
		}
		if len(rep.Sorts) != len(oneShard.Sorts) {
			t.Fatalf("shards=%d: %d operator sorts, want %d", shards, len(rep.Sorts), len(oneShard.Sorts))
		}
		if len(rep.Scans) != len(oneShard.Scans) || len(rep.Scans) == 0 {
			t.Fatalf("shards=%d: %d operator scans, want %d (nonzero)", shards, len(rep.Scans), len(oneShard.Scans))
		}
		for _, sr := range rep.Scans {
			if sr.Op != ScanOpDiff || len(sr.Shards) != shards {
				t.Fatalf("shards=%d: scan report op=%q shards=%d", shards, sr.Op, len(sr.Shards))
			}
		}
		agg := rep.Rollup()
		if agg.Shards != shards {
			t.Errorf("shards=%d: rollup census %d", shards, agg.Shards)
		}
		if agg.SumScans < oneShard.Rollup().SumScans {
			t.Errorf("shards=%d: sum(scans)=%d < 1-shard fleet %d",
				shards, agg.SumScans, oneShard.Rollup().SumScans)
		}
		if agg.MaxMemoryBits > singlePeak {
			t.Errorf("shards=%d: max(memory)=%d > single machine %d", shards, agg.MaxMemoryBits, singlePeak)
		}
		if agg.MaxScans >= prevMax {
			t.Errorf("shards=%d: max(scans)=%d did not fall (prev %d)", shards, agg.MaxScans, prevMax)
		}
		prevMax = agg.MaxScans
		var critSum int64
		for _, sr := range rep.Sorts {
			critSum += sr.CriticalPathSteps()
		}
		for _, sr := range rep.Scans {
			critSum += sr.CriticalPathSteps()
		}
		if got := rep.CriticalPathSteps(); got != critSum {
			t.Errorf("shards=%d: critical path %d, want %d", shards, got, critSum)
		}
	}
}

// Evaluator.Sorted is the machine-backed Relation.Sorted: same order,
// duplicates kept, at every shard count.
func TestEvaluatorSortedMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 8; trial++ {
		rel := &Relation{Name: "R", Schema: Schema{"x", "y"}}
		for i := 0; i < rng.Intn(50); i++ {
			rel.Tuples = append(rel.Tuples, Tuple{
				string([]byte{'0' + byte(rng.Intn(2))}),
				string([]byte{'0' + byte(rng.Intn(2)), '0' + byte(rng.Intn(2))}),
			})
		}
		want := rel.Sorted()
		for _, shards := range []int{0, 1, 3} {
			m := core.NewMachine(NumQueryTapes, 1)
			got, err := Evaluator{Shards: shards}.Sorted(nil, m, rel)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d: %d tuples, want %d (duplicates must be kept)", shards, len(got), len(want))
			}
			for i := range got {
				if got[i].key() != want[i].key() {
					t.Fatalf("shards=%d: tuple %d = %v, want %v", shards, i, got[i], want[i])
				}
			}
			if cur := m.Mem().Current(); cur != 0 {
				t.Errorf("shards=%d: %d bits still charged after Sorted", shards, cur)
			}
		}
	}
}

// Evaluator.EqualSet is the machine-backed Relation.EqualSet: same
// verdict on equal and unequal pairs, at every shard count.
func TestEvaluatorEqualSetMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 10; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(12, 8, rng)
		} else {
			in = problems.GenSetNo(12, 8, rng)
		}
		db := InstanceDB(in)
		want := db["R1"].EqualSet(db["R2"])
		for _, shards := range []int{0, 2, 4} {
			m := core.NewMachine(NumQueryTapes, 1)
			got, err := Evaluator{Shards: shards}.EqualSet(nil, m, db["R1"], db["R2"])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("shards=%d: EqualSet=%v, want %v", shards, got, want)
			}
			if cur := m.Mem().Current(); cur != 0 {
				t.Errorf("shards=%d: %d bits still charged after EqualSet", shards, cur)
			}
		}
	}
}

// An injected Launch overrides the execution entirely (the
// trials.Launcher pattern): it must see every operator sort and its
// resolved engine configuration, and a launcher that delegates to the
// sharded path must reproduce the engine's bytes.
func TestSortLauncherInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	in := problems.GenSetNo(24, 8, rng)
	db := InstanceDB(in)
	q := SymmetricDifference("R1", "R2")

	ref, err := EvalST(q, db, core.NewMachine(NumQueryTapes, 1))
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	var reps []shard.SortReport
	launch := func(_ context.Context, s algorithms.Sorter, m *core.Machine, src int, work []int) error {
		calls++
		if !s.Dedup {
			t.Errorf("operator sort %d arrived without the dedup hook", calls)
		}
		if s.FanIn != len(work) {
			t.Errorf("operator sort %d: fan-in %d but %d work tapes", calls, s.FanIn, len(work))
		}
		rep, err := shard.Sort{
			Shards: 3, FanIn: s.FanIn, RunMemoryBits: s.RunMemoryBits, Dedup: s.Dedup,
		}.SortTape(nil, m, src, 1)
		if err == nil {
			reps = append(reps, rep)
		}
		return err
	}
	// Shards is ignored when Launch is set: the injected shape wins.
	got, err := Evaluator{Shards: 99, Launch: launch}.EvalST(nil, q, db, core.NewMachine(NumQueryTapes, 1))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("injected launcher never invoked")
	}
	if !reflect.DeepEqual(got.Tuples, ref.Tuples) {
		t.Fatal("launcher-backed result differs from the engine")
	}
	for i, rep := range reps {
		if len(rep.Shards) != 3 {
			t.Errorf("sort %d ran on %d shards, want 3", i, len(rep.Shards))
		}
	}
}

// The zero Evaluator is the historical single-machine EvalST, bit for
// bit: identical result and identical resource report.
func TestZeroEvaluatorBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 4; trial++ {
		in := problems.GenSetNo(20, 8, rng)
		db := InstanceDB(in)
		for _, q := range queryPlans() {
			m1 := core.NewMachine(NumQueryTapes, 1)
			r1, err := EvalST(q, db, m1)
			if err != nil {
				t.Fatal(err)
			}
			m2 := core.NewMachine(NumQueryTapes, 1)
			r2, err := Evaluator{}.EvalST(nil, q, db, m2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Tuples, r2.Tuples) {
				t.Fatalf("%v: zero-Evaluator result differs", q)
			}
			if !reflect.DeepEqual(m1.Resources(), m2.Resources()) {
				t.Fatalf("%v: zero-Evaluator resources differ:\n%v\nvs\n%v",
					q, m1.Resources(), m2.Resources())
			}
		}
	}
}
