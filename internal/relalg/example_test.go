package relalg_test

import (
	"fmt"

	"extmem/internal/core"
	"extmem/internal/relalg"
)

// ExampleEvaluator evaluates the Theorem 11 symmetric-difference
// query with every operator sort sharded across two machines: the
// answer is byte-identical to the single-machine evaluator (a sorted,
// deduplicated stream is canonical), while the per-shard (r, s, t)
// census of each operator sort lands in the QueryReport.
func ExampleEvaluator() {
	db := relalg.DB{
		"R1": {Name: "R1", Schema: relalg.Schema{"x"}, Tuples: []relalg.Tuple{{"01"}, {"10"}, {"11"}}},
		"R2": {Name: "R2", Schema: relalg.Schema{"x"}, Tuples: []relalg.Tuple{{"01"}, {"10"}}},
	}
	rep := &relalg.QueryReport{}
	ev := relalg.Evaluator{Shards: 2, Report: rep}
	m := core.NewMachine(relalg.NumQueryTapes, 1)
	r, err := ev.EvalST(nil, relalg.SymmetricDifference("R1", "R2"), db, m)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Q' = %v\n", r.Tuples)
	fmt.Printf("operator sorts: %d\n", len(rep.Sorts))
	agg := rep.Rollup()
	fmt.Printf("widest shard: %d scans across %d shards\n", agg.MaxScans, agg.Shards)
	// Output:
	// Q' = [[11]]
	// operator sorts: 5
	// widest shard: 6 scans across 2 shards
}
