package relalg

// pipeline.go is the merge-free stage handoff: when an operator's
// consumer immediately re-sorts its output (the children of a Union —
// whatever the evaluator leaves on their tapes is concatenated and
// re-sorted on the spot), the producer's final k-way merge is pure
// waste: the consumer's sort would happily start from the producer's
// per-shard sorted runs. With Evaluator.Pipeline set, such producers
// run their sort in KeepRuns mode (shard.Sort.RunKeepRuns) and hand
// the per-shard run payloads directly to the consuming stage's merge
// (shard.Sort.MergeRuns), eliminating one full write+read of every
// intermediate relation: the producer's combine, the coordinator's
// concatenation sweep, and the consumer's distribution scan all
// disappear. Nested unions collapse entirely — their runs forward to
// the outermost consuming merge, which is where deduplication (a
// combine-stage concern) finally happens.
//
// A sorted, deduplicated item sequence is canonical, so the pipelined
// result is byte-identical to the staged one; only the census moves.
// The handoff is opt-in (Pipeline, or a planner via Plan) and only
// active on the sharded path, so the zero evaluator and the PR 5
// sharded path keep their historical accounting bit for bit.

import (
	"fmt"

	"extmem/internal/shard"
)

// pipelined reports whether the merge-free handoff is active: it is
// opt-in (Pipeline, or always under a planner) and needs the sharded
// path (KeepRuns hands over per-shard tapes; a custom Launch owns its
// sorts and cannot be bypassed).
func (c *evalCtx) pipelined() bool {
	return (c.ev.Pipeline || c.ev.Plan != nil) && c.ev.scanShards() >= 1
}

// evalRuns evaluates an expression whose consumer immediately re-sorts,
// returning the result as per-shard sorted run payloads (duplicates
// possible within and across runs — the consuming merge dedups) plus
// the schema. The concatenation of a sort of the runs' union is
// exactly the relation eval would have left on a tape.
func (c *evalCtx) evalRuns(e Expr) ([][]byte, Schema, error) {
	switch e := e.(type) {
	case Union:
		// Forward both children's runs: the union's own sort is the
		// consumer's sort, one level up.
		lRuns, ls, err := c.evalRuns(e.L)
		if err != nil {
			return nil, nil, err
		}
		rRuns, rs, err := c.evalRuns(e.R)
		if err != nil {
			return nil, nil, err
		}
		if !ls.Equal(rs) {
			return nil, nil, fmt.Errorf("%w: %v vs %v", ErrSchema, ls, rs)
		}
		return append(lRuns, rRuns...), ls, nil

	case Scan:
		r, ok := c.db[e.Rel]
		if !ok {
			return nil, nil, fmt.Errorf("relalg: unknown relation %q", e.Rel)
		}
		idx, err := c.acquire()
		if err != nil {
			return nil, nil, err
		}
		defer c.release(idx)
		if err := writeRelationTape(c.m, idx, r); err != nil {
			return nil, nil, err
		}
		runs, err := c.sortKeepRuns(idx)
		if err != nil {
			return nil, nil, err
		}
		return runs, r.Schema, nil

	case Select:
		// A selection of a sorted, deduplicated input is itself sorted
		// and deduplicated: hand it over as a single run.
		in, schema, err := c.eval(e.In)
		if err != nil {
			return nil, nil, err
		}
		dst, err := c.acquire()
		if err != nil {
			return nil, nil, err
		}
		defer c.release(dst)
		if err := c.filterScan(in, dst, schema, e.Pred); err != nil {
			return nil, nil, err
		}
		c.release(in)
		return [][]byte{c.m.Tape(dst).Contents()}, schema, nil

	case Project:
		in, schema, err := c.eval(e.In)
		if err != nil {
			return nil, nil, err
		}
		idx := make([]int, len(e.Cols))
		for i, col := range e.Cols {
			if idx[i] = schema.Col(col); idx[i] < 0 {
				return nil, nil, fmt.Errorf("relalg: unknown column %q", col)
			}
		}
		dst, err := c.acquire()
		if err != nil {
			return nil, nil, err
		}
		defer c.release(dst)
		if err := c.rewriteScan(in, dst, func(t Tuple) (Tuple, bool) {
			nt := make(Tuple, len(idx))
			for i, j := range idx {
				nt[i] = t[j]
			}
			return nt, true
		}); err != nil {
			return nil, nil, err
		}
		c.release(in)
		runs, err := c.sortKeepRuns(dst)
		if err != nil {
			return nil, nil, err
		}
		return runs, Schema(e.Cols), nil

	case Diff:
		// The sharded anti-merge's per-shard outputs are sorted and
		// disjoint — already runs; skip its combine too.
		l, ls, r, rs, err := c.evalPair(e.L, e.R)
		if err != nil {
			return nil, nil, err
		}
		if !ls.Equal(rs) {
			return nil, nil, fmt.Errorf("%w: %v vs %v", ErrSchema, ls, rs)
		}
		runs, err := c.shardedScanRuns(ScanOpDiff, l, r, c.scanShardCount(l))
		if err != nil {
			return nil, nil, err
		}
		c.release(l)
		c.release(r)
		return runs, ls, nil

	case Product:
		l, ls, r, rs, err := c.evalPair(e.L, e.R)
		if err != nil {
			return nil, nil, err
		}
		dst, err := c.acquire()
		if err != nil {
			return nil, nil, err
		}
		defer c.release(dst)
		if err := c.productOp(l, r, dst); err != nil {
			return nil, nil, err
		}
		c.release(l)
		c.release(r)
		runs, err := c.sortKeepRuns(dst)
		if err != nil {
			return nil, nil, err
		}
		return runs, productSchema(e, ls, rs), nil

	case Rename:
		runs, schema, err := c.evalRuns(e.In)
		if err != nil {
			return nil, nil, err
		}
		if len(e.Cols) != len(schema) {
			return nil, nil, fmt.Errorf("%w: rename arity %d vs %d", ErrSchema, len(e.Cols), len(schema))
		}
		return runs, Schema(e.Cols), nil

	case EquiJoin:
		return c.evalRuns(e.expand())

	case SemiJoin:
		ex, err := e.expand(c.db)
		if err != nil {
			return nil, nil, err
		}
		return c.evalRuns(ex)

	default:
		return nil, nil, fmt.Errorf("relalg: unknown expression %T", e)
	}
}

// stageSort builds the shard.Sort configuration of a pipelined stage
// over a known input census: the planner's per-stage choice in plan
// mode, otherwise the evaluator's fixed shape resolved exactly like
// engineSort does for the launcher path.
func (c *evalCtx) stageSort(items int, bytes int64, dedup bool) sortConfig {
	if c.ev.Plan != nil {
		sh := c.ev.Plan.Choose(items, bytes)
		return sortConfig{
			Shards: sh.Shards, FanIn: sh.FanIn, RunMemoryBits: sh.RunMemoryBits,
			Dedup: dedup,
		}
	}
	fanIn := c.ev.fanInTarget()
	if limit := 2 + len(c.free); fanIn > limit {
		fanIn = limit
	}
	return sortConfig{
		Shards:        c.ev.scanShards(),
		FanIn:         fanIn,
		RunMemoryBits: c.ev.runMemoryBits(),
		Dedup:         dedup,
	}
}

// sortConfig mirrors the shard.Sort fields a pipelined stage chooses;
// kept as a separate type so the planner can override it per stage.
type sortConfig struct {
	Shards        int
	FanIn         int
	RunMemoryBits int64
	Dedup         bool
}

// sortKeepRuns runs the merge-free half of an operator sort: the
// sharded sort of tape idx's items stops after the shard-local sorts
// and returns the per-shard sorted payloads. The stage's report (Merge
// zero: none ran) is recorded like any operator sort's.
func (c *evalCtx) sortKeepRuns(idx int) ([][]byte, error) {
	data := c.m.Tape(idx).Contents()
	cfg := c.stageSort(countItems(data), int64(len(data)), false)
	s := c.ev.shardSort(cfg)
	runs, rep, err := s.RunKeepRuns(c.ctx, data, c.ev.Seed)
	if err != nil {
		return nil, err
	}
	if c.ev.Report != nil {
		c.ev.Report.record(rep)
	}
	return runs, nil
}

// mergeRuns runs the consuming half: the handed-over runs are merged
// (and deduplicated — set semantics happen here) on the sharded merge
// path, and the result installed on dst via SwapTape.
func (c *evalCtx) mergeRuns(runs [][]byte, dst int) error {
	var items int
	var total int64
	for _, r := range runs {
		items += countItems(r)
		total += int64(len(r))
	}
	cfg := c.stageSort(items, total, true)
	s := c.ev.shardSort(cfg)
	out, rep, err := s.MergeRuns(c.ctx, runs, c.ev.Seed)
	if err != nil {
		return err
	}
	c.m.SwapTape(dst, out)
	if c.ev.Report != nil {
		c.ev.Report.record(rep)
	}
	return nil
}

// shardSort builds the shard.Sort for a pipelined stage from the
// evaluator's execution shape (retry policy, chaos hook, transport
// seam) plus the stage's engine configuration.
func (ev Evaluator) shardSort(cfg sortConfig) shard.Sort {
	return shard.Sort{
		Shards:        cfg.Shards,
		FanIn:         cfg.FanIn,
		RunMemoryBits: cfg.RunMemoryBits,
		Dedup:         cfg.Dedup,
		Retry:         ev.Retry,
		Inject:        ev.Inject,
		Exec:          ev.Exec,
		TapeOpts:      ev.TapeOpts,
	}
}
