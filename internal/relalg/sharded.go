package relalg

// sharded.go puts the streaming evaluator on the sharded execution
// layer: every operator that reaches sortDedup (Scan, Project, Union,
// Product — and through them EvalST's whole set-semantics discipline)
// can run its sort on the run-partitioned sharded path of
// internal/shard instead of the single-machine k-way engine. The
// execution shape is injected exactly like trials.Launcher on the
// fleet side: an Evaluator with a nil launcher and zero Shards is the
// historical single-machine EvalST, bit for bit, while Shards >= 1
// ships each sort's initial runs to shard-local machines and k-way
// merges the results back. A sorted, deduplicated item sequence is
// canonical, so the relation an operator leaves on its tape — and
// therefore the query result — is byte-identical at every shard
// count; only the resource census moves, and it is preserved
// per-shard in QueryReport rather than blurred into the coordinator.

import (
	"bytes"
	"context"
	"fmt"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/plan"
	"extmem/internal/problems"
	"extmem/internal/shard"
	"extmem/internal/tape"
)

// countItems counts the '#'-terminated items of a tape payload —
// coordinator-side provenance for the planner's stage estimates (no
// tape is charged), the same off-model census shard.MergeRuns keeps.
func countItems(data []byte) int { return bytes.Count(data, []byte{problems.Separator}) }

// Evaluator is the streaming query evaluator with an injectable sort
// execution shape. The zero value is exactly the single-machine
// EvalST: every operator sort runs the k-way engine on the query
// machine with bitwise-identical accounting.
type Evaluator struct {
	// Shards >= 1 routes every operator sort through the sharded
	// run-partitioned path (shard.Sort) with that many shard-local
	// machines; 0 (the zero value) keeps the single-machine engine.
	Shards int

	// FanIn is the merge fan-in target for operator sorts; 0 means the
	// historical default (the two scratch tapes plus up to two pool
	// tapes, fan-in 4). Values below 2 mean 2. On the sharded path the
	// resolved fan-in also configures the shard-local engines, so the
	// run partitioning matches what the single machine would form.
	FanIn int

	// RunMemoryBits is the run-formation budget of operator sorts; 0
	// means algorithms.DefaultRunMemoryBits.
	RunMemoryBits int64

	// Seed feeds the shard machines' coin sources (unused by the
	// deterministic sort; kept schedule-independent for any future
	// randomized shard step).
	Seed int64

	// Retry is the per-shard retry policy of operator sorts on the
	// sharded path: a shard attempt that fails (an injected fault, a
	// recovered panic) is re-attempted up to the budget, then the
	// coordinator re-runs the range itself — the query result is
	// byte-identical throughout. The zero policy attempts once.
	Retry shard.RetryPolicy

	// Inject, when non-nil, is the chaos hook of the sharded path (see
	// shard.Sort.Inject): consulted before every shard-local sort
	// attempt, never by the coordinator's fallback.
	Inject shard.InjectFunc

	// Plan, when non-nil, is the cost-based planner: every operator
	// stage's execution shape — shard count, merge fan-in, run-formation
	// memory — is chosen per stage by minimizing the predicted critical
	// path of that stage's measured input under the planner's budget,
	// and the merge-free pipelined handoff is always active. Plan
	// implies the sharded path; Shards, FanIn and RunMemoryBits are
	// ignored (each stage gets its own shape), while Retry, Inject and
	// Exec still govern how shard attempts execute. An explicit Launch
	// wins over Plan. The query result is byte-identical to every other
	// execution shape: the planner may move the shape, never a byte.
	Plan *plan.Planner

	// Pipeline enables the merge-free stage handoff (see pipeline.go):
	// producers feeding a Union hand their per-shard sorted runs
	// directly to the union's merge instead of combining, concatenating
	// and re-distributing. Only active on the built-in sharded path
	// (Shards >= 1, no custom Launch); the query result is
	// byte-identical, only the census moves.
	Pipeline bool

	// TapeOpts selects the tape storage backend of every machine the
	// sharded path constructs (shard-local sorters, distribution and
	// combine machines — see shard.Sort.TapeOpts). The caller's query
	// machine keeps whatever storage it was built with. Storage is an
	// execution shape: the query result and every resource count are
	// identical whatever it says.
	TapeOpts tape.Options

	// Exec, when non-nil, overrides how shard-local sort attempts of
	// the sharded path execute (see shard.Sort.Exec) — the seam
	// internal/transport uses to run every operator sort's shard
	// machines in worker processes. It only applies on the sharded path
	// (Shards >= 1, no custom Launch); the query result is
	// byte-identical with or without it.
	Exec shard.ExecFunc

	// ExecScan, when non-nil, overrides how shard-local operator-scan
	// attempts (the difference's anti-merge, the product's paired
	// scan) execute — the scan-side twin of Exec, implemented by
	// internal/transport so planned queries honor `-transport` end to
	// end. Consulted on budgeted attempts only; the coordinator's
	// fallback always executes the ScanJob itself. The query result is
	// byte-identical with or without it.
	ExecScan ScanExecFunc

	// Launch, when non-nil, overrides the sort execution entirely —
	// the trials.Launcher pattern on the sort side. Shards is then
	// ignored; nil together with Shards == 0 selects the
	// single-machine engine.
	Launch algorithms.SortLauncher

	// Report, when non-nil, collects one shard.SortReport per operator
	// sort executed on the built-in sharded path, in operator order.
	// (A custom Launch reports through its own closure instead.)
	Report *QueryReport
}

// EvalST evaluates the expression over the database on the given
// machine (which must have NumQueryTapes tapes) under the evaluator's
// execution shape, returning the result relation. The result is
// byte-identical at every shard count; with the zero Evaluator the
// machine's resource report is also bitwise-identical to the
// historical single-machine evaluator. ctx bounds the evaluation's
// sharded sorts (nil means no bound; the single-machine engine, which
// never blocks, ignores it).
func (ev Evaluator) EvalST(ctx context.Context, e Expr, db DB, m *core.Machine) (*Relation, error) {
	ec, err := ev.newCtx(ctx, m)
	if err != nil {
		return nil, err
	}
	ec.db = db
	idx, schema, err := ec.eval(e)
	if err != nil {
		return nil, err
	}
	defer ec.release(idx)
	out, err := readRelationTape(m, idx, schema)
	if err != nil {
		return nil, err
	}
	if ev.Report != nil {
		ev.Report.Coordinator = m.Resources()
	}
	return out, nil
}

// Sorted returns the relation's tuples sorted by their encoded form
// (duplicates kept), computed on the machine through the evaluator's
// sort path — the ST-model counterpart of Relation.Sorted.
func (ev Evaluator) Sorted(ctx context.Context, m *core.Machine, r *Relation) ([]Tuple, error) {
	ec, err := ev.newCtx(ctx, m)
	if err != nil {
		return nil, err
	}
	idx, err := ec.acquire()
	if err != nil {
		return nil, err
	}
	defer ec.release(idx)
	if err := writeRelationTape(m, idx, r); err != nil {
		return nil, err
	}
	if err := ec.engineSort(idx, false); err != nil {
		return nil, err
	}
	out, err := readRelationTape(m, idx, r.Schema)
	if err != nil {
		return nil, err
	}
	return out.Tuples, nil
}

// EqualSet reports whether two relations hold the same set of tuples,
// decided on the machine through the evaluator's sort path: both
// sides are sorted and deduplicated (sharded when the evaluator is),
// then compared in one lockstep scan — the ST-model counterpart of
// Relation.EqualSet.
func (ev Evaluator) EqualSet(ctx context.Context, m *core.Machine, a, b *Relation) (bool, error) {
	ec, err := ev.newCtx(ctx, m)
	if err != nil {
		return false, err
	}
	ia, err := ec.acquire()
	if err != nil {
		return false, err
	}
	defer ec.release(ia)
	ib, err := ec.acquire()
	if err != nil {
		return false, err
	}
	defer ec.release(ib)
	for _, p := range []struct {
		idx int
		rel *Relation
	}{{ia, a}, {ib, b}} {
		if err := writeRelationTape(m, p.idx, p.rel); err != nil {
			return false, err
		}
		if err := ec.engineSort(p.idx, true); err != nil {
			return false, err
		}
	}
	ta, tb := m.Tape(ia), m.Tape(ib)
	mem := m.Mem()
	defer mem.Free("item.relalg.eqA")
	defer mem.Free("item.relalg.eqB")
	for {
		itemA, okA, err := algorithms.ReadItem(ta, mem, "item.relalg.eqA")
		if err != nil {
			return false, err
		}
		itemB, okB, err := algorithms.ReadItem(tb, mem, "item.relalg.eqB")
		if err != nil {
			return false, err
		}
		if okA != okB {
			return false, nil
		}
		if !okA {
			return true, nil
		}
		if algorithms.Compare(itemA, itemB) != 0 {
			return false, nil
		}
	}
}

// newCtx builds the evaluation context: the bounding context, the
// tape free-list and the resolved sort launcher.
func (ev Evaluator) newCtx(ctx context.Context, m *core.Machine) (*evalCtx, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if m.NumTapes() < NumQueryTapes {
		return nil, fmt.Errorf("relalg: machine has %d tapes, need %d", m.NumTapes(), NumQueryTapes)
	}
	ec := &evalCtx{ctx: ctx, m: m, ev: ev, launch: ev.launcher()}
	for i := m.NumTapes() - 1; i >= firstPool; i-- {
		ec.free = append(ec.free, i)
	}
	return ec, nil
}

// launcher resolves the evaluator's sort execution shape: an explicit
// Launch wins, Shards >= 1 selects the sharded path (with the
// evaluator's retry policy and chaos hook), and the zero shape is nil
// — the single-machine engine.
func (ev Evaluator) launcher() algorithms.SortLauncher {
	if ev.Launch != nil {
		return ev.Launch
	}
	if ev.Plan != nil {
		var onReport func(shard.SortReport)
		if ev.Report != nil {
			onReport = ev.Report.record
		}
		return func(ctx context.Context, sorter algorithms.Sorter, m *core.Machine, src int, _ []int) error {
			data := m.Tape(src).Contents()
			sh := ev.Plan.Choose(countItems(data), int64(len(data)))
			rep, err := shard.Sort{
				Shards: sh.Shards, FanIn: sh.FanIn, RunMemoryBits: sh.RunMemoryBits,
				Dedup: sorter.Dedup,
				Retry: ev.Retry, Inject: ev.Inject, Exec: ev.Exec,
				TapeOpts: ev.TapeOpts,
			}.SortTape(ctx, m, src, ev.Seed)
			if err != nil {
				return err
			}
			if onReport != nil {
				onReport(rep)
			}
			return nil
		}
	}
	if ev.Shards >= 1 {
		var onReport func(shard.SortReport)
		if ev.Report != nil {
			onReport = ev.Report.record
		}
		return shard.Sort{
			Shards:   ev.Shards,
			Retry:    ev.Retry,
			Inject:   ev.Inject,
			Exec:     ev.Exec,
			TapeOpts: ev.TapeOpts,
		}.Launcher(ev.Seed, onReport)
	}
	return nil
}

// fanInTarget resolves the operator-sort fan-in target.
func (ev Evaluator) fanInTarget() int {
	switch {
	case ev.FanIn == 0:
		return sortDedupFanIn
	case ev.FanIn < 2:
		return 2
	}
	return ev.FanIn
}

// runMemoryBits resolves the operator-sort run-formation budget.
func (ev Evaluator) runMemoryBits() int64 {
	if ev.RunMemoryBits == 0 {
		return algorithms.DefaultRunMemoryBits
	}
	return ev.RunMemoryBits
}

// scanRunBits resolves the run-partition budget of sharded operator
// scans: the planner's memory budget in plan mode, the evaluator's
// run-formation budget otherwise.
func (ev Evaluator) scanRunBits() int64 {
	if ev.Plan != nil && ev.Plan.Budget.MemoryBits > 0 {
		return ev.Plan.Budget.MemoryBits
	}
	return ev.runMemoryBits()
}

// QueryReport is the resource census of one sharded query evaluation:
// one shard.SortReport per operator sort and one ScanReport per
// sharded operator scan (anti-merge, product), each in the order the
// evaluator ran them, each carrying the distribution scan, the
// per-shard (r, s, t) reports and the combining machine of that stage.
type QueryReport struct {
	Sorts []shard.SortReport
	Scans []ScanReport

	// Coordinator is the query machine's own resource report — the
	// coordinator-side scans gluing the stages together (operator
	// concatenations, selection and projection rewrites, relation I/O).
	// EvalST fills it in after the evaluation completes.
	Coordinator core.Resources
}

// record appends one operator sort's report. EvalST runs operators
// sequentially, so no locking is needed.
func (q *QueryReport) record(rep shard.SortReport) { q.Sorts = append(q.Sorts, rep) }

// recordScan appends one sharded operator scan's report.
func (q *QueryReport) recordScan(rep ScanReport) { q.Scans = append(q.Scans, rep) }

// Rollup aggregates across every operator sort and sharded scan of the
// query by folding the per-stage rollups through shard.Agg.Merge: the
// Max fields are the largest per-shard maxima any stage saw (the
// parallel wall-clock view of the widest operator), the Sum fields
// total the work of the whole fleet across all stages.
func (q *QueryReport) Rollup() shard.Agg {
	var a shard.Agg
	for _, rep := range q.Sorts {
		a = a.Merge(rep.Rollup())
	}
	for _, rep := range q.Scans {
		a = a.Merge(rep.Rollup())
	}
	return a
}

// CriticalPathSteps sums the per-stage critical paths (distribute →
// slowest shard → combine): operator stages run one after another, so
// the query's sharded wall-clock stand-in is their sequence.
func (q *QueryReport) CriticalPathSteps() int64 {
	var steps int64
	for _, rep := range q.Sorts {
		steps += rep.CriticalPathSteps()
	}
	for _, rep := range q.Scans {
		steps += rep.CriticalPathSteps()
	}
	return steps
}

// TotalSteps is the query's end-to-end wall-clock stand-in: the
// coordinator's own steps plus every stage's critical path. This is the
// honest basis for comparing execution shapes that move work between
// the coordinator and the fleet (e.g. the pipelined handoff, which
// deletes coordinator concatenations along with stage merges).
func (q *QueryReport) TotalSteps() int64 {
	return q.Coordinator.Steps + q.CriticalPathSteps()
}
