package relalg

import (
	"testing"

	"extmem/internal/core"
)

func joinDB() DB {
	return DB{
		"Emp": {Schema: Schema{"name", "dept"}, Tuples: []Tuple{
			{"ann", "d1"}, {"bob", "d2"}, {"cat", "d1"}, {"dan", "d3"},
		}},
		"Dept": {Schema: Schema{"id", "city"}, Tuples: []Tuple{
			{"d1", "berlin"}, {"d2", "paris"},
		}},
	}
}

func TestEquiJoinReference(t *testing.T) {
	db := joinDB()
	q := EquiJoin{L: Scan{Rel: "Emp"}, R: Scan{Rel: "Dept"}, OnL: "dept", OnR: "id"}
	r, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, r,
		"ann|d1|d1|berlin",
		"bob|d2|d2|paris",
		"cat|d1|d1|berlin",
	)
	if !r.Schema.Equal(Schema{"l.name", "l.dept", "r.id", "r.city"}) {
		t.Fatalf("schema = %v", r.Schema)
	}
}

func TestSemiJoinReference(t *testing.T) {
	db := joinDB()
	q := SemiJoin{L: Scan{Rel: "Emp"}, R: Scan{Rel: "Dept"}, OnL: "dept", OnR: "id"}
	r, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// dan (d3) has no department row.
	wantTuples(t, r, "ann|d1", "bob|d2", "cat|d1")
	if !r.Schema.Equal(Schema{"name", "dept"}) {
		t.Fatalf("schema = %v", r.Schema)
	}
}

func TestJoinsStreamingMatchesReference(t *testing.T) {
	db := joinDB()
	queries := []Expr{
		EquiJoin{L: Scan{Rel: "Emp"}, R: Scan{Rel: "Dept"}, OnL: "dept", OnR: "id"},
		SemiJoin{L: Scan{Rel: "Emp"}, R: Scan{Rel: "Dept"}, OnL: "dept", OnR: "id"},
		// A join feeding a projection.
		Project{Cols: []string{"r.city"}, In: EquiJoin{L: Scan{Rel: "Emp"}, R: Scan{Rel: "Dept"}, OnL: "dept", OnR: "id"}},
	}
	for _, q := range queries {
		want, err := Eval(q, db)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		m := core.NewMachine(NumQueryTapes, 1)
		got, err := EvalST(q, db, m)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !got.EqualSet(want) {
			t.Fatalf("%s:\nstream    = %v\nreference = %v", q, tuplesOf(got), tuplesOf(want))
		}
	}
}

func TestInferSchema(t *testing.T) {
	db := joinDB()
	cases := []struct {
		e    Expr
		want Schema
	}{
		{Scan{Rel: "Emp"}, Schema{"name", "dept"}},
		{Select{Pred: ConstEq{Col: "name", Const: "x"}, In: Scan{Rel: "Emp"}}, Schema{"name", "dept"}},
		{Project{Cols: []string{"dept"}, In: Scan{Rel: "Emp"}}, Schema{"dept"}},
		{Union{L: Scan{Rel: "Emp"}, R: Scan{Rel: "Emp"}}, Schema{"name", "dept"}},
		{Diff{L: Scan{Rel: "Emp"}, R: Scan{Rel: "Emp"}}, Schema{"name", "dept"}},
		{Rename{Cols: []string{"a", "b"}, In: Scan{Rel: "Emp"}}, Schema{"a", "b"}},
		{Product{L: Scan{Rel: "Dept"}, R: Scan{Rel: "Dept"}}, Schema{"l.id", "l.city", "r.id", "r.city"}},
		{SemiJoin{L: Scan{Rel: "Emp"}, R: Scan{Rel: "Dept"}, OnL: "dept", OnR: "id"}, Schema{"name", "dept"}},
	}
	for _, c := range cases {
		got, err := InferSchema(c.e, db)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if !got.Equal(c.want) {
			t.Fatalf("%s: schema %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := InferSchema(Scan{Rel: "nope"}, db); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestJoinStrings(t *testing.T) {
	q := EquiJoin{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}, OnL: "x", OnR: "y"}
	if q.String() != "(A ⋈[x=y] B)" {
		t.Fatalf("String = %q", q.String())
	}
	s := SemiJoin{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}, OnL: "x", OnR: "y"}
	if s.String() != "(A ⋉[x=y] B)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestEquiJoinEmptySides(t *testing.T) {
	db := DB{
		"A": {Schema: Schema{"x"}, Tuples: nil},
		"B": {Schema: Schema{"y"}, Tuples: []Tuple{{"1"}}},
	}
	q := EquiJoin{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}, OnL: "x", OnR: "y"}
	m := core.NewMachine(NumQueryTapes, 1)
	got, err := EvalST(q, db, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 0 {
		t.Fatalf("join with empty side = %v", got.Tuples)
	}
}
