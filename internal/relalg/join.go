package relalg

import "fmt"

// EquiJoin is the derived operator σ[l.A = r.B](L × R): it is
// compiled to product-select-project, which keeps the streaming
// evaluation within the constant-operator budget of Theorem 11(a).
type EquiJoin struct {
	L, R Expr
	OnL  string // join column of the left input
	OnR  string // join column of the right input
}

func (e EquiJoin) String() string {
	return "(" + e.L.String() + " ⋈[" + e.OnL + "=" + e.OnR + "] " + e.R.String() + ")"
}

// expand rewrites the join into primitive operators.
func (e EquiJoin) expand() Expr {
	return Select{
		Pred: ColEq{A: "l." + e.OnL, B: "r." + e.OnR},
		In:   Product{L: e.L, R: e.R},
	}
}

// SemiJoin keeps the left tuples that have a join partner on the
// right: π[left columns](L ⋈ R) with the original column names
// restored.
type SemiJoin struct {
	L, R Expr
	OnL  string
	OnR  string
}

func (e SemiJoin) String() string {
	return "(" + e.L.String() + " ⋉[" + e.OnL + "=" + e.OnR + "] " + e.R.String() + ")"
}

// expand rewrites the semi-join into primitives, using the inferred
// left schema.
func (e SemiJoin) expand(db DB) (Expr, error) {
	ls, err := InferSchema(e.L, db)
	if err != nil {
		return nil, err
	}
	prefixed := make([]string, len(ls))
	for i, c := range ls {
		prefixed[i] = "l." + c
	}
	return Rename{
		Cols: []string(ls),
		In: Project{
			Cols: prefixed,
			In:   EquiJoin{L: e.L, R: e.R, OnL: e.OnL, OnR: e.OnR}.expand(),
		},
	}, nil
}

// InferSchema computes the output schema of an expression without
// evaluating any tuples.
func InferSchema(e Expr, db DB) (Schema, error) {
	switch e := e.(type) {
	case Scan:
		r, ok := db[e.Rel]
		if !ok {
			return nil, fmt.Errorf("relalg: unknown relation %q", e.Rel)
		}
		return r.Schema, nil
	case Select:
		return InferSchema(e.In, db)
	case Project:
		return Schema(e.Cols), nil
	case Union:
		return InferSchema(e.L, db)
	case Diff:
		return InferSchema(e.L, db)
	case Product:
		ls, err := InferSchema(e.L, db)
		if err != nil {
			return nil, err
		}
		rs, err := InferSchema(e.R, db)
		if err != nil {
			return nil, err
		}
		return productSchema(e, ls, rs), nil
	case Rename:
		return Schema(e.Cols), nil
	case EquiJoin:
		return InferSchema(e.expand(), db)
	case SemiJoin:
		return InferSchema(e.L, db)
	default:
		return nil, fmt.Errorf("relalg: cannot infer schema of %T", e)
	}
}
