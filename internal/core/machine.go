// Package core implements the ST computation model of Grohe, Hernich
// and Schweikardt (PODS 2006): a machine with t external-memory tapes
// whose total number of sequential scans is the first cost measure,
// and an internal memory whose size in bits is the second.
//
// A Machine bundles the external tapes with an internal-memory meter
// and a source of randomness. Algorithms in internal/algorithms are
// written against this API; after a run, Resources reports exactly the
// two quantities the paper's complexity classes bound:
//
//   - Scans() = 1 + total head reversals over all external tapes
//     (Definition 1 of the paper), to be compared against r(N), and
//   - PeakMemoryBits, to be compared against s(N).
//
// The package also defines Bound, a concrete (r, s, t) resource bound,
// and verdicts for decision and Las Vegas computations.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"extmem/internal/memory"
	"extmem/internal/tape"
)

// Verdict is the outcome of a decision or Las Vegas computation.
type Verdict int

// Possible verdicts. DontKnow is the Las Vegas "I don't know" answer.
const (
	Reject Verdict = iota
	Accept
	DontKnow
)

func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	default:
		return "don't know"
	}
}

// ErrTapeIndex is returned when a tape index is out of range.
var ErrTapeIndex = errors.New("core: tape index out of range")

// Machine is an ST-model machine: t external-memory tapes (tape 0 is
// the input tape), an internal-memory meter, and a random source.
type Machine struct {
	tapes []*tape.Tape
	mem   *memory.Meter
	rng   *rand.Rand
	topts tape.Options
}

// NewMachine returns a machine with t external tapes and unlimited
// budgets. The random source is deterministic with the given seed.
// The tapes live in memory; NewMachineOpts selects other storage.
func NewMachine(t int, seed int64) *Machine {
	return NewMachineOpts(t, seed, tape.Options{})
}

// NewMachineOpts is NewMachine with an explicit tape storage selection:
// every tape the machine constructs — at creation and on every later
// SetTape/SetInput — uses the given backend options. Storage is an
// execution-shape choice, invisible to the cost model: the tapes charge
// identical reversals/steps/reads/writes wherever the cells live.
func NewMachineOpts(t int, seed int64, opts tape.Options) *Machine {
	if t < 1 {
		panic("core: a machine needs at least one external tape (the input tape)")
	}
	m := &Machine{
		mem:   memory.NewMeter(),
		rng:   rand.New(rand.NewSource(seed)),
		topts: opts,
	}
	for i := 0; i < t; i++ {
		m.tapes = append(m.tapes, tape.NewWith(fmt.Sprintf("t%d", i), opts))
	}
	return m
}

// Close releases the storage resources (spill files, mappings) of every
// tape. The machine must not run afterwards; Resources stays readable.
// A no-op for in-memory machines, and safe to defer unconditionally.
func (m *Machine) Close() error {
	var first error
	for _, t := range m.tapes {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetInput replaces the content of the input tape (tape 0) with data
// and resets nothing else. It must be called before the run starts.
func (m *Machine) SetInput(data []byte) {
	m.SetTape(0, data)
}

// SetTape replaces the content of external tape i with data, resetting
// that tape's counters. Like SetInput it models input placement, not a
// head operation, and must happen before the run starts: the sharded
// execution layer (internal/shard) uses it to hand a shard's sorted
// output tape to the merge machine, the distributed analogue of
// physically moving a tape between machines.
func (m *Machine) SetTape(i int, data []byte) {
	if i < 0 || i >= len(m.tapes) {
		panic(fmt.Sprintf("%v: %d of %d", ErrTapeIndex, i, len(m.tapes)))
	}
	m.tapes[i].Close()
	m.tapes[i] = tape.FromBytesWith(fmt.Sprintf("t%d", i), data, m.topts)
}

// SwapTape replaces the content of external tape i with data while
// KEEPING the tape's accumulated counters — the mid-run tape handoff
// of the sharded execution layer (shard.Sort.SortTape): the machine
// hands its tape to a shard fleet and receives the combined result
// back, rewound, with its own pre-handoff head traffic still on the
// books. Contrast SetTape, which models input placement before the
// run and therefore resets the counters.
func (m *Machine) SwapTape(i int, data []byte) {
	m.Tape(i).Replace(data)
}

// Tape returns external tape i (0-based). Tape 0 is the input tape.
func (m *Machine) Tape(i int) *tape.Tape {
	if i < 0 || i >= len(m.tapes) {
		panic(fmt.Sprintf("%v: %d of %d", ErrTapeIndex, i, len(m.tapes)))
	}
	return m.tapes[i]
}

// NumTapes returns the number of external tapes, the parameter t of
// the class ST(r, s, t).
func (m *Machine) NumTapes() int { return len(m.tapes) }

// Mem returns the internal-memory meter.
func (m *Machine) Mem() *memory.Meter { return m.mem }

// Rand returns the machine's random source. Randomized algorithms draw
// all coins from it so runs are reproducible per seed.
func (m *Machine) Rand() *rand.Rand { return m.rng }

// Resources is the resource report of a run.
type Resources struct {
	Reversals      int          // total head reversals over all external tapes
	PeakMemoryBits int64        // peak internal memory in bits
	Tapes          int          // number of external tapes
	Steps          int64        // total head movements over all external tapes
	PerTape        []tape.Stats // per-tape statistics
}

// Scans is 1 + Reversals, the number of sequential scans in the sense
// of Definition 1.
func (r Resources) Scans() int { return 1 + r.Reversals }

// String formats the report in the (r, s, t) order of the paper.
func (r Resources) String() string {
	return fmt.Sprintf("r=%d scans (%d reversals), s=%d bits, t=%d tapes, %d steps",
		r.Scans(), r.Reversals, r.PeakMemoryBits, r.Tapes, r.Steps)
}

// Resources returns the current resource report of the machine.
func (m *Machine) Resources() Resources {
	res := Resources{
		PeakMemoryBits: m.mem.Peak(),
		Tapes:          len(m.tapes),
	}
	for _, t := range m.tapes {
		s := t.Stats()
		res.Reversals += s.Reversals
		res.Steps += s.Steps
		res.PerTape = append(res.PerTape, s)
	}
	return res
}

// A Bound is a concrete (r, s, t) resource bound: r and s are functions
// of the input size N, t is the number of external tapes.
type Bound struct {
	Name string
	R    func(n int) int   // maximum number of sequential scans
	S    func(n int) int64 // maximum internal memory in bits
	T    int               // maximum number of external tapes
}

// Admits reports whether the resource report res on an input of size n
// stays within the bound, and if not, why.
func (b Bound) Admits(res Resources, n int) error {
	if r := b.R(n); res.Scans() > r {
		return fmt.Errorf("bound %s violated: %d scans > r(%d) = %d", b.Name, res.Scans(), n, r)
	}
	if s := b.S(n); res.PeakMemoryBits > s {
		return fmt.Errorf("bound %s violated: %d bits > s(%d) = %d", b.Name, res.PeakMemoryBits, n, s)
	}
	if res.Tapes > b.T {
		return fmt.Errorf("bound %s violated: %d tapes > t = %d", b.Name, res.Tapes, b.T)
	}
	return nil
}

// ConstR returns a constant scan bound r(N) = c.
func ConstR(c int) func(int) int { return func(int) int { return c } }

// LogR returns r(N) = ceil(c * log2 N), the O(log N) scan bound with
// explicit constant c.
func LogR(c float64) func(int) int {
	return func(n int) int {
		if n < 2 {
			return 1
		}
		return int(math.Ceil(c * math.Log2(float64(n))))
	}
}

// ConstS returns a constant memory bound s(N) = c bits.
func ConstS(c int64) func(int) int64 { return func(int) int64 { return c } }

// LogS returns s(N) = ceil(c * log2 N) bits, the O(log N) memory bound
// with explicit constant c.
func LogS(c float64) func(int) int64 {
	return func(n int) int64 {
		if n < 2 {
			return int64(math.Ceil(c))
		}
		return int64(math.Ceil(c * math.Log2(float64(n))))
	}
}

// FourthRootOverLogS returns s(N) = ceil(c * N^(1/4) / log2 N) bits,
// the internal-memory regime of Theorem 6.
func FourthRootOverLogS(c float64) func(int) int64 {
	return func(n int) int64 {
		if n < 2 {
			return int64(math.Ceil(c))
		}
		return int64(math.Ceil(c * math.Pow(float64(n), 0.25) / math.Log2(float64(n))))
	}
}
