package core

import (
	"strings"
	"testing"
)

func TestNewMachineTapes(t *testing.T) {
	m := NewMachine(3, 1)
	if m.NumTapes() != 3 {
		t.Fatalf("NumTapes = %d, want 3", m.NumTapes())
	}
	for i := 0; i < 3; i++ {
		if m.Tape(i) == nil {
			t.Fatalf("Tape(%d) is nil", i)
		}
	}
}

func TestNewMachinePanicsOnZeroTapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine(0) did not panic")
		}
	}()
	NewMachine(0, 1)
}

func TestTapePanicsOutOfRange(t *testing.T) {
	m := NewMachine(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Tape(5) did not panic")
		}
	}()
	m.Tape(5)
}

func TestSetInput(t *testing.T) {
	m := NewMachine(1, 1)
	m.SetInput([]byte("abc"))
	got, err := m.Tape(0).ScanBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("input = %q, want %q", got, "abc")
	}
}

func TestResourcesAggregation(t *testing.T) {
	m := NewMachine(2, 1)
	m.SetInput([]byte("abcd"))
	if _, err := m.Tape(0).ScanBytes(); err != nil {
		t.Fatal(err)
	}
	if err := m.Tape(0).Rewind(); err != nil {
		t.Fatal(err)
	}
	if err := m.Tape(1).AppendBytes([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	if err := m.Tape(1).Rewind(); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem().Set("v", 12); err != nil {
		t.Fatal(err)
	}
	res := m.Resources()
	if res.Reversals != 2 {
		t.Fatalf("Reversals = %d, want 2", res.Reversals)
	}
	if res.Scans() != 3 {
		t.Fatalf("Scans = %d, want 3", res.Scans())
	}
	if res.PeakMemoryBits != 12 {
		t.Fatalf("PeakMemoryBits = %d, want 12", res.PeakMemoryBits)
	}
	if res.Tapes != 2 {
		t.Fatalf("Tapes = %d, want 2", res.Tapes)
	}
	if len(res.PerTape) != 2 {
		t.Fatalf("PerTape length = %d, want 2", len(res.PerTape))
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	a := NewMachine(1, 42).Rand().Int63()
	b := NewMachine(1, 42).Rand().Int63()
	if a != b {
		t.Fatal("same seed produced different streams")
	}
	c := NewMachine(1, 43).Rand().Int63()
	if a == c {
		t.Fatal("different seeds produced identical first value (unlikely)")
	}
}

func TestBoundAdmits(t *testing.T) {
	b := Bound{Name: "ST(3, 10, 2)", R: ConstR(3), S: ConstS(10), T: 2}
	ok := Resources{Reversals: 2, PeakMemoryBits: 10, Tapes: 2}
	if err := b.Admits(ok, 100); err != nil {
		t.Fatalf("Admits(ok) = %v", err)
	}
	tooManyScans := Resources{Reversals: 3, PeakMemoryBits: 1, Tapes: 1}
	if err := b.Admits(tooManyScans, 100); err == nil || !strings.Contains(err.Error(), "scans") {
		t.Fatalf("want scans violation, got %v", err)
	}
	tooMuchMemory := Resources{Reversals: 0, PeakMemoryBits: 11, Tapes: 1}
	if err := b.Admits(tooMuchMemory, 100); err == nil || !strings.Contains(err.Error(), "bits") {
		t.Fatalf("want memory violation, got %v", err)
	}
	tooManyTapes := Resources{Reversals: 0, PeakMemoryBits: 1, Tapes: 3}
	if err := b.Admits(tooManyTapes, 100); err == nil || !strings.Contains(err.Error(), "tapes") {
		t.Fatalf("want tape violation, got %v", err)
	}
}

func TestLogR(t *testing.T) {
	r := LogR(1)
	if got := r(1024); got != 10 {
		t.Fatalf("LogR(1)(1024) = %d, want 10", got)
	}
	if got := r(1); got != 1 {
		t.Fatalf("LogR(1)(1) = %d, want 1", got)
	}
	r2 := LogR(2)
	if got := r2(1024); got != 20 {
		t.Fatalf("LogR(2)(1024) = %d, want 20", got)
	}
}

func TestLogS(t *testing.T) {
	s := LogS(3)
	if got := s(256); got != 24 {
		t.Fatalf("LogS(3)(256) = %d, want 24", got)
	}
	if got := s(1); got != 3 {
		t.Fatalf("LogS(3)(1) = %d, want 3", got)
	}
}

func TestFourthRootOverLogS(t *testing.T) {
	s := FourthRootOverLogS(1)
	// N = 2^16: N^(1/4) = 16, log2 N = 16, so s = 1.
	if got := s(1 << 16); got != 1 {
		t.Fatalf("s(2^16) = %d, want 1", got)
	}
	// N = 2^20: N^(1/4) = 32, log2 N = 20, ceil(32/20) = 2.
	if got := s(1 << 20); got != 2 {
		t.Fatalf("s(2^20) = %d, want 2", got)
	}
	if got := s(1); got != 1 {
		t.Fatalf("s(1) = %d, want 1", got)
	}
}

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{Accept: "accept", Reject: "reject", DontKnow: "don't know"}
	for v, want := range cases {
		if v.String() != want {
			t.Fatalf("Verdict(%d).String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestResourcesString(t *testing.T) {
	res := Resources{Reversals: 1, PeakMemoryBits: 8, Tapes: 2, Steps: 10}
	s := res.String()
	if !strings.Contains(s, "r=2 scans") || !strings.Contains(s, "s=8 bits") {
		t.Fatalf("unexpected format: %q", s)
	}
}
