package xquery

import (
	"math/rand"
	"strings"
	"testing"

	"extmem/internal/problems"
	"extmem/internal/xmlstream"
)

func mustDoc(t *testing.T, in problems.Instance) *xmlstream.Node {
	t.Helper()
	doc, err := xmlstream.Parse(xmlstream.EncodeInstance(in))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// Theorem 12: Q returns <result><true/></result> exactly on
// SET-EQUALITY yes-instances.
func TestTheoremQueryDecidesSetEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	q := TheoremQuery()
	for trial := 0; trial < 60; trial++ {
		var in problems.Instance
		if trial%2 == 0 {
			in = problems.GenSetYes(1+rng.Intn(6), 6, rng)
		} else {
			in = problems.GenSetNo(2+rng.Intn(5), 6, rng)
		}
		result, err := q.Eval(mustDoc(t, in))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ResultIsTrue(result), problems.SetEquality(in); got != want {
			t.Fatalf("query = %v, want %v on %+v", got, want, in)
		}
	}
}

func TestTheoremQueryResultShape(t *testing.T) {
	q := TheoremQuery()
	yes := problems.Instance{V: []string{"0"}, W: []string{"0"}}
	result, err := q.Eval(mustDoc(t, yes))
	if err != nil {
		t.Fatal(err)
	}
	if got := xmlstream.Render(result); got != "<result><true/></result>" && got != "<result><true></true></result>" {
		t.Fatalf("result = %q", got)
	}
	no := problems.Instance{V: []string{"0"}, W: []string{"1"}}
	result2, err := q.Eval(mustDoc(t, no))
	if err != nil {
		t.Fatal(err)
	}
	if got := xmlstream.Render(result2); got != "<result></result>" {
		t.Fatalf("empty result = %q", got)
	}
}

func TestQueryIgnoresMultiplicity(t *testing.T) {
	// Set semantics: {a,a,b} = {a,b,b}.
	in := problems.Instance{V: []string{"00", "00", "11"}, W: []string{"00", "11", "11"}}
	result, err := TheoremQuery().Eval(mustDoc(t, in))
	if err != nil {
		t.Fatal(err)
	}
	if !ResultIsTrue(result) {
		t.Fatal("multiplicity affected the set-equality query")
	}
}

func TestEveryEmptyDomainIsTrue(t *testing.T) {
	in := problems.Instance{}
	result, err := TheoremQuery().Eval(mustDoc(t, in))
	if err != nil {
		t.Fatal(err)
	}
	if !ResultIsTrue(result) {
		t.Fatal("empty sets should be equal")
	}
}

func TestSomeEmptyDomainIsFalse(t *testing.T) {
	// X = {0}, Y = {}: every x fails because some-y over nothing is
	// false.
	in := problems.Instance{V: []string{"0"}, W: nil}
	result, err := TheoremQuery().Eval(mustDoc(t, in))
	if err != nil {
		t.Fatal(err)
	}
	if ResultIsTrue(result) {
		t.Fatal("nonempty vs empty should be unequal")
	}
}

func TestAbsPathSelect(t *testing.T) {
	doc, err := xmlstream.Parse([]byte("<a><b><c>1</c></b><b><c>2</c></b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	got := AbsPath{"a", "b", "c"}.Select(doc)
	if len(got) != 2 {
		t.Fatalf("selected %d nodes, want 2", len(got))
	}
	if (AbsPath{"a", "z"}).Select(doc) != nil {
		t.Fatal("nonexistent path selected nodes")
	}
}

func TestUnboundVariableError(t *testing.T) {
	doc, err := xmlstream.Parse([]byte("<a><b>x</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Wrapper: "r", Then: "t", Cond: Every{
		Var: "x", Path: AbsPath{"a", "b"},
		Body: VarEq{A: "x", B: "unbound"},
	}}
	if _, err := q.Eval(doc); err == nil {
		t.Fatal("unbound variable accepted")
	}
}

func TestQueryString(t *testing.T) {
	s := TheoremQuery().String()
	for _, frag := range []string{"every $x", "some $y", "/instance/set1/item/string", "then <true/>"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("query string misses %q:\n%s", frag, s)
		}
	}
}

func TestAndShortCircuits(t *testing.T) {
	doc, err := xmlstream.Parse([]byte("<a><b>x</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	// Left side false: the erroring right side must not be evaluated.
	cond := And{
		L: Some{Var: "x", Path: AbsPath{"a", "nope"}, Body: VarEq{A: "x", B: "x"}},
		R: VarEq{A: "no", B: "pe"},
	}
	ok, err := cond.Eval(doc, Env{})
	if err != nil {
		t.Fatalf("short circuit failed: %v", err)
	}
	if ok {
		t.Fatal("false and _ evaluated true")
	}
}
