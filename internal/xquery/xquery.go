// Package xquery evaluates the XQuery fragment of Theorem 12:
// quantified expressions (every/some … in path satisfies …), variable
// equality comparisons, conjunction, and the conditional element
// constructor — exactly the constructs of the query Q in the
// theorem's proof, which expresses SET-EQUALITY:
//
//	<result>
//	  if ( every $x in /instance/set1/item/string satisfies
//	         some $y in /instance/set2/item/string satisfies $x = $y )
//	     and
//	     ( every $y in /instance/set2/item/string satisfies
//	         some $x in /instance/set1/item/string satisfies $x = $y )
//	  then <true/> else ()
//	</result>
package xquery

import (
	"fmt"
	"strings"

	"extmem/internal/xmlstream"
)

// Env binds variables to document nodes.
type Env map[string]*xmlstream.Node

// clone copies the environment with one extra binding.
func (e Env) with(name string, n *xmlstream.Node) Env {
	out := make(Env, len(e)+1)
	for k, v := range e {
		out[k] = v
	}
	out[name] = n
	return out
}

// AbsPath is a rooted child path /a/b/c.
type AbsPath []string

// Select evaluates the path from the document root.
func (p AbsPath) Select(root *xmlstream.Node) []*xmlstream.Node {
	current := []*xmlstream.Node{root}
	for _, name := range p {
		var next []*xmlstream.Node
		for _, n := range current {
			next = append(next, n.ChildElements(name)...)
		}
		current = next
	}
	return current
}

func (p AbsPath) String() string { return "/" + strings.Join(p, "/") }

// Cond is a boolean XQuery expression.
type Cond interface {
	Eval(root *xmlstream.Node, env Env) (bool, error)
	String() string
}

// Every is "every $Var in Path satisfies Body".
type Every struct {
	Var  string
	Path AbsPath
	Body Cond
}

// Eval implements Cond.
func (e Every) Eval(root *xmlstream.Node, env Env) (bool, error) {
	for _, n := range e.Path.Select(root) {
		ok, err := e.Body.Eval(root, env.with(e.Var, n))
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (e Every) String() string {
	return "every $" + e.Var + " in " + e.Path.String() + " satisfies " + e.Body.String()
}

// Some is "some $Var in Path satisfies Body".
type Some struct {
	Var  string
	Path AbsPath
	Body Cond
}

// Eval implements Cond.
func (s Some) Eval(root *xmlstream.Node, env Env) (bool, error) {
	for _, n := range s.Path.Select(root) {
		ok, err := s.Body.Eval(root, env.with(s.Var, n))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (s Some) String() string {
	return "some $" + s.Var + " in " + s.Path.String() + " satisfies " + s.Body.String()
}

// VarEq compares the string values of two bound variables.
type VarEq struct{ A, B string }

// Eval implements Cond.
func (v VarEq) Eval(_ *xmlstream.Node, env Env) (bool, error) {
	a, okA := env[v.A]
	b, okB := env[v.B]
	if !okA || !okB {
		return false, fmt.Errorf("xquery: unbound variable in $%s = $%s", v.A, v.B)
	}
	return a.StringValue() == b.StringValue(), nil
}

func (v VarEq) String() string { return "$" + v.A + " = $" + v.B }

// And conjoins conditions.
type And struct{ L, R Cond }

// Eval implements Cond.
func (a And) Eval(root *xmlstream.Node, env Env) (bool, error) {
	l, err := a.L.Eval(root, env)
	if err != nil || !l {
		return false, err
	}
	return a.R.Eval(root, env)
}

func (a And) String() string { return "(" + a.L.String() + ") and (" + a.R.String() + ")" }

// Query is the conditional element constructor
// <Wrapper> if Cond then <Then/> else () </Wrapper>.
type Query struct {
	Wrapper string
	Cond    Cond
	Then    string
}

// Eval produces the result document.
func (q Query) Eval(root *xmlstream.Node) (*xmlstream.Node, error) {
	out := &xmlstream.Node{Name: q.Wrapper}
	ok, err := q.Cond.Eval(root, Env{})
	if err != nil {
		return nil, err
	}
	if ok {
		out.Children = append(out.Children, &xmlstream.Node{Name: q.Then, Parent: out})
	}
	return out, nil
}

func (q Query) String() string {
	return "<" + q.Wrapper + "> if (" + q.Cond.String() + ") then <" + q.Then + "/> else () </" + q.Wrapper + ">"
}

// TheoremQuery returns the exact query Q of Theorem 12.
func TheoremQuery() Query {
	set1 := AbsPath{"instance", "set1", "item", "string"}
	set2 := AbsPath{"instance", "set2", "item", "string"}
	return Query{
		Wrapper: "result",
		Then:    "true",
		Cond: And{
			L: Every{Var: "x", Path: set1, Body: Some{Var: "y", Path: set2, Body: VarEq{A: "x", B: "y"}}},
			R: Every{Var: "y", Path: set2, Body: Some{Var: "x", Path: set1, Body: VarEq{A: "x", B: "y"}}},
		},
	}
}

// ResultIsTrue reports whether the result document is
// <result><true/></result> (vs. the empty <result></result>).
func ResultIsTrue(result *xmlstream.Node) bool {
	return len(result.ChildElements("true")) == 1
}
