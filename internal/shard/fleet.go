package shard

import (
	"sync"

	"extmem/internal/trials"
)

// Plan partitions a fleet of Trials trials across Shards shards.
// Shards <= 0 means one shard; Shards may exceed Trials, in which case
// the surplus shards own empty ranges.
type Plan struct {
	Shards int // number of shards
	Trials int // total fleet size across all shards
}

// ShardCount is the effective shard count (at least 1).
func (p Plan) ShardCount() int {
	if p.Shards < 1 {
		return 1
	}
	return p.Shards
}

// Ranges returns the per-shard trial-index ranges: Split(Trials,
// ShardCount()).
func (p Plan) Ranges() []Range {
	return Split(p.Trials, p.ShardCount())
}

// Range is the contiguous half-open range [Lo, Hi) of global indices
// owned by one shard.
type Range struct {
	Shard  int // shard index, 0-based
	Lo, Hi int // half-open global index range
}

// Len is the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions the index range [0, n) into shards disjoint
// contiguous near-equal ranges that cover it: every range has
// ⌊n/shards⌋ or ⌈n/shards⌉ indices, with the longer ranges first. The
// split is a pure function of (n, shards) — the scheduling-free
// counterpart of the trial-seed derivation, and the rule the sharded
// sort reuses to partition initial runs.
func Split(n, shards int) []Range {
	if shards < 1 {
		shards = 1
	}
	if n < 0 {
		n = 0
	}
	out := make([]Range, shards)
	base, rem := n/shards, n%shards
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = Range{Shard: i, Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// Fleet runs a trial fleet sharded: each shard of the Plan runs its
// own trials.Engine worker pool over a disjoint contiguous range of
// global trial indices, and the per-shard result streams are
// re-interleaved into a single in-order stream. Because a trial's
// randomness derives from (Seed, global index) alone, the results,
// summary, error and OnResult sequence are byte-identical to a
// single trials.Engine run of the whole fleet — at any combination of
// shard and worker counts.
type Fleet struct {
	Plan     Plan
	Parallel int   // worker goroutines per shard; <= 0 means GOMAXPROCS
	Seed     int64 // root seed, shared by all shards

	// OnResult, if non-nil, streams results strictly in global trial
	// order (0, 1, 2, …) as the completed prefix grows, regardless of
	// which shard or worker produced them. It is invoked under an
	// internal lock and must not call back into the fleet.
	OnResult func(trials.Result)
}

var _ trials.Runner = Fleet{}

// Run executes the fleet across its shards and returns the merged
// per-trial results in global trial order, their summary, and the
// first trial error in trial order — the same contract as
// trials.Engine.Run.
func (f Fleet) Run(fn trials.Func) ([]trials.Result, trials.Summary, error) {
	n := f.Plan.Trials
	if n <= 0 {
		return nil, trials.Summary{}, nil
	}
	ranges := f.Plan.Ranges()
	results := make([]trials.Result, n)

	// The in-order merge stream: every shard reports completed trials
	// into the shared done-prefix tracker; whichever shard completes
	// the global prefix emits it. Shard engines already emit their own
	// range in order, so tracking a single emitted cursor suffices.
	var (
		mu      sync.Mutex
		done    []bool
		emitted int
	)
	if f.OnResult != nil {
		done = make([]bool, n)
	}
	record := func(r trials.Result) {
		mu.Lock()
		done[r.Trial] = true
		results[r.Trial] = r
		for emitted < n && done[emitted] {
			f.OnResult(results[emitted])
			emitted++
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for _, rg := range ranges {
		if rg.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(rg Range) {
			defer wg.Done()
			eng := trials.Engine{
				Trials:   rg.Len(),
				Offset:   rg.Lo,
				Parallel: f.Parallel,
				Seed:     f.Seed,
			}
			if f.OnResult != nil {
				eng.OnResult = record
				eng.Run(fn)
				return
			}
			rs, _, _ := eng.Run(fn)
			copy(results[rg.Lo:rg.Hi], rs)
		}(rg)
	}
	wg.Wait()
	return results, trials.Summarize(results), trials.FirstErr(results)
}

// Launch returns the trials.Launcher that runs every fleet as a
// sharded Fleet with the given shard and per-shard worker counts —
// the hook experiments and commands use to shard the fleet entry
// points of internal/algorithms and internal/lowerbound without
// changing a single output byte.
func Launch(shards, parallel int) trials.Launcher {
	return func(n int, seed int64, onResult func(trials.Result)) trials.Runner {
		return Fleet{
			Plan:     Plan{Shards: shards, Trials: n},
			Parallel: parallel,
			Seed:     seed,
			OnResult: onResult,
		}
	}
}
