package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"extmem/internal/trials"
)

// Plan partitions a fleet of Trials trials across Shards shards.
// Shards <= 0 means one shard; Shards may exceed Trials, in which case
// the surplus shards own empty ranges.
type Plan struct {
	Shards int // number of shards
	Trials int // total fleet size across all shards
}

// ShardCount is the effective shard count (at least 1).
func (p Plan) ShardCount() int {
	if p.Shards < 1 {
		return 1
	}
	return p.Shards
}

// Ranges returns the per-shard trial-index ranges: Split(Trials,
// ShardCount()).
func (p Plan) Ranges() []Range {
	return Split(p.Trials, p.ShardCount())
}

// Range is the contiguous half-open range [Lo, Hi) of global indices
// owned by one shard.
type Range struct {
	Shard  int // shard index, 0-based
	Lo, Hi int // half-open global index range
}

// Len is the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions the index range [0, n) into shards disjoint
// contiguous near-equal ranges that cover it: every range has
// ⌊n/shards⌋ or ⌈n/shards⌉ indices, with the longer ranges first. The
// split is a pure function of (n, shards) — the scheduling-free
// counterpart of the trial-seed derivation, and the rule the sharded
// sort reuses to partition initial runs.
func Split(n, shards int) []Range {
	if shards < 1 {
		shards = 1
	}
	if n < 0 {
		n = 0
	}
	out := make([]Range, shards)
	base, rem := n/shards, n%shards
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = Range{Shard: i, Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// Fleet runs a trial fleet sharded: each shard of the Plan runs its
// own trials.Engine worker pool over a disjoint contiguous range of
// global trial indices, and the per-shard result streams are
// re-interleaved into a single in-order stream. Because a trial's
// randomness derives from (Seed, global index) alone, the results,
// summary, error and OnResult sequence are byte-identical to a
// single trials.Engine run of the whole fleet — at any combination of
// shard and worker counts.
type Fleet struct {
	Plan     Plan
	Parallel int   // worker goroutines per shard; <= 0 means GOMAXPROCS
	Seed     int64 // root seed, shared by all shards

	// Retry bounds how often a shard whose engine run hard-fails (a
	// recovered trial panic) is re-executed before the fleet degrades
	// that range to a sequential single-machine run with per-trial
	// recovery. Because trial results are pure functions of (Seed,
	// global index), every re-execution reproduces the failed
	// attempt's rows exactly; the zero policy runs each shard once.
	Retry RetryPolicy

	// OnResult, if non-nil, streams results strictly in global trial
	// order (0, 1, 2, …) as the completed prefix grows, regardless of
	// which shard or worker produced them. It is invoked under an
	// internal lock and must not call back into the fleet. Retried
	// shards re-record rows already streamed; the in-order merge is
	// idempotent, so the stream never repeats or reorders.
	OnResult func(trials.Result)

	// Attempt, when non-nil, overrides how one shard attempt executes —
	// the transport seam. The default attempt is eng.Run(ctx, fn) on
	// the in-process engine; internal/transport substitutes an attempt
	// that ships the range to a worker process and streams the rows
	// back. An attempt must either complete the range (returning the
	// non-nil result slice, soft per-trial errors included, having fed
	// every row to eng.OnResult in order when it is set) or return an
	// error; errors carrying the Fault marker burn one attempt of the
	// retry budget, anything else fails the fleet. The degraded
	// fallback after retry exhaustion never consults Attempt — the
	// coordinator absorbs the range itself, exactly as it absorbs a
	// dead shard machine's sort range.
	Attempt AttemptFunc
}

// AttemptFunc executes one attempt of one shard's contiguous trial
// range: shard and attempt (1-based) identify the execution for
// logging and fault injection, eng carries the range (Trials, Offset),
// root seed, per-shard worker count and the in-order OnResult sink,
// and fn is the in-process trial function — the fallback a transport
// uses when the fleet's context carries no trials.Workload annotation.
type AttemptFunc func(ctx context.Context, shard, attempt int, eng trials.Engine, fn trials.Func) ([]trials.Result, error)

// Fault marks an error as a failed shard attempt — recoverable by the
// retry → degraded-fallback path because shard work is input-pure. Two
// families carry it: recovered panics (*trials.TrialPanicError,
// *SortPanicError) and dead worker processes on the transport layer
// (transport.WorkerError) — process death and an injected panic are
// deliberately indistinguishable to the retry machinery.
type Fault interface {
	ShardFault()
}

var _ trials.Runner = Fleet{}

// Run executes the fleet across its shards and returns the merged
// per-trial results in global trial order, their summary, and the
// first trial error in trial order — the same contract as
// trials.Engine.Run. Worker panics inside a shard are recovered
// (trials.TrialPanicError), the shard's range is retried under the
// Retry policy, and a shard that exhausts its budget falls back to a
// degraded sequential run in which a still-panicking trial becomes a
// deterministic error row instead of a process crash; the Summary's
// recovery census records retries, fallbacks and recovered panics.
// Cancelling ctx stops every shard and returns the context error.
func (f Fleet) Run(ctx context.Context, fn trials.Func) ([]trials.Result, trials.Summary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := f.Plan.Trials
	if n <= 0 {
		return nil, trials.Summary{}, nil
	}
	ranges := f.Plan.Ranges()
	results := make([]trials.Result, n)

	// The in-order merge stream: every shard reports completed trials
	// into the shared done-prefix tracker; whichever shard completes
	// the global prefix emits it. Shard engines already emit their own
	// range in order, so tracking a single emitted cursor suffices.
	var (
		mu      sync.Mutex
		done    []bool
		emitted int
	)
	if f.OnResult != nil {
		done = make([]bool, n)
	}
	record := func(r trials.Result) {
		mu.Lock()
		done[r.Trial] = true
		results[r.Trial] = r
		for emitted < n && done[emitted] {
			f.OnResult(results[emitted])
			emitted++
		}
		mu.Unlock()
	}

	// The recovery census plus the fleet's hard-failure latch: the
	// first unrecoverable error (in practice: cancellation) cancels
	// the sibling shards so their workers drain promptly.
	var (
		retries   atomic.Int64
		fallbacks atomic.Int64
		recovered atomic.Int64
		failMu    sync.Mutex
		failErr   error
	)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for _, rg := range ranges {
		if rg.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(rg Range) {
			defer wg.Done()
			f.runShard(runCtx, rg, fn, record, results, fail,
				&retries, &fallbacks, &recovered)
		}(rg)
	}
	wg.Wait()
	if failErr != nil {
		return nil, trials.Summary{}, failErr
	}
	sum := trials.Summarize(results)
	sum.Retries = int(retries.Load())
	sum.Fallbacks = int(fallbacks.Load())
	sum.Recovered = int(recovered.Load())
	return results, sum, trials.FirstErr(results)
}

// runShard executes one shard's contiguous range under the retry
// policy. A completed engine run (soft per-trial errors included)
// ends the shard; a recovered panic burns one attempt and the range
// re-executes after a capped exponential backoff; an exhausted budget
// degrades to runDegraded. Anything else — cancellation, engine
// misuse — is not a shard fault and fails the fleet.
func (f Fleet) runShard(ctx context.Context, rg Range, fn trials.Func,
	record func(trials.Result), results []trials.Result, fail func(error),
	retries, fallbacks, recovered *atomic.Int64) {
	for attempt := 1; ; attempt++ {
		eng := trials.Engine{
			Trials:   rg.Len(),
			Offset:   rg.Lo,
			Parallel: f.Parallel,
			Seed:     f.Seed,
		}
		if f.OnResult != nil {
			eng.OnResult = record
		}
		var rs []trials.Result
		var err error
		if f.Attempt != nil {
			rs, err = f.Attempt(ctx, rg.Shard, attempt, eng, fn)
		} else {
			rs, _, err = eng.Run(ctx, fn)
		}
		if rs != nil {
			// The range completed; err, if any, is the first soft
			// trial error, which FirstErr reconstructs after the merge.
			if f.OnResult == nil {
				copy(results[rg.Lo:rg.Hi], rs)
			}
			return
		}
		if err == nil {
			fail(fmt.Errorf("shard: shard %d attempt %d returned neither results nor an error", rg.Shard, attempt))
			return
		}
		var fault Fault
		if !errors.As(err, &fault) {
			fail(err)
			return
		}
		recovered.Add(1)
		if attempt < f.Retry.maxAttempts() {
			retries.Add(1)
			if serr := sleep(ctx, f.Retry.Backoff(attempt)); serr != nil {
				fail(serr)
				return
			}
			continue
		}
		fallbacks.Add(1)
		f.runDegraded(ctx, rg, fn, record, results, fail, recovered)
		return
	}
}

// runDegraded is the single-machine fallback of a shard that
// exhausted its retry budget: the range runs sequentially with
// per-trial recovery, so a trial that still panics yields a
// deterministic error row (the panic decision of an injected fault
// plan is a pure function of the trial index) and the fleet completes
// instead of crashing.
func (f Fleet) runDegraded(ctx context.Context, rg Range, fn trials.Func,
	record func(trials.Result), results []trials.Result, fail func(error),
	recovered *atomic.Int64) {
	safe := func(i int, rng *rand.Rand) (r trials.Result) {
		defer func() {
			if p := recover(); p != nil {
				recovered.Add(1)
				r = trials.Result{Trial: i, Err: fmt.Sprintf("recovered panic: %v", p)}
			}
		}()
		return fn(i, rng)
	}
	eng := trials.Engine{Trials: rg.Len(), Offset: rg.Lo, Parallel: 1, Seed: f.Seed}
	if f.OnResult != nil {
		eng.OnResult = record
	}
	rs, _, err := eng.Run(ctx, safe)
	if rs == nil {
		fail(err)
		return
	}
	if f.OnResult == nil {
		copy(results[rg.Lo:rg.Hi], rs)
	}
}

// Launch returns the trials.Launcher that runs every fleet as a
// sharded Fleet with the given shard and per-shard worker counts —
// the hook experiments and commands use to shard the fleet entry
// points of internal/algorithms and internal/lowerbound without
// changing a single output byte.
func Launch(shards, parallel int) trials.Launcher {
	return LaunchRetry(shards, parallel, RetryPolicy{})
}

// LaunchRetry is Launch with a per-shard retry budget: the fleets it
// builds survive worker panics by re-executing the failed shard range
// (byte-identically — trial rows are index-pure) up to the policy's
// attempt budget with capped exponential backoff.
func LaunchRetry(shards, parallel int, retry RetryPolicy) trials.Launcher {
	return func(n int, seed int64, onResult func(trials.Result)) trials.Runner {
		return Fleet{
			Plan:     Plan{Shards: shards, Trials: n},
			Parallel: parallel,
			Seed:     seed,
			Retry:    retry,
			OnResult: onResult,
		}
	}
}
