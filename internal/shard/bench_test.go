package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkShardedSort measures the sharded sort end to end across
// shard counts on a fixed 4096-item instance. On a single-CPU
// container the win shows up in the model's critical-path steps
// (tabled by E18), not wall clock; the benchmark exists to keep the
// layer's overhead visible in the CI smoke pass.
func BenchmarkShardedSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	input := encodeItems(randomItems(4096, false, rng))
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			s := Sort{Shards: shards, FanIn: 4, RunMemoryBits: 4096}
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Run(nil, input, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedFleet measures the fleet layer's overhead on a
// no-op trial workload (the analogue of the trials engine's floor
// benchmark, with the in-order merge stream in the path).
func BenchmarkShardedFleet(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			f := Fleet{Plan: Plan{Shards: shards, Trials: 1024}, Parallel: 2, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, _, err := f.Run(nil, workload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
