// Package shard is the deterministic sharded execution layer: it
// splits the repo's two heavy workloads — Monte-Carlo trial fleets
// (internal/trials, PR 2) and the k-way external merge sort
// (internal/algorithms.Sorter, PR 3) — across independent shards in
// the k-machine style of partitioned large-scale computation, while
// keeping every observable output byte-identical to a single-shard
// run.
//
// # Determinism contract
//
// Sharding must never change results, only where the work happens.
// Both subsystems honor this through the same two invariants:
//
//   - Trial fleets shard by disjoint contiguous trial-index ranges.
//     Plan{Shards, Trials} assigns shard j the global indices
//     [Ranges()[j].Lo, Ranges()[j].Hi); trial i's randomness is the
//     splitmix64 derivation trials.Seed(root, i), a pure function of
//     (root seed, global index), so a shard computes exactly the slice
//     of results the whole fleet would. Fleet runs one trials.Engine
//     per shard (each with its own worker pool) and re-interleaves the
//     per-shard streams into one in-order result stream, so results,
//     summaries and streamed rows are identical at any
//     (shards, parallel) combination.
//
//   - Sorting shards by initial runs, not items. Sort partitions the
//     fixed-count initial runs of the PR 3 engine (the first run's
//     greedy fill under RunMemoryBits fixes the per-run item count)
//     into contiguous ranges, sorts each range on a shard-local
//     machine with its own tape set, and k-way merges the per-shard
//     outputs through the loser tree (algorithms.MergeTapes). A sorted
//     multiset is canonical, so the output bytes are independent of
//     the shard count.
//
// # Resource accounting
//
// Every shard machine keeps its own exact (r, s, t) report — the
// paper's cost measures stay auditable per shard — and SortReport
// carries them all: the distribution scan, one core.Resources per
// shard, and the final merge. Rollup aggregates them two ways, as the
// max over shards (the parallel, wall-clock-like view) and the sum
// (the total-work view); sum(scans) can only grow relative to a
// single machine while max(scans) shrinks — the communication-for-
// locality trade of partitioned computation.
//
// Launch adapts a (shards, parallel) pair to the trials.Launcher hook
// that the fleet entry points in internal/algorithms and
// internal/lowerbound accept, which is how experiments (E2, E5, E8,
// E14, E16, E18) and cmd/stbench -shards run sharded without a single
// table byte changing.
package shard
