package shard

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"extmem/internal/algorithms"
	"extmem/internal/core"
)

// encodeItems renders items in the paper's '#'-terminated format.
func encodeItems(items []string) []byte {
	var b bytes.Buffer
	for _, it := range items {
		b.WriteString(it)
		b.WriteByte('#')
	}
	return b.Bytes()
}

// randomItems generates count random bit strings (duplicates likely,
// mixed lengths when varied is set).
func randomItems(count int, varied bool, rng *rand.Rand) []string {
	items := make([]string, count)
	for i := range items {
		n := 8
		if varied {
			n = 1 + rng.Intn(12)
		}
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte('0' + byte(rng.Intn(2)))
		}
		items[i] = sb.String()
	}
	return items
}

// reference sorts (and optionally dedups) in plain Go.
func reference(items []string, dedup bool) []byte {
	s := append([]string(nil), items...)
	sort.Strings(s)
	if dedup {
		out := s[:0]
		for i, it := range s {
			if i == 0 || it != s[i-1] {
				out = append(out, it)
			}
		}
		s = out
	}
	return encodeItems(s)
}

// singleMachine runs the unsharded PR 3 engine on the same input.
func singleMachine(t *testing.T, input []byte, fanIn int, mem int64, dedup bool) ([]byte, core.Resources) {
	t.Helper()
	m := core.NewMachine(fanIn+2, 1)
	m.SetInput(input)
	s := algorithms.Sorter{FanIn: fanIn, RunMemoryBits: mem, Dedup: dedup}
	if err := s.SortToTape(m, 1, algorithms.WorkTapes(m, 1)); err != nil {
		t.Fatal(err)
	}
	return m.Tape(1).Contents(), m.Resources()
}

// The tentpole invariant for the sort: the sharded output is
// byte-identical to both the unsharded engine and the plain-Go
// reference at every shard count, fan-in, memory budget and dedup
// setting — including inputs smaller than the shard count.
func TestShardedSortMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, count := range []int{0, 1, 3, 64, 257} {
		for _, varied := range []bool{false, true} {
			items := randomItems(count, varied, rng)
			input := encodeItems(items)
			for _, shards := range []int{1, 2, 3, 4, 8} {
				for _, fanIn := range []int{2, 4} {
					for _, mem := range []int64{0, 512} {
						for _, dedup := range []bool{false, true} {
							out, rep, err := Sort{
								Shards: shards, FanIn: fanIn,
								RunMemoryBits: mem, Dedup: dedup,
							}.Run(nil, input, 1)
							if err != nil {
								t.Fatalf("count=%d shards=%d k=%d mem=%d dedup=%v: %v",
									count, shards, fanIn, mem, dedup, err)
							}
							want := reference(items, dedup)
							if !bytes.Equal(out, want) {
								t.Fatalf("count=%d varied=%v shards=%d k=%d mem=%d dedup=%v: output differs from reference",
									count, varied, shards, fanIn, mem, dedup)
							}
							single, _ := singleMachine(t, input, fanIn, mem, dedup)
							if !bytes.Equal(out, single) {
								t.Fatalf("count=%d shards=%d: output differs from unsharded engine", count, shards)
							}
							if rep.Items != count || len(rep.Shards) != shards {
								t.Fatalf("report shape: items=%d shards=%d, want %d/%d",
									rep.Items, len(rep.Shards), count, shards)
							}
						}
					}
				}
			}
		}
	}
}

// The ISSUE's rollup invariants: sharding pays with total work, never
// with per-shard memory — sum(scans) stays at or above the single
// machine while max(shard memory) stays at or below it.
func TestShardedSortRollupInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomItems(1024, false, rng)
	input := encodeItems(items)
	const fanIn, mem = 4, 1024
	_, singleRes := singleMachine(t, input, fanIn, mem, false)
	prevMax := singleRes.Scans() + 1
	for _, shards := range []int{1, 2, 4, 8} {
		_, rep, err := Sort{Shards: shards, FanIn: fanIn, RunMemoryBits: mem}.Run(nil, input, 1)
		if err != nil {
			t.Fatal(err)
		}
		agg := rep.Rollup()
		if agg.SumScans < singleRes.Scans() {
			t.Errorf("shards=%d: sum(scans)=%d < single-machine %d", shards, agg.SumScans, singleRes.Scans())
		}
		if agg.MaxMemoryBits > singleRes.PeakMemoryBits {
			t.Errorf("shards=%d: max(memory)=%d > single-machine %d", shards, agg.MaxMemoryBits, singleRes.PeakMemoryBits)
		}
		if agg.MaxScans >= prevMax {
			t.Errorf("shards=%d: max(scans)=%d did not fall (prev %d)", shards, agg.MaxScans, prevMax)
		}
		prevMax = agg.MaxScans
		if agg.Shards != shards || len(rep.Shards) != shards {
			t.Errorf("shards=%d: rollup census %d/%d", shards, agg.Shards, len(rep.Shards))
		}
		if got := rep.CriticalPathSteps(); got != rep.Distribute.Steps+agg.MaxSteps+rep.Merge.Steps {
			t.Errorf("shards=%d: critical path %d inconsistent", shards, got)
		}
		// At one shard the local machine does exactly the single-machine
		// sort: identical (r, s) report.
		if shards == 1 {
			if rep.Shards[0].Scans() != singleRes.Scans() || rep.Shards[0].PeakMemoryBits != singleRes.PeakMemoryBits {
				t.Errorf("1-shard local report %v != single machine %v", rep.Shards[0], singleRes)
			}
		}
	}
}

// SortTape is the mid-run tape handoff: the sorted fleet output
// replaces the tape's content with the head rewound, while the
// machine's own pre-handoff traffic on that slot stays on the books
// (SwapTape keeps the counters; only the sort itself is accounted
// off-machine, in the report).
func TestSortTapeKeepsCoordinatorCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randomItems(40, true, rng)
	m := core.NewMachine(2, 1)
	tp := m.Tape(1)
	for _, it := range items {
		if err := algorithms.WriteItem(tp, []byte(it)); err != nil {
			t.Fatal(err)
		}
	}
	before := tp.Stats()
	if before.Writes == 0 || before.Steps == 0 {
		t.Fatalf("test setup produced no traffic: %+v", before)
	}
	rep, err := Sort{Shards: 3, FanIn: 2, RunMemoryBits: 128, Dedup: true}.SortTape(nil, m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := tp.Stats()
	if after.Writes != before.Writes || after.Steps != before.Steps || after.Reversals != before.Reversals {
		t.Errorf("handoff changed the coordinator's counters: before %+v, after %+v", before, after)
	}
	if rep.Items != 40 {
		t.Errorf("report saw %d items, want 40", rep.Items)
	}
	if got, want := tp.Contents(), reference(items, true); !bytes.Equal(got, want) {
		t.Errorf("handed-back tape is not the sorted dedup'd sequence")
	}
	if tp.Pos() != 0 {
		t.Errorf("handed-back tape head at %d, want 0", tp.Pos())
	}
}

// Run partitioning must follow the engine's fixed-count rule: the
// greedy first fill under the budget sets the per-run item count.
func TestShardedSortRunPartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randomItems(100, false, rng) // 8-bit items
	input := encodeItems(items)
	_, rep, err := Sort{Shards: 3, FanIn: 2, RunMemoryBits: 64}.Run(nil, input, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunLen != 8 { // ⌊64/8⌋ items per run
		t.Fatalf("run length %d, want 8", rep.RunLen)
	}
	if rep.Runs != 13 { // ⌈100/8⌉
		t.Fatalf("runs %d, want 13", rep.Runs)
	}
	if rep.Distribute.Scans() != 1 {
		t.Fatalf("distribution used %d scans, want 1", rep.Distribute.Scans())
	}
}

// The pipelined handoff invariant: stopping before the combine
// (RunKeepRuns) and merging the handed-over runs later (MergeRuns)
// must reproduce Run's bytes exactly — at every producer/consumer
// shard-count combination, with dedup deferred to the final merge.
func TestKeepRunsMergeRunsMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, count := range []int{0, 1, 5, 64, 257} {
		items := randomItems(count, true, rng)
		input := encodeItems(items)
		for _, prodShards := range []int{1, 2, 4} {
			for _, consShards := range []int{1, 3, 4} {
				for _, dedup := range []bool{false, true} {
					prod := Sort{Shards: prodShards, FanIn: 3, RunMemoryBits: 256}
					runs, rep, err := prod.RunKeepRuns(nil, input, 1)
					if err != nil {
						t.Fatal(err)
					}
					if len(runs) != prodShards {
						t.Fatalf("KeepRuns returned %d runs, want %d", len(runs), prodShards)
					}
					if rep.Merge.Steps != 0 || rep.Merge.Tapes != 0 {
						t.Fatalf("KeepRuns ran a merge machine: %+v", rep.Merge)
					}
					for i, run := range runs {
						if single, _ := singleMachine(t, run, 3, 256, false); !bytes.Equal(run, single) {
							t.Fatalf("shard %d run is not sorted", i)
						}
					}
					cons := Sort{Shards: consShards, FanIn: 3, RunMemoryBits: 256, Dedup: dedup}
					out, mrep, err := cons.MergeRuns(nil, runs, 1)
					if err != nil {
						t.Fatal(err)
					}
					want := reference(items, dedup)
					if !bytes.Equal(out, want) {
						t.Fatalf("count=%d prod=%d cons=%d dedup=%v: MergeRuns differs from reference",
							count, prodShards, consShards, dedup)
					}
					if mrep.Distribute.Steps != 0 || mrep.Distribute.Tapes != 0 {
						t.Fatalf("MergeRuns ran a distribute scan: %+v", mrep.Distribute)
					}
					if mrep.Items != count || mrep.Runs != prodShards || len(mrep.Shards) != consShards {
						t.Fatalf("MergeRuns report shape: items=%d runs=%d shards=%d",
							mrep.Items, mrep.Runs, len(mrep.Shards))
					}
				}
			}
		}
	}
}

// MergeRuns is a union-shaped consumer: runs handed over by several
// producers merge and dedup exactly like concatenating the inputs and
// running the full sharded sort.
func TestMergeRunsAcrossProducers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomItems(100, true, rng)
	b := randomItems(37, true, rng)
	runsA, _, err := Sort{Shards: 2, FanIn: 2, RunMemoryBits: 128}.RunKeepRuns(nil, encodeItems(a), 1)
	if err != nil {
		t.Fatal(err)
	}
	runsB, _, err := Sort{Shards: 3, FanIn: 2, RunMemoryBits: 128}.RunKeepRuns(nil, encodeItems(b), 1)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Sort{Shards: 2, FanIn: 2, RunMemoryBits: 128, Dedup: true}.
		MergeRuns(nil, append(append([][]byte(nil), runsA...), runsB...), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(append(append([]string(nil), a...), b...), true)
	if !bytes.Equal(out, want) {
		t.Fatal("MergeRuns over two producers differs from sorting the concatenation")
	}
}

// MergeRuns shard faults sit on the same retry → fallback path as sort
// shard faults: the census moves, the bytes never do.
func TestMergeRunsRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	items := randomItems(120, false, rng)
	runs, _, err := Sort{Shards: 4, FanIn: 2, RunMemoryBits: 128}.RunKeepRuns(nil, encodeItems(items), 1)
	if err != nil {
		t.Fatal(err)
	}
	clean, crep, err := Sort{Shards: 3, FanIn: 2, RunMemoryBits: 128, Dedup: true}.MergeRuns(nil, runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if crep.Attempts != 3 || crep.Fallbacks != 0 || crep.Recovered != 0 {
		t.Fatalf("clean census moved: %+v", crep)
	}

	// A flaky first attempt on shard 0 heals by retry.
	flaky := Sort{
		Shards: 3, FanIn: 2, RunMemoryBits: 128, Dedup: true,
		Retry: RetryPolicy{MaxAttempts: 3},
		Inject: func(shard, attempt int) error {
			if shard == 0 && attempt == 1 {
				panic("injected merge fault")
			}
			return nil
		},
	}
	out, rep, err := flaky.MergeRuns(nil, runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, clean) {
		t.Fatal("recovered MergeRuns moved bytes")
	}
	if rep.Attempts != 4 || rep.Recovered != 1 || rep.Fallbacks != 0 {
		t.Fatalf("flaky census: %+v", rep)
	}

	// A permanent fault on shard 1 exhausts the budget and falls back
	// to the coordinator.
	perm := Sort{
		Shards: 3, FanIn: 2, RunMemoryBits: 128, Dedup: true,
		Retry: RetryPolicy{MaxAttempts: 2},
		Inject: func(shard, attempt int) error {
			if shard == 1 {
				return &SortPanicError{Shard: shard, Value: "permanent"}
			}
			return nil
		},
	}
	out, rep, err = perm.MergeRuns(nil, runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, clean) {
		t.Fatal("fallback MergeRuns moved bytes")
	}
	if rep.Fallbacks != 1 || rep.Attempts != 5 {
		t.Fatalf("permanent census: %+v", rep)
	}
}
