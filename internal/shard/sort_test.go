package shard

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"extmem/internal/algorithms"
	"extmem/internal/core"
)

// encodeItems renders items in the paper's '#'-terminated format.
func encodeItems(items []string) []byte {
	var b bytes.Buffer
	for _, it := range items {
		b.WriteString(it)
		b.WriteByte('#')
	}
	return b.Bytes()
}

// randomItems generates count random bit strings (duplicates likely,
// mixed lengths when varied is set).
func randomItems(count int, varied bool, rng *rand.Rand) []string {
	items := make([]string, count)
	for i := range items {
		n := 8
		if varied {
			n = 1 + rng.Intn(12)
		}
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte('0' + byte(rng.Intn(2)))
		}
		items[i] = sb.String()
	}
	return items
}

// reference sorts (and optionally dedups) in plain Go.
func reference(items []string, dedup bool) []byte {
	s := append([]string(nil), items...)
	sort.Strings(s)
	if dedup {
		out := s[:0]
		for i, it := range s {
			if i == 0 || it != s[i-1] {
				out = append(out, it)
			}
		}
		s = out
	}
	return encodeItems(s)
}

// singleMachine runs the unsharded PR 3 engine on the same input.
func singleMachine(t *testing.T, input []byte, fanIn int, mem int64, dedup bool) ([]byte, core.Resources) {
	t.Helper()
	m := core.NewMachine(fanIn+2, 1)
	m.SetInput(input)
	s := algorithms.Sorter{FanIn: fanIn, RunMemoryBits: mem, Dedup: dedup}
	if err := s.SortToTape(m, 1, algorithms.WorkTapes(m, 1)); err != nil {
		t.Fatal(err)
	}
	return m.Tape(1).Contents(), m.Resources()
}

// The tentpole invariant for the sort: the sharded output is
// byte-identical to both the unsharded engine and the plain-Go
// reference at every shard count, fan-in, memory budget and dedup
// setting — including inputs smaller than the shard count.
func TestShardedSortMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, count := range []int{0, 1, 3, 64, 257} {
		for _, varied := range []bool{false, true} {
			items := randomItems(count, varied, rng)
			input := encodeItems(items)
			for _, shards := range []int{1, 2, 3, 4, 8} {
				for _, fanIn := range []int{2, 4} {
					for _, mem := range []int64{0, 512} {
						for _, dedup := range []bool{false, true} {
							out, rep, err := Sort{
								Shards: shards, FanIn: fanIn,
								RunMemoryBits: mem, Dedup: dedup,
							}.Run(nil, input, 1)
							if err != nil {
								t.Fatalf("count=%d shards=%d k=%d mem=%d dedup=%v: %v",
									count, shards, fanIn, mem, dedup, err)
							}
							want := reference(items, dedup)
							if !bytes.Equal(out, want) {
								t.Fatalf("count=%d varied=%v shards=%d k=%d mem=%d dedup=%v: output differs from reference",
									count, varied, shards, fanIn, mem, dedup)
							}
							single, _ := singleMachine(t, input, fanIn, mem, dedup)
							if !bytes.Equal(out, single) {
								t.Fatalf("count=%d shards=%d: output differs from unsharded engine", count, shards)
							}
							if rep.Items != count || len(rep.Shards) != shards {
								t.Fatalf("report shape: items=%d shards=%d, want %d/%d",
									rep.Items, len(rep.Shards), count, shards)
							}
						}
					}
				}
			}
		}
	}
}

// The ISSUE's rollup invariants: sharding pays with total work, never
// with per-shard memory — sum(scans) stays at or above the single
// machine while max(shard memory) stays at or below it.
func TestShardedSortRollupInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomItems(1024, false, rng)
	input := encodeItems(items)
	const fanIn, mem = 4, 1024
	_, singleRes := singleMachine(t, input, fanIn, mem, false)
	prevMax := singleRes.Scans() + 1
	for _, shards := range []int{1, 2, 4, 8} {
		_, rep, err := Sort{Shards: shards, FanIn: fanIn, RunMemoryBits: mem}.Run(nil, input, 1)
		if err != nil {
			t.Fatal(err)
		}
		agg := rep.Rollup()
		if agg.SumScans < singleRes.Scans() {
			t.Errorf("shards=%d: sum(scans)=%d < single-machine %d", shards, agg.SumScans, singleRes.Scans())
		}
		if agg.MaxMemoryBits > singleRes.PeakMemoryBits {
			t.Errorf("shards=%d: max(memory)=%d > single-machine %d", shards, agg.MaxMemoryBits, singleRes.PeakMemoryBits)
		}
		if agg.MaxScans >= prevMax {
			t.Errorf("shards=%d: max(scans)=%d did not fall (prev %d)", shards, agg.MaxScans, prevMax)
		}
		prevMax = agg.MaxScans
		if agg.Shards != shards || len(rep.Shards) != shards {
			t.Errorf("shards=%d: rollup census %d/%d", shards, agg.Shards, len(rep.Shards))
		}
		if got := rep.CriticalPathSteps(); got != rep.Distribute.Steps+agg.MaxSteps+rep.Merge.Steps {
			t.Errorf("shards=%d: critical path %d inconsistent", shards, got)
		}
		// At one shard the local machine does exactly the single-machine
		// sort: identical (r, s) report.
		if shards == 1 {
			if rep.Shards[0].Scans() != singleRes.Scans() || rep.Shards[0].PeakMemoryBits != singleRes.PeakMemoryBits {
				t.Errorf("1-shard local report %v != single machine %v", rep.Shards[0], singleRes)
			}
		}
	}
}

// SortTape is the mid-run tape handoff: the sorted fleet output
// replaces the tape's content with the head rewound, while the
// machine's own pre-handoff traffic on that slot stays on the books
// (SwapTape keeps the counters; only the sort itself is accounted
// off-machine, in the report).
func TestSortTapeKeepsCoordinatorCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randomItems(40, true, rng)
	m := core.NewMachine(2, 1)
	tp := m.Tape(1)
	for _, it := range items {
		if err := algorithms.WriteItem(tp, []byte(it)); err != nil {
			t.Fatal(err)
		}
	}
	before := tp.Stats()
	if before.Writes == 0 || before.Steps == 0 {
		t.Fatalf("test setup produced no traffic: %+v", before)
	}
	rep, err := Sort{Shards: 3, FanIn: 2, RunMemoryBits: 128, Dedup: true}.SortTape(nil, m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := tp.Stats()
	if after.Writes != before.Writes || after.Steps != before.Steps || after.Reversals != before.Reversals {
		t.Errorf("handoff changed the coordinator's counters: before %+v, after %+v", before, after)
	}
	if rep.Items != 40 {
		t.Errorf("report saw %d items, want 40", rep.Items)
	}
	if got, want := tp.Contents(), reference(items, true); !bytes.Equal(got, want) {
		t.Errorf("handed-back tape is not the sorted dedup'd sequence")
	}
	if tp.Pos() != 0 {
		t.Errorf("handed-back tape head at %d, want 0", tp.Pos())
	}
}

// Run partitioning must follow the engine's fixed-count rule: the
// greedy first fill under the budget sets the per-run item count.
func TestShardedSortRunPartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randomItems(100, false, rng) // 8-bit items
	input := encodeItems(items)
	_, rep, err := Sort{Shards: 3, FanIn: 2, RunMemoryBits: 64}.Run(nil, input, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunLen != 8 { // ⌊64/8⌋ items per run
		t.Fatalf("run length %d, want 8", rep.RunLen)
	}
	if rep.Runs != 13 { // ⌈100/8⌉
		t.Fatalf("runs %d, want 13", rep.Runs)
	}
	if rep.Distribute.Scans() != 1 {
		t.Fatalf("distribution used %d scans, want 1", rep.Distribute.Scans())
	}
}
