package shard

import (
	"bytes"
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/tape"
	"extmem/internal/trials"
)

// separator is the item terminator as a slice, for bytes.Count.
var separator = []byte{problems.Separator}

// Sort is the sharded external sort: the Corollary 10 sorting problem
// partitioned across shard-local machines in the k-machine style. The
// input item stream is cut into the same fixed-count initial runs the
// PR 3 engine would form (the first run's greedy fill under
// RunMemoryBits fixes the per-run item count), contiguous run ranges
// go to shard-local tape sets, each shard sorts locally with the
// loser-tree engine, and a final k-way merge (algorithms.MergeTapes)
// re-combines the per-shard outputs. Because a sorted multiset is
// canonical, the output bytes are identical at every shard count.
type Sort struct {
	// Shards is the number of shard machines; values below 1 mean 1.
	Shards int

	// FanIn and RunMemoryBits configure each shard's local
	// algorithms.Sorter (and the run partitioning); see that type.
	FanIn         int
	RunMemoryBits int64

	// Dedup drops duplicate items while the final merge is written
	// (set semantics) — cross-shard duplicates meet in the merge, so
	// deduplication belongs to the combine stage, not the shards.
	Dedup bool

	// Retry bounds how often a failed shard-local sort (an injected
	// fault, a recovered panic) is re-attempted before the coordinator
	// re-runs that shard's range itself. Retrying is semantics-free:
	// a shard's sorted output is a pure function of its run range, so
	// the output bytes cannot depend on which attempt succeeded. The
	// zero policy attempts each shard once.
	Retry RetryPolicy

	// Inject, when non-nil, is the chaos hook consulted before every
	// shard-local attempt (never by the coordinator's fallback); see
	// InjectFunc. It exists so internal/faults can make shard failure
	// an injectable execution shape exactly like the shard count.
	Inject InjectFunc

	// TapeOpts selects the tape storage backend of every machine this
	// sort constructs — the coordinator's distribution and combine
	// machines and each shard-local machine. Storage is an execution
	// shape like the shard count: the output bytes and every resource
	// count are identical whatever it says. The options ride inside
	// SortJob to worker processes (Wrap does not; gob drops func
	// fields).
	TapeOpts tape.Options

	// WrapTape, when non-nil, supplies a storage-fault wrapper for the
	// tapes of one shard-local attempt — the storage twin of Inject,
	// consulted for every injectable attempt and never by the
	// coordinator's fallback, so an injected I/O fault lands on the
	// retry → chaos-free fallback path exactly like a worker death.
	WrapTape func(shard, attempt int) tape.WrapBackend

	// Exec, when non-nil, overrides how a shard-local attempt executes
	// its SortJob — the transport seam, the sort-side twin of
	// Fleet.Attempt. The default is job.Execute() in-process;
	// internal/transport substitutes an Exec that ships the job to a
	// worker process and reads the sorted bytes and the shard machine's
	// core.Resources report back. A failed Exec (a dead worker, a
	// malformed reply) burns one attempt of the Retry budget like any
	// other attempt failure; the coordinator's fallback after retry
	// exhaustion always runs job.Execute() locally and never consults
	// Exec — nor Inject.
	Exec ExecFunc
}

// ExecFunc executes one attempt of one shard-local sort. shard and
// attempt (1-based) identify the execution; the job is self-contained,
// so an implementation may run it in this process, another process, or
// another host — the sorted output is a pure function of the job.
type ExecFunc func(ctx context.Context, shard, attempt int, job SortJob) ([]byte, core.Resources, error)

// SortJob is the self-contained description of one shard-local sort:
// the shard's contiguous run-range payload plus the exact engine
// configuration and the pre-derived machine seed. Every field is
// exported and value-typed, so the job gob-encodes — it is the unit of
// work the process transport ships to a shard worker.
type SortJob struct {
	Payload       []byte // the shard's '#'-terminated run-range items
	FanIn         int    // local sort engine fan-in (raw; the engine normalizes)
	RunMemoryBits int64  // run-formation budget, as the coordinator partitioned with
	Tapes         int    // tape count of the shard machine
	Seed          int64  // the shard machine's coin seed, already derived per shard

	// Tape selects the shard machine's storage backend. The value
	// fields gob-encode with the job; the Wrap func field is dropped by
	// gob, so injected storage faults stay in the process that set them.
	Tape tape.Options
}

// Execute runs the job on a fresh in-process shard machine and returns
// the sorted payload with the machine's exact resource report — the
// one attempt body every execution shape (local attempt, coordinator
// fallback, worker process) runs, which is why the bytes and the
// (r, s, t) census cannot depend on where an attempt ran.
func (j SortJob) Execute() ([]byte, core.Resources, error) {
	m := core.NewMachineOpts(j.Tapes, j.Seed, j.Tape)
	defer m.Close()
	m.SetInput(j.Payload)
	local := algorithms.Sorter{FanIn: j.FanIn, RunMemoryBits: j.RunMemoryBits}
	if err := local.SortToTape(m, 1, algorithms.WorkTapes(m, 1)); err != nil {
		return nil, core.Resources{}, err
	}
	return m.Tape(1).Contents(), m.Resources(), nil
}

func (s Sort) shardCount() int {
	if s.Shards < 1 {
		return 1
	}
	return s.Shards
}

func (s Sort) fanIn() int {
	if s.FanIn < 2 {
		return 2
	}
	return s.FanIn
}

// SortReport is the resource census of one sharded sort: every phase
// keeps the exact (r, s, t) report of its machine, so the paper's cost
// measures remain auditable per shard.
type SortReport struct {
	Items  int   // items in the input
	Bytes  int64 // payload bytes in the input ('#' separators included)
	RunLen int   // items per initial run (0: whole input fit one run)
	Runs   int   // initial runs partitioned across the shards

	Distribute core.Resources   // the coordinator's partition scan over the input
	Shards     []core.Resources // one report per shard-local sort, in shard order
	Merge      core.Resources   // the final k-way merge machine

	// The recovery census: how hard the fleet had to work to produce
	// the (byte-identical regardless) output. All zero except Attempts
	// (== shard count) on a fault-free run.
	Attempts  int // shard-local sort attempts across all shards, fallbacks included
	Fallbacks int // shards whose range the coordinator re-ran after retry exhaustion
	Recovered int // shard attempt panics recovered across the sort
}

// Rollup aggregates the per-shard reports into the max view (the
// parallel wall-clock analogue: shards run concurrently) and the sum
// view (total work across the fleet).
func (r SortReport) Rollup() Agg {
	a := Agg{Shards: len(r.Shards)}
	for _, res := range r.Shards {
		a.SumScans += res.Scans()
		a.SumMemoryBits += res.PeakMemoryBits
		a.SumSteps += res.Steps
		if res.Scans() > a.MaxScans {
			a.MaxScans = res.Scans()
		}
		if res.PeakMemoryBits > a.MaxMemoryBits {
			a.MaxMemoryBits = res.PeakMemoryBits
		}
		if res.Steps > a.MaxSteps {
			a.MaxSteps = res.Steps
		}
	}
	return a
}

// CriticalPathSteps is the head-movement count along the critical
// path: the distribution scan, then the slowest shard (the locals run
// concurrently), then the merge — the model's stand-in for sharded
// wall-clock time.
func (r SortReport) CriticalPathSteps() int64 {
	return r.Distribute.Steps + r.Rollup().MaxSteps + r.Merge.Steps
}

// Agg is the max/sum rollup of per-shard resource reports.
type Agg struct {
	Shards        int
	MaxScans      int
	SumScans      int
	MaxMemoryBits int64
	SumMemoryBits int64
	MaxSteps      int64
	SumSteps      int64
}

// Merge combines two rollups into the rollup of the union of their
// fleets' work: Max fields take the larger value, Sum fields add, and
// the shard census keeps the wider fleet. It is the one place the
// cross-rollup aggregation rule lives — relalg.QueryReport folds the
// per-operator-sort rollups of a query through it.
func (a Agg) Merge(b Agg) Agg {
	out := Agg{
		SumScans:      a.SumScans + b.SumScans,
		SumMemoryBits: a.SumMemoryBits + b.SumMemoryBits,
		SumSteps:      a.SumSteps + b.SumSteps,
	}
	out.Shards = max(a.Shards, b.Shards)
	out.MaxScans = max(a.MaxScans, b.MaxScans)
	out.MaxMemoryBits = max(a.MaxMemoryBits, b.MaxMemoryBits)
	out.MaxSteps = max(a.MaxSteps, b.MaxSteps)
	return out
}

// String renders the rollup in the (r, s) order of the paper.
func (a Agg) String() string {
	return fmt.Sprintf("shards=%d r: max=%d sum=%d, s bits: max=%d sum=%d, steps: max=%d sum=%d",
		a.Shards, a.MaxScans, a.SumScans, a.MaxMemoryBits, a.SumMemoryBits, a.MaxSteps, a.SumSteps)
}

// SortPanicError is a panic recovered from a shard-local sort attempt:
// the shard goroutine converts the panic into this typed error, the
// attempt counts as failed, and the retry/fallback machinery takes
// over instead of the process dying.
type SortPanicError struct {
	Shard int    // index of the shard whose attempt panicked
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack
}

func (e *SortPanicError) Error() string {
	return fmt.Sprintf("shard: shard %d sort panicked: %v", e.Shard, e.Value)
}

// Unwrap exposes a panic value that was itself an error.
func (e *SortPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ShardFault marks the recovered sort panic as a failed shard attempt
// (see Fault); the sort retry loop treats every attempt error as
// recoverable anyway, so the marker is for callers that triage.
func (e *SortPanicError) ShardFault() {}

// SortTape runs the sharded sort on the items of tape src of m and
// installs the sorted (optionally deduplicated) output back on src
// with the head at the start — the tape-handoff analogue of Run for a
// sort embedded in a larger machine program, and the primitive behind
// LaunchSort. The coordinator's distribution scan, the shard-local
// sorts and the final combining merge all run on their own machines
// and are accounted in the returned SortReport; m is charged nothing
// for the sort itself, but its pre-handoff traffic on the tape stays
// on the books (core.Machine.SwapTape keeps the slot's counters while
// the fleet's sorted tape replaces the content).
func (s Sort) SortTape(ctx context.Context, m *core.Machine, src int, seed int64) (SortReport, error) {
	out, rep, err := s.Run(ctx, m.Tape(src).Contents(), seed)
	if err != nil {
		return rep, err
	}
	m.SwapTape(src, out)
	return rep, nil
}

// Launcher returns the algorithms.SortLauncher that runs every sort
// through this sharded configuration — the sort-side counterpart of
// LaunchRetry. The engine configuration (fan-in, run-formation memory,
// dedup) is taken from the caller's Sorter, so the run partitioning is
// exactly the one the single-machine engine would form; the receiver
// contributes the execution shape (shard count, retry policy, chaos
// hook); seed feeds the shard machines' (unused by the deterministic
// sort) coin sources; and onReport, if non-nil, receives each
// successful sort's SortReport in call order.
func (s Sort) Launcher(seed int64, onReport func(SortReport)) algorithms.SortLauncher {
	return func(ctx context.Context, sorter algorithms.Sorter, m *core.Machine, src int, _ []int) error {
		cfg := s
		cfg.FanIn = sorter.FanIn
		cfg.RunMemoryBits = sorter.RunMemoryBits
		cfg.Dedup = sorter.Dedup
		rep, err := cfg.SortTape(ctx, m, src, seed)
		if err != nil {
			return err
		}
		if onReport != nil {
			onReport(rep)
		}
		return nil
	}
}

// LaunchSort returns the algorithms.SortLauncher that runs every sort
// through the sharded run-partitioned path — the sort-side counterpart
// of Launch, with no retries and no chaos.
func LaunchSort(shards int, seed int64, onReport func(SortReport)) algorithms.SortLauncher {
	return Sort{Shards: shards}.Launcher(seed, onReport)
}

// Run sorts the '#'-terminated input across the configured shards and
// returns the sorted (optionally deduplicated) output bytes with the
// full resource report. seed only feeds the machines' (unused by the
// deterministic sort) coin sources, derived per shard so any future
// randomized shard step stays schedule-independent.
//
// Shard attempts that fail — an Inject strike, a recovered panic —
// are retried under the Retry policy; a shard that exhausts its
// budget has its range re-run by the coordinator itself (chaos-free),
// so the output bytes and the successful attempt's resource report
// are identical to the fault-free run no matter what the fault plan
// did. Cancelling ctx stops every shard and returns the context error.
func (s Sort) Run(ctx context.Context, input []byte, seed int64) ([]byte, SortReport, error) {
	outs, rep, err := s.runShards(ctx, input, seed)
	if err != nil {
		return nil, rep, err
	}

	// Phase 3 — combine: the shard output tapes are handed to one
	// merge machine (tape 0 is the output, tape 1+i shard i's sorted
	// run) and k-way merged through the loser tree; dedup, when
	// requested, folds into this final write.
	out, merge, err := s.combine(outs, seed)
	if err != nil {
		return nil, rep, err
	}
	rep.Merge = merge
	return out, rep, nil
}

// RunKeepRuns is Run without the final combine — the pipelined handoff
// mode. It stops after the shard-local sorts and returns the per-shard
// sorted run payloads in shard order (the returned report's Merge is
// zero: no merge machine ran). A consumer that immediately re-sorts
// can feed these runs straight into its own merge (MergeRuns), so the
// intermediate relation is never written to — or re-read from — a
// single combined tape. Deduplication, which belongs to the combine
// stage, is deferred to whichever stage finally merges.
func (s Sort) RunKeepRuns(ctx context.Context, input []byte, seed int64) ([][]byte, SortReport, error) {
	return s.runShards(ctx, input, seed)
}

// runShards is phases 1+2 of the sharded sort: the coordinator's
// distribution scan and the concurrent shard-local sorts.
func (s Sort) runShards(ctx context.Context, input []byte, seed int64) ([][]byte, SortReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	shards := s.shardCount()
	rep := SortReport{}

	// Phase 1 — distribution: the coordinator scans the input once,
	// cutting the item stream at the same run boundaries the engine's
	// run formation would produce, and assembles one contiguous payload
	// per shard. The payload handoff models shipping a tape to the
	// shard machine; only the scan and the one-item read buffer are
	// machine state.
	dist := core.NewMachineOpts(1, seed, s.TapeOpts)
	defer dist.Close()
	dist.SetInput(input)
	in := dist.Tape(0)
	if err := in.Rewind(); err != nil {
		return nil, rep, err
	}
	var (
		payload   []byte
		runStarts []int
		// The planner is the engine's own fixed-count rule
		// (algorithms.Sorter run formation steps the same type), so the
		// partition boundaries here and the runs a shard-local sort
		// forms can never disagree.
		planner = algorithms.RunPlanner{Budget: s.RunMemoryBits}
	)
	for {
		item, ok, err := algorithms.ReadItem(in, dist.Mem(), "item.shard.distribute")
		if err != nil {
			return nil, rep, err
		}
		if !ok {
			break
		}
		if planner.Next(int64(len(item))) {
			runStarts = append(runStarts, len(payload))
		}
		payload = append(payload, item...)
		payload = append(payload, '#')
		rep.Items++
	}
	rep.Runs = len(runStarts)
	rep.RunLen = planner.RunLen
	rep.Bytes = int64(len(payload))
	rep.Distribute = dist.Resources()

	// Phase 2 — shard-local sorts: contiguous run ranges, one machine
	// (with its own tape set and meter) per shard, all running
	// concurrently. Which runs land where is a pure function of
	// (input, RunMemoryBits, shards), so the phase is deterministic —
	// which is also why a failed attempt can be retried or re-run by
	// the coordinator without moving a single output byte.
	ranges := Split(rep.Runs, shards)
	bound := func(runIdx int) int {
		if runIdx >= rep.Runs {
			return len(payload)
		}
		return runStarts[runIdx]
	}
	tapes := s.fanIn() + 2
	outs := make([][]byte, shards)
	reps := make([]core.Resources, shards)
	errs := make([]error, shards)
	var (
		attempts  atomic.Int64
		fallbacks atomic.Int64
		recovered atomic.Int64
	)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(rg Range) {
			defer wg.Done()
			out, res, err := s.sortShard(runCtx, rg, payload[bound(rg.Lo):bound(rg.Hi)],
				tapes, seed, &attempts, &fallbacks, &recovered)
			outs[rg.Shard], reps[rg.Shard], errs[rg.Shard] = out, res, err
			if err != nil {
				// The first unrecoverable shard stops its siblings.
				cancel()
			}
		}(rg)
	}
	wg.Wait()
	rep.Shards = reps
	rep.Attempts = int(attempts.Load())
	rep.Fallbacks = int(fallbacks.Load())
	rep.Recovered = int(recovered.Load())
	for _, err := range errs {
		if err != nil {
			return nil, rep, err
		}
	}
	return outs, rep, nil
}

// combine k-way merges the per-shard sorted outputs on one merge
// machine (tape 0 is the output, tape 1+i shard i's sorted run), with
// the configured dedup folded into the final write.
func (s Sort) combine(outs [][]byte, seed int64) ([]byte, core.Resources, error) {
	mm := core.NewMachineOpts(len(outs)+1, seed, s.TapeOpts)
	defer mm.Close()
	srcs := make([]int, len(outs))
	for i, out := range outs {
		mm.SetTape(i+1, out)
		srcs[i] = i + 1
	}
	if err := algorithms.MergeTapes(mm, 0, srcs, s.Dedup); err != nil {
		return nil, core.Resources{}, err
	}
	return mm.Tape(0).Contents(), mm.Resources(), nil
}

// MergeRuns is the consuming half of the pipelined handoff: it takes
// pre-formed sorted runs (typically the per-shard tapes a RunKeepRuns
// stage or a sharded anti-merge handed over) and produces the fully
// merged, optionally deduplicated output — a sharded sort whose
// distribution scan and run formation have already been paid for by
// the producing stage. Contiguous run ranges go to shard-local merge
// machines under the same Split rule (no dedup: cross-range duplicates
// meet only in the final combine), then the shard outputs are k-way
// merged exactly like Run's phase 3. Shard attempts sit on the same
// retry → coordinator-fallback path as sort attempts.
//
// The report's Distribute is zero — no coordinator scan runs, which is
// the point — and Items/Bytes are provenance metadata computed from
// the handed-over payloads, not charged to any machine.
func (s Sort) MergeRuns(ctx context.Context, runs [][]byte, seed int64) ([]byte, SortReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	shards := s.shardCount()
	rep := SortReport{Runs: len(runs)}
	for _, r := range runs {
		rep.Bytes += int64(len(r))
		rep.Items += bytes.Count(r, separator)
	}

	ranges := Split(len(runs), shards)
	outs := make([][]byte, shards)
	reps := make([]core.Resources, shards)
	errs := make([]error, shards)
	var (
		attempts  atomic.Int64
		fallbacks atomic.Int64
		recovered atomic.Int64
	)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(rg Range) {
			defer wg.Done()
			out, res, err := s.mergeShard(runCtx, rg, runs[rg.Lo:rg.Hi], seed,
				&attempts, &fallbacks, &recovered)
			outs[rg.Shard], reps[rg.Shard], errs[rg.Shard] = out, res, err
			if err != nil {
				cancel()
			}
		}(rg)
	}
	wg.Wait()
	rep.Shards = reps
	rep.Attempts = int(attempts.Load())
	rep.Fallbacks = int(fallbacks.Load())
	rep.Recovered = int(recovered.Load())
	for _, err := range errs {
		if err != nil {
			return nil, rep, err
		}
	}

	out, merge, err := s.combine(outs, seed)
	if err != nil {
		return nil, rep, err
	}
	rep.Merge = merge
	return out, rep, nil
}

// mergeShard merges one contiguous range of pre-formed runs on a
// shard-local machine, under the same retry → coordinator-fallback
// discipline as sortShard. The shard output is a pure function of its
// run range, so recovery cannot move a byte.
func (s Sort) mergeShard(ctx context.Context, rg Range, runs [][]byte, seed int64,
	attempts, fallbacks, recovered *atomic.Int64) ([]byte, core.Resources, error) {
	execute := func(opts tape.Options) ([]byte, core.Resources, error) {
		m := core.NewMachineOpts(len(runs)+1, trials.Seed(seed, rg.Shard+1), opts)
		defer m.Close()
		if len(runs) == 0 {
			return nil, m.Resources(), nil
		}
		srcs := make([]int, len(runs))
		for i, r := range runs {
			m.SetTape(i+1, r)
			srcs[i] = i + 1
		}
		if err := algorithms.MergeTapes(m, 0, srcs, false); err != nil {
			return nil, core.Resources{}, err
		}
		return m.Tape(0).Contents(), m.Resources(), nil
	}
	attemptOnce := func(attempt int, inject bool) (out []byte, res core.Resources, err error) {
		defer func() {
			if p := recover(); p != nil {
				recovered.Add(1)
				err = &SortPanicError{Shard: rg.Shard, Value: p, Stack: debug.Stack()}
			}
		}()
		if inject && s.Inject != nil {
			if ierr := s.Inject(rg.Shard, attempt); ierr != nil {
				return nil, core.Resources{}, ierr
			}
		}
		opts := s.TapeOpts
		if inject && s.WrapTape != nil {
			opts.Wrap = s.WrapTape(rg.Shard, attempt)
		}
		return execute(opts)
	}
	budget := s.Retry.maxAttempts()
	for attempt := 1; attempt <= budget; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, core.Resources{}, err
		}
		attempts.Add(1)
		out, res, err := attemptOnce(attempt, true)
		if err == nil {
			return out, res, nil
		}
		if attempt < budget {
			if serr := sleep(ctx, s.Retry.Backoff(attempt)); serr != nil {
				return nil, core.Resources{}, serr
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, core.Resources{}, err
	}
	fallbacks.Add(1)
	attempts.Add(1)
	return attemptOnce(budget+1, false)
}

// sortShard runs one shard's local sort under the retry policy. Each
// attempt consults the Inject hook first (a strike — error or panic —
// fails the attempt), recovers any panic into a *SortPanicError, and
// counts toward the attempt census. When the budget is exhausted the
// coordinator re-runs the range itself with the hook bypassed: the
// degradation models the coordinator absorbing a dead shard machine's
// work, and because the range's sorted output is input-pure, the
// bytes and the successful machine's resource report are exactly what
// the shard would have produced.
func (s Sort) sortShard(ctx context.Context, rg Range, payload []byte, tapes int, seed int64,
	attempts, fallbacks, recovered *atomic.Int64) ([]byte, core.Resources, error) {
	job := SortJob{
		Payload:       payload,
		FanIn:         s.FanIn,
		RunMemoryBits: s.RunMemoryBits,
		Tapes:         tapes,
		Seed:          trials.Seed(seed, rg.Shard+1),
		Tape:          s.TapeOpts,
	}
	attemptOnce := func(attempt int, inject bool) (out []byte, res core.Resources, err error) {
		defer func() {
			if p := recover(); p != nil {
				recovered.Add(1)
				err = &SortPanicError{Shard: rg.Shard, Value: p, Stack: debug.Stack()}
			}
		}()
		if inject && s.Inject != nil {
			if ierr := s.Inject(rg.Shard, attempt); ierr != nil {
				return nil, core.Resources{}, ierr
			}
		}
		if inject && s.Exec != nil {
			return s.Exec(ctx, rg.Shard, attempt, job)
		}
		aj := job
		if inject && s.WrapTape != nil {
			aj.Tape.Wrap = s.WrapTape(rg.Shard, attempt)
		}
		return aj.Execute()
	}
	budget := s.Retry.maxAttempts()
	for attempt := 1; attempt <= budget; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, core.Resources{}, err
		}
		attempts.Add(1)
		out, res, err := attemptOnce(attempt, true)
		if err == nil {
			return out, res, nil
		}
		if attempt < budget {
			if serr := sleep(ctx, s.Retry.Backoff(attempt)); serr != nil {
				return nil, core.Resources{}, serr
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, core.Resources{}, err
	}
	fallbacks.Add(1)
	attempts.Add(1)
	return attemptOnce(budget+1, false)
}
