package shard

import (
	"context"
	"math"
	"time"
)

// RetryPolicy bounds how often a failed shard is re-executed before
// the coordinator gives up on the shard machine and degrades to the
// single-machine path. Retrying is semantics-free on this execution
// layer: every shard's work is a pure function of its inputs — trial
// results of (seed, global index), sorted run ranges of (input,
// RunMemoryBits) — so a re-execution provably reproduces the bytes
// the failed attempt would have produced.
type RetryPolicy struct {
	MaxAttempts int           // total attempts per shard; < 1 means 1 (no retry)
	BaseDelay   time.Duration // backoff before the second attempt; 0 retries immediately
	MaxDelay    time.Duration // cap on the backoff growth; 0 means uncapped
}

// maxAttempts is the effective attempt budget (at least 1).
func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the delay before the retry following the given
// 1-based failed attempt: BaseDelay doubled per failure, capped at
// MaxDelay. With MaxDelay == 0 (uncapped) the doubling still clamps at
// the last representable value: time.Duration is an int64 of
// nanoseconds, and letting the product wrap negative would turn the
// longest waits into no wait at all (sleep treats d <= 0 as "don't").
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 1; i < attempt; i++ {
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
		if d > math.MaxInt64/2 {
			break
		}
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// sleep waits for d or until ctx is cancelled, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// InjectFunc is the chaos hook of the sharded sort: when non-nil it
// runs before each shard-local attempt (attempt is 1-based) and may
// sleep, return an error, or panic — all three are treated as that
// attempt of that shard failing. internal/faults derives deterministic
// hooks from seed-keyed fault plans; the fallback path never consults
// the hook, because it models the coordinator doing the work itself
// rather than the faulty shard machine.
type InjectFunc func(shard, attempt int) error
