package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"extmem/internal/trials"
)

// workload is a trial function with per-trial random content in every
// Result field, so equality checks compare real randomness, not
// constants.
func workload(i int, rng *rand.Rand) trials.Result {
	v := rng.Float64()
	r := trials.Result{Accept: v < 0.5, Value: v}
	if i%3 == 0 {
		r.Class = "third"
	}
	return r
}

func TestSplitProperties(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 16, 100, 101} {
		for _, shards := range []int{-1, 0, 1, 2, 3, 7, 16, 25} {
			rs := Split(n, shards)
			wantShards := shards
			if wantShards < 1 {
				wantShards = 1
			}
			if len(rs) != wantShards {
				t.Fatalf("Split(%d, %d): %d ranges", n, shards, len(rs))
			}
			lo := 0
			for i, r := range rs {
				if r.Shard != i {
					t.Fatalf("Split(%d, %d): range %d labeled shard %d", n, shards, i, r.Shard)
				}
				if r.Lo != lo || r.Hi < r.Lo {
					t.Fatalf("Split(%d, %d): range %d = %+v not contiguous from %d", n, shards, i, r, lo)
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("Split(%d, %d): ranges cover [0, %d), want [0, %d)", n, shards, lo, n)
			}
			// Near-equal: sizes differ by at most one, longer first.
			for i := 1; i < len(rs); i++ {
				a, b := rs[i-1].Len(), rs[i].Len()
				if a < b || a-b > 1 {
					t.Fatalf("Split(%d, %d): sizes %d then %d", n, shards, a, b)
				}
			}
		}
	}
}

// The tentpole invariant: a sharded fleet is indistinguishable from a
// single engine run at every (shards, parallel) combination — results,
// summary and error all equal.
func TestFleetMatchesEngine(t *testing.T) {
	const n = 31
	const seed = 77
	want, wantSum, wantErr := trials.Engine{Trials: n, Parallel: 1, Seed: seed}.Run(nil, workload)
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	for _, shards := range []int{1, 2, 3, 5, 31, 40} {
		for _, parallel := range []int{1, 4} {
			f := Fleet{Plan: Plan{Shards: shards, Trials: n}, Parallel: parallel, Seed: seed}
			got, gotSum, gotErr := f.Run(nil, workload)
			if gotErr != nil {
				t.Fatalf("shards=%d parallel=%d: %v", shards, parallel, gotErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d parallel=%d: results differ from engine", shards, parallel)
			}
			if !reflect.DeepEqual(gotSum, wantSum) {
				t.Fatalf("shards=%d parallel=%d: summary %+v != %+v", shards, parallel, gotSum, wantSum)
			}
		}
	}
}

// The in-order merge stream must deliver exactly the result sequence,
// in global trial order, no matter how shards interleave.
func TestFleetStreamOrder(t *testing.T) {
	const n = 57
	for _, shards := range []int{2, 4} {
		var streamed []trials.Result
		f := Fleet{
			Plan:     Plan{Shards: shards, Trials: n},
			Parallel: 4,
			Seed:     5,
			OnResult: func(r trials.Result) { streamed = append(streamed, r) },
		}
		got, _, err := f.Run(nil, workload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(streamed, got) {
			t.Fatalf("shards=%d: streamed rows differ from returned results", shards)
		}
		for i, r := range streamed {
			if r.Trial != i {
				t.Fatalf("shards=%d: row %d carries trial %d", shards, i, r.Trial)
			}
		}
	}
}

// Trial errors must surface identically to the engine: the first
// erroring trial in global order, even if it lives in a later shard's
// range than another error completed earlier.
func TestFleetErrorPropagation(t *testing.T) {
	failAt := func(bad ...int) trials.Func {
		set := map[int]bool{}
		for _, b := range bad {
			set[b] = true
		}
		return func(i int, rng *rand.Rand) trials.Result {
			if set[i] {
				return trials.Result{Err: fmt.Sprintf("boom %d", i)}
			}
			return workload(i, rng)
		}
	}
	fn := failAt(19, 6)
	_, _, wantErr := trials.Engine{Trials: 24, Parallel: 1, Seed: 9}.Run(nil, fn)
	if wantErr == nil {
		t.Fatal("engine run did not error")
	}
	for _, shards := range []int{1, 3, 8} {
		_, _, gotErr := Fleet{Plan: Plan{Shards: shards, Trials: 24}, Parallel: 2, Seed: 9}.Run(nil, fn)
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("shards=%d: error %v, want %v", shards, gotErr, wantErr)
		}
	}
}

func TestFleetEmpty(t *testing.T) {
	rs, sum, err := Fleet{Plan: Plan{Shards: 4}}.Run(nil, workload)
	if rs != nil || sum.Trials != 0 || err != nil {
		t.Fatalf("empty fleet: %v %+v %v", rs, sum, err)
	}
}

// Launch must hand the fleet entry points a Runner with the same
// byte-for-byte behavior as a plain worker pool.
func TestLaunchMatchesPool(t *testing.T) {
	var poolRows, fleetRows []trials.Result
	collect := func(dst *[]trials.Result) func(trials.Result) {
		return func(r trials.Result) { *dst = append(*dst, r) }
	}
	p, pSum, _ := trials.Pool(4)(20, 3, collect(&poolRows)).Run(nil, workload)
	s, sSum, _ := Launch(4, 2)(20, 3, collect(&fleetRows)).Run(nil, workload)
	if !reflect.DeepEqual(p, s) || !reflect.DeepEqual(pSum, sSum) {
		t.Fatal("Launch runner differs from Pool runner")
	}
	if !reflect.DeepEqual(poolRows, fleetRows) {
		t.Fatal("streamed rows differ between Pool and Launch")
	}
}
