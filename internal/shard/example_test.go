package shard_test

import (
	"fmt"
	"math/rand"
	"reflect"

	"extmem/internal/shard"
	"extmem/internal/trials"
)

// ExampleFleet runs the same fleet unsharded and across three shards
// of two workers each. Shards own disjoint contiguous trial-index
// ranges and trial randomness derives from the global index, so the
// sharded run reproduces the single-engine results exactly.
func ExampleFleet() {
	fn := func(i int, rng *rand.Rand) trials.Result {
		return trials.Result{Value: float64(rng.Intn(1000))}
	}
	single, _, err := trials.Engine{Trials: 6, Parallel: 1, Seed: 42}.Run(nil, fn)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sharded, _, err := shard.Fleet{
		Plan:     shard.Plan{Shards: 3, Trials: 6},
		Parallel: 2,
		Seed:     42,
	}.Run(nil, fn)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("identical to single engine:", reflect.DeepEqual(single, sharded))
	for _, r := range (shard.Plan{Shards: 3, Trials: 6}).Ranges() {
		fmt.Printf("shard %d owns trials [%d, %d)\n", r.Shard, r.Lo, r.Hi)
	}
	// Output:
	// identical to single engine: true
	// shard 0 owns trials [0, 2)
	// shard 1 owns trials [2, 4)
	// shard 2 owns trials [4, 6)
}

// ExampleSort shards a small sort across two machines at run
// granularity and rolls the per-shard resource reports up. The output
// bytes are identical at every shard count — sorting a multiset is
// canonical — while the reports show where the work happened.
func ExampleSort() {
	input := []byte("0110#0001#1011#0001#0100#1000#")
	out, rep, err := shard.Sort{Shards: 2, FanIn: 2, RunMemoryBits: 8}.Run(nil, input, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	agg := rep.Rollup()
	fmt.Printf("sorted: %s\n", out)
	fmt.Printf("%d items in %d runs of %d across %d shards\n",
		rep.Items, rep.Runs, rep.RunLen, len(rep.Shards))
	fmt.Printf("scans: max=%d sum=%d over shards, merge=%d\n",
		agg.MaxScans, agg.SumScans, rep.Merge.Scans())
	// Output:
	// sorted: 0001#0001#0100#0110#1000#1011#
	// 6 items in 3 runs of 2 across 2 shards
	// scans: max=10 sum=16 over shards, merge=1
}
