package shard_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"extmem/internal/faults"
	"extmem/internal/problems"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// The backoff schedule: doubling from BaseDelay, capped at MaxDelay,
// zero when no base is configured.
func TestRetryPolicyBackoff(t *testing.T) {
	p := shard.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (shard.RetryPolicy{}).Backoff(3); got != 0 {
		t.Errorf("zero policy backoff = %v, want 0", got)
	}
}

// An uncapped policy (MaxDelay == 0) must clamp the doubling instead of
// overflowing: time.Duration is an int64 of nanoseconds, and a wrapped
// negative backoff reads as "no backoff at all" to the retry sleep —
// exactly the attempts that most need spacing out.
func TestRetryPolicyBackoffOverflow(t *testing.T) {
	uncapped := shard.RetryPolicy{MaxAttempts: 200, BaseDelay: time.Second}
	cases := []struct {
		name    string
		p       shard.RetryPolicy
		attempt int
		want    time.Duration
	}{
		{"uncapped clamps instead of wrapping", uncapped, 100, time.Second << 33},
		{"the clamp is a fixed point", uncapped, 101, time.Second << 33},
		{"tiny base survives any attempt", shard.RetryPolicy{BaseDelay: 1}, 1000, 1 << 62},
		{"base beyond half range never doubles", shard.RetryPolicy{BaseDelay: time.Duration(math.MaxInt64/2 + 1)}, 10, time.Duration(math.MaxInt64/2 + 1)},
		{"maximal base is unchanged", shard.RetryPolicy{BaseDelay: time.Duration(math.MaxInt64)}, 7, time.Duration(math.MaxInt64)},
		{"capped schedules are unaffected", shard.RetryPolicy{BaseDelay: time.Second, MaxDelay: 4 * time.Second}, 50, 4 * time.Second},
	}
	for _, c := range cases {
		got := c.p.Backoff(c.attempt)
		if got < 0 {
			t.Errorf("%s: Backoff(%d) = %v, overflowed negative", c.name, c.attempt, got)
		}
		if got != c.want {
			t.Errorf("%s: Backoff(%d) = %v, want %v", c.name, c.attempt, got, c.want)
		}
	}
}

func fingerless(i int, rng *rand.Rand) trials.Result {
	return trials.Result{Trial: i, Value: float64(rng.Intn(1000))}
}

// A flaky shard (every trial of one shard panics on its first strike)
// heals under retry: rows identical to the fault-free fleet, no
// fallback, and the recovery census records the event.
func TestFleetRetryHealsFlakyShard(t *testing.T) {
	const n = 24
	want, wantSum, err := shard.Fleet{Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 7}.
		Run(nil, fingerless)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Mode: faults.Panic, Sites: []int{5, 13}, Flaky: 1}
	launch := plan.Trials(shard.LaunchRetry(4, 2, shard.RetryPolicy{MaxAttempts: 4}))
	got, sum, err := launch(n, 7, nil).Run(nil, fingerless)
	if err != nil {
		t.Fatalf("flaky fleet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows moved under recovered chaos:\n%v\n%v", got, want)
	}
	if sum.Recovered < 2 || sum.Retries < 2 || sum.Fallbacks != 0 {
		t.Fatalf("census %+v: want >=2 recovered, >=2 retries, 0 fallbacks", sum)
	}
	if sum.Trials != wantSum.Trials || sum.Accepts != wantSum.Accepts || sum.Errors != wantSum.Errors {
		t.Fatalf("tallies moved: %+v vs %+v", sum, wantSum)
	}
}

// A shard whose panic outlives the retry budget degrades: the
// coordinator re-runs the range sequentially, converting the panic to
// a deterministic per-trial error row while every other row matches
// the fault-free fleet bit for bit.
func TestFleetFallbackDegradesToErrorRow(t *testing.T) {
	const n = 24
	want, _, err := shard.Fleet{Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 7}.
		Run(nil, fingerless)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Mode: faults.Panic, Sites: []int{5}}
	for _, shards := range []int{1, 3} {
		launch := plan.Trials(shard.LaunchRetry(shards, 2, shard.RetryPolicy{MaxAttempts: 2}))
		got, sum, err := launch(n, 7, nil).Run(nil, fingerless)
		if got == nil {
			t.Fatalf("shards=%d: hard failure %v, want degraded rows", shards, err)
		}
		for i, r := range got {
			if i == 5 {
				if !strings.HasPrefix(r.Err, "recovered panic:") {
					t.Fatalf("shards=%d: struck row = %+v, want recovered-panic error", shards, r)
				}
				continue
			}
			if !reflect.DeepEqual(r, want[i]) {
				t.Fatalf("shards=%d: row %d moved under fallback: %+v vs %+v", shards, i, r, want[i])
			}
		}
		if sum.Fallbacks != 1 || sum.Retries != 1 || sum.Recovered < 2 || sum.Errors != 1 {
			t.Fatalf("shards=%d: census %+v", shards, sum)
		}
	}
}

// The FirstErr contract survives recovery: the degraded row is also
// the fleet's returned soft error, wrapped with its trial index.
func TestFleetFallbackFirstErr(t *testing.T) {
	plan := faults.Plan{Mode: faults.Panic, Sites: []int{2}}
	launch := plan.Trials(shard.LaunchRetry(2, 1, shard.RetryPolicy{}))
	_, _, err := launch(8, 1, nil).Run(nil, fingerless)
	if err == nil || !strings.Contains(err.Error(), "trial 2: recovered panic:") {
		t.Fatalf("err = %v, want wrapped trial-2 recovered panic", err)
	}
}

// Cancelling the run context from the result stream (what the CLIs do
// when their encoder dies mid-stream) is a hard failure: sibling
// shards stop claiming work, Run reports the cancellation, and the
// worker goroutines drain.
func TestFleetCancelAbortsSiblings(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rows, executed atomic.Int64
	rs, _, err := shard.Fleet{
		Plan:     shard.Plan{Shards: 4, Trials: 1 << 20},
		Parallel: 2,
		Seed:     3,
		OnResult: func(trials.Result) {
			if rows.Add(1) == 8 {
				cancel()
			}
		},
	}.Run(ctx, func(i int, rng *rand.Rand) trials.Result {
		executed.Add(1)
		return trials.Result{Trial: i}
	})
	if rs != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want nil rows and context.Canceled", rs, err)
	}
	if n := executed.Load(); n > 1<<19 {
		t.Fatalf("siblings kept running after cancel: %d trials executed", n)
	}
	waitForGoroutines(t, before)
}

// Repeated panicking fleets leave no goroutines behind, with and
// without a retry budget.
func TestFleetNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := faults.Plan{Mode: faults.Panic, Sites: []int{0, 9}, Flaky: 1}
	for k := 0; k < 10; k++ {
		launch := plan.Trials(shard.LaunchRetry(3, 4, shard.RetryPolicy{MaxAttempts: 3}))
		if _, _, err := launch(20, int64(k), nil).Run(nil, fingerless); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	waitForGoroutines(t, before)
}

// Sort-side recovery: a flaky shard heals under its budget with
// byte-identical output and a fault-free successful-attempt census; a
// permanent failure falls back to the chaos-free coordinator run with
// the same guarantee. The injected error path (attempt fails before
// the machine runs) must behave exactly like the recovered-panic path.
func TestSortRetryAndFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	input := problems.GenMultisetYes(128, 16, rng).Encode()
	clean, cleanRep, err := shard.Sort{Shards: 3, FanIn: 2, RunMemoryBits: 512}.Run(nil, input, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name                 string
		plan                 faults.Plan
		budget               int
		attempts, rec, falls int
	}{
		{"flaky-panic", faults.Plan{Mode: faults.Panic, Sites: []int{1}, Flaky: 1}, 3, 4, 1, 0},
		{"perm-panic", faults.Plan{Mode: faults.Panic, Sites: []int{1}}, 2, 5, 2, 1},
		{"flaky-error", faults.Plan{Mode: faults.Error, Sites: []int{1}, Flaky: 1}, 3, 4, 0, 0},
		{"perm-error", faults.Plan{Mode: faults.Error, Sites: []int{1}}, 2, 5, 0, 1},
	}
	for _, c := range cases {
		out, rep, err := shard.Sort{
			Shards: 3, FanIn: 2, RunMemoryBits: 512,
			Retry:  shard.RetryPolicy{MaxAttempts: c.budget},
			Inject: c.plan.ShardInject(),
		}.Run(nil, input, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !bytes.Equal(out, clean) {
			t.Fatalf("%s: output moved under recovery", c.name)
		}
		if !reflect.DeepEqual(rep.Shards, cleanRep.Shards) || !reflect.DeepEqual(rep.Merge, cleanRep.Merge) {
			t.Fatalf("%s: successful-attempt census moved", c.name)
		}
		if rep.Attempts != c.attempts || rep.Recovered != c.rec || rep.Fallbacks != c.falls {
			t.Fatalf("%s: census (a=%d r=%d f=%d), want (a=%d r=%d f=%d)",
				c.name, rep.Attempts, rep.Recovered, rep.Fallbacks, c.attempts, c.rec, c.falls)
		}
	}
}

// A shard panic beyond recovery semantics — no Inject, the sort
// machinery itself cancelled — propagates as a hard error and cancels
// sibling shards.
func TestSortContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	input := problems.GenMultisetYes(64, 16, rng).Encode()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := (shard.Sort{Shards: 2}).Run(ctx, input, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The typed sort panic error carries the shard index and unwraps to
// the panic value.
func TestSortPanicErrorSurface(t *testing.T) {
	cause := errors.New("shard exploded")
	rng := rand.New(rand.NewSource(11))
	input := problems.GenMultisetYes(64, 16, rng).Encode()
	_, _, err := shard.Sort{
		Shards: 2,
		Inject: func(sh, attempt int) error {
			if sh == 1 {
				panic(cause)
			}
			return nil
		},
		// The fallback bypasses Inject, so even a budget of 1 recovers.
	}.Run(nil, input, 1)
	if err != nil {
		t.Fatalf("panic in inject hook must degrade, got %v", err)
	}

	var pe *shard.SortPanicError
	se := &shard.SortPanicError{Shard: 1, Value: cause, Stack: []byte("stack")}
	if !errors.As(error(se), &pe) || pe.Shard != 1 || !errors.Is(se, cause) {
		t.Fatalf("SortPanicError surface broken: %v", se)
	}
}

func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
