package listmachine

import (
	"errors"
	"fmt"
	"strings"
)

// Movement is one head instruction of a transition (Definition 14):
// the direction the head faces and whether it moves to the adjacent
// cell.
type Movement struct {
	Dir  int8 // +1 or −1
	Move bool
}

// TransFunc is the transition function
// α : (A\B) × (A*)^t × C → A × Movement^t. It sees the current state,
// the cell contents under all heads, and the nondeterministic choice,
// and returns the next state and head movements — exactly the
// information α has in Definition 14 (it never sees head positions).
type TransFunc func(state string, heads []Cell, choice int) (next string, mov []Movement)

// NLM is a nondeterministic list machine
// M = (t, m, I, C, A, a0, α, B, Bacc).
type NLM struct {
	Name    string
	T       int // number of lists
	M       int // input length (number of input values)
	Choices int // |C|; the machine is deterministic iff Choices == 1
	Start   string
	Final   map[string]bool // B
	Accept  map[string]bool // Bacc ⊆ B
	Alpha   TransFunc

	// MaxSteps guards against ill-formed machines with infinite runs
	// ((r,t)-bounded machines always halt, Lemma 31).
	MaxSteps int
}

// ErrInvalid is returned for ill-formed machines.
var ErrInvalid = errors.New("listmachine: invalid machine")

// ErrStepLimit is returned when a run exceeds MaxSteps.
var ErrStepLimit = errors.New("listmachine: step limit exceeded")

// Validate checks basic well-formedness.
func (m *NLM) Validate() error {
	if m.T < 1 {
		return fmt.Errorf("%w: t = %d", ErrInvalid, m.T)
	}
	if m.M < 0 {
		return fmt.Errorf("%w: m = %d", ErrInvalid, m.M)
	}
	if m.Choices < 1 {
		return fmt.Errorf("%w: |C| = %d", ErrInvalid, m.Choices)
	}
	if m.Alpha == nil {
		return fmt.Errorf("%w: nil transition function", ErrInvalid)
	}
	for a := range m.Accept {
		if !m.Final[a] {
			return fmt.Errorf("%w: accepting state %q not final", ErrInvalid, a)
		}
	}
	if m.MaxSteps <= 0 {
		return fmt.Errorf("%w: MaxSteps must be positive", ErrInvalid)
	}
	return nil
}

// Deterministic reports whether the machine is deterministic
// (|C| = 1).
func (m *NLM) Deterministic() bool { return m.Choices == 1 }

// Config is a configuration (a, p, d, X) of Definition 24.
type Config struct {
	State string
	Pos   []int    // head positions, 0-based (the paper uses 1-based)
	Dir   []int8   // head directions
	Lists [][]Cell // X: the cell contents of each list
}

// NewConfig builds the initial configuration for the input values
// (Definition 24(b)): list 0 holds ⟨v_0⟩ … ⟨v_{m−1}⟩, all other lists
// a single empty cell, heads at the left ends facing forward.
func (m *NLM) NewConfig(input []string) (*Config, error) {
	if len(input) != m.M {
		return nil, fmt.Errorf("listmachine: input has %d values, machine expects %d", len(input), m.M)
	}
	c := &Config{
		State: m.Start,
		Pos:   make([]int, m.T),
		Dir:   make([]int8, m.T),
		Lists: make([][]Cell, m.T),
	}
	for i := range c.Dir {
		c.Dir[i] = +1
	}
	first := make([]Cell, 0, max(1, len(input)))
	for i, v := range input {
		first = append(first, inputCell(v, i))
	}
	if len(first) == 0 {
		first = append(first, emptyCell())
	}
	c.Lists[0] = first
	for tau := 1; tau < m.T; tau++ {
		c.Lists[tau] = []Cell{emptyCell()}
	}
	return c, nil
}

// Heads returns the cell contents under all heads.
func (c *Config) Heads() []Cell {
	out := make([]Cell, len(c.Lists))
	for i := range c.Lists {
		out[i] = c.Lists[i][c.Pos[i]]
	}
	return out
}

// clone deep-copies the configuration. Cells are immutable once
// written, so sharing them is safe; list slices are copied.
func (c *Config) clone() *Config {
	n := &Config{
		State: c.State,
		Pos:   append([]int(nil), c.Pos...),
		Dir:   append([]int8(nil), c.Dir...),
		Lists: make([][]Cell, len(c.Lists)),
	}
	for i := range c.Lists {
		n.Lists[i] = append([]Cell(nil), c.Lists[i]...)
	}
	return n
}

// Key returns a canonical identifier of the configuration for
// memoized exploration.
func (c *Config) Key() string {
	var b strings.Builder
	b.WriteString(c.State)
	for i := range c.Lists {
		fmt.Fprintf(&b, "|%d,%d:", c.Pos[i], c.Dir[i])
		for _, cell := range c.Lists[i] {
			b.WriteString(cell.String())
			b.WriteByte(';')
		}
	}
	return b.String()
}

// IsFinal reports whether the configuration's state is final.
func (m *NLM) IsFinal(c *Config) bool { return m.Final[c.State] }

// IsAccepting reports whether the configuration's state is accepting.
func (m *NLM) IsAccepting(c *Config) bool { return m.Accept[c.State] }

// StepResult is one c-successor together with the per-list cell
// movement deltas (−1, 0, +1) used for moves(ρ) in Definition 27.
type StepResult struct {
	Next  *Config
	Delta []int8
}

// Step computes the c-successor of a configuration per
// Definition 24(c).
func (m *NLM) Step(c *Config, choice int) (*StepResult, error) {
	if m.IsFinal(c) {
		return nil, fmt.Errorf("listmachine: Step from final state %q", c.State)
	}
	nextState, mov := m.Alpha(c.State, c.Heads(), choice)
	if len(mov) != m.T {
		return nil, fmt.Errorf("listmachine: α returned %d movements, want %d", len(mov), m.T)
	}

	// Clip movements at the list ends (the e′ rule).
	eff := make([]Movement, m.T)
	anyF := false
	for i := 0; i < m.T; i++ {
		e := mov[i]
		if e.Dir != +1 && e.Dir != -1 {
			return nil, fmt.Errorf("listmachine: α returned direction %d on list %d", e.Dir, i)
		}
		if c.Pos[i] == 0 && e.Dir == -1 && e.Move {
			e = Movement{Dir: -1, Move: false}
		}
		if c.Pos[i] == len(c.Lists[i])-1 && e.Dir == +1 && e.Move {
			e = Movement{Dir: +1, Move: false}
		}
		eff[i] = e
		if e.Move || e.Dir != c.Dir[i] {
			anyF = true
		}
	}

	n := c.clone()
	n.State = nextState
	delta := make([]int8, m.T)
	if !anyF {
		// No head moves or turns: only the state changes.
		return &StepResult{Next: n, Delta: delta}, nil
	}

	// Build the record y = a⟨x1⟩…⟨xt⟩⟨c⟩ from the PRE-step state and
	// head cells.
	y := buildRecord(c.State, c.Heads(), choice)

	for i := 0; i < m.T; i++ {
		pi := c.Pos[i]
		list := n.Lists[i]
		// Rewrite the list per Definition 24(c), tracking where the
		// old head cell x_{pi} lands (oldIdx) so the cell-movement
		// delta of Definition 27(iii) is physical, not index-based.
		var oldIdx int
		switch {
		case eff[i].Move:
			// Overwrite the current cell with y.
			list = append([]Cell(nil), list...)
			list[pi] = y
			oldIdx = pi // x_{pi} is gone; y took its place
		case c.Dir[i] == +1:
			// Insert y before the current cell.
			list = insertCell(list, pi, y)
			oldIdx = pi + 1
		default: // c.Dir[i] == −1: insert y after the current cell.
			list = insertCell(list, pi+1, y)
			oldIdx = pi
		}
		n.Lists[i] = list

		// New head position p′ per Definition 24(c), driven by the
		// EFFECTIVE movement (on a turn without moving, the head ends
		// on the inserted record cell y).
		switch {
		case eff[i].Dir == +1 && eff[i].Move:
			n.Pos[i] = pi + 1
		case eff[i].Dir == -1 && eff[i].Move:
			n.Pos[i] = pi - 1
		case eff[i].Dir == +1: // (+1, false)
			n.Pos[i] = pi + 1
		default: // (−1, false)
			n.Pos[i] = pi
		}
		delta[i] = int8(n.Pos[i] - oldIdx)
		n.Dir[i] = eff[i].Dir
	}
	return &StepResult{Next: n, Delta: delta}, nil
}

// insertCell inserts y at index idx.
func insertCell(list []Cell, idx int, y Cell) []Cell {
	out := make([]Cell, 0, len(list)+1)
	out = append(out, list[:idx]...)
	out = append(out, y)
	out = append(out, list[idx:]...)
	return out
}

// buildRecord assembles the string a⟨x1⟩…⟨xt⟩⟨c⟩ written by a
// transition.
func buildRecord(state string, heads []Cell, choice int) Cell {
	y := Cell{{Kind: KState, State: state}}
	for _, h := range heads {
		y = append(y, Token{Kind: KOpen})
		y = append(y, h...)
		y = append(y, Token{Kind: KClose})
	}
	y = append(y, Token{Kind: KOpen}, Token{Kind: KChoice, Choice: choice}, Token{Kind: KClose})
	return y
}
