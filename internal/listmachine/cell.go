// Package listmachine implements the nondeterministic list machines
// (NLMs) of Section 5 of the paper (Definitions 14 and 24), together
// with their run semantics, exact acceptance probabilities
// (Lemma 25), skeletons (Definition 28) and the compared-positions
// census (Definition 33) used by the merge lemma experiments.
//
// An NLM has t lists whose cells store strings over the alphabet
// A = I ∪ C ∪ A ∪ {⟨,⟩} (input numbers, nondeterministic choices,
// states, and brackets). We represent such strings as token slices
// that remember, for every input number, the input POSITION it
// originated from — which makes the index strings ind(·) and
// skeletons of Definition 28 exact, not parsed approximations.
package listmachine

import (
	"fmt"
	"strings"
)

// Kind discriminates the token types of the alphabet A.
type Kind int

// Token kinds: input number, nondeterministic choice, state, brackets.
const (
	KInput Kind = iota
	KChoice
	KState
	KOpen
	KClose
)

// Token is one symbol of a cell string. Input tokens carry both the
// concrete value and the input position it came from; the skeleton
// keeps only the position (the index string of Definition 28).
type Token struct {
	Kind   Kind
	Val    string // concrete input value (KInput)
	Input  int    // originating input position, 0-based (KInput)
	State  string // state name (KState)
	Choice int    // nondeterministic choice (KChoice)
}

func (t Token) String() string {
	switch t.Kind {
	case KInput:
		return t.Val
	case KChoice:
		return fmt.Sprintf("c%d", t.Choice)
	case KState:
		return t.State
	case KOpen:
		return "⟨"
	case KClose:
		return "⟩"
	default:
		return "?"
	}
}

// indString renders the token for the index string ind(·): input
// values are replaced by their position, choices by the wildcard "?".
func (t Token) indString() string {
	switch t.Kind {
	case KInput:
		return fmt.Sprintf("i%d", t.Input)
	case KChoice:
		return "?"
	default:
		return t.String()
	}
}

// A Cell is the content of one list cell: a string over A.
type Cell []Token

// String renders the concrete cell content.
func (c Cell) String() string {
	var b strings.Builder
	for _, t := range c {
		b.WriteString(t.String())
	}
	return b.String()
}

// Ind renders the index string ind(c) of Definition 28.
func (c Cell) Ind() string {
	var b strings.Builder
	for _, t := range c {
		b.WriteString(t.indString())
	}
	return b.String()
}

// InputPositions returns the set of input positions occurring in the
// cell, in order of first occurrence.
func (c Cell) InputPositions() []int {
	seen := map[int]bool{}
	var out []int
	for _, t := range c {
		if t.Kind == KInput && !seen[t.Input] {
			seen[t.Input] = true
			out = append(out, t.Input)
		}
	}
	return out
}

// InputOccurrences returns every input position in the cell in token
// order, with repetitions — the raw material of the merge lemma's
// "sequence occurring in a configuration" (Definition 36).
func (c Cell) InputOccurrences() []int {
	var out []int
	for _, t := range c {
		if t.Kind == KInput {
			out = append(out, t.Input)
		}
	}
	return out
}

// clone copies the cell.
func (c Cell) clone() Cell { return append(Cell(nil), c...) }

// inputCell builds the initial cell ⟨v⟩ for input position i holding
// value v.
func inputCell(v string, i int) Cell {
	return Cell{{Kind: KOpen}, {Kind: KInput, Val: v, Input: i}, {Kind: KClose}}
}

// emptyCell builds the initial cell ⟨⟩ of the non-input lists.
func emptyCell() Cell { return Cell{{Kind: KOpen}, {Kind: KClose}} }
