package listmachine

import "fmt"

// Sample list machines used by tests and the merge-lemma experiments
// (E12). States encode counters where needed — list machines cannot
// sense list ends or positions, exactly as in Definition 14.

// ScanAcceptNLM returns a deterministic 1-list machine that scans its
// m input cells left to right and accepts. It performs no reversals.
func ScanAcceptNLM(m int) *NLM {
	return &NLM{
		Name: fmt.Sprintf("scan-%d", m), T: 1, M: m, Choices: 1,
		Start:    "s0",
		Final:    map[string]bool{"acc": true},
		Accept:   map[string]bool{"acc": true},
		MaxSteps: 4 * (m + 2),
		Alpha: func(state string, heads []Cell, choice int) (string, []Movement) {
			var i int
			fmt.Sscanf(state, "s%d", &i)
			if i >= m-1 || m == 0 {
				return "acc", []Movement{{Dir: +1, Move: false}}
			}
			return fmt.Sprintf("s%d", i+1), []Movement{{Dir: +1, Move: true}}
		},
	}
}

// GuessNLM returns a nondeterministic 1-list machine on k steps that
// accepts iff every choice drawn is 0; with |C| = c choices its
// acceptance probability is exactly c^{−k}.
func GuessNLM(k, c int) *NLM {
	return &NLM{
		Name: fmt.Sprintf("guess-%d-%d", k, c), T: 1, M: 1, Choices: c,
		Start:    "g0",
		Final:    map[string]bool{"acc": true, "rej": true},
		Accept:   map[string]bool{"acc": true},
		MaxSteps: k + 2,
		Alpha: func(state string, heads []Cell, choice int) (string, []Movement) {
			var i int
			fmt.Sscanf(state, "g%d", &i)
			stay := []Movement{{Dir: +1, Move: false}}
			if choice != 0 {
				return "rej", stay
			}
			if i >= k-1 {
				return "acc", stay
			}
			return fmt.Sprintf("g%d", i+1), stay
		},
	}
}

// PingPongNLM returns a deterministic 1-list machine on m inputs that
// sweeps its list forward and backward k times and accepts. It
// performs 2(k−1) direction changes, the list-machine analogue of
// turing.ZigZagMachine.
func PingPongNLM(m, k int) *NLM {
	if m < 2 {
		panic("listmachine: PingPongNLM needs m >= 2")
	}
	return &NLM{
		Name: fmt.Sprintf("pingpong-%d-%d", m, k), T: 1, M: m, Choices: 1,
		Start:    "f1.0",
		Final:    map[string]bool{"acc": true},
		Accept:   map[string]bool{"acc": true},
		MaxSteps: 4 * m * (k + 2),
		Alpha: func(state string, heads []Cell, choice int) (string, []Movement) {
			// State f<pass>.<i> / b<pass>.<i>: i is the head position
			// AFTER the movement below executes — list machines cannot
			// sense positions, so the state carries them.
			var pass, i int
			var dir byte
			fmt.Sscanf(state, "%c%d.%d", &dir, &pass, &i)
			fwd := []Movement{{Dir: +1, Move: true}}
			back := []Movement{{Dir: -1, Move: true}}
			if dir == 'f' {
				if i < m-1 {
					return fmt.Sprintf("f%d.%d", pass, i+1), fwd
				}
				if pass == k {
					return "acc", []Movement{{Dir: +1, Move: false}}
				}
				return fmt.Sprintf("b%d.%d", pass, m-2), back
			}
			if i > 0 {
				return fmt.Sprintf("b%d.%d", pass, i-1), back
			}
			return fmt.Sprintf("f%d.%d", pass+1, 1), fwd
		},
	}
}

// CopyReverseCompareNLM returns a deterministic 2-list machine on 2m
// inputs that (a) scans the first m cells while its second head drops
// a record of each onto list 2, then (b) scans the remaining m cells
// while reading list 2 backward. Phase (b)'s local views therefore
// contain input position m+i together with position m−i, i.e. the
// machine compares the second half against the REVERSED first half —
// the information-flow pattern the merge lemma (Lemma 37/38)
// formalizes: one reversal can only pair positions along monotone
// subsequences.
func CopyReverseCompareNLM(m int) *NLM {
	if m < 1 {
		panic("listmachine: CopyReverseCompareNLM needs m >= 1")
	}
	return &NLM{
		Name: fmt.Sprintf("copyrev-%d", m), T: 2, M: 2 * m, Choices: 1,
		Start:    "c0",
		Final:    map[string]bool{"acc": true},
		Accept:   map[string]bool{"acc": true},
		MaxSteps: 16 * (m + 2),
		Alpha: func(state string, heads []Cell, choice int) (string, []Movement) {
			var i int
			stay := Movement{Dir: +1, Move: false}
			switch {
			case state[0] == 'c': // copy phase: both heads step right
				fmt.Sscanf(state, "c%d", &i)
				mov := []Movement{{Dir: +1, Move: true}, {Dir: +1, Move: false}}
				// Head 2 sits on the last cell of list 2; a clipped
				// forward move inserts the record before it, so list 2
				// accumulates one record per input cell.
				if i == m-1 {
					return "t0", mov
				}
				return fmt.Sprintf("c%d", i+1), mov
			case state[0] == 't': // turn head 2 around
				return "x0", []Movement{stay, {Dir: -1, Move: true}}
			default: // x%d: compare phase
				fmt.Sscanf(state, "x%d", &i)
				if i == m-1 {
					return "acc", []Movement{stay, {Dir: -1, Move: false}}
				}
				return fmt.Sprintf("x%d", i+1),
					[]Movement{{Dir: +1, Move: true}, {Dir: -1, Move: true}}
			}
		},
	}
}
