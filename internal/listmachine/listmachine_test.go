package listmachine

import (
	"math/big"
	"strings"
	"testing"
)

func TestNewConfigLayout(t *testing.T) {
	m := ScanAcceptNLM(3)
	c, err := m.NewConfig([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Lists[0]) != 3 {
		t.Fatalf("input list has %d cells, want 3", len(c.Lists[0]))
	}
	if got := c.Lists[0][1].String(); got != "⟨b⟩" {
		t.Fatalf("cell 1 = %q, want ⟨b⟩", got)
	}
	if got := c.Lists[0][1].Ind(); got != "⟨i1⟩" {
		t.Fatalf("ind(cell 1) = %q, want ⟨i1⟩", got)
	}
	if c.Pos[0] != 0 || c.Dir[0] != +1 {
		t.Fatal("head not at left end facing forward")
	}
}

func TestNewConfigWrongArity(t *testing.T) {
	m := ScanAcceptNLM(3)
	if _, err := m.NewConfig([]string{"a"}); err == nil {
		t.Fatal("wrong input arity accepted")
	}
}

func TestValidate(t *testing.T) {
	good := ScanAcceptNLM(2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &NLM{T: 0, M: 1, Choices: 1, MaxSteps: 10,
		Final: map[string]bool{}, Accept: map[string]bool{},
		Alpha: func(string, []Cell, int) (string, []Movement) { return "", nil }}
	if err := bad.Validate(); err == nil {
		t.Fatal("t=0 accepted")
	}
	bad2 := &NLM{T: 1, M: 1, Choices: 1, MaxSteps: 10,
		Final:  map[string]bool{},
		Accept: map[string]bool{"a": true},
		Alpha:  func(string, []Cell, int) (string, []Movement) { return "", nil }}
	if err := bad2.Validate(); err == nil {
		t.Fatal("accepting non-final state accepted")
	}
}

func TestScanAccept(t *testing.T) {
	m := ScanAcceptNLM(4)
	run, err := m.RunDeterministic([]string{"w", "x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Accepted {
		t.Fatal("scan machine rejected")
	}
	if run.Rev[0] != 0 {
		t.Fatalf("scan reversed: %v", run.Rev)
	}
	if run.Scans() != 1 {
		t.Fatalf("Scans = %d, want 1", run.Scans())
	}
}

// A state-only step (no head moves or turns) must leave lists
// untouched (Definition 24(c), first case).
func TestStateOnlyStepLeavesListsUntouched(t *testing.T) {
	m := GuessNLM(3, 2)
	c, err := m.NewConfig([]string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Step(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Next.State != "g1" {
		t.Fatalf("state = %q", res.Next.State)
	}
	if len(res.Next.Lists[0]) != 1 || res.Next.Lists[0][0].String() != "⟨v⟩" {
		t.Fatalf("state-only step modified the list: %v", res.Next.Lists[0])
	}
	for _, d := range res.Delta {
		if d != 0 {
			t.Fatal("state-only step reported movement")
		}
	}
}

// A moving step overwrites the left-behind cell with the record
// y = a⟨x1⟩…⟨xt⟩⟨c⟩.
func TestMovingStepWritesRecord(t *testing.T) {
	m := ScanAcceptNLM(3)
	c, _ := m.NewConfig([]string{"a", "b", "c"})
	res, err := m.Step(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Next.Pos[0] != 1 {
		t.Fatalf("head at %d, want 1", res.Next.Pos[0])
	}
	got := res.Next.Lists[0][0].String()
	want := "s0⟨⟨a⟩⟩⟨c0⟩"
	if got != want {
		t.Fatalf("record = %q, want %q", got, want)
	}
	// The record must remember input position 0.
	if ps := res.Next.Lists[0][0].InputPositions(); len(ps) != 1 || ps[0] != 0 {
		t.Fatalf("record positions = %v", ps)
	}
}

// A clipped forward move at the right end inserts the record before
// the current cell and keeps the head on the old cell.
func TestClippedMoveInsertsRecord(t *testing.T) {
	m := CopyReverseCompareNLM(1) // head 2 is clipped on its 1-cell list
	c, _ := m.NewConfig([]string{"a", "b"})
	res, err := m.Step(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2 := res.Next.Lists[1]
	if len(l2) != 2 {
		t.Fatalf("list 2 has %d cells, want 2 (inserted record + old cell)", len(l2))
	}
	if res.Next.Pos[1] != 1 {
		t.Fatalf("head 2 at %d, want 1 (still on the old cell)", res.Next.Pos[1])
	}
	if l2[1].String() != "⟨⟩" {
		t.Fatalf("old cell = %q, want ⟨⟩", l2[1])
	}
	if !strings.Contains(l2[0].String(), "⟨a⟩") {
		t.Fatalf("inserted record %q misses the copied value", l2[0])
	}
}

func TestPingPongReversals(t *testing.T) {
	for k := 1; k <= 4; k++ {
		m := PingPongNLM(5, k)
		run, err := m.RunDeterministic([]string{"a", "b", "c", "d", "e"})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !run.Accepted {
			t.Fatalf("k=%d: rejected", k)
		}
		if want := 2 * (k - 1); run.Rev[0] != want {
			t.Fatalf("k=%d: rev = %d, want %d", k, run.Rev[0], want)
		}
	}
}

func TestGuessProbabilityExact(t *testing.T) {
	cases := []struct {
		k, c int
	}{{1, 2}, {2, 2}, {3, 2}, {2, 3}, {1, 5}}
	for _, tc := range cases {
		m := GuessNLM(tc.k, tc.c)
		p, err := m.AcceptProbability([]string{"v"})
		if err != nil {
			t.Fatal(err)
		}
		den := int64(1)
		for i := 0; i < tc.k; i++ {
			den *= int64(tc.c)
		}
		if want := big.NewRat(1, den); p.Cmp(want) != 0 {
			t.Fatalf("k=%d c=%d: Pr = %v, want %v", tc.k, tc.c, p, want)
		}
	}
}

// Lemma 25: the probability equals the fraction of accepting choice
// sequences.
func TestChoiceCountingMatchesProbability(t *testing.T) {
	m := GuessNLM(2, 3)
	accepts := 0
	total := 0
	for c0 := 0; c0 < 3; c0++ {
		for c1 := 0; c1 < 3; c1++ {
			run, err := m.RunWithChoices([]string{"v"}, []int{c0, c1})
			if err != nil {
				t.Fatal(err)
			}
			total++
			if run.Accepted {
				accepts++
			}
		}
	}
	p, err := m.AcceptProbability([]string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewRat(int64(accepts), int64(total)); p.Cmp(want) != 0 {
		t.Fatalf("Pr = %v, counted %d/%d", p, accepts, total)
	}
}

func TestSkeletonShape(t *testing.T) {
	m := ScanAcceptNLM(3)
	run, err := m.RunDeterministic([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	sk := run.Skeleton
	if len(sk.Views) != run.Steps+1 {
		t.Fatalf("views = %d, steps = %d", len(sk.Views), run.Steps)
	}
	if len(sk.Moves) != run.Steps {
		t.Fatalf("moves = %d, steps = %d", len(sk.Moves), run.Steps)
	}
	if sk.Views[0] == nil {
		t.Fatal("initial view missing")
	}
	// Index strings must contain positions, not values.
	if !strings.Contains(sk.Views[0].Inds[0], "i0") {
		t.Fatalf("initial ind = %q", sk.Views[0].Inds[0])
	}
	if strings.Contains(sk.Views[0].Inds[0], "a") {
		t.Fatalf("skeleton leaks input value: %q", sk.Views[0].Inds[0])
	}
}

func TestSkeletonWildcardOnStateOnlySteps(t *testing.T) {
	m := GuessNLM(2, 2)
	run, err := m.RunWithChoices([]string{"v"}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(run.Skeleton.Views); i++ {
		if run.Skeleton.Views[i] != nil {
			t.Fatalf("view %d recorded despite no movement", i)
		}
	}
}

// Skeletons depend on input positions, not input values: runs of the
// same machine on different inputs have equal skeletons when the
// machine's control flow is input-independent.
func TestSkeletonInputValueIndependence(t *testing.T) {
	m := CopyReverseCompareNLM(3)
	r1, err := m.RunDeterministic([]string{"a", "b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.RunDeterministic([]string{"x", "y", "z", "p", "q", "r"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Skeleton.Key() != r2.Skeleton.Key() {
		t.Fatal("skeletons differ across input values")
	}
}

// The copy-reverse machine pairs second-half position m+i with
// first-half position m−1−i: the merge-lemma information-flow
// pattern.
func TestCopyReverseComparedPairs(t *testing.T) {
	const m = 3
	mc := CopyReverseCompareNLM(m)
	run, err := mc.RunDeterministic([]string{"a", "b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Accepted {
		t.Fatal("rejected")
	}
	sk := run.Skeleton
	for i := 0; i < m; i++ {
		lo, hi := m-1-i, m+i
		if lo > hi {
			lo, hi = hi, lo
		}
		if !sk.Compared(lo, hi) {
			t.Fatalf("pair (%d, %d) not compared; pairs: %v", lo, hi, sk.ComparedPairs())
		}
	}
	// The identity pairing (i, m+i) must NOT be compared for i with
	// m−1−i ≠ i (the machine reversed the first half).
	if sk.Compared(0, m) && m > 1 {
		t.Fatalf("pair (0, %d) compared; the reversal should prevent it", m)
	}
}

func TestComparedPairsSymmetricAndIrreflexive(t *testing.T) {
	mc := CopyReverseCompareNLM(2)
	run, err := mc.RunDeterministic([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	for pair := range run.Skeleton.ComparedPairs() {
		if pair[0] >= pair[1] {
			t.Fatalf("non-canonical pair %v", pair)
		}
	}
}

func TestRunDeterministicRejectsNondeterministic(t *testing.T) {
	m := GuessNLM(1, 2)
	if _, err := m.RunDeterministic([]string{"v"}); err == nil {
		t.Fatal("nondeterministic machine ran as deterministic")
	}
}

func TestStepLimit(t *testing.T) {
	m := &NLM{
		Name: "loop", T: 1, M: 1, Choices: 1, MaxSteps: 5,
		Start: "s", Final: map[string]bool{}, Accept: map[string]bool{},
		Alpha: func(state string, heads []Cell, choice int) (string, []Movement) {
			return "s", []Movement{{Dir: +1, Move: false}}
		},
	}
	if _, err := m.RunWithChoices([]string{"v"}, nil); err == nil {
		t.Fatal("infinite run not caught")
	}
	if _, err := m.AcceptProbability([]string{"v"}); err == nil {
		t.Fatal("infinite run not caught by AcceptProbability")
	}
}

// Lemma 30(a): total list length never exceeds (t+1)^r · m for runs
// observed on the sample machines.
func TestTotalListLengthBound(t *testing.T) {
	const m = 4
	mc := CopyReverseCompareNLM(m)
	run, err := mc.RunDeterministic([]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	if err != nil {
		t.Fatal(err)
	}
	r := run.Scans()
	bound := 1
	for i := 0; i < r; i++ {
		bound *= mc.T + 1
	}
	bound *= 2 * m
	if got := run.Final.TotalListLength(); got > bound {
		t.Fatalf("total list length %d > Lemma 30 bound %d", got, bound)
	}
}

// Lemma 30(b): cell size stays within 11·max(t,2)^r.
func TestCellSizeBound(t *testing.T) {
	mc := CopyReverseCompareNLM(3)
	run, err := mc.RunDeterministic([]string{"a", "b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	r := run.Scans()
	base := mc.T
	if base < 2 {
		base = 2
	}
	bound := 11
	for i := 0; i < r; i++ {
		bound *= base
	}
	if got := run.Final.CellSize(); got > bound {
		t.Fatalf("cell size %d > Lemma 30 bound %d", got, bound)
	}
}

func TestConfigKeyDistinguishesDirections(t *testing.T) {
	m := ScanAcceptNLM(2)
	a, _ := m.NewConfig([]string{"x", "y"})
	b, _ := m.NewConfig([]string{"x", "y"})
	b.Dir[0] = -1
	if a.Key() == b.Key() {
		t.Fatal("direction not part of the key")
	}
}

func TestCellHelpers(t *testing.T) {
	cell := Cell{
		{Kind: KState, State: "q"},
		{Kind: KOpen},
		{Kind: KInput, Val: "101", Input: 4},
		{Kind: KInput, Val: "000", Input: 4},
		{Kind: KClose},
		{Kind: KChoice, Choice: 7},
	}
	if got := cell.String(); got != "q⟨101000⟩c7" {
		t.Fatalf("String = %q", got)
	}
	if got := cell.Ind(); got != "q⟨i4i4⟩?" {
		t.Fatalf("Ind = %q", got)
	}
	if ps := cell.InputPositions(); len(ps) != 1 || ps[0] != 4 {
		t.Fatalf("InputPositions = %v", ps)
	}
	if oc := cell.InputOccurrences(); len(oc) != 2 {
		t.Fatalf("InputOccurrences = %v", oc)
	}
}
