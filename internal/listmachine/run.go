package listmachine

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"
)

// LocalView is lv(γ) of Definition 27 with values already reduced to
// index strings: the state, head directions, and ind(x_head) per list.
// Positions is the set of input positions occurring in the viewed
// cells — the raw data of the compared-positions census.
type LocalView struct {
	State     string
	Dir       []int8
	Inds      []string
	Positions []int
}

// Key canonically serializes the view.
func (v *LocalView) Key() string {
	var b strings.Builder
	n := len(v.State)
	for i := range v.Inds {
		n += len(v.Inds[i]) + 5
	}
	b.Grow(n)
	b.WriteString(v.State)
	for i := range v.Inds {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(v.Dir[i])))
		b.WriteByte(':')
		b.WriteString(v.Inds[i])
	}
	return b.String()
}

// Skeleton is skel(ρ) of Definition 28: the sequence of local-view
// skeletons (nil entries encode the wildcard "?") and the cell
// movements of every step.
type Skeleton struct {
	Views []*LocalView // Views[0] = skel(lv(ρ1)); nil = "?"
	Moves [][]int8
}

// Key canonically serializes the skeleton, so runs with equal
// skeletons compare equal as strings (used by the Lemma 21 pigeonhole
// experiments).
func (s *Skeleton) Key() string {
	var b strings.Builder
	for _, v := range s.Views {
		if v == nil {
			b.WriteString("?")
		} else {
			b.WriteString(v.Key())
		}
		b.WriteByte('\n')
	}
	b.WriteString("moves:")
	for _, mv := range s.Moves {
		for _, d := range mv {
			b.WriteString(strconv.Itoa(int(d)))
		}
		b.WriteByte(',')
	}
	return b.String()
}

// Compared reports whether input positions i and j are compared in
// the skeleton (Definition 33): some recorded local view contains
// both.
func (s *Skeleton) Compared(i, j int) bool {
	for _, v := range s.Views {
		if v == nil {
			continue
		}
		hasI, hasJ := false, false
		for _, p := range v.Positions {
			if p == i {
				hasI = true
			}
			if p == j {
				hasJ = true
			}
		}
		if hasI && hasJ {
			return true
		}
	}
	return false
}

// ComparedPairs returns all unordered position pairs compared in the
// skeleton.
func (s *Skeleton) ComparedPairs() map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, v := range s.Views {
		if v == nil {
			continue
		}
		ps := v.Positions
		for a := 0; a < len(ps); a++ {
			for b := a + 1; b < len(ps); b++ {
				i, j := ps[a], ps[b]
				if i > j {
					i, j = j, i
				}
				if i != j {
					out[[2]int{i, j}] = true
				}
			}
		}
	}
	return out
}

// localView extracts the skeleton view of a configuration.
func localView(c *Config) *LocalView {
	v := &LocalView{
		State: c.State,
		Dir:   append([]int8(nil), c.Dir...),
		Inds:  make([]string, 0, len(c.Lists)),
	}
	// The handful of viewed positions is deduplicated with a linear
	// scan: cheaper than a per-step map for the small views that occur
	// in practice.
	for i := range c.Lists {
		cell := c.Lists[i][c.Pos[i]]
		v.Inds = append(v.Inds, cell.Ind())
	cellPositions:
		for _, p := range cell.InputPositions() {
			for _, q := range v.Positions {
				if q == p {
					continue cellPositions
				}
			}
			v.Positions = append(v.Positions, p)
		}
	}
	return v
}

// Run is a complete run of an NLM with its instrumentation.
type Run struct {
	Accepted bool
	Steps    int
	Rev      []int // direction changes per list
	Skeleton *Skeleton
	Final    *Config
}

// Scans returns 1 + Σ reversals, the (r, t)-boundedness measure of
// Definition 14's rev convention.
func (r *Run) Scans() int {
	s := 1
	for _, v := range r.Rev {
		s += v
	}
	return s
}

// RunWithChoices executes the machine on the input resolving the
// nondeterministic choice of step i as choices[i] mod |C| (0 beyond
// the end of the slice) — the ρ_M(v, c) of Definition 15.
func (m *NLM) RunWithChoices(input []string, choices []int) (*Run, error) {
	c, err := m.NewConfig(input)
	if err != nil {
		return nil, err
	}
	run := &Run{
		Rev:      make([]int, m.T),
		Skeleton: &Skeleton{Views: []*LocalView{localView(c)}},
	}
	for step := 0; ; step++ {
		if m.IsFinal(c) {
			run.Accepted = m.IsAccepting(c)
			run.Steps = step
			run.Final = c
			return run, nil
		}
		if step >= m.MaxSteps {
			return nil, fmt.Errorf("%w after %d steps", ErrStepLimit, step)
		}
		choice := 0
		if step < len(choices) {
			choice = choices[step] % m.Choices
			if choice < 0 {
				choice += m.Choices
			}
		}
		res, err := m.Step(c, choice)
		if err != nil {
			return nil, err
		}
		for i := 0; i < m.T; i++ {
			if res.Next.Dir[i] != c.Dir[i] {
				run.Rev[i]++
			}
		}
		run.Skeleton.Moves = append(run.Skeleton.Moves, res.Delta)
		moved := false
		for _, d := range res.Delta {
			if d != 0 {
				moved = true
			}
		}
		if moved {
			run.Skeleton.Views = append(run.Skeleton.Views, localView(res.Next))
		} else {
			run.Skeleton.Views = append(run.Skeleton.Views, nil)
		}
		c = res.Next
	}
}

// RunDeterministic runs a deterministic machine (|C| = 1).
func (m *NLM) RunDeterministic(input []string) (*Run, error) {
	if !m.Deterministic() {
		return nil, fmt.Errorf("listmachine: %q is not deterministic (|C| = %d)", m.Name, m.Choices)
	}
	return m.RunWithChoices(input, nil)
}

// AcceptProbability computes Pr[M accepts input] exactly by memoized
// run-tree exploration: each step draws the choice uniformly from C
// (Lemma 25).
func (m *NLM) AcceptProbability(input []string) (*big.Rat, error) {
	memo := map[string]*big.Rat{}
	onPath := map[string]bool{}
	var visit func(c *Config, depth int) (*big.Rat, error)
	visit = func(c *Config, depth int) (*big.Rat, error) {
		if m.IsFinal(c) {
			if m.IsAccepting(c) {
				return big.NewRat(1, 1), nil
			}
			return new(big.Rat), nil
		}
		if depth > m.MaxSteps {
			return nil, fmt.Errorf("%w at depth %d", ErrStepLimit, depth)
		}
		key := c.Key()
		if p, ok := memo[key]; ok {
			return p, nil
		}
		if onPath[key] {
			return nil, fmt.Errorf("listmachine: infinite run at state %q", c.State)
		}
		onPath[key] = true
		defer delete(onPath, key)
		total := new(big.Rat)
		for choice := 0; choice < m.Choices; choice++ {
			res, err := m.Step(c, choice)
			if err != nil {
				return nil, err
			}
			p, err := visit(res.Next, depth+1)
			if err != nil {
				return nil, err
			}
			total.Add(total, p)
		}
		total.Quo(total, new(big.Rat).SetInt64(int64(m.Choices)))
		memo[key] = total
		return total, nil
	}
	c, err := m.NewConfig(input)
	if err != nil {
		return nil, err
	}
	return visit(c, 0)
}

// TotalListLength returns the total list length of a configuration
// (Lemma 30(a)).
func (c *Config) TotalListLength() int {
	n := 0
	for _, l := range c.Lists {
		n += len(l)
	}
	return n
}

// CellSize returns the maximum cell length of a configuration
// (Lemma 30(b)).
func (c *Config) CellSize() int {
	s := 0
	for _, l := range c.Lists {
		for _, cell := range l {
			if len(cell) > s {
				s = len(cell)
			}
		}
	}
	return s
}
