// Package memory meters the internal-memory usage of an ST-model
// computation.
//
// In the model of Grohe, Hernich and Schweikardt, internal memory
// tapes may be accessed freely but their total size is bounded by
// s(N). Algorithms in this repository account for every variable that
// conceptually lives in internal memory by registering it with a
// Meter. The meter tracks current and peak usage in bits and can
// enforce a budget.
package memory

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// ErrBudget is returned (wrapped) when an allocation would exceed the
// configured budget.
var ErrBudget = errors.New("memory: internal-memory budget exhausted")

// Meter tracks internal-memory usage in bits. The zero value is an
// unlimited meter ready for use.
type Meter struct {
	regions   map[string]*int64 // bits per named region
	current   int64
	peak      int64
	budget    int64
	hasBudget bool
}

// NewMeter returns an unlimited meter.
func NewMeter() *Meter { return &Meter{} }

// SetBudget limits the total internal-memory size in bits. A negative
// budget means unlimited.
func (m *Meter) SetBudget(bits int64) {
	m.budget = bits
	m.hasBudget = bits >= 0
}

// Budget returns the configured budget in bits and whether one is set.
func (m *Meter) Budget() (int64, bool) { return m.budget, m.hasBudget }

// Set declares that the named region currently occupies the given
// number of bits, replacing any previous size for that region. It
// returns an error wrapping ErrBudget if the new total would exceed
// the budget; in that case usage is left unchanged.
func (m *Meter) Set(region string, sizeBits int64) error {
	if sizeBits < 0 {
		return fmt.Errorf("memory: negative size %d for region %q", sizeBits, region)
	}
	if m.regions == nil {
		m.regions = make(map[string]*int64)
	}
	if e, ok := m.regions[region]; ok {
		return m.setEntry(region, e, sizeBits)
	}
	// A refused allocation must not create the region.
	next := m.current + sizeBits
	if m.hasBudget && next > m.budget {
		return fmt.Errorf("%w: region %q would raise usage to %d bits (budget %d)",
			ErrBudget, region, next, m.budget)
	}
	e := new(int64)
	*e = sizeBits
	m.regions[region] = e
	m.current = next
	if m.current > m.peak {
		m.peak = m.current
	}
	return nil
}

func (m *Meter) setEntry(region string, e *int64, sizeBits int64) error {
	next := m.current - *e + sizeBits
	if m.hasBudget && next > m.budget {
		return fmt.Errorf("%w: region %q would raise usage to %d bits (budget %d)",
			ErrBudget, region, next, m.budget)
	}
	*e = sizeBits
	m.current = next
	if m.current > m.peak {
		m.peak = m.current
	}
	return nil
}

// A Register is a map-lookup-free handle to a single meter region, for
// hot loops that re-charge a machine register on every input symbol.
// It shares the meter's current/peak/budget accounting exactly: the
// region is created by the first successful Set (a refused allocation
// does not create it, matching Meter.Set), and a handle whose region
// was freed with Meter.Free transparently re-registers on its next
// use.
type Register struct {
	m      *Meter
	region string
	size   *int64 // nil until the region exists
}

// Register returns a handle to the named region.
func (m *Meter) Register(region string) *Register {
	r := &Register{m: m, region: region}
	if m.regions != nil {
		if e, ok := m.regions[region]; ok {
			r.size = e
		}
	}
	return r
}

// Set declares the region's current size in bits, like Meter.Set but
// without the per-call map lookup once the region exists.
func (r *Register) Set(sizeBits int64) error {
	if sizeBits < 0 {
		return fmt.Errorf("memory: negative size %d for region %q", sizeBits, r.region)
	}
	if r.size == nil || *r.size == freedSentinel {
		if err := r.m.Set(r.region, sizeBits); err != nil {
			return err
		}
		r.size = r.m.regions[r.region]
		return nil
	}
	return r.m.setEntry(r.region, r.size, sizeBits)
}

// SetInt declares that the region holds the nonnegative integer v,
// charging the length of its binary representation (at least one bit).
func (r *Register) SetInt(v uint64) error {
	return r.Set(int64(max(1, bits.Len64(v))))
}

// SetInt declares that the named region holds the nonnegative integer
// v, charging the length of its binary representation (at least one
// bit).
func (m *Meter) SetInt(region string, v uint64) error {
	return m.Set(region, int64(max(1, bits.Len64(v))))
}

// Grow increases the named region by delta bits. Like Set, it rejects
// a negative resulting size, and a refused allocation must not create
// the region.
func (m *Meter) Grow(region string, delta int64) error {
	if m.regions != nil {
		if e, ok := m.regions[region]; ok {
			next := *e + delta
			if next < 0 {
				return fmt.Errorf("memory: negative size %d for region %q", next, region)
			}
			return m.setEntry(region, e, next)
		}
	}
	return m.Set(region, delta)
}

// freedSentinel marks a region slot released by Free or Reset, so a
// stale Register handle re-registers instead of writing through the
// orphaned slot and corrupting the accounting.
const freedSentinel = -1

// Free releases the named region. Register handles to it re-register
// themselves on their next use.
func (m *Meter) Free(region string) {
	if m.regions == nil {
		return
	}
	e, ok := m.regions[region]
	if !ok {
		return
	}
	delete(m.regions, region)
	m.current -= *e
	*e = freedSentinel
}

// Current returns the current usage in bits.
func (m *Meter) Current() int64 { return m.current }

// Peak returns the peak usage in bits.
func (m *Meter) Peak() int64 { return m.peak }

// Region returns the current size of the named region in bits.
func (m *Meter) Region(region string) int64 {
	if m.regions == nil {
		return 0
	}
	if e, ok := m.regions[region]; ok {
		return *e
	}
	return 0
}

// Regions returns the names of all live regions in sorted order.
func (m *Meter) Regions() []string {
	names := make([]string, 0, len(m.regions))
	for name := range m.regions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reset clears all regions and counters, keeping the budget.
func (m *Meter) Reset() {
	for _, e := range m.regions {
		*e = freedSentinel
	}
	m.regions = nil
	m.current = 0
	m.peak = 0
}

// String returns a short diagnostic description.
func (m *Meter) String() string {
	return fmt.Sprintf("memory: current=%d bits, peak=%d bits, regions=%d",
		m.current, m.peak, len(m.regions))
}
