package memory

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestZeroValueUnlimited(t *testing.T) {
	var m Meter
	if err := m.Set("a", 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Current() != 1_000_000 {
		t.Fatalf("Current = %d", m.Current())
	}
}

func TestPeakTracksMaximum(t *testing.T) {
	m := NewMeter()
	if err := m.Set("a", 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b", 50); err != nil {
		t.Fatal(err)
	}
	m.Free("a")
	if err := m.Set("c", 10); err != nil {
		t.Fatal(err)
	}
	if m.Current() != 60 {
		t.Fatalf("Current = %d, want 60", m.Current())
	}
	if m.Peak() != 150 {
		t.Fatalf("Peak = %d, want 150", m.Peak())
	}
}

func TestSetReplaces(t *testing.T) {
	m := NewMeter()
	if err := m.Set("a", 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("a", 40); err != nil {
		t.Fatal(err)
	}
	if m.Current() != 40 {
		t.Fatalf("Current = %d, want 40", m.Current())
	}
}

func TestBudgetEnforced(t *testing.T) {
	m := NewMeter()
	m.SetBudget(64)
	if err := m.Set("a", 64); err != nil {
		t.Fatal(err)
	}
	err := m.Set("b", 1)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// Refused allocation must not change usage.
	if m.Current() != 64 {
		t.Fatalf("Current = %d, want 64", m.Current())
	}
	if m.Region("b") != 0 {
		t.Fatal("region b should not exist after refusal")
	}
}

func TestBudgetReplacementWithinBudget(t *testing.T) {
	m := NewMeter()
	m.SetBudget(100)
	if err := m.Set("a", 90); err != nil {
		t.Fatal(err)
	}
	// Shrinking a and growing b in one replacement must work.
	if err := m.Set("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b", 90); err != nil {
		t.Fatal(err)
	}
}

func TestSetIntChargesBitLength(t *testing.T) {
	m := NewMeter()
	if err := m.SetInt("v", 0); err != nil {
		t.Fatal(err)
	}
	if m.Region("v") != 1 {
		t.Fatalf("bits(0) = %d, want 1", m.Region("v"))
	}
	if err := m.SetInt("v", 255); err != nil {
		t.Fatal(err)
	}
	if m.Region("v") != 8 {
		t.Fatalf("bits(255) = %d, want 8", m.Region("v"))
	}
	if err := m.SetInt("v", 256); err != nil {
		t.Fatal(err)
	}
	if m.Region("v") != 9 {
		t.Fatalf("bits(256) = %d, want 9", m.Region("v"))
	}
}

func TestGrow(t *testing.T) {
	m := NewMeter()
	if err := m.Grow("buf", 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Grow("buf", 8); err != nil {
		t.Fatal(err)
	}
	if m.Region("buf") != 16 {
		t.Fatalf("Region = %d, want 16", m.Region("buf"))
	}
}

func TestGrowRefusalDoesNotCreateRegion(t *testing.T) {
	m := NewMeter()
	m.SetBudget(4)
	if err := m.Grow("r", 100); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if got := m.Regions(); len(got) != 0 {
		t.Fatalf("refused Grow left regions %v", got)
	}
}

func TestGrowNegativeResultRejected(t *testing.T) {
	m := NewMeter()
	if err := m.Set("r", 4); err != nil {
		t.Fatal(err)
	}
	if err := m.Grow("r", -10); err == nil {
		t.Fatal("negative resulting size accepted")
	}
	if m.Region("r") != 4 || m.Current() != 4 {
		t.Fatalf("refused Grow changed state: Region = %d, Current = %d", m.Region("r"), m.Current())
	}
}

func TestRegisterRefusalDoesNotCreateRegion(t *testing.T) {
	m := NewMeter()
	m.SetBudget(4)
	r := m.Register("v")
	if err := r.Set(100); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if got := m.Regions(); len(got) != 0 {
		t.Fatalf("refused Register.Set left regions %v", got)
	}
	// A later in-budget charge creates the region normally.
	if err := r.SetInt(7); err != nil {
		t.Fatal(err)
	}
	if m.Region("v") != 3 {
		t.Fatalf("Region = %d, want 3", m.Region("v"))
	}
}

func TestRegisterSurvivesFree(t *testing.T) {
	m := NewMeter()
	r := m.Register("v")
	if err := r.Set(8); err != nil {
		t.Fatal(err)
	}
	m.Free("v")
	if m.Current() != 0 {
		t.Fatalf("Current = %d after Free, want 0", m.Current())
	}
	// The stale handle must re-register, not write through the freed
	// slot.
	if err := r.Set(3); err != nil {
		t.Fatal(err)
	}
	if m.Current() != 3 || m.Region("v") != 3 {
		t.Fatalf("Current = %d, Region = %d, want 3/3", m.Current(), m.Region("v"))
	}
	m.Free("v")
	if m.Current() != 0 {
		t.Fatalf("Current = %d after second Free, want 0", m.Current())
	}
}

func TestRegisterSharesAccounting(t *testing.T) {
	m := NewMeter()
	m.SetBudget(8)
	r := m.Register("v")
	if err := r.SetInt(255); err != nil {
		t.Fatal(err)
	}
	if m.Region("v") != 8 || m.Current() != 8 {
		t.Fatalf("Region = %d, Current = %d, want 8/8", m.Region("v"), m.Current())
	}
	if err := r.SetInt(256); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// A refused Set through the handle must leave usage unchanged.
	if m.Current() != 8 || m.Peak() != 8 {
		t.Fatalf("Current = %d, Peak = %d, want 8/8", m.Current(), m.Peak())
	}
	m.Free("v")
	if m.Current() != 0 {
		t.Fatalf("Current = %d after Free, want 0", m.Current())
	}
}

func TestFreeUnknownRegionIsNoop(t *testing.T) {
	m := NewMeter()
	m.Free("nope")
	if m.Current() != 0 {
		t.Fatal("Free of unknown region changed usage")
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	m := NewMeter()
	if err := m.Set("a", -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestRegionsSorted(t *testing.T) {
	m := NewMeter()
	for _, name := range []string{"z", "a", "m"} {
		if err := m.Set(name, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Regions()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Regions = %v, want %v", got, want)
		}
	}
}

func TestReset(t *testing.T) {
	m := NewMeter()
	m.SetBudget(10)
	if err := m.Set("a", 5); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Current() != 0 || m.Peak() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if b, ok := m.Budget(); !ok || b != 10 {
		t.Fatal("Reset cleared the budget")
	}
}

// Property: current usage always equals the sum of region sizes, and
// peak is monotone.
func TestQuickInvariants(t *testing.T) {
	type op struct {
		Name byte
		Size uint16
	}
	f := func(ops []op) bool {
		m := NewMeter()
		peak := int64(0)
		sizes := map[string]int64{}
		for _, o := range ops {
			name := string('a' + o.Name%4)
			if o.Size%5 == 0 {
				m.Free(name)
				delete(sizes, name)
			} else {
				if err := m.Set(name, int64(o.Size)); err != nil {
					return false
				}
				sizes[name] = int64(o.Size)
			}
			var sum int64
			for _, v := range sizes {
				sum += v
			}
			if m.Current() != sum {
				return false
			}
			if m.Peak() < peak {
				return false
			}
			peak = m.Peak()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	m := NewMeter()
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}
