package transport

// serve.go is the worker side of the TCP transport: a listener that
// accepts connections and runs one job per connection through the same
// job runners the pipe worker uses (worker.go). The handshake contract
// is strict and symmetric — each end sends its Hello (protocol
// version, workload-registry fingerprint) and validates the peer's
// before any job frame crosses; a mismatched build is rejected with a
// typed *HandshakeError instead of being allowed to exchange gob
// garbage. Termination orders inside a job (WorkerFault) execute as
// connection death here, not process death: one serve process hosts
// many connections — possibly inside the coordinator's own process
// (LocalWorkers) — so a chaos order may kill only the connection it
// rode in on.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"extmem/internal/trials"
)

// handshakeTimeout bounds the handshake exchange on the serve side, so
// a connection that never speaks cannot pin a handler goroutine
// forever. Once the job frame arrives the deadline is lifted — jobs
// may legitimately run long, and the coordinator owns the attempt
// deadline.
const handshakeTimeout = 10 * time.Second

// Serve accepts connections on ln and serves one job per connection
// until ctx is cancelled, then closes the listener and every live
// connection and waits for in-flight handlers to drain. A nil stderr
// means os.Stderr. The error is nil on a cancellation-triggered
// shutdown.
func Serve(ctx context.Context, ln net.Listener, stderr io.Writer) error {
	if stderr == nil {
		stderr = os.Stderr
	}
	var (
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
		wg    sync.WaitGroup
	)
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
	})
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
				conn.Close()
			}()
			handleConn(conn, stderr)
		}()
	}
}

// handleConn runs one connection: handshake, one job, reply stream.
func handleConn(conn net.Conn, stderr io.Writer) {
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	br := bufio.NewReader(conn)
	var hello Hello
	if err := readFrame(br, &hello); err != nil {
		fmt.Fprintln(stderr, "stworker: reading handshake:", err)
		return
	}
	// Reply with this build's identity before judging the peer's: the
	// coordinator runs the same comparison on its side, so whichever
	// end is told first, the verdict is symmetric.
	if err := writeFrame(conn, Hello{Version: ProtocolVersion, Fingerprint: trials.RegistryFingerprint()}); err != nil {
		fmt.Fprintln(stderr, "stworker: sending handshake:", err)
		return
	}
	if err := checkHello(hello); err != nil {
		fmt.Fprintln(stderr, "stworker: rejecting connection:", err)
		return
	}
	var job Job
	if err := readFrame(br, &job); err != nil {
		fmt.Fprintln(stderr, "stworker: reading job:", err)
		return
	}
	conn.SetDeadline(time.Time{})
	out := bufio.NewWriter(conn)
	send := func(rep Reply) error {
		if err := writeFrame(out, rep); err != nil {
			return err
		}
		return out.Flush()
	}
	corrupt := func() {
		out.Write([]byte{0xff, 0xff, 0xff, 0xff})
		out.Flush()
	}
	// Termination orders are connection death here: the peer sees the
	// reset mid-stream, the serve loop lives on to take the retry.
	die := func(*WorkerFault) { conn.Close() }
	serveJob(job, send, corrupt, die, stderr)
}

// ListenAndServe listens on addr and serves shard jobs until ctx is
// cancelled. The bound address is announced on stderr ("listening on
// host:port") so a caller that asked for port 0 — or a script waiting
// for worker readiness — can read it off.
func ListenAndServe(ctx context.Context, addr string, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if stderr != nil {
		fmt.Fprintf(stderr, "stworker: listening on %s\n", ln.Addr())
	}
	return Serve(ctx, ln, stderr)
}

// ServeMain is the TCP worker entry point of a hosting binary
// (`stbench -serve addr`, `stworker -listen addr`, or the EnvListen
// marker): serve shard jobs until the process is interrupted or
// terminated, then drain and exit. Returns the process exit code.
func ServeMain(addr string, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := ListenAndServe(ctx, addr, stderr); err != nil {
		fmt.Fprintln(stderr, "stworker:", err)
		return 1
	}
	return 0
}

// LocalWorkers starts n loopback TCP workers served from goroutines
// inside this process and returns a transport dialing them plus a stop
// function that shuts the listeners down and drains in-flight
// handlers. It powers the self-hosted tcp sweeps of the experiments
// and tests: the handlers run the same serve loop a remote stworker
// would, so every shard attempt still crosses a real TCP connection,
// handshake and framing included — only process isolation is mocked
// out, and the failure-matrix tests cover that separately with spawned
// worker processes.
func LocalWorkers(n int) (*TCP, func(), error) {
	ctx, cancel := context.WithCancel(context.Background())
	var (
		addrs []string
		lns   []net.Listener
		wg    sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cancel()
			for _, l := range lns {
				l.Close()
			}
			return nil, nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
		wg.Add(1)
		go func() {
			defer wg.Done()
			Serve(ctx, ln, io.Discard)
		}()
	}
	stop := func() {
		cancel()
		wg.Wait()
	}
	return &TCP{Workers: addrs}, stop, nil
}
