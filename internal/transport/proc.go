package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/relalg"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// Proc is the process-boundary shard transport: every shard attempt it
// executes spawns one worker process (by default this executable
// re-run in worker mode), ships the assignment as a job frame over
// stdin, and streams the replies back over stdout. The zero value is
// ready to use. A Proc carries no per-run state — one value can serve
// any number of concurrent fleets and sorts.
type Proc struct {
	// Command, when non-nil, builds the worker command (the test seam;
	// also the hook a future multi-host rung would use to put ssh or a
	// container runtime here). nil self-executes os.Executable() with
	// the hidden stworker subcommand and the EnvWorker marker set. The
	// command's stdin/stdout are owned by the transport; the context
	// must bound the process (exec.CommandContext).
	Command func(ctx context.Context) (*exec.Cmd, error)

	// Deadline bounds one attempt's wall clock, job write to Done
	// frame; 0 means unbounded. A worker that outlives it is killed and
	// the attempt fails like any other worker death — onto the retry →
	// fallback path.
	Deadline time.Duration

	// Fault, when non-nil, is consulted per (shard, attempt) and ships
	// the returned order inside the job frame — deterministic real-
	// process chaos, the transport twin of shard.Sort.Inject. nil
	// orders leave the worker healthy.
	Fault func(shard, attempt int) *WorkerFault

	// Stderr receives the workers' stderr; nil means os.Stderr.
	Stderr io.Writer
}

// WorkerError is a failed worker attempt: the process died (exit,
// signal, deadline), its stream ended early, or it sent a malformed or
// out-of-order frame. It carries the shard.Fault marker, so the fleet
// and sort retry machinery treats a dead process exactly like a
// recovered in-process panic: burn an attempt, back off, retry, and
// degrade to the coordinator's own execution when the budget runs out.
type WorkerError struct {
	Shard   int   // the shard whose attempt failed
	Attempt int   // 1-based attempt number
	Err     error // what went wrong
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("transport: shard %d worker (attempt %d): %v", e.Shard, e.Attempt, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// ShardFault marks the dead worker as a recoverable shard attempt
// failure (see shard.Fault).
func (e *WorkerError) ShardFault() {}

func (p *Proc) stderr() io.Writer {
	if p.Stderr != nil {
		return p.Stderr
	}
	return os.Stderr
}

func (p *Proc) command(ctx context.Context) (*exec.Cmd, error) {
	if p.Command != nil {
		return p.Command(ctx)
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, exe, WorkerArg)
	// Race-built workers (go test -race spawning its own test binary)
	// would otherwise sleep the detector's default atexit_sleep_ms=1s
	// on every exit — a 50× wall-clock tax on short-lived shard
	// workers. Races in worker code are still caught while it runs,
	// and every proc path has an in-process twin under default
	// settings. A non-race binary ignores GORACE entirely.
	gorace := os.Getenv("GORACE")
	if gorace != "" {
		gorace += ","
	}
	cmd.Env = append(os.Environ(), EnvWorker+"=1", "GORACE="+gorace+"atexit_sleep_ms=0")
	return cmd, nil
}

// runJob spawns one worker for one job, feeds each streamed row to
// onRow (trial jobs), and returns the worker's Done report after a
// clean exit. Any other outcome — spawn failure, dead process, early
// EOF, malformed frame, nonzero exit, deadline — is returned as a
// plain error for the caller to wrap in a WorkerError.
func (p *Proc) runJob(ctx context.Context, job Job, onRow func(trials.Result) error) (*Done, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if p.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	cmd, err := p.command(ctx)
	if err != nil {
		return nil, fmt.Errorf("building worker command: %w", err)
	}
	cmd.Stderr = p.stderr()
	// A killed worker must never wedge the coordinator in Wait.
	cmd.WaitDelay = 5 * time.Second
	isolateWorker(cmd)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawning worker: %w", err)
	}
	// fail reaps the worker on every error path: cancel kills a process
	// that is still alive (CommandContext), Wait collects it.
	fail := func(cause error) (*Done, error) {
		cancel()
		stdin.Close()
		cmd.Wait()
		return nil, cause
	}
	if err := writeFrame(stdin, job); err != nil {
		return fail(fmt.Errorf("sending job: %w", err))
	}
	if err := stdin.Close(); err != nil {
		return fail(fmt.Errorf("closing job stream: %w", err))
	}
	br := bufio.NewReader(stdout)
	for {
		var rep Reply
		if err := readFrame(br, &rep); err != nil {
			return fail(fmt.Errorf("reading reply: %w", err))
		}
		switch {
		case rep.Row != nil:
			if onRow == nil {
				return fail(errors.New("unexpected row frame"))
			}
			if err := onRow(*rep.Row); err != nil {
				return fail(err)
			}
		case rep.Done != nil:
			if rep.Done.Err != "" {
				return fail(fmt.Errorf("worker reported: %s", rep.Done.Err))
			}
			if err := cmd.Wait(); err != nil {
				return nil, fmt.Errorf("worker exit after done: %w", err)
			}
			return rep.Done, nil
		default:
			return fail(errors.New("empty reply frame"))
		}
	}
}

// run adapts runJob to the shared runner seam (seams.go); a pipe
// worker is spawned per job, so the shard and attempt numbers only
// matter to the fault hook.
func (p *Proc) run(ctx context.Context, _, _ int, job Job, onRow func(trials.Result) error) (*Done, error) {
	return p.runJob(ctx, job, onRow)
}

func (p *Proc) fault(sh, attempt int) *WorkerFault {
	if p.Fault != nil {
		return p.Fault(sh, attempt)
	}
	return nil
}

// Attempt returns the shard.AttemptFunc that executes trial-range
// attempts in worker processes. A fleet whose context carries a
// trials.Workload annotation ships it — workload name and spec out,
// rows back, validated strictly in trial order; the worker re-derives
// all randomness from (seed, global index), so the rows are the ones
// the in-process engine would produce, byte for byte. A fleet with no
// annotation (a closure with no wire form, or a chaos-wrapped fleet)
// transparently runs in-process. Worker death fails the attempt with a
// WorkerError, which the fleet retries and then absorbs via its
// degraded fallback — output identical either way, only the attempt
// census moves.
func (p *Proc) Attempt() shard.AttemptFunc { return attemptFunc(p) }

// Exec returns the shard.ExecFunc that executes shard-local sort
// attempts in worker processes: the self-contained shard.SortJob goes
// out, the sorted bytes and the shard machine's exact core.Resources
// report come back. Worker death fails the attempt with a WorkerError
// and the sort's retry → coordinator-fallback path takes over.
func (p *Proc) Exec() shard.ExecFunc { return execFunc(p) }

// ExecScan returns the relalg.ScanExecFunc that executes shard-local
// operator-scan attempts (anti-merge, product) in worker processes —
// the scan-side twin of Exec, so planned queries honor `-transport
// proc` end to end instead of silently running their scans in-process.
func (p *Proc) ExecScan() relalg.ScanExecFunc { return execScanFunc(p) }

// Launch returns the trials.Launcher whose fleets run every shard
// attempt through this transport — shard.LaunchRetry with worker
// processes for shard machines. Nothing above the launcher seam
// changes: results, summary and OnResult order are byte-identical to
// the in-process fleet at any shard and worker count.
func (p *Proc) Launch(shards, parallel int, retry shard.RetryPolicy) trials.Launcher {
	return func(n int, seed int64, onResult func(trials.Result)) trials.Runner {
		return shard.Fleet{
			Plan:     shard.Plan{Shards: shards, Trials: n},
			Parallel: parallel,
			Seed:     seed,
			Retry:    retry,
			OnResult: onResult,
			Attempt:  p.Attempt(),
		}
	}
}

// LaunchSort returns the algorithms.SortLauncher that runs every sort
// through the sharded run-partitioned path with shard-local sorts in
// worker processes — shard.Sort's launcher with this transport's Exec.
func (p *Proc) LaunchSort(shards int, seed int64, retry shard.RetryPolicy, onReport func(shard.SortReport)) algorithms.SortLauncher {
	return shard.Sort{Shards: shards, Retry: retry, Exec: p.Exec()}.Launcher(seed, onReport)
}

// Launch is the package-level convenience: a default transport with no
// deadline, no chaos and no retry budget — the process-boundary twin
// of shard.Launch.
func Launch(shards, parallel int) trials.Launcher {
	return (&Proc{}).Launch(shards, parallel, shard.RetryPolicy{})
}

// LaunchSort is the package-level convenience — the process-boundary
// twin of shard.LaunchSort.
func LaunchSort(shards int, seed int64, onReport func(shard.SortReport)) algorithms.SortLauncher {
	return (&Proc{}).LaunchSort(shards, seed, shard.RetryPolicy{}, onReport)
}
