package transport_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/shard"
	"extmem/internal/transport"
	"extmem/internal/trials"
)

// TestMain routes re-executions of this test binary into the shard
// worker: the transport self-execs os.Executable(), which under
// `go test` is the test binary itself.
func TestMain(m *testing.M) {
	transport.MaybeWorker()
	os.Exit(m.Run())
}

// testInput builds a small deterministic multiset instance encoding.
func testInput() []byte {
	var b strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&b, "%08b#", (i*37)%256)
	}
	return []byte(b.String())
}

// The transport fleet must reproduce the in-process fleet exactly —
// rows, summary and the in-order OnResult stream — at every shard and
// worker count.
func TestProcFleetMatchesInprocess(t *testing.T) {
	const n = 24
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, wantSum, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 42,
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("in-process fleet: %v", err)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, parallel := range []int{1, 4} {
			var stream []int
			got, sum, err := shard.Fleet{
				Plan:     shard.Plan{Shards: shards, Trials: n},
				Parallel: parallel,
				Seed:     42,
				OnResult: func(r trials.Result) { stream = append(stream, r.Trial) },
				Attempt:  (&transport.Proc{}).Attempt(),
			}.Run(ctx, fn)
			if err != nil {
				t.Fatalf("shards=%d parallel=%d: %v", shards, parallel, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d parallel=%d: rows differ from in-process fleet", shards, parallel)
			}
			if !reflect.DeepEqual(sum, wantSum) {
				t.Errorf("shards=%d parallel=%d: summary = %+v, want %+v", shards, parallel, sum, wantSum)
			}
			for i, trial := range stream {
				if trial != i {
					t.Fatalf("shards=%d parallel=%d: OnResult[%d] = trial %d, want %d",
						shards, parallel, i, trial, i)
				}
			}
			if len(stream) != n {
				t.Errorf("shards=%d parallel=%d: streamed %d rows, want %d", shards, parallel, len(stream), n)
			}
		}
	}
}

// A fleet whose context carries no workload annotation must run
// in-process — transparently, without ever building a worker command.
func TestProcFleetFallsBackWithoutWorkload(t *testing.T) {
	const n = 12
	_, fn := algorithms.FingerprintValueWorkload(4, 10)
	want, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 7,
	}.Run(context.Background(), fn)
	if err != nil {
		t.Fatalf("in-process fleet: %v", err)
	}
	p := &transport.Proc{Command: func(context.Context) (*exec.Cmd, error) {
		t.Error("worker command built for an un-annotated fleet")
		return nil, errors.New("no workers here")
	}}
	got, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 2, Trials: n}, Parallel: 1, Seed: 7,
		Attempt: p.Attempt(),
	}.Run(context.Background(), fn)
	if err != nil {
		t.Fatalf("fallback fleet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fallback rows differ from the in-process fleet")
	}
}

// Launch is the full launcher seam: the runner it builds must match
// trials.Pool row for row.
func TestLaunchMatchesPool(t *testing.T) {
	const n = 16
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, wantSum, err := trials.Pool(1)(n, 99, nil).Run(ctx, fn)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	got, sum, err := transport.Launch(2, 2)(n, 99, nil).Run(ctx, fn)
	if err != nil {
		t.Fatalf("transport launch: %v", err)
	}
	if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(sum, wantSum) {
		t.Error("transport launcher rows differ from trials.Pool")
	}
}

// The transport sort must reproduce the in-process sharded sort — the
// bytes AND the full report, per-shard (r, s, t) census included — at
// every shard count.
func TestProcSortMatchesInprocess(t *testing.T) {
	enc := testInput()
	for _, shards := range []int{1, 2, 4} {
		cfg := shard.Sort{Shards: shards, FanIn: 2, RunMemoryBits: 128}
		want, wantRep, err := cfg.Run(context.Background(), enc, 5)
		if err != nil {
			t.Fatalf("in-process sort: %v", err)
		}
		cfg.Exec = (&transport.Proc{}).Exec()
		got, rep, err := cfg.Run(context.Background(), enc, 5)
		if err != nil {
			t.Fatalf("shards=%d: transport sort: %v", shards, err)
		}
		if string(got) != string(want) {
			t.Errorf("shards=%d: transport sort bytes differ", shards)
		}
		if !reflect.DeepEqual(rep, wantRep) {
			t.Errorf("shards=%d: transport report = %+v, want %+v", shards, rep, wantRep)
		}
	}
}

// The failure matrix: every costume of worker death — exit(1)
// mid-stream, self-SIGKILL, a garbage frame, a stall past the deadline
// — must land on the retry → fallback path and reproduce the baseline
// rows byte for byte, with the exact deterministic recovery census.
func TestWorkerDeathRecovers(t *testing.T) {
	const n = 20
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 3,
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("baseline fleet: %v", err)
	}
	cases := []struct {
		name                string
		deadline            time.Duration
		fault               func(sh, attempt int) *transport.WorkerFault
		retries, falls, rec int
	}{
		{"exit mid-stream once", 0, func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Exit: true, ExitAfter: 2}
			}
			return nil
		}, 1, 0, 1},
		{"sigkill mid-stream always", 0, func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 {
				return &transport.WorkerFault{Exit: true, ExitAfter: 1, Kill: true}
			}
			return nil
		}, 1, 1, 2},
		{"garbage frame once", 0, func(sh, attempt int) *transport.WorkerFault {
			if sh == 1 && attempt == 1 {
				return &transport.WorkerFault{Corrupt: true}
			}
			return nil
		}, 1, 0, 1},
		{"stall past the deadline once", 300 * time.Millisecond, func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Stall: 5 * time.Second}
			}
			return nil
		}, 1, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &transport.Proc{Deadline: c.deadline, Fault: c.fault}
			got, sum, err := shard.Fleet{
				Plan: shard.Plan{Shards: 2, Trials: n}, Parallel: 1, Seed: 3,
				Retry:   shard.RetryPolicy{MaxAttempts: 2},
				Attempt: p.Attempt(),
			}.Run(ctx, fn)
			if err != nil {
				t.Fatalf("fleet: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("recovered rows differ from the baseline")
			}
			if sum.Retries != c.retries || sum.Fallbacks != c.falls || sum.Recovered != c.rec {
				t.Errorf("census (retries=%d falls=%d rec=%d), want (%d %d %d)",
					sum.Retries, sum.Fallbacks, sum.Recovered, c.retries, c.falls, c.rec)
			}
			if sum.Errors != 0 {
				t.Errorf("%d error rows, want 0", sum.Errors)
			}
		})
	}
}

// Sort-side worker death: retried, then absorbed by the coordinator;
// bytes and the successful attempts' reports never move. A dead worker
// is an error, not a panic, so Recovered stays zero.
func TestSortWorkerDeathRecovers(t *testing.T) {
	enc := testInput()
	clean, cleanRep, err := shard.Sort{Shards: 2, FanIn: 2, RunMemoryBits: 128}.
		Run(context.Background(), enc, 5)
	if err != nil {
		t.Fatalf("clean sort: %v", err)
	}
	cases := []struct {
		name        string
		fault       func(sh, attempt int) *transport.WorkerFault
		extra, fall int
	}{
		{"exit once", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Exit: true}
			}
			return nil
		}, 1, 0},
		{"sigkill always", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 {
				return &transport.WorkerFault{Exit: true, Kill: true}
			}
			return nil
		}, 2, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &transport.Proc{Fault: c.fault}
			out, rep, err := shard.Sort{
				Shards: 2, FanIn: 2, RunMemoryBits: 128,
				Retry: shard.RetryPolicy{MaxAttempts: 2},
				Exec:  p.Exec(),
			}.Run(context.Background(), enc, 5)
			if err != nil {
				t.Fatalf("sort: %v", err)
			}
			if string(out) != string(clean) {
				t.Error("recovered sort bytes differ from the clean run")
			}
			if !reflect.DeepEqual(rep.Shards, cleanRep.Shards) || !reflect.DeepEqual(rep.Merge, cleanRep.Merge) {
				t.Error("successful-attempt census differs from the clean run")
			}
			if rep.Attempts != 2+c.extra || rep.Fallbacks != c.fall || rep.Recovered != 0 {
				t.Errorf("census (a=%d f=%d r=%d), want (a=%d f=%d r=0)",
					rep.Attempts, rep.Fallbacks, rep.Recovered, 2+c.extra, c.fall)
			}
		})
	}
}

// Cancelling the fleet context is not a shard fault: the dead workers
// must surface the cancellation, not a retryable WorkerError.
func TestProcCancellation(t *testing.T) {
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx, cancel := context.WithCancel(trials.WithWorkload(context.Background(), w))
	cancel()
	_, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 2, Trials: 8}, Parallel: 1, Seed: 3,
		Retry:   shard.RetryPolicy{MaxAttempts: 3},
		Attempt: (&transport.Proc{}).Attempt(),
	}.Run(ctx, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fleet error = %v, want context.Canceled", err)
	}
}

// A workload name with no registered builder fails worker-side, burns
// the retry budget, and the degraded fallback still completes the range
// in-process — convergence even for a workload that cannot cross.
func TestUnknownWorkloadFallsBack(t *testing.T) {
	const n = 8
	_, fn := algorithms.FingerprintValueWorkload(4, 10)
	want, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 11,
	}.Run(context.Background(), fn)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	ctx := trials.WithWorkload(context.Background(),
		trials.Workload{Name: "no-such-workload", Spec: []byte("x")})
	got, sum, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 11,
		Attempt: (&transport.Proc{}).Attempt(),
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fallback rows differ from the baseline")
	}
	if sum.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", sum.Fallbacks)
	}
}

// A WorkerError unwraps to its cause and carries the shard.Fault
// marker — the property that puts process death on the retry path.
func TestWorkerErrorIsShardFault(t *testing.T) {
	cause := errors.New("boom")
	werr := &transport.WorkerError{Shard: 3, Attempt: 2, Err: cause}
	var fault shard.Fault
	if !errors.As(error(werr), &fault) {
		t.Error("WorkerError does not carry the shard.Fault marker")
	}
	if !errors.Is(werr, cause) {
		t.Error("WorkerError does not unwrap to its cause")
	}
	if !strings.Contains(werr.Error(), "shard 3") || !strings.Contains(werr.Error(), "attempt 2") {
		t.Errorf("WorkerError text %q lacks shard/attempt", werr.Error())
	}
}
