//go:build unix

package transport

import (
	"os/exec"
	"syscall"
)

// isolateWorker puts the worker in its own process group, so a
// terminal-delivered SIGINT/SIGTERM reaches only the coordinator: the
// coordinator — never a half-dead worker — owns the partial-results
// footer and the 130 exit. Workers are then torn down explicitly by
// the coordinator's context (exec.CommandContext kills on cancel).
func isolateWorker(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}
