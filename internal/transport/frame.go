package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"extmem/internal/core"
	"extmem/internal/relalg"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// ProtocolVersion is the frame-protocol generation. It is the first
// field of the handshake both ends of a TCP connection exchange before
// any job frame; a mismatch is rejected with a *HandshakeError instead
// of letting two incompatible builds feed each other gob garbage. The
// pipe transport (Proc) needs no handshake — it spawns its own
// executable, so coordinator and worker are the same build by
// construction.
const ProtocolVersion = 1

// Hello is the handshake frame that opens every TCP connection, sent
// coordinator→worker and answered worker→coordinator before the job
// frame. Version pins the frame protocol; Fingerprint pins the
// workload registry (trials.RegistryFingerprint), so a worker binary
// that would rebuild a different trial function — or none — under the
// coordinator's workload name is rejected up front.
type Hello struct {
	Version     int
	Fingerprint uint64
}

// MaxFrame bounds a single frame's payload. The largest legitimate
// frame is a sort job or its reply — a shard's run-range payload —
// so the cap is generous for those and still small enough that a
// corrupted length prefix cannot make the decoder allocate the moon.
const MaxFrame = 1 << 26 // 64 MiB

// writeFrame encodes v as one length-prefixed gob frame: a 4-byte
// big-endian payload length followed by the payload. Every frame is an
// independent gob stream, so a reader can decode any frame without the
// state of the ones before it — which is what lets the coordinator
// treat a truncated or garbled frame as the death of that worker
// rather than of the whole transport. The header is reserved in the
// encode buffer and the whole frame leaves in a single Write: one
// syscall per frame on a pipe, and no header-only segment for TCP
// (without it, every frame could cost two packets under TCP_NODELAY).
func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	n := buf.Len() - 4
	if n > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(buf.Bytes()[:4], uint32(n))
	_, err := w.Write(buf.Bytes())
	return err
}

// readFrame decodes the next frame into v. A clean end of stream at a
// frame boundary returns io.EOF; a stream that dies inside a frame
// returns io.ErrUnexpectedEOF; a length prefix past MaxFrame is
// rejected before any allocation. Arbitrary input bytes yield an
// error, never a panic — the FuzzTransportFrame target enforces this.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("transport: frame length %d exceeds the %d-byte limit", n, MaxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return gob.NewDecoder(bytes.NewReader(buf)).Decode(v)
}

// Job is the single coordinator→worker frame: exactly one of Trial,
// Sort or Scan describes the shard assignment, and Fault, when
// non-nil, is a self-applied chaos order (the worker is told to die —
// real process or connection death, not a simulated panic).
type Job struct {
	Trial *TrialJob
	Sort  *shard.SortJob
	Scan  *relalg.ScanJob
	Fault *WorkerFault
}

// TrialJob assigns a contiguous global trial-index range: the worker
// rebuilds the trial function from the workload's registered builder
// and runs a shard-local trials.Engine over [Offset, Offset+Trials).
// Randomness never travels — the worker re-derives every trial's rng
// from (Seed, global index) exactly as an in-process shard would.
type TrialJob struct {
	Workload trials.Workload
	Trials   int   // range length
	Offset   int   // first global trial index of the range
	Parallel int   // worker goroutines inside the worker process
	Seed     int64 // the fleet's root seed
}

// Reply is one worker→coordinator frame: a streamed per-trial row or
// the terminal Done report. Rows arrive strictly in trial order; the
// Done frame is last.
type Reply struct {
	Row  *trials.Result
	Done *Done
}

// Done terminates a worker's reply stream. A non-empty Err means the
// job failed worker-side (the coordinator maps it onto the same
// retry → fallback path as process death); Sort carries a sort job's
// output and the shard machine's exact (r, s, t) report, Scan the
// same for an operator-scan job.
type Done struct {
	Err  string
	Sort *SortDone
	Scan *ScanDone
}

// SortDone is the result of a sort job: the sorted run-range bytes and
// the shard-local machine's resource census, crossing the process
// boundary intact.
type SortDone struct {
	Out       []byte
	Resources core.Resources
}

// ScanDone is the result of an operator-scan job (relalg.ScanJob): the
// shard's output bytes and the shard-local machine's resource census,
// which the coordinator folds into the query's relalg.ScanReport
// exactly as an in-process shard would.
type ScanDone struct {
	Out       []byte
	Resources core.Resources
}

// WorkerFault is a deterministic self-destruct order shipped inside a
// job frame — the chaos plan of the transport layer. Unlike
// faults.Plan, which simulates failure inside a live process, a
// WorkerFault makes the process itself misbehave: stall, stream
// garbage, or die mid-stream, so the coordinator's failure handling is
// exercised against the real thing. The zero value is no fault.
type WorkerFault struct {
	// Stall sleeps before the job executes — the straggler fault; pair
	// it with Proc.Deadline to exercise the deadline → retry path.
	Stall time.Duration

	// Exit terminates the worker after it has streamed ExitAfter row
	// frames (for sort jobs: before the Done frame regardless), without
	// a Done frame: the coordinator sees the stream end mid-job.
	Exit      bool
	ExitAfter int

	// Kill upgrades Exit to self-delivered SIGKILL — uncatchable, no
	// deferred cleanup, the closest a worker can get to a machine
	// failure. Honored on the pipe transport only, where the worker
	// process is the coordinator's own disposable child: a TCP serve
	// loop hosts many connections (possibly inside the coordinator's
	// test process), so its handlers execute Kill as Drop.
	Kill bool

	// Drop is the connection-level death order of the TCP transport:
	// the handler closes the connection mid-stream — after DropAfter
	// row frames (for sort and scan jobs: before the Done frame
	// regardless) — and survives to serve the next connection. The
	// coordinator sees a peer reset exactly where Exit would end a
	// pipe stream. Pipe workers execute Drop as Exit: closing their
	// only connection is process death.
	Drop      bool
	DropAfter int

	// Corrupt streams a malformed frame (an oversized length prefix)
	// instead of the first reply.
	Corrupt bool
}
