package transport

// tcp.go is the multi-host shard transport: the same length-prefixed
// gob frames the pipe transport speaks, dialed over TCP to workers
// that may live on other machines. One connection carries one job —
// handshake, job frame, reply stream — so connection lifetime equals
// attempt lifetime and every network failure mode (refused dial, peer
// reset mid-frame, a stall past the attempt deadline) maps onto
// exactly one failed attempt. Network death is process death: the
// coordinator cannot tell a crashed remote worker from a cut cable,
// and it does not need to — both surface as a *WorkerError carrying
// the shard.Fault marker, both take the retry → backoff → chaos-free
// coordinator-fallback path, and neither can move an output byte.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/relalg"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// TCP is the multi-host shard transport: every shard attempt dials one
// worker address, performs the handshake, ships the job frame and
// streams the replies back over the connection. Attempts are assigned
// to workers round-robin by shard index, and a retry moves to the next
// worker in the ring — a shard struck by one dead worker heals through
// its neighbours before the coordinator absorbs the range itself. A
// TCP value carries no per-run state — one value can serve any number
// of concurrent fleets, sorts and scans.
type TCP struct {
	// Workers are the worker addresses (host:port) the transport dials.
	// Empty means every attempt fails — and therefore every shard falls
	// back to the coordinator; validation belongs to the caller (the
	// CLIs reject an empty or malformed list with exit 2).
	Workers []string

	// Deadline bounds one attempt's wall clock — dial completion to
	// Done frame — as an absolute read/write deadline on the
	// connection; 0 means unbounded. A stalled worker or a black-holed
	// route surfaces as a timeout error on the next read or write, and
	// the attempt fails like any other worker death.
	Deadline time.Duration

	// DialTimeout bounds the dial alone; 0 means the dialer's default.
	// Connection refusal fails fast regardless — the timeout is for
	// routes that drop SYNs on the floor.
	DialTimeout time.Duration

	// Fault, when non-nil, is consulted per (shard, attempt) and ships
	// the returned order inside the job frame — deterministic chaos
	// against real connections, the TCP twin of Proc.Fault. Connection-
	// level orders (Drop, Stall) exercise the serve loop; Kill is
	// executed as Drop by serve handlers (see WorkerFault.Kill).
	Fault func(shard, attempt int) *WorkerFault
}

// ParseWorkers validates a -workers flag value: a non-empty
// comma-separated list of host:port worker addresses. It rejects the
// malformed list up front — with the offending address named — so the
// CLIs can exit 2 before any shard dials a typo.
func ParseWorkers(s string) ([]string, error) {
	if s == "" {
		return nil, errors.New("empty worker list (want host:port,...)")
	}
	addrs := strings.Split(s, ",")
	for _, a := range addrs {
		host, port, err := net.SplitHostPort(a)
		if err != nil {
			return nil, fmt.Errorf("bad worker address %q: %v", a, err)
		}
		if host == "" || port == "" {
			return nil, fmt.Errorf("worker address %q needs both a host and a port", a)
		}
	}
	return addrs, nil
}

// HandshakeError is a build mismatch discovered during the TCP
// handshake: the peer speaks another frame-protocol generation, or its
// workload registry differs from this build's, so shipped workload
// names would not rebuild the same trial functions. It is rejected
// before any job frame — a typed error instead of gob garbage — and
// still carries the shard.Fault path via the WorkerError that wraps
// it: mismatched attempts burn retries and the coordinator absorbs the
// work itself, output bytes intact.
type HandshakeError struct {
	Field string // "protocol version" or "workload registry"
	Got   uint64 // the peer's value
	Want  uint64 // this build's value
}

func (e *HandshakeError) Error() string {
	return fmt.Sprintf("transport: handshake %s mismatch: peer has %#x, this build has %#x",
		e.Field, e.Got, e.Want)
}

// checkHello validates a peer's handshake against this build — the
// same comparison on both ends of the connection.
func checkHello(h Hello) error {
	if h.Version != ProtocolVersion {
		return &HandshakeError{Field: "protocol version", Got: uint64(h.Version), Want: ProtocolVersion}
	}
	if fp := trials.RegistryFingerprint(); h.Fingerprint != fp {
		return &HandshakeError{Field: "workload registry", Got: h.Fingerprint, Want: fp}
	}
	return nil
}

// worker resolves the round-robin assignment: shard sh's first attempt
// goes to worker sh mod n, and each retry moves one step around the
// ring. Deterministic in (shard, attempt), so a fixed fault plan and a
// fixed worker list yield a fixed census.
func (p *TCP) worker(sh, attempt int) string {
	i := (sh + attempt - 1) % len(p.Workers)
	if i < 0 {
		i = 0
	}
	return p.Workers[i]
}

// run executes one job over one connection: dial, handshake, job
// frame, reply stream. Every failure — refused or timed-out dial,
// handshake mismatch, peer reset mid-frame, deadline exceeded — is
// returned as a plain error for the shared seam layer (seams.go) to
// wrap in a WorkerError.
func (p *TCP) run(ctx context.Context, sh, attempt int, job Job, onRow func(trials.Result) error) (*Done, error) {
	if len(p.Workers) == 0 {
		return nil, errors.New("no workers configured")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	addr := p.worker(sh, attempt)
	d := net.Dialer{Timeout: p.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dialing worker %s: %w", addr, err)
	}
	defer conn.Close()
	// Cancellation must interrupt a blocked read or write; closing the
	// connection is the portable way to do that.
	stopWatch := context.AfterFunc(ctx, func() { conn.Close() })
	defer stopWatch()
	if p.Deadline > 0 {
		if err := conn.SetDeadline(time.Now().Add(p.Deadline)); err != nil {
			return nil, fmt.Errorf("setting deadline for %s: %w", addr, err)
		}
	}
	if err := writeFrame(conn, Hello{Version: ProtocolVersion, Fingerprint: trials.RegistryFingerprint()}); err != nil {
		return nil, fmt.Errorf("sending handshake to %s: %w", addr, err)
	}
	br := bufio.NewReader(conn)
	var hello Hello
	if err := readFrame(br, &hello); err != nil {
		return nil, fmt.Errorf("reading handshake from %s: %w", addr, err)
	}
	if err := checkHello(hello); err != nil {
		return nil, fmt.Errorf("worker %s: %w", addr, err)
	}
	if err := writeFrame(conn, job); err != nil {
		return nil, fmt.Errorf("sending job to %s: %w", addr, err)
	}
	for {
		var rep Reply
		if err := readFrame(br, &rep); err != nil {
			return nil, fmt.Errorf("reading reply from %s: %w", addr, err)
		}
		switch {
		case rep.Row != nil:
			if onRow == nil {
				return nil, fmt.Errorf("worker %s: unexpected row frame", addr)
			}
			if err := onRow(*rep.Row); err != nil {
				return nil, err
			}
		case rep.Done != nil:
			if rep.Done.Err != "" {
				return nil, fmt.Errorf("worker %s reported: %s", addr, rep.Done.Err)
			}
			return rep.Done, nil
		default:
			return nil, fmt.Errorf("worker %s: empty reply frame", addr)
		}
	}
}

func (p *TCP) fault(sh, attempt int) *WorkerFault {
	if p.Fault != nil {
		return p.Fault(sh, attempt)
	}
	return nil
}

// Attempt returns the shard.AttemptFunc that executes trial-range
// attempts on TCP workers — the multi-host twin of Proc.Attempt, with
// identical workload shipping, row-order validation and fallback
// semantics (see seams.go).
func (p *TCP) Attempt() shard.AttemptFunc { return attemptFunc(p) }

// Exec returns the shard.ExecFunc that executes shard-local sort
// attempts on TCP workers — the multi-host twin of Proc.Exec.
func (p *TCP) Exec() shard.ExecFunc { return execFunc(p) }

// ExecScan returns the relalg.ScanExecFunc that executes shard-local
// operator-scan attempts on TCP workers — the multi-host twin of
// Proc.ExecScan.
func (p *TCP) ExecScan() relalg.ScanExecFunc { return execScanFunc(p) }

// Launch returns the trials.Launcher whose fleets run every shard
// attempt through this transport. Nothing above the launcher seam
// changes: results, summary and OnResult order are byte-identical to
// the in-process fleet at any shard and worker count.
func (p *TCP) Launch(shards, parallel int, retry shard.RetryPolicy) trials.Launcher {
	return func(n int, seed int64, onResult func(trials.Result)) trials.Runner {
		return shard.Fleet{
			Plan:     shard.Plan{Shards: shards, Trials: n},
			Parallel: parallel,
			Seed:     seed,
			Retry:    retry,
			OnResult: onResult,
			Attempt:  p.Attempt(),
		}
	}
}

// LaunchSort returns the algorithms.SortLauncher that runs every sort
// through the sharded run-partitioned path with shard-local sorts on
// TCP workers — shard.Sort's launcher with this transport's Exec.
func (p *TCP) LaunchSort(shards int, seed int64, retry shard.RetryPolicy, onReport func(shard.SortReport)) algorithms.SortLauncher {
	return shard.Sort{Shards: shards, Retry: retry, Exec: p.Exec()}.Launcher(seed, onReport)
}
