package transport_test

// tcp_test.go is the network failure matrix: every way a TCP worker
// can die — refused dial, handshake mismatch, peer reset mid-frame, a
// stall past the attempt deadline, a real worker process SIGKILLed
// mid-job — must land on the same retry → backoff → chaos-free-
// fallback path as pipe-worker death, reproduce the baseline bytes
// exactly, and move only the attempt census. The happy-path tests pin
// tcp ≡ inproc for all three job kinds (trial fleets, shard sorts,
// operator scans) across shards × parallel.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/relalg"
	"extmem/internal/shard"
	"extmem/internal/tape"
	"extmem/internal/transport"
	"extmem/internal/trials"
)

// localTCP starts n loopback serve workers for the test and returns
// the transport dialing them; the workers stop at test cleanup.
func localTCP(t *testing.T, n int) *transport.TCP {
	t.Helper()
	tr, stop, err := transport.LocalWorkers(n)
	if err != nil {
		t.Fatalf("LocalWorkers(%d): %v", n, err)
	}
	t.Cleanup(stop)
	return tr
}

// The TCP fleet must reproduce the in-process fleet exactly — rows,
// summary and the in-order OnResult stream — at every shard and
// worker count.
func TestTCPFleetMatchesInprocess(t *testing.T) {
	const n = 24
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, wantSum, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 42,
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("in-process fleet: %v", err)
	}
	tr := localTCP(t, 2)
	for _, shards := range []int{1, 2, 4} {
		for _, parallel := range []int{1, 4} {
			var stream []int
			got, sum, err := shard.Fleet{
				Plan:     shard.Plan{Shards: shards, Trials: n},
				Parallel: parallel,
				Seed:     42,
				OnResult: func(r trials.Result) { stream = append(stream, r.Trial) },
				Attempt:  tr.Attempt(),
			}.Run(ctx, fn)
			if err != nil {
				t.Fatalf("shards=%d parallel=%d: %v", shards, parallel, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d parallel=%d: rows differ from in-process fleet", shards, parallel)
			}
			if !reflect.DeepEqual(sum, wantSum) {
				t.Errorf("shards=%d parallel=%d: summary = %+v, want %+v", shards, parallel, sum, wantSum)
			}
			for i, trial := range stream {
				if trial != i {
					t.Fatalf("shards=%d parallel=%d: OnResult[%d] = trial %d, want %d",
						shards, parallel, i, trial, i)
				}
			}
		}
	}
}

// The TCP sort must reproduce the in-process sharded sort — the bytes
// AND the full report, per-shard (r, s, t) census included.
func TestTCPSortMatchesInprocess(t *testing.T) {
	enc := testInput()
	tr := localTCP(t, 2)
	for _, shards := range []int{1, 2, 4} {
		cfg := shard.Sort{Shards: shards, FanIn: 2, RunMemoryBits: 128}
		want, wantRep, err := cfg.Run(context.Background(), enc, 5)
		if err != nil {
			t.Fatalf("in-process sort: %v", err)
		}
		cfg.Exec = tr.Exec()
		got, rep, err := cfg.Run(context.Background(), enc, 5)
		if err != nil {
			t.Fatalf("shards=%d: tcp sort: %v", shards, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%d: tcp sort bytes differ", shards)
		}
		if !reflect.DeepEqual(rep, wantRep) {
			t.Errorf("shards=%d: tcp report = %+v, want %+v", shards, rep, wantRep)
		}
	}
}

// A scan job shipped over TCP must return exactly what executing it
// in-process returns — bytes and resource census — for both ops.
func TestTCPScanMatchesDirect(t *testing.T) {
	tr := localTCP(t, 1)
	exec := tr.ExecScan()
	for _, op := range []string{relalg.ScanOpDiff, relalg.ScanOpProduct} {
		job := relalg.ScanJob{
			Op:    op,
			Left:  []byte("0001#0010#0100#"),
			Right: []byte("0010#"),
			Seed:  9,
		}
		want, wantRes, err := job.Execute()
		if err != nil {
			t.Fatalf("%s: direct execute: %v", op, err)
		}
		got, res, err := exec(context.Background(), 0, 1, job)
		if err != nil {
			t.Fatalf("%s: tcp scan: %v", op, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: tcp scan bytes %q, want %q", op, got, want)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("%s: tcp scan resources %v, want %v", op, res, wantRes)
		}
	}
}

// The sharded query evaluator with every sort and scan behind the TCP
// transport must reproduce the in-process sharded run — answer tuples
// and the whole QueryReport — and the scan seam must actually fire.
func TestTCPQueryEvaluatorMatchesInprocess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := problems.GenSetNo(128, 12, rng)
	db := relalg.InstanceDB(in)
	q := relalg.SymmetricDifference("R1", "R2")
	const runMem = 256

	eval := func(exec shard.ExecFunc, execScan relalg.ScanExecFunc) (*relalg.Relation, *relalg.QueryReport, error) {
		rep := &relalg.QueryReport{}
		m := core.NewMachineOpts(relalg.NumQueryTapes, 7, tape.Options{})
		defer m.Close()
		r, err := relalg.Evaluator{
			Shards: 2, RunMemoryBits: runMem, Seed: 7, Report: rep,
			Exec: exec, ExecScan: execScan,
		}.EvalST(context.Background(), q, db, m)
		return r, rep, err
	}
	want, wantRep, err := eval(nil, nil)
	if err != nil {
		t.Fatalf("in-process evaluation: %v", err)
	}
	tr := localTCP(t, 2)
	scans := 0
	counting := func(ctx context.Context, sh, attempt int, job relalg.ScanJob) ([]byte, core.Resources, error) {
		scans++
		return tr.ExecScan()(ctx, sh, attempt, job)
	}
	got, rep, err := eval(tr.Exec(), counting)
	if err != nil {
		t.Fatalf("tcp evaluation: %v", err)
	}
	if !reflect.DeepEqual(got.Tuples, want.Tuples) {
		t.Error("tcp-evaluated tuples differ from the in-process run")
	}
	if !reflect.DeepEqual(rep, wantRep) {
		t.Error("tcp-evaluated query census differs from the in-process run")
	}
	if scans == 0 {
		t.Error("the scan seam never fired: operator scans stayed in-process")
	}
}

// The connection failure matrix: dial refused, connection dropped
// mid-stream (once, and on every attempt), a stall past the attempt
// deadline. Every costume of network death lands on the retry →
// fallback path, reproduces the baseline rows byte for byte, and
// yields the exact deterministic census.
func TestTCPConnectionDeathRecovers(t *testing.T) {
	const n = 20
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 3,
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("baseline fleet: %v", err)
	}
	live := localTCP(t, 2)
	// A refused address: bind a port, then close the listener so every
	// dial to it is rejected.
	refusedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	refused := refusedLn.Addr().String()
	refusedLn.Close()

	cases := []struct {
		name                string
		workers             []string
		deadline            time.Duration
		fault               func(sh, attempt int) *transport.WorkerFault
		retries, falls, rec int
	}{
		// Shard 0's first attempt dials the dead address; the retry
		// moves one step around the ring to a live worker.
		{"dial refused once", []string{refused, live.Workers[0]}, 0, nil, 1, 0, 1},
		{"drop mid-stream once", live.Workers, 0, func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Drop: true, DropAfter: 2}
			}
			return nil
		}, 1, 0, 1},
		{"drop always", live.Workers, 0, func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 {
				return &transport.WorkerFault{Drop: true, DropAfter: 1}
			}
			return nil
		}, 1, 1, 2},
		{"stall past the deadline once", live.Workers, 300 * time.Millisecond,
			func(sh, attempt int) *transport.WorkerFault {
				if sh == 0 && attempt == 1 {
					return &transport.WorkerFault{Stall: 1500 * time.Millisecond}
				}
				return nil
			}, 1, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &transport.TCP{Workers: c.workers, Deadline: c.deadline, Fault: c.fault}
			got, sum, err := shard.Fleet{
				Plan: shard.Plan{Shards: 2, Trials: n}, Parallel: 1, Seed: 3,
				Retry:   shard.RetryPolicy{MaxAttempts: 2},
				Attempt: p.Attempt(),
			}.Run(ctx, fn)
			if err != nil {
				t.Fatalf("fleet: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("recovered rows differ from the baseline")
			}
			if sum.Retries != c.retries || sum.Fallbacks != c.falls || sum.Recovered != c.rec {
				t.Errorf("census (retries=%d falls=%d rec=%d), want (%d %d %d)",
					sum.Retries, sum.Fallbacks, sum.Recovered, c.retries, c.falls, c.rec)
			}
			if sum.Errors != 0 {
				t.Errorf("%d error rows, want 0", sum.Errors)
			}
		})
	}
}

// Sort-side connection death: retried, then absorbed by the
// coordinator; bytes and the successful attempts' reports never move,
// and a dead connection is an error, not a panic, so Recovered stays
// zero.
func TestTCPSortConnectionDeathRecovers(t *testing.T) {
	enc := testInput()
	clean, cleanRep, err := shard.Sort{Shards: 2, FanIn: 2, RunMemoryBits: 128}.
		Run(context.Background(), enc, 5)
	if err != nil {
		t.Fatalf("clean sort: %v", err)
	}
	live := localTCP(t, 2)
	cases := []struct {
		name        string
		fault       func(sh, attempt int) *transport.WorkerFault
		extra, fall int
	}{
		{"drop once", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Drop: true}
			}
			return nil
		}, 1, 0},
		{"drop always", func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 {
				return &transport.WorkerFault{Drop: true}
			}
			return nil
		}, 2, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &transport.TCP{Workers: live.Workers, Fault: c.fault}
			out, rep, err := shard.Sort{
				Shards: 2, FanIn: 2, RunMemoryBits: 128,
				Retry: shard.RetryPolicy{MaxAttempts: 2},
				Exec:  p.Exec(),
			}.Run(context.Background(), enc, 5)
			if err != nil {
				t.Fatalf("sort: %v", err)
			}
			if !bytes.Equal(out, clean) {
				t.Error("recovered sort bytes differ from the clean run")
			}
			if !reflect.DeepEqual(rep.Shards, cleanRep.Shards) || !reflect.DeepEqual(rep.Merge, cleanRep.Merge) {
				t.Error("successful-attempt census differs from the clean run")
			}
			if rep.Attempts != 2+c.extra || rep.Fallbacks != c.fall || rep.Recovered != 0 {
				t.Errorf("census (a=%d f=%d r=%d), want (a=%d f=%d r=0)",
					rep.Attempts, rep.Fallbacks, rep.Recovered, 2+c.extra, c.fall)
			}
		})
	}
}

// frameBytes encodes one length-prefixed gob frame the way the wire
// protocol expects — for stub servers that speak just enough of the
// protocol to lie.
func frameBytes(t *testing.T, v any) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		t.Fatalf("encoding stub frame: %v", err)
	}
	b := make([]byte, 4+payload.Len())
	binary.BigEndian.PutUint32(b, uint32(payload.Len()))
	copy(b[4:], payload.Bytes())
	return b
}

// stubServer runs handle on every accepted connection until cleanup.
func stubServer(t *testing.T, handle func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				handle(c)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// testSortJob is a minimal valid sort job for driving one attempt at
// a stub worker.
func testSortJob() shard.SortJob {
	return shard.SortJob{Payload: testInput(), FanIn: 2, RunMemoryBits: 128, Tapes: 4, Seed: 5}
}

// A peer speaking another protocol generation or carrying a different
// workload registry is rejected during the handshake with a typed
// *HandshakeError — wrapped in the retryable *WorkerError, never
// surfaced as gob garbage.
func TestTCPHandshakeMismatch(t *testing.T) {
	cases := []struct {
		name  string
		hello transport.Hello
		field string
	}{
		{"protocol version", transport.Hello{Version: transport.ProtocolVersion + 1,
			Fingerprint: trials.RegistryFingerprint()}, "protocol version"},
		{"workload registry", transport.Hello{Version: transport.ProtocolVersion,
			Fingerprint: trials.RegistryFingerprint() + 1}, "workload registry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			hello := frameBytes(t, c.hello)
			addr := stubServer(t, func(conn net.Conn) {
				conn.Write(hello)
				// Linger briefly so the coordinator reads the frame
				// before the close can race it.
				time.Sleep(100 * time.Millisecond)
			})
			p := &transport.TCP{Workers: []string{addr}}
			_, _, err := p.Exec()(context.Background(), 0, 1, testSortJob())
			if err == nil {
				t.Fatal("mismatched handshake succeeded")
			}
			var herr *transport.HandshakeError
			if !errors.As(err, &herr) {
				t.Fatalf("error %v is not a *HandshakeError", err)
			}
			if herr.Field != c.field {
				t.Errorf("mismatch field %q, want %q", herr.Field, c.field)
			}
			var werr *transport.WorkerError
			if !errors.As(err, &werr) {
				t.Error("handshake failure is not wrapped in a *WorkerError")
			}
			var fault shard.Fault
			if !errors.As(err, &fault) {
				t.Error("handshake failure does not carry the shard.Fault marker")
			}
		})
	}
}

// A fleet pointed at a mismatched build burns its budget and the
// coordinator absorbs every range itself: the rows still come out
// byte-identical.
func TestTCPHandshakeMismatchFallsBack(t *testing.T) {
	const n = 12
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 8,
	}.Run(context.Background(), fn)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	hello := frameBytes(t, transport.Hello{Version: transport.ProtocolVersion + 1})
	addr := stubServer(t, func(conn net.Conn) {
		conn.Write(hello)
		time.Sleep(100 * time.Millisecond)
	})
	p := &transport.TCP{Workers: []string{addr}}
	got, sum, err := shard.Fleet{
		Plan: shard.Plan{Shards: 2, Trials: n}, Parallel: 1, Seed: 8,
		Attempt: p.Attempt(),
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fallback rows differ from the baseline")
	}
	if sum.Fallbacks != 2 {
		t.Errorf("fallbacks = %d, want 2 (one per shard)", sum.Fallbacks)
	}
}

// A peer that resets the connection mid-frame — correct handshake,
// then a truncated reply — is one failed attempt: the retry moves to
// the live worker and the rows cannot move.
func TestTCPPeerResetMidFrame(t *testing.T) {
	const n = 16
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 6,
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("baseline fleet: %v", err)
	}
	hello := frameBytes(t, transport.Hello{Version: transport.ProtocolVersion,
		Fingerprint: trials.RegistryFingerprint()})
	resetter := stubServer(t, func(conn net.Conn) {
		conn.Write(hello)
		// A frame header promising 64 bytes, then 3 bytes and a close:
		// the reply stream dies mid-frame.
		conn.Write([]byte{0, 0, 0, 64, 1, 2, 3})
		time.Sleep(100 * time.Millisecond)
	})
	live := localTCP(t, 1)
	p := &transport.TCP{Workers: []string{resetter, live.Workers[0]}}
	got, sum, err := shard.Fleet{
		Plan: shard.Plan{Shards: 2, Trials: n}, Parallel: 1, Seed: 6,
		Retry:   shard.RetryPolicy{MaxAttempts: 2},
		Attempt: p.Attempt(),
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recovered rows differ from the baseline")
	}
	if sum.Retries != 1 || sum.Fallbacks != 0 || sum.Recovered != 1 || sum.Errors != 0 {
		t.Errorf("census (retries=%d falls=%d rec=%d errs=%d), want (1 0 1 0)",
			sum.Retries, sum.Fallbacks, sum.Recovered, sum.Errors)
	}
}

// A real worker process — this test binary re-executed in serve mode —
// SIGKILLed while a job is in flight: the coordinator sees the
// connection die, retries onto the live worker, and the rows cannot
// move. This is the one death no in-process serve loop can stage.
func TestTCPWorkerKilledMidStream(t *testing.T) {
	const n = 16
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), transport.EnvListen+"=127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker process: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	// The serve loop announces its resolved address on stderr.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "stworker: listening on "); ok {
				addrCh <- addr
				return
			}
		}
	}()
	var extAddr string
	select {
	case extAddr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("worker process never announced its address")
	}

	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 4,
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("baseline fleet: %v", err)
	}
	live := localTCP(t, 1)
	// Shard 0's first attempt lands on the external worker and stalls
	// there, holding the job in flight while the SIGKILL below takes
	// the whole process: connection death by process death.
	p := &transport.TCP{
		Workers: []string{extAddr, live.Workers[0]},
		Fault: func(sh, attempt int) *transport.WorkerFault {
			if sh == 0 && attempt == 1 {
				return &transport.WorkerFault{Stall: 30 * time.Second}
			}
			return nil
		},
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		cmd.Process.Kill()
	}()
	got, sum, err := shard.Fleet{
		Plan: shard.Plan{Shards: 2, Trials: n}, Parallel: 1, Seed: 4,
		Retry:   shard.RetryPolicy{MaxAttempts: 2},
		Attempt: p.Attempt(),
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recovered rows differ from the baseline")
	}
	if sum.Retries != 1 || sum.Fallbacks != 0 || sum.Recovered != 1 || sum.Errors != 0 {
		t.Errorf("census (retries=%d falls=%d rec=%d errs=%d), want (1 0 1 0)",
			sum.Retries, sum.Fallbacks, sum.Recovered, sum.Errors)
	}
}

// Cancelling the fleet context mid-run surfaces the cancellation, not
// a retryable WorkerError — same contract as the pipe transport.
func TestTCPCancellation(t *testing.T) {
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx, cancel := context.WithCancel(trials.WithWorkload(context.Background(), w))
	cancel()
	tr := localTCP(t, 1)
	_, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 2, Trials: 8}, Parallel: 1, Seed: 3,
		Retry:   shard.RetryPolicy{MaxAttempts: 3},
		Attempt: tr.Attempt(),
	}.Run(ctx, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fleet error = %v, want context.Canceled", err)
	}
}

// An empty worker list cannot run anything remotely — every shard
// falls back to the coordinator and the rows still come out right.
func TestTCPNoWorkersFallsBack(t *testing.T) {
	const n = 8
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	want, _, err := shard.Fleet{
		Plan: shard.Plan{Shards: 1, Trials: n}, Parallel: 1, Seed: 12,
	}.Run(context.Background(), fn)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	got, sum, err := shard.Fleet{
		Plan: shard.Plan{Shards: 2, Trials: n}, Parallel: 1, Seed: 12,
		Attempt: (&transport.TCP{}).Attempt(),
	}.Run(ctx, fn)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fallback rows differ from the baseline")
	}
	if sum.Fallbacks != 2 {
		t.Errorf("fallbacks = %d, want 2", sum.Fallbacks)
	}
}

// ParseWorkers is the CLIs' -workers validator: exact addresses pass,
// anything malformed is named in the error.
func TestParseWorkers(t *testing.T) {
	got, err := transport.ParseWorkers("127.0.0.1:9051,host.example:80")
	if err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	if !reflect.DeepEqual(got, []string{"127.0.0.1:9051", "host.example:80"}) {
		t.Errorf("parsed %v", got)
	}
	for _, bad := range []string{"", "127.0.0.1", "host:", ":9051", "a:1,,b:2"} {
		if _, err := transport.ParseWorkers(bad); err == nil {
			t.Errorf("ParseWorkers(%q) accepted", bad)
		}
	}
}

// Shutting the workers down must leave no serve goroutines and no
// connections behind — the leak check for the whole happy path plus a
// dropped connection.
func TestTCPNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	tr, stop, err := transport.LocalWorkers(2)
	if err != nil {
		t.Fatalf("LocalWorkers: %v", err)
	}
	w, fn := algorithms.FingerprintValueWorkload(4, 10)
	ctx := trials.WithWorkload(context.Background(), w)
	drop := *tr
	drop.Fault = func(sh, attempt int) *transport.WorkerFault {
		if sh == 0 && attempt == 1 {
			return &transport.WorkerFault{Drop: true, DropAfter: 1}
		}
		return nil
	}
	if _, _, err := (shard.Fleet{
		Plan: shard.Plan{Shards: 2, Trials: 12}, Parallel: 1, Seed: 2,
		Retry:   shard.RetryPolicy{MaxAttempts: 2},
		Attempt: drop.Attempt(),
	}).Run(ctx, fn); err != nil {
		t.Fatalf("fleet: %v", err)
	}
	stop()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after stop\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
