//go:build !unix

package transport

import "os/exec"

// isolateWorker is a no-op where process groups do not exist; workers
// are still bounded by the coordinator's context.
func isolateWorker(cmd *exec.Cmd) {}
