package transport

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"extmem/internal/shard"
	"extmem/internal/trials"
)

// EnvWorker is the environment variable that marks a process as a
// shard worker. The coordinator sets it on every worker it spawns; the
// hosting binary (stbench, strun, or a test binary's TestMain hook)
// checks it before doing anything else and hands the process to Main.
const EnvWorker = "EXTMEM_STWORKER"

// WorkerArg is the hidden subcommand name under which the CLIs expose
// the worker ("stbench stworker", "strun stworker"). It exists so the
// worker is visible in process listings; the environment variable is
// what actually routes execution, which keeps test binaries — whose
// argument vector belongs to the testing package — spawnable as
// workers too.
const WorkerArg = "stworker"

// IsWorker reports whether this process was launched as a shard
// worker: the environment marker is set, or the first argument is the
// hidden subcommand.
func IsWorker(args []string) bool {
	if os.Getenv(EnvWorker) == "1" {
		return true
	}
	return len(args) > 1 && args[1] == WorkerArg
}

// MaybeWorker hijacks the process if it was spawned as a shard worker
// and never returns in that case. Test binaries that execute
// transport-backed fleets install it first thing in TestMain, so the
// self-exec default of Proc works under `go test` exactly as it does
// under the real CLIs.
func MaybeWorker() {
	if os.Getenv(EnvWorker) == "1" {
		os.Exit(Main(os.Stdin, os.Stdout, os.Stderr))
	}
}

// Main is the shard worker: it reads the single job frame from stdin,
// executes the assignment on a shard-local engine or machine, streams
// reply frames to stdout (per-trial rows in trial order, then the Done
// report), and returns the process exit code. All errors worth
// reporting travel in frames or the exit code; stderr is for human
// diagnostics only.
func Main(stdin io.Reader, stdout, stderr io.Writer) int {
	in := bufio.NewReader(stdin)
	out := bufio.NewWriter(stdout)
	var job Job
	if err := readFrame(in, &job); err != nil {
		fmt.Fprintln(stderr, "stworker: reading job:", err)
		return 1
	}
	if f := job.Fault; f != nil && f.Stall > 0 {
		time.Sleep(f.Stall)
	}
	if f := job.Fault; f != nil && f.Corrupt {
		// A length prefix past every limit: the coordinator must treat
		// it as a malformed frame, never as an allocation order.
		out.Write([]byte{0xff, 0xff, 0xff, 0xff})
		out.Flush()
		return 1
	}
	send := func(rep Reply) error {
		if err := writeFrame(out, rep); err != nil {
			return err
		}
		return out.Flush()
	}
	switch {
	case job.Trial != nil:
		return runTrialJob(job.Trial, job.Fault, send, stderr)
	case job.Sort != nil:
		return runSortJob(job.Sort, job.Fault, send, stderr)
	}
	fmt.Fprintln(stderr, "stworker: job frame assigns no work")
	return 1
}

// die executes a WorkerFault's termination order: self-SIGKILL when
// Kill is set (uncatchable; the brief sleep yields until the signal
// lands), a plain nonzero exit otherwise. Either way the reply stream
// ends without a Done frame — mid-job death, as the coordinator sees a
// crashed shard machine.
func die(f *WorkerFault) {
	if f.Kill {
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			p.Kill()
			time.Sleep(time.Second)
		}
	}
	os.Exit(1)
}

func runTrialJob(j *TrialJob, fault *WorkerFault, send func(Reply) error, stderr io.Writer) int {
	fn, err := j.Workload.Build()
	if err != nil {
		// No builder, undecodable spec: report and die. The coordinator
		// retries and then absorbs the range itself, so even a workload
		// that cannot cross the boundary converges to correct rows.
		send(Reply{Done: &Done{Err: err.Error()}})
		fmt.Fprintln(stderr, "stworker:", err)
		return 1
	}
	rows := 0
	var sendErr error
	eng := trials.Engine{
		Trials:   j.Trials,
		Offset:   j.Offset,
		Parallel: j.Parallel,
		Seed:     j.Seed,
		OnResult: func(r trials.Result) {
			if sendErr != nil {
				return
			}
			if fault != nil && fault.Exit && rows >= fault.ExitAfter {
				die(fault)
			}
			if sendErr = send(Reply{Row: &r}); sendErr == nil {
				rows++
			}
		},
	}
	rs, _, runErr := eng.Run(context.Background(), fn)
	if sendErr != nil {
		fmt.Fprintln(stderr, "stworker: streaming rows:", sendErr)
		return 1
	}
	if rs == nil && runErr != nil {
		// A hard engine failure (a trial panic the engine recovered):
		// surface it in the Done frame so the coordinator's retry takes
		// over, exactly as it would for an in-process attempt.
		send(Reply{Done: &Done{Err: runErr.Error()}})
		return 1
	}
	if fault != nil && fault.Exit && rows <= fault.ExitAfter {
		// An empty or short range never reached the ordered row: die
		// before the Done frame so the fault stays a fault.
		die(fault)
	}
	if err := send(Reply{Done: &Done{}}); err != nil {
		fmt.Fprintln(stderr, "stworker: sending done:", err)
		return 1
	}
	return 0
}

func runSortJob(j *shard.SortJob, fault *WorkerFault, send func(Reply) error, stderr io.Writer) int {
	if fault != nil && fault.Exit {
		// Sort jobs stream no rows; any Exit order means dying before
		// the Done frame.
		die(fault)
	}
	out, res, err := j.Execute()
	if err != nil {
		send(Reply{Done: &Done{Err: err.Error()}})
		fmt.Fprintln(stderr, "stworker:", err)
		return 1
	}
	if err := send(Reply{Done: &Done{Sort: &SortDone{Out: out, Resources: res}}}); err != nil {
		fmt.Fprintln(stderr, "stworker: sending done:", err)
		return 1
	}
	return 0
}
