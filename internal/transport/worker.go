package transport

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"extmem/internal/relalg"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// EnvWorker is the environment variable that marks a process as a
// shard worker. The coordinator sets it on every worker it spawns; the
// hosting binary (stbench, strun, or a test binary's TestMain hook)
// checks it before doing anything else and hands the process to Main.
const EnvWorker = "EXTMEM_STWORKER"

// EnvListen is the environment variable that marks a process as a TCP
// shard worker: its value is the listen address. Tests that need a
// killable worker process (real process death over a real connection)
// spawn their own test binary with it set; MaybeWorker routes such a
// process into the serve loop exactly as EnvWorker routes it into the
// pipe worker.
const EnvListen = "EXTMEM_STWORKER_LISTEN"

// WorkerArg is the hidden subcommand name under which the CLIs expose
// the worker ("stbench stworker", "strun stworker"). It exists so the
// worker is visible in process listings; the environment variable is
// what actually routes execution, which keeps test binaries — whose
// argument vector belongs to the testing package — spawnable as
// workers too. With `-listen addr` following it, the subcommand serves
// jobs over TCP instead of reading one job from stdin.
const WorkerArg = "stworker"

// IsWorker reports whether this process was launched as a shard
// worker: one of the environment markers is set, or the first argument
// is the hidden subcommand.
func IsWorker(args []string) bool {
	if os.Getenv(EnvWorker) == "1" || os.Getenv(EnvListen) != "" {
		return true
	}
	return len(args) > 1 && args[1] == WorkerArg
}

// WorkerMain runs a process identified by IsWorker and returns its
// exit code: the `stworker -listen addr` form (or the EnvListen
// marker) serves jobs over TCP until signalled; every other form is
// the pipe worker reading one job frame from stdin.
func WorkerMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if addr := os.Getenv(EnvListen); addr != "" {
		return ServeMain(addr, stderr)
	}
	if len(args) > 3 && args[1] == WorkerArg && args[2] == "-listen" {
		return ServeMain(args[3], stderr)
	}
	return Main(stdin, stdout, stderr)
}

// MaybeWorker hijacks the process if it was spawned as a shard worker
// and never returns in that case. Test binaries that execute
// transport-backed fleets install it first thing in TestMain, so the
// self-exec default of Proc — and the spawn-a-killable-TCP-worker
// pattern of the failure-matrix tests — work under `go test` exactly
// as they do under the real CLIs.
func MaybeWorker() {
	if addr := os.Getenv(EnvListen); addr != "" {
		os.Exit(ServeMain(addr, os.Stderr))
	}
	if os.Getenv(EnvWorker) == "1" {
		os.Exit(Main(os.Stdin, os.Stdout, os.Stderr))
	}
}

// Main is the pipe shard worker: it reads the single job frame from
// stdin, executes the assignment on a shard-local engine or machine,
// streams reply frames to stdout (per-trial rows in trial order, then
// the Done report), and returns the process exit code. All errors
// worth reporting travel in frames or the exit code; stderr is for
// human diagnostics only.
func Main(stdin io.Reader, stdout, stderr io.Writer) int {
	in := bufio.NewReader(stdin)
	out := bufio.NewWriter(stdout)
	var job Job
	if err := readFrame(in, &job); err != nil {
		fmt.Fprintln(stderr, "stworker: reading job:", err)
		return 1
	}
	send := func(rep Reply) error {
		if err := writeFrame(out, rep); err != nil {
			return err
		}
		return out.Flush()
	}
	corrupt := func() {
		// A length prefix past every limit: the coordinator must treat
		// it as a malformed frame, never as an allocation order.
		out.Write([]byte{0xff, 0xff, 0xff, 0xff})
		out.Flush()
	}
	return serveJob(job, send, corrupt, pipeDie, stderr)
}

// serveJob executes one decoded job against a reply stream — the
// shared body of the pipe worker (Main) and the TCP serve loop's
// per-connection handler. die executes a mid-stream termination order:
// process death on pipes, where the worker owns its process;
// connection death in serve mode, where one process hosts many
// connections. In serve mode die returns and the next send fails on
// the closed connection, which ends the job without a Done frame —
// the same mid-job death the coordinator sees from a dead process.
func serveJob(job Job, send func(Reply) error, corrupt func(), die func(*WorkerFault), stderr io.Writer) int {
	if f := job.Fault; f != nil && f.Stall > 0 {
		time.Sleep(f.Stall)
	}
	if f := job.Fault; f != nil && f.Corrupt {
		corrupt()
		return 1
	}
	switch {
	case job.Trial != nil:
		return runTrialJob(job.Trial, job.Fault, send, die, stderr)
	case job.Sort != nil:
		return runSortJob(job.Sort, job.Fault, send, die, stderr)
	case job.Scan != nil:
		return runScanJob(job.Scan, job.Fault, send, die, stderr)
	}
	fmt.Fprintln(stderr, "stworker: job frame assigns no work")
	return 1
}

// dies reports whether the fault orders the stream to end before the
// Done frame (process death on pipes, connection death in serve mode).
func (f *WorkerFault) dies() bool { return f != nil && (f.Exit || f.Drop) }

// dieAfter is the number of row frames to stream before dying; sort
// and scan jobs stream no rows, so any death order lands before their
// Done frame.
func (f *WorkerFault) dieAfter() int {
	if f.Exit {
		return f.ExitAfter
	}
	return f.DropAfter
}

// pipeDie executes a termination order in the pipe worker:
// self-SIGKILL when Kill is set (uncatchable; the brief sleep yields
// until the signal lands), a plain nonzero exit otherwise — Drop
// included, since closing a pipe worker's only stream is process
// death. Either way the reply stream ends without a Done frame —
// mid-job death, as the coordinator sees a crashed shard machine.
func pipeDie(f *WorkerFault) {
	if f.Kill {
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			p.Kill()
			time.Sleep(time.Second)
		}
	}
	os.Exit(1)
}

func runTrialJob(j *TrialJob, fault *WorkerFault, send func(Reply) error, die func(*WorkerFault), stderr io.Writer) int {
	fn, err := j.Workload.Build()
	if err != nil {
		// No builder, undecodable spec: report and die. The coordinator
		// retries and then absorbs the range itself, so even a workload
		// that cannot cross the boundary converges to correct rows.
		send(Reply{Done: &Done{Err: err.Error()}})
		fmt.Fprintln(stderr, "stworker:", err)
		return 1
	}
	rows := 0
	var sendErr error
	eng := trials.Engine{
		Trials:   j.Trials,
		Offset:   j.Offset,
		Parallel: j.Parallel,
		Seed:     j.Seed,
		OnResult: func(r trials.Result) {
			if sendErr != nil {
				return
			}
			if fault.dies() && rows >= fault.dieAfter() {
				die(fault)
			}
			if sendErr = send(Reply{Row: &r}); sendErr == nil {
				rows++
			}
		},
	}
	rs, _, runErr := eng.Run(context.Background(), fn)
	if sendErr != nil {
		fmt.Fprintln(stderr, "stworker: streaming rows:", sendErr)
		return 1
	}
	if rs == nil && runErr != nil {
		// A hard engine failure (a trial panic the engine recovered):
		// surface it in the Done frame so the coordinator's retry takes
		// over, exactly as it would for an in-process attempt.
		send(Reply{Done: &Done{Err: runErr.Error()}})
		return 1
	}
	if fault.dies() && rows <= fault.dieAfter() {
		// An empty or short range never reached the ordered row: die
		// before the Done frame so the fault stays a fault.
		die(fault)
	}
	if err := send(Reply{Done: &Done{}}); err != nil {
		fmt.Fprintln(stderr, "stworker: sending done:", err)
		return 1
	}
	return 0
}

func runSortJob(j *shard.SortJob, fault *WorkerFault, send func(Reply) error, die func(*WorkerFault), stderr io.Writer) int {
	if fault.dies() {
		// Sort jobs stream no rows; any death order means dying before
		// the Done frame.
		die(fault)
		return 1
	}
	out, res, err := j.Execute()
	if err != nil {
		send(Reply{Done: &Done{Err: err.Error()}})
		fmt.Fprintln(stderr, "stworker:", err)
		return 1
	}
	if err := send(Reply{Done: &Done{Sort: &SortDone{Out: out, Resources: res}}}); err != nil {
		fmt.Fprintln(stderr, "stworker: sending done:", err)
		return 1
	}
	return 0
}

func runScanJob(j *relalg.ScanJob, fault *WorkerFault, send func(Reply) error, die func(*WorkerFault), stderr io.Writer) int {
	if fault.dies() {
		// Scan jobs stream no rows either.
		die(fault)
		return 1
	}
	out, res, err := j.Execute()
	if err != nil {
		send(Reply{Done: &Done{Err: err.Error()}})
		fmt.Fprintln(stderr, "stworker:", err)
		return 1
	}
	if err := send(Reply{Done: &Done{Scan: &ScanDone{Out: out, Resources: res}}}); err != nil {
		fmt.Fprintln(stderr, "stworker: sending done:", err)
		return 1
	}
	return 0
}
