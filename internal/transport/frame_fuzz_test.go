package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"extmem/internal/trials"
)

// FuzzTransportFrame feeds arbitrary bytes to the frame decoder: it
// must reject garbage with an error — oversized lengths, truncated
// payloads, non-gob bodies — and never panic. The coordinator reads
// these frames from worker processes it does not trust to die cleanly,
// so the decoder is a hard boundary.
func FuzzTransportFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	var valid bytes.Buffer
	if err := writeFrame(&valid, Reply{Row: &trials.Result{Trial: 1}}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(append(valid.Bytes(), valid.Bytes()[:3]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			var rep Reply
			if err := readFrame(r, &rep); err != nil {
				return
			}
		}
	})
}

// The decoder refuses a length prefix beyond MaxFrame outright,
// without attempting the allocation.
func TestReadFrameRejectsOversized(t *testing.T) {
	var b bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	b.Write(hdr[:])
	var rep Reply
	if err := readFrame(&b, &rep); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// writeFrame and readFrame round-trip every frame type on the wire.
func TestFrameRoundTrip(t *testing.T) {
	var b bytes.Buffer
	in := Reply{Row: &trials.Result{Trial: 2, Accept: true}}
	if err := writeFrame(&b, in); err != nil {
		t.Fatal(err)
	}
	var out Reply
	if err := readFrame(&b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Row == nil || *out.Row != *in.Row {
		t.Fatalf("round-trip Reply row = %+v, want %+v", out.Row, in.Row)
	}
}
