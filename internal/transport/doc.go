// Package transport executes shard attempts in worker processes and
// on TCP workers that may live on other machines — the process- and
// host-boundary rungs of the shard execution ladder, behind the same
// seams everything else uses: trials.Launcher for trial fleets,
// algorithms.SortLauncher for sharded sorts, and relalg.ScanExecFunc
// for sharded operator scans.
//
// # Shape
//
// The coordinator (Proc) spawns one worker process per shard attempt —
// by default the running executable re-executed with the hidden
// "stworker" subcommand and the EXTMEM_STWORKER environment marker —
// and speaks length-prefixed gob frames over the worker's pipes: a
// 4-byte big-endian payload length, then the gob payload, each frame
// an independent gob stream. Exactly one Job frame goes down stdin
// (a trial-index range with its workload wire form, or a
// shard.SortJob); Reply frames come back up stdout — per-trial
// trials.Result rows strictly in trial order, then a terminal Done
// frame carrying, for sorts, the sorted bytes and the shard machine's
// exact core.Resources report.
//
// Trial functions are closures and cannot cross a process boundary;
// trials.Workload is their wire form. Fleet entry points whose trial
// bodies are pure functions of a few bytes of configuration annotate
// their context with a registered workload (internal/algorithms), and
// the transport's shard attempt ships it; a fleet with no annotation —
// a closure over live state, or a chaos-wrapped fleet whose strikes
// live in the coordinator's injector — transparently runs in-process.
// Randomness never travels either way: a worker re-derives every
// trial's rng from (seed, global index), which is why a shipped shard
// and a local shard produce the same rows byte for byte.
//
// # Failure is the point
//
// Worker death in any costume — nonzero exit, SIGKILL, early EOF, a
// malformed or out-of-order frame, a blown Deadline — surfaces as a
// WorkerError carrying the shard.Fault marker, which puts it on
// exactly the path an injected in-process panic takes: burn one
// attempt of the shard.RetryPolicy budget, back off, retry, and after
// exhaustion let the coordinator absorb the range itself (the degraded
// fallback never consults the transport). Shard work is input-pure, so
// recovery moves the attempt census — Retries, Fallbacks, Recovered;
// Attempts for sorts — and never a byte of output. WorkerFault orders
// shipped inside job frames make workers actually stall, stream
// garbage, or kill themselves mid-stream, so the recovery contract is
// tested against real process death, not simulations of it.
//
// # Multi-host
//
// TCP carries the same frames to long-lived workers started with
// `-serve host:port` (ListenAndServe): one connection per shard
// attempt — dial, Hello handshake (protocol version + workload-
// registry fingerprint, typed HandshakeError on mismatch), one job
// frame, reply stream — with attempts assigned round-robin by shard
// index and a retry moving one step around the worker ring. Deadline
// bounds an attempt's wall clock as an absolute connection deadline.
// Network death is process death: refused dial, peer reset, handshake
// mismatch and blown deadline all take the WorkerError path above.
// WorkerFault's connection-level orders (Drop, Stall) exercise it
// against real connections, and LocalWorkers hosts loopback serve
// workers in-process for tests and experiments.
//
// The residue of this rung is worker discovery and launch — ssh or a
// registry instead of a static -workers list (ROADMAP item 1).
package transport
