package transport

// seams.go builds the shard-layer seam implementations —
// shard.Fleet.Attempt, shard.Sort.Exec, relalg.Evaluator.ExecScan —
// once, over an internal job-runner abstraction, so the pipe transport
// (Proc) and the TCP transport share all coordinator-side logic:
// workload shipping, strict row-order validation, cancellation
// precedence over worker faults, and WorkerError wrapping. A transport
// only decides how one job reaches one worker; what a failed or
// successful attempt means is decided here, identically for both.

import (
	"context"
	"errors"
	"fmt"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/relalg"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// Transport is the full coordinator-side seam set a shard transport
// provides: trial-fleet attempts, shard-local sort execution,
// shard-local operator-scan execution, and the fleet launcher. Proc
// (worker processes over pipes) and TCP (remote workers over
// connections) both implement it; the CLIs program against it so
// `-transport proc` and `-transport tcp -workers ...` differ only in
// how the transport value is built.
type Transport interface {
	Attempt() shard.AttemptFunc
	Exec() shard.ExecFunc
	ExecScan() relalg.ScanExecFunc
	Launch(shards, parallel int, retry shard.RetryPolicy) trials.Launcher
	LaunchSort(shards int, seed int64, retry shard.RetryPolicy, onReport func(shard.SortReport)) algorithms.SortLauncher
}

var (
	_ Transport = (*Proc)(nil)
	_ Transport = (*TCP)(nil)
)

// runner is the internal job-execution seam: run one job on one worker
// for one (shard, attempt), streaming rows to onRow, and report the
// per-attempt chaos order.
type runner interface {
	run(ctx context.Context, sh, attempt int, job Job, onRow func(trials.Result) error) (*Done, error)
	fault(sh, attempt int) *WorkerFault
}

// attemptFunc is the shared shard.AttemptFunc over a runner. A fleet
// whose context carries a trials.Workload annotation ships it —
// workload name and spec out, rows back, validated strictly in trial
// order; the worker re-derives all randomness from (seed, global
// index), so the rows are the ones the in-process engine would
// produce, byte for byte. A fleet with no annotation (a closure with
// no wire form, or a chaos-wrapped fleet) transparently runs
// in-process. Worker death fails the attempt with a WorkerError, which
// the fleet retries and then absorbs via its degraded fallback —
// output identical either way, only the attempt census moves.
func attemptFunc(p runner) shard.AttemptFunc {
	return func(ctx context.Context, sh, attempt int, eng trials.Engine, fn trials.Func) ([]trials.Result, error) {
		w, ok := trials.WorkloadFrom(ctx)
		if !ok {
			rs, _, err := eng.Run(ctx, fn)
			return rs, err
		}
		job := Job{
			Trial: &TrialJob{
				Workload: w,
				Trials:   eng.Trials,
				Offset:   eng.Offset,
				Parallel: eng.Parallel,
				Seed:     eng.Seed,
			},
			Fault: p.fault(sh, attempt),
		}
		rs := make([]trials.Result, 0, eng.Trials)
		onRow := func(r trials.Result) error {
			if want := eng.Offset + len(rs); r.Trial != want {
				return fmt.Errorf("row for trial %d, want %d", r.Trial, want)
			}
			if len(rs) == eng.Trials {
				return fmt.Errorf("row beyond the %d-trial range", eng.Trials)
			}
			rs = append(rs, r)
			if eng.OnResult != nil {
				eng.OnResult(r)
			}
			return nil
		}
		if _, err := p.run(ctx, sh, attempt, job, onRow); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// Cancellation killed the worker; report the
				// cancellation, not a retryable fault.
				return nil, cerr
			}
			return nil, &WorkerError{Shard: sh, Attempt: attempt, Err: err}
		}
		if len(rs) != eng.Trials {
			return nil, &WorkerError{Shard: sh, Attempt: attempt,
				Err: fmt.Errorf("worker streamed %d of %d rows", len(rs), eng.Trials)}
		}
		return rs, nil
	}
}

// execFunc is the shared shard.ExecFunc over a runner: the
// self-contained shard.SortJob goes out, the sorted bytes and the
// shard machine's exact core.Resources report come back. Worker death
// fails the attempt with a WorkerError and the sort's retry →
// coordinator-fallback path takes over.
func execFunc(p runner) shard.ExecFunc {
	return func(ctx context.Context, sh, attempt int, job shard.SortJob) ([]byte, core.Resources, error) {
		done, err := p.run(ctx, sh, attempt, Job{Sort: &job, Fault: p.fault(sh, attempt)}, nil)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, core.Resources{}, cerr
			}
			return nil, core.Resources{}, &WorkerError{Shard: sh, Attempt: attempt, Err: err}
		}
		if done.Sort == nil {
			return nil, core.Resources{}, &WorkerError{Shard: sh, Attempt: attempt,
				Err: errors.New("done frame carries no sort result")}
		}
		return done.Sort.Out, done.Sort.Resources, nil
	}
}

// execScanFunc is the shared relalg.ScanExecFunc over a runner — the
// scan-side twin of execFunc, closing the gap where sharded operator
// scans (the difference's anti-merge, the product's paired scan)
// silently ran in-process under a transport.
func execScanFunc(p runner) relalg.ScanExecFunc {
	return func(ctx context.Context, sh, attempt int, job relalg.ScanJob) ([]byte, core.Resources, error) {
		done, err := p.run(ctx, sh, attempt, Job{Scan: &job, Fault: p.fault(sh, attempt)}, nil)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, core.Resources{}, cerr
			}
			return nil, core.Resources{}, &WorkerError{Shard: sh, Attempt: attempt, Err: err}
		}
		if done.Scan == nil {
			return nil, core.Resources{}, &WorkerError{Shard: sh, Attempt: attempt,
				Err: errors.New("done frame carries no scan result")}
		}
		return done.Scan.Out, done.Scan.Resources, nil
	}
}
