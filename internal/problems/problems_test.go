package problems

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Instance{V: []string{"01", "11"}, W: []string{"11", "01"}}
	enc := in.Encode()
	if string(enc) != "01#11#11#01#" {
		t.Fatalf("Encode = %q", enc)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != 2 || got.V[0] != "01" || got.W[1] != "01" {
		t.Fatalf("Decode = %+v", got)
	}
}

func TestDecodeEmpty(t *testing.T) {
	in, err := Decode(nil)
	if err != nil || in.M() != 0 {
		t.Fatalf("Decode(nil) = %+v, %v", in, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		[]byte("01#11"),     // missing trailing separator
		[]byte("01#11#00#"), // odd number of values
		[]byte("0x#11#"),    // bad character
	}
	for _, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Fatalf("Decode(%q) succeeded", b)
		}
	}
}

func TestSizeMatchesPaperFormula(t *testing.T) {
	// N = 2m(n+1) for fixed-length values.
	in := Instance{V: []string{"010", "111"}, W: []string{"000", "011"}}
	if in.Size() != 2*2*(3+1) {
		t.Fatalf("Size = %d, want 16", in.Size())
	}
	if in.Size() != len(in.Encode()) {
		t.Fatalf("Size %d != encoded length %d", in.Size(), len(in.Encode()))
	}
}

func TestSetEquality(t *testing.T) {
	cases := []struct {
		in   Instance
		want bool
	}{
		{Instance{V: []string{"0", "1"}, W: []string{"1", "0"}}, true},
		{Instance{V: []string{"0", "0"}, W: []string{"0", "1"}}, false},
		{Instance{V: []string{"0", "0", "1"}, W: []string{"0", "1", "1"}}, true}, // sets ignore multiplicity
		{Instance{V: []string{"0"}, W: []string{"1"}}, false},
		{Instance{}, true},
	}
	for i, c := range cases {
		if got := SetEquality(c.in); got != c.want {
			t.Fatalf("case %d: SetEquality = %v, want %v", i, got, c.want)
		}
	}
}

func TestMultisetEquality(t *testing.T) {
	cases := []struct {
		in   Instance
		want bool
	}{
		{Instance{V: []string{"0", "1"}, W: []string{"1", "0"}}, true},
		{Instance{V: []string{"0", "0", "1"}, W: []string{"0", "1", "1"}}, false},
		{Instance{V: []string{"0", "0"}, W: []string{"0", "0"}}, true},
		{Instance{}, true},
	}
	for i, c := range cases {
		if got := MultisetEquality(c.in); got != c.want {
			t.Fatalf("case %d: MultisetEquality = %v, want %v", i, got, c.want)
		}
	}
}

func TestCheckSort(t *testing.T) {
	cases := []struct {
		in   Instance
		want bool
	}{
		{Instance{V: []string{"10", "01"}, W: []string{"01", "10"}}, true},
		{Instance{V: []string{"10", "01"}, W: []string{"10", "01"}}, false}, // not sorted
		{Instance{V: []string{"10", "01"}, W: []string{"01", "11"}}, false}, // not the same multiset
		{Instance{V: []string{"0", "0"}, W: []string{"0", "0"}}, true},      // duplicates fine
		{Instance{}, true},
	}
	for i, c := range cases {
		if got := CheckSort(c.in); got != c.want {
			t.Fatalf("case %d: CheckSort = %v, want %v", i, got, c.want)
		}
	}
}

func TestGeneratorsAgainstDeciders(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	problems := []Problem{SetEqualityProblem, MultisetEqualityProblem, CheckSortProblem}
	for _, p := range problems {
		for trial := 0; trial < 50; trial++ {
			m := 1 + rng.Intn(20)
			n := 1 + rng.Intn(12)
			if p == SetEqualityProblem && n < 6 {
				n = 6 // need room for m distinct strings
			}
			yes := Gen(p, true, m, n, rng)
			if !Decide(p, yes) {
				t.Fatalf("%v: generated yes-instance rejected: %+v", p, yes)
			}
			no := Gen(p, false, m, n, rng)
			if Decide(p, no) {
				t.Fatalf("%v: generated no-instance accepted: %+v", p, no)
			}
		}
	}
}

func TestSortedCopy(t *testing.T) {
	in := Instance{V: []string{"11", "00", "10"}}
	got := SortedCopy(in)
	want := []string{"00", "10", "11"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedCopy = %v", got)
		}
	}
	// Original untouched.
	if in.V[0] != "11" {
		t.Fatal("SortedCopy mutated input")
	}
}

func TestProblemString(t *testing.T) {
	if SetEqualityProblem.String() != "SET-EQUALITY" ||
		MultisetEqualityProblem.String() != "MULTISET-EQUALITY" ||
		CheckSortProblem.String() != "CHECK-SORT" {
		t.Fatal("Problem.String mismatch")
	}
	if !strings.Contains(Problem(99).String(), "99") {
		t.Fatal("unknown problem String")
	}
}

func TestValidateRejectsMismatchedHalves(t *testing.T) {
	in := Instance{V: []string{"0"}, W: []string{}}
	if err := in.Validate(); err == nil {
		t.Fatal("Validate accepted mismatched halves")
	}
}

// Property: Encode/Decode is the identity on random valid instances.
func TestQuickEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(10)
		n := r.Intn(8) // length-0 values are legal
		in := Instance{V: make([]string, m), W: make([]string, m)}
		for i := 0; i < m; i++ {
			in.V[i] = randomBitString(n, r)
			in.W[i] = randomBitString(n, r)
		}
		dec, err := Decode(in.Encode())
		if err != nil {
			return false
		}
		if dec.M() != m {
			return false
		}
		for i := 0; i < m; i++ {
			if dec.V[i] != in.V[i] || dec.W[i] != in.W[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rng, MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: multiset equality implies set equality; checksort implies
// multiset equality.
func TestQuickProblemImplications(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(8)
		n := 1 + rng.Intn(3)
		in := Instance{V: make([]string, m), W: make([]string, m)}
		for i := 0; i < m; i++ {
			in.V[i] = randomBitString(n, rng)
			in.W[i] = randomBitString(n, rng)
		}
		if MultisetEquality(in) && !SetEquality(in) {
			t.Fatalf("multiset equal but not set equal: %+v", in)
		}
		if CheckSort(in) && !MultisetEquality(in) {
			t.Fatalf("checksort holds but multisets differ: %+v", in)
		}
	}
}
