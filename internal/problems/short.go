package problems

import (
	"fmt"
	"math/bits"
	"strings"

	"extmem/internal/perm"
)

// ShortReduction implements the reduction f of the proof of
// Corollary 7 (Appendix E): it maps an instance of CHECK-ϕ with
// values of length n to an instance of the SHORT versions of
// (MULTI)SET-EQUALITY and CHECK-SORT whose values have length
// 5·log₂ m.
//
// Each value v_i is subdivided into µ = ⌈n / log₂ m⌉ consecutive
// blocks v_{i,1}, …, v_{i,µ} of length log₂ m (the last block padded
// with leading zeros), and the output pairs are
//
//	w_{i,j}  = BIN(ϕ(i)) BIN'(j) v_{i,j}
//	w'_{i,j} = BIN(i)    BIN'(j) v'_{i,j}
//
// with BIN the log₂ m-bit binary representation and BIN' the
// 3·log₂ m-bit one. The output is a yes-instance of
// SHORT-(MULTI)SET-EQUALITY and of SHORT-CHECK-SORT exactly when the
// input is a yes-instance of CHECK-ϕ.
//
// m must be a power of two ≥ 2 and µ must fit in 3·log₂ m bits.
func ShortReduction(in Instance, phi perm.Perm) (Instance, error) {
	m := len(in.V)
	if m < 2 || m&(m-1) != 0 {
		return Instance{}, fmt.Errorf("problems: ShortReduction needs m a power of two >= 2, got %d", m)
	}
	if len(in.W) != m || len(phi) != m {
		return Instance{}, fmt.Errorf("problems: ShortReduction length mismatch: |V|=%d |W|=%d |phi|=%d",
			len(in.V), len(in.W), len(phi))
	}
	lg := bits.Len(uint(m)) - 1 // log2 m >= 1
	n := len(in.V[0])
	for _, half := range [][]string{in.V, in.W} {
		for _, v := range half {
			if len(v) != n {
				return Instance{}, fmt.Errorf("problems: ShortReduction needs equal-length values")
			}
		}
	}
	mu := (n + lg - 1) / lg // number of blocks per value
	if mu == 0 {
		mu = 1
	}
	// The paper uses a 3·log₂ m-bit block index, which suffices for
	// its canonical n = m³. For other n we widen the index field just
	// enough; every property of the reduction is preserved.
	idxBits := 3 * lg
	for mu >= 1<<uint(idxBits) {
		idxBits++
	}

	out := Instance{
		V: make([]string, 0, m*mu),
		W: make([]string, 0, m*mu),
	}
	for i := 0; i < m; i++ {
		blocksV := splitBlocks(in.V[i], lg, mu)
		blocksW := splitBlocks(in.W[i], lg, mu)
		for j := 0; j < mu; j++ {
			out.V = append(out.V, binStr(phi[i], lg)+binStr(j, idxBits)+blocksV[j])
			out.W = append(out.W, binStr(i, lg)+binStr(j, idxBits)+blocksW[j])
		}
	}
	return out, nil
}

// splitBlocks cuts v into mu blocks of length blockLen, padding the
// final block with leading zeros (as in the paper's construction).
func splitBlocks(v string, blockLen, mu int) []string {
	blocks := make([]string, 0, mu)
	for j := 0; j < mu; j++ {
		lo := j * blockLen
		hi := lo + blockLen
		if hi > len(v) {
			hi = len(v)
		}
		if lo > len(v) {
			lo = len(v)
		}
		block := v[lo:hi]
		if len(block) < blockLen {
			block = strings.Repeat("0", blockLen-len(block)) + block
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// binStr returns the w-bit binary representation of x as a
// 0-1-string.
func binStr(x, w int) string {
	b := make([]byte, w)
	for i := w - 1; i >= 0; i-- {
		b[i] = '0' + byte(x&1)
		x >>= 1
	}
	return string(b)
}

// ShortValueLength returns the value length 5·log₂ m of the SHORT
// instance produced by ShortReduction for a given m, valid whenever
// the number of blocks fits in 3·log₂ m bits (in particular for the
// paper's canonical n = m³).
func ShortValueLength(m int) int {
	return 5 * (bits.Len(uint(m)) - 1)
}

// IsShortInstance reports whether every value of in has length at most
// c·log₂ m' where m' is the instance's own pair count — the defining
// property of the SHORT problem versions (the paper allows any
// constant c ≥ 2; we check with the given c).
func IsShortInstance(in Instance, c float64) bool {
	m := len(in.V)
	if m == 0 {
		return true
	}
	limit := int(c * float64(bits.Len(uint(m))))
	for _, half := range [][]string{in.V, in.W} {
		for _, v := range half {
			if len(v) > limit {
				return false
			}
		}
	}
	return true
}
