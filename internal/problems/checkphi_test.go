package problems

import (
	"math/rand"
	"testing"
)

func TestNewCheckPhiGenValidation(t *testing.T) {
	if _, err := NewCheckPhiGen(3, 10); err == nil {
		t.Fatal("non-power-of-two m accepted")
	}
	if _, err := NewCheckPhiGen(8, 2); err == nil {
		t.Fatal("n < log2(m) accepted")
	}
	if _, err := NewCheckPhiGen(8, 3); err != nil {
		t.Fatalf("n = log2(m) rejected: %v", err)
	}
}

func TestCheckPhiYesInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, err := NewCheckPhiGen(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		in := g.Yes(rng)
		if !g.Decide(in) {
			t.Fatalf("yes-instance rejected by CHECK-ϕ: %+v", in)
		}
		if !g.IsStructured(in) {
			t.Fatalf("yes-instance not structured: %+v", in)
		}
	}
}

func TestCheckPhiNoInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g, err := NewCheckPhiGen(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		in := g.No(rng)
		if g.Decide(in) {
			t.Fatalf("no-instance accepted by CHECK-ϕ: %+v", in)
		}
		if !g.IsStructured(in) {
			t.Fatalf("no-instance left the structured input space: %+v", in)
		}
	}
}

func TestCheckPhiNoPanicsOnSingletonIntervals(t *testing.T) {
	g, err := NewCheckPhiGen(4, 2) // n = log2(m): intervals are singletons
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("No() on singleton intervals did not panic")
		}
	}()
	g.No(rand.New(rand.NewSource(1)))
}

// The observation that proves Theorem 6 from Lemma 22: on structured
// CHECK-ϕ inputs, all four problems coincide.
func TestProblemsCoincideOnStructuredInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, err := NewCheckPhiGen(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		var in Instance
		if trial%2 == 0 {
			in = g.Yes(rng)
		} else {
			in = g.No(rng)
		}
		want := g.Decide(in)
		if got := SetEquality(in); got != want {
			t.Fatalf("SET-EQUALITY = %v, CHECK-ϕ = %v on %+v", got, want, in)
		}
		if got := MultisetEquality(in); got != want {
			t.Fatalf("MULTISET-EQUALITY = %v, CHECK-ϕ = %v on %+v", got, want, in)
		}
		if got := CheckSort(in); got != want {
			t.Fatalf("CHECK-SORT = %v, CHECK-ϕ = %v on %+v", got, want, in)
		}
	}
}

func TestIntervalDecoding(t *testing.T) {
	g, err := NewCheckPhiGen(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{"0000": 0, "0111": 1, "1000": 2, "1111": 3}
	for v, want := range cases {
		if got := g.Interval(v); got != want {
			t.Fatalf("Interval(%q) = %d, want %d", v, got, want)
		}
	}
}

func TestCheckPhiTrivialM1(t *testing.T) {
	g, err := NewCheckPhiGen(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	in := g.Yes(rng)
	if !g.Decide(in) || in.V[0] != in.W[0] {
		t.Fatalf("m=1 yes-instance wrong: %+v", in)
	}
}

func TestPaperN(t *testing.T) {
	g, err := NewCheckPhiGen(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.PaperN() != 64 {
		t.Fatalf("PaperN = %d, want 64", g.PaperN())
	}
}

func TestCheckPhiMismatchedLengths(t *testing.T) {
	g, _ := NewCheckPhiGen(4, 4)
	if CheckPhi(Instance{V: []string{"0"}, W: []string{"0", "1"}}, g.Phi) {
		t.Fatal("CheckPhi accepted mismatched instance")
	}
}
