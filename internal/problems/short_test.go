package problems

import (
	"math/rand"
	"testing"

	"extmem/internal/perm"
)

func TestShortReductionPreservesYes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range []int{2, 4, 8, 16} {
		g, err := NewCheckPhiGen(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			in := g.Yes(rng)
			out, err := ShortReduction(in, g.Phi)
			if err != nil {
				t.Fatal(err)
			}
			if !MultisetEquality(out) {
				t.Fatalf("m=%d: yes-instance mapped to multiset-unequal output", m)
			}
			if !SetEquality(out) {
				t.Fatalf("m=%d: yes-instance mapped to set-unequal output", m)
			}
			if !CheckSort(out) {
				t.Fatalf("m=%d: yes-instance mapped to unsorted output", m)
			}
		}
	}
}

func TestShortReductionPreservesNo(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, m := range []int{2, 4, 8, 16} {
		g, err := NewCheckPhiGen(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			in := g.No(rng)
			out, err := ShortReduction(in, g.Phi)
			if err != nil {
				t.Fatal(err)
			}
			if MultisetEquality(out) {
				t.Fatalf("m=%d: no-instance mapped to multiset-equal output", m)
			}
			if SetEquality(out) {
				t.Fatalf("m=%d: no-instance mapped to set-equal output", m)
			}
			if CheckSort(out) {
				t.Fatalf("m=%d: no-instance mapped to checksort-yes output", m)
			}
		}
	}
}

func TestShortReductionOutputIsShort(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g, err := NewCheckPhiGen(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	in := g.Yes(rng)
	out, err := ShortReduction(in, g.Phi)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := ShortValueLength(16) // 5 * 4 = 20
	if wantLen != 20 {
		t.Fatalf("ShortValueLength(16) = %d, want 20", wantLen)
	}
	for _, v := range append(append([]string{}, out.V...), out.W...) {
		if len(v) != wantLen {
			t.Fatalf("output value %q has length %d, want %d", v, len(v), wantLen)
		}
	}
	// The defining SHORT property: values of length ≤ c·log2(m') for
	// the output's own pair count m'. Output m' = m·µ = 16·4 = 64,
	// log2(64)+1 bits length = 7; with c = 3, limit = 21 ≥ 20.
	if !IsShortInstance(out, 3) {
		t.Fatal("output is not a SHORT instance at c=3")
	}
}

func TestShortReductionSizeLinear(t *testing.T) {
	// Property (1) of the reduction: |f(v)| = Θ(|v|).
	rng := rand.New(rand.NewSource(34))
	g, err := NewCheckPhiGen(8, 24)
	if err != nil {
		t.Fatal(err)
	}
	in := g.Yes(rng)
	out, err := ShortReduction(in, g.Phi)
	if err != nil {
		t.Fatal(err)
	}
	// µ = 24/3 = 8 blocks, each block becomes a value of length 15:
	// output size = 2·(8·8)·(15+1) = 2048; input size = 2·8·25 = 400.
	if out.Size() != 2048 {
		t.Fatalf("output size = %d, want 2048", out.Size())
	}
	if out.Size() > 8*in.Size() {
		t.Fatalf("output size %d not linear in input size %d", out.Size(), in.Size())
	}
}

func TestShortReductionErrors(t *testing.T) {
	phi := perm.BitReversal(4)
	if _, err := ShortReduction(Instance{V: []string{"0", "1", "0"}, W: []string{"0", "1", "0"}}, perm.Identity(3)); err == nil {
		t.Fatal("non-power-of-two m accepted")
	}
	if _, err := ShortReduction(Instance{V: []string{"00", "01", "10", "11"}, W: []string{"00", "01"}}, phi); err == nil {
		t.Fatal("mismatched halves accepted")
	}
	if _, err := ShortReduction(Instance{
		V: []string{"00", "01", "10", "1"},
		W: []string{"00", "01", "10", "11"},
	}, phi); err == nil {
		t.Fatal("unequal value lengths accepted")
	}
}

func TestSplitBlocksPadding(t *testing.T) {
	blocks := splitBlocks("10110", 2, 3)
	want := []string{"10", "11", "00"} // last block "0" padded to "00"
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("splitBlocks = %v, want %v", blocks, want)
		}
	}
}

func TestBinStr(t *testing.T) {
	cases := []struct {
		x, w int
		want string
	}{
		{0, 3, "000"},
		{5, 3, "101"},
		{5, 5, "00101"},
		{7, 3, "111"},
	}
	for _, c := range cases {
		if got := binStr(c.x, c.w); got != c.want {
			t.Fatalf("binStr(%d,%d) = %q, want %q", c.x, c.w, got, c.want)
		}
	}
}

func TestIsShortInstanceEmpty(t *testing.T) {
	if !IsShortInstance(Instance{}, 2) {
		t.Fatal("empty instance should be SHORT")
	}
}
