// Package problems defines the decision problems of Section 3 of the
// paper — SET-EQUALITY, MULTISET-EQUALITY, CHECK-SORT and the CHECK-ϕ
// problem of Lemma 22 — together with their input encoding, reference
// (unrestricted-model) deciders, and instance generators.
//
// An input instance is a string over the alphabet {0,1,#} of the form
//
//	v1# v2# … vm# v'1# v'2# … v'm#
//
// where the v_i and v'_i are 0-1-strings. The input size is
// N = 2m + Σ(|v_i| + |v'_i|), so for fixed-length strings of length n,
// N = 2m(n+1).
package problems

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"extmem/internal/perm"
)

// Separator is the delimiter symbol between values in the encoding.
const Separator byte = '#'

// A Problem identifies one of the paper's decision problems.
type Problem int

// The decision problems of Section 3.
const (
	SetEqualityProblem Problem = iota
	MultisetEqualityProblem
	CheckSortProblem
)

func (p Problem) String() string {
	switch p {
	case SetEqualityProblem:
		return "SET-EQUALITY"
	case MultisetEqualityProblem:
		return "MULTISET-EQUALITY"
	case CheckSortProblem:
		return "CHECK-SORT"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// An Instance holds the two halves of an input: V = (v_1, …, v_m) and
// W = (v'_1, …, v'_m). Values are 0-1-strings.
type Instance struct {
	V []string
	W []string
}

// ErrEncoding is returned when decoding an ill-formed input string.
var ErrEncoding = errors.New("problems: ill-formed instance encoding")

// M returns the number m of values in each half.
func (in Instance) M() int { return len(in.V) }

// Size returns the input size N = 2m + Σ(|v_i| + |v'_i|).
func (in Instance) Size() int {
	n := 2 * len(in.V)
	for _, v := range in.V {
		n += len(v)
	}
	for _, w := range in.W {
		n += len(w)
	}
	return n
}

// Validate checks that both halves have the same length and that all
// values are 0-1-strings.
func (in Instance) Validate() error {
	if len(in.V) != len(in.W) {
		return fmt.Errorf("%w: %d values vs %d values", ErrEncoding, len(in.V), len(in.W))
	}
	for _, half := range [][]string{in.V, in.W} {
		for _, v := range half {
			for i := 0; i < len(v); i++ {
				if v[i] != '0' && v[i] != '1' {
					return fmt.Errorf("%w: value %q contains %q", ErrEncoding, v, v[i])
				}
			}
		}
	}
	return nil
}

// Encode renders the instance in the paper's input format
// v1#…vm#v'1#…v'm#.
func (in Instance) Encode() []byte {
	var b strings.Builder
	b.Grow(in.Size())
	for _, v := range in.V {
		b.WriteString(v)
		b.WriteByte(Separator)
	}
	for _, w := range in.W {
		b.WriteString(w)
		b.WriteByte(Separator)
	}
	return []byte(b.String())
}

// Decode parses an encoded instance. The encoding must contain an even
// number 2m of '#'-terminated values.
func Decode(data []byte) (Instance, error) {
	if len(data) == 0 {
		return Instance{}, nil
	}
	if data[len(data)-1] != Separator {
		return Instance{}, fmt.Errorf("%w: input does not end with %q", ErrEncoding, Separator)
	}
	parts := strings.Split(string(data[:len(data)-1]), string(Separator))
	if len(parts)%2 != 0 {
		return Instance{}, fmt.Errorf("%w: odd number of values (%d)", ErrEncoding, len(parts))
	}
	m := len(parts) / 2
	in := Instance{V: parts[:m], W: parts[m:]}
	if err := in.Validate(); err != nil {
		return Instance{}, err
	}
	return in, nil
}

// SetEquality decides whether {v_1,…,v_m} = {v'_1,…,v'_m} as sets.
func SetEquality(in Instance) bool {
	a := map[string]bool{}
	b := map[string]bool{}
	for _, v := range in.V {
		a[v] = true
	}
	for _, w := range in.W {
		b[w] = true
	}
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// MultisetEquality decides whether the two halves are equal as
// multisets (same elements with the same multiplicities).
func MultisetEquality(in Instance) bool {
	if len(in.V) != len(in.W) {
		return false
	}
	counts := map[string]int{}
	for _, v := range in.V {
		counts[v]++
	}
	for _, w := range in.W {
		counts[w]--
		if counts[w] < 0 {
			return false
		}
	}
	return true
}

// Less is the lexicographic order on 0-1-strings used by CHECK-SORT
// (ascending). Shorter strings that are prefixes compare smaller, as
// in standard lexicographic order on strings.
func Less(a, b string) bool { return a < b }

// CheckSort decides whether W is the lexicographically ascending
// sorted version of V (as a sequence, i.e. equal as multisets and W
// sorted).
func CheckSort(in Instance) bool {
	if !MultisetEquality(in) {
		return false
	}
	return sort.SliceIsSorted(in.W, func(i, j int) bool { return Less(in.W[i], in.W[j]) })
}

// Decide runs the reference decider for the given problem.
func Decide(p Problem, in Instance) bool {
	switch p {
	case SetEqualityProblem:
		return SetEquality(in)
	case MultisetEqualityProblem:
		return MultisetEquality(in)
	case CheckSortProblem:
		return CheckSort(in)
	default:
		panic(fmt.Sprintf("problems: unknown problem %d", int(p)))
	}
}

// CheckPhi decides the CHECK-ϕ problem of Lemma 22: whether
// (v_1,…,v_m) = (v'_ϕ(1),…,v'_ϕ(m)) for the permutation phi (0-based).
func CheckPhi(in Instance, phi perm.Perm) bool {
	if len(in.V) != len(in.W) || len(in.V) != len(phi) {
		return false
	}
	for i := range in.V {
		if in.V[i] != in.W[phi[i]] {
			return false
		}
	}
	return true
}

// SortedCopy returns the values of V sorted ascending — the correct
// output of the sorting problem (Corollary 10).
func SortedCopy(in Instance) []string {
	out := append([]string(nil), in.V...)
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// randomBitString returns a uniformly random 0-1-string of length n.
func randomBitString(n int, rng *rand.Rand) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0' + byte(rng.Intn(2))
	}
	return string(b)
}

// GenMultisetYes returns a yes-instance of MULTISET-EQUALITY with m
// values of length n: W is a random shuffle of V. Duplicates are
// allowed (and likely for small n).
func GenMultisetYes(m, n int, rng *rand.Rand) Instance {
	v := make([]string, m)
	for i := range v {
		v[i] = randomBitString(n, rng)
	}
	w := append([]string(nil), v...)
	rng.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] })
	return Instance{V: v, W: w}
}

// GenMultisetNo returns a no-instance of MULTISET-EQUALITY: a shuffle
// of V with a single bit of a single element flipped. For n ≥ 1 and
// m ≥ 1 the result differs from V as a multiset unless the flip
// recreates an existing element with matching multiplicity; the
// generator retries until the instance is genuinely unequal.
func GenMultisetNo(m, n int, rng *rand.Rand) Instance {
	if m < 1 || n < 1 {
		panic("problems: GenMultisetNo requires m, n >= 1")
	}
	for {
		in := GenMultisetYes(m, n, rng)
		i := rng.Intn(m)
		j := rng.Intn(n)
		b := []byte(in.W[i])
		b[j] ^= 1 // '0' ^ 1 = '1' and vice versa
		in.W[i] = string(b)
		if !MultisetEquality(in) {
			return in
		}
	}
}

// GenSetYes returns a yes-instance of SET-EQUALITY with m distinct
// values of length n, W a shuffle of V. It panics if 2^n < m.
func GenSetYes(m, n int, rng *rand.Rand) Instance {
	if n < 63 && m > 1<<uint(n) {
		panic(fmt.Sprintf("problems: cannot draw %d distinct strings of length %d", m, n))
	}
	seen := map[string]bool{}
	v := make([]string, 0, m)
	for len(v) < m {
		s := randomBitString(n, rng)
		if !seen[s] {
			seen[s] = true
			v = append(v, s)
		}
	}
	w := append([]string(nil), v...)
	rng.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] })
	return Instance{V: v, W: w}
}

// GenSetNo returns a no-instance of SET-EQUALITY: one element of W is
// replaced by a fresh string outside the set.
func GenSetNo(m, n int, rng *rand.Rand) Instance {
	in := GenSetYes(m, n, rng)
	members := map[string]bool{}
	for _, v := range in.V {
		members[v] = true
	}
	for {
		s := randomBitString(n, rng)
		if !members[s] {
			in.W[rng.Intn(m)] = s
			if !SetEquality(in) {
				return in
			}
		}
	}
}

// GenCheckSortYes returns a yes-instance of CHECK-SORT: W is the
// ascending sort of a random V.
func GenCheckSortYes(m, n int, rng *rand.Rand) Instance {
	in := GenMultisetYes(m, n, rng)
	in.W = SortedCopy(in)
	return in
}

// GenCheckSortNo returns a no-instance of CHECK-SORT, either by
// swapping two unequal adjacent elements of the sorted half (breaking
// sortedness) or by flipping a bit (breaking multiset equality),
// chosen at random.
func GenCheckSortNo(m, n int, rng *rand.Rand) Instance {
	if m < 1 || n < 1 {
		panic("problems: GenCheckSortNo requires m, n >= 1")
	}
	for {
		in := GenCheckSortYes(m, n, rng)
		if rng.Intn(2) == 0 && m >= 2 {
			i := rng.Intn(m - 1)
			in.W[i], in.W[i+1] = in.W[i+1], in.W[i]
		} else {
			i := rng.Intn(m)
			j := rng.Intn(n)
			b := []byte(in.W[i])
			b[j] ^= 1
			in.W[i] = string(b)
		}
		if !CheckSort(in) {
			return in
		}
	}
}

// Gen returns a yes- or no-instance for the given problem.
func Gen(p Problem, yes bool, m, n int, rng *rand.Rand) Instance {
	switch p {
	case SetEqualityProblem:
		if yes {
			return GenSetYes(m, n, rng)
		}
		return GenSetNo(m, n, rng)
	case MultisetEqualityProblem:
		if yes {
			return GenMultisetYes(m, n, rng)
		}
		return GenMultisetNo(m, n, rng)
	case CheckSortProblem:
		if yes {
			return GenCheckSortYes(m, n, rng)
		}
		return GenCheckSortNo(m, n, rng)
	default:
		panic(fmt.Sprintf("problems: unknown problem %d", int(p)))
	}
}
