package problems

import (
	"fmt"
	"math/bits"
	"math/rand"

	"extmem/internal/perm"
)

// CheckPhiGen generates instances of the CHECK-ϕ problem of Lemma 22.
//
// For m a power of two, the set I = {0,1}^n (identified with
// {0, …, 2^n−1}) is divided into m consecutive intervals I_1, …, I_m
// of equal length; an instance draws v_i from I_{ϕ(i)} and v'_i from
// I_i, where ϕ is the bit-reversal permutation of Remark 20. The
// yes-instances satisfy (v_1,…,v_m) = (v'_ϕ(1),…,v'_ϕ(m)).
//
// On such structured inputs the four problems CHECK-ϕ, SET-EQUALITY,
// MULTISET-EQUALITY and CHECK-SORT coincide (the observation that
// proves Theorem 6 from Lemma 22): the v'_i are in ascending interval
// order, all values are distinct across intervals, and equality can
// only happen via the pairing ϕ.
type CheckPhiGen struct {
	M   int       // number of values per half (power of two)
	N   int       // value length in bits, N ≥ log2(M)
	Phi perm.Perm // the permutation ϕ (0-based)

	prefixBits int
}

// NewCheckPhiGen returns a generator for parameters m (a power of
// two) and value length n ≥ log₂ m, with ϕ the bit-reversal
// permutation.
func NewCheckPhiGen(m, n int) (*CheckPhiGen, error) {
	if m <= 0 || m&(m-1) != 0 {
		return nil, fmt.Errorf("problems: CHECK-ϕ needs m a positive power of two, got %d", m)
	}
	b := bits.Len(uint(m)) - 1
	if n < b {
		return nil, fmt.Errorf("problems: value length n = %d < log2(m) = %d", n, b)
	}
	return &CheckPhiGen{M: m, N: n, Phi: perm.BitReversal(m), prefixBits: b}, nil
}

// drawFromInterval returns a uniformly random 0-1-string of length
// g.N whose leading prefixBits encode the interval index j (0-based),
// i.e. an element of I_{j+1} in the paper's 1-based notation.
func (g *CheckPhiGen) drawFromInterval(j int, rng *rand.Rand) string {
	b := make([]byte, g.N)
	for i := 0; i < g.prefixBits; i++ {
		if j&(1<<uint(g.prefixBits-1-i)) != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	for i := g.prefixBits; i < g.N; i++ {
		b[i] = '0' + byte(rng.Intn(2))
	}
	return string(b)
}

// Interval returns the interval index (0-based) that the value v
// belongs to, by decoding its prefix bits.
func (g *CheckPhiGen) Interval(v string) int {
	j := 0
	for i := 0; i < g.prefixBits; i++ {
		j <<= 1
		if v[i] == '1' {
			j |= 1
		}
	}
	return j
}

// Yes returns a yes-instance: v_i ∈ I_{ϕ(i)} random, and v'_{ϕ(i)} =
// v_i, so v'_i ∈ I_i as required and CHECK-ϕ holds.
func (g *CheckPhiGen) Yes(rng *rand.Rand) Instance {
	v := make([]string, g.M)
	w := make([]string, g.M)
	for i := 0; i < g.M; i++ {
		v[i] = g.drawFromInterval(g.Phi[i], rng)
		w[g.Phi[i]] = v[i]
	}
	return Instance{V: v, W: w}
}

// No returns a no-instance: like Yes but with at least one position
// i where v'_ϕ(i) differs from v_i inside the same interval (so the
// instance remains in the structured input space I_{ϕ(1)} × … × I_m).
// Requires N > log₂(M) so that each interval has at least two
// elements.
func (g *CheckPhiGen) No(rng *rand.Rand) Instance {
	if g.N == g.prefixBits {
		panic("problems: CHECK-ϕ no-instances need n > log2(m); intervals are singletons")
	}
	in := g.Yes(rng)
	i := rng.Intn(g.M)
	for {
		repl := g.drawFromInterval(g.Phi[i], rng)
		if repl != in.V[i] {
			in.W[g.Phi[i]] = repl
			return in
		}
	}
}

// IsStructured reports whether the instance lies in the input space
// I_{ϕ(1)} × … × I_{ϕ(m)} × I_1 × … × I_m of Lemma 21.
func (g *CheckPhiGen) IsStructured(in Instance) bool {
	if len(in.V) != g.M || len(in.W) != g.M {
		return false
	}
	for i := 0; i < g.M; i++ {
		if len(in.V[i]) != g.N || len(in.W[i]) != g.N {
			return false
		}
		if g.Interval(in.V[i]) != g.Phi[i] {
			return false
		}
		if g.Interval(in.W[i]) != i {
			return false
		}
	}
	return true
}

// Decide decides CHECK-ϕ for this generator's ϕ.
func (g *CheckPhiGen) Decide(in Instance) bool { return CheckPhi(in, g.Phi) }

// PaperN returns the paper's canonical value length n = m³ for this
// generator's m (Lemma 22 sets n = m³). Generators in experiments use
// smaller n for tractability; this reports the canonical value.
func (g *CheckPhiGen) PaperN() int { return g.M * g.M * g.M }
