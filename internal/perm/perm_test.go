package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	for i, v := range p {
		if v != i {
			t.Fatalf("Identity[%d] = %d", i, v)
		}
	}
	if !p.IsValid() {
		t.Fatal("identity not valid")
	}
	if Sortedness(p) != 5 {
		t.Fatalf("Sortedness(id) = %d, want 5", Sortedness(p))
	}
}

func TestReverse(t *testing.T) {
	p := Reverse(4)
	want := Perm{3, 2, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Reverse = %v, want %v", p, want)
		}
	}
	if Sortedness(p) != 4 {
		t.Fatalf("Sortedness(reverse) = %d, want 4", Sortedness(p))
	}
}

func TestBitReversalSmall(t *testing.T) {
	cases := []struct {
		m    int
		want Perm
	}{
		{1, Perm{0}},
		{2, Perm{0, 1}},
		{4, Perm{0, 2, 1, 3}},
		{8, Perm{0, 4, 2, 6, 1, 5, 3, 7}},
	}
	for _, c := range cases {
		got := BitReversal(c.m)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("BitReversal(%d) = %v, want %v", c.m, got, c.want)
			}
		}
	}
}

func TestBitReversalIsInvolution(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8, 16, 64, 1024} {
		p := BitReversal(m)
		if !p.IsValid() {
			t.Fatalf("BitReversal(%d) invalid", m)
		}
		pp := p.Compose(p)
		for i, v := range pp {
			if v != i {
				t.Fatalf("BitReversal(%d) is not an involution at %d", m, i)
			}
		}
	}
}

func TestBitReversalPanicsOnNonPowerOfTwo(t *testing.T) {
	for _, m := range []int{0, 3, 6, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BitReversal(%d) did not panic", m)
				}
			}()
			BitReversal(m)
		}()
	}
}

// Remark 20: sortedness(ϕ_m) ≤ 2√m − 1.
func TestBitReversalSortednessBound(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8, 16, 32, 64, 256, 1024, 4096, 1 << 16} {
		got := Sortedness(BitReversal(m))
		bound := BitReversalBound(m)
		if got > bound {
			t.Fatalf("sortedness(ϕ_%d) = %d > bound %d", m, got, bound)
		}
	}
}

// Erdős–Szekeres: every permutation has sortedness ≥ ⌈√m⌉.
func TestErdosSzekeresOnRandomPerms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(500)
		p := Random(m, rng)
		if got, want := Sortedness(p), ErdosSzekeresFloor(m); got < want {
			t.Fatalf("sortedness = %d < ES floor %d for m=%d", got, want, m)
		}
	}
}

func TestLIS(t *testing.T) {
	cases := []struct {
		xs   []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 1},
		{[]int{1, 2, 3}, 3},
		{[]int{3, 2, 1}, 1},
		{[]int{2, 1, 4, 3, 6, 5}, 3},
		{[]int{10, 9, 2, 5, 3, 7, 101, 18}, 4},
	}
	for _, c := range cases {
		if got := LIS(c.xs); got != c.want {
			t.Fatalf("LIS(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestLDS(t *testing.T) {
	// Strictly decreasing subsequences of (3,1,4,1,5,9,2,6) have
	// length at most 2 (e.g. 9,2).
	if got := LDS([]int{3, 1, 4, 1, 5, 9, 2, 6}); got != 2 {
		t.Fatalf("LDS = %d, want 2", got)
	}
	if got := LDS([]int{9, 7, 5, 3}); got != 4 {
		t.Fatalf("LDS = %d, want 4", got)
	}
}

func TestInverse(t *testing.T) {
	p := Perm{2, 0, 1}
	inv := p.Inverse()
	want := Perm{1, 2, 0}
	for i := range want {
		if inv[i] != want[i] {
			t.Fatalf("Inverse = %v, want %v", inv, want)
		}
	}
}

func TestInversePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inverse of invalid permutation did not panic")
		}
	}()
	Perm{0, 0}.Inverse()
}

func TestApply(t *testing.T) {
	p := Perm{2, 0, 1}
	got := Apply(p, []string{"a", "b", "c"})
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", got, want)
		}
	}
}

func TestApplyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with mismatched lengths did not panic")
		}
	}()
	Apply(Perm{0}, []int{1, 2})
}

func TestComposePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compose with mismatched sizes did not panic")
		}
	}()
	Perm{0}.Compose(Perm{0, 1})
}

func TestIsValidRejects(t *testing.T) {
	bad := []Perm{{0, 0}, {1, 2}, {-1, 0}}
	for _, p := range bad {
		if p.IsValid() {
			t.Fatalf("%v reported valid", p)
		}
	}
}

// Property: for random valid permutations, p.Inverse().Compose(p) is
// the identity and applying then un-applying round-trips.
func TestQuickInverseComposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, sz uint8) bool {
		m := int(sz%64) + 1
		p := Random(m, rand.New(rand.NewSource(seed)))
		id := p.Inverse().Compose(p)
		for i, v := range id {
			if v != i {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rng, MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: sortedness is invariant under reversal of the sequence
// order combined with value reversal... more simply: sortedness of p
// equals sortedness of its reverse-read sequence (reading backwards
// swaps ascending and descending subsequences).
func TestQuickSortednessReversalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(200)
		p := Random(m, rng)
		rev := make(Perm, m)
		for i := range p {
			rev[i] = p[m-1-i]
		}
		if Sortedness(p) != Sortedness(rev) {
			t.Fatalf("sortedness not reversal invariant: %d vs %d", Sortedness(p), Sortedness(rev))
		}
	}
}

func TestErdosSzekeresFloor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 4: 2, 5: 3, 9: 3, 10: 4, 16: 4}
	for m, want := range cases {
		if got := ErdosSzekeresFloor(m); got != want {
			t.Fatalf("ErdosSzekeresFloor(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestBitReversalBound(t *testing.T) {
	if got := BitReversalBound(16); got != 7 {
		t.Fatalf("BitReversalBound(16) = %d, want 7", got)
	}
	if got := BitReversalBound(4); got != 3 {
		t.Fatalf("BitReversalBound(4) = %d, want 3", got)
	}
}
