// Package perm implements the permutation machinery of Remark 20 of
// the paper: the bit-reversal permutation ϕ_m with sortedness
// O(√m), and the sortedness measure itself (the length of the longest
// monotone subsequence, Definition 19).
package perm

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
)

// A Perm is a permutation of {0, …, m−1} in one-line notation:
// p[i] is the image of i. (The paper indexes from 1; we use 0-based
// indices throughout and convert at the boundaries.)
type Perm []int

// Identity returns the identity permutation on m elements.
func Identity(m int) Perm {
	p := make(Perm, m)
	for i := range p {
		p[i] = i
	}
	return p
}

// Reverse returns the permutation i ↦ m−1−i.
func Reverse(m int) Perm {
	p := make(Perm, m)
	for i := range p {
		p[i] = m - 1 - i
	}
	return p
}

// Random returns a uniformly random permutation on m elements drawn
// from rng.
func Random(m int, rng *rand.Rand) Perm {
	return Perm(rng.Perm(m))
}

// BitReversal returns the permutation ϕ_m of Remark 20 for m a power
// of two: position i is mapped to the number whose log₂(m)-bit binary
// representation is that of i reversed. Equivalently, (ϕ(0), …,
// ϕ(m−1)) lists 0, …, m−1 sorted lexicographically by reverse binary
// representation. It panics if m is not a positive power of two.
func BitReversal(m int) Perm {
	if m <= 0 || m&(m-1) != 0 {
		panic(fmt.Sprintf("perm: BitReversal requires a positive power of two, got %d", m))
	}
	w := bits.Len(uint(m)) - 1 // log2 m
	p := make(Perm, m)
	for i := 0; i < m; i++ {
		p[i] = int(bits.Reverse64(uint64(i)) >> (64 - w))
	}
	if w == 0 {
		p[0] = 0
	}
	return p
}

// IsValid reports whether p is a permutation of {0, …, len(p)−1}.
func (p Perm) IsValid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the inverse permutation. It panics if p is not
// valid.
func (p Perm) Inverse() Perm {
	if !p.IsValid() {
		panic("perm: Inverse of an invalid permutation")
	}
	inv := make(Perm, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// Compose returns the permutation i ↦ p[q[i]].
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: Compose of permutations with different sizes")
	}
	out := make(Perm, len(p))
	for i := range q {
		out[i] = p[q[i]]
	}
	return out
}

// Apply permutes the slice xs by p: result[i] = xs[p[i]]. The result
// has the property that if xs = (x_0, …, x_{m−1}) then Apply lists
// x_{p(0)}, …, x_{p(m−1)}, matching the paper's I_{ϕ(1)} × … ×
// I_{ϕ(m)} input layout.
func Apply[T any](p Perm, xs []T) []T {
	if len(p) != len(xs) {
		panic("perm: Apply length mismatch")
	}
	out := make([]T, len(xs))
	for i := range p {
		out[i] = xs[p[i]]
	}
	return out
}

// LIS returns the length of the longest strictly increasing
// subsequence of xs, computed by patience sorting in O(m log m).
func LIS(xs []int) int {
	var tails []int // tails[k] = smallest tail of an increasing subsequence of length k+1
	for _, x := range xs {
		k := sort.SearchInts(tails, x)
		if k == len(tails) {
			tails = append(tails, x)
		} else {
			tails[k] = x
		}
	}
	return len(tails)
}

// LDS returns the length of the longest strictly decreasing
// subsequence of xs.
func LDS(xs []int) int {
	neg := make([]int, len(xs))
	for i, x := range xs {
		neg[i] = -x
	}
	return LIS(neg)
}

// Sortedness returns the sortedness of p in the sense of Definition
// 19: the length of the longest subsequence of (p(0), …, p(m−1)) that
// is sorted in either ascending or descending order.
func Sortedness(p Perm) int {
	inc := LIS([]int(p))
	dec := LDS([]int(p))
	if inc > dec {
		return inc
	}
	return dec
}

// ErdosSzekeresFloor returns the Erdős–Szekeres lower bound ⌈√m⌉ on
// the sortedness of any permutation of m elements (LIS·LDS ≥ m).
func ErdosSzekeresFloor(m int) int {
	if m <= 0 {
		return 0
	}
	r := 1
	for r*r < m {
		r++
	}
	return r
}

// BitReversalBound returns the Remark 20 upper bound 2√m − 1 on the
// sortedness of the bit-reversal permutation, for m a power of two.
func BitReversalBound(m int) int {
	r := 0
	for r*r < m {
		r++
	}
	// For m a power of two with even exponent, √m is exact; with odd
	// exponent we round √m up, keeping the bound valid.
	return 2*r - 1
}
