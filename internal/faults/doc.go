// Package faults makes failure an injectable execution shape, exactly
// like sharding and parallelism: a Plan is a deterministic, seed-keyed
// description of which fault (panic, error, delay) strikes which sites
// (trial indices, shard indices, sort invocations) on which attempts,
// and wrapping a trials.Launcher or algorithms.SortLauncher with a
// plan produces a launcher that misbehaves on schedule.
//
// Determinism is the point. The repo's standing invariant is that
// every trial row and every sorted range is a pure function of (seed,
// index); the fault-tolerance layer (trials.Engine panic recovery,
// shard.Fleet/shard.Sort retry and fallback) exploits that purity to
// re-execute failed work with provably identical bytes. A Plan keys
// its strike decision on the same splitmix64 derivation
// (trials.Seed), so whether a site is faulty is itself a pure function
// of (plan seed, site index) — independent of shard count, worker
// count and scheduling. That is what lets the chaos matrix tests
// assert sha256-identical output across {no faults, flaky plan, delay
// plan} × shards × parallelism: recoverable chaos moves attempt
// counts, never bytes.
//
// Modes differ in what they leave behind. Delay and recoverable Panic
// plans are byte-invisible: the run's output is identical to the
// fault-free run. Error plans model the trial itself failing, so the
// struck rows carry deterministic error strings — still identical at
// every shard and worker count, but distinct from the fault-free run.
package faults
