package faults_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/faults"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// The strike schedule is the union of the selectors and a pure
// function of the plan: explicit sites always strike, the Shard
// selector strikes exactly the trials that shard owns under
// shard.Split, rate 0 adds nothing and rate 1 strikes everything.
func TestPlanTargetsUnion(t *testing.T) {
	p := faults.Plan{Mode: faults.Error, Sites: []int{7}, Shard: 1, OfShards: 3}
	got := p.StruckSites(12)
	// shard.Split(12, 3) gives shard 1 the range [4, 8); site 7 is
	// already inside it.
	want := []int{4, 5, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StruckSites = %v, want %v", got, want)
	}

	if got := (faults.Plan{Mode: faults.Error, Rate: 1}).StruckSites(5); len(got) != 5 {
		t.Fatalf("rate 1 struck %v, want all 5", got)
	}
	if got := (faults.Plan{Mode: faults.Error, Sites: []int{2}}).StruckSites(5); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("explicit site struck %v, want [2]", got)
	}
	if got := (faults.Plan{}).StruckSites(5); got != nil {
		t.Fatalf("disabled plan struck %v, want none", got)
	}
}

// Rate-selected schedules are deterministic in the plan seed and
// (virtually always) move when it moves.
func TestPlanScheduleDeterministic(t *testing.T) {
	a := faults.Plan{Seed: 3, Mode: faults.Panic, Rate: 0.3}
	if !reflect.DeepEqual(a.StruckSites(256), a.StruckSites(256)) {
		t.Fatal("same plan produced two schedules")
	}
	b := faults.Plan{Seed: 4, Mode: faults.Panic, Rate: 0.3}
	if reflect.DeepEqual(a.StruckSites(256), b.StruckSites(256)) {
		t.Fatal("independent seeds produced the same 256-site schedule")
	}
	if n := len(a.StruckSites(10000)); n < 2400 || n > 3600 {
		t.Fatalf("rate 0.3 struck %d of 10000 sites", n)
	}
}

// A Flaky plan strikes only the first attempts at a site, then heals.
func TestInjectorFlakyHealing(t *testing.T) {
	inj := faults.Plan{Mode: faults.Error, Sites: []int{0}, Flaky: 2}.Injector(4)
	for attempt := 1; attempt <= 4; attempt++ {
		err := inj.Strike(0)
		if want := attempt <= 2; (err != nil) != want {
			t.Fatalf("attempt %d: err = %v, want error: %v", attempt, err, want)
		}
	}
	if err := inj.Strike(1); err != nil {
		t.Fatalf("untargeted site struck: %v", err)
	}
}

// The injected fault is typed and self-describing.
func TestInjectedError(t *testing.T) {
	inj := faults.Plan{Mode: faults.Error, Sites: []int{3}}.Injector(8)
	err := inj.Strike(3)
	var fe *faults.Injected
	if !errors.As(err, &fe) || fe.Site != 3 || fe.Attempt != 1 || fe.Mode != faults.Error {
		t.Fatalf("Strike = %v (%+v)", err, fe)
	}
	if fe.Error() != "faults: injected error at site 3 (attempt 1)" {
		t.Fatalf("error text %q", fe.Error())
	}
	for m, s := range map[faults.Mode]string{
		faults.None: "none", faults.Panic: "panic", faults.Error: "error", faults.Delay: "delay",
	} {
		if m.String() != s {
			t.Fatalf("Mode(%d).String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

// A panic-mode strike panics with the typed fault, and the engine's
// recovery layer hands it back through TrialPanicError.Unwrap.
func TestPanicModeReachesRecovery(t *testing.T) {
	launch := faults.Plan{Mode: faults.Panic, Sites: []int{1}}.Trials(nil)
	_, _, err := launch(4, 1, nil).Run(nil, func(i int, _ *rand.Rand) trials.Result {
		return trials.Result{Trial: i}
	})
	var fe *faults.Injected
	if !errors.As(err, &fe) || fe.Site != 1 {
		t.Fatalf("err = %v, want injected panic at site 1 through the recovery chain", err)
	}
}

// Error-mode plans record deterministic error rows at exactly the
// struck sites — the same rows at every shard count.
func TestTrialsErrorRowsShardInvariant(t *testing.T) {
	plan := faults.Plan{Seed: 9, Mode: faults.Error, Rate: 0.2}
	struck := plan.StruckSites(30)
	if len(struck) == 0 {
		t.Fatal("rate 0.2 struck nothing at this seed; pick another seed")
	}
	var ref []trials.Result
	for _, shards := range []int{1, 2, 5} {
		launch := plan.Trials(shard.Launch(shards, 2))
		rs, sum, _ := launch(30, 1, nil).Run(nil, func(i int, _ *rand.Rand) trials.Result {
			return trials.Result{Trial: i, Accept: true}
		})
		if sum.Errors != len(struck) {
			t.Fatalf("shards=%d: %d error rows, want %d", shards, sum.Errors, len(struck))
		}
		for _, s := range struck {
			if rs[s].Err == "" || rs[s].Accept {
				t.Fatalf("shards=%d: struck site %d not an error row: %+v", shards, s, rs[s])
			}
		}
		if ref == nil {
			ref = rs
		} else if !reflect.DeepEqual(rs, ref) {
			t.Fatalf("error rows moved across shard counts")
		}
	}
}

// Delay mode stalls and proceeds: no errors, no row movement.
func TestDelayModeIsByteInvisible(t *testing.T) {
	launch := faults.Plan{Mode: faults.Delay, Rate: 1, Delay: time.Microsecond}.Trials(nil)
	rs, sum, err := launch(8, 1, nil).Run(nil, func(i int, _ *rand.Rand) trials.Result {
		return trials.Result{Trial: i, Accept: true}
	})
	if err != nil || sum.Errors != 0 || len(rs) != 8 {
		t.Fatalf("delay plan surfaced: rows=%d errs=%d err=%v", len(rs), sum.Errors, err)
	}
}

// The shard-granularity hook targets shard indices and honors the
// Flaky attempt budget; a disabled plan yields the nil (no-chaos)
// hook.
func TestShardInject(t *testing.T) {
	hook := faults.Plan{Mode: faults.Error, Shard: 2, OfShards: 4, Flaky: 1}.ShardInject()
	if err := hook(1, 1); err != nil {
		t.Fatalf("untargeted shard struck: %v", err)
	}
	if err := hook(2, 1); err == nil {
		t.Fatal("targeted shard not struck on attempt 1")
	}
	if err := hook(2, 2); err != nil {
		t.Fatalf("flaky shard struck past its budget: %v", err)
	}
	if (faults.Plan{}).ShardInject() != nil {
		t.Fatal("disabled plan must return the nil hook")
	}
}

// Whole-sort sites: strikes are numbered in call order, and Panic is
// demoted to Error — there is no recovery layer above a whole sort
// invocation, so the fault must fail the call, not unwind the caller.
func TestSortsDemotesPanicToError(t *testing.T) {
	launch := faults.Plan{Mode: faults.Panic, Sites: []int{0}}.Sorts(nil)
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Sorts let a panic escape: %v", p)
			}
		}()
		// The strike fires before the sorter runs, so the zero sorter
		// and nil machine are never touched.
		return launch(nil, algorithms.Sorter{}, nil, 0, nil)
	}()
	var fe *faults.Injected
	if !errors.As(err, &fe) || fe.Mode != faults.Error || fe.Site != 0 {
		t.Fatalf("first sort call: err = %v, want demoted injected error at site 0", err)
	}
}
