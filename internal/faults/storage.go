package faults

// storage.go extends the chaos plan below the tape layer: instead of
// striking a whole shard attempt on the coordinator (ShardInject),
// TapeWrap plants a failing storage backend inside the shard's own
// machine, so the fault erupts mid-sort from whatever backend
// operation happens to be the AfterOps'th — a model of a disk or
// mapping going bad under an out-of-core run. The failure is a panic
// carrying a *tape.IOError (errors.Is ErrStorage) wrapping an
// *Injected, which shard.Sort's recovery layer converts to a
// *SortPanicError and retries; the coordinator fallback never sees
// the wrapper, so the output bytes are identical regardless.

import (
	"sync/atomic"

	"extmem/internal/tape"
)

// failingBackend counts backend operations across every tape of one
// shard attempt (the counter is shared by all tapes the attempt's
// machine creates) and panics with a *tape.IOError once the budget is
// spent. Subsequent operations fail too — a dead disk stays dead for
// the remainder of the attempt.
type failingBackend struct {
	tape.Backend
	ops *atomic.Int64 // remaining healthy operations, shared per attempt
	err error         // the *Injected delivered inside the IOError
}

// strike burns one operation from the shared budget and erupts when it
// runs out.
func (b *failingBackend) strike(op string) {
	if b.ops.Add(-1) < 0 {
		panic(&tape.IOError{Op: op, Backend: b.Backend.Kind(), Err: b.err})
	}
}

func (b *failingBackend) Cell(i int) byte {
	b.strike("read")
	return b.Backend.Cell(i)
}

func (b *failingBackend) SetCell(i int, c byte) {
	b.strike("write")
	b.Backend.SetCell(i, c)
}

func (b *failingBackend) ReadAt(dst []byte, off int) {
	b.strike("read")
	b.Backend.ReadAt(dst, off)
}

func (b *failingBackend) WriteAt(src []byte, off int) {
	b.strike("write")
	b.Backend.WriteAt(src, off)
}

func (b *failingBackend) IndexByte(c byte, off int) int {
	b.strike("scan")
	return b.Backend.IndexByte(c, off)
}

func (b *failingBackend) Grow(n int) {
	b.strike("grow")
	b.Backend.Grow(n)
}

func (b *failingBackend) Truncate(n int) {
	b.strike("truncate")
	b.Backend.Truncate(n)
}

func (b *failingBackend) Reset() {
	b.strike("reset")
	b.Backend.Reset()
}

// TapeWrap derives shard.Sort's storage-fault hook from the plan: on a
// struck shard's injectable attempts (honoring Flaky), every tape of
// the attempt's machine gets a backend that fails — panics with a
// *tape.IOError wrapping an *Injected — once the attempt has performed
// afterOps backend operations in total. Shard selection is the same as
// ShardInject (Sites hold shard indices, Shard/OfShards strikes one
// shard, Rate hashes the index), so the two hooks compose with the
// rest of the plan's schedule. A disabled plan returns nil, the
// no-fault hook.
func (p Plan) TapeWrap(afterOps int) func(sh, attempt int) tape.WrapBackend {
	if !p.Enabled() {
		return nil
	}
	return func(sh, attempt int) tape.WrapBackend {
		if !p.targetsShard(sh) {
			return nil
		}
		if p.Flaky > 0 && attempt > p.Flaky {
			return nil
		}
		var ops atomic.Int64
		ops.Store(int64(afterOps))
		inj := &Injected{Site: sh, Attempt: attempt, Mode: Panic}
		return func(be tape.Backend) tape.Backend {
			return &failingBackend{Backend: be, ops: &ops, err: inj}
		}
	}
}
