package faults

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"extmem/internal/problems"
	"extmem/internal/shard"
	"extmem/internal/tape"
)

func storageSort(o tape.Options) shard.Sort {
	return shard.Sort{
		Shards: 4, FanIn: 4, RunMemoryBits: 1024,
		Retry:    shard.RetryPolicy{MaxAttempts: 3},
		TapeOpts: o,
	}
}

// TestStorageFaultRetryHeals proves a mid-sort storage failure takes
// the ordinary shard retry path: with a Flaky plan every shard's first
// attempt dies on a *tape.IOError panic erupting from its backend, the
// retries run clean, and the output is byte-identical to the
// fault-free run — with the failed attempts on the record.
func TestStorageFaultRetryHeals(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	enc := problems.GenMultisetYes(256, 16, rng).Encode()
	const seed = 77

	want, cleanRep, err := storageSort(tape.Options{}).Run(context.Background(), enc, seed)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		name string
		o    tape.Options
	}{
		{"mem", tape.Options{}},
		{"file", tape.Options{Storage: tape.File, SpillDir: t.TempDir()}},
		{"mmap", tape.Options{Storage: tape.Mmap, SpillDir: t.TempDir()}},
	} {
		t.Run(c.name, func(t *testing.T) {
			p := Plan{Mode: Panic, Rate: 1, Flaky: 1, Seed: 5}
			s := storageSort(c.o)
			s.WrapTape = p.TapeWrap(20)
			out, rep, err := s.Run(context.Background(), enc, seed)
			if err != nil {
				t.Fatalf("sort under storage faults failed: %v", err)
			}
			if !bytes.Equal(out, want) {
				t.Fatal("output under storage faults diverges from the clean run")
			}
			if rep.Attempts != cleanRep.Attempts+s.Shards {
				t.Fatalf("Attempts = %d, want %d (clean %d + one failed attempt per shard)",
					rep.Attempts, cleanRep.Attempts+s.Shards, cleanRep.Attempts)
			}
			if rep.Fallbacks != 0 {
				t.Fatalf("Fallbacks = %d, want 0: flaky faults must heal within the retry budget", rep.Fallbacks)
			}
		})
	}
}

// TestStorageFaultFallsBackChaosFree proves a persistent storage fault
// — one shard's backend dying on every attempt — exhausts the retry
// budget and lands on the coordinator's fallback, which never sees the
// failing wrapper and still produces byte-identical output.
func TestStorageFaultFallsBackChaosFree(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	enc := problems.GenMultisetYes(256, 16, rng).Encode()
	const seed = 78

	want, _, err := storageSort(tape.Options{}).Run(context.Background(), enc, seed)
	if err != nil {
		t.Fatal(err)
	}

	p := Plan{Mode: Panic, Sites: []int{1}} // shard 1's storage is gone for good
	s := storageSort(tape.Options{Storage: tape.File, SpillDir: t.TempDir()})
	s.WrapTape = p.TapeWrap(20)
	out, rep, err := s.Run(context.Background(), enc, seed)
	if err != nil {
		t.Fatalf("sort with a dead shard store failed: %v", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("fallback output diverges from the clean run")
	}
	if rep.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1: shard 1 must be re-run by the coordinator", rep.Fallbacks)
	}
}

// TestStorageFaultTypedChain pins the error type a planted fault
// delivers: the panic value is a *tape.IOError that errors.Is
// ErrStorage and unwraps to the plan's *Injected, and a recovered
// shard attempt (*shard.SortPanicError) keeps that whole chain
// reachable for triage.
func TestStorageFaultTypedChain(t *testing.T) {
	wrap := Plan{Mode: Panic, Sites: []int{0}}.TapeWrap(0)(0, 1)
	tp := tape.NewWith("t", tape.Options{Wrap: wrap})
	defer tp.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("exhausted backend did not panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v is not an error", r)
		}
		if !errors.Is(err, tape.ErrStorage) {
			t.Fatalf("panic error %v is not ErrStorage", err)
		}
		var inj *Injected
		if !errors.As(err, &inj) || inj.Site != 0 {
			t.Fatalf("panic error %v does not unwrap to the Injected fault", err)
		}
		spe := &shard.SortPanicError{Shard: 0, Value: r}
		if !errors.Is(spe, tape.ErrStorage) {
			t.Fatal("SortPanicError hides the storage error from errors.Is")
		}
	}()
	_ = tp.WriteBlock([]byte("boom"))
}
