package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// Mode is the kind of fault a plan injects at a struck site.
type Mode int

const (
	// None disables the plan; the zero Plan injects nothing.
	None Mode = iota
	// Panic panics with an *Injected at the struck site — the fault
	// the recovery layer converts to a typed error and retries.
	Panic
	// Error returns an *Injected from the struck site, modeling the
	// work itself failing: trial sites record a deterministic error
	// row, sort sites fail the attempt.
	Error
	// Delay sleeps Plan.Delay at the struck site and then proceeds —
	// the straggler fault; it never changes an output byte.
	Delay
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Plan is a deterministic fault schedule. Whether a site is struck is
// a pure function of (Seed, site index) plus the explicit selectors,
// so the same plan strikes the same sites at every shard count,
// worker count and schedule. A site is targeted if ANY selector
// claims it: it appears in Sites, it is owned by the targeted shard
// (Shard of OfShards — trial sites map to shards by shard.Split, the
// same rule the fleet itself uses), or its seed-derived hash falls
// under Rate.
type Plan struct {
	Seed int64 // keys the Rate hash; independent of the run's trial seed
	Mode Mode  // what happens at a struck site

	Rate     float64       // probability-like fraction of sites struck by hash, in [0, 1]
	Sites    []int         // explicitly struck sites (trial indices / shard indices / call ordinals)
	Shard    int           // with OfShards > 0: strike every site this shard owns
	OfShards int           // the shard count the Shard selector is relative to; 0 disables it
	Flaky    int           // strike only the first Flaky attempts per site; 0 means every attempt
	Delay    time.Duration // sleep duration for Mode Delay
}

// Enabled reports whether the plan can strike at all.
func (p Plan) Enabled() bool {
	return p.Mode != None && (p.Rate > 0 || len(p.Sites) > 0 || p.OfShards > 0)
}

// rateHit is the seed-keyed selector: site strikes iff its splitmix64
// hash, mapped to [0, 1), falls under Rate.
func (p Plan) rateHit(site int) bool {
	if p.Rate >= 1 {
		return true
	}
	if p.Rate <= 0 {
		return false
	}
	h := uint64(trials.Seed(p.Seed, site))
	return float64(h>>11)/(1<<53) < p.Rate
}

// targets reports whether trial site (of a fleet of n) is struck.
func (p Plan) targets(site, n int) bool {
	for _, s := range p.Sites {
		if s == site {
			return true
		}
	}
	if p.OfShards > 0 && n > 0 {
		for _, rg := range shard.Split(n, p.OfShards) {
			if rg.Shard == p.Shard {
				if site >= rg.Lo && site < rg.Hi {
					return true
				}
				break
			}
		}
	}
	return p.rateHit(site)
}

// StruckSites returns the trial sites of a fleet of n the plan
// targets, in index order — the strike schedule is a pure function of
// the plan, so tables and tests can print it without running anything.
func (p Plan) StruckSites(n int) []int {
	if !p.Enabled() {
		return nil
	}
	var out []int
	for i := 0; i < n; i++ {
		if p.targets(i, n) {
			out = append(out, i)
		}
	}
	return out
}

// targetsShard reports whether shard index sh is struck when the plan
// injects at shard granularity (Sites then hold shard indices).
func (p Plan) targetsShard(sh int) bool {
	for _, s := range p.Sites {
		if s == sh {
			return true
		}
	}
	if p.OfShards > 0 && sh == p.Shard {
		return true
	}
	return p.rateHit(sh)
}

// fire executes the fault at a struck site on the given 1-based
// attempt, honoring the Flaky budget.
func (p Plan) fire(site, attempt int) error {
	if p.Flaky > 0 && attempt > p.Flaky {
		return nil
	}
	switch p.Mode {
	case Delay:
		time.Sleep(p.Delay)
		return nil
	case Error:
		return &Injected{Site: site, Attempt: attempt, Mode: Error}
	case Panic:
		panic(&Injected{Site: site, Attempt: attempt, Mode: Panic})
	}
	return nil
}

// Injected is the fault an enabled plan delivers: for Mode Error it is
// the returned error, for Mode Panic it is the panic value (which the
// recovery layer wraps in trials.TrialPanicError / shard.SortPanicError,
// whose Unwrap reaches back here).
type Injected struct {
	Site    int  // the struck site
	Attempt int  // 1-based attempt at that site
	Mode    Mode // Error or Panic
}

func (e *Injected) Error() string {
	return fmt.Sprintf("faults: injected %s at site %d (attempt %d)", e.Mode, e.Site, e.Attempt)
}

// Injector tracks per-site attempt counts for a plan over a fleet of
// n sites, so Flaky plans strike the first attempts and then heal. It
// is safe for concurrent use.
type Injector struct {
	plan Plan
	n    int

	mu   sync.Mutex
	hits map[int]int
}

// Injector returns a fresh attempt-tracking injector for a fleet of n
// sites.
func (p Plan) Injector(n int) *Injector {
	return &Injector{plan: p, n: n, hits: make(map[int]int)}
}

// Strike fires the plan's fault at site if it is targeted: Delay
// sleeps and returns nil, Error returns an *Injected, Panic panics
// with one. Untargeted sites (and targeted sites past their Flaky
// budget) cost one map lookup and return nil.
func (inj *Injector) Strike(site int) error {
	if !inj.plan.targets(site, inj.n) {
		return nil
	}
	inj.mu.Lock()
	inj.hits[site]++
	attempt := inj.hits[site]
	inj.mu.Unlock()
	return inj.plan.fire(site, attempt)
}

// Trials wraps a trial launcher so every trial index becomes a fault
// site: a struck trial panics (Mode Panic — recovered and retried by
// the engine/fleet, output unchanged), records a deterministic error
// row (Mode Error), or stalls (Mode Delay) before the real trial
// function runs. nil inner means the default worker pool. A disabled
// plan returns inner unchanged, so the zero Plan is a no-op shape.
func (p Plan) Trials(inner trials.Launcher) trials.Launcher {
	if !p.Enabled() {
		return inner
	}
	if inner == nil {
		inner = trials.Pool(0)
	}
	return func(n int, seed int64, onResult func(trials.Result)) trials.Runner {
		inj := p.Injector(n)
		r := inner(n, seed, onResult)
		return chaosRunner{inner: r, inj: inj}
	}
}

type chaosRunner struct {
	inner trials.Runner
	inj   *Injector
}

func (c chaosRunner) Run(ctx context.Context, fn trials.Func) ([]trials.Result, trials.Summary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Trial-level faults strike inside the wrapped function and count
	// attempts in this process's injector, so the fleet must execute
	// the wrapper — stripping the workload annotation pins every shard
	// attempt to the in-process engine instead of a worker process.
	// (Shard-granular sort chaos is unaffected: ShardInject strikes on
	// the coordinator before the attempt is dispatched anywhere.)
	ctx = trials.WithoutWorkload(ctx)
	return c.inner.Run(ctx, func(i int, rng *rand.Rand) trials.Result {
		if err := c.inj.Strike(i); err != nil {
			return trials.Result{Trial: i, Err: err.Error()}
		}
		return fn(i, rng)
	})
}

// ShardInject derives the shard.Sort chaos hook from the plan: fault
// sites are shard indices (Sites holds shard indices; the Shard/
// OfShards selector strikes that one shard; Rate hashes the shard
// index), and the attempt number is the 1-based attempt the sort
// layer reports, so Flaky plans fail a shard's first attempts and let
// the retry succeed. A disabled plan returns nil — the no-chaos hook.
func (p Plan) ShardInject() shard.InjectFunc {
	if !p.Enabled() {
		return nil
	}
	return func(sh, attempt int) error {
		if !p.targetsShard(sh) {
			return nil
		}
		return p.fire(sh, attempt)
	}
}

// Sorts wraps a sort launcher so whole sort invocations become fault
// sites, numbered in call order (the first sort the wrapped launcher
// performs is site 0, the next site 1, …). nil inner means the
// single-machine engine. There is no recovery layer above a whole
// sort invocation, so Mode Panic is demoted to Mode Error here — a
// struck sort fails deterministically instead of unwinding the caller;
// inject panics below sort granularity with ShardInject, where
// shard.Sort's retry can recover them.
func (p Plan) Sorts(inner algorithms.SortLauncher) algorithms.SortLauncher {
	if !p.Enabled() {
		return inner
	}
	var calls atomic.Int64
	demoted := p
	if demoted.Mode == Panic {
		demoted.Mode = Error
	}
	inj := demoted.Injector(0)
	return func(ctx context.Context, s algorithms.Sorter, m *core.Machine, src int, work []int) error {
		site := int(calls.Add(1)) - 1
		if err := inj.Strike(site); err != nil {
			return err
		}
		if inner == nil {
			return s.Sort(m, src, work)
		}
		return inner(ctx, s, m, src, work)
	}
}
