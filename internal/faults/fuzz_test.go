package faults_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"extmem/internal/faults"
	"extmem/internal/shard"
	"extmem/internal/trials"
)

// FuzzFaultPlanSchedule drives random recoverable fault plans through
// a sharded trial fleet and asserts the tentpole invariant: a plan
// whose every strike is recoverable (flaky panics under a sufficient
// retry budget, or pure delays) reproduces the fault-free rows and
// tallies bit for bit, at any shard and worker count the fuzzer
// picks. Every retry of a flaky shard consumes at least one of its
// sites' remaining strikes, so a budget of struck-sites + 2 provably
// never exhausts — any output movement is a real recovery-layer bug,
// not an under-budgeted plan.
func FuzzFaultPlanSchedule(f *testing.F) {
	f.Add(int64(1), uint16(200), uint8(2), uint8(2), false, uint8(0))
	f.Add(int64(5), uint16(900), uint8(4), uint8(8), true, uint8(3))
	f.Add(int64(-7), uint16(0), uint8(1), uint8(1), false, uint8(200))
	f.Fuzz(func(t *testing.T, planSeed int64, rateMil uint16, shards, parallel uint8, delay bool, siteByte uint8) {
		const n = 48
		nShards := 1 + int(shards)%6
		nWorkers := 1 + int(parallel)%8

		plan := faults.Plan{
			Seed:  planSeed,
			Mode:  faults.Panic,
			Rate:  float64(rateMil%1000) / 1000 * 0.3, // keep schedules sparse enough to run fast
			Sites: []int{int(siteByte) % n},
			Flaky: 1,
		}
		if delay {
			plan.Mode = faults.Delay
			plan.Delay = time.Microsecond
			plan.Flaky = 0
		}

		fn := func(i int, rng *rand.Rand) trials.Result {
			return trials.Result{Trial: i, Accept: rng.Intn(2) == 0, Value: float64(rng.Intn(1 << 20))}
		}
		want, wantSum, err := trials.Engine{Trials: n, Parallel: 1, Seed: 11}.Run(nil, fn)
		if err != nil {
			t.Fatal(err)
		}

		budget := shard.RetryPolicy{MaxAttempts: len(plan.StruckSites(n)) + 2}
		launch := plan.Trials(shard.LaunchRetry(nShards, nWorkers, budget))
		got, sum, err := launch(n, 11, nil).Run(nil, fn)
		if err != nil {
			t.Fatalf("recoverable plan %+v surfaced: %v", plan, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rows moved under recoverable chaos %+v at %d shards × %d workers", plan, nShards, nWorkers)
		}
		if sum.Trials != wantSum.Trials || sum.Accepts != wantSum.Accepts || sum.Errors != 0 {
			t.Fatalf("tallies moved: %+v vs %+v", sum, wantSum)
		}
		if sum.Fallbacks != 0 {
			t.Fatalf("sufficient budget still fell back: %+v", sum)
		}
		if plan.Mode == faults.Panic && sum.Recovered == 0 {
			t.Fatalf("pinned site never struck: %+v", sum)
		}
	})
}
