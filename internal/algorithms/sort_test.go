package algorithms

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"extmem/internal/core"
	"extmem/internal/problems"
)

// loadItems writes the given items onto tape idx of m, head rewound.
func loadItems(t *testing.T, m *core.Machine, idx int, items []string) {
	t.Helper()
	tp := m.Tape(idx)
	for _, it := range items {
		if err := WriteItem(tp, []byte(it)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.Rewind(); err != nil {
		t.Fatal(err)
	}
}

// dumpItems reads all items from tape idx.
func dumpItems(t *testing.T, m *core.Machine, idx int) []string {
	t.Helper()
	tp := m.Tape(idx)
	if err := tp.Rewind(); err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		it, ok, err := ReadItem(tp, m.Mem(), "test.dump")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, string(it))
	}
}

func TestMergeSortBasic(t *testing.T) {
	m := core.NewMachine(3, 1)
	loadItems(t, m, 0, []string{"110", "001", "010", "111", "000"})
	if err := MergeSort(m, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	got := dumpItems(t, m, 0)
	want := []string{"000", "001", "010", "110", "111"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("sorted = %v, want %v", got, want)
	}
}

func TestMergeSortEmptyAndSingle(t *testing.T) {
	m := core.NewMachine(3, 1)
	if err := MergeSort(m, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := dumpItems(t, m, 0); len(got) != 0 {
		t.Fatalf("empty sort = %v", got)
	}
	m2 := core.NewMachine(3, 1)
	loadItems(t, m2, 0, []string{"101"})
	if err := MergeSort(m2, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := dumpItems(t, m2, 0); len(got) != 1 || got[0] != "101" {
		t.Fatalf("single sort = %v", got)
	}
}

func TestMergeSortDuplicates(t *testing.T) {
	m := core.NewMachine(3, 1)
	loadItems(t, m, 0, []string{"01", "01", "00", "01", "00"})
	if err := MergeSort(m, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	got := dumpItems(t, m, 0)
	want := []string{"00", "00", "01", "01", "01"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("sorted = %v, want %v", got, want)
	}
}

func TestMergeSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		count := 1 + rng.Intn(200)
		items := make([]string, count)
		for i := range items {
			n := 1 + rng.Intn(8)
			b := make([]byte, n)
			for j := range b {
				b[j] = '0' + byte(rng.Intn(2))
			}
			items[i] = string(b)
		}
		m := core.NewMachine(3, int64(trial))
		loadItems(t, m, 0, items)
		if err := MergeSort(m, 0, 1, 2); err != nil {
			t.Fatal(err)
		}
		got := dumpItems(t, m, 0)
		if len(got) != count {
			t.Fatalf("lost items: %d -> %d", count, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				t.Fatalf("not sorted at %d: %q > %q", i, got[i-1], got[i])
			}
		}
		// Multiset preserved.
		in := problems.Instance{V: items, W: got}
		if !problems.MultisetEquality(in) {
			t.Fatalf("sort changed the multiset")
		}
	}
}

// Corollary 7 resource shape: reversals grow as O(log m).
func TestMergeSortReversalsLogarithmic(t *testing.T) {
	for _, count := range []int{4, 16, 64, 256, 1024} {
		rng := rand.New(rand.NewSource(int64(count)))
		items := make([]string, count)
		for i := range items {
			b := make([]byte, 8)
			for j := range b {
				b[j] = '0' + byte(rng.Intn(2))
			}
			items[i] = string(b)
		}
		m := core.NewMachine(3, 7)
		loadItems(t, m, 0, items)
		if err := MergeSort(m, 0, 1, 2); err != nil {
			t.Fatal(err)
		}
		rev := m.Resources().Reversals
		limit := 10 * (int(math.Log2(float64(count))) + 2)
		if rev > limit {
			t.Fatalf("count=%d: %d reversals > limit %d (not O(log m))", count, rev, limit)
		}
	}
}

func TestMergeSortDistinctTapesRequired(t *testing.T) {
	m := core.NewMachine(3, 1)
	if err := MergeSort(m, 0, 0, 1); err == nil {
		t.Fatal("duplicate tape indices accepted")
	}
}

func TestSortToTapeLeavesInputIntact(t *testing.T) {
	m := core.NewMachine(4, 1)
	in := problems.Instance{V: []string{"11", "00", "10"}}
	var enc []byte
	for _, v := range in.V {
		enc = append(enc, v...)
		enc = append(enc, problems.Separator)
	}
	m.SetInput(enc)
	if err := SortToTape(m, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	got := dumpItems(t, m, 1)
	want := []string{"00", "10", "11"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("sorted = %v, want %v", got, want)
	}
	if string(m.Tape(0).Contents()) != string(enc) {
		t.Fatal("input tape modified")
	}
}

func TestSortLasVegas(t *testing.T) {
	m := core.NewMachine(4, 1)
	m.SetInput([]byte("11#00#10#01#"))
	res, err := SortLasVegas(m, 1, 2, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Accept {
		t.Fatalf("verdict = %v with generous budget", res.Verdict)
	}
	got := dumpItems(t, m, 1)
	if strings.Join(got, ",") != "00,01,10,11" {
		t.Fatalf("sorted = %v", got)
	}

	m2 := core.NewMachine(4, 1)
	m2.SetInput([]byte("11#00#10#01#"))
	res2, err := SortLasVegas(m2, 1, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != core.DontKnow {
		t.Fatalf("verdict = %v with scan budget 2, want don't know", res2.Verdict)
	}
}

func TestCountItems(t *testing.T) {
	m := core.NewMachine(1, 1)
	m.SetInput([]byte("0#1#00#"))
	n, err := CountItems(m.Tape(0), m.Mem(), "c")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("CountItems = %d, want 3", n)
	}
}

func TestCopyItemsPartial(t *testing.T) {
	m := core.NewMachine(2, 1)
	m.SetInput([]byte("0#1#"))
	n, err := CopyItems(m.Tape(0), m.Tape(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("CopyItems = %d, want 2", n)
	}
	if string(m.Tape(1).Contents()) != "0#1#" {
		t.Fatalf("copied = %q", m.Tape(1).Contents())
	}
}

func TestReadItemUnterminated(t *testing.T) {
	m := core.NewMachine(1, 1)
	m.SetInput([]byte("01"))
	if _, _, err := ReadItem(m.Tape(0), m.Mem(), "x"); err == nil {
		t.Fatal("unterminated item accepted")
	}
}

func TestReadItemEmptyValue(t *testing.T) {
	m := core.NewMachine(1, 1)
	m.SetInput([]byte("#"))
	it, ok, err := ReadItem(m.Tape(0), m.Mem(), "x")
	if err != nil || !ok || len(it) != 0 {
		t.Fatalf("ReadItem = (%q, %v, %v), want empty item", it, ok, err)
	}
}
