package algorithms

import (
	"extmem/internal/core"
)

// SortResult reports a Las Vegas sorting attempt (Corollary 10).
type SortResult struct {
	Verdict   core.Verdict // Accept if the sorted output was produced, DontKnow otherwise
	Resources core.Resources
}

// SortLasVegas runs the external merge sort as a Las Vegas function
// computation under a total scan budget: if the sort completes within
// the budget the sorted sequence is on tape dst and the verdict is
// Accept; otherwise the machine answers "I don't know".
//
// Corollary 10 states that with o(log N) scans and O(N^{1/4}/log N)
// internal memory, every Las Vegas sorter must answer "I don't know"
// (with probability > 1/2) on some inputs; experiment E5 sweeps the
// budget to locate the scan count at which this implementation stops
// succeeding, which tracks Θ(log N).
func SortLasVegas(m *core.Machine, dst, auxA, auxB, scanBudget int) (SortResult, error) {
	if err := SortToTape(m, dst, auxA, auxB); err != nil {
		return SortResult{Verdict: core.DontKnow, Resources: m.Resources()}, err
	}
	res := m.Resources()
	if res.Scans() > scanBudget {
		// The budget-limited machine could not have finished; it
		// answers "I don't know" and produces no output.
		return SortResult{Verdict: core.DontKnow, Resources: res}, nil
	}
	return SortResult{Verdict: core.Accept, Resources: res}, nil
}
