package algorithms

import (
	"context"
	"math/rand"

	"extmem/internal/core"
	"extmem/internal/trials"
)

// SortResult reports a Las Vegas sorting attempt (Corollary 10).
type SortResult struct {
	Verdict   core.Verdict // Accept if the sorted output was produced, DontKnow otherwise
	Resources core.Resources
}

// SortLasVegas runs the external merge sort as a Las Vegas function
// computation under a total scan budget: if the sort completes within
// the budget the sorted sequence is on tape dst and the verdict is
// Accept; otherwise the machine answers "I don't know".
//
// The sort is the k-way engine at fan-in 2 over auxA/auxB with the
// default run-formation memory; SortLasVegasAuto raises the fan-in to
// everything the machine's tape count allows.
//
// Corollary 10 states that with o(log N) scans and O(N^{1/4}/log N)
// internal memory, every Las Vegas sorter must answer "I don't know"
// (with probability > 1/2) on some inputs; experiment E5 sweeps the
// budget to locate the scan count at which this implementation stops
// succeeding, which tracks Θ(log N).
func SortLasVegas(m *core.Machine, dst, auxA, auxB, scanBudget int) (SortResult, error) {
	s := Sorter{FanIn: 2, RunMemoryBits: DefaultRunMemoryBits}
	return lasVegasAttempt(m, s, dst, []int{auxA, auxB}, scanBudget)
}

// SortLasVegasAuto is SortLasVegas with the fan-in derived from the
// machine's tape count: every tape except the input and dst becomes a
// merge lane (fan-in t−2), realizing the model's r-vs-t trade — more
// tapes, fewer reversals under the same budget.
func SortLasVegasAuto(m *core.Machine, dst, scanBudget int, runMemoryBits int64) (SortResult, error) {
	work := WorkTapes(m, dst)
	s := Sorter{FanIn: len(work), RunMemoryBits: runMemoryBits}
	return lasVegasAttempt(m, s, dst, work, scanBudget)
}

func lasVegasAttempt(m *core.Machine, s Sorter, dst int, work []int, scanBudget int) (SortResult, error) {
	if err := s.SortToTape(m, dst, work); err != nil {
		return SortResult{Verdict: core.DontKnow, Resources: m.Resources()}, err
	}
	res := m.Resources()
	if res.Scans() > scanBudget {
		// The budget-limited machine could not have finished; it
		// answers "I don't know" and produces no output.
		return SortResult{Verdict: core.DontKnow, Resources: res}, nil
	}
	return SortResult{Verdict: core.Accept, Resources: res}, nil
}

// SortLasVegasRepeated is Las Vegas amplification on the trials
// engine: it runs attempts independent budgeted sorting attempts on
// the same encoded input, each on a fresh machine with tapes external
// tapes whose coins derive from (seed, attempt index), and returns
// the first accepting attempt in attempt order (schedule-independent)
// together with the fleet summary — the accept count over attempts is
// the empirical success probability the Corollary 10 repetition
// argument amplifies. The fleet runs on launch — a worker pool
// (trials.Pool) or a sharded fleet (internal/shard.Launch); nil means
// a default pool. Every attempt sorts onto tape dst with fan-in
// tapes−2 (SortLasVegasAuto). If every attempt answers "I don't
// know", the first attempt's DontKnow result is returned. ctx bounds
// the fleet (nil means no bound).
func SortLasVegasRepeated(ctx context.Context, input []byte, tapes, dst, scanBudget, attempts int, launch trials.Launcher, seed int64) (SortResult, trials.Summary, error) {
	if attempts <= 0 {
		return SortResult{Verdict: core.DontKnow}, trials.Summary{}, nil
	}
	if launch == nil {
		launch = trials.Pool(0)
	}
	results := make([]SortResult, attempts)
	_, sum, err := launch(attempts, seed, nil).Run(ctx,
		func(i int, rng *rand.Rand) trials.Result {
			m := core.NewMachine(tapes, rng.Int63())
			m.SetInput(input)
			res, err := SortLasVegasAuto(m, dst, scanBudget, DefaultRunMemoryBits)
			results[i] = res
			if err != nil {
				return trials.Result{Err: err.Error()}
			}
			return trials.Result{Accept: res.Verdict == core.Accept}
		})
	if err != nil {
		return SortResult{Verdict: core.DontKnow}, sum, err
	}
	for _, r := range results {
		if r.Verdict == core.Accept {
			return r, sum, nil
		}
	}
	return results[0], sum, nil
}
