package algorithms

import (
	"math/rand"
	"reflect"
	"testing"

	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/trials"
)

// The error estimate must be schedule-independent: identical numbers
// at 1 worker and at 8, for several root seeds.
func TestEstimateFingerprintErrorsParallelInvariant(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seq, err := EstimateFingerprintErrors(nil, 16, 10, 24, trials.Pool(1), seed)
		if err != nil {
			t.Fatal(err)
		}
		par, err := EstimateFingerprintErrors(nil, 16, 10, 24, trials.Pool(8), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("seed %d: estimate differs across worker counts:\nseq %+v\npar %+v", seed, seq, par)
		}
	}
}

// The Theorem 8(a) profile, measured through the fleet API: perfect
// completeness, exactly 2 scans, false-accept rate ≤ 1/2 with a CI
// that contains the point estimate.
func TestEstimateFingerprintErrorsProfile(t *testing.T) {
	est, err := EstimateFingerprintErrors(nil, 32, 12, 40, trials.Pool(4), 99)
	if err != nil {
		t.Fatal(err)
	}
	if est.YesErrors != 0 {
		t.Fatalf("completeness violated: %d yes-errors", est.YesErrors)
	}
	if est.Scans != 2 {
		t.Fatalf("fingerprint used %d scans, want 2", est.Scans)
	}
	rate := float64(est.FalseAccepts) / float64(est.Trials)
	if rate > 0.5 {
		t.Fatalf("false-accept rate %f > 1/2", rate)
	}
	if est.FalseAcceptLo > rate || est.FalseAcceptHi < rate {
		t.Fatalf("CI [%f, %f] excludes rate %f", est.FalseAcceptLo, est.FalseAcceptHi, rate)
	}
}

func TestFingerprintRepeatedFleetCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := problems.GenMultisetYes(12, 10, rng)
	for _, par := range []int{1, 8} {
		v, sum, err := FingerprintRepeatedFleet(nil, in.Encode(), 10, trials.Pool(par), 5)
		if err != nil {
			t.Fatal(err)
		}
		if v != core.Accept || sum.Accepts != 10 {
			t.Fatalf("parallel=%d: fleet rejected a yes-instance (%v, %+v)", par, v, sum)
		}
	}
}

// On a no-instance the repeated fleet must reject with overwhelming
// probability, and the verdict must not depend on the worker count.
func TestFingerprintRepeatedFleetSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := problems.GenMultisetNo(12, 10, rng)
	v1, s1, err := FingerprintRepeatedFleet(nil, in.Encode(), 8, trials.Pool(1), 6)
	if err != nil {
		t.Fatal(err)
	}
	v8, s8, err := FingerprintRepeatedFleet(nil, in.Encode(), 8, trials.Pool(8), 6)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v8 || !reflect.DeepEqual(s1, s8) {
		t.Fatalf("verdict differs across worker counts: %v/%+v vs %v/%+v", v1, s1, v8, s8)
	}
	if v1 != core.Reject {
		t.Fatalf("8 repetitions accepted a no-instance (false-accept prob ≤ 2^-8-ish)")
	}
}

func TestSortLasVegasRepeated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := problems.GenMultisetYes(32, 8, rng)
	res, sum, err := SortLasVegasRepeated(nil, in.Encode(), 6, 1, 1<<30, 3, trials.Pool(4), 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Accept || sum.Accepts != 3 {
		t.Fatalf("unbounded budget: %v, %+v", res.Verdict, sum)
	}
	// A scan budget of 2 is below the Θ(log N) requirement: every
	// attempt must answer "I don't know", never a wrong output.
	res, sum, err = SortLasVegasRepeated(nil, in.Encode(), 6, 1, 2, 3, trials.Pool(4), 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.DontKnow || sum.Accepts != 0 {
		t.Fatalf("tight budget: %v, %+v", res.Verdict, sum)
	}
	// Degenerate fleets fail closed.
	res, _, err = SortLasVegasRepeated(nil, in.Encode(), 6, 1, 1<<30, 0, trials.Pool(4), 11)
	if err != nil || res.Verdict != core.DontKnow {
		t.Fatalf("zero attempts: %v, %v", res.Verdict, err)
	}
}
