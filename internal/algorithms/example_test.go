package algorithms_test

import (
	"fmt"

	"extmem/internal/algorithms"
	"extmem/internal/core"
)

// ExampleSorter sorts a small '#'-terminated multiset with the k-way
// engine and reports the paper's cost measures. Dedup folds set
// semantics into the final merge pass.
func ExampleSorter() {
	m := core.NewMachine(6, 1) // input + output + 4 work tapes
	m.SetInput([]byte("0110#0001#1011#0001#0100#"))

	s := algorithms.Sorter{FanIn: 4, RunMemoryBits: 64, Dedup: true}
	if err := s.SortToTape(m, 1, algorithms.WorkTapes(m, 1)); err != nil {
		fmt.Println("error:", err)
		return
	}

	res := m.Resources()
	fmt.Printf("sorted: %s\n", m.Tape(1).Contents())
	fmt.Printf("r=%d scans, t=%d tapes\n", res.Scans(), res.Tapes)
	// Output:
	// sorted: 0001#0100#0110#1011#
	// r=6 scans, t=6 tapes
}
