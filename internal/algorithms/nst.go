package algorithms

import (
	"bytes"
	"fmt"
	"math/bits"
	"sort"

	"extmem/internal/core"
	"extmem/internal/perm"
	"extmem/internal/problems"
	"extmem/internal/tape"
)

// This file implements the nondeterministic upper bound of
// Theorem 8(b): MULTISET-EQUALITY, SET-EQUALITY and CHECK-SORT belong
// to NST(3, O(log N), 2).
//
// The construction follows the paper's proof. The machine has two
// external tapes; tape 0 holds the input w = v1#…vm#v'1#…v'm#. In a
// single forward scan the machine nondeterministically writes ℓ
// copies of a guess string u onto both tapes (after the input on tape
// 0), where u encodes a mapping section followed by guessed copies of
// all values:
//
//	u = h1# … hH# v1# … vm# v'1# … v'm#
//
// While writing copy number i, the machine performs one O(log N)-state
// check that only looks at the symbols of the copy as they stream by
// (a bit comparison between a value and its mapped partner, an
// injectivity comparison, or a sortedness comparison). A final
// backward scan of both tapes verifies that all ℓ copies are equal and
// that the first copy's value section equals the input. Resources:
// one head reversal per tape, so 3 sequential scans total, and
// O(log N) bits of internal memory.
//
// Nondeterminism is realized by an explicit witness: the caller
// supplies the guessed mapping(s) and value copies. An input is a
// yes-instance iff some witness makes the verifier accept (the
// Find*Witness helpers construct the honest witness for yes-instances;
// tests additionally enumerate all witnesses for small inputs).

// maxCertificateSymbols caps the materialized certificate size. The
// model puts no bound on tape length; the implementation must.
const maxCertificateSymbols = 1 << 28

// NSTProblem selects which Theorem 8(b) verifier to run.
type NSTProblem int

// The three verifiers of Theorem 8(b).
const (
	NSTMultisetEquality NSTProblem = iota
	NSTSetEquality
	NSTCheckSort
)

func (p NSTProblem) String() string {
	switch p {
	case NSTMultisetEquality:
		return "NST-MULTISET-EQUALITY"
	case NSTSetEquality:
		return "NST-SET-EQUALITY"
	case NSTCheckSort:
		return "NST-CHECK-SORT"
	default:
		return fmt.Sprintf("NSTProblem(%d)", int(p))
	}
}

// NSTWitness is the nondeterministic guess. Values holds the guessed
// copies of the input values (the honest guess equals the decoded
// input; a lying guess is caught by the backward scan). For multiset
// equality and checksort, Pi is the guessed permutation with
// v_i = v'_{Pi(i)}; for set equality, F and G are the guessed
// mappings with v_i = v'_{F(i)} and v'_j = v_{G(j)}.
type NSTWitness struct {
	Values problems.Instance
	Pi     perm.Perm
	F, G   []int
}

// HonestWitness constructs the witness a correct nondeterministic run
// would guess for a yes-instance, and reports whether one exists
// (i.e. whether the instance is a yes-instance of the problem).
func HonestWitness(p NSTProblem, in problems.Instance) (NSTWitness, bool) {
	w := NSTWitness{Values: in}
	switch p {
	case NSTMultisetEquality, NSTCheckSort:
		pi, ok := matchPermutation(in)
		if !ok {
			return w, false
		}
		if p == NSTCheckSort && !sort.SliceIsSorted(in.W, func(i, j int) bool { return in.W[i] < in.W[j] }) {
			return w, false
		}
		w.Pi = pi
		return w, true
	case NSTSetEquality:
		f, g, ok := matchFunctions(in)
		if !ok {
			return w, false
		}
		w.F, w.G = f, g
		return w, true
	default:
		return w, false
	}
}

// matchPermutation finds a permutation pi with v_i = w_{pi(i)}, if the
// halves are multiset-equal.
func matchPermutation(in problems.Instance) (perm.Perm, bool) {
	slots := map[string][]int{}
	for j, w := range in.W {
		slots[w] = append(slots[w], j)
	}
	pi := make(perm.Perm, len(in.V))
	for i, v := range in.V {
		s := slots[v]
		if len(s) == 0 {
			return nil, false
		}
		pi[i] = s[len(s)-1]
		slots[v] = s[:len(s)-1]
	}
	return pi, true
}

// matchFunctions finds mappings f, g with v_i = w_{f(i)} and
// w_j = v_{g(j)}, if the halves are set-equal.
func matchFunctions(in problems.Instance) (f, g []int, ok bool) {
	posW := map[string]int{}
	for j, w := range in.W {
		posW[w] = j
	}
	posV := map[string]int{}
	for i, v := range in.V {
		posV[v] = i
	}
	f = make([]int, len(in.V))
	g = make([]int, len(in.W))
	for i, v := range in.V {
		j, found := posW[v]
		if !found {
			return nil, nil, false
		}
		f[i] = j
	}
	for j, w := range in.W {
		i, found := posV[w]
		if !found {
			return nil, nil, false
		}
		g[j] = i
	}
	return f, g, true
}

// nstLayout captures the shape of the guess string u.
type nstLayout struct {
	m          int    // values per half
	bigN       int    // input length N (bit-check positions range over 1..N)
	headerLen  int    // number of header (mapping) items
	entryBits  int    // width of one header entry in bits
	u          []byte // one copy of the guess string
	copies     int    // ℓ
	baseChecks int    // number of value-bit-check copies
	injStart   int    // first injectivity copy index (1-based), 0 if none
	sortStart  int    // first sortedness copy index (1-based), 0 if none
}

// buildLayout assembles the guess string u and copy plan for the given
// problem and witness.
func buildLayout(p NSTProblem, inputLen int, w NSTWitness) (*nstLayout, error) {
	m := len(w.Values.V)
	if len(w.Values.W) != m {
		return nil, fmt.Errorf("algorithms: witness halves differ: %d vs %d", m, len(w.Values.W))
	}
	lay := &nstLayout{m: m, bigN: inputLen}
	if m == 0 {
		lay.copies = 0
		return lay, nil
	}
	lay.entryBits = bits.Len(uint(m - 1))
	if lay.entryBits == 0 {
		lay.entryBits = 1
	}

	var header []int
	switch p {
	case NSTMultisetEquality, NSTCheckSort:
		if len(w.Pi) != m {
			return nil, fmt.Errorf("algorithms: witness permutation has %d entries, want %d", len(w.Pi), m)
		}
		header = []int(w.Pi)
		lay.baseChecks = lay.bigN * m
		lay.injStart = lay.baseChecks + 1
		lay.copies = lay.baseChecks + m
		if p == NSTCheckSort {
			lay.sortStart = lay.copies + 1
			lay.copies += lay.bigN * m * (m - 1) / 2
		}
	case NSTSetEquality:
		if len(w.F) != m || len(w.G) != m {
			return nil, fmt.Errorf("algorithms: witness mappings have %d/%d entries, want %d", len(w.F), len(w.G), m)
		}
		header = append(append([]int{}, w.F...), w.G...)
		lay.baseChecks = 2 * lay.bigN * m
		lay.copies = lay.baseChecks
	default:
		return nil, fmt.Errorf("algorithms: unknown NST problem %d", int(p))
	}
	lay.headerLen = len(header)

	var u []byte
	for _, h := range header {
		if h < 0 || h >= m {
			return nil, fmt.Errorf("algorithms: witness mapping entry %d out of range [0,%d)", h, m)
		}
		u = appendBinary(u, h, lay.entryBits)
		u = append(u, problems.Separator)
	}
	for _, v := range w.Values.V {
		u = append(u, v...)
		u = append(u, problems.Separator)
	}
	for _, v := range w.Values.W {
		u = append(u, v...)
		u = append(u, problems.Separator)
	}
	lay.u = u

	if total := int64(lay.copies)*int64(len(u)) + int64(inputLen); total > maxCertificateSymbols {
		return nil, fmt.Errorf("algorithms: certificate of %d symbols exceeds cap %d", total, maxCertificateSymbols)
	}
	return lay, nil
}

func appendBinary(dst []byte, x, width int) []byte {
	for i := width - 1; i >= 0; i-- {
		dst = append(dst, '0'+byte((x>>uint(i))&1))
	}
	return dst
}

// VerifyNST runs the Theorem 8(b) verifier on machine m (two external
// tapes, input on tape 0) with the given witness. It returns Accept
// iff every forward check and the backward structural scan succeed.
func VerifyNST(p NSTProblem, m *core.Machine, w NSTWitness) (core.Verdict, error) {
	if m.NumTapes() < 2 {
		return core.Reject, fmt.Errorf("algorithms: VerifyNST needs 2 tapes, machine has %d", m.NumTapes())
	}
	t0 := m.Tape(0)
	t1 := m.Tape(1)
	mem := m.Mem()

	if err := t0.Rewind(); err != nil {
		return core.Reject, err
	}
	inputLen := t0.Len()
	if err := chargeCounter(mem, "nst.N", uint64(inputLen)); err != nil {
		return core.Reject, err
	}
	lay, err := buildLayout(p, inputLen, w)
	if err != nil {
		return core.Reject, err
	}
	if lay.m == 0 {
		// Two empty multisets/sets; an empty sequence is sorted.
		return core.Accept, nil
	}

	// Forward phase: skip over the input on tape 0, then write the ℓ
	// copies on both tapes, running one streaming check per copy.
	if err := t0.SeekEnd(); err != nil {
		return core.Reject, err
	}
	if err := t1.Rewind(); err != nil {
		return core.Reject, err
	}
	t1.Truncate()

	ok := true
	var sortState pairState // cross-copy state for sortedness checks
	regCopy := mem.Register(counterRegion("nst.copy"))
	for i := 1; i <= lay.copies; i++ {
		if err := regCopy.SetInt(uint64(i)); err != nil {
			return core.Reject, err
		}
		chk := newCopyChecker(lay, i, &sortState)
		// Each copy is one forward bulk write per tape; the streaming
		// check consumes the same symbols from the in-memory block.
		if err := t0.WriteBlock(lay.u); err != nil {
			return core.Reject, err
		}
		if err := t1.WriteBlock(lay.u); err != nil {
			return core.Reject, err
		}
		for _, b := range lay.u {
			chk.feed(b)
		}
		if !chk.finish() {
			ok = false
		}
	}
	if lay.sortStart > 0 && !sortState.flush() {
		ok = false
	}

	// Backward phase: verify u_i = u_{i+1} for all i by reading tape 0
	// one copy behind tape 1, then match the first copy's value
	// section (on tape 1) against the input (on tape 0).
	uLen := len(lay.u)
	if lay.copies >= 1 {
		// Discard u_ℓ on tape 1 is NOT what we want; tape 0 must lag.
		// Move tape 0 back over its last copy so it points at the end
		// of u_{ℓ−1} while tape 1 points at the end of u_ℓ.
		if err := t0.MoveBackwardN(uLen); err != nil {
			return core.Reject, err
		}
		// Lockstep compare (ℓ−1)·|u| symbols, in bounded bulk chunks
		// so huge certificates don't buffer entirely in host memory.
		if err := compareBackward(t0, t1, (lay.copies-1)*uLen, &ok); err != nil {
			return core.Reject, err
		}
		// Tape 0 is now at the start of its copy region (end of the
		// input); tape 1 at the start of u_2 (end of u_1). Compare the
		// input backward against the value section of u_1, which is
		// its trailing 2m items.
		valueSectionLen := uLen - lay.headerLen*(lay.entryBits+1)
		if valueSectionLen != inputLen {
			// A lying witness guessed values of the wrong total size.
			ok = false
			if err := t0.Rewind(); err != nil {
				return core.Reject, err
			}
			if err := t1.Rewind(); err != nil {
				return core.Reject, err
			}
			return verdictOf(false), nil
		}
		if err := compareBackward(t0, t1, inputLen, &ok); err != nil {
			return core.Reject, err
		}
		// Finish the backward scans (tape 1 over the header of u_1).
		if err := t1.Rewind(); err != nil {
			return core.Reject, err
		}
	}
	return verdictOf(ok), nil
}

// compareBackwardChunk bounds how many symbols one bulk backward read
// buffers during the lockstep compares of the backward phase.
const compareBackwardChunk = 1 << 16

// compareBackward moves both tapes n cells backward in lockstep,
// clearing *ok if any pair of cells read along the way differs. It
// sweeps in bounded bulk chunks; per-tape accounting is identical to
// n interleaved MoveBackward+Read pairs.
func compareBackward(t0, t1 *tape.Tape, n int, ok *bool) error {
	for n > 0 {
		k := n
		if k > compareBackwardChunk {
			k = compareBackwardChunk
		}
		a, err := t0.ReadBlockBackward(k)
		if err != nil {
			return err
		}
		b, err := t1.ReadBlockBackward(k)
		if err != nil {
			return err
		}
		if !bytes.Equal(a, b) {
			*ok = false
		}
		n -= k
	}
	return nil
}

// DecideNST decides the problem nondeterministically: it accepts iff
// the honest witness exists and the verifier accepts it. (By
// construction a dishonest witness can only turn accepts into
// rejects, so this realizes the ∃-semantics.)
func DecideNST(p NSTProblem, m *core.Machine, in problems.Instance) (core.Verdict, error) {
	w, ok := HonestWitness(p, in)
	if !ok {
		return core.Reject, nil
	}
	return VerifyNST(p, m, w)
}
