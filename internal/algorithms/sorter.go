package algorithms

// sorter.go implements the configurable k-way external merge-sort
// engine behind Corollary 7. The classic 2-way balanced tape merge
// (MergeSort in sort.go) spends ⌈log₂ m⌉ passes with one buffered item
// per side; the paper's ST(r, s, t) model is exactly about trading
// head reversals r against internal memory s and tapes t, and the
// engine exposes both levers:
//
//   - Run formation (the s lever): an internal-memory buffer of
//     RunMemoryBits, charged to the machine's meter, turns the input
//     into sorted initial runs of ⌊s/itemBits⌋ items instead of
//     single-item runs, eliminating the first ~log₂(runLen) merge
//     passes outright.
//   - Fan-in (the t lever): every merge pass routes k = FanIn runs at
//     a time through a tournament (loser) tree over k work tapes, so
//     ⌈log_k⌉ passes replace ⌈log₂⌉.
//
// The counting pre-pass of the legacy sort is folded into the engine's
// first sweep (formation counts as it buffers; a zero-memory engine
// counts during its first distribution), and an optional dedup hook
// drops adjacent duplicates while the final pass is being written, so
// set-semantics callers need no extra scan + copy-back.
//
// All internal-memory state — the run buffer, one buffered item per
// merge lane, the loser tree's nodes, the pass counter and the dedup
// predecessor — is charged to the meter, so Resources reports the real
// (r, s, t) trade-off: measured reversals fall as RunMemoryBits and
// FanIn grow, and peak memory rises accordingly (experiment E17 tables
// the frontier; sort_test.go asserts the monotonicity).

import (
	"fmt"
	"math"
	"sort"

	"extmem/internal/core"
	"extmem/internal/memory"
	"extmem/internal/tape"
)

// RunPlanner is the engine's fixed-count initial-run rule as a
// standalone state machine: the first run is filled greedily until
// the next item would exceed Budget, and its item count becomes the
// fixed per-run count for the rest of the input. The Sorter's run
// formation and the sharded sort's run partitioning
// (internal/shard.Sort) both step this planner, so the two can never
// disagree about where run boundaries fall.
type RunPlanner struct {
	Budget int64 // run-formation memory budget in meter bits; <= 0 means single-item runs
	RunLen int   // fixed per-run item count; 0 while the first run still fills

	items int   // items in the current run
	bits  int64 // meter bits buffered in the current run
	total int   // items seen overall
}

// Next reports whether the next item (of the given meter size) starts
// a new run, and advances the plan. The first item always does.
func (p *RunPlanner) Next(itemBits int64) bool {
	if p.Budget <= 0 && p.RunLen == 0 {
		p.RunLen = 1 // no formation memory: single-item runs
	}
	newRun := p.total == 0
	if p.RunLen == 0 {
		if p.items > 0 && p.bits+itemBits > p.Budget {
			p.RunLen = p.items
			newRun = true
		}
	} else if p.items >= p.RunLen {
		newRun = true
	}
	if newRun {
		p.items, p.bits = 0, 0
	}
	p.items++
	p.bits += itemBits
	p.total++
	return newRun
}

// DefaultRunMemoryBits is the run-formation budget used by the
// rewired consumers (the equality deciders, relalg's sortDedup, the
// Las Vegas sorter). It is a constant — independent of the input size
// N — so every ST(·, O(1), O(1)) classification built on the sort is
// unchanged; it is merely a bigger constant than the two item buffers
// of the legacy 2-way merge, bought back as ~log₂(runLen) fewer
// passes.
const DefaultRunMemoryBits = 4096

// Sorter is the configurable k-way external merge-sort engine. The
// zero value behaves like the legacy 2-way merge with single-item
// initial runs (minus its counting pre-pass, which the engine folds
// into the first distribution sweep).
type Sorter struct {
	// FanIn is the number of runs merged per pass (and the number of
	// work tapes used); values below 2 mean 2.
	FanIn int

	// RunMemoryBits is the internal-memory target for initial run
	// formation, in the meter's units (one unit per buffered tape
	// symbol). 0 disables formation: initial runs are single items.
	// The first run is filled greedily up to the target and its item
	// count fixes the per-run item count for the whole sort, so with
	// uniform-length items every run fills the budget exactly; with
	// variable-length items the fixed-count structure is kept and the
	// actual buffer size is charged honestly.
	RunMemoryBits int64

	// Dedup drops adjacent duplicate items while the final sorted
	// output is being written (set semantics), folding the separate
	// dedup scan + copy-back into the last merge pass.
	Dedup bool
}

func (s Sorter) fanIn() int {
	if s.FanIn < 2 {
		return 2
	}
	return s.FanIn
}

// WorkTapes returns the machine's tape indices excluding tape 0 (the
// input) and dst — the merge lanes available to a Sorter when sorting
// onto dst, giving fan-in t−2.
func WorkTapes(m *core.Machine, dst int) []int {
	var work []int
	for i := 1; i < m.NumTapes(); i++ {
		if i != dst {
			work = append(work, i)
		}
	}
	return work
}

// Sort sorts the '#'-terminated items on tape src in ascending order,
// in place, merging FanIn runs per pass over the given work tapes (at
// least FanIn of them; extras are ignored). Total head reversals are
// O(log_k(m/runLen)) passes × O(k) reversals, with all buffers charged
// to the machine's meter.
func (s Sorter) Sort(m *core.Machine, src int, work []int) error {
	return s.sort(m, src, work, false)
}

// SortToTape copies the machine's input tape (tape 0) onto dst in one
// scan and sorts dst with the engine, leaving the input intact — the
// Corollary 10 sorting problem as a function computation.
func (s Sorter) SortToTape(m *core.Machine, dst int, work []int) error {
	if dst == 0 {
		return fmt.Errorf("algorithms: Sorter cannot sort onto the input tape")
	}
	in := m.Tape(0)
	td := m.Tape(dst)
	if err := in.Rewind(); err != nil {
		return err
	}
	if err := td.Rewind(); err != nil {
		return err
	}
	td.Truncate()
	if err := CopyTape(in, td); err != nil {
		return err
	}
	return s.Sort(m, dst, work)
}

// MergeTapes k-way merges the sorted '#'-terminated item sequences on
// the src tapes onto dst through the loser tree, optionally dropping
// adjacent duplicates while writing (set semantics). Each src is read
// in one forward scan and dst is truncated and written in one forward
// sweep, so the pass costs one scan per tape. The lane buffers (one
// item per src) and, for more than two lanes, the tree's internal
// nodes are charged to the meter — the same accounting as a Sorter
// merge pass. It is the final fan-in stage of the sharded sort
// (internal/shard): per-shard sorted outputs arrive on dedicated tapes
// and leave as one globally sorted sequence.
func MergeTapes(m *core.Machine, dst int, srcs []int, dedup bool) error {
	if len(srcs) == 0 {
		return rewindTruncateTape(m.Tape(dst))
	}
	seen := map[int]bool{dst: true}
	for _, s := range srcs {
		if seen[s] {
			return fmt.Errorf("algorithms: MergeTapes needs distinct tapes, got dst %d and srcs %v", dst, srcs)
		}
		seen[s] = true
	}
	k := len(srcs)
	st := &sortState{
		m:     m,
		mem:   m.Mem(),
		src:   m.Tape(dst),
		lanes: make([]*tape.Tape, k),
		laneR: make([]string, k),
		k:     k,
	}
	for i, s := range srcs {
		st.lanes[i] = m.Tape(s)
		st.laneR[i] = itemRegion(fmt.Sprintf("sort.run%d", i))
	}
	defer st.freeRegions()
	if k > 2 {
		if err := st.mem.Set(counterRegion("sort.tree"), int64((k-1)*bitsFor(k))); err != nil {
			return err
		}
	}
	st.tree = newLoserTree(k)
	// Each lane holds exactly one (whole-tape) run: a single merge pass
	// with an unbounded per-lane run length consumes everything.
	return st.merge(math.MaxInt, k, dedup)
}

// sort runs the engine. countPrepass selects the legacy accounting
// mode used by the MergeSort wrapper: a dedicated CountItems scan
// before the first pass, exactly as the historical implementation did,
// so accounting-sensitive callers see bitwise-identical resources.
func (s Sorter) sort(m *core.Machine, src int, work []int, countPrepass bool) error {
	k := s.fanIn()
	if len(work) < k {
		return fmt.Errorf("algorithms: Sorter fan-in %d needs %d work tapes, got %d", k, k, len(work))
	}
	work = work[:k]
	seen := map[int]bool{src: true}
	for _, w := range work {
		if seen[w] {
			return fmt.Errorf("algorithms: Sorter needs distinct tapes, got src %d and work %v", src, work)
		}
		seen[w] = true
	}

	st := &sortState{
		m:     m,
		mem:   m.Mem(),
		src:   m.Tape(src),
		lanes: make([]*tape.Tape, k),
		laneR: make([]string, k),
		k:     k,
	}
	for i, w := range work {
		st.lanes[i] = m.Tape(w)
		st.laneR[i] = itemRegion(fmt.Sprintf("sort.run%d", i))
	}
	defer st.freeRegions()

	if err := st.src.Rewind(); err != nil {
		return err
	}

	total := -1 // -1: unknown, counted during the first sweep
	runLen := 1
	onLanes := false

	switch {
	case countPrepass:
		// Legacy mode: dedicated counting scan, single-item runs.
		n, err := CountItems(st.src, st.mem, "sort.count")
		if err != nil {
			return err
		}
		if n <= 1 {
			return st.src.Rewind()
		}
		total = n
	case s.RunMemoryBits > 0:
		done, n, rl, err := st.formRuns(s.RunMemoryBits, s.Dedup)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		total, runLen, onLanes = n, rl, true
	}

	// The loser tree's internal nodes (lane indices) are machine
	// state; a 2-way merge needs none (the comparison is direct), which
	// keeps the legacy wrapper's accounting unchanged.
	if k > 2 {
		if err := st.mem.Set(counterRegion("sort.tree"), int64((k-1)*bitsFor(k))); err != nil {
			return err
		}
	}
	st.tree = newLoserTree(k)

	for total < 0 || runLen < total {
		if err := chargeCounter(st.mem, "sort.runlen", uint64(runLen)); err != nil {
			return err
		}
		if !onLanes {
			n, err := st.distribute(runLen, total)
			if err != nil {
				return err
			}
			if total < 0 {
				total = n
			}
		}
		if total == 0 {
			break
		}
		runs := (total + runLen - 1) / runLen
		final := total <= runLen*k
		if err := st.merge(runLen, min(k, runs), final && s.Dedup); err != nil {
			return err
		}
		onLanes = false
		runLen *= k
	}
	return st.src.Rewind()
}

// sortState carries one engine invocation.
type sortState struct {
	m     *core.Machine
	mem   *memory.Meter
	src   *tape.Tape
	lanes []*tape.Tape
	laneR []string // meter region per lane's buffered item
	k     int
	tree  *loserTree
}

func (st *sortState) freeRegions() {
	mem := st.mem
	mem.Free(counterRegion("sort.runlen"))
	mem.Free(counterRegion("sort.tree"))
	mem.Free(itemRegion("sort.runbuf"))
	mem.Free(itemRegion("sort.dedupprev"))
	for _, r := range st.laneR {
		mem.Free(r)
	}
}

// formRuns is the run-formation pass: it reads src once, buffering
// items in internal memory up to the budget, and writes sorted runs
// round-robin onto the lanes, counting items as it goes. If the whole
// input fits in one run, the sorted (and optionally deduplicated) run
// is written straight back to src and done is true.
func (st *sortState) formRuns(budget int64, dedup bool) (done bool, total, runLen0 int, err error) {
	mem := st.mem
	bufRegion := itemRegion("sort.runbuf")
	headRegion := itemRegion("sort.form")
	defer mem.Free(headRegion)

	var run [][]byte
	planner := RunPlanner{Budget: budget}
	runCount := 0
	prepared := make([]bool, st.k)

	flush := func() error {
		lane := st.lanes[runCount%st.k]
		if !prepared[runCount%st.k] {
			if err := rewindTruncateTape(lane); err != nil {
				return err
			}
			prepared[runCount%st.k] = true
		}
		sortItems(run)
		for _, it := range run {
			if err := WriteItem(lane, it); err != nil {
				return err
			}
		}
		runCount++
		run = run[:0]
		return mem.Set(bufRegion, 0)
	}

	for {
		item, ok, rerr := ReadItem(st.src, mem, headRegion)
		if rerr != nil {
			return false, 0, 0, rerr
		}
		if !ok {
			break
		}
		total++
		// The planner applies the greedy fixed-count rule: the first
		// run fills the budget, its item count becomes the per-run
		// count. A new run flushes the buffered one.
		if planner.Next(int64(len(item))) && len(run) > 0 {
			if err := flush(); err != nil {
				return false, 0, 0, err
			}
		}
		// The item moves from the read head into the run buffer: hand
		// the charge over so the peak is the buffer size, not double.
		if err := mem.Set(headRegion, 0); err != nil {
			return false, 0, 0, err
		}
		if err := mem.Grow(bufRegion, int64(len(item))); err != nil {
			return false, 0, 0, err
		}
		run = append(run, item)
	}
	runLen0 = planner.RunLen

	if runCount == 0 {
		// Whole input fit in internal memory: one run, written sorted
		// (and deduplicated, if requested) straight back to src.
		sortItems(run)
		if err := rewindTruncateTape(st.src); err != nil {
			return false, 0, 0, err
		}
		var prev []byte
		for i, it := range run {
			if dedup && i > 0 && Compare(it, prev) == 0 {
				continue
			}
			if err := WriteItem(st.src, it); err != nil {
				return false, 0, 0, err
			}
			prev = it
		}
		mem.Free(itemRegion("sort.runbuf"))
		return true, total, 0, st.src.Rewind()
	}
	if len(run) > 0 {
		if err := flush(); err != nil {
			return false, 0, 0, err
		}
	}
	mem.Free(bufRegion)
	return false, total, runLen0, nil
}

// distribute copies runs of runLen items from src round-robin onto the
// lanes. total < 0 means the item count is still unknown: lanes are
// prepared lazily and the copied items are counted (this folds the
// legacy counting pre-pass into the first distribution). The returned
// count is the number of items moved.
func (st *sortState) distribute(runLen, total int) (int, error) {
	if err := st.src.Rewind(); err != nil {
		return 0, err
	}
	active := st.k
	if total >= 0 {
		runs := (total + runLen - 1) / runLen
		active = min(st.k, runs)
		// Only the lanes that will receive runs are touched; idle
		// lanes cost no head reversals.
		for i := 0; i < active; i++ {
			if err := rewindTruncateTape(st.lanes[i]); err != nil {
				return 0, err
			}
		}
	}
	prepared := total >= 0
	var preparedLanes []bool
	if !prepared {
		preparedLanes = make([]bool, st.k)
	}
	moved := 0
	lane := 0
	for !st.src.AtEnd() {
		dst := st.lanes[lane]
		if !prepared && !preparedLanes[lane] {
			if err := rewindTruncateTape(dst); err != nil {
				return 0, err
			}
			preparedLanes[lane] = true
		}
		n, err := CopyItems(st.src, dst, runLen)
		if err != nil {
			return 0, err
		}
		moved += n
		lane = (lane + 1) % active
	}
	return moved, nil
}

// merge is one merge pass: groups of up to one run per active lane are
// routed through the loser tree onto src, k·runLen items per output
// run. When dedup is set (final pass only), adjacent duplicates are
// dropped as the output is written.
func (st *sortState) merge(runLen, active int, dedup bool) error {
	if err := st.src.Rewind(); err != nil {
		return err
	}
	st.src.Truncate()
	for i := 0; i < active; i++ {
		if err := st.lanes[i].Rewind(); err != nil {
			return err
		}
	}
	anyLeft := func() bool {
		for i := 0; i < active; i++ {
			if !st.lanes[i].AtEnd() {
				return true
			}
		}
		return false
	}
	for anyLeft() {
		if err := st.mergeGroup(runLen, active, dedup); err != nil {
			return err
		}
	}
	return nil
}

// mergeGroup merges one run (up to runLen items) from each of the
// active lanes onto src via the loser tree, preferring the lowest lane
// index on ties (which for fan-in 2 reproduces the legacy merge's
// read/write order exactly).
func (st *sortState) mergeGroup(runLen, active int, dedup bool) error {
	mem := st.mem
	items := make([][]byte, active)
	have := make([]bool, active)
	seen := make([]int, active)

	load := func(i int) error {
		if have[i] || seen[i] >= runLen || st.lanes[i].AtEnd() {
			return nil
		}
		item, ok, err := ReadItem(st.lanes[i], mem, st.laneR[i])
		if err != nil {
			return err
		}
		if ok {
			items[i], have[i] = item, true
			seen[i]++
		}
		return nil
	}

	var prev []byte
	havePrev := false
	emit := func(i int) error {
		have[i] = false
		if dedup {
			if havePrev && Compare(items[i], prev) == 0 {
				return nil
			}
			prev = append(prev[:0], items[i]...)
			if err := mem.Set(itemRegion("sort.dedupprev"), int64(len(prev))); err != nil {
				return err
			}
			havePrev = true
		}
		return WriteItem(st.src, items[i])
	}

	// First round: fill every lane buffer in lane order, then build
	// the tree; afterwards only the winner's lane reloads and replays
	// its path.
	for i := 0; i < active; i++ {
		if err := load(i); err != nil {
			return err
		}
	}
	less := func(a, b int) bool {
		switch {
		case !have[a]:
			return false
		case !have[b]:
			return true
		}
		if c := Compare(items[a], items[b]); c != 0 {
			return c < 0
		}
		return a < b
	}
	st.tree.build(active, less)
	for {
		w := st.tree.winner()
		if !have[w] {
			return nil // every lane's run exhausted: group done
		}
		if err := emit(w); err != nil {
			return err
		}
		if err := load(w); err != nil {
			return err
		}
		st.tree.replay(w, less)
	}
}

// sortItems sorts a run buffer in internal memory (free in the ST
// model: only the buffer's size is charged, via the meter).
func sortItems(run [][]byte) {
	sort.Slice(run, func(i, j int) bool { return Compare(run[i], run[j]) < 0 })
}

func rewindTruncateTape(t *tape.Tape) error {
	if err := t.Rewind(); err != nil {
		return err
	}
	t.Truncate()
	return nil
}

// bitsFor returns the number of bits needed to store a lane index
// below k.
func bitsFor(k int) int {
	b := 1
	for 1<<b < k {
		b++
	}
	return b
}

// loserTree is a tournament tree over up to k lanes: node[0] holds the
// overall winner, the internal nodes hold the losers of their matches.
// Selecting the next item after a replacement costs ⌈log₂ k⌉ lane
// comparisons instead of k−1.
type loserTree struct {
	size int   // number of competing lanes in this build
	node []int // 1-based heap layout; node[0] = winner
}

func newLoserTree(k int) *loserTree {
	return &loserTree{node: make([]int, k)}
}

// build plays the full tournament over lanes 0..active-1.
func (t *loserTree) build(active int, less func(a, b int) bool) {
	t.size = active
	if active == 1 {
		t.node[0] = 0
		return
	}
	for i := range t.node {
		t.node[i] = -1
	}
	for lane := 0; lane < active; lane++ {
		t.play(lane, less)
	}
}

// replay re-runs lane's path to the root after its item was replaced.
func (t *loserTree) replay(lane int, less func(a, b int) bool) {
	if t.size <= 1 {
		return
	}
	t.play(lane, less)
}

func (t *loserTree) winner() int { return t.node[0] }

// play pushes lane from its leaf toward the root, swapping with stored
// losers it beats; the survivor lands in node[0].
func (t *loserTree) play(lane int, less func(a, b int) bool) {
	w := lane
	for i := (lane + t.size) / 2; i >= 1; i /= 2 {
		if t.node[i] == -1 {
			// First visit to this match: park here and stop; the
			// opponent will pick the duel up when it arrives.
			t.node[i] = w
			return
		}
		if less(t.node[i], w) {
			w, t.node[i] = t.node[i], w
		}
		if i == 1 {
			break
		}
	}
	t.node[0] = w
}
