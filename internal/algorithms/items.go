// Package algorithms implements the paper's upper-bound algorithms on
// the instrumented ST machine of internal/core:
//
//   - external tape merge sort with O(log N) head reversals
//     (Corollary 7 / Chen–Yap),
//   - the deterministic deciders for SET-EQUALITY, MULTISET-EQUALITY
//     and CHECK-SORT built on the sort,
//   - the randomized fingerprinting decider of Theorem 8(a) for
//     MULTISET-EQUALITY (2 scans, O(log N) internal memory, one-sided
//     error with false positives only),
//   - the nondeterministic certificate verifier of Theorem 8(b)
//     (3 scans, 2 work tapes), and
//   - the Las Vegas sorting wrapper of Corollary 10.
//
// Data on tapes follows the paper's input format: a sequence of
// '#'-terminated 0-1-strings. Internal-memory buffers and counters are
// charged to the machine's memory meter (one unit per buffered tape
// symbol, binary length for counters), so resource reports are exact.
package algorithms

import (
	"bytes"
	"fmt"

	"extmem/internal/core"
	"extmem/internal/memory"
	"extmem/internal/problems"
	"extmem/internal/tape"
)

// ReadItem reads the next '#'-terminated item from tp, head moving
// forward, buffering it in internal memory charged to the meter under
// the given region name. It returns ok = false (and releases the
// region) when the tape is exhausted before any symbol is read.
//
// The item is consumed in one bulk sweep before the buffer is charged,
// so on a memory-budget refusal the tape counters cover the whole item
// rather than a prefix; such errors abort the run, so no resource
// report is produced.
func ReadItem(tp *tape.Tape, mem *memory.Meter, region string) (item []byte, ok bool, err error) {
	if tp.AtEnd() {
		mem.Free(region)
		return nil, false, nil
	}
	if err := mem.Set(region, 0); err != nil {
		return nil, false, err
	}
	data, found, err := tp.ScanUntil(problems.Separator)
	if err != nil {
		return nil, false, err
	}
	if !found {
		return nil, false, fmt.Errorf("algorithms: item on tape %q not terminated by %q", tp.Name(), problems.Separator)
	}
	item = data[:len(data)-1]
	// The buffer grew one symbol at a time; its peak is its final size.
	if err := mem.Grow(region, int64(len(item))); err != nil {
		return nil, false, err
	}
	return item, true, nil
}

// ReadItemInto is ReadItem with a caller-supplied buffer: the item is
// read into buf[:0] (growing it only when an item exceeds the buffer's
// capacity) so hot loops reuse one allocation per stream instead of one
// per item. Tape and meter accounting are identical to ReadItem; the
// returned slice aliases the buffer and is valid until the next call
// that reuses it.
func ReadItemInto(tp *tape.Tape, mem *memory.Meter, region string, buf []byte) (item []byte, ok bool, err error) {
	if tp.AtEnd() {
		mem.Free(region)
		return buf[:0], false, nil
	}
	if err := mem.Set(region, 0); err != nil {
		return buf[:0], false, err
	}
	data, found, err := tp.ScanUntilAppend(problems.Separator, buf)
	if err != nil {
		return data, false, err
	}
	if !found {
		return data, false, fmt.Errorf("algorithms: item on tape %q not terminated by %q", tp.Name(), problems.Separator)
	}
	item = data[:len(data)-1]
	// The buffer grew one symbol at a time; its peak is its final size.
	if err := mem.Grow(region, int64(len(item))); err != nil {
		return item, false, err
	}
	return item, true, nil
}

// WriteItem writes item followed by the separator at the head of tp,
// moving forward.
func WriteItem(tp *tape.Tape, item []byte) error {
	if err := tp.AppendBytes(item); err != nil {
		return err
	}
	return tp.WriteMove(problems.Separator, tape.Forward)
}

// Compare orders two items like CHECK-SORT does: standard
// lexicographic byte order (for the paper's equal-length 0-1-strings
// this coincides with numeric order).
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// chunkCells is the block size of the chunked whole-tape sweeps
// (CountItems, CopyTape): large enough to amortize per-call cost,
// small enough that file- and mmap-backed tapes are swept with O(1)
// internal buffering instead of pulling the whole tape into RAM.
const chunkCells = 64 << 10

// CountItems scans tp forward from the current head position to the
// end and returns the number of '#'-terminated items, using only a
// counter in internal memory (no item buffering). The sweep reads in
// chunkCells blocks; tape accounting is identical to one ScanBytes
// (at most one forward turn, one read and one step per cell).
func CountItems(tp *tape.Tape, mem *memory.Meter, region string) (int, error) {
	count := 0
	for !tp.AtEnd() {
		data, err := tp.ReadBlock(min(chunkCells, tp.Len()-tp.Pos()))
		if err != nil {
			return 0, err
		}
		count += bytes.Count(data, []byte{problems.Separator})
	}
	// The counter only ever grows, so charging its final value records
	// the same peak as charging it after every separator.
	if count > 0 {
		if err := mem.SetInt(region, uint64(count)); err != nil {
			return 0, err
		}
	}
	mem.Free(region)
	return count, nil
}

// CopyTape appends everything from src's current head position to the
// end of its materialized region onto dst, in chunkCells blocks with
// O(1) internal memory. Tape accounting is identical to a single
// ScanBytes + WriteBlock: at most one forward turn per tape, one
// read/step per src cell, one write/step per dst cell.
func CopyTape(src, dst *tape.Tape) error {
	for !src.AtEnd() {
		data, err := src.ReadBlock(min(chunkCells, src.Len()-src.Pos()))
		if err != nil {
			return err
		}
		if err := dst.WriteBlock(data); err != nil {
			return err
		}
	}
	return nil
}

// CopyItems copies count items from src (head moving forward) to dst,
// item block by item block with O(1) internal memory. It returns the
// number of items actually copied (less than count if src ran out).
func CopyItems(src, dst *tape.Tape, count int) (int, error) {
	copied := 0
	for copied < count && !src.AtEnd() {
		data, found, err := src.ScanUntil(problems.Separator)
		if err != nil {
			return copied, err
		}
		if err := dst.WriteBlock(data); err != nil {
			return copied, err
		}
		if !found {
			return copied, fmt.Errorf("algorithms: unterminated item while copying from %q", src.Name())
		}
		copied++
	}
	return copied, nil
}

// itemRegion builds a meter region name for a buffered item.
func itemRegion(tag string) string { return "item." + tag }

// counterRegion builds a meter region name for a counter.
func counterRegion(tag string) string { return "counter." + tag }

// chargeCounter records the value of a named counter on the meter.
func chargeCounter(mem *memory.Meter, tag string, v uint64) error {
	return mem.SetInt(counterRegion(tag), v)
}

// verdictOf converts a boolean decision to a core.Verdict.
func verdictOf(b bool) core.Verdict {
	if b {
		return core.Accept
	}
	return core.Reject
}
