package algorithms

import (
	"math/rand"
	"testing"

	"extmem/internal/core"
	"extmem/internal/perm"
	"extmem/internal/problems"
)

func nstMachine(in problems.Instance) *core.Machine {
	m := core.NewMachine(2, 1)
	m.SetInput(in.Encode())
	return m
}

func TestNSTHonestWitnessAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cases := []struct {
		p   NSTProblem
		gen func() problems.Instance
	}{
		{NSTMultisetEquality, func() problems.Instance { return problems.GenMultisetYes(1+rng.Intn(6), 1+rng.Intn(4), rng) }},
		{NSTSetEquality, func() problems.Instance { return problems.GenSetYes(1+rng.Intn(6), 6, rng) }},
		{NSTCheckSort, func() problems.Instance { return problems.GenCheckSortYes(1+rng.Intn(6), 1+rng.Intn(4), rng) }},
	}
	for _, c := range cases {
		for trial := 0; trial < 15; trial++ {
			in := c.gen()
			m := nstMachine(in)
			v, err := DecideNST(c.p, m, in)
			if err != nil {
				t.Fatalf("%v: %v", c.p, err)
			}
			if v != core.Accept {
				t.Fatalf("%v rejected yes-instance %+v", c.p, in)
			}
		}
	}
}

func TestNSTNoInstanceHasNoHonestWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	cases := []struct {
		p   NSTProblem
		gen func() problems.Instance
	}{
		{NSTMultisetEquality, func() problems.Instance { return problems.GenMultisetNo(2+rng.Intn(5), 2+rng.Intn(4), rng) }},
		{NSTSetEquality, func() problems.Instance { return problems.GenSetNo(2+rng.Intn(5), 6, rng) }},
		{NSTCheckSort, func() problems.Instance { return problems.GenCheckSortNo(2+rng.Intn(5), 2+rng.Intn(4), rng) }},
	}
	for _, c := range cases {
		for trial := 0; trial < 15; trial++ {
			in := c.gen()
			m := nstMachine(in)
			v, err := DecideNST(c.p, m, in)
			if err != nil {
				t.Fatalf("%v: %v", c.p, err)
			}
			if v != core.Reject {
				t.Fatalf("%v accepted no-instance %+v", c.p, in)
			}
		}
	}
}

// Soundness of the verifier itself: on a no-instance, EVERY witness
// permutation must be rejected (exhaustive over all m! permutations
// for small m).
func TestNSTVerifierSoundExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	in := problems.GenMultisetNo(4, 3, rng)
	perms := allPermutations(4)
	for _, pi := range perms {
		w := NSTWitness{Values: in, Pi: pi}
		m := nstMachine(in)
		v, err := VerifyNST(NSTMultisetEquality, m, w)
		if err != nil {
			t.Fatal(err)
		}
		if v == core.Accept {
			t.Fatalf("verifier accepted no-instance %+v with witness %v", in, pi)
		}
	}
}

// Completeness direction of the ∃-semantics: on a yes-instance, SOME
// witness is accepted (exhaustive search agrees with HonestWitness).
func TestNSTVerifierCompleteExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	in := problems.GenMultisetYes(4, 3, rng)
	found := false
	for _, pi := range allPermutations(4) {
		w := NSTWitness{Values: in, Pi: pi}
		m := nstMachine(in)
		v, err := VerifyNST(NSTMultisetEquality, m, w)
		if err != nil {
			t.Fatal(err)
		}
		if v == core.Accept {
			found = true
		}
	}
	if !found {
		t.Fatalf("no witness accepted for yes-instance %+v", in)
	}
}

func allPermutations(m int) []perm.Perm {
	var out []perm.Perm
	var rec func(cur []int, used []bool)
	rec = func(cur []int, used []bool) {
		if len(cur) == m {
			out = append(out, append(perm.Perm{}, cur...))
			return
		}
		for v := 0; v < m; v++ {
			if !used[v] {
				used[v] = true
				rec(append(cur, v), used)
				used[v] = false
			}
		}
	}
	rec(nil, make([]bool, m))
	return out
}

// A witness that lies about the values is caught by the backward
// structural scan.
func TestNSTLyingValuesRejected(t *testing.T) {
	in := problems.Instance{V: []string{"01", "10"}, W: []string{"10", "01"}}
	lying := problems.Instance{V: []string{"01", "01"}, W: []string{"01", "01"}}
	pi, ok := matchPermutation(lying)
	if !ok {
		t.Fatal("setup: lying instance should be matchable")
	}
	m := nstMachine(in)
	v, err := VerifyNST(NSTMultisetEquality, m, NSTWitness{Values: lying, Pi: pi})
	if err != nil {
		t.Fatal(err)
	}
	if v == core.Accept {
		t.Fatal("verifier accepted a witness lying about the values")
	}
}

// A witness with a non-injective "permutation" is caught by the
// injectivity copies.
func TestNSTNonInjectiveMappingRejected(t *testing.T) {
	in := problems.Instance{V: []string{"00", "00"}, W: []string{"00", "11"}}
	// v_0 = v_1 = 00; both map to w_0 = 00: every bit check passes,
	// only injectivity can catch it.
	w := NSTWitness{Values: in, Pi: perm.Perm{0, 0}}
	m := nstMachine(in)
	v, err := VerifyNST(NSTMultisetEquality, m, w)
	if err != nil {
		t.Fatal(err)
	}
	if v == core.Accept {
		t.Fatal("verifier accepted a non-injective mapping")
	}
}

// Theorem 8(b) resource bound: 3 sequential scans, 2 tapes, O(log N)
// internal memory.
func TestNSTResources(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, p := range []NSTProblem{NSTMultisetEquality, NSTSetEquality, NSTCheckSort} {
		var in problems.Instance
		switch p {
		case NSTSetEquality:
			in = problems.GenSetYes(4, 6, rng)
		case NSTCheckSort:
			in = problems.GenCheckSortYes(4, 4, rng)
		default:
			in = problems.GenMultisetYes(4, 4, rng)
		}
		m := nstMachine(in)
		v, err := DecideNST(p, m, in)
		if err != nil {
			t.Fatal(err)
		}
		if v != core.Accept {
			t.Fatalf("%v rejected yes-instance", p)
		}
		res := m.Resources()
		if res.Scans() > 3 {
			t.Fatalf("%v: %d scans, want <= 3", p, res.Scans())
		}
		bound := core.Bound{Name: "NST(3, 64 log N, 2)", R: core.ConstR(3), S: core.LogS(64), T: 2}
		if err := bound.Admits(res, in.Size()); err != nil {
			t.Fatalf("%v: %v (resources %v)", p, err, res)
		}
	}
}

// CHECK-SORT's sortedness copies must catch an unsorted second half
// even when the multiset matches.
func TestNSTCheckSortCatchesUnsorted(t *testing.T) {
	in := problems.Instance{V: []string{"01", "10"}, W: []string{"10", "01"}} // multiset equal, W unsorted
	pi, ok := matchPermutation(in)
	if !ok {
		t.Fatal("setup failed")
	}
	m := nstMachine(in)
	v, err := VerifyNST(NSTCheckSort, m, NSTWitness{Values: in, Pi: pi})
	if err != nil {
		t.Fatal(err)
	}
	if v == core.Accept {
		t.Fatal("CHECK-SORT verifier accepted unsorted second half")
	}
}

func TestNSTEmptyInstance(t *testing.T) {
	in := problems.Instance{}
	for _, p := range []NSTProblem{NSTMultisetEquality, NSTSetEquality, NSTCheckSort} {
		m := nstMachine(in)
		v, err := DecideNST(p, m, in)
		if err != nil {
			t.Fatal(err)
		}
		if v != core.Accept {
			t.Fatalf("%v rejected empty instance", p)
		}
	}
}

func TestNSTVariableLengthValues(t *testing.T) {
	// The bit checks compare positions 1..N and "no such bit" states;
	// variable-length values must work.
	in := problems.Instance{V: []string{"0", "1101"}, W: []string{"1101", "0"}}
	m := nstMachine(in)
	v, err := DecideNST(NSTMultisetEquality, m, in)
	if err != nil {
		t.Fatal(err)
	}
	if v != core.Accept {
		t.Fatal("variable-length yes-instance rejected")
	}
	// And a near-miss: "0" vs "00" must NOT be identified.
	in2 := problems.Instance{V: []string{"0", "11"}, W: []string{"00", "11"}}
	m2 := nstMachine(in2)
	v2, err := DecideNST(NSTMultisetEquality, m2, in2)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != core.Reject {
		t.Fatal("prefix-differing values identified")
	}
}

func TestNSTProblemString(t *testing.T) {
	if NSTMultisetEquality.String() == "" || NSTSetEquality.String() == "" || NSTCheckSort.String() == "" {
		t.Fatal("empty NSTProblem strings")
	}
}

func TestHonestWitnessSetEquality(t *testing.T) {
	in := problems.Instance{V: []string{"00", "00", "11"}, W: []string{"11", "00", "11"}}
	w, ok := HonestWitness(NSTSetEquality, in)
	if !ok {
		t.Fatal("set-equal instance has no witness")
	}
	for i, f := range w.F {
		if in.V[i] != in.W[f] {
			t.Fatalf("f(%d) wrong", i)
		}
	}
	for j, g := range w.G {
		if in.W[j] != in.V[g] {
			t.Fatalf("g(%d) wrong", j)
		}
	}
	m := nstMachine(in)
	v, err := VerifyNST(NSTSetEquality, m, w)
	if err != nil || v != core.Accept {
		t.Fatalf("set-equality verifier: %v, %v", v, err)
	}
}
