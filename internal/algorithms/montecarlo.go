package algorithms

import (
	"context"

	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/trials"
)

// This file hosts the Monte-Carlo fleet entry points of the
// randomized algorithms: error-rate estimation for the Theorem 8(a)
// fingerprint and independent-repetition amplification. All of them
// run on the trials engine, so per-trial randomness is derived from
// the root seed alone and results are identical at any worker count.

// FingerprintErrorEstimate is the measured error profile of the
// Theorem 8(a) decider over two independent trial fleets (one of
// yes-instances, one of no-instances).
type FingerprintErrorEstimate struct {
	M, N   int // instance shape: values per half, bits per value
	Trials int // fleet size per side

	YesErrors    int // rejected yes-instances (completeness violations; must be 0)
	FalseAccepts int // accepted no-instances (the one-sided error)

	// Wilson 95% confidence interval on the false-accept probability.
	FalseAcceptLo, FalseAcceptHi float64

	// Resource profile of one representative run (the decider is
	// resource-deterministic: always 2 scans, O(log N) bits).
	Scans   int
	MemBits int64
	Size    int // encoded instance size N
}

// EstimateFingerprintErrors runs 2·nTrials independent fingerprint
// trials (nTrials yes-instances, nTrials no-instances of shape m×n)
// on fleets built by launch — a worker pool (trials.Pool) or a sharded
// fleet (internal/shard.Launch); nil means a default pool — and
// aggregates the Theorem 8(a) error profile. Each trial generates its
// instance and draws its machine coins from a private rng derived from
// seed and the trial index, so the estimate is reproducible at any
// parallelism and shard count. ctx bounds both fleets (nil means no
// bound).
func EstimateFingerprintErrors(ctx context.Context, m, n, nTrials int, launch trials.Launcher, seed int64) (FingerprintErrorEstimate, error) {
	if launch == nil {
		launch = trials.Pool(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	est := FingerprintErrorEstimate{M: m, N: n, Trials: nTrials}
	fleet := func(root int64, yes bool) (trials.Summary, error) {
		// The trial body and its wire form come from the same
		// constructor: an execution shape that ships the fleet to a
		// worker process rebuilds exactly this function.
		w, fn := FingerprintGenWorkload(m, n, yes)
		_, sum, err := launch(nTrials, root, nil).Run(trials.WithWorkload(ctx, w), fn)
		return sum, err
	}
	yesSum, err := fleet(trials.Seed(seed, 0), true)
	if err != nil {
		return est, err
	}
	noSum, err := fleet(trials.Seed(seed, 1), false)
	if err != nil {
		return est, err
	}
	est.YesErrors = yesSum.Trials - yesSum.Accepts
	est.FalseAccepts = noSum.Accepts
	est.FalseAcceptLo, est.FalseAcceptHi = noSum.AcceptCI(1.96)

	// One representative run for the (deterministic) resource profile.
	rng := trials.RNG(seed, 2)
	in := problems.GenMultisetYes(m, n, rng)
	mach := core.NewMachine(1, rng.Int63())
	mach.SetInput(in.Encode())
	if _, _, err := FingerprintMultisetEquality(mach); err != nil {
		return est, err
	}
	res := mach.Resources()
	est.Scans, est.MemBits, est.Size = res.Scans(), res.PeakMemoryBits, in.Size()
	return est, nil
}

// FingerprintRepeatedFleet is the parallel, schedule-independent form
// of FingerprintRepeated: s independent repetitions of the Theorem
// 8(a) decider on the same encoded input, each on its own machine
// whose coins derive from (seed, repetition index) — unlike
// FingerprintRepeated, whose repetitions draw sequentially from one
// machine's rng and therefore cannot be parallelized. The fleet runs
// on launch (nil means a default worker pool). The verdict is Reject
// iff any repetition rejects (perfect completeness is preserved; the
// false-accept probability decays exponentially in s). ctx bounds the
// fleet (nil means no bound).
func FingerprintRepeatedFleet(ctx context.Context, input []byte, s int, launch trials.Launcher, seed int64) (core.Verdict, trials.Summary, error) {
	if launch == nil {
		launch = trials.Pool(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w, fn := FingerprintInputWorkload(input)
	_, sum, err := launch(s, seed, nil).Run(trials.WithWorkload(ctx, w), fn)
	if err != nil {
		return core.Reject, sum, err
	}
	if sum.Accepts == sum.Trials {
		return core.Accept, sum, nil
	}
	return core.Reject, sum, nil
}
