package algorithms

import (
	"fmt"

	"extmem/internal/core"
	"extmem/internal/tape"
)

// Tape roles for the deterministic deciders: the input is on tape 0;
// tapes 1 and 2 hold the two halves; tapes 3–6 are merge lanes for the
// k-way sort engine (fan-in deciderFanIn). Corollary 7 achieves t = 2
// with the Chen–Yap in-place machinery; our implementation spends a
// constant number of extra tapes instead, which leaves the
// ST(O(log N), ·, O(1)) classification unchanged — and buys back
// reversals: ⌈log₄⌉ merge passes instead of ⌈log₂⌉, on top of
// run-formation memory eliminating the first ~log₂(runLen) passes.
const (
	tapeInput = 0
	tapeV     = 1
	tapeW     = 2
	tapeAuxA  = 3
	tapeAuxB  = 4
	tapeAuxC  = 5
	tapeAuxD  = 6
)

// NumDeciderTapes is the number of external tapes the deterministic
// deciders need.
const NumDeciderTapes = 7

// deciderFanIn is the merge fan-in of the deciders' sorts: the four
// lanes tapeAuxA–tapeAuxD.
const deciderFanIn = 4

// deciderSort sorts one half-tape with the k-way engine over the
// decider machines' four merge lanes.
func deciderSort(m *core.Machine, src int) error {
	return Sorter{FanIn: deciderFanIn, RunMemoryBits: DefaultRunMemoryBits}.
		Sort(m, src, []int{tapeAuxA, tapeAuxB, tapeAuxC, tapeAuxD})
}

// SplitHalves copies the first half of the input items (tape 0) onto
// tape dstV and the second half onto dstW, using two scans of the
// input (one to count, one to distribute).
func SplitHalves(m *core.Machine, dstV, dstW int) error {
	in := m.Tape(tapeInput)
	if err := in.Rewind(); err != nil {
		return err
	}
	total, err := CountItems(in, m.Mem(), "split.count")
	if err != nil {
		return err
	}
	if total%2 != 0 {
		return fmt.Errorf("algorithms: input has an odd number of items (%d)", total)
	}
	if err := in.Rewind(); err != nil {
		return err
	}
	tv := m.Tape(dstV)
	tw := m.Tape(dstW)
	if err := tv.Rewind(); err != nil {
		return err
	}
	tv.Truncate()
	if err := tw.Rewind(); err != nil {
		return err
	}
	tw.Truncate()
	if _, err := CopyItems(in, tv, total/2); err != nil {
		return err
	}
	if _, err := CopyItems(in, tw, total/2); err != nil {
		return err
	}
	return nil
}

// equalItemStreams reads items from ta and tb in lockstep (both heads
// moving forward from their current positions) and reports whether the
// two item sequences are identical.
func equalItemStreams(m *core.Machine, ta, tb *tape.Tape) (bool, error) {
	mem := m.Mem()
	defer mem.Free(itemRegion("cmp.a"))
	defer mem.Free(itemRegion("cmp.b"))
	for {
		a, okA, err := ReadItem(ta, mem, itemRegion("cmp.a"))
		if err != nil {
			return false, err
		}
		b, okB, err := ReadItem(tb, mem, itemRegion("cmp.b"))
		if err != nil {
			return false, err
		}
		if okA != okB {
			return false, nil
		}
		if !okA {
			return true, nil
		}
		if Compare(a, b) != 0 {
			return false, nil
		}
	}
}

// equalUniqueItemStreams reads two ascending-sorted item streams and
// reports whether their sets of distinct items coincide, skipping
// adjacent duplicates on each side with one extra item buffer per
// side.
func equalUniqueItemStreams(m *core.Machine, ta, tb *tape.Tape) (bool, error) {
	mem := m.Mem()
	defer func() {
		for _, r := range []string{"uniq.a", "uniq.b", "uniq.preva", "uniq.prevb"} {
			mem.Free(itemRegion(r))
		}
	}()
	var prevA, prevB []byte
	havePrevA, havePrevB := false, false
	readUniqueA := func() ([]byte, bool, error) {
		for {
			it, ok, err := ReadItem(ta, mem, itemRegion("uniq.a"))
			if err != nil || !ok {
				return nil, false, err
			}
			if havePrevA && Compare(it, prevA) == 0 {
				continue
			}
			prevA = append(prevA[:0], it...)
			if err := mem.Set(itemRegion("uniq.preva"), int64(len(prevA))); err != nil {
				return nil, false, err
			}
			havePrevA = true
			return it, true, nil
		}
	}
	readUniqueB := func() ([]byte, bool, error) {
		for {
			it, ok, err := ReadItem(tb, mem, itemRegion("uniq.b"))
			if err != nil || !ok {
				return nil, false, err
			}
			if havePrevB && Compare(it, prevB) == 0 {
				continue
			}
			prevB = append(prevB[:0], it...)
			if err := mem.Set(itemRegion("uniq.prevb"), int64(len(prevB))); err != nil {
				return nil, false, err
			}
			havePrevB = true
			return it, true, nil
		}
	}
	for {
		a, okA, err := readUniqueA()
		if err != nil {
			return false, err
		}
		b, okB, err := readUniqueB()
		if err != nil {
			return false, err
		}
		if okA != okB {
			return false, nil
		}
		if !okA {
			return true, nil
		}
		if Compare(a, b) != 0 {
			return false, nil
		}
	}
}

// isSortedStream reads the items of tp forward and reports whether
// they are in ascending order, buffering one previous item.
func isSortedStream(m *core.Machine, tp *tape.Tape) (bool, error) {
	mem := m.Mem()
	defer mem.Free(itemRegion("sorted.cur"))
	defer mem.Free(itemRegion("sorted.prev"))
	var prev []byte
	havePrev := false
	for {
		it, ok, err := ReadItem(tp, mem, itemRegion("sorted.cur"))
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		if havePrev && Compare(prev, it) > 0 {
			return false, nil
		}
		prev = append(prev[:0], it...)
		if err := mem.Set(itemRegion("sorted.prev"), int64(len(prev))); err != nil {
			return false, err
		}
		havePrev = true
	}
}

// MultisetEqualityST is the deterministic MULTISET-EQUALITY decider of
// Corollary 7: split the input halves onto two tapes, sort both with
// the external merge sort, and compare the sorted streams in one
// parallel scan. The machine must have NumDeciderTapes tapes with the
// instance encoded on tape 0.
func MultisetEqualityST(m *core.Machine) (core.Verdict, error) {
	if err := SplitHalves(m, tapeV, tapeW); err != nil {
		return core.Reject, err
	}
	if err := deciderSort(m, tapeV); err != nil {
		return core.Reject, err
	}
	if err := deciderSort(m, tapeW); err != nil {
		return core.Reject, err
	}
	if err := m.Tape(tapeV).Rewind(); err != nil {
		return core.Reject, err
	}
	if err := m.Tape(tapeW).Rewind(); err != nil {
		return core.Reject, err
	}
	eq, err := equalItemStreams(m, m.Tape(tapeV), m.Tape(tapeW))
	if err != nil {
		return core.Reject, err
	}
	return verdictOf(eq), nil
}

// SetEqualityST is the deterministic SET-EQUALITY decider of
// Corollary 7: like MultisetEqualityST but comparing the streams of
// distinct items.
func SetEqualityST(m *core.Machine) (core.Verdict, error) {
	if err := SplitHalves(m, tapeV, tapeW); err != nil {
		return core.Reject, err
	}
	if err := deciderSort(m, tapeV); err != nil {
		return core.Reject, err
	}
	if err := deciderSort(m, tapeW); err != nil {
		return core.Reject, err
	}
	if err := m.Tape(tapeV).Rewind(); err != nil {
		return core.Reject, err
	}
	if err := m.Tape(tapeW).Rewind(); err != nil {
		return core.Reject, err
	}
	eq, err := equalUniqueItemStreams(m, m.Tape(tapeV), m.Tape(tapeW))
	if err != nil {
		return core.Reject, err
	}
	return verdictOf(eq), nil
}

// CheckSortST is the deterministic CHECK-SORT decider of Corollary 7:
// sort the first half and compare it item by item with the second
// half (the second half equals the ascending sort of the first half
// iff the sequences match).
func CheckSortST(m *core.Machine) (core.Verdict, error) {
	if err := SplitHalves(m, tapeV, tapeW); err != nil {
		return core.Reject, err
	}
	if err := deciderSort(m, tapeV); err != nil {
		return core.Reject, err
	}
	if err := m.Tape(tapeV).Rewind(); err != nil {
		return core.Reject, err
	}
	if err := m.Tape(tapeW).Rewind(); err != nil {
		return core.Reject, err
	}
	eq, err := equalItemStreams(m, m.Tape(tapeV), m.Tape(tapeW))
	if err != nil {
		return core.Reject, err
	}
	return verdictOf(eq), nil
}

// DecideST runs the deterministic Corollary 7 decider for the given
// problem on machine m (input on tape 0).
func DecideST(p int, m *core.Machine) (core.Verdict, error) {
	switch p {
	case 0:
		return SetEqualityST(m)
	case 1:
		return MultisetEqualityST(m)
	case 2:
		return CheckSortST(m)
	default:
		return core.Reject, fmt.Errorf("algorithms: unknown problem %d", p)
	}
}
