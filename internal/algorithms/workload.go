package algorithms

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/trials"
)

// This file gives the Monte-Carlo fleet entry points a wire form:
// each trial closure that is a pure function of a few bytes of
// configuration gets a registered trials.Workload builder, so a shard
// worker process (internal/transport) can reconstruct the exact trial
// function from the job frame and produce byte-identical rows. The
// constructors return the workload and the function as a pair — the
// coordinator runs the returned Func in-process and annotates its
// context with the returned Workload, and the worker rebuilds the same
// Func from the same spec; there is exactly one trial body per
// workload, never two copies to drift apart.
//
// Fleets whose closures capture live state (the Las Vegas sort's
// per-repetition result slice, the lower-bound adversary's stream
// factories) have no wire form: they run without an annotation and the
// transport's shard attempt transparently falls back to the in-process
// engine.

// Workload names, also the registry keys.
const (
	// WorkloadFingerprintGen is the Theorem 8(a) error-estimation
	// trial: generate a fresh yes/no multiset instance of shape M×N
	// from the trial rng, run the fingerprint decider on it.
	WorkloadFingerprintGen = "fingerprint-gen"
	// WorkloadFingerprintInput is the independent-repetition trial: run
	// the fingerprint decider on one fixed encoded input with fresh
	// coins per repetition.
	WorkloadFingerprintInput = "fingerprint-input"
	// WorkloadFingerprintValue is the census variant of the generated
	// no-instance trial: the row additionally records the trial's
	// random reduction prime p1, so equality checks across execution
	// shapes compare genuinely random per-trial content (E18).
	WorkloadFingerprintValue = "fingerprint-value"
)

// fingerprintGenSpec is the wire spec of WorkloadFingerprintGen.
type fingerprintGenSpec struct {
	M, N int
	Yes  bool
}

// fingerprintValueSpec is the wire spec of WorkloadFingerprintValue.
type fingerprintValueSpec struct {
	M, N int
}

func gobSpec(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		// The specs are tiny concrete structs; failure to encode one is
		// a programming error, not a runtime condition.
		panic(fmt.Sprintf("algorithms: encoding workload spec: %v", err))
	}
	return buf.Bytes()
}

func init() {
	trials.RegisterWorkload(WorkloadFingerprintGen, func(spec []byte) (trials.Func, error) {
		var s fingerprintGenSpec
		if err := gob.NewDecoder(bytes.NewReader(spec)).Decode(&s); err != nil {
			return nil, fmt.Errorf("algorithms: %s spec: %w", WorkloadFingerprintGen, err)
		}
		_, fn := FingerprintGenWorkload(s.M, s.N, s.Yes)
		return fn, nil
	})
	trials.RegisterWorkload(WorkloadFingerprintInput, func(spec []byte) (trials.Func, error) {
		_, fn := FingerprintInputWorkload(spec)
		return fn, nil
	})
	trials.RegisterWorkload(WorkloadFingerprintValue, func(spec []byte) (trials.Func, error) {
		var s fingerprintValueSpec
		if err := gob.NewDecoder(bytes.NewReader(spec)).Decode(&s); err != nil {
			return nil, fmt.Errorf("algorithms: %s spec: %w", WorkloadFingerprintValue, err)
		}
		_, fn := FingerprintValueWorkload(s.M, s.N)
		return fn, nil
	})
}

// FingerprintGenWorkload returns the generated-instance fingerprint
// trial of EstimateFingerprintErrors — one fresh m×n yes/no instance
// and one decider machine per trial, all randomness from the trial rng
// — together with its wire form.
func FingerprintGenWorkload(m, n int, yes bool) (trials.Workload, trials.Func) {
	w := trials.Workload{Name: WorkloadFingerprintGen, Spec: gobSpec(fingerprintGenSpec{M: m, N: n, Yes: yes})}
	return w, func(_ int, rng *rand.Rand) trials.Result {
		var in problems.Instance
		if yes {
			in = problems.GenMultisetYes(m, n, rng)
		} else {
			in = problems.GenMultisetNo(m, n, rng)
		}
		mach := core.NewMachine(1, rng.Int63())
		mach.SetInput(in.Encode())
		v, _, err := FingerprintMultisetEquality(mach)
		if err != nil {
			return trials.Result{Err: err.Error()}
		}
		return trials.Result{Accept: v == core.Accept}
	}
}

// FingerprintInputWorkload returns the fixed-input fingerprint trial
// of FingerprintRepeatedFleet — the decider on one encoded input,
// fresh coins per repetition — together with its wire form (the spec
// is the input itself).
func FingerprintInputWorkload(input []byte) (trials.Workload, trials.Func) {
	w := trials.Workload{Name: WorkloadFingerprintInput, Spec: input}
	return w, func(_ int, rng *rand.Rand) trials.Result {
		m := core.NewMachine(1, rng.Int63())
		m.SetInput(input)
		v, _, err := FingerprintMultisetEquality(m)
		if err != nil {
			return trials.Result{Err: err.Error()}
		}
		return trials.Result{Accept: v == core.Accept}
	}
}

// FingerprintValueWorkload returns the generated no-instance
// fingerprint trial that records the trial's random reduction prime p1
// in the row's Value — the E18 fleet body — together with its wire
// form.
func FingerprintValueWorkload(m, n int) (trials.Workload, trials.Func) {
	w := trials.Workload{Name: WorkloadFingerprintValue, Spec: gobSpec(fingerprintValueSpec{M: m, N: n})}
	return w, func(_ int, rng *rand.Rand) trials.Result {
		in := problems.GenMultisetNo(m, n, rng)
		mach := core.NewMachine(1, rng.Int63())
		mach.SetInput(in.Encode())
		v, params, err := FingerprintMultisetEquality(mach)
		if err != nil {
			return trials.Result{Err: err.Error()}
		}
		return trials.Result{Accept: v == core.Accept, Value: float64(params.P1)}
	}
}
