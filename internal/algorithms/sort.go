package algorithms

import (
	"fmt"

	"extmem/internal/core"
	"extmem/internal/tape"
)

// MergeSort sorts the '#'-terminated items on tape src of m in
// ascending order, in place, using tapes auxA and auxB as work tapes.
// It is the bottom-up balanced tape merge sort behind Corollary 7:
// runs of length L are distributed alternately onto the two work
// tapes and merged back, with L doubling each pass, so the number of
// passes is ⌈log₂ m⌉ and every pass costs a constant number of head
// reversals. Total head reversals are O(log N).
//
// Internal memory: two item buffers (O(n) for item length n — for the
// paper's SHORT instances this is O(log N), matching the paper's
// merge-sort bound ST(O(log N), O(log N), 3); the O(1)-memory
// Chen–Yap refinement is not implemented, see DESIGN.md) plus
// O(log N)-bit run counters, all charged to the machine's meter.
func MergeSort(m *core.Machine, src, auxA, auxB int) error {
	if src == auxA || src == auxB || auxA == auxB {
		return fmt.Errorf("algorithms: MergeSort needs three distinct tapes, got %d, %d, %d", src, auxA, auxB)
	}
	ts := m.Tape(src)
	ta := m.Tape(auxA)
	tb := m.Tape(auxB)
	mem := m.Mem()

	if err := ts.Rewind(); err != nil {
		return err
	}
	total, err := CountItems(ts, mem, "sort.count")
	if err != nil {
		return err
	}
	if total <= 1 {
		return ts.Rewind()
	}

	for runLen := 1; runLen < total; runLen *= 2 {
		if err := chargeCounter(mem, "sort.runlen", uint64(runLen)); err != nil {
			return err
		}
		// Distribute runs of length runLen alternately onto the two
		// work tapes.
		if err := ts.Rewind(); err != nil {
			return err
		}
		if err := ta.Rewind(); err != nil {
			return err
		}
		ta.Truncate()
		if err := tb.Rewind(); err != nil {
			return err
		}
		tb.Truncate()
		toA := true
		for !ts.AtEnd() {
			dst := ta
			if !toA {
				dst = tb
			}
			if _, err := CopyItems(ts, dst, runLen); err != nil {
				return err
			}
			toA = !toA
		}

		// Merge pairs of runs back onto src.
		if err := ts.Rewind(); err != nil {
			return err
		}
		ts.Truncate()
		if err := ta.Rewind(); err != nil {
			return err
		}
		if err := tb.Rewind(); err != nil {
			return err
		}
		for !ta.AtEnd() || !tb.AtEnd() {
			if err := mergeRuns(ta, tb, ts, runLen, m); err != nil {
				return err
			}
		}
	}
	mem.Free(counterRegion("sort.runlen"))
	mem.Free(itemRegion("sort.a"))
	mem.Free(itemRegion("sort.b"))
	return ts.Rewind()
}

// mergeRuns merges one run of up to runLen items from each of ta and
// tb onto dst. Each side buffers at most one item at a time.
func mergeRuns(ta, tb, dst *tape.Tape, runLen int, m *core.Machine) error {
	mem := m.Mem()
	var (
		bufA, bufB []byte
		haveA      bool
		haveB      bool
		seenA      int
		seenB      int
	)
	loadA := func() error {
		if haveA || seenA >= runLen || ta.AtEnd() {
			return nil
		}
		item, ok, err := ReadItem(ta, mem, itemRegion("sort.a"))
		if err != nil {
			return err
		}
		if ok {
			bufA, haveA = item, true
			seenA++
		}
		return nil
	}
	loadB := func() error {
		if haveB || seenB >= runLen || tb.AtEnd() {
			return nil
		}
		item, ok, err := ReadItem(tb, mem, itemRegion("sort.b"))
		if err != nil {
			return err
		}
		if ok {
			bufB, haveB = item, true
			seenB++
		}
		return nil
	}
	for {
		if err := loadA(); err != nil {
			return err
		}
		if err := loadB(); err != nil {
			return err
		}
		switch {
		case haveA && haveB:
			if Compare(bufA, bufB) <= 0 {
				if err := WriteItem(dst, bufA); err != nil {
					return err
				}
				haveA = false
			} else {
				if err := WriteItem(dst, bufB); err != nil {
					return err
				}
				haveB = false
			}
		case haveA:
			if err := WriteItem(dst, bufA); err != nil {
				return err
			}
			haveA = false
		case haveB:
			if err := WriteItem(dst, bufB); err != nil {
				return err
			}
			haveB = false
		default:
			return nil
		}
	}
}

// SortToTape sorts the items of the machine's input tape (tape 0)
// onto dst ascending: it copies the input to dst in one scan and runs
// MergeSort on dst. This is the sorting problem of Corollary 10 as a
// function computation, leaving the input intact.
func SortToTape(m *core.Machine, dst, auxA, auxB int) error {
	in := m.Tape(0)
	td := m.Tape(dst)
	if err := in.Rewind(); err != nil {
		return err
	}
	if err := td.Rewind(); err != nil {
		return err
	}
	td.Truncate()
	data, err := in.ScanBytes()
	if err != nil {
		return err
	}
	if err := td.WriteBlock(data); err != nil {
		return err
	}
	return MergeSort(m, dst, auxA, auxB)
}
