package algorithms

import (
	"fmt"

	"extmem/internal/core"
)

// MergeSort sorts the '#'-terminated items on tape src of m in
// ascending order, in place, using tapes auxA and auxB as work tapes.
// It is the bottom-up balanced tape merge sort behind Corollary 7:
// runs of length L are distributed alternately onto the two work
// tapes and merged back, with L doubling each pass, so the number of
// passes is ⌈log₂ m⌉ and every pass costs a constant number of head
// reversals. Total head reversals are O(log N).
//
// MergeSort is the legacy-accounting wrapper around the k-way engine
// (Sorter in sorter.go) pinned to fan-in 2, single-item initial runs
// and a dedicated counting pre-pass, so accounting-sensitive callers
// see bitwise-identical resource reports: two item buffers (O(n) for
// item length n — for the paper's SHORT instances this is O(log N),
// matching the paper's merge-sort bound ST(O(log N), O(log N), 3); the
// O(1)-memory Chen–Yap refinement is intentionally out of scope) plus
// O(log N)-bit run counters, all charged to the machine's meter.
// Callers that want the r-vs-(s, t) trade-off instead use Sorter
// directly.
func MergeSort(m *core.Machine, src, auxA, auxB int) error {
	if src == auxA || src == auxB || auxA == auxB {
		return fmt.Errorf("algorithms: MergeSort needs three distinct tapes, got %d, %d, %d", src, auxA, auxB)
	}
	return Sorter{FanIn: 2}.sort(m, src, []int{auxA, auxB}, true)
}

// SortToTape sorts the items of the machine's input tape (tape 0)
// onto dst ascending: it copies the input to dst in one scan and runs
// the legacy 2-way MergeSort on dst. This is the sorting problem of
// Corollary 10 as a function computation, leaving the input intact.
// Sorter.SortToTape is the configurable fast path.
func SortToTape(m *core.Machine, dst, auxA, auxB int) error {
	in := m.Tape(0)
	td := m.Tape(dst)
	if err := in.Rewind(); err != nil {
		return err
	}
	if err := td.Rewind(); err != nil {
		return err
	}
	td.Truncate()
	if err := CopyTape(in, td); err != nil {
		return err
	}
	return MergeSort(m, dst, auxA, auxB)
}
