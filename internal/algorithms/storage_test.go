package algorithms

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/tape"
)

// TestSorterIdenticalAcrossStorageBackends runs the k-way merge-sort
// engine on machines whose tapes live on every storage backend (plus a
// spill configuration that migrates mid-sort) and requires the sorted
// bytes and the full resource report — scans, memory peak, steps — to
// be identical everywhere: the backend may move the bytes' home, never
// a count.
func TestSorterIdenticalAcrossStorageBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := problems.GenMultisetYes(256, 16, rng) // 512 items of 16 bits
	enc := in.Encode()

	configs := []struct {
		name string
		o    tape.Options
	}{
		{"mem", tape.Options{}},
		{"file", tape.Options{Storage: tape.File, SpillDir: t.TempDir()}},
		{"mmap", tape.Options{Storage: tape.Mmap, SpillDir: t.TempDir()}},
		{"file-spill", tape.Options{Storage: tape.File, SpillDir: t.TempDir(), SpillThreshold: 512}},
	}
	for _, engine := range []Sorter{
		{},                              // legacy 2-way shape
		{FanIn: 4, RunMemoryBits: 1024}, // formation + wide merge
		{FanIn: 3, RunMemoryBits: 256, Dedup: true}, // set semantics
	} {
		var refOut []byte
		var refRes core.Resources
		for i, c := range configs {
			m := core.NewMachineOpts(6, 1, c.o)
			m.SetInput(enc)
			if err := engine.SortToTape(m, 1, WorkTapes(m, 1)); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			out := m.Tape(1).Contents()
			res := m.Resources()
			if err := m.Close(); err != nil {
				t.Fatalf("%s: Close: %v", c.name, err)
			}
			if i == 0 {
				refOut, refRes = out, res
				continue
			}
			if !bytes.Equal(out, refOut) {
				t.Errorf("engine %+v on %s: sorted output diverges from mem", engine, c.name)
			}
			if !reflect.DeepEqual(res, refRes) {
				t.Errorf("engine %+v on %s: resources %+v diverge from mem %+v", engine, c.name, res, refRes)
			}
		}
	}
}
