package algorithms

import (
	"math/rand"
	"testing"

	"extmem/internal/core"
	"extmem/internal/problems"
)

// runDecider executes one of the Corollary 7 deciders on a fresh
// machine loaded with the instance.
func runDecider(t *testing.T, p problems.Problem, in problems.Instance) (core.Verdict, core.Resources) {
	t.Helper()
	m := core.NewMachine(NumDeciderTapes, 1)
	m.SetInput(in.Encode())
	var (
		v   core.Verdict
		err error
	)
	switch p {
	case problems.SetEqualityProblem:
		v, err = SetEqualityST(m)
	case problems.MultisetEqualityProblem:
		v, err = MultisetEqualityST(m)
	case problems.CheckSortProblem:
		v, err = CheckSortST(m)
	}
	if err != nil {
		t.Fatalf("%v on %+v: %v", p, in, err)
	}
	return v, m.Resources()
}

func TestDecidersAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, p := range []problems.Problem{
		problems.SetEqualityProblem,
		problems.MultisetEqualityProblem,
		problems.CheckSortProblem,
	} {
		for trial := 0; trial < 30; trial++ {
			m := 1 + rng.Intn(24)
			n := 6 + rng.Intn(6)
			for _, yes := range []bool{true, false} {
				in := problems.Gen(p, yes, m, n, rng)
				want := core.Reject
				if yes {
					want = core.Accept
				}
				got, _ := runDecider(t, p, in)
				if got != want {
					t.Fatalf("%v yes=%v m=%d n=%d: verdict %v, want %v\ninstance: %+v",
						p, yes, m, n, got, want, in)
				}
			}
		}
	}
}

func TestDecidersOnRandomUnstructuredInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(6)
		n := 1 + rng.Intn(3)
		in := problems.Instance{V: make([]string, m), W: make([]string, m)}
		for i := 0; i < m; i++ {
			in.V[i] = randomBits(n, rng)
			in.W[i] = randomBits(n, rng)
		}
		for _, p := range []problems.Problem{
			problems.SetEqualityProblem,
			problems.MultisetEqualityProblem,
			problems.CheckSortProblem,
		} {
			want := verdictOf(problems.Decide(p, in))
			got, _ := runDecider(t, p, in)
			if got != want {
				t.Fatalf("%v on %+v: verdict %v, want %v", p, in, got, want)
			}
		}
	}
}

func randomBits(n int, rng *rand.Rand) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0' + byte(rng.Intn(2))
	}
	return string(b)
}

// Corollary 7: the deciders run within ST(O(log N), ·, 5).
func TestDecidersScanBound(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	bound := core.Bound{Name: "ST(24 log N, ., 5)", R: core.LogR(24), S: func(int) int64 { return 1 << 30 }, T: NumDeciderTapes}
	for _, mSize := range []int{4, 32, 128, 512} {
		in := problems.GenMultisetYes(mSize, 8, rng)
		_, res := runDecider(t, problems.MultisetEqualityProblem, in)
		if err := bound.Admits(res, in.Size()); err != nil {
			t.Fatalf("m=%d: %v (resources %v)", mSize, err, res)
		}
	}
}

func TestDecidersEmptyInput(t *testing.T) {
	for _, p := range []problems.Problem{
		problems.SetEqualityProblem,
		problems.MultisetEqualityProblem,
		problems.CheckSortProblem,
	} {
		got, _ := runDecider(t, p, problems.Instance{})
		if got != core.Accept {
			t.Fatalf("%v on empty input: %v, want accept", p, got)
		}
	}
}

func TestSplitHalvesOddItems(t *testing.T) {
	m := core.NewMachine(NumDeciderTapes, 1)
	m.SetInput([]byte("0#1#0#"))
	if err := SplitHalves(m, 1, 2); err == nil {
		t.Fatal("odd item count accepted")
	}
}

func TestDecideSTDispatch(t *testing.T) {
	in := problems.Instance{V: []string{"0"}, W: []string{"0"}}
	for p := 0; p < 3; p++ {
		m := core.NewMachine(NumDeciderTapes, 1)
		m.SetInput(in.Encode())
		v, err := DecideST(p, m)
		if err != nil {
			t.Fatal(err)
		}
		if v != core.Accept {
			t.Fatalf("problem %d: %v", p, v)
		}
	}
	m := core.NewMachine(NumDeciderTapes, 1)
	if _, err := DecideST(9, m); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

// SET-EQUALITY must ignore multiplicities: {a,a,b} vs {a,b,b}.
func TestSetEqualityIgnoresMultiplicity(t *testing.T) {
	in := problems.Instance{V: []string{"00", "00", "11"}, W: []string{"00", "11", "11"}}
	got, _ := runDecider(t, problems.SetEqualityProblem, in)
	if got != core.Accept {
		t.Fatalf("set equality = %v, want accept", got)
	}
	gotMS, _ := runDecider(t, problems.MultisetEqualityProblem, in)
	if gotMS != core.Reject {
		t.Fatalf("multiset equality = %v, want reject", gotMS)
	}
}
