package algorithms

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"extmem/internal/core"
	"extmem/internal/tape"
)

// randomItems builds count random 0-1 items of length 0..maxLen.
func randomItems(count, maxLen int, rng *rand.Rand) []string {
	items := make([]string, count)
	for i := range items {
		b := make([]byte, rng.Intn(maxLen+1))
		for j := range b {
			b[j] = '0' + byte(rng.Intn(2))
		}
		items[i] = string(b)
	}
	return items
}

func uniqSorted(items []string) []string {
	s := append([]string(nil), items...)
	sort.Strings(s)
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// The k-way engine must agree with the stdlib sort and with the legacy
// 2-way merge for every fan-in, run-formation budget and dedup
// setting, on random item multisets including empty items and
// duplicates.
func TestSorterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		count := rng.Intn(200)
		items := randomItems(count, 8, rng)

		want := append([]string(nil), items...)
		sort.Strings(want)
		wantDedup := uniqSorted(items)

		// Legacy cross-check on the same instance.
		lm := core.NewMachine(3, 1)
		loadItems(t, lm, 0, items)
		if err := MergeSort(lm, 0, 1, 2); err != nil {
			t.Fatal(err)
		}
		if got := dumpItems(t, lm, 0); strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("legacy MergeSort = %v, want %v", got, want)
		}

		for _, k := range []int{2, 3, 4, 8} {
			for _, mem := range []int64{0, 37, 256, 4096} {
				for _, dedup := range []bool{false, true} {
					m := core.NewMachine(k+1, 1)
					loadItems(t, m, 0, items)
					s := Sorter{FanIn: k, RunMemoryBits: mem, Dedup: dedup}
					work := make([]int, k)
					for i := range work {
						work[i] = i + 1
					}
					if err := s.Sort(m, 0, work); err != nil {
						t.Fatalf("k=%d mem=%d dedup=%v: %v", k, mem, dedup, err)
					}
					got := dumpItems(t, m, 0)
					ref := want
					if dedup {
						ref = wantDedup
					}
					if strings.Join(got, ",") != strings.Join(ref, ",") {
						t.Fatalf("k=%d mem=%d dedup=%v: sorted = %v, want %v (input %v)",
							k, mem, dedup, got, ref, items)
					}
				}
			}
		}
	}
}

// MergeSort is documented as the bitwise-accounting-compatible wrapper
// around the engine: its resource report — reversals, steps, reads,
// writes, peak memory, per tape — must be identical to the historical
// 2-way implementation, which is preserved verbatim below.
func TestMergeSortLegacyAccountingUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 40; trial++ {
		items := randomItems(rng.Intn(120), 6, rng)

		mNew := core.NewMachine(3, 1)
		loadItems(t, mNew, 0, items)
		if err := MergeSort(mNew, 0, 1, 2); err != nil {
			t.Fatal(err)
		}
		mOld := core.NewMachine(3, 1)
		loadItems(t, mOld, 0, items)
		if err := legacyMergeSort(mOld, 0, 1, 2); err != nil {
			t.Fatal(err)
		}

		if got, want := string(mNew.Tape(0).Contents()), string(mOld.Tape(0).Contents()); got != want {
			t.Fatalf("output differs: %q vs legacy %q", got, want)
		}
		rNew, rOld := mNew.Resources(), mOld.Resources()
		if !reflect.DeepEqual(rNew, rOld) {
			t.Fatalf("resource report differs from the legacy implementation:\nnew:    %+v\nlegacy: %+v", rNew, rOld)
		}
		if cur := mNew.Mem().Current(); cur != 0 {
			t.Fatalf("MergeSort left %d bits charged (regions %v)", cur, mNew.Mem().Regions())
		}
	}
}

// Accounting invariant of the engine: the merge-pass count is at most
// ⌈log_k⌈m/runLen⌉⌉ + 1 and every pass costs O(k) reversals, so total
// reversals stay below (4k+6)·(passes+1).
func TestSorterPassCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, count := range []int{5, 32, 200, 1000} {
		items := make([]string, count)
		for i := range items {
			b := make([]byte, 8)
			for j := range b {
				b[j] = '0' + byte(rng.Intn(2))
			}
			items[i] = string(b)
		}
		for _, k := range []int{2, 4, 8} {
			for _, mem := range []int64{0, 128, 1024} {
				m := core.NewMachine(k+1, 1)
				loadItems(t, m, 0, items)
				work := make([]int, k)
				for i := range work {
					work[i] = i + 1
				}
				if err := (Sorter{FanIn: k, RunMemoryBits: mem}).Sort(m, 0, work); err != nil {
					t.Fatal(err)
				}
				runLen := 1
				if mem > 0 {
					runLen = int(mem) / 8 // items are 8 symbols long
				}
				runs := (count + runLen - 1) / runLen
				passes := 0
				for r := runs; r > 1; r = (r + k - 1) / k {
					passes++
				}
				wantMax := passes
				if ideal := int(math.Ceil(math.Log(float64(runs)) / math.Log(float64(k)))); runs > 1 && wantMax > ideal+1 {
					t.Fatalf("count=%d k=%d mem=%d: %d passes > ⌈log_k runs⌉+1 = %d", count, k, mem, wantMax, ideal+1)
				}
				rev := m.Resources().Reversals
				limit := (4*k + 6) * (passes + 1)
				if rev > limit {
					t.Fatalf("count=%d k=%d mem=%d: %d reversals > (4k+6)·(passes+1) = %d (passes=%d)",
						count, k, mem, rev, limit, passes)
				}
			}
		}
	}
}

// The acceptance criterion of the r-vs-t axis: on a fixed input with
// fixed run-formation memory, the measured reversal count strictly
// decreases as the fan-in goes 2 → 4 → 8.
func TestSorterReversalsDecreaseWithFanIn(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	items := make([]string, 64)
	for i := range items {
		b := make([]byte, 16)
		for j := range b {
			b[j] = '0' + byte(rng.Intn(2))
		}
		items[i] = string(b)
	}
	// 16-symbol items and a 128-unit budget give 8-item runs: 8 initial
	// runs, so fan-in 8 sorts in one merge pass, fan-in 4 in two,
	// fan-in 2 in three.
	revs := map[int]int{}
	for _, k := range []int{2, 4, 8} {
		m := core.NewMachine(10, 1)
		loadItems(t, m, 0, items)
		if err := (Sorter{FanIn: k, RunMemoryBits: 128}).Sort(m, 0, []int{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			t.Fatal(err)
		}
		got := dumpItems(t, m, 0)
		want := append([]string(nil), items...)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("k=%d: not sorted", k)
		}
		revs[k] = m.Resources().Reversals
	}
	if !(revs[2] > revs[4] && revs[4] > revs[8]) {
		t.Fatalf("reversals did not strictly decrease with fan-in: k=2: %d, k=4: %d, k=8: %d",
			revs[2], revs[4], revs[8])
	}
}

// Run formation must charge the buffer to the meter: the sorted
// output is identical, but the reported peak memory reflects the
// budget actually used, and nothing stays charged afterwards.
func TestSorterChargesRunBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	items := randomItems(300, 6, rng)
	totalBits := int64(0)
	for _, it := range items {
		totalBits += int64(len(it))
	}
	for _, mem := range []int64{0, 256, 2048} {
		m := core.NewMachine(3, 1)
		loadItems(t, m, 0, items)
		if err := (Sorter{FanIn: 2, RunMemoryBits: mem}).Sort(m, 0, []int{1, 2}); err != nil {
			t.Fatal(err)
		}
		peak := m.Resources().PeakMemoryBits
		want := min(mem, totalBits) // the buffer can't outgrow the input
		if mem > 0 && (peak < want/2 || peak > want+64) {
			t.Fatalf("mem=%d: peak %d bits not near the charged run buffer (want ≈ %d)", mem, peak, want)
		}
		if cur := m.Mem().Current(); cur != 0 {
			t.Fatalf("mem=%d: %d bits left charged (regions %v)", mem, cur, m.Mem().Regions())
		}
	}
}

// A memory budget below the run-formation target must surface as a
// budget error (fail closed), never a silent wrong sort.
func TestSorterRespectsMeterBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	items := randomItems(50, 6, rng)
	m := core.NewMachine(3, 1)
	loadItems(t, m, 0, items)
	m.Mem().SetBudget(16)
	err := (Sorter{FanIn: 2, RunMemoryBits: 4096}).Sort(m, 0, []int{1, 2})
	if err == nil {
		t.Fatal("meter budget exhaustion did not error")
	}
}

func TestSorterTapeValidation(t *testing.T) {
	m := core.NewMachine(4, 1)
	if err := (Sorter{FanIn: 2}).Sort(m, 0, []int{1}); err == nil {
		t.Fatal("accepted fewer work tapes than the fan-in")
	}
	if err := (Sorter{FanIn: 2}).Sort(m, 0, []int{0, 1}); err == nil {
		t.Fatal("accepted src as a work tape")
	}
	if err := (Sorter{FanIn: 2}).Sort(m, 0, []int{1, 1}); err == nil {
		t.Fatal("accepted duplicate work tapes")
	}
	if err := (Sorter{FanIn: 3}).SortToTape(m, 0, []int{1, 2, 3}); err == nil {
		t.Fatal("accepted the input tape as the sort destination")
	}
}

func TestWorkTapes(t *testing.T) {
	m := core.NewMachine(6, 1)
	if got, want := fmt.Sprint(WorkTapes(m, 1)), "[2 3 4 5]"; got != want {
		t.Fatalf("WorkTapes(m, 1) = %v, want %v", got, want)
	}
	if got, want := fmt.Sprint(WorkTapes(m, 3)), "[1 2 4 5]"; got != want {
		t.Fatalf("WorkTapes(m, 3) = %v, want %v", got, want)
	}
}

// Dedup via the engine on an all-duplicates input, and across run
// boundaries (duplicates that only meet in the final merge pass).
func TestSorterDedupAcrossRuns(t *testing.T) {
	items := []string{"01", "01", "01", "01", "01", "01", "01", "01"}
	m := core.NewMachine(3, 1)
	loadItems(t, m, 0, items)
	// A 2-symbol budget forces single-item runs, so every duplicate
	// pair meets only during merges.
	if err := (Sorter{FanIn: 2, RunMemoryBits: 2, Dedup: true}).Sort(m, 0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := dumpItems(t, m, 0); len(got) != 1 || got[0] != "01" {
		t.Fatalf("dedup = %v, want [01]", got)
	}
}

// legacyMergeSort is the pre-engine 2-way balanced tape merge sort,
// kept verbatim as the accounting reference for
// TestMergeSortLegacyAccountingUnchanged.
func legacyMergeSort(m *core.Machine, src, auxA, auxB int) error {
	if src == auxA || src == auxB || auxA == auxB {
		return fmt.Errorf("algorithms: MergeSort needs three distinct tapes, got %d, %d, %d", src, auxA, auxB)
	}
	ts := m.Tape(src)
	ta := m.Tape(auxA)
	tb := m.Tape(auxB)
	mem := m.Mem()

	if err := ts.Rewind(); err != nil {
		return err
	}
	total, err := CountItems(ts, mem, "sort.count")
	if err != nil {
		return err
	}
	if total <= 1 {
		return ts.Rewind()
	}

	for runLen := 1; runLen < total; runLen *= 2 {
		if err := chargeCounter(mem, "sort.runlen", uint64(runLen)); err != nil {
			return err
		}
		if err := ts.Rewind(); err != nil {
			return err
		}
		if err := ta.Rewind(); err != nil {
			return err
		}
		ta.Truncate()
		if err := tb.Rewind(); err != nil {
			return err
		}
		tb.Truncate()
		toA := true
		for !ts.AtEnd() {
			dst := ta
			if !toA {
				dst = tb
			}
			if _, err := CopyItems(ts, dst, runLen); err != nil {
				return err
			}
			toA = !toA
		}

		if err := ts.Rewind(); err != nil {
			return err
		}
		ts.Truncate()
		if err := ta.Rewind(); err != nil {
			return err
		}
		if err := tb.Rewind(); err != nil {
			return err
		}
		for !ta.AtEnd() || !tb.AtEnd() {
			if err := legacyMergeRuns(ta, tb, ts, runLen, m); err != nil {
				return err
			}
		}
	}
	mem.Free(counterRegion("sort.runlen"))
	mem.Free(itemRegion("sort.a"))
	mem.Free(itemRegion("sort.b"))
	return ts.Rewind()
}

func legacyMergeRuns(ta, tb, dst *tape.Tape, runLen int, m *core.Machine) error {
	mem := m.Mem()
	var (
		bufA, bufB []byte
		haveA      bool
		haveB      bool
		seenA      int
		seenB      int
	)
	loadA := func() error {
		if haveA || seenA >= runLen || ta.AtEnd() {
			return nil
		}
		item, ok, err := ReadItem(ta, mem, itemRegion("sort.a"))
		if err != nil {
			return err
		}
		if ok {
			bufA, haveA = item, true
			seenA++
		}
		return nil
	}
	loadB := func() error {
		if haveB || seenB >= runLen || tb.AtEnd() {
			return nil
		}
		item, ok, err := ReadItem(tb, mem, itemRegion("sort.b"))
		if err != nil {
			return err
		}
		if ok {
			bufB, haveB = item, true
			seenB++
		}
		return nil
	}
	for {
		if err := loadA(); err != nil {
			return err
		}
		if err := loadB(); err != nil {
			return err
		}
		switch {
		case haveA && haveB:
			if Compare(bufA, bufB) <= 0 {
				if err := WriteItem(dst, bufA); err != nil {
					return err
				}
				haveA = false
			} else {
				if err := WriteItem(dst, bufB); err != nil {
					return err
				}
				haveB = false
			}
		case haveA:
			if err := WriteItem(dst, bufA); err != nil {
				return err
			}
			haveA = false
		case haveB:
			if err := WriteItem(dst, bufB); err != nil {
				return err
			}
			haveB = false
		default:
			return nil
		}
	}
}

// MergeTapes — the combine stage of the sharded sort — must produce
// the globally sorted (optionally deduplicated) sequence from sorted
// per-tape inputs, for every lane count including one.
func TestMergeTapesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(5)
		var all []string
		parts := make([][]string, k)
		for i := range parts {
			part := randomItems(rng.Intn(30), 6, rng)
			sort.Strings(part)
			parts[i] = part
			all = append(all, part...)
		}
		want := append([]string(nil), all...)
		sort.Strings(want)
		for _, dedup := range []bool{false, true} {
			m := core.NewMachine(k+1, 1)
			srcs := make([]int, k)
			for i := range srcs {
				srcs[i] = i + 1
				// Tape handoff as the sharded sort performs it: the
				// sorted sequence is placed, not written by this machine.
				var enc []byte
				for _, it := range parts[i] {
					enc = append(enc, it...)
					enc = append(enc, '#')
				}
				m.SetTape(i+1, enc)
			}
			if err := MergeTapes(m, 0, srcs, dedup); err != nil {
				t.Fatalf("k=%d dedup=%v: %v", k, dedup, err)
			}
			// One forward scan per tape: a merge pass over freshly
			// placed tapes adds no reversals. (Snapshot before the
			// dump below rewinds the output tape.)
			if rev := m.Resources().Reversals; rev != 0 {
				t.Fatalf("k=%d: merge cost %d reversals, want 0", k, rev)
			}
			ref := want
			if dedup {
				ref = uniqSorted(all)
			}
			if got := dumpItems(t, m, 0); strings.Join(got, ",") != strings.Join(ref, ",") {
				t.Fatalf("k=%d dedup=%v: merged = %v, want %v", k, dedup, got, ref)
			}
		}
	}
}

func TestMergeTapesValidation(t *testing.T) {
	m := core.NewMachine(3, 1)
	if err := MergeTapes(m, 0, []int{1, 1}, false); err == nil {
		t.Fatal("duplicate src accepted")
	}
	if err := MergeTapes(m, 1, []int{1, 2}, false); err == nil {
		t.Fatal("dst aliasing a src accepted")
	}
	// No lanes: dst is just cleared.
	loadItems(t, m, 0, []string{"1", "0"})
	if err := MergeTapes(m, 0, nil, false); err != nil {
		t.Fatal(err)
	}
	if got := dumpItems(t, m, 0); len(got) != 0 {
		t.Fatalf("empty merge left %v", got)
	}
}

// The fixed-count rule in isolation: greedy first fill sets the
// per-run count, the first item always opens a run, and a zero budget
// degenerates to single-item runs.
func TestRunPlannerRule(t *testing.T) {
	p := RunPlanner{Budget: 10}
	var boundaries []int
	for i, bits := range []int64{4, 4, 4, 4, 4, 4, 4} {
		if p.Next(bits) {
			boundaries = append(boundaries, i)
		}
	}
	// 4+4 fits, +4 would exceed 10 ⇒ runs of 2: boundaries at 0, 2, 4, 6.
	if fmt.Sprint(boundaries) != "[0 2 4 6]" || p.RunLen != 2 {
		t.Fatalf("boundaries %v runLen %d", boundaries, p.RunLen)
	}
	// Oversized first item: a run of one, fixed for the rest.
	p = RunPlanner{Budget: 3}
	if !p.Next(8) || !p.Next(1) || p.RunLen != 1 {
		t.Fatalf("oversized first item did not fix single-item runs (runLen %d)", p.RunLen)
	}
	// No budget: every item is a run.
	p = RunPlanner{}
	for i := 0; i < 3; i++ {
		if !p.Next(5) {
			t.Fatalf("budget 0: item %d did not start a run", i)
		}
	}
	// Budget never exceeded: RunLen stays 0 (single run).
	p = RunPlanner{Budget: 100}
	p.Next(4)
	p.Next(4)
	if p.RunLen != 0 {
		t.Fatalf("unfilled budget fixed runLen %d", p.RunLen)
	}
}
