package algorithms

import (
	"fmt"

	"extmem/internal/core"
	"extmem/internal/numeric"
	"extmem/internal/problems"
)

// FingerprintParams are the random parameters of one run of the
// Theorem 8(a) algorithm, exposed for experiments.
type FingerprintParams struct {
	M  int    // number of values per half
	N  int    // value length
	K  uint64 // k = m³·n·⌈log(m³·n)⌉
	P1 uint64 // random prime ≤ k (value reduction modulus)
	P2 uint64 // fixed prime in (3k, 6k] (polynomial evaluation field)
	X  uint64 // random evaluation point in {1, …, p2−1}
}

// FingerprintMultisetEquality is the randomized MULTISET-EQUALITY
// decider of Theorem 8(a). It runs on a machine with a single
// external tape holding the instance and uses exactly two sequential
// scans of the input (one head reversal) and O(log N) bits of
// internal memory:
//
//  1. First scan: determine m and n (all values must have the same
//     length n, as the theorem assumes).
//  2. Choose a random prime p1 ≤ k := m³·n·⌈log(m³·n)⌉.
//  3. Choose a prime p2 with 3k < p2 ≤ 6k (Bertrand's postulate).
//  4. Choose x ∈ {1, …, p2−1} uniformly.
//  5. Second scan: with e_i = v_i mod p1 and e'_i = v'_i mod p1,
//     accept iff Σ x^{e_i} ≡ Σ x^{e'_i} (mod p2).
//
// Error profile (co-RST): equal multisets are always accepted;
// distinct multisets are accepted with probability at most
// 1/3 + O(1/m) ≤ 1/2 for sufficiently large inputs.
//
// (The paper's step (5) states the sums modulo p1; as the surrounding
// proof makes clear — the polynomial is evaluated over F_{p2} — the
// evaluation modulus is p2, which is what we implement.)
func FingerprintMultisetEquality(m *core.Machine) (core.Verdict, FingerprintParams, error) {
	in := m.Tape(0)
	mem := m.Mem()
	var params FingerprintParams

	// Scan 1: determine m and n. The tape is swept in one bulk read;
	// the register values are re-charged per symbol exactly as the
	// single-step loop did, via map-lookup-free meter handles. (On a
	// mid-processing memory-budget refusal the tape counters reflect
	// the already-completed sweep rather than a partial one; such
	// errors abort the run, so no resource report is produced.)
	if err := in.Rewind(); err != nil {
		return core.Reject, params, err
	}
	scan1, err := in.ScanBytes()
	if err != nil {
		return core.Reject, params, err
	}
	count := 0
	firstLen := -1
	curLen := 0
	regM := mem.Register(counterRegion("fp.m"))
	regLen := mem.Register(counterRegion("fp.len"))
	for _, b := range scan1 {
		if b == problems.Separator {
			if firstLen < 0 {
				firstLen = curLen
			} else if curLen != firstLen {
				return core.Reject, params, fmt.Errorf("algorithms: fingerprint requires equal-length values (%d vs %d)", firstLen, curLen)
			}
			count++
			curLen = 0
			if err := regM.SetInt(uint64(count)); err != nil {
				return core.Reject, params, err
			}
			continue
		}
		curLen++
		if err := regLen.SetInt(uint64(curLen)); err != nil {
			return core.Reject, params, err
		}
	}
	if count == 0 {
		return core.Accept, params, nil // two empty multisets
	}
	if count%2 != 0 {
		return core.Reject, params, fmt.Errorf("algorithms: odd number of values (%d)", count)
	}
	params.M = count / 2
	params.N = firstLen
	if params.N == 0 {
		// All values are the empty string; the multisets are equal.
		return core.Accept, params, nil
	}

	// Steps 2–4: random primes and evaluation point, all in internal
	// memory (numbers of O(log N) bits).
	k, err := numeric.FingerprintModulus(uint64(params.M), uint64(params.N))
	if err != nil {
		return core.Reject, params, err
	}
	params.K = k
	if err := chargeCounter(mem, "fp.k", k); err != nil {
		return core.Reject, params, err
	}
	p1, err := numeric.RandomPrimeUpTo(k, m.Rand())
	if err != nil {
		return core.Reject, params, err
	}
	params.P1 = p1
	p2, err := numeric.BertrandPrime(k)
	if err != nil {
		return core.Reject, params, err
	}
	params.P2 = p2
	params.X = 1 + uint64(m.Rand().Int63n(int64(p2-1)))
	for _, c := range []struct {
		tag string
		v   uint64
	}{{"fp.p1", p1}, {"fp.p2", p2}, {"fp.x", params.X}} {
		if err := chargeCounter(mem, c.tag, c.v); err != nil {
			return core.Reject, params, err
		}
	}

	// Scan 2 runs BACKWARD over the input (so the whole algorithm uses
	// exactly two sequential scans: one head reversal). Reading a value
	// backward yields its bits least-significant first, so the residue
	// e_i = v_i mod p1 is accumulated as e ← e + bit·pow (mod p1) with
	// pow ← 2·pow (mod p1); x^{e_i} mod p2 is then computed by binary
	// exponentiation in internal memory. All registers are O(log N)
	// bits. The backward sweep is one bulk read (symbols arrive in
	// visit order, i.e. reversed); the e/pow registers are re-charged
	// per symbol so the peak-memory report matches the step-by-step
	// loop bit for bit.
	var (
		sumV, sumW uint64
		e          uint64
		pow        uint64 = 1
		haveItem   bool
		sepCount   int
		itemIdx    int
	)
	regSumV := mem.Register(counterRegion("fp.sumv"))
	regSumW := mem.Register(counterRegion("fp.sumw"))
	regE := mem.Register(counterRegion("fp.e"))
	regPow := mem.Register(counterRegion("fp.pow"))
	finalize := func() error {
		term := numeric.PowMod(params.X, e, p2)
		if itemIdx < params.M {
			sumV = numeric.AddMod(sumV, term, p2)
		} else {
			sumW = numeric.AddMod(sumW, term, p2)
		}
		if err := regSumV.SetInt(sumV); err != nil {
			return err
		}
		return regSumW.SetInt(sumW)
	}
	scan2, err := in.ReadBlockBackward(in.Pos())
	if err != nil {
		return core.Reject, params, err
	}
	for _, b := range scan2 {
		if b == problems.Separator {
			if haveItem {
				if err := finalize(); err != nil {
					return core.Reject, params, err
				}
			}
			sepCount++
			itemIdx = count - sepCount
			e = 0
			pow = 1
			haveItem = true
			continue
		}
		bit := uint64(0)
		if b == '1' {
			bit = 1
		}
		if bit == 1 {
			e = numeric.AddMod(e, pow, p1)
		}
		pow = numeric.AddMod(pow, pow, p1)
		if err := regE.SetInt(e); err != nil {
			return core.Reject, params, err
		}
		if err := regPow.SetInt(pow); err != nil {
			return core.Reject, params, err
		}
	}
	if haveItem {
		if err := finalize(); err != nil {
			return core.Reject, params, err
		}
	}
	return verdictOf(sumV == sumW), params, nil
}

// FingerprintRepeated runs the Theorem 8(a) decider s times with
// independent randomness and rejects if any run rejects. Since the
// algorithm has false positives only, repetition drives the
// false-positive probability below 2^{-s}-ish while keeping perfect
// completeness. Each repetition costs two scans.
func FingerprintRepeated(m *core.Machine, s int) (core.Verdict, error) {
	for i := 0; i < s; i++ {
		v, _, err := FingerprintMultisetEquality(m)
		if err != nil {
			return core.Reject, err
		}
		if v == core.Reject {
			return core.Reject, nil
		}
	}
	return core.Accept, nil
}
