package algorithms

import (
	"math/rand"
	"testing"

	"extmem/internal/core"
	"extmem/internal/problems"
)

func runFingerprint(t *testing.T, in problems.Instance, seed int64) (core.Verdict, FingerprintParams, core.Resources) {
	t.Helper()
	m := core.NewMachine(1, seed)
	m.SetInput(in.Encode())
	v, params, err := FingerprintMultisetEquality(m)
	if err != nil {
		t.Fatalf("fingerprint on %+v: %v", in, err)
	}
	return v, params, m.Resources()
}

// Perfect completeness: equal multisets are always accepted, whatever
// the coins.
func TestFingerprintCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		mSize := 1 + rng.Intn(32)
		n := 1 + rng.Intn(16)
		in := problems.GenMultisetYes(mSize, n, rng)
		v, _, _ := runFingerprint(t, in, rng.Int63())
		if v != core.Accept {
			t.Fatalf("equal multisets rejected (trial %d, m=%d n=%d): %+v", trial, mSize, n, in)
		}
	}
}

// Soundness: distinct multisets must be rejected with probability
// ≥ 1/2; empirically the rate is far better. We require ≥ 80% rejects
// over independent coins for a fixed hard instance.
func TestFingerprintSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	in := problems.GenMultisetNo(16, 12, rng)
	rejects := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		v, _, _ := runFingerprint(t, in, int64(1000+i))
		if v == core.Reject {
			rejects++
		}
	}
	if rejects < trials*8/10 {
		t.Fatalf("only %d/%d rejects on a no-instance", rejects, trials)
	}
}

// Adversarial no-instances that differ in exactly one element.
func TestFingerprintSoundnessMinimalDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	falseAccepts := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		mSize := 2 + rng.Intn(16)
		n := 4 + rng.Intn(12)
		in := problems.GenMultisetNo(mSize, n, rng)
		v, _, _ := runFingerprint(t, in, rng.Int63())
		if v == core.Accept {
			falseAccepts++
		}
	}
	// Theorem 8(a) guarantees ≤ 1/2; empirically it should be rare.
	if falseAccepts > trials/4 {
		t.Fatalf("%d/%d false accepts — soundness broken", falseAccepts, trials)
	}
}

// Theorem 8(a) resource bound: exactly 2 sequential scans (1 head
// reversal), one external tape, O(log N) internal memory.
func TestFingerprintResources(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for _, mSize := range []int{4, 32, 128} {
		in := problems.GenMultisetYes(mSize, 16, rng)
		_, _, res := runFingerprint(t, in, 9)
		if res.Scans() != 2 {
			t.Fatalf("m=%d: %d scans, want exactly 2", mSize, res.Scans())
		}
		if res.Tapes != 1 {
			t.Fatalf("m=%d: %d tapes, want 1", mSize, res.Tapes)
		}
		bound := core.Bound{Name: "co-RST(2, 40 log N, 1)", R: core.ConstR(2), S: core.LogS(40), T: 1}
		if err := bound.Admits(res, in.Size()); err != nil {
			t.Fatalf("m=%d: %v (resources %v)", mSize, err, res)
		}
	}
}

func TestFingerprintParamsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	in := problems.GenMultisetYes(8, 8, rng)
	_, p, _ := runFingerprint(t, in, 3)
	if p.M != 8 || p.N != 8 {
		t.Fatalf("params m=%d n=%d", p.M, p.N)
	}
	if p.P1 > p.K || p.P1 < 2 {
		t.Fatalf("p1 = %d out of range [2, %d]", p.P1, p.K)
	}
	if p.P2 <= 3*p.K || p.P2 > 6*p.K {
		t.Fatalf("p2 = %d out of (3k, 6k] for k=%d", p.P2, p.K)
	}
	if p.X < 1 || p.X >= p.P2 {
		t.Fatalf("x = %d out of [1, p2)", p.X)
	}
}

func TestFingerprintEdgeCases(t *testing.T) {
	// Empty input: two empty multisets, accept.
	m := core.NewMachine(1, 1)
	m.SetInput(nil)
	v, _, err := FingerprintMultisetEquality(m)
	if err != nil || v != core.Accept {
		t.Fatalf("empty input: %v, %v", v, err)
	}
	// Odd number of values: error.
	m2 := core.NewMachine(1, 1)
	m2.SetInput([]byte("0#1#0#"))
	if _, _, err := FingerprintMultisetEquality(m2); err == nil {
		t.Fatal("odd item count accepted")
	}
	// Unequal lengths: error (the theorem assumes equal lengths).
	m3 := core.NewMachine(1, 1)
	m3.SetInput([]byte("0#11#"))
	if _, _, err := FingerprintMultisetEquality(m3); err == nil {
		t.Fatal("unequal lengths accepted")
	}
	// Empty values: equal multisets trivially.
	m4 := core.NewMachine(1, 1)
	m4.SetInput([]byte("##"))
	v4, _, err := FingerprintMultisetEquality(m4)
	if err != nil || v4 != core.Accept {
		t.Fatalf("empty values: %v, %v", v4, err)
	}
}

func TestFingerprintRepeatedReducesError(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	// Completeness survives repetition.
	yes := problems.GenMultisetYes(8, 8, rng)
	m := core.NewMachine(1, 5)
	m.SetInput(yes.Encode())
	v, err := FingerprintRepeated(m, 5)
	if err != nil || v != core.Accept {
		t.Fatalf("repeated on yes: %v, %v", v, err)
	}
	// Soundness: with 5 repetitions false accepts are (1/2)^5 at
	// worst; over 100 instances none should survive.
	for i := 0; i < 100; i++ {
		no := problems.GenMultisetNo(8, 8, rng)
		m := core.NewMachine(1, int64(i))
		m.SetInput(no.Encode())
		v, err := FingerprintRepeated(m, 5)
		if err != nil {
			t.Fatal(err)
		}
		if v == core.Accept {
			t.Fatalf("no-instance accepted after 5 repetitions: %+v", no)
		}
	}
}

// The residue accumulation must be order-correct: a value and its
// bit-reversal hash differently (almost surely), while permuting
// whole values never changes the verdict.
func TestFingerprintPermutationInvariance(t *testing.T) {
	in := problems.Instance{
		V: []string{"1100", "0011", "1010"},
		W: []string{"0011", "1010", "1100"},
	}
	for seed := int64(0); seed < 20; seed++ {
		v, _, _ := runFingerprint(t, in, seed)
		if v != core.Accept {
			t.Fatalf("permuted multiset rejected at seed %d", seed)
		}
	}
}
