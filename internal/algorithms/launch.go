package algorithms

import (
	"context"

	"extmem/internal/core"
)

// SortLauncher is the sort-side counterpart of trials.Launcher: one
// engine sort invocation as an injectable execution shape. A launcher
// must fulfil exactly the contract of Sorter.Sort — after a successful
// call, tape src of m holds the machine's items sorted in ascending
// order (adjacent duplicates dropped when s.Dedup is set) with the head
// back at the start — but it may execute the sort anywhere: the
// single-machine k-way engine, shard-local machines plus a combining
// merge (internal/shard.LaunchSort), or any future multi-process
// backend. Callers that take a SortLauncher treat nil as the
// single-machine engine, so the zero execution shape is always the
// bitwise-accounted local Sorter.
//
// The context bounds the invocation: a distributed launcher stops its
// shard machines when ctx is cancelled and returns the context error
// (the single-machine engine, which never blocks, may ignore it). The
// work tapes are the lanes the single-machine engine would merge
// over; distributed implementations typically ignore them (their
// machines bring their own tape sets) but receive them so the fan-in
// the caller resolved — which also fixes the run partitioning — is
// visible as s.FanIn.
type SortLauncher func(ctx context.Context, s Sorter, m *core.Machine, src int, work []int) error
