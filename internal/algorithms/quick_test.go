package algorithms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"extmem/internal/core"
	"extmem/internal/problems"
)

// Property: the tape merge sort agrees with Go's sort on arbitrary
// random item multisets (including empty items and duplicates).
func TestQuickMergeSortMatchesReference(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(szRaw % 40)
		items := make([]string, count)
		for i := range items {
			n := rng.Intn(6) // length 0 items are legal
			b := make([]byte, n)
			for j := range b {
				b[j] = '0' + byte(rng.Intn(2))
			}
			items[i] = string(b)
		}
		m := core.NewMachine(3, seed)
		tp := m.Tape(0)
		for _, it := range items {
			if err := WriteItem(tp, []byte(it)); err != nil {
				return false
			}
		}
		if err := MergeSort(m, 0, 1, 2); err != nil {
			return false
		}
		var got []string
		for {
			it, ok, err := ReadItem(tp, m.Mem(), "q")
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got = append(got, string(it))
		}
		if len(got) != count {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				return false
			}
		}
		return problems.MultisetEquality(problems.Instance{V: items, W: got})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the fingerprint is invariant under permuting either half
// (it decides a property of the multisets, not the sequences).
func TestQuickFingerprintShuffleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mSize := 1 + rng.Intn(10)
		n := 1 + rng.Intn(8)
		in := problems.GenMultisetYes(mSize, n, rng)
		shuffled := problems.Instance{
			V: append([]string(nil), in.V...),
			W: append([]string(nil), in.W...),
		}
		rng.Shuffle(len(shuffled.V), func(i, j int) {
			shuffled.V[i], shuffled.V[j] = shuffled.V[j], shuffled.V[i]
		})
		rng.Shuffle(len(shuffled.W), func(i, j int) {
			shuffled.W[i], shuffled.W[j] = shuffled.W[j], shuffled.W[i]
		})
		coins := rng.Int63()
		run := func(in problems.Instance) core.Verdict {
			m := core.NewMachine(1, coins) // same coins for both runs
			m.SetInput(in.Encode())
			v, _, err := FingerprintMultisetEquality(m)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		return run(in) == run(shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the deterministic deciders are deterministic — identical
// verdict and identical resource report across machine seeds.
func TestQuickDecidersSeedIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		in := problems.GenMultisetYes(1+rng.Intn(12), 1+rng.Intn(8), rng)
		var first core.Resources
		var firstV core.Verdict
		for i, seed := range []int64{1, 99, 12345} {
			m := core.NewMachine(NumDeciderTapes, seed)
			m.SetInput(in.Encode())
			v, err := MultisetEqualityST(m)
			if err != nil {
				t.Fatal(err)
			}
			res := m.Resources()
			if i == 0 {
				first, firstV = res, v
				continue
			}
			if v != firstV || res.Reversals != first.Reversals || res.PeakMemoryBits != first.PeakMemoryBits {
				t.Fatalf("seed-dependent deterministic decider: %v vs %v", res, first)
			}
		}
	}
}

// Failure injection: a scan budget below the sort's requirement must
// surface as a budget error, not a wrong verdict.
func TestBudgetExhaustionFailsClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := problems.GenMultisetYes(64, 8, rng)
	m := core.NewMachine(NumDeciderTapes, 1)
	m.SetInput(in.Encode())
	for i := 0; i < NumDeciderTapes; i++ {
		m.Tape(i).SetBudget(3) // far below the required Θ(log N)
	}
	if _, err := MultisetEqualityST(m); err == nil {
		t.Fatal("budget exhaustion did not error")
	}
}

// Failure injection: a memory budget below the item size must surface
// as a budget error.
func TestMemoryBudgetExhaustionFailsClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := problems.GenMultisetYes(16, 32, rng)
	m := core.NewMachine(NumDeciderTapes, 1)
	m.SetInput(in.Encode())
	m.Mem().SetBudget(8) // items are 32 symbols
	if _, err := MultisetEqualityST(m); err == nil {
		t.Fatal("memory budget exhaustion did not error")
	}
}
