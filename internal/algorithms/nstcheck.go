package algorithms

// Streaming per-copy checks for the Theorem 8(b) verifier. Each copy
// of the guess string u triggers exactly one check; the checker
// consumes the copy's symbols as they are written and uses O(log N)
// state: item and position counters, one accumulated mapping entry,
// and a constant number of captured bits.

const (
	bitPending = -1 // position not reached yet / no such bit
)

type checkKind int

const (
	checkBit  checkKind = iota // value-bit comparison through a mapping
	checkInj                   // mapping injectivity
	checkSort                  // sortedness bit comparison (cross-copy state)
)

// pairState is the cross-copy state of the sortedness checks of
// NST-CHECK-SORT: lexicographic comparison of v'_i and v'_j decided
// one bit per copy.
type pairState struct {
	curPair int // pair index currently being compared, -1 before start
	decided bool
	anyFail bool
	started bool
}

// step consumes one bit comparison (x from v'_i, y from v'_j, either
// possibly absent) belonging to pair p.
func (ps *pairState) step(p, x, y int) {
	if !ps.started || p != ps.curPair {
		// Entering a new pair; an undecided previous pair means the
		// strings were equal, which satisfies ≤.
		ps.curPair = p
		ps.decided = false
		ps.started = true
	}
	if ps.decided {
		return
	}
	switch {
	case x == bitPending && y == bitPending:
		// Equal so far (both strings ended); stays undecided = ≤.
	case x == bitPending:
		// v'_i is a proper prefix of v'_j: v'_i < v'_j.
		ps.decided = true
	case y == bitPending:
		// v'_j is a proper prefix of v'_i: v'_i > v'_j.
		ps.decided = true
		ps.anyFail = true
	case x < y:
		ps.decided = true
	case x > y:
		ps.decided = true
		ps.anyFail = true
	}
}

// flush reports whether all pair comparisons succeeded.
func (ps *pairState) flush() bool { return !ps.anyFail }

// copyChecker runs one check over the symbol stream of a single copy
// of u.
type copyChecker struct {
	lay  *nstLayout
	kind checkKind

	// Stream position within the copy.
	k   int // item index (number of separators seen)
	pos int // symbol position within the current item (0-based)

	// checkBit state.
	headerIdx     int // header item carrying the mapping entry
	mapped        int // accumulated mapping entry
	primaryK      int // item index of the primary value
	secondaryBase int // item index base of the mapped section
	bitB          int // 1-based bit position under comparison
	vBit, wBit    int

	// checkInj state.
	injI   int // header index whose entry must be unique
	injVal int
	curHdr int
	failed bool

	// checkSort state.
	pairI, pairJ int
	sort         *pairState
}

// newCopyChecker plans the check for copy number i (1-based) of the
// layout.
func newCopyChecker(lay *nstLayout, i int, sortState *pairState) *copyChecker {
	c := &copyChecker{lay: lay, vBit: bitPending, wBit: bitPending}
	H := lay.headerLen
	m := lay.m
	N := lay.bigN
	switch {
	case lay.injStart > 0 && i >= lay.injStart && (lay.sortStart == 0 || i < lay.sortStart):
		c.kind = checkInj
		c.injI = i - lay.injStart // 0-based header index
	case lay.sortStart > 0 && i >= lay.sortStart:
		c.kind = checkSort
		off := i - lay.sortStart
		p := off / N
		c.bitB = off%N + 1
		c.pairI, c.pairJ = pairFromIndex(p, m)
		c.sort = sortState
		c.headerIdx = -1
	default:
		c.kind = checkBit
		if lay.headerLen == 2*m { // set equality: f-checks then g-checks
			if i <= N*m {
				j := (i - 1) / N
				c.headerIdx = j
				c.primaryK = H + j
				c.secondaryBase = H + m
			} else {
				j := (i - N*m - 1) / N
				c.headerIdx = m + j
				c.primaryK = H + m + j
				c.secondaryBase = H
			}
			c.bitB = (i-1)%N + 1
		} else { // multiset equality / checksort: π-checks
			j := (i - 1) / N
			c.headerIdx = j
			c.primaryK = H + j
			c.secondaryBase = H + m
			c.bitB = (i-1)%N + 1
		}
	}
	return c
}

// pairFromIndex returns the p-th pair (i, j) with 0 ≤ i < j < m in
// lexicographic order.
func pairFromIndex(p, m int) (int, int) {
	for i := 0; i < m; i++ {
		count := m - 1 - i
		if p < count {
			return i, i + 1 + p
		}
		p -= count
	}
	return m - 2, m - 1 // unreachable for valid p
}

// feed consumes one symbol of the copy.
func (c *copyChecker) feed(b byte) {
	if b == '#' {
		c.endItem()
		c.k++
		c.pos = 0
		return
	}
	bit := 0
	if b == '1' {
		bit = 1
	}
	H := c.lay.headerLen
	m := c.lay.m
	switch c.kind {
	case checkBit:
		if c.k < H {
			if c.k == c.headerIdx {
				c.mapped = c.mapped<<1 | bit
			}
		} else {
			if c.k == c.primaryK && c.pos == c.bitB-1 {
				c.vBit = bit
			}
			if c.k == c.secondaryBase+c.mapped && c.pos == c.bitB-1 {
				c.wBit = bit
			}
		}
	case checkInj:
		if c.k < H {
			if c.k == c.injI {
				c.injVal = c.injVal<<1 | bit
			} else if c.k > c.injI {
				c.curHdr = c.curHdr<<1 | bit
			}
		}
	case checkSort:
		base := H + m // v' section
		if c.k == base+c.pairI && c.pos == c.bitB-1 {
			c.vBit = bit
		}
		if c.k == base+c.pairJ && c.pos == c.bitB-1 {
			c.wBit = bit
		}
	}
	c.pos++
}

// endItem handles a separator: injectivity comparisons are resolved
// per header item.
func (c *copyChecker) endItem() {
	if c.kind == checkInj && c.k < c.lay.headerLen && c.k > c.injI {
		if c.curHdr == c.injVal {
			c.failed = true
		}
		c.curHdr = 0
	}
}

// finish evaluates the check after the whole copy has streamed by.
// Sortedness checks defer their verdict to the shared pairState.
func (c *copyChecker) finish() bool {
	switch c.kind {
	case checkBit:
		// Accept iff the two values agree on bit b or both lack it.
		return c.vBit == c.wBit
	case checkInj:
		return !c.failed
	case checkSort:
		c.sort.step(pairKey(c.pairI, c.pairJ, c.lay.m), c.vBit, c.wBit)
		return true
	default:
		return false
	}
}

// pairKey linearizes a pair (i, j) for the cross-copy state.
func pairKey(i, j, m int) int { return i*m + j }
