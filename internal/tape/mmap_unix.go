//go:build unix

package tape

// mmap_unix.go is the memory-mapped file backend: cells live in a
// shared mapping of an unlinked temp file, so every access is a plain
// memory operation and the kernel pages the bytes in and out behind
// the tape's back. Capacity grows by ftruncate + remap with doubling;
// the logical length n is tracked here (the mapping is the capacity,
// not the length). The invariant that makes Truncate/Grow match the
// in-memory backend: every mapped byte at index >= n is zero.

import (
	"bytes"
	"os"
	"syscall"
)

// mmapMinCap is the smallest mapping; doublings from here reach 1 GiB
// in 14 remaps.
const mmapMinCap = 64 << 10

type mmapBackend struct {
	f      *os.File
	data   []byte // the mapping; len(data) is the capacity
	n      int    // logical cell count
	closed bool
}

func newMmapBackend(dir string) Backend {
	f, err := os.CreateTemp(dir, "st-tape-*.mmap")
	if err != nil {
		ioPanic("create", Mmap, err)
	}
	// Unlink immediately, like the file backend: the mapping and the
	// descriptor keep the inode alive, and nothing is left to clean up
	// however the process exits.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		ioPanic("unlink", Mmap, err)
	}
	return &mmapBackend{f: f}
}

func (b *mmapBackend) Kind() Storage { return Mmap }
func (b *mmapBackend) Len() int      { return b.n }

// ensureCap grows the mapping to hold at least need cells.
func (b *mmapBackend) ensureCap(need int) {
	if need <= len(b.data) {
		return
	}
	newCap := len(b.data)
	if newCap < mmapMinCap {
		newCap = mmapMinCap
	}
	for newCap < need {
		newCap *= 2
	}
	if b.data != nil {
		if err := syscall.Munmap(b.data); err != nil {
			ioPanic("munmap", Mmap, err)
		}
		b.data = nil
	}
	// Extend the file first: touching mapped pages beyond the file's
	// end would SIGBUS. ftruncate extends with zeros (sparsely), which
	// keeps the ≥n-is-zero invariant for the fresh region.
	if err := b.f.Truncate(int64(newCap)); err != nil {
		ioPanic("truncate", Mmap, err)
	}
	data, err := syscall.Mmap(int(b.f.Fd()), 0, newCap,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		ioPanic("mmap", Mmap, err)
	}
	b.data = data
}

func (b *mmapBackend) Cell(i int) byte       { return b.data[i] }
func (b *mmapBackend) SetCell(i int, c byte) { b.data[i] = c }

func (b *mmapBackend) ReadAt(dst []byte, off int)  { copy(dst, b.data[off:]) }
func (b *mmapBackend) WriteAt(src []byte, off int) { copy(b.data[off:], src) }

func (b *mmapBackend) IndexByte(delim byte, off int) int {
	if i := bytes.IndexByte(b.data[off:b.n], delim); i >= 0 {
		return off + i
	}
	return -1
}

func (b *mmapBackend) Grow(n int) {
	b.ensureCap(n)
	b.n = n
}

func (b *mmapBackend) Truncate(n int) {
	// Zero the dropped range so a later Grow reads Blank.
	clear(b.data[n:b.n])
	b.n = n
}

func (b *mmapBackend) Reset() { b.Truncate(0) }

func (b *mmapBackend) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	if b.data != nil {
		if err := syscall.Munmap(b.data); err != nil {
			b.f.Close()
			return err
		}
		b.data = nil
	}
	return b.f.Close()
}
