package tape

import (
	"os"
	"testing"
)

// TestSpillDirStaysEmpty enforces the unlink-on-create temp-file
// hygiene of the out-of-core backends: the spill file is removed from
// the directory the moment it is created (the open descriptor and the
// mapping keep the inode alive), so the spill directory holds no
// entries even while tapes are live — which is exactly why a SIGINT or
// SIGKILL at any point, Close or no Close, leaves nothing behind for
// the kernel has already reclaimed the unlinked inode.
func TestSpillDirStaysEmpty(t *testing.T) {
	for _, st := range []Storage{File, Mmap} {
		t.Run(string(st), func(t *testing.T) {
			dir := t.TempDir()
			tp := NewWith("spill", Options{Storage: st, SpillDir: dir})
			if err := tp.WriteBlock(make([]byte, 256<<10)); err != nil { // past any page/cap boundary
				t.Fatal(err)
			}
			assertEmptyDir(t, dir, "while the tape is live")

			// Simulated unclean death: drop the tape without Close. The
			// finalizer-free contract still holds — the directory never
			// had an entry to leak.
			tp = nil
			_ = tp
			assertEmptyDir(t, dir, "after abandoning the tape un-Closed")

			tp2 := NewWith("spill2", Options{Storage: st, SpillDir: dir, SpillThreshold: 64})
			if err := tp2.WriteBlock(make([]byte, 4096)); err != nil { // crosses the threshold: migrates
				t.Fatal(err)
			}
			if tp2.StorageKind() != st {
				t.Fatalf("tape did not spill: backend is %v", tp2.StorageKind())
			}
			assertEmptyDir(t, dir, "after spill migration")
			if err := tp2.Close(); err != nil {
				t.Fatal(err)
			}
			assertEmptyDir(t, dir, "after Close")
		})
	}
}

func assertEmptyDir(t *testing.T, dir, when string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("spill dir not empty %s: %v", when, names)
	}
}
