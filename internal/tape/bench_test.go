package tape

import (
	"math/rand"
	"testing"
)

// The bulk/step benchmark pair tracks the fast path's speedup
// independently of the deciders built on top of it: both perform the
// same whole-tape forward scan (and pay identical reversal, step and
// read counts); only the mechanics differ.

const benchScanSize = 64 << 10 // 64 KiB, the size class the bulk path unlocks

func benchInput() []byte {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, benchScanSize)
	for i := range data {
		data[i] = byte('a' + rng.Intn(4))
	}
	return data
}

// BenchmarkTapeBulkScan measures a whole-tape sweep through the bulk
// fast path: one Rewind and one ScanBytes per iteration.
func BenchmarkTapeBulkScan(b *testing.B) {
	tp := FromBytes("bulk", benchInput())
	b.SetBytes(benchScanSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tp.Rewind(); err != nil {
			b.Fatal(err)
		}
		out, err := tp.ScanBytes()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != benchScanSize {
			b.Fatalf("scanned %d bytes, want %d", len(out), benchScanSize)
		}
	}
}

// BenchmarkTapeStepScan measures the same sweep one cell at a time —
// the only mechanism available before the bulk layer existed.
func BenchmarkTapeStepScan(b *testing.B) {
	tp := FromBytes("step", benchInput())
	b.SetBytes(benchScanSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tp.Pos() > 0 {
			if err := tp.Move(Backward); err != nil {
				b.Fatal(err)
			}
		}
		out := make([]byte, 0, benchScanSize)
		for !tp.AtEnd() {
			s, err := tp.ReadMove(Forward)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, s)
		}
		if len(out) != benchScanSize {
			b.Fatalf("scanned %d bytes, want %d", len(out), benchScanSize)
		}
	}
}

// BenchmarkTapeBulkAppend and BenchmarkTapeStepAppend are the write
// side of the same pair, including the Truncate+rewrite pattern the
// sort and relational operators use.
func BenchmarkTapeBulkAppend(b *testing.B) {
	data := benchInput()
	tp := New("bulk")
	b.SetBytes(benchScanSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tp.Rewind(); err != nil {
			b.Fatal(err)
		}
		tp.Truncate()
		if err := tp.WriteBlock(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTapeStepAppend(b *testing.B) {
	data := benchInput()
	tp := New("step")
	b.SetBytes(benchScanSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tp.Pos() > 0 {
			if err := tp.Move(Backward); err != nil {
				b.Fatal(err)
			}
		}
		tp.Truncate()
		for _, s := range data {
			if err := tp.WriteMove(s, Forward); err != nil {
				b.Fatal(err)
			}
		}
	}
}
