// Package tape implements the external-memory tape device of the ST
// model of Grohe, Hernich and Schweikardt, "Randomized Computations
// on Large Data Sets: Tight Lower Bounds" (PODS 2006).
//
// A Tape is a one-sided infinite sequence of byte cells with a single
// read/write head. The two cost measures of the paper's Definition 1
// are tracked exactly:
//
//   - head reversals: every change of the head's direction of movement
//     increments the reversal counter. Following Definition 1, the
//     number of sequential scans of a tape is 1 + reversals — the r in
//     the class ST(r, s, t). Stats.Scans computes it; core.Machine
//     sums it across all tapes.
//   - space: the number of cells ever touched (MaxCell, Size). The
//     internal-memory measure s is tracked separately by
//     internal/memory; this package only meters the external device.
//
// Random access is not offered by the API: a machine may only step the
// head one cell at a time, exactly as on a Turing machine tape. This
// restriction is what the paper's lower bounds (Theorem 6 via the
// list-machine simulation of Lemma 16) exploit, so the device must
// not leak shortcuts.
//
// # Bulk operations and the cost-model invariant
//
// In addition to the single-cell primitives (Move, Read, Write), the
// package offers bulk operations that sweep a whole direction in one
// call: ReadBlock, WriteBlock, ScanBytes, ScanUntil, AppendBytes,
// ReadBlockBackward, MoveBackwardN, Rewind and SeekEnd. Bulk ops are
// performance sugar only — each is defined as, and accounted exactly
// like, the equivalent sequence of single-cell steps: reversal,
// step, read and write counters, MaxCell, Size, the head position,
// budget enforcement and error behavior are all identical to the
// step-by-step path. The difference is purely mechanical: a sweep of
// n cells performs one copy/append and one batched counter update
// instead of n method calls. This invariant is enforced by the
// differential property tests in diff_test.go.
//
// Reversal budgets (SetBudget) realize the r(N) resource bound of the
// complexity classes: a machine that would exceed its scan budget
// gets ErrBudget, which the Las Vegas experiments (Corollary 10, E5)
// use to make budget-starved runs answer "I don't know".
package tape
