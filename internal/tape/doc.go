// Package tape implements the external-memory tape device of the ST
// model of Grohe, Hernich and Schweikardt, "Randomized Computations
// on Large Data Sets: Tight Lower Bounds" (PODS 2006).
//
// A Tape is a one-sided infinite sequence of byte cells with a single
// read/write head. The two cost measures of the paper's Definition 1
// are tracked exactly:
//
//   - head reversals: every change of the head's direction of movement
//     increments the reversal counter. Following Definition 1, the
//     number of sequential scans of a tape is 1 + reversals — the r in
//     the class ST(r, s, t). Stats.Scans computes it; core.Machine
//     sums it across all tapes.
//   - space: the number of cells ever touched (MaxCell, Size). The
//     internal-memory measure s is tracked separately by
//     internal/memory; this package only meters the external device.
//
// Random access is not offered by the API: a machine may only step the
// head one cell at a time, exactly as on a Turing machine tape. This
// restriction is what the paper's lower bounds (Theorem 6 via the
// list-machine simulation of Lemma 16) exploit, so the device must
// not leak shortcuts.
//
// # Bulk operations and the cost-model invariant
//
// In addition to the single-cell primitives (Move, Read, Write), the
// package offers bulk operations that sweep a whole direction in one
// call: ReadBlock, WriteBlock, ScanBytes, ScanUntil, AppendBytes,
// ReadBlockBackward, MoveBackwardN, Rewind and SeekEnd. Bulk ops are
// performance sugar only — each is defined as, and accounted exactly
// like, the equivalent sequence of single-cell steps: reversal,
// step, read and write counters, MaxCell, Size, the head position,
// budget enforcement and error behavior are all identical to the
// step-by-step path. The difference is purely mechanical: a sweep of
// n cells performs one copy/append and one batched counter update
// instead of n method calls. This invariant is enforced by the
// differential property tests in diff_test.go.
//
// Reversal budgets (SetBudget) realize the r(N) resource bound of the
// complexity classes: a machine that would exceed its scan budget
// gets ErrBudget, which the Las Vegas experiments (Corollary 10, E5)
// use to make budget-starved runs answer "I don't know".
//
// # Storage backends and the backend contract
//
// Where the cells live is a second, orthogonal seam: Backend is a flat
// cell store (Len, Cell/SetCell, ReadAt/WriteAt, IndexByte, Grow,
// Truncate, Reset, Close) and Options{Storage, SpillDir,
// SpillThreshold} selects one per tape — Mem (the default in-memory
// slice), File (buffered sequential I/O through one 64 KiB write-back
// page) or Mmap (a MAP_SHARED mapping with doubling remap; falls back
// to File off unix). SpillThreshold > 0 starts the tape in RAM and
// migrates it to the storage backend the first time it outgrows the
// threshold.
//
// The contract every backend must honor — "the backend may move the
// bytes' home, never a count":
//
//   - All accounting lives in Tape, above the interface. A backend
//     never touches a counter, so Stats, budgets and error behavior
//     are byte-identical on every backend; the conformance suite
//     (forEachBackend tables, the lockstep driver, FuzzTapeBackend)
//     enforces equality of contents, head and Stats after every
//     single operation.
//   - Cells at index ≥ Len read Blank after any Grow: Grow extends
//     with zeroes, Truncate forgets the tail so a re-grown range
//     reads Blank again (the file backend ftruncates; the mmap
//     backend zeroes the dropped range and keeps every mapped byte
//     past Len zero).
//   - Slices returned by Tape (ReadBlock, ReadBlockBackward,
//     ScanBytes, ScanUntil, Contents) are fresh copies owned by the
//     caller on every backend — mutation never reaches the tape and
//     tape writes never reach a returned slice (alias_test.go).
//   - Spill files are created unlinked (os.CreateTemp + immediate
//     Remove), so the directory never holds an entry and any exit —
//     Close, SIGINT or SIGKILL — reclaims the inode.
//   - I/O failures surface as panics carrying *IOError (errors.Is
//     ErrStorage); the single-cell API has no error returns, and the
//     shard layer's recovery converts the panic into its ordinary
//     retry → fallback path.
package tape
