package tape

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// Every property in this file runs as a table over all storage
// backends via forEachBackend: the cost model and tape semantics are
// defined above the Backend interface, so no assertion here may depend
// on where the bytes live.

func TestNewTapeIsEmptyForward(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := NewWith("t", o)
		defer tp.Close()
		if tp.Len() != 0 {
			t.Fatalf("Len = %d, want 0", tp.Len())
		}
		if tp.Dir() != Forward {
			t.Fatalf("Dir = %v, want Forward", tp.Dir())
		}
		if !tp.AtStart() || !tp.AtEnd() {
			t.Fatal("fresh tape should be at start and at end")
		}
		if got := tp.Read(); got != Blank {
			t.Fatalf("Read on empty tape = %d, want Blank", got)
		}
	})
}

func TestFromBytesPresentsInput(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("in", []byte("abc"), o)
		defer tp.Close()
		got, err := tp.ScanBytes()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "abc" {
			t.Fatalf("ScanBytes = %q, want %q", got, "abc")
		}
		if tp.Reversals() != 0 {
			t.Fatalf("forward scan charged %d reversals, want 0", tp.Reversals())
		}
		if tp.Stats().Scans() != 1 {
			t.Fatalf("Scans = %d, want 1", tp.Stats().Scans())
		}
	})
}

func TestReversalAccounting(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("t", []byte("abcd"), o)
		defer tp.Close()
		if _, err := tp.ScanBytes(); err != nil {
			t.Fatal(err)
		}
		if err := tp.Rewind(); err != nil {
			t.Fatal(err)
		}
		if tp.Reversals() != 1 {
			t.Fatalf("after scan+rewind: reversals = %d, want 1", tp.Reversals())
		}
		if _, err := tp.ScanBytes(); err != nil {
			t.Fatal(err)
		}
		if tp.Reversals() != 2 {
			t.Fatalf("after second scan: reversals = %d, want 2", tp.Reversals())
		}
		if tp.Stats().Scans() != 3 {
			t.Fatalf("Scans = %d, want 3", tp.Stats().Scans())
		}
	})
}

func TestRewindOnEmptyTapeIsFree(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := NewWith("t", o)
		defer tp.Close()
		if err := tp.Rewind(); err != nil {
			t.Fatal(err)
		}
		if tp.Reversals() != 0 {
			t.Fatalf("reversals = %d, want 0", tp.Reversals())
		}
	})
}

func TestBudgetEnforced(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("t", []byte("ab"), o)
		defer tp.Close()
		tp.SetBudget(0)
		if _, err := tp.ScanBytes(); err != nil {
			t.Fatalf("forward scan should be within budget: %v", err)
		}
		err := tp.Move(Backward)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("err = %v, want ErrBudget", err)
		}
		// Direction must be unchanged after a refused turn.
		if tp.Dir() != Forward {
			t.Fatalf("direction changed despite budget refusal")
		}
	})
}

func TestBudgetUnlimitedWhenNegative(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("t", []byte("ab"), o)
		defer tp.Close()
		tp.SetBudget(-1)
		for i := 0; i < 10; i++ {
			if err := tp.Move(Forward); err != nil {
				t.Fatal(err)
			}
			if err := tp.Move(Backward); err != nil {
				t.Fatal(err)
			}
		}
		if tp.Reversals() != 19 {
			t.Fatalf("reversals = %d, want 19", tp.Reversals())
		}
	})
}

func TestLeftEnd(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := NewWith("t", o)
		defer tp.Close()
		err := tp.Move(Backward)
		if !errors.Is(err, ErrLeftEnd) {
			t.Fatalf("err = %v, want ErrLeftEnd", err)
		}
		// The turn itself is charged even though the move failed.
		if tp.Reversals() != 1 {
			t.Fatalf("reversals = %d, want 1", tp.Reversals())
		}
	})
}

func TestWriteExtendsTape(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := NewWith("t", o)
		defer tp.Close()
		for i := 0; i < 5; i++ {
			if err := tp.WriteMove(byte('a'+i), Forward); err != nil {
				t.Fatal(err)
			}
		}
		if got := string(tp.Contents()); got != "abcde" {
			t.Fatalf("contents = %q, want %q", got, "abcde")
		}
		if tp.Len() != 5 {
			t.Fatalf("Len = %d, want 5", tp.Len())
		}
	})
}

func TestOverwrite(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("t", []byte("xyz"), o)
		defer tp.Close()
		tp.Write('A')
		if got := string(tp.Contents()); got != "Ayz" {
			t.Fatalf("contents = %q, want %q", got, "Ayz")
		}
	})
}

func TestTruncate(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("t", []byte("abcdef"), o)
		defer tp.Close()
		for i := 0; i < 3; i++ {
			if err := tp.Move(Forward); err != nil {
				t.Fatal(err)
			}
		}
		tp.Truncate()
		if got := string(tp.Contents()); got != "abc" {
			t.Fatalf("contents = %q, want %q", got, "abc")
		}
	})
}

func TestSeekEnd(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("t", []byte("abc"), o)
		defer tp.Close()
		if err := tp.SeekEnd(); err != nil {
			t.Fatal(err)
		}
		if !tp.AtEnd() {
			t.Fatal("not at end after SeekEnd")
		}
		if tp.Pos() != 3 {
			t.Fatalf("pos = %d, want 3", tp.Pos())
		}
	})
}

func TestAppendBytesThenScanRoundTrips(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := NewWith("t", o)
		defer tp.Close()
		want := []byte("hello, tape")
		if err := tp.AppendBytes(want); err != nil {
			t.Fatal(err)
		}
		if err := tp.Rewind(); err != nil {
			t.Fatal(err)
		}
		got, err := tp.ScanBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round trip = %q, want %q", got, want)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("t", []byte("ab"), o)
		defer tp.Close()
		tp.Read()
		tp.Write('x')
		if err := tp.Move(Forward); err != nil {
			t.Fatal(err)
		}
		s := tp.Stats()
		if s.Reads != 1 || s.Writes != 1 || s.Steps != 1 {
			t.Fatalf("stats = %+v, want reads=1 writes=1 steps=1", s)
		}
	})
}

func TestReadMove(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		tp := FromBytesWith("t", []byte("ab"), o)
		defer tp.Close()
		b, err := tp.ReadMove(Forward)
		if err != nil || b != 'a' {
			t.Fatalf("ReadMove = (%q, %v), want ('a', nil)", b, err)
		}
		b, err = tp.ReadMove(Forward)
		if err != nil || b != 'b' {
			t.Fatalf("ReadMove = (%q, %v), want ('b', nil)", b, err)
		}
	})
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("Direction.String mismatch")
	}
}

// Property: writing any byte slice and scanning it back yields the same
// slice, and a forward-only write charges zero reversals.
func TestQuickRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		f := func(data []byte) bool {
			tp := NewWith("q", o)
			defer tp.Close()
			if err := tp.AppendBytes(data); err != nil {
				return false
			}
			if tp.Reversals() != 0 {
				return false
			}
			if err := tp.Rewind(); err != nil {
				return false
			}
			got, err := tp.ScanBytes()
			if err != nil {
				return false
			}
			if len(data) == 0 {
				return len(got) == 0
			}
			return bytes.Equal(got, data)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatal(err)
		}
	})
}

// Property: the reversal counter equals the number of direction changes
// in any random walk that stays on the tape.
func TestQuickReversalsCountDirectionChanges(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 200; trial++ {
			tp := FromBytesWith("q", bytes.Repeat([]byte{'x'}, 50), o)
			dir := Forward
			want := 0
			for i := 0; i < 100; i++ {
				d := Forward
				if rng.Intn(2) == 0 {
					d = Backward
				}
				if d == Backward && tp.Pos() == 0 {
					// Still a legal turn; the move fails but the
					// reversal is charged if direction changed.
					if d != dir {
						want++
						dir = d
					}
					_ = tp.Move(d)
					continue
				}
				if d != dir {
					want++
					dir = d
				}
				if err := tp.Move(d); err != nil {
					t.Fatal(err)
				}
			}
			if tp.Reversals() != want {
				t.Fatalf("trial %d: reversals = %d, want %d", trial, tp.Reversals(), want)
			}
			tp.Close()
		}
	})
}

func TestString(t *testing.T) {
	tp := New("diag")
	if s := tp.String(); s == "" {
		t.Fatal("empty String()")
	}
}
