package tape

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// This file enforces the package's cost-model invariant: every bulk
// operation must be observationally identical — tape contents, head
// position, direction, errors, and every Stats counter — to the
// single-step loop it replaces. The reference implementations below
// are the pre-bulk step-by-step bodies, expressed through the public
// single-cell API only.

// stepRef wraps a Tape and runs each bulk operation as its historical
// single-step loop.
type stepRef struct{ t *Tape }

func (r stepRef) Rewind() error {
	for r.t.Pos() > 0 {
		if err := r.t.Move(Backward); err != nil {
			return err
		}
	}
	return nil
}

func (r stepRef) SeekEnd() error {
	for r.t.Pos() < r.t.Len() {
		if err := r.t.Move(Forward); err != nil {
			return err
		}
	}
	return nil
}

func (r stepRef) ScanBytes() ([]byte, error) {
	var out []byte
	for !r.t.AtEnd() {
		b, err := r.t.ReadMove(Forward)
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}

func (r stepRef) ScanUntil(delim byte) ([]byte, bool, error) {
	var out []byte
	for !r.t.AtEnd() {
		b, err := r.t.ReadMove(Forward)
		if err != nil {
			return out, false, err
		}
		out = append(out, b)
		if b == delim {
			return out, true, nil
		}
	}
	return out, false, nil
}

func (r stepRef) WriteBlock(data []byte) error {
	for _, b := range data {
		if err := r.t.WriteMove(b, Forward); err != nil {
			return err
		}
	}
	return nil
}

func (r stepRef) ReadBlock(n int) ([]byte, error) {
	var out []byte
	for i := 0; i < n; i++ {
		b, err := r.t.ReadMove(Forward)
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}

func (r stepRef) ReadBlockBackward(n int) ([]byte, error) {
	var out []byte
	for i := 0; i < n; i++ {
		if err := r.t.Move(Backward); err != nil {
			return out, err
		}
		out = append(out, r.t.Read())
	}
	return out, nil
}

func (r stepRef) MoveBackwardN(n int) error {
	for i := 0; i < n; i++ {
		if err := r.t.Move(Backward); err != nil {
			return err
		}
	}
	return nil
}

// sameErr reports whether the bulk and step paths failed the same way.
func sameErr(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	for _, sentinel := range []error{ErrBudget, ErrLeftEnd} {
		if errors.Is(a, sentinel) != errors.Is(b, sentinel) {
			return false
		}
	}
	return true
}

func diffState(t *testing.T, trial, op int, name string, bulk, step *Tape) {
	t.Helper()
	if !bytes.Equal(bulk.Contents(), step.Contents()) {
		t.Fatalf("trial %d op %d (%s): contents diverge:\nbulk %q\nstep %q", trial, op, name, bulk.Contents(), step.Contents())
	}
	if bulk.Pos() != step.Pos() || bulk.Dir() != step.Dir() {
		t.Fatalf("trial %d op %d (%s): head diverges: bulk pos=%d dir=%v, step pos=%d dir=%v",
			trial, op, name, bulk.Pos(), bulk.Dir(), step.Pos(), step.Dir())
	}
	if bulk.Stats() != step.Stats() {
		t.Fatalf("trial %d op %d (%s): stats diverge:\nbulk %+v\nstep %+v", trial, op, name, bulk.Stats(), step.Stats())
	}
}

// TestDifferentialBulkVsStep drives random operation sequences through
// a bulk tape and a step-by-step reference tape and requires identical
// observable behavior after every operation, including under reversal
// budgets (ErrBudget) and left-end violations (ErrLeftEnd). Both tapes
// live on the backend under test, so the property holds within every
// backend, not just against the mem reference.
func TestDifferentialBulkVsStep(t *testing.T) {
	forEachBackend(t, testDifferentialBulkVsStep)
}

func testDifferentialBulkVsStep(t *testing.T, o Options) {
	rng := rand.New(rand.NewSource(42))
	const trials = 300
	const opsPerTrial = 60

	for trial := 0; trial < trials; trial++ {
		var initial []byte
		if rng.Intn(4) > 0 {
			initial = randomBlock(rng, rng.Intn(40))
		}
		bulk := FromBytesWith("bulk", initial, o)
		step := FromBytesWith("step", initial, o)
		if rng.Intn(3) == 0 {
			// A tight budget forces ErrBudget on some turns.
			budget := rng.Intn(6)
			bulk.SetBudget(budget)
			step.SetBudget(budget)
		}
		ref := stepRef{step}
		var scanBuf []byte // reused across ScanUntilAppend ops

		for op := 0; op < opsPerTrial; op++ {
			name := ""
			var errB, errS error
			switch rng.Intn(13) {
			case 0:
				name = "Rewind"
				errB, errS = bulk.Rewind(), ref.Rewind()
			case 1:
				name = "SeekEnd"
				errB, errS = bulk.SeekEnd(), ref.SeekEnd()
			case 2:
				name = "ScanBytes"
				var gotB, gotS []byte
				gotB, errB = bulk.ScanBytes()
				gotS, errS = ref.ScanBytes()
				if !bytes.Equal(gotB, gotS) {
					t.Fatalf("trial %d op %d: ScanBytes %q vs %q", trial, op, gotB, gotS)
				}
			case 3:
				name = "ScanUntil"
				delim := byte('#')
				if rng.Intn(2) == 0 {
					delim = byte(rng.Intn(4)) // include Blank and rare symbols
				}
				var gotB, gotS []byte
				var foundB, foundS bool
				gotB, foundB, errB = bulk.ScanUntil(delim)
				gotS, foundS, errS = ref.ScanUntil(delim)
				if !bytes.Equal(gotB, gotS) || foundB != foundS {
					t.Fatalf("trial %d op %d: ScanUntil (%q,%v) vs (%q,%v)", trial, op, gotB, foundB, gotS, foundS)
				}
			case 4:
				name = "WriteBlock"
				data := randomBlock(rng, rng.Intn(20))
				errB, errS = bulk.WriteBlock(data), ref.WriteBlock(data)
			case 5:
				name = "AppendBytes"
				data := randomBlock(rng, rng.Intn(20))
				errB, errS = bulk.AppendBytes(data), ref.WriteBlock(data)
			case 6:
				name = "ReadBlock"
				n := rng.Intn(bulk.Len() + 8) // may run past the materialized end
				var gotB, gotS []byte
				gotB, errB = bulk.ReadBlock(n)
				gotS, errS = ref.ReadBlock(n)
				if !bytes.Equal(gotB, gotS) {
					t.Fatalf("trial %d op %d: ReadBlock %q vs %q", trial, op, gotB, gotS)
				}
			case 7:
				name = "ReadBlockBackward"
				n := rng.Intn(bulk.Pos() + 4) // may fall off the left end
				var gotB, gotS []byte
				gotB, errB = bulk.ReadBlockBackward(n)
				gotS, errS = ref.ReadBlockBackward(n)
				if !bytes.Equal(gotB, gotS) {
					t.Fatalf("trial %d op %d: ReadBlockBackward %q vs %q", trial, op, gotB, gotS)
				}
			case 8:
				name = "MoveBackwardN"
				n := rng.Intn(bulk.Pos() + 4)
				errB, errS = bulk.MoveBackwardN(n), ref.MoveBackwardN(n)
			case 9:
				name = "Move"
				d := Forward
				if rng.Intn(2) == 0 {
					d = Backward
				}
				errB, errS = bulk.Move(d), step.Move(d)
			case 10:
				name = "ReadWrite"
				if bulk.Read() != step.Read() {
					t.Fatalf("trial %d op %d: Read diverges", trial, op)
				}
				b := byte('a' + rng.Intn(4))
				bulk.Write(b)
				step.Write(b)
			case 11:
				name = "Truncate"
				bulk.Truncate()
				step.Truncate()
			case 12:
				name = "ScanUntilAppend"
				delim := byte('#')
				if rng.Intn(2) == 0 {
					delim = byte(rng.Intn(4))
				}
				var gotB, gotS []byte
				var foundB, foundS bool
				gotB, foundB, errB = bulk.ScanUntilAppend(delim, scanBuf)
				scanBuf = gotB[:0]
				gotS, foundS, errS = ref.ScanUntil(delim)
				if !bytes.Equal(gotB, gotS) || foundB != foundS {
					t.Fatalf("trial %d op %d: ScanUntilAppend (%q,%v) vs (%q,%v)", trial, op, gotB, foundB, gotS, foundS)
				}
			}
			if !sameErr(errB, errS) {
				t.Fatalf("trial %d op %d (%s): errors diverge: bulk %v, step %v", trial, op, name, errB, errS)
			}
			diffState(t, trial, op, name, bulk, step)
		}
		bulk.Close()
		step.Close()
	}
}

// TestDifferentialForwardSweepPattern pins the common algorithm shape —
// append, rewind, scan, rewind — to identical stats on both paths.
func TestDifferentialForwardSweepPattern(t *testing.T) {
	forEachBackend(t, testDifferentialForwardSweepPattern)
}

func testDifferentialForwardSweepPattern(t *testing.T, o Options) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		data := randomBlock(rng, 1+rng.Intn(100))
		bulk := NewWith("bulk", o)
		step := NewWith("step", o)
		ref := stepRef{step}

		if err := bulk.WriteBlock(data); err != nil {
			t.Fatal(err)
		}
		if err := ref.WriteBlock(data); err != nil {
			t.Fatal(err)
		}
		if err := bulk.Rewind(); err != nil {
			t.Fatal(err)
		}
		if err := ref.Rewind(); err != nil {
			t.Fatal(err)
		}
		gotB, err := bulk.ScanBytes()
		if err != nil {
			t.Fatal(err)
		}
		gotS, err := ref.ScanBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotB, data) || !bytes.Equal(gotS, data) {
			t.Fatalf("round trip mismatch: %q / %q want %q", gotB, gotS, data)
		}
		diffState(t, trial, 0, "sweep", bulk, step)
		// Forward append, backward rewind, forward scan: two turns.
		if bulk.Reversals() != 2 {
			t.Fatalf("append+rewind+scan charged %d reversals, want 2", bulk.Reversals())
		}
		bulk.Close()
		step.Close()
	}
}

// TestBulkBudgetExhaustion pins the budget-refusal accounting of each
// bulk operation against its step-by-step equivalent.
func TestBulkBudgetExhaustion(t *testing.T) {
	forEachBackend(t, testBulkBudgetExhaustion)
}

func testBulkBudgetExhaustion(t *testing.T, o Options) {
	mk := func() (*Tape, *Tape) {
		bulk := FromBytesWith("bulk", []byte("abcd"), o)
		step := FromBytesWith("step", []byte("abcd"), o)
		for _, tp := range []*Tape{bulk, step} {
			tp.SetBudget(0)
			if _, err := tp.ScanBytes(); err != nil { // forward: within budget
				t.Fatal(err)
			}
		}
		return bulk, step
	}

	bulk, step := mk()
	errB := bulk.Rewind()
	errS := stepRef{step}.Rewind()
	if !errors.Is(errB, ErrBudget) || !sameErr(errB, errS) {
		t.Fatalf("Rewind budget: bulk %v, step %v", errB, errS)
	}
	diffState(t, 0, 0, "Rewind/budget", bulk, step)

	bulk, step = mk()
	_, errB = bulk.ReadBlockBackward(2)
	_, errS = stepRef{step}.ReadBlockBackward(2)
	if !errors.Is(errB, ErrBudget) || !sameErr(errB, errS) {
		t.Fatalf("ReadBlockBackward budget: bulk %v, step %v", errB, errS)
	}
	diffState(t, 0, 0, "ReadBlockBackward/budget", bulk, step)

	bulk, step = mk()
	errB = bulk.MoveBackwardN(2)
	errS = stepRef{step}.MoveBackwardN(2)
	if !errors.Is(errB, ErrBudget) || !sameErr(errB, errS) {
		t.Fatalf("MoveBackwardN budget: bulk %v, step %v", errB, errS)
	}
	diffState(t, 0, 0, "MoveBackwardN/budget", bulk, step)

	// A backward-moving tape refusing to turn forward: the first
	// ReadMove/WriteMove of the step loop pays its read/write before
	// the refused turn, and the bulk path must match.
	mkBack := func() (*Tape, *Tape) {
		bulk := FromBytesWith("bulk", []byte("abcd"), o)
		step := FromBytesWith("step", []byte("abcd"), o)
		for _, tp := range []*Tape{bulk, step} {
			tp.SetBudget(1)
			if _, err := tp.ScanBytes(); err != nil {
				t.Fatal(err)
			}
			if err := tp.MoveBackwardN(2); err != nil { // burns the only reversal
				t.Fatal(err)
			}
		}
		return bulk, step
	}

	bulk, step = mkBack()
	_, errB = bulk.ScanBytes()
	_, errS = stepRef{step}.ScanBytes()
	if !errors.Is(errB, ErrBudget) || !sameErr(errB, errS) {
		t.Fatalf("ScanBytes budget: bulk %v, step %v", errB, errS)
	}
	diffState(t, 0, 0, "ScanBytes/budget", bulk, step)

	bulk, step = mkBack()
	errB = bulk.WriteBlock([]byte("xy"))
	errS = stepRef{step}.WriteBlock([]byte("xy"))
	if !errors.Is(errB, ErrBudget) || !sameErr(errB, errS) {
		t.Fatalf("WriteBlock budget: bulk %v, step %v", errB, errS)
	}
	diffState(t, 0, 0, "WriteBlock/budget", bulk, step)
}

// TestBulkLeftEnd pins the left-end semantics of the backward bulk
// operations: a partial sweep is charged for exactly the cells it
// visited.
func TestBulkLeftEnd(t *testing.T) {
	forEachBackend(t, testBulkLeftEnd)
}

func testBulkLeftEnd(t *testing.T, o Options) {
	bulk := FromBytesWith("bulk", []byte("abc"), o)
	step := FromBytesWith("step", []byte("abc"), o)
	for _, tp := range []*Tape{bulk, step} {
		if _, err := tp.ScanBytes(); err != nil {
			t.Fatal(err)
		}
	}
	gotB, errB := bulk.ReadBlockBackward(10)
	gotS, errS := stepRef{step}.ReadBlockBackward(10)
	if !errors.Is(errB, ErrLeftEnd) || !sameErr(errB, errS) {
		t.Fatalf("errors: bulk %v, step %v", errB, errS)
	}
	if !bytes.Equal(gotB, gotS) || string(gotB) != "cba" {
		t.Fatalf("partial reads: bulk %q, step %q, want %q", gotB, gotS, "cba")
	}
	diffState(t, 0, 0, "ReadBlockBackward/leftend", bulk, step)
}

func randomBlock(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if rng.Intn(5) == 0 {
			out[i] = '#'
		} else {
			out[i] = byte('a' + rng.Intn(4))
		}
	}
	return out
}
