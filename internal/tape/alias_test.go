package tape

import (
	"bytes"
	"testing"
)

// TestReturnedSlicesAreOwnedByCaller enforces the ownership contract
// documented on ReadBlock, ReadBlockBackward, ScanBytes, ScanUntil and
// Contents: the returned slice is a fresh copy on every backend.
// Mutating it must never reach the tape, and writing to the tape must
// never reach a previously returned slice — the mem backend could
// cheaply alias its slice, so this is a mutation test, not a tautology.
func TestReturnedSlicesAreOwnedByCaller(t *testing.T) {
	forEachBackend(t, func(t *testing.T, o Options) {
		seed := []byte("abcdefgh")
		grab := map[string]func(tp *Tape) []byte{
			"Contents": func(tp *Tape) []byte { return tp.Contents() },
			"ScanBytes": func(tp *Tape) []byte {
				got, err := tp.ScanBytes()
				if err != nil {
					t.Fatal(err)
				}
				return got
			},
			"ScanUntil": func(tp *Tape) []byte {
				got, _, err := tp.ScanUntil('#') // absent: sweeps the whole tape
				if err != nil {
					t.Fatal(err)
				}
				return got
			},
			"ReadBlock": func(tp *Tape) []byte {
				got, err := tp.ReadBlock(len(seed))
				if err != nil {
					t.Fatal(err)
				}
				return got
			},
			"ReadBlockBackward": func(tp *Tape) []byte {
				if err := tp.SeekEnd(); err != nil {
					t.Fatal(err)
				}
				got, err := tp.ReadBlockBackward(len(seed))
				if err != nil {
					t.Fatal(err)
				}
				return got
			},
		}
		for name, f := range grab {
			t.Run(name, func(t *testing.T) {
				tp := FromBytesWith("alias", seed, o)
				defer tp.Close()
				got := f(tp)
				if len(got) != len(seed) {
					t.Fatalf("%s returned %d cells, want %d", name, len(got), len(seed))
				}

				// Caller mutation must not reach the tape.
				for i := range got {
					got[i] = '!'
				}
				if !bytes.Equal(tp.Contents(), seed) {
					t.Fatalf("mutating the slice returned by %s changed the tape: %q", name, tp.Contents())
				}

				// Tape mutation must not reach the caller's slice.
				snap := append([]byte(nil), f(tp)...)
				held := f(tp)
				if err := tp.Rewind(); err != nil {
					t.Fatal(err)
				}
				tp.Write('Z')
				if !bytes.Equal(held, snap) {
					t.Fatalf("writing to the tape changed the slice %s returned earlier: %q", name, held)
				}
			})
		}
	})
}
