//go:build !unix

package tape

// Platforms without syscall.Mmap degrade Storage Mmap to the buffered
// file backend: same out-of-core behavior, same unlinked-temp-file
// hygiene, one copy per page instead of a mapping. The conformance
// suite holds either implementation to identical observable behavior,
// so the substitution cannot move a byte or a counter.
func newMmapBackend(dir string) Backend { return newFileBackend(dir) }
