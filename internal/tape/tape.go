package tape

import (
	"bytes"
	"errors"
	"fmt"
)

// Blank is the blank symbol found in cells that were never written.
// It plays the role of the Turing machine blank ✷.
const Blank byte = 0

// Direction is the direction of head movement.
type Direction int8

// Directions of head movement. A fresh tape starts moving Forward.
const (
	Forward  Direction = +1
	Backward Direction = -1
)

func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// ErrBudget is returned (wrapped) when an operation would exceed the
// reversal budget configured with SetBudget.
var ErrBudget = errors.New("tape: reversal budget exhausted")

// ErrLeftEnd is returned when the head would fall off the left end of
// the tape.
var ErrLeftEnd = errors.New("tape: head moved past left end")

// Stats is a snapshot of a tape's resource counters.
type Stats struct {
	Reversals int   // number of changes of the head direction
	Steps     int64 // number of single-cell head movements
	Reads     int64 // number of Read operations
	Writes    int64 // number of Write operations
	MaxCell   int   // highest cell index ever visited
	Size      int   // number of cells currently materialized
}

// Scans is the number of sequential scans this tape has performed:
// 1 + Reversals, following the convention of Definition 1 in the
// paper.
func (s Stats) Scans() int { return 1 + s.Reversals }

// A Tape is a one-sided infinite tape of byte cells with a read/write
// head. The cells live in a storage Backend (in RAM by default; in a
// temp file or a memory mapping under Options) while the Tape itself
// owns the whole cost model: every reversal, step, read, write and
// MaxCell update is charged here, above the backend, so the choice of
// backend can never move a count. The zero value is not ready for use;
// call New, FromBytes, or their ...With variants.
type Tape struct {
	name      string
	be        Backend
	fast      *memBackend // == be when it is an unwrapped memBackend; else nil
	opts      Options
	spillAt   int // spill when materialized size exceeds this; <0 = never
	pos       int // current head position (0-based)
	dir       Direction
	reversals int
	steps     int64
	reads     int64
	writes    int64
	maxCell   int

	budget    int  // maximum reversals allowed; <0 means unlimited
	hasBudget bool // whether budget applies
}

// New returns an empty in-memory tape with the given diagnostic name.
func New(name string) *Tape { return NewWith(name, Options{}) }

// NewWith returns an empty tape whose cells live in the storage the
// options select. Invalid options (Options.Validate) panic: tapes are
// constructed deep inside machines, and silently dropping a
// misconfigured spill threshold is worse than failing loudly where
// the configuration bug is.
func NewWith(name string, o Options) *Tape {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	t := &Tape{name: name, dir: Forward, budget: -1, opts: o}
	if o.storage() != Mem && o.SpillThreshold > 0 {
		// Start in RAM; spill to the storage backend when the
		// materialized size first exceeds the threshold.
		pre := o
		pre.Storage = Mem
		t.be = NewBackend(pre)
		t.spillAt = o.SpillThreshold
	} else {
		t.be = NewBackend(o)
		t.spillAt = -1
	}
	if mb, ok := t.be.(*memBackend); ok {
		t.fast = mb
	}
	return t
}

// FromBytes returns a tape whose initial content is a copy of data,
// with the head on cell 0 moving forward. It is the standard way to
// present an input word to a machine. Visit tracking (MaxCell) starts
// at cell 0 and is advanced by head movement only.
func FromBytes(name string, data []byte) *Tape {
	return FromBytesWith(name, data, Options{})
}

// FromBytesWith is FromBytes with an explicit storage selection.
func FromBytesWith(name string, data []byte, o Options) *Tape {
	t := NewWith(name, o)
	if len(data) > 0 {
		t.growTo(len(data))
		t.writeAt(data, 0)
	}
	return t
}

// FromString is FromBytes for a string input.
func FromString(name, data string) *Tape { return FromBytes(name, []byte(data)) }

// Replace swaps the tape's content for a copy of data, placing the
// head on cell 0 moving forward while KEEPING every accumulated
// counter (reversals, steps, reads, writes, MaxCell). It models a
// mid-run tape handoff — the machine receives a physically different,
// rewound tape in this slot, but its own head history up to the swap
// stays on the books. No head movement is charged: the exchange is
// input placement, like FromBytes, not a rewind.
func (t *Tape) Replace(data []byte) {
	t.be.Reset()
	if len(data) > 0 {
		t.growTo(len(data))
		t.writeAt(data, 0)
	}
	t.pos = 0
	t.dir = Forward
}

// Close releases the storage backend's resources (spill files,
// mappings). Mem-backed tapes release their cell array. Close is
// idempotent; the only methods that may be called afterwards are
// Stats accessors.
func (t *Tape) Close() error {
	if t.be == nil {
		return nil
	}
	return t.be.Close()
}

// StorageKind reports which backend currently holds the cells. A tape
// with a spill threshold reports Mem until it actually spills.
func (t *Tape) StorageKind() Storage { return t.be.Kind() }

// Name returns the diagnostic name of the tape.
func (t *Tape) Name() string { return t.name }

// SetBudget limits the number of head reversals this tape may perform.
// Operations that would exceed the budget return an error wrapping
// ErrBudget. A negative budget means unlimited.
func (t *Tape) SetBudget(reversals int) {
	t.budget = reversals
	t.hasBudget = reversals >= 0
}

// Stats returns a snapshot of the tape's resource counters.
func (t *Tape) Stats() Stats {
	return Stats{
		Reversals: t.reversals,
		Steps:     t.steps,
		Reads:     t.reads,
		Writes:    t.writes,
		MaxCell:   t.maxCell,
		Size:      t.length(),
	}
}

// Reversals returns the number of head-direction changes so far.
func (t *Tape) Reversals() int { return t.reversals }

// Pos returns the current head position (0-based cell index).
func (t *Tape) Pos() int { return t.pos }

// Dir returns the current direction of head movement.
func (t *Tape) Dir() Direction { return t.dir }

// Len returns the number of materialized cells (cells at or before the
// highest cell ever written or visited).
func (t *Tape) Len() int { return t.length() }

// length is the materialized cell count, bypassing the interface on
// the common unwrapped in-memory backend.
func (t *Tape) length() int {
	if f := t.fast; f != nil {
		return len(f.cells)
	}
	return t.be.Len()
}

// readAt copies materialized cells [off, off+len(dst)) into dst. The
// caller has clamped the range to [0, length()).
func (t *Tape) readAt(dst []byte, off int) {
	if len(dst) == 0 {
		return
	}
	if f := t.fast; f != nil {
		copy(dst, f.cells[off:])
		return
	}
	t.be.ReadAt(dst, off)
}

// writeAt overwrites materialized cells [off, off+len(src)). The
// caller has grown the tape to cover the range.
func (t *Tape) writeAt(src []byte, off int) {
	if len(src) == 0 {
		return
	}
	if f := t.fast; f != nil {
		copy(f.cells[off:], src)
		return
	}
	t.be.WriteAt(src, off)
}

// indexByte finds the first delim at index >= off, or -1.
func (t *Tape) indexByte(delim byte, off int) int {
	if f := t.fast; f != nil {
		if i := bytes.IndexByte(f.cells[off:], delim); i >= 0 {
			return off + i
		}
		return -1
	}
	return t.be.IndexByte(delim, off)
}

// growTo materializes blank cells so the tape holds n, spilling to the
// storage backend first if n crosses the spill threshold.
func (t *Tape) growTo(n int) {
	if t.spillAt >= 0 && n > t.spillAt {
		t.spill()
	}
	if f := t.fast; f != nil {
		f.Grow(n)
		return
	}
	t.be.Grow(n)
}

// spill migrates the cells from the in-RAM pre-spill backend to the
// configured storage backend. The content moved is at most the spill
// threshold plus one write, so the copy is small; it streams in pages
// regardless.
func (t *Tape) spill() {
	o := t.opts
	o.SpillThreshold = 0
	nb := NewBackend(o)
	old := t.be
	if k := old.Len(); k > 0 {
		nb.Grow(k)
		buf := make([]byte, min(k, filePage))
		for off := 0; off < k; off += len(buf) {
			m := min(len(buf), k-off)
			old.ReadAt(buf[:m], off)
			nb.WriteAt(buf[:m], off)
		}
	}
	old.Close()
	t.be, t.fast, t.spillAt = nb, nil, -1
}

// Read returns the symbol under the head. Reading past the end of the
// materialized region returns Blank without extending the tape.
func (t *Tape) Read() byte {
	t.reads++
	if f := t.fast; f != nil {
		if t.pos < len(f.cells) {
			return f.cells[t.pos]
		}
		return Blank
	}
	if t.pos < t.be.Len() {
		return t.be.Cell(t.pos)
	}
	return Blank
}

// Write stores b in the cell under the head, materializing blank cells
// as needed in one sized extension.
func (t *Tape) Write(b byte) {
	t.writes++
	if t.pos >= t.length() {
		t.growTo(t.pos + 1)
	}
	if f := t.fast; f != nil {
		f.cells[t.pos] = b
		return
	}
	t.be.SetCell(t.pos, b)
}

// turn registers a direction change if d differs from the current
// direction, charging one reversal.
func (t *Tape) turn(d Direction) error {
	if d == t.dir {
		return nil
	}
	if t.hasBudget && t.reversals+1 > t.budget {
		return fmt.Errorf("%w: tape %q at %d reversals", ErrBudget, t.name, t.reversals)
	}
	t.reversals++
	t.dir = d
	return nil
}

// Move steps the head one cell in direction d. Moving backward from
// cell 0 returns ErrLeftEnd and leaves the head in place (the reversal,
// if any, is still charged, mirroring a Turing machine that switched
// direction before noticing the tape end).
func (t *Tape) Move(d Direction) error {
	if err := t.turn(d); err != nil {
		return err
	}
	if d == Backward && t.pos == 0 {
		return ErrLeftEnd
	}
	t.pos += int(d)
	t.steps++
	if t.pos > t.maxCell {
		t.maxCell = t.pos
	}
	return nil
}

// MoveForward steps the head one cell to the right.
func (t *Tape) MoveForward() error { return t.Move(Forward) }

// MoveBackward steps the head one cell to the left.
func (t *Tape) MoveBackward() error { return t.Move(Backward) }

// ReadMove reads the symbol under the head and then steps in
// direction d.
func (t *Tape) ReadMove(d Direction) (byte, error) {
	b := t.Read()
	return b, t.Move(d)
}

// WriteMove writes b to the cell under the head and then steps in
// direction d.
func (t *Tape) WriteMove(b byte, d Direction) error {
	t.Write(b)
	return t.Move(d)
}

// AtEnd reports whether the head is past the last materialized cell,
// i.e. the current cell and everything to the right is blank.
func (t *Tape) AtEnd() bool { return t.pos >= t.length() }

// AtStart reports whether the head is on cell 0.
func (t *Tape) AtStart() bool { return t.pos == 0 }

// advanceForward batch-charges a forward sweep of n cells: n steps and
// the MaxCell high-water mark in one update. The caller has already
// performed (and paid for) the turn.
func (t *Tape) advanceForward(n int) {
	t.steps += int64(n)
	t.pos += n
	if t.pos > t.maxCell {
		t.maxCell = t.pos
	}
}

// ReadBlock reads n cells with the head moving forward and returns the
// bytes read, exactly as n repetitions of ReadMove(Forward): cells past
// the materialized region read Blank, and the head may end beyond the
// materialized region. The returned slice is a fresh copy owned by the
// caller on every backend; mutating it never touches the tape.
func (t *Tape) ReadBlock(n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	if err := t.turn(Forward); err != nil {
		// The first ReadMove reads the cell before the refused turn.
		t.reads++
		return nil, err
	}
	out := make([]byte, n)
	if L := t.length(); t.pos < L {
		t.readAt(out[:min(n, L-t.pos)], t.pos)
	}
	t.reads += int64(n)
	t.advanceForward(n)
	return out, nil
}

// WriteBlock writes data with the head moving forward, exactly as
// len(data) repetitions of WriteMove(b, Forward), materializing any
// blank gap up to the head in one sized extension.
func (t *Tape) WriteBlock(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if err := t.turn(Forward); err != nil {
		// The first WriteMove writes its cell before the refused turn.
		t.Write(data[0])
		return err
	}
	if end := t.pos + len(data); end > t.length() {
		t.growTo(end)
	}
	t.writeAt(data, t.pos)
	t.writes += int64(len(data))
	t.advanceForward(len(data))
	return nil
}

// ReadBlockBackward moves the head n cells backward, reading each cell
// after its move, exactly as n repetitions of MoveBackward+Read. The
// returned bytes are in visit order (reverse tape order). If the head
// reaches cell 0 before n cells are read, the bytes read so far are
// returned with ErrLeftEnd. The returned slice is a fresh copy owned
// by the caller on every backend.
func (t *Tape) ReadBlockBackward(n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	if err := t.turn(Backward); err != nil {
		return nil, err
	}
	k := n
	if t.pos < k {
		k = t.pos
	}
	out := make([]byte, k)
	// Read the tape range [pos-k, pos) forward, then reverse into
	// visit order. Cells at or past the materialized end stay Blank.
	if lo := t.pos - k; lo < t.length() {
		t.readAt(out[:min(k, t.length()-lo)], lo)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	t.steps += int64(k)
	t.reads += int64(k)
	t.pos -= k
	if k < n {
		return out, ErrLeftEnd
	}
	return out, nil
}

// MoveBackwardN steps the head n cells backward without reading,
// exactly as n repetitions of MoveBackward. Reaching cell 0 before n
// steps returns ErrLeftEnd.
func (t *Tape) MoveBackwardN(n int) error {
	if n <= 0 {
		return nil
	}
	if err := t.turn(Backward); err != nil {
		return err
	}
	k := n
	if t.pos < k {
		k = t.pos
	}
	t.steps += int64(k)
	t.pos -= k
	if k < n {
		return ErrLeftEnd
	}
	return nil
}

// Rewind moves the head back to cell 0 in one backward sweep. It pays
// at most one reversal (plus one more when the caller next moves
// forward).
func (t *Tape) Rewind() error {
	if t.pos == 0 {
		return nil
	}
	if err := t.turn(Backward); err != nil {
		return err
	}
	t.steps += int64(t.pos)
	t.pos = 0
	return nil
}

// SeekEnd moves the head forward to the first blank cell after the
// materialized content in one forward sweep.
func (t *Tape) SeekEnd() error {
	if t.pos >= t.length() {
		return nil
	}
	if err := t.turn(Forward); err != nil {
		return err
	}
	t.advanceForward(t.length() - t.pos)
	return nil
}

// ScanBytes reads from the current head position forward to the end of
// the materialized region and returns the bytes read. The head ends at
// the first blank cell. The returned slice is a fresh copy owned by
// the caller on every backend; it never aliases the cell storage.
func (t *Tape) ScanBytes() ([]byte, error) {
	if t.AtEnd() {
		return nil, nil
	}
	if err := t.turn(Forward); err != nil {
		// The first ReadMove reads the cell before the refused turn.
		t.reads++
		return nil, err
	}
	n := t.length() - t.pos
	out := make([]byte, n)
	t.readAt(out, t.pos)
	t.reads += int64(n)
	t.advanceForward(n)
	return out, nil
}

// ScanUntil reads forward until just past the first occurrence of
// delim and returns the bytes read, including the delimiter. If the
// materialized region ends before a delimiter is found, the bytes up
// to the end are returned with found = false and the head rests on the
// first blank cell. The returned slice is a fresh copy owned by the
// caller on every backend.
func (t *Tape) ScanUntil(delim byte) (data []byte, found bool, err error) {
	if t.AtEnd() {
		return nil, false, nil
	}
	if err := t.turn(Forward); err != nil {
		// The first ReadMove reads the cell before the refused turn.
		t.reads++
		return nil, false, err
	}
	n := t.length() - t.pos
	if i := t.indexByte(delim, t.pos); i >= 0 {
		n = i - t.pos + 1
		found = true
	}
	out := make([]byte, n)
	t.readAt(out, t.pos)
	t.reads += int64(n)
	t.advanceForward(n)
	return out, found, nil
}

// ScanUntilAppend is ScanUntil with a caller-supplied buffer: the bytes
// read are appended to buf[:0] and the resulting slice returned, so a
// loop that reads many items can reuse one allocation. Head movement
// and counter accounting are identical to ScanUntil.
func (t *Tape) ScanUntilAppend(delim byte, buf []byte) (data []byte, found bool, err error) {
	if t.AtEnd() {
		return buf[:0], false, nil
	}
	if err := t.turn(Forward); err != nil {
		// The first ReadMove reads the cell before the refused turn.
		t.reads++
		return buf[:0], false, err
	}
	n := t.length() - t.pos
	if i := t.indexByte(delim, t.pos); i >= 0 {
		n = i - t.pos + 1
		found = true
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	data = buf[:n]
	t.readAt(data, t.pos)
	t.reads += int64(n)
	t.advanceForward(n)
	return data, found, nil
}

// AppendBytes writes data starting at the current head position,
// moving forward. It is WriteBlock under its historical name.
func (t *Tape) AppendBytes(data []byte) error { return t.WriteBlock(data) }

// Truncate discards all content from the current head position to the
// right. It models overwriting the rest of a tape with blanks in one
// sweep and is charged zero reversals (a real machine pays them when it
// actually revisits those cells).
func (t *Tape) Truncate() {
	if t.pos < t.length() {
		t.be.Truncate(t.pos)
	}
}

// Reset erases the tape's content (releasing any spill space) and
// returns the head to cell 0 without touching the resource counters.
// It models switching to a fresh region of a device and is used only
// by test helpers.
func (t *Tape) Reset() {
	t.be.Reset()
	t.pos = 0
}

// Contents returns a copy of the materialized cells. The returned
// slice is owned by the caller on every backend: mutating it never
// changes the tape, and later tape writes never change it.
func (t *Tape) Contents() []byte {
	out := make([]byte, t.length())
	t.readAt(out, 0)
	return out
}

// String returns a short diagnostic description of the tape.
func (t *Tape) String() string {
	return fmt.Sprintf("tape %q: pos=%d dir=%s rev=%d len=%d", t.name, t.pos, t.dir, t.reversals, t.length())
}
