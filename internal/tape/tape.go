// Package tape implements the external-memory tape device of the ST
// model of Grohe, Hernich and Schweikardt (PODS 2006).
//
// A Tape is a one-sided infinite sequence of byte cells with a single
// read/write head. The two cost measures of the model are tracked
// exactly:
//
//   - head reversals: every change of the head's direction of movement
//     increments the reversal counter. Following the paper's
//     Definition 1, the number of sequential scans of a tape is
//     1 + reversals.
//   - space: the number of cells ever touched.
//
// Random access is not offered by the API: a machine may only step the
// head one cell at a time, exactly as on a Turing machine tape. Helper
// methods (Rewind, SeekEnd) are implemented in terms of single steps
// and therefore pay the correct reversal cost.
package tape

import (
	"errors"
	"fmt"
)

// Blank is the blank symbol found in cells that were never written.
// It plays the role of the Turing machine blank ✷.
const Blank byte = 0

// Direction is the direction of head movement.
type Direction int8

// Directions of head movement. A fresh tape starts moving Forward.
const (
	Forward  Direction = +1
	Backward Direction = -1
)

func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// ErrBudget is returned (wrapped) when an operation would exceed the
// reversal budget configured with SetBudget.
var ErrBudget = errors.New("tape: reversal budget exhausted")

// ErrLeftEnd is returned when the head would fall off the left end of
// the tape.
var ErrLeftEnd = errors.New("tape: head moved past left end")

// Stats is a snapshot of a tape's resource counters.
type Stats struct {
	Reversals int   // number of changes of the head direction
	Steps     int64 // number of single-cell head movements
	Reads     int64 // number of Read operations
	Writes    int64 // number of Write operations
	MaxCell   int   // highest cell index ever visited
	Size      int   // number of cells currently materialized
}

// Scans is the number of sequential scans this tape has performed:
// 1 + Reversals, following the convention of Definition 1 in the
// paper.
func (s Stats) Scans() int { return 1 + s.Reversals }

// A Tape is a one-sided infinite tape of byte cells with a read/write
// head. The zero value is not ready for use; call New.
type Tape struct {
	name      string
	cells     []byte
	pos       int // current head position (0-based)
	dir       Direction
	moved     bool // whether the head has moved at least once
	reversals int
	steps     int64
	reads     int64
	writes    int64
	maxCell   int

	budget    int  // maximum reversals allowed; <0 means unlimited
	hasBudget bool // whether budget applies
}

// New returns an empty tape with the given diagnostic name.
func New(name string) *Tape {
	return &Tape{name: name, dir: Forward, budget: -1}
}

// FromBytes returns a tape whose initial content is a copy of data,
// with the head on cell 0 moving forward. It is the standard way to
// present an input word to a machine.
func FromBytes(name string, data []byte) *Tape {
	t := New(name)
	t.cells = append(t.cells, data...)
	if len(t.cells) > 0 {
		t.maxCell = 0
	}
	return t
}

// FromString is FromBytes for a string input.
func FromString(name, data string) *Tape { return FromBytes(name, []byte(data)) }

// Name returns the diagnostic name of the tape.
func (t *Tape) Name() string { return t.name }

// SetBudget limits the number of head reversals this tape may perform.
// Operations that would exceed the budget return an error wrapping
// ErrBudget. A negative budget means unlimited.
func (t *Tape) SetBudget(reversals int) {
	t.budget = reversals
	t.hasBudget = reversals >= 0
}

// Stats returns a snapshot of the tape's resource counters.
func (t *Tape) Stats() Stats {
	return Stats{
		Reversals: t.reversals,
		Steps:     t.steps,
		Reads:     t.reads,
		Writes:    t.writes,
		MaxCell:   t.maxCell,
		Size:      len(t.cells),
	}
}

// Reversals returns the number of head-direction changes so far.
func (t *Tape) Reversals() int { return t.reversals }

// Pos returns the current head position (0-based cell index).
func (t *Tape) Pos() int { return t.pos }

// Dir returns the current direction of head movement.
func (t *Tape) Dir() Direction { return t.dir }

// Len returns the number of materialized cells (cells at or before the
// highest cell ever written or visited).
func (t *Tape) Len() int { return len(t.cells) }

// Read returns the symbol under the head. Reading past the end of the
// materialized region returns Blank without extending the tape.
func (t *Tape) Read() byte {
	t.reads++
	if t.pos < len(t.cells) {
		return t.cells[t.pos]
	}
	return Blank
}

// Write stores b in the cell under the head, materializing blank cells
// as needed.
func (t *Tape) Write(b byte) {
	t.writes++
	for t.pos >= len(t.cells) {
		t.cells = append(t.cells, Blank)
	}
	t.cells[t.pos] = b
}

// turn registers a direction change if d differs from the current
// direction, charging one reversal.
func (t *Tape) turn(d Direction) error {
	if d == t.dir {
		return nil
	}
	if t.hasBudget && t.reversals+1 > t.budget {
		return fmt.Errorf("%w: tape %q at %d reversals", ErrBudget, t.name, t.reversals)
	}
	t.reversals++
	t.dir = d
	return nil
}

// Move steps the head one cell in direction d. Moving backward from
// cell 0 returns ErrLeftEnd and leaves the head in place (the reversal,
// if any, is still charged, mirroring a Turing machine that switched
// direction before noticing the tape end).
func (t *Tape) Move(d Direction) error {
	if err := t.turn(d); err != nil {
		return err
	}
	if d == Backward && t.pos == 0 {
		return ErrLeftEnd
	}
	t.pos += int(d)
	t.steps++
	if t.pos > t.maxCell {
		t.maxCell = t.pos
	}
	return nil
}

// MoveForward steps the head one cell to the right.
func (t *Tape) MoveForward() error { return t.Move(Forward) }

// MoveBackward steps the head one cell to the left.
func (t *Tape) MoveBackward() error { return t.Move(Backward) }

// ReadMove reads the symbol under the head and then steps in
// direction d.
func (t *Tape) ReadMove(d Direction) (byte, error) {
	b := t.Read()
	return b, t.Move(d)
}

// WriteMove writes b to the cell under the head and then steps in
// direction d.
func (t *Tape) WriteMove(b byte, d Direction) error {
	t.Write(b)
	return t.Move(d)
}

// AtEnd reports whether the head is past the last materialized cell,
// i.e. the current cell and everything to the right is blank.
func (t *Tape) AtEnd() bool { return t.pos >= len(t.cells) }

// AtStart reports whether the head is on cell 0.
func (t *Tape) AtStart() bool { return t.pos == 0 }

// Rewind moves the head back to cell 0 by stepping backward. It pays
// at most one reversal (plus one more when the caller next moves
// forward).
func (t *Tape) Rewind() error {
	for t.pos > 0 {
		if err := t.Move(Backward); err != nil {
			return err
		}
	}
	return nil
}

// SeekEnd moves the head forward to the first blank cell after the
// materialized content.
func (t *Tape) SeekEnd() error {
	for t.pos < len(t.cells) {
		if err := t.Move(Forward); err != nil {
			return err
		}
	}
	return nil
}

// ScanBytes reads from the current head position forward to the end of
// the materialized region and returns the bytes read. The head ends at
// the first blank cell.
func (t *Tape) ScanBytes() ([]byte, error) {
	var out []byte
	for !t.AtEnd() {
		b, err := t.ReadMove(Forward)
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}

// AppendBytes writes data starting at the current head position,
// moving forward.
func (t *Tape) AppendBytes(data []byte) error {
	for _, b := range data {
		if err := t.WriteMove(b, Forward); err != nil {
			return err
		}
	}
	return nil
}

// Truncate discards all content from the current head position to the
// right. It models overwriting the rest of a tape with blanks in one
// sweep and is charged zero reversals (a real machine pays them when it
// actually revisits those cells).
func (t *Tape) Truncate() {
	if t.pos < len(t.cells) {
		t.cells = t.cells[:t.pos]
	}
}

// Reset erases the tape's content and returns the head to cell 0
// without touching the resource counters. It models switching to a
// fresh region of a device and is used only by test helpers.
func (t *Tape) Reset() {
	t.cells = t.cells[:0]
	t.pos = 0
}

// Contents returns a copy of the materialized cells.
func (t *Tape) Contents() []byte {
	out := make([]byte, len(t.cells))
	copy(out, t.cells)
	return out
}

// String returns a short diagnostic description of the tape.
func (t *Tape) String() string {
	return fmt.Sprintf("tape %q: pos=%d dir=%s rev=%d len=%d", t.name, t.pos, t.dir, t.reversals, len(t.cells))
}
