package tape

// backend.go defines the storage backend seam of the tape device: the
// Tape above it owns the whole cost model (reversals, steps, reads,
// writes, MaxCell, budgets), while a Backend merely holds the cells —
// in RAM, in a buffered temp file, or in a memory mapping. The
// contract, enforced by the backend-conformance differential suite in
// backend_test.go and FuzzTapeBackend, is that the backend may move
// the bytes' home, never a count: every tape operation must be
// observationally identical — contents, head, errors and every Stats
// counter — on every backend.

import (
	"bytes"
	"errors"
	"fmt"
)

// Storage selects where a tape's cells live. The zero value is Mem.
type Storage string

// The storage backends. Mem is the historical in-RAM byte slice; File
// is buffered sequential I/O over an unlinked temp file; Mmap is a
// memory mapping of an unlinked temp file (falling back to File on
// platforms without mmap support).
const (
	Mem  Storage = "mem"
	File Storage = "file"
	Mmap Storage = "mmap"
)

// ParseStorage validates a -storage flag value. The empty string is
// Mem (the zero Options default).
func ParseStorage(s string) (Storage, error) {
	switch Storage(s) {
	case "", Mem:
		return Mem, nil
	case File:
		return File, nil
	case Mmap:
		return Mmap, nil
	}
	return Mem, fmt.Errorf("tape: unknown storage %q (want mem, file or mmap)", s)
}

// WrapBackend wraps a freshly constructed backend — the fault-injection
// seam: internal/faults builds wrappers whose storage operations panic
// with an *IOError after a seed-derived op count, so storage failure
// becomes one more injectable execution shape. A WrapBackend travels
// only in-process: it is a func field, which encoding/gob ignores, so
// it never crosses the worker transport.
type WrapBackend func(Backend) Backend

// Options selects a tape's storage backend. The zero value is the
// historical in-memory tape. All value fields gob-encode, so the
// options ride inside shard.SortJob to worker processes; Wrap does not
// (gob ignores func fields) and applies only where it was set.
type Options struct {
	// Storage is the backend kind; "" means Mem.
	Storage Storage

	// SpillDir is the directory File/Mmap tapes create their temp
	// files in; "" means the system temp directory. Files are unlinked
	// immediately after creation, so no path ever needs cleanup — not
	// on Close, not on SIGINT, not on SIGKILL; the kernel reclaims the
	// space when the last descriptor dies with the process.
	SpillDir string

	// SpillThreshold, when > 0, keeps a File/Mmap tape on the in-memory
	// backend until its materialized size first exceeds this many
	// cells, then migrates the content to the storage backend — small
	// scratch tapes never touch the disk. 0 places the tape on the
	// storage backend from the start. Setting it with Mem storage is a
	// Validate error (there is nothing to spill to), and NewWith panics
	// on it rather than silently ignoring the threshold.
	SpillThreshold int

	// Wrap, when non-nil, wraps every backend this tape constructs
	// (including the post-spill one) — the test seam for injected
	// storage faults. Never encoded (func field).
	Wrap WrapBackend
}

// storage is the resolved backend kind.
func (o Options) storage() Storage {
	if o.Storage == "" {
		return Mem
	}
	return o.Storage
}

// Validate rejects option combinations that would otherwise lie
// silently. A SpillThreshold on Mem storage is the one such combination
// today: a Mem tape has no storage backend to spill to, so the
// threshold would be dead configuration the caller believes is active.
// The CLIs call Validate on flag-built options (exit 2); NewWith
// panics on a violation, since by then it is a programming error.
func (o Options) Validate() error {
	if o.SpillThreshold < 0 {
		return fmt.Errorf("tape: negative SpillThreshold %d", o.SpillThreshold)
	}
	if o.storage() == Mem && o.SpillThreshold > 0 {
		return fmt.Errorf("tape: SpillThreshold %d requires File or Mmap storage (a Mem tape has nothing to spill to)", o.SpillThreshold)
	}
	return nil
}

// ErrStorage is the sentinel every backend I/O failure wraps:
// errors.Is(err, tape.ErrStorage) identifies a storage fault wherever
// it surfaces — typically inside a *shard.SortPanicError after the
// recovery layer caught the backend's panic.
var ErrStorage = errors.New("tape: storage I/O failure")

// IOError is a storage backend failure. Backends deliver it by
// panicking (the single-cell tape API has no error returns), and the
// recovery layers above — shard.Sort's attempt recover, the trial
// engine's worker recover — convert the panic into their typed errors,
// so a mid-sort disk fault lands on the same retry → coordinator-
// fallback path as a dead worker process. Is(ErrStorage) is true and
// Unwrap exposes the underlying OS error.
type IOError struct {
	Op      string  // the failing operation, e.g. "pread"
	Backend Storage // which backend failed
	Err     error   // the underlying error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("tape: %s storage %s failed: %v", e.Backend, e.Op, e.Err)
}

// Unwrap exposes the underlying OS error.
func (e *IOError) Unwrap() error { return e.Err }

// Is marks every IOError as an ErrStorage.
func (e *IOError) Is(target error) bool { return target == ErrStorage }

// ioPanic delivers a backend failure to the recovery layer above.
func ioPanic(op string, kind Storage, err error) {
	panic(&IOError{Op: op, Backend: kind, Err: err})
}

// A Backend stores a tape's cells. Offsets and lengths are cells
// (bytes); the Tape above guarantees every ReadAt/WriteAt/Cell/SetCell
// range lies within [0, Len()). Backends are not safe for concurrent
// use (neither is a Tape) and report I/O failures by panicking with an
// *IOError.
type Backend interface {
	// Kind identifies the backend for diagnostics.
	Kind() Storage

	// Len is the number of materialized cells.
	Len() int

	// Cell returns cell i.
	Cell(i int) byte

	// SetCell overwrites cell i.
	SetCell(i int, b byte)

	// ReadAt copies cells [off, off+len(dst)) into dst.
	ReadAt(dst []byte, off int)

	// WriteAt overwrites cells [off, off+len(src)) with src.
	WriteAt(src []byte, off int)

	// IndexByte returns the smallest i >= off with Cell(i) == delim,
	// or -1 if no such cell exists.
	IndexByte(delim byte, off int) int

	// Grow materializes blank cells so that Len() becomes n (never
	// called with n <= Len()).
	Grow(n int)

	// Truncate discards the cells at index >= n (never called with
	// n >= Len()). A later Grow over the same range reads Blank again.
	Truncate(n int)

	// Reset discards every cell and releases spill space; the backend
	// stays usable.
	Reset()

	// Close releases the backend's resources (file descriptors,
	// mappings). The backend is unusable afterwards; Close is
	// idempotent.
	Close() error
}

// NewBackend constructs the backend the options select (ignoring
// SpillThreshold — the spill dance is the Tape's job) with Wrap
// applied. It is exported for the conformance and fault-injection
// tests; normal code reaches backends only through New/FromBytes and
// Options.
func NewBackend(o Options) Backend {
	var be Backend
	switch o.storage() {
	case File:
		be = newFileBackend(o.SpillDir)
	case Mmap:
		be = newMmapBackend(o.SpillDir)
	default:
		be = &memBackend{}
	}
	if o.Wrap != nil {
		be = o.Wrap(be)
	}
	return be
}

// memBackend is the historical in-RAM cell array.
type memBackend struct {
	cells []byte
}

func (b *memBackend) Kind() Storage               { return Mem }
func (b *memBackend) Len() int                    { return len(b.cells) }
func (b *memBackend) Cell(i int) byte             { return b.cells[i] }
func (b *memBackend) SetCell(i int, c byte)       { b.cells[i] = c }
func (b *memBackend) ReadAt(dst []byte, off int)  { copy(dst, b.cells[off:]) }
func (b *memBackend) WriteAt(src []byte, off int) { copy(b.cells[off:], src) }

func (b *memBackend) IndexByte(delim byte, off int) int {
	if i := bytes.IndexByte(b.cells[off:], delim); i >= 0 {
		return off + i
	}
	return -1
}

func (b *memBackend) Grow(n int) {
	// The append writes zeros over any stale capacity, so re-grown
	// cells read Blank — the contract Truncate relies on.
	b.cells = append(b.cells, make([]byte, n-len(b.cells))...)
}

func (b *memBackend) Truncate(n int) { b.cells = b.cells[:n] }
func (b *memBackend) Reset()         { b.cells = b.cells[:0] }
func (b *memBackend) Close() error   { b.cells = nil; return nil }
