package tape

// file.go is the buffered sequential file backend: cells live in an
// unlinked temp file, and a single write-back page buffer turns the
// tape's (overwhelmingly sequential) cell traffic into pageSize-sized
// preads and pwrites. The accounting model sees none of this — the
// Tape charges the same reversals/steps/reads/writes it would on the
// in-memory backend; only where the bytes sleep changes.

import (
	"bytes"
	"io"
	"os"
)

// filePage is the size of the write-back buffer: one page of
// sequential traffic per pread/pwrite. 64 KiB matches the bulk-scan
// sweet spot of the PR 1 benchmarks.
const filePage = 64 << 10

// fileBackend stores cells in an unlinked temp file behind a single
// write-back page. The file is removed from the directory the moment
// it is created: the descriptor keeps it alive, and the kernel
// reclaims the space when the process dies — however it dies — so
// spill hygiene needs no cleanup path for SIGINT or SIGKILL.
type fileBackend struct {
	f *os.File
	n int // logical cell count; the file may be shorter (sparse reads are Blank)

	page    []byte // the write-back page (always filePage long once allocated)
	pageOff int    // cell offset of the page window; -1 when empty
	dirty   bool   // page has unflushed writes

	closed bool
}

// newFileBackend creates the backing file in dir ("" = system temp
// dir) and unlinks it immediately.
func newFileBackend(dir string) *fileBackend {
	f, err := os.CreateTemp(dir, "st-tape-*.spill")
	if err != nil {
		ioPanic("create", File, err)
	}
	// Unlink now: no file ever outlives the descriptor, so teardown —
	// graceful or not — leaves the spill directory empty.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		ioPanic("unlink", File, err)
	}
	return &fileBackend{f: f, pageOff: -1}
}

func (b *fileBackend) Kind() Storage { return File }
func (b *fileBackend) Len() int      { return b.n }

// pread fills dst from the file at cell offset off, reading Blank
// past the end of the file (Grow is sparse: it extends the logical
// length without writing zeros).
func (b *fileBackend) pread(dst []byte, off int) {
	n, err := b.f.ReadAt(dst, int64(off))
	if err != nil && err != io.EOF {
		ioPanic("pread", File, err)
	}
	clear(dst[n:])
}

func (b *fileBackend) pwrite(src []byte, off int) {
	if _, err := b.f.WriteAt(src, int64(off)); err != nil {
		ioPanic("pwrite", File, err)
	}
}

// flush writes the page back if it is dirty; the page stays valid.
func (b *fileBackend) flush() {
	if b.dirty {
		b.pwrite(b.page, b.pageOff)
		b.dirty = false
	}
}

// invalidate drops the page window (flushing first if dirty).
func (b *fileBackend) invalidate() {
	b.flush()
	b.pageOff = -1
}

// ensurePage makes the page window cover cell off.
func (b *fileBackend) ensurePage(off int) {
	po := off &^ (filePage - 1)
	if b.pageOff == po {
		return
	}
	b.flush()
	if b.page == nil {
		b.page = make([]byte, filePage)
	}
	b.pageOff = po
	b.pread(b.page, po)
}

func (b *fileBackend) Cell(i int) byte {
	b.ensurePage(i)
	return b.page[i-b.pageOff]
}

func (b *fileBackend) SetCell(i int, c byte) {
	b.ensurePage(i)
	b.page[i-b.pageOff] = c
	b.dirty = true
}

func (b *fileBackend) ReadAt(dst []byte, off int) {
	// Small reads ride the page (an item-by-item scan costs one pread
	// per page, not per item); large ones bypass it with one pread.
	if len(dst) <= filePage {
		for len(dst) > 0 {
			b.ensurePage(off)
			k := copy(dst, b.page[off-b.pageOff:])
			dst, off = dst[k:], off+k
		}
		return
	}
	b.flush()
	b.pread(dst, off)
}

func (b *fileBackend) WriteAt(src []byte, off int) {
	if len(src) <= filePage {
		for len(src) > 0 {
			b.ensurePage(off)
			k := copy(b.page[off-b.pageOff:], src)
			b.dirty = true
			src, off = src[k:], off+k
		}
		return
	}
	b.flush()
	b.pwrite(src, off)
	// The direct write may have run under the page window.
	if b.pageOff >= 0 && off < b.pageOff+filePage && off+len(src) > b.pageOff {
		b.pageOff = -1
	}
}

func (b *fileBackend) IndexByte(delim byte, off int) int {
	for off < b.n {
		b.ensurePage(off)
		end := min(b.pageOff+filePage, b.n)
		if i := bytes.IndexByte(b.page[off-b.pageOff:end-b.pageOff], delim); i >= 0 {
			return off + i
		}
		off = b.pageOff + filePage
	}
	return -1
}

// Grow is sparse: it only raises the logical length. Reads of never-
// written cells fall past the file end and come back Blank, exactly
// like the in-memory backend's zeroed append.
func (b *fileBackend) Grow(n int) { b.n = n }

func (b *fileBackend) Truncate(n int) {
	// Drop the page first (a later flush must not resurrect truncated
	// bytes), then cut the file so a future Grow over the same range
	// reads Blank again.
	b.flush()
	b.pageOff = -1
	if err := b.f.Truncate(int64(n)); err != nil {
		ioPanic("truncate", File, err)
	}
	b.n = n
}

func (b *fileBackend) Reset() {
	b.pageOff, b.dirty = -1, false
	if err := b.f.Truncate(0); err != nil {
		ioPanic("truncate", File, err)
	}
	b.n = 0
}

func (b *fileBackend) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	b.page = nil
	return b.f.Close()
}
