package tape

// backend_test.go is the backend-conformance differential harness: the
// forEachBackend table that re-runs every tape property on every
// storage backend, and the lockstep driver (shared with
// FuzzTapeBackend) that applies one operation sequence to a tape per
// backend and requires identical observable behavior — contents, head,
// errors and every Stats counter — after every single operation. This
// is the enforcement of the backend contract: the backend may move the
// bytes' home, never a count.

import (
	"bytes"
	"testing"
)

// backendConfigs are the storage configurations every conformance test
// runs over: the three backends plus a spill configuration that starts
// in RAM and migrates to the file backend mid-sequence.
func backendConfigs(t testing.TB) []struct {
	Name string
	Opts Options
} {
	return []struct {
		Name string
		Opts Options
	}{
		{"mem", Options{}},
		{"file", Options{Storage: File, SpillDir: t.TempDir()}},
		{"mmap", Options{Storage: Mmap, SpillDir: t.TempDir()}},
		{"file-spill64", Options{Storage: File, SpillDir: t.TempDir(), SpillThreshold: 64}},
	}
}

// forEachBackend runs fn as a subtest once per storage configuration.
// Tests built on it construct their tapes with NewWith/FromBytesWith
// and the given options, so the whole property set of this package
// holds verbatim on every backend.
func forEachBackend(t *testing.T, fn func(t *testing.T, o Options)) {
	t.Helper()
	for _, c := range backendConfigs(t) {
		t.Run(c.Name, func(t *testing.T) {
			fn(t, c.Opts)
		})
	}
}

// maxLockstepCells bounds tape growth in the lockstep driver so fuzzing
// cannot balloon the spill files.
const maxLockstepCells = 1 << 20

// genBlock derives a deterministic payload from a one-byte seed.
func genBlock(seed byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int(seed) + i*7)
	}
	return out
}

// runBackendLockstep decodes ops as an operation sequence and applies
// it, one operation at a time, to a tape on every backend, failing on
// the first divergence in returned bytes, error class, head position,
// direction, contents or Stats.
func runBackendLockstep(t *testing.T, ops []byte) {
	t.Helper()
	configs := backendConfigs(t)
	tapes := make([]*Tape, len(configs))
	for i, c := range configs {
		tapes[i] = NewWith("lockstep", c.Opts)
		defer tapes[i].Close()
	}
	ref := tapes[0] // the mem backend is the reference

	pos := 0
	arg := func() byte {
		if pos >= len(ops) {
			return 0
		}
		b := ops[pos]
		pos++
		return b
	}
	check := func(op int, name string) {
		t.Helper()
		want := ref.Contents()
		for i, tp := range tapes[1:] {
			cfg := configs[i+1].Name
			if tp.Pos() != ref.Pos() || tp.Dir() != ref.Dir() {
				t.Fatalf("op %d (%s) on %s: head (%d,%v) diverges from mem (%d,%v)",
					op, name, cfg, tp.Pos(), tp.Dir(), ref.Pos(), ref.Dir())
			}
			if tp.Stats() != ref.Stats() {
				t.Fatalf("op %d (%s) on %s: stats %+v diverge from mem %+v",
					op, name, cfg, tp.Stats(), ref.Stats())
			}
			if got := tp.Contents(); !bytes.Equal(got, want) {
				t.Fatalf("op %d (%s) on %s: contents (%d cells) diverge from mem (%d cells)",
					op, name, cfg, len(got), len(want))
			}
		}
	}

	for op := 0; pos < len(ops) && op < 512; op++ {
		opc := arg()
		name := ""
		var (
			firstData  []byte
			firstFound bool
			firstErr   error
		)
		each := func(n string, f func(tp *Tape) ([]byte, bool, error)) {
			t.Helper()
			name = n
			for i, tp := range tapes {
				data, found, err := f(tp)
				if i == 0 {
					firstData, firstFound, firstErr = data, found, err
					continue
				}
				if !bytes.Equal(data, firstData) || found != firstFound || !sameErr(err, firstErr) {
					t.Fatalf("op %d (%s) on %s: result (%q,%v,%v) diverges from mem (%q,%v,%v)",
						op, n, configs[i].Name, data, found, err, firstData, firstFound, firstErr)
				}
			}
		}
		switch opc % 16 {
		case 0:
			each("Read", func(tp *Tape) ([]byte, bool, error) {
				return []byte{tp.Read()}, false, nil
			})
		case 1:
			b := arg()
			each("Write", func(tp *Tape) ([]byte, bool, error) {
				tp.Write(b)
				return nil, false, nil
			})
		case 2:
			d := Forward
			if arg()%2 == 0 {
				d = Backward
			}
			each("Move", func(tp *Tape) ([]byte, bool, error) {
				return nil, false, tp.Move(d)
			})
		case 3:
			n := int(arg())
			each("ReadBlock", func(tp *Tape) ([]byte, bool, error) {
				data, err := tp.ReadBlock(n)
				return data, false, err
			})
		case 4:
			// Exponential sizes reach past the file backend's page, so
			// block writes exercise both the buffered and bypass paths.
			n := (1 << (int(arg()) % 18)) + int(arg())
			if ref.Pos()+n > maxLockstepCells {
				n %= 4096
			}
			data := genBlock(arg(), n)
			each("WriteBlock", func(tp *Tape) ([]byte, bool, error) {
				return nil, false, tp.WriteBlock(data)
			})
		case 5:
			n := int(arg())
			each("ReadBlockBackward", func(tp *Tape) ([]byte, bool, error) {
				data, err := tp.ReadBlockBackward(n)
				return data, false, err
			})
		case 6:
			n := int(arg())
			each("MoveBackwardN", func(tp *Tape) ([]byte, bool, error) {
				return nil, false, tp.MoveBackwardN(n)
			})
		case 7:
			each("Rewind", func(tp *Tape) ([]byte, bool, error) {
				return nil, false, tp.Rewind()
			})
		case 8:
			each("SeekEnd", func(tp *Tape) ([]byte, bool, error) {
				return nil, false, tp.SeekEnd()
			})
		case 9:
			each("ScanBytes", func(tp *Tape) ([]byte, bool, error) {
				data, err := tp.ScanBytes()
				return data, false, err
			})
		case 10:
			delim := arg()
			each("ScanUntil", func(tp *Tape) ([]byte, bool, error) {
				return tp.ScanUntil(delim)
			})
		case 11:
			each("Truncate", func(tp *Tape) ([]byte, bool, error) {
				tp.Truncate()
				return nil, false, nil
			})
		case 12:
			each("Reset", func(tp *Tape) ([]byte, bool, error) {
				tp.Reset()
				return nil, false, nil
			})
		case 13:
			data := genBlock(arg(), int(arg()))
			each("Replace", func(tp *Tape) ([]byte, bool, error) {
				tp.Replace(data)
				return nil, false, nil
			})
		case 14:
			budget := int(arg())%8 - 1
			each("SetBudget", func(tp *Tape) ([]byte, bool, error) {
				tp.SetBudget(budget)
				return nil, false, nil
			})
		case 15:
			n := (1 << (int(arg()) % 18)) + int(arg())
			if ref.Pos()+n > maxLockstepCells {
				n %= 4096
			}
			each("ReadBlockBig", func(tp *Tape) ([]byte, bool, error) {
				data, err := tp.ReadBlock(n)
				return data, false, err
			})
		}
		check(op, name)
	}
}

// TestBackendLockstepSequences pins hand-written corner sequences —
// the same ones seeding the fuzz corpus — so the conformance driver
// runs in every plain `go test`, not only under -fuzz.
func TestBackendLockstepSequences(t *testing.T) {
	for name, ops := range lockstepCorpus() {
		t.Run(name, func(t *testing.T) {
			runBackendLockstep(t, ops)
		})
	}
}

// lockstepCorpus is the seed corpus of the conformance driver: the
// block-boundary, empty-tape, truncate-regrow and left-end corners.
func lockstepCorpus() map[string][]byte {
	return map[string][]byte{
		"empty-tape": {
			0,    // Read on the empty tape
			9,    // ScanBytes
			7,    // Rewind
			2, 0, // Move backward: ErrLeftEnd
			5, 3, // ReadBlockBackward at cell 0
			11, // Truncate
			12, // Reset
		},
		"page-boundary": {
			4, 17, 3, 42, // WriteBlock of 2^17+3 cells: crosses filePage twice
			7,         // Rewind
			15, 17, 5, // big ReadBlock back across the pages
			7,       // Rewind
			10, '#', // ScanUntil with no delimiter: sweep to the end
		},
		"truncate-regrow": {
			4, 10, 0, 9, // WriteBlock of 1 KiB
			6, 200, // MoveBackwardN into the middle
			11,          // Truncate: drop the tail
			4, 12, 0, 7, // re-grow over the dropped range: must read Blank
			7, // Rewind
			9, // ScanBytes
		},
		"spill-crossing": {
			4, 6, 0, 1, // WriteBlock of 64+ cells: crosses SpillThreshold 64
			7,    // Rewind
			9,    // ScanBytes
			1, 9, // Write mid-tape
			12,         // Reset after spilling
			4, 3, 0, 2, // small regrow on the spilled backend
			7, 9,
		},
		"budget-refusal": {
			4, 4, 0, 5, // WriteBlock of 16+ cells
			14, 1, // SetBudget 0
			7,     // Rewind: refused, ErrBudget
			9,     // ScanBytes: fine, still forward
			14, 2, // SetBudget 1
			7,    // Rewind: allowed now
			6, 9, // MoveBackwardN while already backward
			9, // ScanBytes: refused again (budget 1 spent)
		},
	}
}

// FuzzTapeBackend replays fuzzer-generated operation sequences on every
// backend in lockstep — the randomized arm of the conformance suite.
func FuzzTapeBackend(f *testing.F) {
	for _, ops := range lockstepCorpus() {
		f.Add(ops)
	}
	f.Fuzz(func(t *testing.T, ops []byte) {
		runBackendLockstep(t, ops)
	})
}

// Options.Validate rejects the combinations that would otherwise lie
// silently — a threshold with nowhere to spill to, a negative
// threshold — and accepts every configuration the conformance table
// actually runs.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"file", Options{Storage: File}, true},
		{"mmap with threshold", Options{Storage: Mmap, SpillThreshold: 64}, true},
		{"file with threshold", Options{Storage: File, SpillThreshold: 1}, true},
		{"negative threshold", Options{Storage: File, SpillThreshold: -1}, false},
		{"negative threshold on mem", Options{SpillThreshold: -5}, false},
		{"threshold on mem", Options{SpillThreshold: 64}, false},
		{"threshold on explicit mem", Options{Storage: Mem, SpillThreshold: 1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate()
			if c.ok && err != nil {
				t.Fatalf("Validate(%+v) = %v, want nil", c.opts, err)
			}
			if !c.ok && err == nil {
				t.Fatalf("Validate(%+v) = nil, want error", c.opts)
			}
		})
	}
}

// NewWith panics on options Validate rejects: by construction time an
// invalid combination is a programming error, not a user mistake, and
// silently dropping the threshold would hide it.
func TestNewWithPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWith accepted a SpillThreshold on Mem storage")
		}
	}()
	NewWith("bad", Options{SpillThreshold: 64})
}
