package plan_test

import (
	"math"
	"math/rand"
	"testing"

	"extmem/internal/plan"
	"extmem/internal/problems"
	"extmem/internal/shard"
)

// predictionError is |predicted − measured| / measured.
func predictionError(predicted, measured int64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(predicted-measured)) / float64(measured)
}

// The cost model against the meter: for sorts across the E19-style
// grid of shapes, the predicted critical path stays within 25% of the
// measured shard.SortReport — the calibration bound the planner's
// decisions rest on.
func TestPredictSortCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	inputs := [][]byte{
		problems.GenSetNo(512, 16, rng).Encode(),
		problems.GenSetYes(256, 8, rng).Encode(),
		problems.GenSetNo(64, 16, rng).Encode(),
	}
	for _, input := range inputs {
		for _, shards := range []int{1, 2, 4} {
			for _, fanIn := range []int{2, 4} {
				for _, mem := range []int64{0, 256, 1024} {
					s := shard.Sort{Shards: shards, FanIn: fanIn, RunMemoryBits: mem}
					_, rep, err := s.Run(nil, input, 1)
					if err != nil {
						t.Fatal(err)
					}
					shape := plan.Shape{Shards: shards, FanIn: fanIn, RunMemoryBits: mem}
					c := plan.PredictSort(rep.Items, rep.Bytes, shape)
					got, want := c.CriticalPath(), rep.CriticalPathSteps()
					if e := predictionError(got, want); e > 0.25 {
						t.Errorf("N=%d shards=%d fanIn=%d mem=%d: predicted %d, measured %d (error %.1f%%)",
							len(input), shards, fanIn, mem, got, want, e*100)
					}
				}
			}
		}
	}
}
