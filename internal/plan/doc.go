// Package plan is the cost-based query planner of the sharded
// execution layer: given a resource budget — internal memory bits,
// tapes per shard machine, a shard-count ceiling — it picks the
// execution shape {Shards, FanIn, RunMemoryBits} of each operator
// stage so the stage's predicted critical-path step count is minimal.
//
// The cost model is the measured PR 3 sorter, written down: an input
// of I items and N payload bytes under a run-formation budget of s
// bits forms runs of runLen = ⌊s/L⌋ items (L the mean item length),
// hence R = ⌈I/runLen⌉ initial runs; a shard holding r of those runs
// with P payload bytes sorts them in p = ⌈log_k r⌉ loser-tree merge
// passes, each pass a fixed number of full-payload sweeps and lane
// rewinds. The per-phase step counts in PredictSort mirror the
// engine's pass structure sweep for sweep, so the prediction is
// calibrated against the meter itself — the planner optimizes the
// exact quantity shard.SortReport.CriticalPathSteps measures, and the
// regression suite asserts the prediction stays within tolerance of
// measured reports across the E19 grid.
//
// Operator stages run sequentially on the evaluator, so minimizing
// each stage's predicted critical path independently minimizes their
// sum — the per-stage argmin is globally optimal for the quantity the
// planner targets.
//
// The planner moves only the execution shape. Every shape produces
// byte-identical output (a sorted, deduplicated stream is canonical),
// so planning is purely a performance decision: the differential
// suite holds the planner to the same bit-for-bit standard as every
// other execution knob.
package plan
