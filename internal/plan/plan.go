package plan

import "fmt"

// Budget is the resource envelope the planner may spend per operator
// stage: the run-formation memory of a shard machine, its tape count,
// and the width of the shard fleet.
type Budget struct {
	// MemoryBits bounds RunMemoryBits, the internal-memory target of
	// initial run formation on each shard machine.
	MemoryBits int64

	// Tapes bounds the tape count of a shard machine. A shard sorting
	// with fan-in k uses k+2 tapes (input, output, k merge lanes), so
	// the merge fan-in is bounded by Tapes−2.
	Tapes int

	// MaxShards bounds the shard fleet's width.
	MaxShards int
}

// Validate rejects budgets no shape can satisfy.
func (b Budget) Validate() error {
	if b.MemoryBits < 0 {
		return fmt.Errorf("plan: negative memory budget %d bits", b.MemoryBits)
	}
	if b.Tapes < 4 {
		return fmt.Errorf("plan: %d tapes cannot hold a sort (input, output and two merge lanes need 4)", b.Tapes)
	}
	if b.MaxShards < 1 {
		return fmt.Errorf("plan: shard ceiling %d below 1", b.MaxShards)
	}
	return nil
}

// Shape is one operator stage's execution shape: the knobs the
// planner chooses and the sharded path consumes.
type Shape struct {
	Shards        int
	FanIn         int
	RunMemoryBits int64
}

// Cost is the predicted step census of one sharded sort stage,
// mirroring shard.SortReport's critical path: the coordinator's
// distribution scan, the slowest shard-local sort (shards run
// concurrently), and the final combining merge.
type Cost struct {
	Distribute int64 // coordinator partition scan steps
	MaxShard   int64 // slowest shard-local sort steps
	Merge      int64 // final k-way merge steps
}

// CriticalPath is distribute → slowest shard → merge, the quantity
// shard.SortReport.CriticalPathSteps measures.
func (c Cost) CriticalPath() int64 { return c.Distribute + c.MaxShard + c.Merge }

// PredictSort predicts the step census of one sharded sort of I items
// in N payload bytes ('#' separators included) under the given shape.
// The arithmetic follows the engine pass for pass:
//
//   - distribution: the coordinator reads the payload once — N steps;
//   - a shard holding one initial run sorts in internal memory: copy
//     in (2·P), rewind, read, rewind, write back, rewind — 7·P;
//   - a shard holding r ≥ 2 runs pays the copy-in and run formation
//     (5·P), then p = ⌈log_k r⌉ merge passes — the first 4·P (lanes
//     are already loaded), each further pass 8·P (re-distribute and
//     re-merge), plus the final rewind — 10·P + 8·P·(p−1);
//   - the combine reads every shard's output and writes the merged
//     tape — 2·N.
//
// Dedup shrinks the written output below N; the model ignores it
// (duplicates are input-dependent), which is part of the tolerance
// the calibration suite budgets for.
func PredictSort(items int, bytes int64, s Shape) Cost {
	if items <= 0 || bytes <= 0 {
		return Cost{}
	}
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	fanIn := s.FanIn
	if fanIn < 2 {
		fanIn = 2
	}
	_, runs := runPartition(items, bytes, s.RunMemoryBits)

	cost := Cost{Distribute: bytes, Merge: 2 * bytes}
	// Split assigns ⌈runs/shards⌉ runs to the widest shard; its payload
	// share follows its run share.
	if shards > runs {
		shards = runs
	}
	maxRuns := (runs + shards - 1) / shards
	maxPayload := bytes * int64(maxRuns) / int64(runs)
	cost.MaxShard = shardSortSteps(maxPayload, maxRuns, fanIn)
	return cost
}

// runPartition is the engine's greedy fixed-count run rule in closed
// form: the first run fills the budget, its item count becomes the
// per-run count. L is the mean item length (the meter charge per
// buffered item, separators excluded).
func runPartition(items int, bytes, memoryBits int64) (runLen, runs int) {
	if memoryBits <= 0 {
		return 1, items
	}
	l := (bytes - int64(items)) / int64(items)
	if l < 1 {
		l = 1
	}
	runLen = int(memoryBits / l)
	if runLen < 1 {
		runLen = 1
	}
	if runLen > items {
		runLen = items
	}
	runs = (items + runLen - 1) / runLen
	return runLen, runs
}

// shardSortSteps is the shard-local sort's step count for a payload of
// p bytes holding r initial runs at merge fan-in k.
func shardSortSteps(p int64, r, k int) int64 {
	switch {
	case r <= 0 || p <= 0:
		return 0
	case r == 1:
		return 7 * p
	}
	passes := int64(ceilLog(r, k))
	return 10*p + 8*p*(passes-1)
}

// ceilLog is ⌈log_k r⌉ for r ≥ 2, k ≥ 2.
func ceilLog(r, k int) int {
	passes, reach := 0, 1
	for reach < r {
		reach *= k
		passes++
	}
	return passes
}

// Planner chooses execution shapes under a fixed budget. Build one
// with Auto; the zero value is not ready for use.
type Planner struct {
	Budget Budget
}

// Auto returns the planner for the given budget. The budget is taken
// as-is; Validate rejects envelopes no shape satisfies (callers
// surface that as a configuration error).
func Auto(b Budget) *Planner { return &Planner{Budget: b} }

// Choose picks the shape minimizing the predicted critical path of a
// sort of I items in N payload bytes, over every shard count up to
// the ceiling, every fan-in the tape budget admits, and a geometric
// ladder of run-formation budgets up to the memory budget. Ties break
// toward fewer shards (shards are machines), then toward the LARGER
// fan-in (tapes inside the budget are free, and at an equal pass
// count the wider merge spreads each pass over shorter lanes, so its
// rewinds only shrink), then toward less memory — deterministic, and
// never spending a resource that buys no predicted steps.
func (p *Planner) Choose(items int, bytes int64) Shape {
	best := Shape{Shards: 1, FanIn: 2, RunMemoryBits: 0}
	if items <= 0 || bytes <= 0 {
		return best
	}
	maxFanIn := p.Budget.Tapes - 2
	if maxFanIn < 2 {
		maxFanIn = 2
	}
	bestCost := int64(-1)
	for shards := 1; shards <= p.Budget.MaxShards; shards++ {
		for fanIn := maxFanIn; fanIn >= 2; fanIn-- {
			for _, mem := range p.memoryLadder() {
				s := Shape{Shards: shards, FanIn: fanIn, RunMemoryBits: mem}
				c := PredictSort(items, bytes, s).CriticalPath()
				if bestCost < 0 || c < bestCost {
					best, bestCost = s, c
				}
			}
		}
	}
	return best
}

// ChooseScan picks the shape of a sharded operator scan (the
// difference's anti-merge, the product's paired scan): the left input
// partitions into runs under the run-formation budget and the shards
// stream ranges concurrently, so the critical path only shrinks with
// width — the scan uses the full fleet and the full formation budget,
// clamped to the available runs.
func (p *Planner) ChooseScan(items int, bytes int64) Shape {
	mem := p.Budget.MemoryBits
	shards := p.Budget.MaxShards
	if items > 0 && bytes > 0 {
		if _, runs := runPartition(items, bytes, mem); shards > runs {
			shards = runs
		}
	}
	if shards < 1 {
		shards = 1
	}
	return Shape{Shards: shards, FanIn: 2, RunMemoryBits: mem}
}

// memoryLadder is the run-formation budgets Choose considers: powers
// of two from 256 bits up to the budget, plus the budget itself.
func (p *Planner) memoryLadder() []int64 {
	if p.Budget.MemoryBits <= 0 {
		return []int64{0}
	}
	var ladder []int64
	for m := int64(256); m < p.Budget.MemoryBits; m *= 2 {
		ladder = append(ladder, m)
	}
	return append(ladder, p.Budget.MemoryBits)
}
