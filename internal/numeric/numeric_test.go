package numeric

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulModAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := rng.Uint64()
		b := rng.Uint64()
		m := rng.Uint64()
		if m == 0 {
			m = 1
		}
		got := MulMod(a, b, m)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, new(big.Int).SetUint64(m))
		if got != want.Uint64() {
			t.Fatalf("MulMod(%d,%d,%d) = %d, want %d", a, b, m, got, want.Uint64())
		}
	}
}

func TestAddSubMod(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a := rng.Uint64()
		b := rng.Uint64()
		m := rng.Uint64()
		if m == 0 {
			m = 1
		}
		sum := AddMod(a, b, m)
		wantSum := new(big.Int).Add(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		wantSum.Mod(wantSum, new(big.Int).SetUint64(m))
		if sum != wantSum.Uint64() {
			t.Fatalf("AddMod(%d,%d,%d) = %d, want %d", a, b, m, sum, wantSum.Uint64())
		}
		diff := SubMod(a, b, m)
		wantDiff := new(big.Int).Sub(new(big.Int).SetUint64(a%m), new(big.Int).SetUint64(b%m))
		wantDiff.Mod(wantDiff, new(big.Int).SetUint64(m))
		if diff != wantDiff.Uint64() {
			t.Fatalf("SubMod(%d,%d,%d) = %d, want %d", a, b, m, diff, wantDiff.Uint64())
		}
	}
}

func TestPowModAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := rng.Uint64()
		e := uint64(rng.Int63n(1 << 20))
		m := rng.Uint64()
		if m == 0 {
			m = 1
		}
		got := PowMod(a, e, m)
		want := new(big.Int).Exp(
			new(big.Int).SetUint64(a),
			new(big.Int).SetUint64(e),
			new(big.Int).SetUint64(m))
		if got != want.Uint64() {
			t.Fatalf("PowMod(%d,%d,%d) = %d, want %d", a, e, m, got, want.Uint64())
		}
	}
}

func TestPowModEdge(t *testing.T) {
	if PowMod(5, 0, 7) != 1 {
		t.Fatal("a^0 mod 7 != 1")
	}
	if PowMod(5, 100, 1) != 0 {
		t.Fatal("mod 1 should be 0")
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 5: true,
		6: false, 7: true, 9: false, 11: true, 25: false, 31: true,
		37: true, 41: true, 561: false /* Carmichael */, 1105: false,
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimeAgainstSieve(t *testing.T) {
	const limit = 10000
	sieve := map[uint64]bool{}
	for _, p := range PrimesUpTo(limit) {
		sieve[p] = true
	}
	for n := uint64(0); n <= limit; n++ {
		if IsPrime(n) != sieve[n] {
			t.Fatalf("IsPrime(%d) = %v disagrees with sieve", n, IsPrime(n))
		}
	}
}

func TestIsPrimeLarge(t *testing.T) {
	cases := map[uint64]bool{
		(1 << 61) - 1:        true,  // Mersenne prime 2^61−1
		18446744073709551557: true,  // largest prime < 2^64
		18446744073709551555: false, //
		2147483647:           true,  // 2^31−1
		3215031751:           false, // strong pseudoprime to bases 2,3,5,7
		3825123056546413051:  false, // strong pseudoprime to bases 2..23
		9223372036854775783:  true,  // largest prime < 2^63
		1000000000000000003:  true,
		1000000000000000005:  false,
	}
	for n, want := range cases {
		if got := IsPrime(n); got != want {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[uint64]uint64{0: 2, 2: 2, 3: 3, 4: 5, 14: 17, 90: 97}
	for n, want := range cases {
		got, err := NextPrime(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("NextPrime(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRandomPrimeUpTo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		p, err := RandomPrimeUpTo(1000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p > 1000 || !IsPrime(p) {
			t.Fatalf("RandomPrimeUpTo returned %d", p)
		}
	}
	if _, err := RandomPrimeUpTo(1, rng); err == nil {
		t.Fatal("RandomPrimeUpTo(1) should fail")
	}
}

func TestRandomPrimeUpToIsRoughlyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := map[uint64]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		p, err := RandomPrimeUpTo(30, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	// Primes ≤ 30: 2,3,5,7,11,13,17,19,23,29 — ten of them, expect
	// about trials/10 each; allow wide slack.
	if len(counts) != 10 {
		t.Fatalf("saw %d distinct primes, want 10", len(counts))
	}
	for p, c := range counts {
		if c < trials/20 || c > trials/5 {
			t.Fatalf("prime %d drawn %d times out of %d; not uniform", p, c, trials)
		}
	}
}

func TestBertrandPrime(t *testing.T) {
	for _, k := range []uint64{1, 2, 3, 10, 100, 12345, 1 << 30} {
		p, err := BertrandPrime(k)
		if err != nil {
			t.Fatalf("BertrandPrime(%d): %v", k, err)
		}
		if p <= 3*k || p > 6*k || !IsPrime(p) {
			t.Fatalf("BertrandPrime(%d) = %d out of range (3k, 6k]", k, p)
		}
	}
	if _, err := BertrandPrime(0); err == nil {
		t.Fatal("BertrandPrime(0) should fail")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Fatalf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFingerprintModulus(t *testing.T) {
	k, err := FingerprintModulus(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// m³·n = 64·8 = 512, ⌈log₂ 512⌉ = 9, k = 4608.
	if k != 4608 {
		t.Fatalf("FingerprintModulus(4,8) = %d, want 4608", k)
	}
	if _, err := FingerprintModulus(1<<32, 1<<32); err == nil {
		t.Fatal("overflow not detected")
	}
}

func TestPrimesUpTo(t *testing.T) {
	got := PrimesUpTo(30)
	want := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("PrimesUpTo(30) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrimesUpTo(30) = %v", got)
		}
	}
	if PrimesUpTo(1) != nil {
		t.Fatal("PrimesUpTo(1) should be empty")
	}
}

// Property: PowMod satisfies a^(e1+e2) = a^e1 · a^e2 (mod m).
func TestQuickPowModHomomorphism(t *testing.T) {
	f := func(a, e1, e2 uint32, mRaw uint64) bool {
		m := mRaw%1000003 + 2
		lhs := PowMod(uint64(a), uint64(e1)+uint64(e2), m)
		rhs := MulMod(PowMod(uint64(a), uint64(e1), m), PowMod(uint64(a), uint64(e2), m), m)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fermat's little theorem for random primes.
func TestQuickFermat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		p, err := RandomPrimeUpTo(1_000_000, rng)
		if err != nil {
			t.Fatal(err)
		}
		a := 1 + uint64(rng.Int63n(int64(p-1)))
		if PowMod(a, p-1, p) != 1 {
			t.Fatalf("Fermat fails for a=%d p=%d", a, p)
		}
	}
}
