// Package numeric provides the number-theoretic substrate of the
// fingerprinting algorithm of Theorem 8(a): 64-bit modular
// arithmetic, deterministic Miller–Rabin primality testing, random
// prime selection below a bound, and Bertrand-postulate prime search.
//
// All arithmetic is exact on uint64 operands using 128-bit
// intermediates from math/bits; no big-integer allocation happens on
// the hot path.
package numeric

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// ErrNoPrime is returned when a prime search fails in its range.
var ErrNoPrime = errors.New("numeric: no prime found in range")

// MulMod returns a*b mod m using a 128-bit intermediate product. m
// must be nonzero.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// AddMod returns (a+b) mod m without overflow. m must be nonzero.
func AddMod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	if a >= m-b && b != 0 {
		return a - (m - b)
	}
	return a + b
}

// SubMod returns (a−b) mod m. m must be nonzero.
func SubMod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	if a >= b {
		return a - b
	}
	return a + (m - b)
}

// PowMod returns a^e mod m by binary exponentiation. m must be
// nonzero. PowMod(a, 0, m) = 1 mod m.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, a, m)
		}
		a = MulMod(a, a, m)
		e >>= 1
	}
	return result
}

// millerRabinBases is a base set for which Miller–Rabin is a
// deterministic primality test for all n < 2^64 (Sorenson & Webster).
var millerRabinBases = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime, deterministically for all
// uint64 values.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n−1 = d·2^s with d odd.
	d := n - 1
	s := 0
	for d&1 == 0 {
		d >>= 1
		s++
	}
	for _, a := range millerRabinBases {
		x := PowMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < s-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime ≥ n, or an error if none fits
// in uint64.
func NextPrime(n uint64) (uint64, error) {
	if n <= 2 {
		return 2, nil
	}
	if n%2 == 0 {
		n++
	}
	for ; n >= 3; n += 2 { // n >= 3 guards wraparound
		if IsPrime(n) {
			return n, nil
		}
	}
	return 0, fmt.Errorf("%w: above %d", ErrNoPrime, n)
}

// RandomPrimeUpTo returns a prime chosen uniformly at random from the
// primes ≤ k, using rejection sampling exactly as step (2) of the
// Theorem 8(a) algorithm: draw a uniform number in {2, …, k} and
// repeat until it is prime. It returns an error if k < 2.
func RandomPrimeUpTo(k uint64, rng *rand.Rand) (uint64, error) {
	if k < 2 {
		return 0, fmt.Errorf("%w: bound %d too small", ErrNoPrime, k)
	}
	for {
		n := 2 + uint64(rng.Int63n(int64(k-1)))
		if IsPrime(n) {
			return n, nil
		}
	}
}

// BertrandPrime returns a prime p with 3k < p ≤ 6k; one exists by
// Bertrand's postulate for every k ≥ 1 (step (3) of the Theorem 8(a)
// algorithm). It returns the smallest such prime.
func BertrandPrime(k uint64) (uint64, error) {
	if k == 0 {
		return 0, fmt.Errorf("%w: k = 0", ErrNoPrime)
	}
	p, err := NextPrime(3*k + 1)
	if err != nil {
		return 0, err
	}
	if p > 6*k {
		return 0, fmt.Errorf("%w: smallest prime above %d is %d > %d", ErrNoPrime, 3*k, p, 6*k)
	}
	return p, nil
}

// CeilLog2 returns ⌈log₂ n⌉ for n ≥ 1 (and 0 for n ≤ 1). The paper's
// ˙log is a ceiling logarithm.
func CeilLog2(n uint64) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(n - 1)
}

// FingerprintModulus computes the parameter k = m³ · n · ⌈log(m³·n)⌉
// of step (2) of Theorem 8(a)'s algorithm, reporting overflow.
func FingerprintModulus(m, n uint64) (uint64, error) {
	m3, ok := mulCheck(m, m)
	if ok {
		m3, ok = mulCheck(m3, m)
	}
	if !ok {
		return 0, fmt.Errorf("numeric: m³ overflows for m = %d", m)
	}
	m3n, ok := mulCheck(m3, n)
	if !ok {
		return 0, fmt.Errorf("numeric: m³·n overflows for m = %d, n = %d", m, n)
	}
	lg := uint64(CeilLog2(m3n))
	if lg == 0 {
		lg = 1
	}
	k, ok := mulCheck(m3n, lg)
	if !ok {
		return 0, fmt.Errorf("numeric: m³·n·log overflows for m = %d, n = %d", m, n)
	}
	// BertrandPrime needs 6k to fit.
	if k > (1<<63)/4 {
		return 0, fmt.Errorf("numeric: 6k overflows for m = %d, n = %d", m, n)
	}
	// Degenerate inputs (m = n = 1) give k = 1, below the smallest
	// prime; the algorithm's analysis only needs k at least this
	// large, so clamping preserves correctness.
	if k < 2 {
		k = 2
	}
	return k, nil
}

func mulCheck(a, b uint64) (uint64, bool) {
	hi, lo := bits.Mul64(a, b)
	return lo, hi == 0
}

// PrimesUpTo returns all primes ≤ n by a sieve of Eratosthenes. It is
// intended for the experiment harness, not the streaming algorithms.
func PrimesUpTo(n int) []uint64 {
	if n < 2 {
		return nil
	}
	sieve := make([]bool, n+1)
	var primes []uint64
	for i := 2; i <= n; i++ {
		if sieve[i] {
			continue
		}
		primes = append(primes, uint64(i))
		for j := i * i; j <= n && j > 0; j += i {
			sieve[j] = true
		}
	}
	return primes
}
