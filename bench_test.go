package extmem

// One benchmark per experiment of the E1–E19 suite. Each benchmark
// exercises the core operation its experiment measures; the printed
// tables come from cmd/stbench (same runners, internal/experiments).
// The E19 workload is covered by BenchmarkE6RelAlgSharded (the
// sharded query evaluator across shard counts) and its
// BenchmarkE6AntiMergeProduct and BenchmarkEqualSetSharded
// companions; the E21 planner sweep is BenchmarkE6Planned (the same
// workload under widening envelopes, against the fixed shapes of
// BenchmarkE6RelAlgSharded).

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/experiments"
	"extmem/internal/listmachine"
	"extmem/internal/lowerbound"
	"extmem/internal/numeric"
	"extmem/internal/perm"
	"extmem/internal/plan"
	"extmem/internal/problems"
	"extmem/internal/relalg"
	"extmem/internal/simulate"
	"extmem/internal/tape"
	"extmem/internal/turing"
	"extmem/internal/xmlstream"
	"extmem/internal/xpath"
	"extmem/internal/xquery"
)

// BenchmarkE1DeterministicUpperBound measures the Corollary 7
// sort-based MULTISET-EQUALITY decider (E1).
func BenchmarkE1DeterministicUpperBound(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := problems.GenMultisetYes(512, 16, rng)
	enc := in.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(algorithms.NumDeciderTapes, 1)
		m.SetInput(enc)
		if v, err := algorithms.MultisetEqualityST(m); err != nil || v != core.Accept {
			b.Fatal(err, v)
		}
	}
}

// BenchmarkE2Fingerprint measures the Theorem 8(a) two-scan
// fingerprint decider (E2).
func BenchmarkE2Fingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := problems.GenMultisetYes(512, 16, rng)
	enc := in.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(1, int64(i))
		m.SetInput(enc)
		if v, _, err := algorithms.FingerprintMultisetEquality(m); err != nil || v != core.Accept {
			b.Fatal(err, v)
		}
	}
}

// BenchmarkE1Deterministic64KiB is the E1 workload at the 64 KiB
// input size class (1024 values of 31 bits per half; 2·1024·32 =
// 65536 encoded symbols), which the bulk tape fast paths make
// practical.
func BenchmarkE1Deterministic64KiB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := problems.GenMultisetYes(1024, 31, rng)
	enc := in.Encode()
	if len(enc) != 64<<10 {
		b.Fatalf("encoded input is %d bytes, want %d", len(enc), 64<<10)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(algorithms.NumDeciderTapes, 1)
		m.SetInput(enc)
		if v, err := algorithms.MultisetEqualityST(m); err != nil || v != core.Accept {
			b.Fatal(err, v)
		}
	}
}

// BenchmarkE2Fingerprint64KiB is the E2 workload at the 64 KiB input
// size class.
func BenchmarkE2Fingerprint64KiB(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := problems.GenMultisetYes(1024, 31, rng)
	enc := in.Encode()
	if len(enc) != 64<<10 {
		b.Fatalf("encoded input is %d bytes, want %d", len(enc), 64<<10)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(1, int64(i))
		m.SetInput(enc)
		if v, _, err := algorithms.FingerprintMultisetEquality(m); err != nil || v != core.Accept {
			b.Fatal(err, v)
		}
	}
}

// BenchmarkE3NSTVerifier measures the Theorem 8(b) certificate
// verifier (E3).
func BenchmarkE3NSTVerifier(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	in := problems.GenMultisetYes(6, 4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(2, 1)
		m.SetInput(in.Encode())
		if v, err := algorithms.DecideNST(algorithms.NSTMultisetEquality, m, in); err != nil || v != core.Accept {
			b.Fatal(err, v)
		}
	}
}

// BenchmarkE4Separation runs the deterministic and randomized
// deciders back to back — the Corollary 9 scan-count gap (E4).
func BenchmarkE4Separation(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := problems.GenMultisetYes(256, 12, rng)
	enc := in.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := core.NewMachine(algorithms.NumDeciderTapes, 1)
		det.SetInput(enc)
		if _, err := algorithms.MultisetEqualityST(det); err != nil {
			b.Fatal(err)
		}
		fp := core.NewMachine(1, int64(i))
		fp.SetInput(enc)
		if _, _, err := algorithms.FingerprintMultisetEquality(fp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Sort measures the Corollary 10 external sort (E5).
func BenchmarkE5Sort(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	in := problems.GenMultisetYes(512, 16, rng)
	enc := in.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(4, 1)
		m.SetInput(enc)
		if res, err := algorithms.SortLasVegas(m, 1, 2, 3, 1<<30); err != nil || res.Verdict != core.Accept {
			b.Fatal(err, res.Verdict)
		}
	}
}

// BenchmarkE5Sort64KiB is the E5 workload at the 64 KiB input size
// class, sorted the fast way: fan-in 8 (a 10-tape machine) with
// memory-budgeted run formation via SortLasVegasAuto.
func BenchmarkE5Sort64KiB(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	in := problems.GenMultisetYes(1024, 31, rng)
	enc := in.Encode()
	if len(enc) != 64<<10 {
		b.Fatalf("encoded input is %d bytes, want %d", len(enc), 64<<10)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(10, 1)
		m.SetInput(enc)
		res, err := algorithms.SortLasVegasAuto(m, 1, 1<<30, algorithms.DefaultRunMemoryBits)
		if err != nil || res.Verdict != core.Accept {
			b.Fatal(err, res.Verdict)
		}
	}
}

// BenchmarkSortFanIn sweeps the sort engine over input size × fan-in:
// the r-vs-(s, t) trade-off of E17 as wall-clock numbers. Fan-in k
// runs on a (k+2)-tape machine with the default run-formation memory;
// the k=2/mem=0 rows are the legacy single-item-run shape for
// reference.
func BenchmarkSortFanIn(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	sizes := []struct {
		name string
		m    int
	}{
		{"4KiB", 64},    // 128 items of 31 bits: 4096 encoded bytes
		{"64KiB", 1024}, // 2048 items of 31 bits: 65536 encoded bytes
	}
	for _, size := range sizes {
		in := problems.GenMultisetYes(size.m, 31, rng)
		enc := in.Encode()
		if len(enc) != size.m*64 {
			b.Fatalf("encoded input is %d bytes, want %d", len(enc), size.m*64)
		}
		for _, cfg := range []struct {
			name string
			k    int
			mem  int64
		}{
			{"k=2_mem=0", 2, 0},
			{"k=2", 2, algorithms.DefaultRunMemoryBits},
			{"k=4", 4, algorithms.DefaultRunMemoryBits},
			{"k=8", 8, algorithms.DefaultRunMemoryBits},
		} {
			b.Run("size="+size.name+"/"+cfg.name, func(b *testing.B) {
				b.SetBytes(int64(len(enc)))
				b.ReportAllocs()
				var scans int
				for i := 0; i < b.N; i++ {
					m := core.NewMachine(cfg.k+2, 1)
					m.SetInput(enc)
					s := algorithms.Sorter{FanIn: cfg.k, RunMemoryBits: cfg.mem}
					if err := s.SortToTape(m, 1, algorithms.WorkTapes(m, 1)); err != nil {
						b.Fatal(err)
					}
					scans = m.Resources().Scans()
				}
				b.ReportMetric(float64(scans), "scans")
			})
		}
	}
}

// appendRandomItems streams n '#'-terminated random 0-1-strings of the
// given bit width onto tp in ~1 MiB blocks, so the generator's
// internal memory stays O(1) in the input size; the head is left
// rewound to the start.
func appendRandomItems(tp *tape.Tape, n, bits int, rng *rand.Rand) error {
	buf := make([]byte, 0, 1<<20)
	for i := 0; i < n; i++ {
		v := rng.Int63() & (1<<bits - 1)
		for j := bits - 1; j >= 0; j-- {
			buf = append(buf, byte('0'+byte((v>>j)&1)))
		}
		buf = append(buf, '#')
		if len(buf)+bits+1 > cap(buf) {
			if err := tp.WriteBlock(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := tp.WriteBlock(buf); err != nil {
			return err
		}
	}
	return tp.Rewind()
}

// peakRSSBytes reads the process's peak resident set (VmHWM) from
// /proc/self/status; 0 where the file does not exist.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				return 0
			}
			return kb << 10
		}
	}
	return 0
}

// BenchmarkE5Sort1GiBFileBacked is the out-of-core size class: a 1 GiB
// input (32 Mi items of 31 bits) generated straight onto a file-backed
// tape and sorted by the fan-in-8 engine with every tape under
// -storage file semantics, proving the sort genuinely runs out of
// core — the reported peak-rss-bytes metric must sit far below the
// input size. Nightly-gated: skipped under -short and too slow for a
// PR gate.
func BenchmarkE5Sort1GiBFileBacked(b *testing.B) {
	if testing.Short() {
		b.Skip("1 GiB out-of-core size class runs nightly, not in the PR gate")
	}
	const (
		itemBits = 31
		items    = (1 << 30) / (itemBits + 1) // 32 Mi items, 1 GiB encoded
	)
	opts := tape.Options{Storage: tape.File, SpillDir: b.TempDir()}
	b.SetBytes(1 << 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachineOpts(10, 1, opts)
		if err := appendRandomItems(m.Tape(0), items, itemBits, rand.New(rand.NewSource(5))); err != nil {
			b.Fatal(err)
		}
		s := algorithms.Sorter{FanIn: 8, RunMemoryBits: 8 << 20}
		if err := s.SortToTape(m, 1, algorithms.WorkTapes(m, 1)); err != nil {
			b.Fatal(err)
		}
		if err := m.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(peakRSSBytes()), "peak-rss-bytes")
}

// BenchmarkE6RelAlg measures streaming evaluation of the symmetric
// difference query of Theorem 11 (E6).
func BenchmarkE6RelAlg(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := problems.GenSetYes(128, 12, rng)
	db := relalg.InstanceDB(in)
	q := relalg.SymmetricDifference("R1", "R2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(relalg.NumQueryTapes, 1)
		r, err := relalg.EvalST(q, db, m)
		if err != nil || len(r.Tuples) != 0 {
			b.Fatal(err, len(r.Tuples))
		}
	}
}

// BenchmarkE6RelAlgSharded measures the sharded query evaluator (E19)
// on the 64 KiB input size class: the Theorem 11 symmetric-difference
// query with every operator sort run-partitioned across 1, 2 and 4
// shard machines (shards=1 is the sharded path's coordinator+fleet
// overhead floor; compare BenchmarkE6RelAlg for the single-machine
// engine).
func BenchmarkE6RelAlgSharded(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := problems.GenSetYes(1024, 31, rng)
	if len(in.Encode()) != 64<<10 {
		b.Fatalf("encoded input is %d bytes, want %d", len(in.Encode()), 64<<10)
	}
	db := relalg.InstanceDB(in)
	q := relalg.SymmetricDifference("R1", "R2")
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(64 << 10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := relalg.Evaluator{Shards: shards}
				m := core.NewMachine(relalg.NumQueryTapes, 1)
				r, err := ev.EvalST(nil, q, db, m)
				if err != nil || len(r.Tuples) != 0 {
					b.Fatal(err, len(r.Tuples))
				}
			}
		})
	}
}

// BenchmarkE6AntiMergeProduct pairs the two sharded operator scans —
// the difference's anti-merge and the product's paired range scan —
// on the 64 KiB size class, with allocation counts reported: the scan
// hot loops reuse their item buffers (ReadItemInto, ScanUntilAppend),
// so per-item allocation churn is a regression this pair pins.
func BenchmarkE6AntiMergeProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := problems.GenSetYes(1024, 31, rng)
	db := relalg.InstanceDB(in)
	small := relalg.InstanceDB(problems.GenSetYes(48, 12, rng))
	cases := []struct {
		name string
		db   relalg.DB
		q    relalg.Expr
		want int
	}{
		{"antiMerge", db, relalg.Diff{L: relalg.Scan{Rel: "R1"}, R: relalg.Scan{Rel: "R2"}}, 0},
		{"product", small, relalg.Product{L: relalg.Scan{Rel: "R1"}, R: relalg.Scan{Rel: "R2"}}, 48 * 48},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := relalg.Evaluator{Shards: 4}
				m := core.NewMachine(relalg.NumQueryTapes, 1)
				r, err := ev.EvalST(nil, c.q, c.db, m)
				if err != nil || len(r.Tuples) != c.want {
					b.Fatal(err, len(r.Tuples))
				}
			}
		})
	}
}

// BenchmarkE6Planned measures the cost-based planner's end-to-end
// evaluation (E21) on the same 64 KiB workload as
// BenchmarkE6RelAlgSharded, across envelope widths — the planner
// picks each stage's shape and pipelines the handoff, so this is the
// planned counterpart of the fixed-shape benchmark above it.
func BenchmarkE6Planned(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := problems.GenSetYes(1024, 31, rng)
	db := relalg.InstanceDB(in)
	q := relalg.SymmetricDifference("R1", "R2")
	envelopes := []struct {
		name string
		bud  plan.Budget
	}{
		{"starved", plan.Budget{MemoryBits: 128, Tapes: 4, MaxShards: 1}},
		{"grid", plan.Budget{MemoryBits: 256, Tapes: 6, MaxShards: 4}},
		{"generous", plan.Budget{MemoryBits: 1 << 14, Tapes: 12, MaxShards: 8}},
	}
	for _, e := range envelopes {
		b.Run(e.name, func(b *testing.B) {
			b.SetBytes(64 << 10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := relalg.Evaluator{Plan: plan.Auto(e.bud)}
				m := core.NewMachine(relalg.NumQueryTapes, 1)
				r, err := ev.EvalST(nil, q, db, m)
				if err != nil || len(r.Tuples) != 0 {
					b.Fatal(err, len(r.Tuples))
				}
			}
		})
	}
}

// BenchmarkEqualSetSharded pairs the two set-equality deciders of the
// query layer on the 64 KiB size class: the in-memory map-based
// Relation.EqualSet against the machine-backed sharded
// Evaluator.EqualSet (sort both sides across 4 shards, lockstep
// compare).
func BenchmarkEqualSetSharded(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := problems.GenSetYes(1024, 31, rng)
	db := relalg.InstanceDB(in)
	r1, r2 := db["R1"], db["R2"]
	b.Run("memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !r1.EqualSet(r2) {
				b.Fatal("halves must be set-equal")
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := relalg.Evaluator{Shards: 4}
			m := core.NewMachine(relalg.NumQueryTapes, 1)
			eq, err := ev.EqualSet(nil, m, r1, r2)
			if err != nil || !eq {
				b.Fatal(err, eq)
			}
		}
	})
}

// BenchmarkE7XQuery measures the Theorem 12 query (E7).
func BenchmarkE7XQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := problems.GenSetYes(128, 12, rng)
	doc, err := xmlstream.Parse(xmlstream.EncodeInstance(in))
	if err != nil {
		b.Fatal(err)
	}
	q := xquery.TheoremQuery()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := q.Eval(doc)
		if err != nil || !xquery.ResultIsTrue(result) {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8XPath measures Figure 1 query filtering plus the
// boosted T̃ decision (E8).
func BenchmarkE8XPath(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	in := problems.GenSetYes(64, 12, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !xpath.SetEqualityViaFilter(xpath.ExactFilter, in, rng) {
			b.Fatal("boosted decider rejected a yes-instance")
		}
	}
}

// BenchmarkE9Sortedness measures sortedness of the bit-reversal
// permutation (E9, Remark 20).
func BenchmarkE9Sortedness(b *testing.B) {
	phi := perm.BitReversal(1 << 14)
	bound := perm.BitReversalBound(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := perm.Sortedness(phi); s > bound {
			b.Fatalf("sortedness %d > %d", s, bound)
		}
	}
}

// BenchmarkE10Simulation measures the exact-probability check of the
// simulation lemma (E10).
func BenchmarkE10Simulation(b *testing.B) {
	tm := turing.RandomScanMachine()
	s, err := simulate.New(tm, 1, 4, false, 100000)
	if err != nil {
		b.Fatal(err)
	}
	values := []string{"1101"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pTM, err := tm.AcceptProbability(s.TMInput(values), 100000)
		if err != nil {
			b.Fatal(err)
		}
		pLM, err := s.NLM.AcceptProbability(values)
		if err != nil {
			b.Fatal(err)
		}
		if pTM.Cmp(pLM) != 0 {
			b.Fatal("probabilities differ")
		}
	}
}

// BenchmarkE11Counting measures the Lemma 22 frontier computation
// (E11).
func BenchmarkE11Counting(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := lowerbound.Frontier(2, 1, 11, 24)
		if len(pts) == 0 || pts[len(pts)-1].MaxScans <= 0 {
			b.Fatal("empty frontier")
		}
	}
}

// BenchmarkE12MergeLemma measures a full instrumented list-machine
// run with compared-pairs census (E12).
func BenchmarkE12MergeLemma(b *testing.B) {
	const m = 16
	mc := listmachine.CopyReverseCompareNLM(m)
	input := make([]string, 2*m)
	for i := range input {
		input[i] = string(rune('a' + i%26))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := mc.RunDeterministic(input)
		if err != nil || !run.Accepted {
			b.Fatal(err)
		}
		if len(run.Skeleton.ComparedPairs()) == 0 {
			b.Fatal("no compared pairs")
		}
	}
}

// BenchmarkE13RunLength measures TM execution with full resource
// tracking (E13, Lemma 3).
func BenchmarkE13RunLength(b *testing.B) {
	tm := turing.ZigZagMachine(4)
	input := []byte("^101100111010")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tm.RunDeterministic(input, 1_000_000)
		if err != nil || !res.Accepted {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14PrimeCollision measures random-prime drawing plus
// residue comparison (E14, Claim 1).
func BenchmarkE14PrimeCollision(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	k, err := numeric.FingerprintModulus(32, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := numeric.RandomPrimeUpTo(k, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15ShortReduction measures the Corollary 7 reduction f
// (E15).
func BenchmarkE15ShortReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	g, err := problems.NewCheckPhiGen(16, 48)
	if err != nil {
		b.Fatal(err)
	}
	in := g.Yes(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := problems.ShortReduction(in, g.Phi)
		if err != nil || !problems.CheckSort(out) {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16Adversary measures the pigeonhole collision search
// (E16).
func BenchmarkE16Adversary(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	sm := lowerbound.NewCommutativeHashStream(8, 4)
	halves := lowerbound.RandomHalves(300, 4, 8, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found := lowerbound.FindCollision(sm, halves); !found {
			b.Fatal("no collision")
		}
	}
}

// BenchmarkFullSuite runs the complete experiment report once per
// iteration — the cmd/stbench workload.
func BenchmarkFullSuite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.All(int64(i + 1)) {
			if len(r.Notes) < 4 || r.Notes[:4] != "PASS" {
				b.Fatalf("%s failed", r.ID)
			}
		}
	}
}
