// Command strun runs one of the paper's algorithms on a generated (or
// supplied) instance and prints the verdict together with the exact
// resource report of the ST model: sequential scans (1 + head
// reversals) and peak internal memory in bits.
//
// Usage:
//
//	strun -algo fingerprint -m 1024 -n 16 -yes=false
//	strun -algo multiset -input '01#10#10#01#'
//	strun -algo sort -m 64 -n 8
//
// Algorithms: multiset, set, checksort (deterministic, Corollary 7);
// fingerprint (Theorem 8a); nst-multiset, nst-set, nst-checksort
// (Theorem 8b); sort (Corollary 10).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
)

func main() {
	algo := flag.String("algo", "multiset", "algorithm to run")
	mFlag := flag.Int("m", 64, "values per half (generated instances)")
	nFlag := flag.Int("n", 12, "value length in bits (generated instances)")
	yes := flag.Bool("yes", true, "generate a yes-instance")
	seed := flag.Int64("seed", 1, "random seed")
	input := flag.String("input", "", "explicit instance v1#…vm#v'1#…v'm# (overrides -m/-n)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	in, err := buildInstance(*algo, *input, *mFlag, *nFlag, *yes, rng)
	if err != nil {
		fail(err)
	}
	fmt.Printf("instance: m=%d, N=%d\n", in.M(), in.Size())

	verdict, res, err := run(*algo, in, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("verdict:  %v\n", verdict)
	fmt.Printf("resources: %v\n", res)
	want := reference(*algo, in)
	fmt.Printf("reference: %v\n", want)
	if verdict != want && *algo != "fingerprint" {
		fail(fmt.Errorf("verdict disagrees with the reference decider"))
	}
}

func buildInstance(algo, input string, m, n int, yes bool, rng *rand.Rand) (problems.Instance, error) {
	if input != "" {
		return problems.Decode([]byte(input))
	}
	switch algo {
	case "set", "nst-set":
		return problems.Gen(problems.SetEqualityProblem, yes, m, n, rng), nil
	case "checksort", "nst-checksort":
		return problems.Gen(problems.CheckSortProblem, yes, m, n, rng), nil
	default:
		return problems.Gen(problems.MultisetEqualityProblem, yes, m, n, rng), nil
	}
}

func run(algo string, in problems.Instance, seed int64) (core.Verdict, core.Resources, error) {
	switch algo {
	case "multiset", "set", "checksort":
		m := core.NewMachine(algorithms.NumDeciderTapes, seed)
		m.SetInput(in.Encode())
		var v core.Verdict
		var err error
		switch algo {
		case "multiset":
			v, err = algorithms.MultisetEqualityST(m)
		case "set":
			v, err = algorithms.SetEqualityST(m)
		default:
			v, err = algorithms.CheckSortST(m)
		}
		return v, m.Resources(), err
	case "fingerprint":
		m := core.NewMachine(1, seed)
		m.SetInput(in.Encode())
		v, params, err := algorithms.FingerprintMultisetEquality(m)
		if err == nil {
			fmt.Printf("fingerprint params: k=%d p1=%d p2=%d x=%d\n", params.K, params.P1, params.P2, params.X)
		}
		return v, m.Resources(), err
	case "nst-multiset", "nst-set", "nst-checksort":
		p := map[string]algorithms.NSTProblem{
			"nst-multiset":  algorithms.NSTMultisetEquality,
			"nst-set":       algorithms.NSTSetEquality,
			"nst-checksort": algorithms.NSTCheckSort,
		}[algo]
		m := core.NewMachine(2, seed)
		m.SetInput(in.Encode())
		v, err := algorithms.DecideNST(p, m, in)
		return v, m.Resources(), err
	case "sort":
		m := core.NewMachine(4, seed)
		m.SetInput(in.Encode())
		res, err := algorithms.SortLasVegas(m, 1, 2, 3, 1<<30)
		return res.Verdict, res.Resources, err
	default:
		return core.Reject, core.Resources{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func reference(algo string, in problems.Instance) core.Verdict {
	var ok bool
	switch algo {
	case "set", "nst-set":
		ok = problems.SetEquality(in)
	case "checksort", "nst-checksort":
		ok = problems.CheckSort(in)
	case "sort":
		ok = true // the function problem always has an output
	default:
		ok = problems.MultisetEquality(in)
	}
	if ok {
		return core.Accept
	}
	return core.Reject
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "strun:", err)
	os.Exit(1)
}
