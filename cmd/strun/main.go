// Command strun runs one of the paper's algorithms on a generated (or
// supplied) instance and prints the verdict together with the exact
// resource report of the ST model: sequential scans (1 + head
// reversals) and peak internal memory in bits.
//
// Usage:
//
//	strun -algo fingerprint -m 1024 -n 16 -yes=false
//	strun -algo multiset -input '01#10#10#01#'
//	strun -algo sort -m 64 -n 8
//	strun -algo fingerprint -yes=false -trials 500 -parallel 8 -format csv
//
// Algorithms: multiset, set, checksort (deterministic, Corollary 7);
// fingerprint (Theorem 8a); nst-multiset, nst-set, nst-checksort
// (Theorem 8b); sort (Corollary 10); relalg (Theorem 11).
//
// With -algo relalg, strun evaluates the Theorem 11 symmetric-
// difference query Q' = (R1 − R2) ∪ (R2 − R1) on the instance's
// two-relation database through the sharded relational evaluator
// (internal/relalg.Evaluator over internal/shard): every operator
// sort runs run-partitioned across -shards shard machines. Q' is
// empty exactly when the instance halves are set-equal, and a sorted
// deduplicated stream is canonical, so stdout is byte-identical at
// any -shards value; the per-shard (r, s, t) rollup census goes to
// stderr.
//
// -budget BITS (with -budget-tapes and -budget-shards) replaces the
// fixed -shards shape with the cost-based planner (internal/plan):
// each operator stage runs at the shape minimizing its predicted
// critical path inside the envelope, with the merge-free pipelined
// handoff between stages. The planner moves only the execution
// shape, so stdout is byte-identical to any fixed shape. It applies
// to -algo relalg alone.
//
// -storage selects the tape storage backend (mem, file or mmap) for
// every machine of the run, with -spill-dir placing the file/mmap
// backends' unlinked temp files and -spill-threshold keeping small
// tapes in RAM until they first exceed that many cells; like -shards
// none of them changes stdout — the backend may move the bytes' home,
// never a count. Both spill flags require -storage file or mmap.
//
// With -trials > 1 and -algo fingerprint, strun runs a Monte-Carlo
// fleet of independent fingerprint trials on the same instance across
// -shards shards of -parallel workers each (the sharded execution
// layer of internal/shard), streams one row per trial in -format
// (text, json or csv) and reports the acceptance rate with its Wilson
// 95% interval on stderr. Per-trial coins derive from -seed and the
// global trial index alone, so the rows are byte-identical at any
// -parallel and any -shards value.
//
// -transport proc ships each shard's work to a worker process — strun
// re-executed under the hidden stworker subcommand — over
// length-prefixed gob frames (internal/transport): fleet shards carry
// the fingerprint workload by wire form, relalg operator sorts carry
// self-contained sort jobs. stdout is byte-identical to the in-process
// transport, and a dead worker retries and falls back exactly like an
// injected panic. It applies to fleet mode and -algo relalg; a
// single-machine run has no shards to ship, so -transport proc there
// is a flag error rather than a silent no-op.
//
// -transport tcp ships the same frames to long-lived TCP workers
// named by -workers host:port,... (required, and mutual: -workers
// requires -transport tcp). Connections open with a version +
// workload-registry handshake, shard attempts are assigned
// round-robin by shard index, and network death — refused dial,
// dropped connection, stalled peer — is process death: the same
// retry → fallback path, the same stdout. Start a worker with
// `strun -serve host:port` (Ctrl-C stops it).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/plan"
	"extmem/internal/problems"
	"extmem/internal/relalg"
	"extmem/internal/shard"
	"extmem/internal/tape"
	"extmem/internal/transport"
	"extmem/internal/trials"
)

func main() {
	if transport.IsWorker(os.Args) {
		// A shard worker: no flags, no signal handling. Pipe workers run
		// in their own process group, so terminal signals reach only the
		// coordinator — which owns the partial-results footer and tears
		// workers down through their job contexts; TCP workers
		// (`strun stworker -listen addr`) install their own handler.
		os.Exit(transport.WorkerMain(os.Args, os.Stdin, os.Stdout, os.Stderr))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// knownAlgos lists every -algo value strun accepts.
var knownAlgos = []string{
	"multiset", "set", "checksort",
	"fingerprint",
	"nst-multiset", "nst-set", "nst-checksort",
	"sort", "relalg",
}

// validate rejects malformed flag combinations with a one-line error
// before any machine runs, so misuse exits 2 instead of panicking (or
// failing obscurely) downstream.
func validate(algo, format, transportMode string, trialsN, parallel, shards int) error {
	ok := false
	for _, a := range knownAlgos {
		if algo == a {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("unknown -algo %q (want one of %v)", algo, knownAlgos)
	}
	switch format {
	case "text", "json", "csv":
	default:
		return fmt.Errorf("unknown -format %q (want text, json or csv)", format)
	}
	switch transportMode {
	case "inproc", "proc", "tcp":
	default:
		return fmt.Errorf("unknown -transport %q (want inproc, proc or tcp)", transportMode)
	}
	if trialsN < 1 {
		return fmt.Errorf("-trials must be >= 1 (got %d)", trialsN)
	}
	if parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1 (got %d)", parallel)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", shards)
	}
	// A single-machine run has no shards to ship; degrading silently to
	// the in-process engine would make the flag a lie.
	if transportMode != "inproc" && trialsN == 1 && algo != "relalg" {
		return fmt.Errorf("-transport %s applies to fleet mode (-trials > 1) or -algo relalg", transportMode)
	}
	return nil
}

// budgetEnvelope validates the -budget flag family and builds the
// planner envelope, or nil when -budget is absent. The memory bound
// arrives as a float so NaN can be rejected by name: the negated form
// catches it (NaN fails every ordered comparison and would sail
// through `bits <= 0`), alongside zero, negatives and infinities.
func budgetEnvelope(set bool, bits float64, tapes, shards int) (*plan.Budget, error) {
	if !set {
		return nil, nil
	}
	if !(bits > 0) || math.IsInf(bits, 0) {
		return nil, fmt.Errorf("-budget must be a positive finite bit count (got %g)", bits)
	}
	b := plan.Budget{MemoryBits: int64(bits), Tapes: tapes, MaxShards: shards}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("strun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", "multiset", "algorithm to run")
	mFlag := fs.Int("m", 64, "values per half (generated instances)")
	nFlag := fs.Int("n", 12, "value length in bits (generated instances)")
	yes := fs.Bool("yes", true, "generate a yes-instance")
	seed := fs.Int64("seed", 1, "random seed")
	input := fs.String("input", "", "explicit instance v1#…vm#v'1#…v'm# (overrides -m/-n)")
	trialsN := fs.Int("trials", 1, "fingerprint only: fleet size of independent trials")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "fleet worker goroutines per shard (never changes the rows)")
	shards := fs.Int("shards", 1, "fleet shards (fingerprint fleets) or sort shards (relalg); never changes stdout")
	format := fs.String("format", "text", "fleet row format: text, json or csv")
	transportMode := fs.String("transport", "inproc", "shard transport: inproc (shard goroutines) or proc (worker processes); never changes stdout")
	budget := fs.Float64("budget", 0, "relalg only: cost-based planner envelope, run-formation memory in bits (never changes stdout)")
	budgetTapes := fs.Int("budget-tapes", 6, "planner envelope: tapes per shard machine (requires -budget)")
	budgetShards := fs.Int("budget-shards", 4, "planner envelope: shard-fleet ceiling (requires -budget)")
	storage := fs.String("storage", "mem", "tape storage backend: mem, file or mmap (never changes stdout)")
	spillDir := fs.String("spill-dir", "", "directory for file/mmap tape spill files (requires -storage file or mmap; default: system temp dir)")
	spillThreshold := fs.Int("spill-threshold", 0, "cells a file/mmap tape holds in RAM before spilling to its backend (requires -storage file or mmap; 0 = spill from the start)")
	workers := fs.String("workers", "", "comma-separated TCP worker addresses host:port,... (requires -transport tcp)")
	serve := fs.String("serve", "", "serve shard jobs over TCP on this host:port instead of running an algorithm (conflicts with -transport and -workers)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["serve"] {
		// A worker host runs nothing but the serve loop: the algorithm
		// flags describe a run it will never make, and the transport
		// flags describe the coordinator's side of the wire.
		if set["transport"] || set["workers"] {
			fmt.Fprintln(stderr, "strun: -serve conflicts with -transport and -workers")
			return 2
		}
		if err := transport.ListenAndServe(ctx, *serve, stderr); err != nil {
			fmt.Fprintln(stderr, "strun:", err)
			return 1
		}
		return 0
	}
	if err := validate(*algo, *format, *transportMode, *trialsN, *parallel, *shards); err != nil {
		fmt.Fprintln(stderr, "strun:", err)
		return 2
	}
	if *transportMode == "tcp" && !set["workers"] {
		fmt.Fprintln(stderr, "strun: -transport tcp requires -workers")
		return 2
	}
	if set["workers"] && *transportMode != "tcp" {
		fmt.Fprintln(stderr, "strun: -workers requires -transport tcp")
		return 2
	}
	var workerAddrs []string
	if *transportMode == "tcp" {
		var err error
		if workerAddrs, err = transport.ParseWorkers(*workers); err != nil {
			fmt.Fprintln(stderr, "strun:", err)
			return 2
		}
	}
	if !set["budget"] && (set["budget-tapes"] || set["budget-shards"]) {
		fmt.Fprintln(stderr, "strun: -budget-tapes and -budget-shards require -budget")
		return 2
	}
	if set["budget"] && *algo != "relalg" {
		fmt.Fprintf(stderr, "strun: -budget applies to -algo relalg (got %q)\n", *algo)
		return 2
	}
	envelope, err := budgetEnvelope(set["budget"], *budget, *budgetTapes, *budgetShards)
	if err != nil {
		fmt.Fprintln(stderr, "strun:", err)
		return 2
	}
	storageKind, err := tape.ParseStorage(*storage)
	if err != nil {
		fmt.Fprintln(stderr, "strun:", err)
		return 2
	}
	if set["spill-dir"] && storageKind == tape.Mem {
		fmt.Fprintln(stderr, "strun: -spill-dir requires -storage file or mmap")
		return 2
	}
	if set["spill-threshold"] && storageKind == tape.Mem {
		fmt.Fprintln(stderr, "strun: -spill-threshold requires -storage file or mmap")
		return 2
	}
	topts := tape.Options{Storage: storageKind, SpillDir: *spillDir, SpillThreshold: *spillThreshold}
	if err := topts.Validate(); err != nil {
		fmt.Fprintln(stderr, "strun:", err)
		return 2
	}
	var tr transport.Transport
	switch *transportMode {
	case "proc":
		tr = &transport.Proc{Stderr: stderr}
	case "tcp":
		tr = &transport.TCP{Workers: workerAddrs, DialTimeout: 5 * time.Second}
	}

	rng := rand.New(rand.NewSource(*seed))
	in, err := buildInstance(*algo, *input, *mFlag, *nFlag, *yes, rng)
	if err != nil {
		return fail(stderr, err)
	}

	if *trialsN > 1 {
		if *algo != "fingerprint" {
			return fail(stderr, fmt.Errorf("-trials > 1 is only supported for -algo fingerprint (got %q)", *algo))
		}
		return runFleet(ctx, in, *trialsN, *shards, *parallel, *seed, *format, tr, stdout, stderr)
	}
	if *algo == "relalg" {
		return runQuery(ctx, in, *shards, *seed, envelope, tr, topts, stdout, stderr)
	}

	fmt.Fprintf(stdout, "instance: m=%d, N=%d\n", in.M(), in.Size())
	verdict, res, err := runAlgo(*algo, in, *seed, topts, stdout)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "verdict:  %v\n", verdict)
	fmt.Fprintf(stdout, "resources: %v\n", res)
	want := reference(*algo, in)
	fmt.Fprintf(stdout, "reference: %v\n", want)
	if verdict != want && *algo != "fingerprint" {
		return fail(stderr, fmt.Errorf("verdict disagrees with the reference decider"))
	}
	return 0
}

// runFleet streams a fingerprint trial fleet on the instance: one
// machine per trial, coins derived from (seed, global trial index),
// executed as a sharded fleet whose in-order merge stream feeds the
// row encoder. Under -transport proc or tcp every shard range ships
// across the transport — the trial body travels as its registered
// workload wire form and the rows come back identical. A mid-stream
// encoder error cancels the fleet (workers drain, exit 1);
// SIGINT/SIGTERM cancels it too, flushing the encoder and a
// partial-results footer before exiting 130.
func runFleet(ctx context.Context, in problems.Instance, n, shards, parallel int, seed int64, format string, tr transport.Transport, stdout, stderr io.Writer) int {
	enc, err := trials.NewEncoder(format, stdout)
	if err != nil {
		return fail(stderr, err)
	}
	fleetCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w, trial := algorithms.FingerprintInputWorkload(in.Encode())
	var (
		encErr error
		rows   int
	)
	fleet := shard.Fleet{
		Plan:     shard.Plan{Shards: shards, Trials: n},
		Parallel: parallel,
		Seed:     seed,
		OnResult: func(r trials.Result) {
			if encErr != nil {
				return
			}
			if encErr = enc.Row(r); encErr != nil {
				cancel() // abort the fleet: nothing downstream can consume rows
				return
			}
			rows++
		},
	}
	if tr != nil {
		fleet.Attempt = tr.Attempt()
	}
	_, sum, err := fleet.Run(trials.WithWorkload(fleetCtx, w), trial)
	if ctx.Err() != nil {
		// Interrupted: flush what was emitted and account the partial
		// prefix honestly. A failing flush is reported too — silently
		// dropping it would claim rows that never reached the sink —
		// but cannot mask the interrupt status.
		if cerr := enc.Close(); cerr != nil {
			fmt.Fprintln(stderr, "strun:", cerr)
		}
		fmt.Fprintf(stderr, "strun: interrupted — partial results: %d/%d rows emitted\n", rows, n)
		return 130
	}
	if encErr == nil {
		encErr = enc.Close()
	}
	for _, e := range []error{encErr, err} {
		if e != nil {
			return fail(stderr, e)
		}
	}
	fmt.Fprintln(stderr, "strun:", trials.FormatSummary(sum))
	return 0
}

// runQuery evaluates Q' = (R1 − R2) ∪ (R2 − R1) on the instance's
// database through the sharded relational evaluator. Only the
// shard-invariant verdict lines go to stdout; the execution census
// (one SortReport per operator sort, rolled up) goes to stderr.
// Like fleet mode (shard.Plan.ShardCount), -shards values below 1
// mean 1 — the evaluator's zero value would select the unsharded
// engine, which records no census at all. A -budget envelope hands
// shape selection to the cost-based planner instead of the fixed
// -shards count; stdout cannot tell the difference.
func runQuery(ctx context.Context, in problems.Instance, shards int, seed int64, envelope *plan.Budget, tr transport.Transport, topts tape.Options, stdout, stderr io.Writer) int {
	if shards < 1 {
		shards = 1
	}
	db := relalg.InstanceDB(in)
	rep := &relalg.QueryReport{}
	ev := relalg.Evaluator{Shards: shards, Seed: seed, Report: rep, TapeOpts: topts}
	if envelope != nil {
		ev.Plan = plan.Auto(*envelope)
	}
	if tr != nil {
		ev.Exec = tr.Exec()
		ev.ExecScan = tr.ExecScan()
	}
	m := core.NewMachineOpts(relalg.NumQueryTapes, seed, topts)
	defer m.Close()
	r, err := ev.EvalST(ctx, relalg.SymmetricDifference("R1", "R2"), db, m)
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			fmt.Fprintln(stderr, "strun: interrupted — query evaluation cancelled")
			return 130
		}
		return fail(stderr, err)
	}
	verdict := core.Reject
	if len(r.Tuples) == 0 {
		verdict = core.Accept
	}
	fmt.Fprintf(stdout, "instance: m=%d, N=%d\n", in.M(), in.Size())
	fmt.Fprintf(stdout, "query:    Q' = (R1 − R2) ∪ (R2 − R1), |Q'| = %d\n", len(r.Tuples))
	fmt.Fprintf(stdout, "verdict:  %v\n", verdict)
	want := reference("relalg", in)
	fmt.Fprintf(stdout, "reference: %v\n", want)
	agg := rep.Rollup()
	fmt.Fprintf(stderr, "strun: %d operator sorts: %v; critical path %d steps\n",
		len(rep.Sorts), agg, rep.CriticalPathSteps())
	if verdict != want {
		return fail(stderr, fmt.Errorf("verdict disagrees with the reference decider"))
	}
	return 0
}

func buildInstance(algo, input string, m, n int, yes bool, rng *rand.Rand) (problems.Instance, error) {
	if input != "" {
		return problems.Decode([]byte(input))
	}
	switch algo {
	case "set", "nst-set", "relalg":
		// problems.GenSetYes panics when it cannot draw m distinct
		// n-bit strings; surface that as a flag error instead.
		if n < 63 && m > 1<<uint(n) {
			return problems.Instance{}, fmt.Errorf("-m %d needs more than 2^%d distinct values; raise -n or lower -m", m, n)
		}
		return problems.Gen(problems.SetEqualityProblem, yes, m, n, rng), nil
	case "checksort", "nst-checksort":
		return problems.Gen(problems.CheckSortProblem, yes, m, n, rng), nil
	default:
		return problems.Gen(problems.MultisetEqualityProblem, yes, m, n, rng), nil
	}
}

func runAlgo(algo string, in problems.Instance, seed int64, topts tape.Options, stdout io.Writer) (core.Verdict, core.Resources, error) {
	switch algo {
	case "multiset", "set", "checksort":
		m := core.NewMachineOpts(algorithms.NumDeciderTapes, seed, topts)
		defer m.Close()
		m.SetInput(in.Encode())
		var v core.Verdict
		var err error
		switch algo {
		case "multiset":
			v, err = algorithms.MultisetEqualityST(m)
		case "set":
			v, err = algorithms.SetEqualityST(m)
		default:
			v, err = algorithms.CheckSortST(m)
		}
		return v, m.Resources(), err
	case "fingerprint":
		m := core.NewMachineOpts(1, seed, topts)
		defer m.Close()
		m.SetInput(in.Encode())
		v, params, err := algorithms.FingerprintMultisetEquality(m)
		if err == nil {
			fmt.Fprintf(stdout, "fingerprint params: k=%d p1=%d p2=%d x=%d\n", params.K, params.P1, params.P2, params.X)
		}
		return v, m.Resources(), err
	case "nst-multiset", "nst-set", "nst-checksort":
		p := map[string]algorithms.NSTProblem{
			"nst-multiset":  algorithms.NSTMultisetEquality,
			"nst-set":       algorithms.NSTSetEquality,
			"nst-checksort": algorithms.NSTCheckSort,
		}[algo]
		m := core.NewMachineOpts(2, seed, topts)
		defer m.Close()
		m.SetInput(in.Encode())
		v, err := algorithms.DecideNST(p, m, in)
		return v, m.Resources(), err
	case "sort":
		res, _, err := algorithms.SortLasVegasRepeated(nil, in.Encode(), 6, 1, 1<<30, 1, trials.Pool(1), seed)
		return res.Verdict, res.Resources, err
	default:
		return core.Reject, core.Resources{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func reference(algo string, in problems.Instance) core.Verdict {
	var ok bool
	switch algo {
	case "set", "nst-set", "relalg":
		ok = problems.SetEquality(in)
	case "checksort", "nst-checksort":
		ok = problems.CheckSort(in)
	case "sort":
		ok = true // the function problem always has an output
	default:
		ok = problems.MultisetEquality(in)
	}
	if ok {
		return core.Accept
	}
	return core.Reject
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "strun:", err)
	return 1
}
